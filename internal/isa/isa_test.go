package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClass(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpAdd, ClassIntALU},
		{OpSub, ClassIntALU},
		{OpMov, ClassIntALU},
		{OpAnd, ClassIntALU},
		{OpOr, ClassIntALU},
		{OpXor, ClassIntALU},
		{OpNot, ClassIntALU},
		{OpShl, ClassIntALU},
		{OpShr, ClassIntALU},
		{OpSext, ClassIntALU},
		{OpLoad, ClassLoad},
		{OpStore, ClassStore},
		{OpBranch, ClassBranch},
		{OpIMul, ClassIntMul},
		{OpFAdd, ClassFP},
		{OpFMul, ClassFP},
		{OpFDiv, ClassFP},
		{OpVec, ClassVec},
		{OpNop, ClassNop},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestEMCAllowedMatchesTable1(t *testing.T) {
	// Table 1: Integer add/subtract/move/load/store; logical
	// and/or/xor/not/shift/sign-extend. Nothing else.
	allowed := map[Op]bool{
		OpAdd: true, OpSub: true, OpMov: true, OpLoad: true, OpStore: true,
		OpAnd: true, OpOr: true, OpXor: true, OpNot: true, OpShl: true,
		OpShr: true, OpSext: true,
	}
	for op := OpNop; op < numOps; op++ {
		if got := op.EMCAllowed(); got != allowed[op] {
			t.Errorf("%v.EMCAllowed() = %v, want %v", op, got, allowed[op])
		}
	}
}

func TestExecSemantics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b    uint64
		imm     int64
		hasSrc2 bool
		want    uint64
	}{
		{OpAdd, 5, 7, 0, true, 12},
		{OpAdd, 5, 0, 100, false, 105},
		{OpSub, 10, 3, 0, true, 7},
		{OpSub, 10, 0, 4, false, 6},
		{OpMov, 42, 0, 0, false, 42},
		{OpAnd, 0xFF, 0x0F, 0, true, 0x0F},
		{OpOr, 0xF0, 0x0F, 0, true, 0xFF},
		{OpXor, 0xFF, 0x0F, 0, true, 0xF0},
		{OpNot, 0, 0, 0, false, ^uint64(0)},
		{OpShl, 1, 4, 0, true, 16},
		{OpShr, 16, 4, 0, true, 1},
		{OpShl, 1, 0, 68, false, 16}, // shift counts mask to 63: 68&63 = 4
		{OpSext, 0xFFFFFFFF, 0, 0, false, ^uint64(0)},
		{OpSext, 0x7FFFFFFF, 0, 0, false, 0x7FFFFFFF},
		{OpIMul, 6, 7, 0, true, 42},
	}
	for _, c := range cases {
		if got := Exec(c.op, c.a, c.b, c.imm, c.hasSrc2); got != c.want {
			t.Errorf("Exec(%v, %#x, %#x, %d, %v) = %#x, want %#x",
				c.op, c.a, c.b, c.imm, c.hasSrc2, got, c.want)
		}
	}
}

func TestExecPanicsOnNonALU(t *testing.T) {
	for _, op := range []Op{OpLoad, OpStore, OpBranch, OpNop} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Exec(%v) did not panic", op)
				}
			}()
			Exec(op, 0, 0, 0, false)
		}()
	}
}

func TestEvalUop(t *testing.T) {
	ld := &Uop{Op: OpLoad, Src1: 1, Dst: 2, Imm: 8, Addr: 0x1008, Value: 0xdead}
	if got := EvalUop(ld, 0x1000, 0); got != 0xdead {
		t.Errorf("EvalUop(load) = %#x, want value from trace 0xdead", got)
	}
	movImm := &Uop{Op: OpMov, Src1: RegNone, Src2: RegNone, Dst: 3, Imm: 0x77}
	if got := EvalUop(movImm, 0, 0); got != 0x77 {
		t.Errorf("EvalUop(mov imm) = %#x, want 0x77", got)
	}
	add := &Uop{Op: OpAdd, Src1: 1, Src2: RegNone, Dst: 3, Imm: 0x18}
	if got := EvalUop(add, 0x100, 0); got != 0x118 {
		t.Errorf("EvalUop(add imm) = %#x, want 0x118", got)
	}
	st := &Uop{Op: OpStore, Src1: 1, Src2: 2, Imm: 0}
	if got := EvalUop(st, 1, 2); got != 0 {
		t.Errorf("EvalUop(store) = %#x, want 0", got)
	}
}

func TestAddrOf(t *testing.T) {
	u := &Uop{Op: OpLoad, Src1: 1, Imm: -16}
	if got := AddrOf(u, 0x2000); got != 0x1ff0 {
		t.Errorf("AddrOf = %#x, want 0x1ff0", got)
	}
}

func TestNumSrcs(t *testing.T) {
	cases := []struct {
		u    Uop
		want int
	}{
		{Uop{Src1: 1, Src2: 2}, 2},
		{Uop{Src1: 1, Src2: RegNone}, 1},
		{Uop{Src1: RegNone, Src2: RegNone}, 0},
	}
	for _, c := range cases {
		if got := c.u.NumSrcs(); got != c.want {
			t.Errorf("NumSrcs(%+v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	if !Reg(0).Valid() || !Reg(NumArchRegs-1).Valid() {
		t.Error("in-range registers should be valid")
	}
	if Reg(NumArchRegs).Valid() || RegNone.Valid() {
		t.Error("out-of-range registers should be invalid")
	}
}

// Property: shift semantics always mask the count, so Exec never panics or
// produces machine-dependent results for any input.
func TestShiftMaskProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		l := Exec(OpShl, a, b, 0, true)
		r := Exec(OpShr, a, b, 0, true)
		return l == a<<(b&63) && r == a>>(b&63)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: add/sub are inverses; xor is self-inverse.
func TestALUInverseProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		s := Exec(OpAdd, a, b, 0, true)
		if Exec(OpSub, s, b, 0, true) != a {
			return false
		}
		x := Exec(OpXor, a, b, 0, true)
		return Exec(OpXor, x, b, 0, true) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringsDontCrash(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("empty String for op %d", op)
		}
		if op.Class().String() == "?" {
			t.Errorf("unknown class for op %v", op)
		}
	}
	uops := []Uop{
		{Op: OpLoad, Src1: 1, Dst: 2},
		{Op: OpStore, Src1: 1, Src2: 2},
		{Op: OpBranch, Taken: true},
		{Op: OpAdd, Src1: 1, Src2: 2, Dst: 3},
	}
	for i := range uops {
		if uops[i].String() == "" {
			t.Errorf("empty String for uop %d", i)
		}
	}
}

func TestFPOpsMixDeterministically(t *testing.T) {
	// FP/vector values are opaque mixes, but they must be deterministic and
	// dataflow-sensitive (different inputs -> different outputs, usually).
	a := Exec(OpFAdd, 1, 2, 0, true)
	b := Exec(OpFAdd, 1, 2, 0, true)
	if a != b {
		t.Error("FP mixing must be deterministic")
	}
	if Exec(OpFMul, 1, 2, 0, true) == Exec(OpFMul, 1, 3, 0, true) {
		t.Error("different inputs should (almost surely) mix differently")
	}
	if Exec(OpVec, 7, 9, 0, true) == Exec(OpFDiv, 7, 9, 0, true) {
		// Same mixer is acceptable; this documents that behaviour.
		t.Log("vector and fdiv share the mixing function")
	}
}

func TestLatencies(t *testing.T) {
	cases := []struct {
		op  Op
		lat int
	}{
		{OpAdd, 1}, {OpBranch, 1}, {OpStore, 1}, {OpLoad, 1},
		{OpIMul, 3}, {OpVec, 2}, {OpFAdd, 4}, {OpFMul, 5}, {OpFDiv, 12},
	}
	for _, c := range cases {
		if got := c.op.Latency(); got != c.lat {
			t.Errorf("%v latency %d, want %d", c.op, got, c.lat)
		}
	}
}

func TestIsMemHasDst(t *testing.T) {
	ld := Uop{Op: OpLoad, Dst: 1}
	st := Uop{Op: OpStore, Dst: RegNone}
	br := Uop{Op: OpBranch, Dst: RegNone}
	if !ld.IsMem() || !st.IsMem() || br.IsMem() {
		t.Error("IsMem classification wrong")
	}
	if !ld.HasDst() || st.HasDst() {
		t.Error("HasDst classification wrong")
	}
}
