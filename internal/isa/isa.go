// Package isa defines the micro-operation (uop) instruction set used by the
// simulator: opcode classes, architectural registers, and the functional
// semantics of each operation.
//
// The set mirrors the x86-derived micro-op stream of the paper. The subset
// permitted at the Enhanced Memory Controller (Table 1 of the paper) is
// integer add/subtract/move/load/store plus the logical operations
// and/or/xor/not/shift/sign-extend; floating-point and vector uops must run
// at the core.
package isa

import "fmt"

// Reg names an architectural register. The trace generator and the core's
// rename stage both use this space; physical registers are a concern of the
// core (ROB-slot renaming) and of the EMC (its private 16-entry file).
type Reg uint8

// NumArchRegs is the size of the architectural integer register file visible
// to traces. It is deliberately larger than x86-64's 16 GPRs so synthetic
// traces have room for address-generation temporaries, as a real uop stream
// would via rename.
const NumArchRegs = 32

// RegNone marks an absent operand (e.g. the second source of a MOV, or the
// destination of a store or branch).
const RegNone Reg = 0xFF

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < NumArchRegs }

func (r Reg) String() string {
	if r == RegNone {
		return "-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is a micro-operation opcode.
type Op uint8

// The micro-op opcodes. Integer and logical ops take one or two register
// sources plus an immediate; Load computes its address as Src1+Imm; Store
// writes the value of Src2 to Src1+Imm.
const (
	OpNop Op = iota
	// Integer ALU (EMC-allowed).
	OpAdd  // Dst = Src1 + Src2 (+Imm if Src2 == RegNone)
	OpSub  // Dst = Src1 - Src2 (or -Imm)
	OpMov  // Dst = Src1 (or Imm if Src1 == RegNone)
	OpAnd  // Dst = Src1 & Src2/Imm
	OpOr   // Dst = Src1 | Src2/Imm
	OpXor  // Dst = Src1 ^ Src2/Imm
	OpNot  // Dst = ^Src1
	OpShl  // Dst = Src1 << (Src2/Imm & 63)
	OpShr  // Dst = Src1 >> (Src2/Imm & 63), logical
	OpSext // Dst = sign-extend low 32 bits of Src1
	// Memory (EMC-allowed).
	OpLoad  // Dst = mem[Src1 + Imm]
	OpStore // mem[Src1 + Imm] = Src2
	// Control.
	OpBranch // conditional branch; Taken/Mispredicted carried by the uop
	// Core-only operations (not EMC-allowed).
	OpIMul // Dst = Src1 * Src2/Imm; integer multiply, 3-cycle
	OpFAdd // floating point add, 4-cycle
	OpFMul // floating point multiply, 5-cycle
	OpFDiv // floating point divide, 12-cycle
	OpVec  // vector/SIMD op, 2-cycle

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMov: "mov", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpNot: "not", OpShl: "shl", OpShr: "shr",
	OpSext: "sext", OpLoad: "load", OpStore: "store", OpBranch: "br",
	OpIMul: "imul", OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv", OpVec: "vec",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups opcodes by the execution resource they need.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassLoad
	ClassStore
	ClassBranch
	ClassFP
	ClassVec
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "alu"
	case ClassIntMul:
		return "mul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassFP:
		return "fp"
	case ClassVec:
		return "vec"
	}
	return "?"
}

// Class returns the execution class of the opcode.
func (o Op) Class() Class {
	switch o {
	case OpNop:
		return ClassNop
	case OpAdd, OpSub, OpMov, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr, OpSext:
		return ClassIntALU
	case OpIMul:
		return ClassIntMul
	case OpLoad:
		return ClassLoad
	case OpStore:
		return ClassStore
	case OpBranch:
		return ClassBranch
	case OpFAdd, OpFMul, OpFDiv:
		return ClassFP
	case OpVec:
		return ClassVec
	}
	return ClassNop
}

// EMCAllowed reports whether the opcode may execute at the Enhanced Memory
// Controller (Table 1: integer add/subtract/move/load/store and logical
// and/or/xor/not/shift/sign-extend).
func (o Op) EMCAllowed() bool {
	switch o {
	case OpAdd, OpSub, OpMov, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr, OpSext,
		OpLoad, OpStore:
		return true
	}
	return false
}

// Latency returns the execution latency of the opcode in core cycles,
// excluding memory access time for loads/stores (which is determined by the
// cache hierarchy).
func (o Op) Latency() int {
	switch o.Class() {
	case ClassIntALU, ClassBranch, ClassStore:
		return 1
	case ClassIntMul:
		return 3
	case ClassLoad:
		return 1 // address generation; memory time added by the hierarchy
	case ClassVec:
		return 2
	case ClassFP:
		switch o {
		case OpFAdd:
			return 4
		case OpFMul:
			return 5
		case OpFDiv:
			return 12
		}
	}
	return 1
}

// Uop is a single micro-operation in a trace. Traces are value-consistent:
// for loads and stores, Addr always equals the value of Src1 plus Imm at the
// time the uop executes in program order, and Value holds the datum loaded
// (for loads) or stored (for stores). This lets the EMC execute dependence
// chains functionally and lets tests assert that remotely computed addresses
// match the trace.
type Uop struct {
	Seq   uint64 // program-order sequence number, unique per core trace
	PC    uint64 // instruction address (used by I-cache and miss predictor)
	Op    Op
	Src1  Reg
	Src2  Reg
	Dst   Reg
	Imm   int64
	Addr  uint64 // virtual address for loads/stores
	Value uint64 // loaded value (loads) / stored value (stores)

	// Branch metadata. A mispredicted branch flushes younger uops when it
	// executes; the front end stalls until then plus a redirect penalty.
	Taken        bool
	Mispredicted bool
}

// IsMem reports whether the uop accesses memory.
func (u *Uop) IsMem() bool { return u.Op == OpLoad || u.Op == OpStore }

// HasDst reports whether the uop writes a destination register.
func (u *Uop) HasDst() bool { return u.Dst != RegNone }

// NumSrcs returns how many register sources the uop reads.
func (u *Uop) NumSrcs() int {
	n := 0
	if u.Src1 != RegNone {
		n++
	}
	if u.Src2 != RegNone {
		n++
	}
	return n
}

func (u *Uop) String() string {
	switch u.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("#%d %s %s=[%s+%#x] @%#x", u.Seq, u.Op, u.Dst, u.Src1, u.Imm, u.Addr)
	case ClassStore:
		return fmt.Sprintf("#%d %s [%s+%#x]=%s @%#x", u.Seq, u.Op, u.Src1, u.Imm, u.Src2, u.Addr)
	case ClassBranch:
		return fmt.Sprintf("#%d br taken=%v mispred=%v", u.Seq, u.Taken, u.Mispredicted)
	default:
		return fmt.Sprintf("#%d %s %s=%s,%s,%#x", u.Seq, u.Op, u.Dst, u.Src1, u.Src2, u.Imm)
	}
}

// Exec evaluates the functional semantics of an ALU opcode given its source
// values and immediate. Loads, stores, branches and nops are not handled
// here: loads take their value from memory (the trace), stores produce no
// register result. Exec panics on such opcodes; callers gate on Class.
func Exec(op Op, src1, src2 uint64, imm int64, hasSrc2 bool) uint64 {
	b := uint64(imm)
	if hasSrc2 {
		b = src2
	}
	switch op {
	case OpAdd:
		return src1 + b
	case OpSub:
		return src1 - b
	case OpMov:
		if hasSrc2 {
			return src2
		}
		// MOV with a register source copies Src1; with no register source it
		// materializes the immediate.
		return src1
	case OpAnd:
		return src1 & b
	case OpOr:
		return src1 | b
	case OpXor:
		return src1 ^ b
	case OpNot:
		return ^src1
	case OpShl:
		return src1 << (b & 63)
	case OpShr:
		return src1 >> (b & 63)
	case OpSext:
		return uint64(int64(int32(uint32(src1))))
	case OpIMul:
		return src1 * b
	case OpFAdd, OpFMul, OpFDiv, OpVec:
		// Floating point values are opaque to the integer-centric model; a
		// mixing function keeps dataflow observable without modeling IEEE754.
		return mix(src1, b)
	}
	panic(fmt.Sprintf("isa.Exec: opcode %v has no ALU semantics", op))
}

// mix is a cheap value mixer used for FP/vector results so that dataflow
// through those ops remains value-observable in tests.
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// EvalUop computes the destination value of u given resolved source values.
// For loads the result is the trace-recorded Value (memory is the trace's
// authority); for ALU ops it is Exec. Branches and stores return 0.
func EvalUop(u *Uop, src1, src2 uint64) uint64 {
	switch u.Op.Class() {
	case ClassLoad:
		return u.Value
	case ClassStore, ClassBranch, ClassNop:
		return 0
	default:
		// MOV-immediate has Src1 == RegNone: materialize Imm.
		if u.Op == OpMov && u.Src1 == RegNone {
			return uint64(u.Imm)
		}
		return Exec(u.Op, src1, src2, u.Imm, u.Src2 != RegNone)
	}
}

// AddrOf computes the effective address of a memory uop from its base
// register value. Value-consistent traces guarantee this equals u.Addr.
func AddrOf(u *Uop, base uint64) uint64 { return base + uint64(u.Imm) }
