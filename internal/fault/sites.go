package fault

// This file is the single registry of failpoint site names. Every
// fault.Register call in the module must pass one of these constants, each
// constant backs exactly one site, and no site constants may be declared
// anywhere else — all three rules are enforced at build time by the
// failpoint analyzer (cmd/simlint), so the EMCSIM_FAILPOINTS documentation
// below cannot drift from the code.
//
// Arm sites via the environment, e.g.:
//
//	EMCSIM_FAILPOINTS='service/worker.prerun=prob:0.01:seed7;sim/cycle=after:1000:oneshot'
const (
	// SiteSimCycle fires inside System.step, before the cycle's work; used
	// to crash a simulation mid-run for checkpoint/resume testing.
	SiteSimCycle = "sim/cycle"

	// SiteQueueAdmit fires in the scheduler's admit path, before a job is
	// enqueued.
	SiteQueueAdmit = "service/queue.admit"
	// SiteWorkerPre fires in the worker loop after dequeue, before the
	// simulation runs.
	SiteWorkerPre = "service/worker.prerun"
	// SiteWorkerPost fires after a simulation completes, before its result
	// is published.
	SiteWorkerPost = "service/worker.postrun"
	// SiteDrain fires during graceful drain/shutdown.
	SiteDrain = "service/drain"

	// SiteCacheGet fires on in-memory result-cache lookups.
	SiteCacheGet = "service/cache.get"
	// SiteCachePut fires on in-memory result-cache inserts.
	SiteCachePut = "service/cache.put"

	// SiteDurablePut fires while persisting a result record to disk.
	SiteDurablePut = "service/durable.put"
	// SiteDurableLoad fires while loading durable records at boot.
	SiteDurableLoad = "service/durable.load"

	// SiteClusterForward fires on every inter-node RPC a routing node makes
	// for a forwarded job (submit, status poll, cancel); a firing is treated
	// as the owner being unreachable, driving the re-dispatch path — the
	// fabric's partition model.
	SiteClusterForward = "cluster/forward"
	// SiteClusterReplicateSend fires before replicating a fresh result to one
	// peer (the replica for that peer is dropped; peer fetch or re-compute
	// must cover).
	SiteClusterReplicateSend = "cluster/replicate.send"
	// SiteClusterReplicateRecv fires while applying a received replica; a
	// firing tears one byte of the frame, which the CRC check must reject.
	SiteClusterReplicateRecv = "cluster/replicate.recv"
	// SiteClusterFetch fires on the peer-fetch read path (fetching a durable
	// record from a peer instead of recomputing).
	SiteClusterFetch = "cluster/fetch"
	// SiteClusterHeartbeat fires in the heartbeat loop, skipping that round's
	// probe of one peer — heartbeat loss without a real partition.
	SiteClusterHeartbeat = "cluster/heartbeat"
	// SiteClusterSteal fires on the work-stealing donor path, refusing to
	// hand out a queued job.
	SiteClusterSteal = "cluster/steal"

	// SiteClusterAntiEntropyDigest fires on the anti-entropy digest
	// exchange: the round's digest RPC fails as unreachable, so the node
	// skips that peer this round and converges on a later one.
	SiteClusterAntiEntropyDigest = "cluster/antientropy.digest"
	// SiteClusterAntiEntropyFetch fires on an anti-entropy backfill fetch:
	// one missing record is not retrieved this round (a later round, or
	// ordinary replication, must cover it).
	SiteClusterAntiEntropyFetch = "cluster/antientropy.fetch"
	// SiteClusterHandoverAck fires on the receiver side of a join-time
	// queue handover after the jobs were accepted, modelling a lost ack:
	// the previous owner reclaims and re-executes locally, and determinism
	// makes the resulting double execution benign.
	SiteClusterHandoverAck = "cluster/handover.ack"
)
