package fault

// This file is the single registry of failpoint site names. Every
// fault.Register call in the module must pass one of these constants, each
// constant backs exactly one site, and no site constants may be declared
// anywhere else — all three rules are enforced at build time by the
// failpoint analyzer (cmd/simlint), so the EMCSIM_FAILPOINTS documentation
// below cannot drift from the code.
//
// Arm sites via the environment, e.g.:
//
//	EMCSIM_FAILPOINTS='service/worker.prerun=prob:0.01:seed7;sim/cycle=after:1000:oneshot'
const (
	// SiteSimCycle fires inside System.step, before the cycle's work; used
	// to crash a simulation mid-run for checkpoint/resume testing.
	SiteSimCycle = "sim/cycle"

	// SiteQueueAdmit fires in the scheduler's admit path, before a job is
	// enqueued.
	SiteQueueAdmit = "service/queue.admit"
	// SiteWorkerPre fires in the worker loop after dequeue, before the
	// simulation runs.
	SiteWorkerPre = "service/worker.prerun"
	// SiteWorkerPost fires after a simulation completes, before its result
	// is published.
	SiteWorkerPost = "service/worker.postrun"
	// SiteDrain fires during graceful drain/shutdown.
	SiteDrain = "service/drain"

	// SiteCacheGet fires on in-memory result-cache lookups.
	SiteCacheGet = "service/cache.get"
	// SiteCachePut fires on in-memory result-cache inserts.
	SiteCachePut = "service/cache.put"

	// SiteDurablePut fires while persisting a result record to disk.
	SiteDurablePut = "service/durable.put"
	// SiteDurableLoad fires while loading durable records at boot.
	SiteDurableLoad = "service/durable.load"
)
