// Package fault is a deterministic failpoint-injection framework: named
// sites compiled into production code paths, armed with seeded trigger
// policies by tests (or by the EMCSIM_FAILPOINTS environment variable) and
// disarmed the rest of the time. The design constraint is the hot path: a
// disarmed site costs exactly one atomic pointer load, no branches taken,
// no allocation — cheap enough to live inside the simulator's cycle loop
// without disturbing its zero-allocation benchmarks.
//
// A site fires according to its Trigger policy:
//
//	always          every check fires
//	oneshot         the first check fires, then the site disarms itself
//	after:N         checks beyond the first N fire
//	after:N:oneshot exactly the (N+1)th check fires, then the site disarms
//	prob:P[:SEED]   each check fires with probability P (seeded xorshift,
//	                so a given arm-sequence is reproducible)
//
// All randomness is a private xorshift64* stream seeded at Enable time, so
// chaos schedules replay exactly from their seed. What a firing *does* is
// the site's business: callers use Fire (boolean), Err (injected error), or
// MustPanic (injected panic) at the site.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the root of every error produced by an armed failpoint;
// match with errors.Is. Injected panics carry an *InjectedPanic value.
var ErrInjected = errors.New("fault: injected")

// InjectedError is the error Err returns when a site fires.
type InjectedError struct {
	Site string
}

func (e *InjectedError) Error() string { return "fault: injected at " + e.Site }

// Unwrap links the error to ErrInjected for errors.Is.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// InjectedPanic is the value MustPanic panics with when a site fires, so
// recover boundaries can tell an injected crash from a real bug.
type InjectedPanic struct {
	Site string
}

func (p *InjectedPanic) String() string { return "fault: injected panic at " + p.Site }

// Error makes the panic value an error too, so recover boundaries that wrap
// panic values into error chains keep errors.Is(err, ErrInjected) working.
func (p *InjectedPanic) Error() string { return p.String() }

// Unwrap links the value to ErrInjected for errors.Is.
func (p *InjectedPanic) Unwrap() error { return ErrInjected }

// Trigger is an armed site's firing policy. The zero value is "always".
type Trigger struct {
	// After suppresses the first After checks.
	After uint64
	// Prob, when in (0,1), fires probabilistically per check (seeded).
	// 0 and >=1 both mean "fire deterministically".
	Prob float64
	// Once disarms the site after its first firing.
	Once bool
	// Seed seeds the probabilistic stream (0 picks a fixed default).
	Seed uint64
}

// Point is one named failpoint site. Declare package-level with Register;
// check with Fire/Err/MustPanic at the site. The nil-policy fast path is a
// single atomic load.
type Point struct {
	name   string
	armed  atomic.Pointer[armedState]
	checks atomic.Uint64 // checks while armed (diagnostics)
	fires  atomic.Uint64 // total firings (diagnostics, survives disarm)
}

// armedState is the mutable policy evaluation state behind an armed Point.
type armedState struct {
	trig  Trigger
	mu    sync.Mutex
	seen  uint64 // checks since armed
	prng  uint64 // xorshift64* state
	spent bool   // oneshot already fired
}

var (
	regMu    sync.Mutex
	registry = map[string]*Point{}
)

// Register declares (or returns the existing) site with the given name.
// Call it from a package-level var so the site exists before any Enable.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Lookup returns the registered site, if any.
func Lookup(name string) (*Point, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	p, ok := registry[name]
	return p, ok
}

// Sites lists every registered site name, sorted.
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Name returns the site's registered name.
func (p *Point) Name() string { return p.name }

// Enable arms the site with the trigger. Re-enabling replaces the previous
// policy and restarts its counters/stream.
func (p *Point) Enable(t Trigger) {
	seed := t.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	p.armed.Store(&armedState{trig: t, prng: seed})
}

// Disable disarms the site; checks return to the one-atomic-load fast path.
func (p *Point) Disable() { p.armed.Store(nil) }

// Armed reports whether the site currently has a policy.
func (p *Point) Armed() bool { return p.armed.Load() != nil }

// Fires returns how many times the site has fired since process start.
func (p *Point) Fires() uint64 { return p.fires.Load() }

// Fire checks the site: it returns true when the armed policy says this
// check fires. Disarmed sites return false after one atomic load — this is
// the path compiled into the simulator's cycle loop, so it must never
// allocate.
//
//simlint:noalloc
func (p *Point) Fire() bool {
	st := p.armed.Load()
	if st == nil {
		return false
	}
	return p.fireSlow(st)
}

func (p *Point) fireSlow(st *armedState) bool {
	p.checks.Add(1)
	st.mu.Lock()
	if st.spent {
		st.mu.Unlock()
		return false
	}
	st.seen++
	if st.seen <= st.trig.After {
		st.mu.Unlock()
		return false
	}
	if pr := st.trig.Prob; pr > 0 && pr < 1 {
		// xorshift64* step; top 53 bits as a uniform float in [0,1).
		x := st.prng
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		st.prng = x
		if float64((x*0x2545F4914F6CDD1D)>>11)/(1<<53) >= pr {
			st.mu.Unlock()
			return false
		}
	}
	if st.trig.Once {
		st.spent = true
	}
	st.mu.Unlock()
	p.fires.Add(1)
	return true
}

// Err returns an *InjectedError when the site fires, nil otherwise.
func (p *Point) Err() error {
	if p.Fire() {
		return &InjectedError{Site: p.name}
	}
	return nil
}

// MustPanic panics with an *InjectedPanic when the site fires.
func (p *Point) MustPanic() {
	if p.Fire() {
		panic(&InjectedPanic{Site: p.name})
	}
}

// DisableAll disarms every registered site (test teardown).
func DisableAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.armed.Store(nil)
	}
}

// ParseTrigger parses one policy spec (the grammar in the package comment).
func ParseTrigger(spec string) (Trigger, error) {
	parts := strings.Split(spec, ":")
	var t Trigger
	switch parts[0] {
	case "always":
		if len(parts) != 1 {
			return Trigger{}, fmt.Errorf("fault: always takes no arguments: %q", spec)
		}
	case "oneshot":
		if len(parts) != 1 {
			return Trigger{}, fmt.Errorf("fault: oneshot takes no arguments: %q", spec)
		}
		t.Once = true
	case "after":
		if len(parts) < 2 || len(parts) > 3 || (len(parts) == 3 && parts[2] != "oneshot") {
			return Trigger{}, fmt.Errorf("fault: want after:N[:oneshot], got %q", spec)
		}
		n, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return Trigger{}, fmt.Errorf("fault: bad after count %q", parts[1])
		}
		t.After = n
		t.Once = len(parts) == 3
	case "prob":
		if len(parts) < 2 || len(parts) > 3 {
			return Trigger{}, fmt.Errorf("fault: want prob:P[:seedN], got %q", spec)
		}
		p, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || p <= 0 || p > 1 {
			return Trigger{}, fmt.Errorf("fault: bad probability %q", parts[1])
		}
		t.Prob = p
		if len(parts) == 3 {
			s, err := strconv.ParseUint(strings.TrimPrefix(parts[2], "seed"), 10, 64)
			if err != nil || !strings.HasPrefix(parts[2], "seed") {
				return Trigger{}, fmt.Errorf("fault: bad seed %q", parts[2])
			}
			t.Seed = s
		}
	default:
		return Trigger{}, fmt.Errorf("fault: unknown trigger %q", spec)
	}
	return t, nil
}

// EnableFromSpec arms sites from a "site=policy;site=policy" string (the
// EMCSIM_FAILPOINTS format). Unknown sites are an error — a typo silently
// injecting nothing would defeat the point. Empty spec is a no-op.
func EnableFromSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, ent := range strings.Split(spec, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, pol, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("fault: bad failpoint entry %q (want site=policy)", ent)
		}
		p, found := Lookup(strings.TrimSpace(name))
		if !found {
			return fmt.Errorf("fault: unknown failpoint %q (known: %s)",
				name, strings.Join(Sites(), ", "))
		}
		t, err := ParseTrigger(strings.TrimSpace(pol))
		if err != nil {
			return err
		}
		p.Enable(t)
	}
	return nil
}
