package fault

import (
	"errors"
	"testing"
)

// site returns a fresh uniquely named point (tests share the process-global
// registry, so names must not collide across test functions).
func site(t *testing.T, name string) *Point {
	t.Helper()
	p := Register("test/" + t.Name() + "/" + name)
	t.Cleanup(p.Disable)
	return p
}

func TestDisarmedNeverFires(t *testing.T) {
	p := site(t, "off")
	for i := 0; i < 100; i++ {
		if p.Fire() {
			t.Fatal("disarmed site fired")
		}
	}
	if p.Err() != nil || p.Fires() != 0 {
		t.Fatalf("disarmed site produced effects: fires=%d", p.Fires())
	}
}

func TestAlways(t *testing.T) {
	p := site(t, "always")
	p.Enable(Trigger{})
	for i := 0; i < 5; i++ {
		if !p.Fire() {
			t.Fatalf("always policy skipped check %d", i)
		}
	}
	p.Disable()
	if p.Fire() {
		t.Fatal("fired after Disable")
	}
}

func TestOneShot(t *testing.T) {
	p := site(t, "oneshot")
	p.Enable(Trigger{Once: true})
	if !p.Fire() {
		t.Fatal("oneshot did not fire on first check")
	}
	for i := 0; i < 5; i++ {
		if p.Fire() {
			t.Fatal("oneshot fired twice")
		}
	}
	if p.Fires() != 1 {
		t.Fatalf("want 1 firing, got %d", p.Fires())
	}
}

func TestAfterN(t *testing.T) {
	p := site(t, "after")
	p.Enable(Trigger{After: 3})
	got := []bool{}
	for i := 0; i < 6; i++ {
		got = append(got, p.Fire())
	}
	want := []bool{false, false, false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after:3 firing pattern %v, want %v", got, want)
		}
	}
}

func TestAfterNOneShot(t *testing.T) {
	p := site(t, "afteroneshot")
	p.Enable(Trigger{After: 2, Once: true})
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Fire() {
			fired++
			if i != 2 {
				t.Fatalf("after:2:oneshot fired on check %d, want 2", i)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("want exactly 1 firing, got %d", fired)
	}
}

// TestProbDeterministic: the probabilistic stream replays exactly from its
// seed, and different seeds give different streams.
func TestProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		p := site(t, "prob")
		p.Enable(Trigger{Prob: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Fire()
		}
		return out
	}
	a, b := run(7), run(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob:0.5 fired %d/%d times, want a mix", fires, len(a))
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestErrAndPanicHelpers(t *testing.T) {
	p := site(t, "helpers")
	p.Enable(Trigger{})
	err := p.Err()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Err not matched by ErrInjected: %v", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != p.Name() {
		t.Fatalf("want InjectedError carrying the site name, got %v", err)
	}
	func() {
		defer func() {
			v := recover()
			ip, ok := v.(*InjectedPanic)
			if !ok || ip.Site != p.Name() {
				t.Fatalf("want InjectedPanic for the site, got %v", v)
			}
		}()
		p.MustPanic()
		t.Fatal("MustPanic did not panic")
	}()
}

func TestParseTrigger(t *testing.T) {
	good := map[string]Trigger{
		"always":           {},
		"oneshot":          {Once: true},
		"after:3":          {After: 3},
		"after:5:oneshot":  {After: 5, Once: true},
		"prob:0.25":        {Prob: 0.25},
		"prob:0.25:seed42": {Prob: 0.25, Seed: 42},
	}
	for spec, want := range good {
		got, err := ParseTrigger(spec)
		if err != nil || got != want {
			t.Fatalf("ParseTrigger(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, bad := range []string{"", "sometimes", "after", "after:x", "prob:2",
		"prob:0", "prob:0.5:42", "always:1", "after:1:twice"} {
		if _, err := ParseTrigger(bad); err == nil {
			t.Fatalf("ParseTrigger(%q) accepted", bad)
		}
	}
}

func TestEnableFromSpec(t *testing.T) {
	a := site(t, "spec-a")
	b := site(t, "spec-b")
	spec := a.Name() + "=oneshot; " + b.Name() + "=after:1"
	if err := EnableFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	if !a.Armed() || !b.Armed() {
		t.Fatal("sites not armed by spec")
	}
	if !a.Fire() || a.Fire() {
		t.Fatal("spec-a should be oneshot")
	}
	if b.Fire() || !b.Fire() {
		t.Fatal("spec-b should be after:1")
	}
	if err := EnableFromSpec("no/such/site=always"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := EnableFromSpec(a.Name() + "=bogus"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := EnableFromSpec(""); err != nil {
		t.Fatalf("empty spec should be a no-op, got %v", err)
	}
}

// TestRegisterIdempotent: registering the same name twice returns the same
// site (packages declare sites in vars; tests look them up by name).
func TestRegisterIdempotent(t *testing.T) {
	p1 := Register("test/idempotent")
	p2 := Register("test/idempotent")
	t.Cleanup(p1.Disable)
	if p1 != p2 {
		t.Fatal("Register returned distinct points for one name")
	}
}

func BenchmarkDisarmedFire(b *testing.B) {
	p := Register("bench/disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Fire() {
			b.Fatal("fired")
		}
	}
}
