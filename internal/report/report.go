// Package report renders a sim.Result as the stable machine-readable JSON
// shape shared by emcsim -json, the service's result endpoint, and emcctl:
// derived metrics plus the per-core and system counters, without internal
// configuration.
package report

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Result is the JSON shape.
type Result struct {
	Cycles uint64  `json:"cycles"`
	AvgIPC float64 `json:"avgIPC"`

	// Cancelled marks a partial result from a cancelled run.
	Cancelled bool `json:"cancelled,omitempty"`

	Cores []Core `json:"cores"`

	CoreMissLatency float64 `json:"coreMissLatency"`
	EMCMissLatency  float64 `json:"emcMissLatency,omitempty"`
	EMCMissFraction float64 `json:"emcMissFraction,omitempty"`
	EMCCacheHitRate float64 `json:"emcCacheHitRate,omitempty"`
	RowConflictRate float64 `json:"rowConflictRate"`

	DRAMDemandReads uint64 `json:"dramDemandReads"`
	DRAMPrefetch    uint64 `json:"dramPrefetchReads"`
	DRAMEMCReads    uint64 `json:"dramEMCReads"`
	DRAMWrites      uint64 `json:"dramWrites"`

	PrefetchIssued uint64 `json:"prefetchIssued,omitempty"`
	PrefetchUseful uint64 `json:"prefetchUseful,omitempty"`

	EnergyTotalJ float64 `json:"energyTotalJ"`
	EnergyChipJ  float64 `json:"energyChipJ"`
	EnergyDRAMJ  float64 `json:"energyDRAMJ"`

	Obs *Obs `json:"obs,omitempty"`
}

// Obs summarizes lifecycle tracing: sampling, volume, and the per-source
// latency attribution (average cycles per miss by component).
type Obs struct {
	SampleEvery uint64 `json:"sampleEvery"`
	Records     uint64 `json:"records"`
	Events      uint64 `json:"events"`

	Core *Attr `json:"core,omitempty"`
	EMC  *Attr `json:"emc,omitempty"`
}

// Attr is one source class's attribution summary.
type Attr struct {
	Count      uint64             `json:"count"`
	MeanTotal  float64            `json:"meanTotal"`
	MeanOnChip float64            `json:"meanOnChip"`
	MeanMemory float64            `json:"meanMemory"`
	Components map[string]float64 `json:"components"`
}

// Core is one core's summary.
type Core struct {
	Benchmark       string  `json:"benchmark"`
	IPC             float64 `json:"ipc"`
	Retired         uint64  `json:"retired"`
	Loads           uint64  `json:"loads"`
	Stores          uint64  `json:"stores"`
	LLCMisses       uint64  `json:"llcMisses"`
	DependentMisses uint64  `json:"dependentMisses"`
	ChainsGenerated uint64  `json:"chainsGenerated"`
	ChainsAborted   uint64  `json:"chainsAborted"`
}

func attr(a *obs.SourceAttr) *Attr {
	if a.Count == 0 {
		return nil
	}
	out := &Attr{
		Count:      a.Count,
		MeanTotal:  a.MeanTotal(),
		MeanOnChip: float64(a.OnChipSum()) / float64(a.Count),
		MeanMemory: float64(a.MemSum()) / float64(a.Count),
		Components: map[string]float64{},
	}
	for c := obs.Component(0); c < obs.NumComponents; c++ {
		out.Components[c.String()] = a.MeanComp(c)
	}
	return out
}

// New converts a sim.Result.
func New(r *sim.Result) Result {
	out := Result{
		Cycles:          r.Cycles,
		AvgIPC:          r.AvgIPC(),
		CoreMissLatency: r.CoreMissLatency(),
		EMCMissLatency:  r.EMCMissLatency(),
		EMCMissFraction: r.EMCMissFraction(),
		EMCCacheHitRate: r.EMCCacheHitRate(),
		RowConflictRate: r.RowConflictRate(),
		DRAMDemandReads: r.Sys.DRAMDemandReads,
		DRAMPrefetch:    r.Sys.DRAMPrefetch,
		DRAMEMCReads:    r.Sys.DRAMEMCReads,
		DRAMWrites:      r.Sys.DRAMWrites,
		PrefetchIssued:  r.PrefetchIssued,
		PrefetchUseful:  r.PrefetchUseful,
		EnergyTotalJ:    r.Energy.Total(),
		EnergyChipJ:     r.Energy.Chip(),
		EnergyDRAMJ:     r.Energy.DRAMStatic + r.Energy.DRAMDynamic,
	}
	for _, c := range r.Cores {
		out.Cores = append(out.Cores, Core{
			Benchmark:       c.Benchmark,
			IPC:             c.IPC,
			Retired:         c.Stats.Retired,
			Loads:           c.Stats.Loads,
			Stores:          c.Stats.Stores,
			LLCMisses:       c.Stats.LLCMissLoads,
			DependentMisses: c.Stats.DependentMissLoads,
			ChainsGenerated: c.Stats.ChainsGenerated,
			ChainsAborted:   c.Stats.ChainAborts,
		})
	}
	if r.Obs != nil {
		out.Obs = &Obs{
			SampleEvery: r.Obs.SampleEvery,
			Records:     r.Obs.Finished,
			Events:      r.Obs.Events,
			Core:        attr(&r.Obs.Attr.Core),
			EMC:         attr(&r.Obs.Attr.EMC),
		}
	}
	return out
}
