// Package profiling wires the standard -cpuprofile/-memprofile flag pair
// into a command. Both cmd/experiments and cmd/emcsim use it so profiles can
// be captured from exactly the binaries used for real runs.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that finishes the CPU profile and writes a heap profile (if
// memPath is non-empty). Call the stop function exactly once, at the end of
// the run; it must not be deferred past os.Exit.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently-freed objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}
