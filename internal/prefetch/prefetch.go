// Package prefetch implements the three hardware prefetchers the paper
// evaluates against (Table 1): a POWER4-style stream prefetcher, a Markov
// correlation prefetcher, and a global-history-buffer (GHB) global
// delta-correlation (G/DC) prefetcher, plus Feedback-Directed Prefetching
// (FDP) throttling that adapts the prefetch degree between 1 and 32.
//
// All prefetchers train on LLC demand accesses and prefetch into the LLC,
// matching the paper's configuration.
package prefetch

// Event is one demand access observed at the LLC.
type Event struct {
	LineAddr uint64
	PC       uint64
	Core     int
	Miss     bool
}

// Prefetcher consumes demand events and proposes line addresses to prefetch.
type Prefetcher interface {
	Name() string
	// Train observes an event and returns candidate prefetch line
	// addresses, best first. The caller (FDP or the LLC) bounds how many
	// are actually issued.
	Train(ev Event) []uint64
}

// Null is the no-prefetching baseline.
type Null struct{}

// Name returns "none".
func (Null) Name() string { return "none" }

// Train never proposes prefetches.
func (Null) Train(Event) []uint64 { return nil }

// Combined chains several prefetchers (the paper pairs Markov with stream).
type Combined struct {
	Parts []Prefetcher
	name  string
}

// NewCombined builds a combined prefetcher.
func NewCombined(name string, parts ...Prefetcher) *Combined {
	return &Combined{Parts: parts, name: name}
}

// Name returns the combination's name.
func (c *Combined) Name() string { return c.name }

// Train feeds all parts and concatenates their proposals.
func (c *Combined) Train(ev Event) []uint64 {
	var out []uint64
	for _, p := range c.Parts {
		out = append(out, p.Train(ev)...)
	}
	return out
}

// --- Stream prefetcher ------------------------------------------------------

// StreamConfig sizes the stream prefetcher (Table 1: 32 streams, distance 32).
type StreamConfig struct {
	Streams  int
	Distance int
	// TrainHits is how many consecutive same-direction accesses make a
	// stream active.
	TrainHits int
}

// DefaultStreamConfig mirrors Table 1.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Streams: 32, Distance: 32, TrainHits: 2}
}

type streamEntry struct {
	valid    bool
	lastLine uint64
	dir      int64
	conf     int
	ahead    uint64 // furthest line prefetched (distance control)
	lru      uint64
}

// Stream is a per-core stride-1 stream prefetcher in the style of the IBM
// POWER4 prefetch engine.
type Stream struct {
	cfg     StreamConfig
	entries []streamEntry
	tick    uint64
}

// NewStream builds a stream prefetcher.
func NewStream(cfg StreamConfig) *Stream {
	return &Stream{cfg: cfg, entries: make([]streamEntry, cfg.Streams)}
}

// Name returns "stream".
func (s *Stream) Name() string { return "stream" }

// Train implements Prefetcher.
func (s *Stream) Train(ev Event) []uint64 {
	if !ev.Miss {
		return nil
	}
	s.tick++
	l := ev.LineAddr
	// Find a stream this access extends (within 1 line of the last access,
	// same direction).
	for i := range s.entries {
		e := &s.entries[i]
		if !e.valid {
			continue
		}
		d := int64(l) - int64(e.lastLine)
		if d == 0 {
			e.lru = s.tick
			return nil
		}
		if (d == e.dir) || (e.conf == 0 && (d == 1 || d == -1)) {
			if e.conf == 0 {
				e.dir = d
			}
			e.conf++
			e.lastLine = l
			e.lru = s.tick
			if e.conf < s.cfg.TrainHits {
				return nil
			}
			// Active: propose lines ahead of the access, up to Distance
			// beyond the current position.
			var out []uint64
			limit := int64(l) + e.dir*int64(s.cfg.Distance)
			next := int64(e.ahead)
			if e.dir > 0 && next <= int64(l) || e.dir < 0 && next >= int64(l) || e.ahead == 0 {
				next = int64(l) + e.dir
			}
			for ; (e.dir > 0 && next <= limit) || (e.dir < 0 && next >= limit); next += e.dir {
				if next < 0 {
					break
				}
				out = append(out, uint64(next))
			}
			if len(out) > 0 {
				e.ahead = out[len(out)-1]
			}
			return out
		}
	}
	// Allocate a new stream over the LRU entry.
	victim := 0
	for i := range s.entries {
		if !s.entries[i].valid {
			victim = i
			break
		}
		if s.entries[i].lru < s.entries[victim].lru {
			victim = i
		}
	}
	s.entries[victim] = streamEntry{valid: true, lastLine: l, lru: s.tick}
	return nil
}

// --- Markov prefetcher ------------------------------------------------------

// MarkovConfig sizes the Markov prefetcher (Table 1: 1 MB correlation table,
// 4 addresses per entry).
type MarkovConfig struct {
	// Entries is the number of correlation-table entries. 1 MB at ~32 bytes
	// per entry (tag + 4 successors) is 32Ki entries.
	Entries    int
	Successors int
}

// DefaultMarkovConfig mirrors Table 1.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{Entries: 32768, Successors: 4}
}

type markovEntry struct {
	succ []uint64 // most recent first
}

// Markov is a correlation prefetcher: it records which miss addresses
// historically followed each miss address and prefetches the recorded
// successors.
type Markov struct {
	cfg   MarkovConfig
	table map[uint64]*markovEntry
	order []uint64 // FIFO of keys for bounded eviction
	prev  uint64
	has   bool
}

// NewMarkov builds a Markov prefetcher.
func NewMarkov(cfg MarkovConfig) *Markov {
	return &Markov{cfg: cfg, table: make(map[uint64]*markovEntry, cfg.Entries)}
}

// Name returns "markov".
func (m *Markov) Name() string { return "markov" }

// Train implements Prefetcher.
func (m *Markov) Train(ev Event) []uint64 {
	if !ev.Miss {
		return nil
	}
	cur := ev.LineAddr
	if m.has {
		e := m.table[m.prev]
		if e == nil {
			if len(m.table) >= m.cfg.Entries {
				// FIFO eviction keeps the table bounded and deterministic.
				old := m.order[0]
				m.order = m.order[1:]
				delete(m.table, old)
			}
			e = &markovEntry{}
			m.table[m.prev] = e
			m.order = append(m.order, m.prev)
		}
		// Move-to-front insert of cur, capped at Successors.
		ns := make([]uint64, 0, m.cfg.Successors)
		ns = append(ns, cur)
		for _, s := range e.succ {
			if s != cur && len(ns) < m.cfg.Successors {
				ns = append(ns, s)
			}
		}
		e.succ = ns
	}
	m.prev = cur
	m.has = true
	if e := m.table[cur]; e != nil {
		return append([]uint64(nil), e.succ...)
	}
	return nil
}

// --- GHB G/DC prefetcher ----------------------------------------------------

// GHBConfig sizes the global history buffer (Table 1: 1k entries, 12 KB).
type GHBConfig struct {
	Entries int
	// Lookahead bounds how many deltas are replayed per trigger.
	Lookahead int
}

// DefaultGHBConfig mirrors Table 1.
func DefaultGHBConfig() GHBConfig { return GHBConfig{Entries: 1024, Lookahead: 32} }

// GHB is a global-history-buffer prefetcher using global delta correlation
// (G/DC): it indexes the history by the last two address deltas and replays
// the delta sequence that followed the previous occurrence.
type GHB struct {
	cfg   GHBConfig
	buf   []uint64            // line addresses, logical append-only
	head  uint64              // total pushes
	index map[[2]int64]uint64 // delta pair -> absolute position of its occurrence
}

// NewGHB builds a GHB G/DC prefetcher.
func NewGHB(cfg GHBConfig) *GHB {
	return &GHB{cfg: cfg, buf: make([]uint64, cfg.Entries), index: make(map[[2]int64]uint64)}
}

// Name returns "ghb".
func (g *GHB) Name() string { return "ghb" }

func (g *GHB) at(pos uint64) uint64 { return g.buf[pos%uint64(g.cfg.Entries)] }

func (g *GHB) inWindow(pos uint64) bool {
	return pos < g.head && g.head-pos <= uint64(g.cfg.Entries)
}

// Train implements Prefetcher.
func (g *GHB) Train(ev Event) []uint64 {
	if !ev.Miss {
		return nil
	}
	cur := ev.LineAddr
	g.buf[g.head%uint64(g.cfg.Entries)] = cur
	g.head++
	if g.head < 3 {
		return nil
	}
	n := g.head - 1 // position of cur
	d1 := int64(g.at(n-1)) - int64(g.at(n-2))
	d2 := int64(cur) - int64(g.at(n-1))
	key := [2]int64{d1, d2}
	prevPos, ok := g.index[key]
	g.index[key] = n
	if !ok || !g.inWindow(prevPos) || prevPos+1 >= g.head {
		return nil
	}
	// Collect the deltas that followed the previous occurrence of this
	// delta context (inclusive of the delta ending at the current miss, so
	// a pure stride — whose previous context ends one miss back — still
	// yields its repeating delta).
	var ds []int64
	for p := prevPos + 1; p < g.head; p++ {
		if !g.inWindow(p - 1) {
			continue
		}
		ds = append(ds, int64(g.at(p))-int64(g.at(p-1)))
	}
	if len(ds) == 0 {
		return nil
	}
	// Short delta sequences (strides and 2-cycles) are extrapolated by
	// cycling; longer histories are replayed once.
	n2 := len(ds)
	if len(ds) <= 2 {
		n2 = g.cfg.Lookahead
	}
	var out []uint64
	addr := int64(cur)
	for i := 0; i < n2 && len(out) < g.cfg.Lookahead; i++ {
		addr += ds[i%len(ds)]
		if addr < 0 {
			break
		}
		out = append(out, uint64(addr))
	}
	return out
}

// --- Feedback-directed throttling -------------------------------------------

// FDPConfig parameterizes feedback-directed prefetching (Table 1: dynamic
// degree 1..32).
type FDPConfig struct {
	MinDegree, MaxDegree int
	// Interval is the number of issued prefetches between adjustments.
	Interval uint64
	// HighAccuracy and LowAccuracy are the thresholds for ramping the
	// degree up or down.
	HighAccuracy, LowAccuracy float64
}

// DefaultFDPConfig mirrors the paper's setup.
func DefaultFDPConfig() FDPConfig {
	return FDPConfig{MinDegree: 1, MaxDegree: 32, Interval: 256,
		HighAccuracy: 0.60, LowAccuracy: 0.30}
}

// FDP wraps a prefetcher and throttles its degree by measured accuracy.
// The owner reports usefulness via RecordUseful (a demand hit on a
// prefetched line).
type FDP struct {
	cfg   FDPConfig
	inner Prefetcher

	degree        int
	issuedEpoch   uint64
	usefulEpoch   uint64
	Issued        uint64
	Useful        uint64
	DegreeChanges uint64
}

// NewFDP wraps inner with feedback throttling, starting at degree 4.
func NewFDP(cfg FDPConfig, inner Prefetcher) *FDP {
	d := 4
	if d < cfg.MinDegree {
		d = cfg.MinDegree
	}
	if d > cfg.MaxDegree {
		d = cfg.MaxDegree
	}
	return &FDP{cfg: cfg, inner: inner, degree: d}
}

// Name returns the inner prefetcher's name (FDP is policy, not identity).
func (f *FDP) Name() string { return f.inner.Name() }

// Degree returns the current dynamic degree.
func (f *FDP) Degree() int { return f.degree }

// Train proposes at most Degree() prefetches from the inner prefetcher.
func (f *FDP) Train(ev Event) []uint64 {
	out := f.inner.Train(ev)
	if len(out) > f.degree {
		out = out[:f.degree]
	}
	f.Issued += uint64(len(out))
	f.issuedEpoch += uint64(len(out))
	if f.issuedEpoch >= f.cfg.Interval {
		f.adjust()
	}
	return out
}

// RecordUseful notes that a prefetched line was hit by a demand access.
func (f *FDP) RecordUseful() {
	f.Useful++
	f.usefulEpoch++
}

func (f *FDP) adjust() {
	acc := float64(f.usefulEpoch) / float64(f.issuedEpoch)
	old := f.degree
	switch {
	case acc >= f.cfg.HighAccuracy && f.degree < f.cfg.MaxDegree:
		f.degree *= 2
		if f.degree > f.cfg.MaxDegree {
			f.degree = f.cfg.MaxDegree
		}
	case acc < f.cfg.LowAccuracy && f.degree > f.cfg.MinDegree:
		f.degree /= 2
		if f.degree < f.cfg.MinDegree {
			f.degree = f.cfg.MinDegree
		}
	}
	if f.degree != old {
		f.DegreeChanges++
	}
	f.issuedEpoch = 0
	f.usefulEpoch = 0
}

// Accuracy returns lifetime useful/issued.
func (f *FDP) Accuracy() float64 {
	if f.Issued == 0 {
		return 0
	}
	return float64(f.Useful) / float64(f.Issued)
}
