package prefetch

import (
	"testing"
)

func miss(line uint64) Event { return Event{LineAddr: line, Miss: true} }

func TestNull(t *testing.T) {
	var n Null
	if n.Name() != "none" || n.Train(miss(1)) != nil {
		t.Error("Null prefetcher must do nothing")
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	var got []uint64
	for l := uint64(100); l < 110; l++ {
		got = s.Train(miss(l))
		if len(got) > 0 {
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("stream never activated on an ascending miss sequence")
	}
	// Proposals must be ahead of the trigger, ascending.
	for i, p := range got {
		if p <= 101 {
			t.Errorf("proposal %d (%d) not ahead of stream", i, p)
		}
		if i > 0 && p != got[i-1]+1 {
			t.Errorf("proposals not sequential: %v", got)
		}
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	var got []uint64
	for l := uint64(1000); l > 990; l-- {
		got = s.Train(miss(l))
		if len(got) > 0 {
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("stream never activated on a descending sequence")
	}
	if got[0] >= 1000 {
		t.Errorf("descending proposals should be below trigger: %v", got[:3])
	}
}

func TestStreamIgnoresRandom(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	lines := []uint64{5000, 12, 88341, 777, 4242, 90909, 13, 55555}
	for _, l := range lines {
		if out := s.Train(miss(l)); len(out) != 0 {
			t.Fatalf("random misses should not trigger prefetches, got %v", out)
		}
	}
}

func TestStreamHitsDontTrain(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	for l := uint64(0); l < 20; l++ {
		if out := s.Train(Event{LineAddr: l, Miss: false}); out != nil {
			t.Fatal("hits must not train the stream prefetcher")
		}
	}
}

func TestStreamDistanceBounded(t *testing.T) {
	cfg := DefaultStreamConfig()
	s := NewStream(cfg)
	var maxAhead uint64
	for l := uint64(0); l < 100; l++ {
		for _, p := range s.Train(miss(l)) {
			if p-l > maxAhead {
				maxAhead = p - l
			}
		}
	}
	if maxAhead > uint64(cfg.Distance) {
		t.Errorf("prefetched %d lines ahead, max distance %d", maxAhead, cfg.Distance)
	}
	if maxAhead == 0 {
		t.Error("stream never prefetched")
	}
}

func TestMarkovLearnsSuccessors(t *testing.T) {
	m := NewMarkov(DefaultMarkovConfig())
	// Teach the pattern A -> B -> C twice, then revisit A.
	seq := []uint64{10, 20, 30, 10, 20, 30}
	for _, l := range seq {
		m.Train(miss(l))
	}
	out := m.Train(miss(10))
	if len(out) == 0 || out[0] != 20 {
		t.Fatalf("Markov should predict 20 after 10, got %v", out)
	}
}

func TestMarkovMultipleSuccessors(t *testing.T) {
	m := NewMarkov(MarkovConfig{Entries: 16, Successors: 4})
	for _, l := range []uint64{1, 100, 1, 200, 1, 300} {
		m.Train(miss(l))
	}
	out := m.Train(miss(1))
	if len(out) != 3 {
		t.Fatalf("want 3 successors of 1, got %v", out)
	}
	if out[0] != 300 {
		t.Errorf("most recent successor first, got %v", out)
	}
}

func TestMarkovSuccessorCap(t *testing.T) {
	m := NewMarkov(MarkovConfig{Entries: 16, Successors: 2})
	for _, l := range []uint64{1, 100, 1, 200, 1, 300, 1, 400} {
		m.Train(miss(l))
	}
	out := m.Train(miss(1))
	if len(out) != 2 || out[0] != 400 || out[1] != 300 {
		t.Errorf("cap at 2 most recent successors, got %v", out)
	}
}

func TestMarkovTableBounded(t *testing.T) {
	m := NewMarkov(MarkovConfig{Entries: 8, Successors: 2})
	for i := uint64(0); i < 1000; i++ {
		m.Train(miss(i * 17))
	}
	if len(m.table) > 8 {
		t.Errorf("table grew to %d entries, cap 8", len(m.table))
	}
}

func TestGHBDeltaCorrelation(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	// Repeating delta pattern +1,+1,+10. Second time through the pattern the
	// delta context repeats and GHB must replay the following deltas.
	var addr uint64 = 1000
	deltas := []int64{1, 1, 10, 1, 1, 10, 1, 1, 10}
	var last []uint64
	for _, d := range deltas {
		addr = uint64(int64(addr) + d)
		out := g.Train(miss(addr))
		if len(out) > 0 {
			last = out
		}
	}
	if len(last) == 0 {
		t.Fatal("GHB never predicted on a repeating delta sequence")
	}
	// After context (1,1) at addr, history says next delta is 10.
	found := false
	for _, p := range last {
		if p > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no positive predictions: %v", last)
	}
}

func TestGHBPredictsExactDeltas(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	// Strided misses: +4 each time. Context (4,4) recurs; replayed deltas
	// are all +4, so predictions are addr+4, addr+8, ...
	var preds []uint64
	var addr uint64
	for i := 0; i < 10; i++ {
		addr += 4
		out := g.Train(miss(addr))
		if len(out) > 0 {
			preds = out
			break
		}
	}
	if len(preds) == 0 {
		t.Fatal("no predictions for strided pattern")
	}
	for i, p := range preds {
		want := addr + uint64(4*(i+1))
		if p != want {
			t.Errorf("prediction %d = %d, want %d", i, p, want)
		}
	}
}

func TestGHBNoFalsePositivesCold(t *testing.T) {
	g := NewGHB(DefaultGHBConfig())
	if out := g.Train(miss(5)); out != nil {
		t.Error("first miss should predict nothing")
	}
	if out := g.Train(miss(9)); out != nil {
		t.Error("second miss should predict nothing")
	}
}

func TestFDPThrottlesDown(t *testing.T) {
	cfg := DefaultFDPConfig()
	cfg.Interval = 32
	f := NewFDP(cfg, NewStream(DefaultStreamConfig()))
	start := f.Degree()
	// Feed a long stream so prefetches issue, never report usefulness:
	// accuracy 0 -> degree must shrink to min.
	for l := uint64(0); l < 5000; l++ {
		f.Train(miss(l))
	}
	if f.Degree() != cfg.MinDegree {
		t.Errorf("degree = %d, want min %d (started %d)", f.Degree(), cfg.MinDegree, start)
	}
	if f.DegreeChanges == 0 {
		t.Error("degree should have changed")
	}
}

func TestFDPRampsUp(t *testing.T) {
	cfg := DefaultFDPConfig()
	cfg.Interval = 16
	f := NewFDP(cfg, NewStream(DefaultStreamConfig()))
	for l := uint64(0); l < 20000; l++ {
		out := f.Train(miss(l))
		// Report every prefetch useful: accuracy 1.0.
		for range out {
			f.RecordUseful()
		}
	}
	if f.Degree() != cfg.MaxDegree {
		t.Errorf("degree = %d, want max %d", f.Degree(), cfg.MaxDegree)
	}
	if f.Accuracy() < 0.99 {
		t.Errorf("accuracy = %v, want ~1", f.Accuracy())
	}
}

func TestFDPBoundsProposals(t *testing.T) {
	cfg := DefaultFDPConfig()
	f := NewFDP(cfg, NewStream(DefaultStreamConfig()))
	for l := uint64(0); l < 200; l++ {
		if out := f.Train(miss(l)); len(out) > f.Degree() {
			t.Fatalf("FDP returned %d proposals with degree %d", len(out), f.Degree())
		}
	}
}

func TestCombined(t *testing.T) {
	c := NewCombined("markov+stream", NewMarkov(DefaultMarkovConfig()), NewStream(DefaultStreamConfig()))
	if c.Name() != "markov+stream" {
		t.Error("name wrong")
	}
	// A sequential pattern triggers the stream part at least.
	var any bool
	for l := uint64(0); l < 50; l++ {
		if len(c.Train(miss(l))) > 0 {
			any = true
		}
	}
	if !any {
		t.Error("combined prefetcher never proposed")
	}
}

// Coverage comparison: on a pure stream, the stream prefetcher must cover
// far more misses than on a pointer-chase-like random sequence. This is the
// mechanism behind Fig. 3 of the paper.
func TestStreamCoverageContrast(t *testing.T) {
	covered := func(lines []uint64) int {
		s := NewStream(DefaultStreamConfig())
		pf := map[uint64]bool{}
		n := 0
		for _, l := range lines {
			if pf[l] {
				n++
			}
			for _, p := range s.Train(miss(l)) {
				pf[p] = true
			}
		}
		return n
	}
	var seq, rnd []uint64
	x := uint64(12345)
	for i := 0; i < 500; i++ {
		seq = append(seq, uint64(i))
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		rnd = append(rnd, x%1000000)
	}
	cs, cr := covered(seq), covered(rnd)
	if cs < 400 {
		t.Errorf("stream coverage on sequential pattern too low: %d/500", cs)
	}
	if cr > 20 {
		t.Errorf("stream coverage on random pattern too high: %d/500", cr)
	}
}
