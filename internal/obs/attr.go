package obs

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Component is one latency bucket of a request's end-to-end time. The
// decomposition mirrors the paper's Figures 1/2/19: on-chip interconnect
// (request and response directions split), cache lookup, memory-controller
// queueing, and DRAM service. Merged is the time a request spent merged
// behind another in-flight request for the same line (it has no MC/DRAM
// stamps of its own); it keeps every component sum exact.
type Component uint8

// Latency components. They partition [issue, fill]:
//
//	total == RingReq + LLCLookup + Queue + DRAM + RingRsp + Merged
//
// for every attributed request, by construction (CompsFromStamps).
const (
	CompRingReq   Component = iota // issue -> MC arrival, minus the LLC lookup
	CompLLCLookup                  // LLC tag-lookup occupancy at the slice
	CompQueue                      // MC arrival -> first DRAM command
	CompDRAM                       // DRAM service (first command -> last beat)
	CompRingRsp                    // last beat -> delivery at the requester
	CompMerged                     // unstamped remainder (merged waiters)
	NumComponents
)

var componentNames = [NumComponents]string{
	"ring_req", "llc_lookup", "mc_queue", "dram", "ring_rsp", "merged",
}

// String returns the component's snake_case name.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

// OnChip reports whether the component is on-chip time (interconnect +
// cache lookup) as opposed to memory-system time (queueing + DRAM). Merged
// time is memory-system time: the request was waiting on someone else's
// DRAM access.
func (c Component) OnChip() bool {
	return c == CompRingReq || c == CompLLCLookup || c == CompRingRsp
}

// Stamps carries the per-request timestamps the simulator already tracks;
// zero means "never reached that point".
type Stamps struct {
	Issued     uint64
	SliceReach uint64
	SliceDone  uint64
	MCReach    uint64
	DRAMIssued uint64
	DRAMDone   uint64
	Fill       uint64
}

// CompsFromStamps decomposes one request timeline into components. Each
// delta is counted only when both endpoints exist and are ordered; whatever
// the stamps cannot explain lands in CompMerged, so the components always
// sum to Fill-Issued exactly.
func CompsFromStamps(st Stamps) (comps [NumComponents]uint64, total uint64) {
	if st.Fill < st.Issued {
		return comps, 0
	}
	total = st.Fill - st.Issued
	var llc uint64
	if st.SliceReach >= st.Issued && st.SliceDone >= st.SliceReach && st.SliceDone <= st.Fill && st.SliceReach > 0 {
		llc = st.SliceDone - st.SliceReach
	}
	explained := uint64(0)
	if st.MCReach >= st.Issued && st.MCReach <= st.Fill && st.MCReach > 0 {
		// The request reached the memory controller itself.
		req := st.MCReach - st.Issued
		if llc <= req {
			comps[CompRingReq] = req - llc
			comps[CompLLCLookup] = llc
		} else {
			comps[CompRingReq] = req
		}
		explained = req
		if st.DRAMIssued >= st.MCReach && st.DRAMDone >= st.DRAMIssued && st.DRAMDone <= st.Fill {
			comps[CompQueue] = st.DRAMIssued - st.MCReach
			comps[CompDRAM] = st.DRAMDone - st.DRAMIssued
			comps[CompRingRsp] = st.Fill - st.DRAMDone
			explained = total
		}
	} else if llc > 0 && llc <= total {
		// Slice-only timeline (merged at the slice): the lookup is the only
		// attributable on-chip segment.
		comps[CompLLCLookup] = llc
		explained = llc
	}
	comps[CompMerged] = total - explained
	return comps, total
}

// SourceAttr aggregates attribution for one request source.
type SourceAttr struct {
	Count    uint64
	TotalSum uint64
	CompSum  [NumComponents]uint64

	Total stats.Histogram
	Comp  [NumComponents]stats.Histogram
}

// Add accumulates one decomposed request.
func (a *SourceAttr) Add(comps [NumComponents]uint64, total uint64) {
	a.Count++
	a.TotalSum += total
	a.Total.Add(total)
	for i, c := range comps {
		a.CompSum[i] += c
		a.Comp[i].Add(c)
	}
}

// MeanTotal returns the average end-to-end latency.
func (a *SourceAttr) MeanTotal() float64 { return stats.Ratio(a.TotalSum, a.Count) }

// MeanComp returns the average cycles spent in one component.
func (a *SourceAttr) MeanComp(c Component) float64 { return stats.Ratio(a.CompSum[c], a.Count) }

// OnChipSum returns the total on-chip cycles (interconnect + LLC lookup).
func (a *SourceAttr) OnChipSum() uint64 {
	var s uint64
	for c := Component(0); c < NumComponents; c++ {
		if c.OnChip() {
			s += a.CompSum[c]
		}
	}
	return s
}

// MemSum returns the total memory-system cycles (queue + DRAM + merged).
func (a *SourceAttr) MemSum() uint64 { return a.TotalSum - a.OnChipSum() }

// Attribution aggregates per-source latency breakdowns for sampled LLC
// misses. Prefetch requests are not attributed (they have no consumer to
// deliver to).
type Attribution struct {
	Core SourceAttr
	EMC  SourceAttr
}

// AddStamps decomposes and accumulates one completed request.
func (at *Attribution) AddStamps(src Source, st Stamps) {
	comps, total := CompsFromStamps(st)
	switch src {
	case SrcCore:
		at.Core.Add(comps, total)
	case SrcEMC:
		at.EMC.Add(comps, total)
	}
}

// Report is the obs summary a run attaches to its Result.
type Report struct {
	SampleEvery uint64
	Started     uint64
	Finished    uint64
	Dropped     uint64
	Events      uint64
	Attr        Attribution
}

// Table renders the Figure-1/2-style latency-attribution breakdown: average
// cycles per component for core- and EMC-issued misses, with the on-chip vs
// memory-system split the paper's argument rests on.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency attribution (1-in-%d sampled; avg cycles per miss)\n", r.SampleEvery)
	fmt.Fprintf(&b, "  %-8s %9s %9s", "source", "misses", "total")
	for c := Component(0); c < NumComponents; c++ {
		fmt.Fprintf(&b, " %10s", c.String())
	}
	fmt.Fprintf(&b, " %9s %9s\n", "on-chip", "memory")
	row := func(name string, a *SourceAttr) {
		if a.Count == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-8s %9d %9.1f", name, a.Count, a.MeanTotal())
		for c := Component(0); c < NumComponents; c++ {
			fmt.Fprintf(&b, " %10.1f", a.MeanComp(c))
		}
		fmt.Fprintf(&b, " %9.1f %9.1f\n",
			stats.Ratio(a.OnChipSum(), a.Count), stats.Ratio(a.MemSum(), a.Count))
	}
	row("core", &r.Attr.Core)
	row("emc", &r.Attr.EMC)
	if r.Attr.Core.Count > 0 {
		fmt.Fprintf(&b, "  core p50<=%d p95<=%d p99<=%d",
			r.Attr.Core.Total.Quantile(0.5), r.Attr.Core.Total.Quantile(0.95), r.Attr.Core.Total.Quantile(0.99))
		if r.Attr.EMC.Count > 0 {
			fmt.Fprintf(&b, "   emc p50<=%d p95<=%d p99<=%d",
				r.Attr.EMC.Total.Quantile(0.5), r.Attr.EMC.Total.Quantile(0.95), r.Attr.EMC.Total.Quantile(0.99))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
