package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGroup(map[string]string{"run": "t"}, []string{"cycles"})
	g.Publish([]float64{42})
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	if m := get("/metrics"); !strings.Contains(m, `emcsim_cycles{run="t"} 42`) {
		t.Errorf("/metrics missing gauge:\n%s", m)
	}
	if v := get("/debug/vars"); !strings.Contains(v, `"cycles": 42`) && !strings.Contains(v, `"cycles":42`) {
		t.Errorf("/debug/vars missing registry:\n%s", v)
	}
	if p := get("/debug/pprof/cmdline"); len(p) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}

	// A second server must not panic on the process-global expvar name and
	// must serve its own registry.
	reg2 := NewRegistry()
	reg2.NewGroup(nil, []string{"other"}).Publish([]float64{7})
	srv2, err := StartServer("127.0.0.1:0", reg2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp, err := http.Get("http://" + srv2.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "emcsim_other 7") {
		t.Errorf("second server /metrics wrong:\n%s", body)
	}
}
