package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewTracerDisabled(t *testing.T) {
	if tr := NewTracer(Config{}); tr != nil {
		t.Fatal("disabled config must yield a nil tracer")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, SampleEvery: 4})
	var got int
	for i := 0; i < 10; i++ {
		if r := tr.Start(SrcCore, 0, uint64(i), 0, false, 100); r != nil {
			got++
			tr.Finish(r)
		}
	}
	// seq 1, 5, 9 hit the modulo.
	if got != 3 {
		t.Fatalf("sampled %d of 10 at 1-in-4, want 3", got)
	}
	if tr.Started() != 3 {
		t.Fatalf("Started = %d", tr.Started())
	}
	if tr.SampleEvery() != 4 {
		t.Fatalf("SampleEvery = %d", tr.SampleEvery())
	}
}

func TestTracerPoolingReusesRecords(t *testing.T) {
	tr := NewTracer(Config{Enabled: true})
	r1 := tr.Start(SrcCore, 1, 0xabc, 0x10, true, 5)
	tr.StampEvent(r1, StageFill, 50)
	tr.Finish(r1)
	r2 := tr.Start(SrcEMC, 2, 0xdef, 0x20, false, 6)
	if r2 != r1 {
		t.Fatal("un-retained record was not recycled")
	}
	if len(r2.Events) != 1 || r2.Events[0].Stage != StageIssue || r2.Events[0].At != 6 {
		t.Fatalf("recycled record kept stale events: %+v", r2.Events)
	}
	if r2.Source != SrcEMC || r2.Core != 2 || r2.Dependent {
		t.Fatalf("recycled record kept stale identity: %+v", r2)
	}
}

func TestTracerRetainAndDrop(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, Retain: true, MaxRecords: 2})
	for i := 0; i < 3; i++ {
		r := tr.Start(SrcCore, 0, uint64(i), 0, false, uint64(i))
		tr.Finish(r)
	}
	if len(tr.Records()) != 2 {
		t.Fatalf("retained %d records, want MaxRecords=2", len(tr.Records()))
	}
	rep := tr.Report()
	if rep.Finished != 3 || rep.Dropped != 1 {
		t.Fatalf("finished/dropped = %d/%d, want 3/1", rep.Finished, rep.Dropped)
	}
}

func TestCompsFromStampsFullPath(t *testing.T) {
	st := Stamps{Issued: 100, SliceReach: 110, SliceDone: 115,
		MCReach: 130, DRAMIssued: 170, DRAMDone: 250, Fill: 260}
	comps, total := CompsFromStamps(st)
	if total != 160 {
		t.Fatalf("total = %d", total)
	}
	want := map[Component]uint64{
		CompRingReq: 25, CompLLCLookup: 5, CompQueue: 40,
		CompDRAM: 80, CompRingRsp: 10, CompMerged: 0,
	}
	var sum uint64
	for c, w := range want {
		if comps[c] != w {
			t.Errorf("%s = %d, want %d", c, comps[c], w)
		}
	}
	for _, v := range comps {
		sum += v
	}
	if sum != total {
		t.Fatalf("components sum %d != total %d", sum, total)
	}
}

func TestCompsFromStampsPartialTimelines(t *testing.T) {
	cases := []struct {
		name string
		st   Stamps
	}{
		{"merged at MC (no DRAM stamps)", Stamps{Issued: 10, SliceReach: 12, SliceDone: 14, MCReach: 20, Fill: 90}},
		{"merged at slice (slice-only)", Stamps{Issued: 10, SliceReach: 12, SliceDone: 14, Fill: 90}},
		{"no stamps at all", Stamps{Issued: 10, Fill: 90}},
		{"emc direct (no slice)", Stamps{Issued: 10, MCReach: 13, DRAMIssued: 30, DRAMDone: 80, Fill: 85}},
		{"dram issued before this waiter arrived", Stamps{Issued: 50, MCReach: 60, DRAMIssued: 40, DRAMDone: 80, Fill: 90}},
	}
	for _, tc := range cases {
		comps, total := CompsFromStamps(tc.st)
		if total != tc.st.Fill-tc.st.Issued {
			t.Errorf("%s: total = %d", tc.name, total)
		}
		var sum uint64
		for _, v := range comps {
			sum += v
		}
		if sum != total {
			t.Errorf("%s: components sum %d != total %d (comps %v)", tc.name, sum, total, comps)
		}
	}
	// Inverted fill must not underflow.
	if _, total := CompsFromStamps(Stamps{Issued: 100, Fill: 20}); total != 0 {
		t.Fatalf("inverted timeline total = %d, want 0", total)
	}
}

func TestAttributionSourceRouting(t *testing.T) {
	var at Attribution
	at.AddStamps(SrcCore, Stamps{Issued: 0, Fill: 100})
	at.AddStamps(SrcEMC, Stamps{Issued: 0, Fill: 40})
	at.AddStamps(SrcPrefetch, Stamps{Issued: 0, Fill: 999}) // not attributed
	if at.Core.Count != 1 || at.Core.TotalSum != 100 {
		t.Fatalf("core attr %+v", at.Core.Count)
	}
	if at.EMC.Count != 1 || at.EMC.TotalSum != 40 {
		t.Fatalf("emc attr %+v", at.EMC.Count)
	}
}

func TestReportTable(t *testing.T) {
	tr := NewTracer(Config{Enabled: true})
	tr.Attr().AddStamps(SrcCore, Stamps{Issued: 100, SliceReach: 110, SliceDone: 115,
		MCReach: 130, DRAMIssued: 170, DRAMDone: 250, Fill: 260})
	tab := tr.Report().Table()
	for _, want := range []string{"core", "ring_req", "dram", "on-chip", "p50<="} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGroup(map[string]string{"run": `H4 "emc"`}, []string{"cycles", "IPC-now"})
	g.Publish([]float64{12345, 0.5})
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE emcsim_cycles gauge",
		`emcsim_cycles{run="H4 \"emc\""} 12345`,
		"emcsim_ipc_now{", // sanitized: lowercase, '-' -> '_'
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryVars(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGroup(nil, []string{"a"})
	g.Publish([]float64{7})
	v := reg.Vars()
	if v["run"]["a"] != 7 {
		t.Fatalf("Vars = %v", v)
	}
}

func TestCounterLogDueAcrossSkips(t *testing.T) {
	l := NewCounterLog(100, []string{"x"})
	if !l.Due(0) {
		t.Fatal("first sample should be due immediately")
	}
	l.Record(0, []float64{1})
	if l.Due(99) {
		t.Fatal("not due before the interval")
	}
	// The event-horizon scheduler can jump far past a boundary; the next
	// deadline must move past `now`, not accumulate a backlog.
	if !l.Due(357) {
		t.Fatal("due after skipping past a boundary")
	}
	l.Record(357, []float64{2})
	if l.Due(399) {
		t.Fatal("deadline should be 400 after sampling at 357")
	}
	if !l.Due(400) {
		t.Fatal("due at the next boundary")
	}
	var b bytes.Buffer
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Interval uint64 `json:"intervalCycles"`
		Samples  []struct {
			Cycle uint64 `json:"cycle"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(b.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Interval != 100 || len(decoded.Samples) != 2 || decoded.Samples[1].Cycle != 357 {
		t.Fatalf("decoded %+v", decoded)
	}
}

func TestChromeExportWellFormed(t *testing.T) {
	tr := NewTracer(Config{Enabled: true, Retain: true})
	r := tr.Start(SrcCore, 2, 0x1000, 0x400, true, 10)
	tr.StampEvent(r, StageSliceReach, 15)
	tr.StampEvent(r, StageSliceDone, 16)
	tr.StampEvent(r, StageMCReach, 20)
	// Backdated: the DRAM request this waiter merged onto issued earlier.
	tr.StampEvent(r, StageDRAMIssue, 18)
	tr.StampEvent(r, StageDRAMDone, 60)
	tr.StampEvent(r, StageFill, 70)
	tr.Finish(r)

	exp := &ChromeExport{}
	exp.Add("test-run", tr)
	if exp.Runs() != 1 {
		t.Fatalf("Runs = %d", exp.Runs())
	}
	var b bytes.Buffer
	if err := exp.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &tf); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	var open int
	last := -1.0
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
		case "b":
			open++
			last = ev.Ts
		case "n", "e":
			if open == 0 {
				t.Fatalf("%s before begin", ev.Ph)
			}
			if ev.Ts < last {
				t.Fatalf("timestamps not monotonic: %v after %v", ev.Ts, last)
			}
			last = ev.Ts
			if ev.Ph == "e" {
				open--
			}
		default:
			t.Fatalf("unknown phase %q", ev.Ph)
		}
	}
	if open != 0 {
		t.Fatalf("%d spans left open", open)
	}
}

func TestChromeExportSkipsEmptyTracer(t *testing.T) {
	exp := &ChromeExport{}
	exp.Add("nil", nil)
	exp.Add("empty", NewTracer(Config{Enabled: true, Retain: true}))
	if exp.Runs() != 0 {
		t.Fatalf("Runs = %d, want 0", exp.Runs())
	}
}
