package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

type testCollector struct{ line string }

func (c *testCollector) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, c.line+"\n")
	return err
}

// TestRegistryConcurrentRegisterSnapshot races group registration,
// publishing, collector registration, and every reader (Prometheus text,
// expvar map, raw snapshots) against each other. Run under -race (the
// Makefile's race target includes internal/obs); the assertion here is
// simply that nothing tears, panics, or deadlocks and the final exposition
// is complete.
func TestRegistryConcurrentRegisterSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const rounds = 50

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			g := r.NewGroup(map[string]string{"run": fmt.Sprintf("w%d", i)}, []string{"a", "b"})
			for n := 0; n < rounds; n++ {
				g.Publish([]float64{float64(n), float64(2 * n)})
				_ = g.Snapshot(nil)
			}
			r.AddCollector(&testCollector{line: fmt.Sprintf("# collector %d", i)})
		}(i)
	}
	readers := 4
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for n := 0; n < rounds; n++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				_ = r.Vars()
			}
		}()
	}
	close(start)
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for i := 0; i < writers; i++ {
		if !strings.Contains(out, fmt.Sprintf("# collector %d", i)) {
			t.Errorf("final exposition missing collector %d:\n%s", i, out)
		}
		if !strings.Contains(out, fmt.Sprintf(`run="w%d"`, i)) {
			t.Errorf("final exposition missing group w%d", i)
		}
	}
	if vars := r.Vars(); len(vars) != writers {
		t.Errorf("Vars has %d groups, want %d", len(vars), writers)
	}
}

// TestRegistryCollectorOrdering: collectors render after every gauge group,
// so the TYPE headers of the groups never interleave with collector output.
func TestRegistryCollectorOrdering(t *testing.T) {
	r := NewRegistry()
	r.AddCollector(&testCollector{line: "collector_metric 1"})
	g := r.NewGroup(nil, []string{"x"})
	g.Publish([]float64{42})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	gi := strings.Index(out, "emcsim_x 42")
	ci := strings.Index(out, "collector_metric 1")
	if gi < 0 || ci < 0 || ci < gi {
		t.Fatalf("collector output must follow gauge groups:\n%s", out)
	}
}
