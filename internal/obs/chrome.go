package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// ChromeExport merges the retained trace records of one or more runs into a
// single Chrome trace_event JSON file (the "JSON Array Format" with a
// traceEvents wrapper), viewable in Perfetto / chrome://tracing.
//
// Mapping: one process (pid) per run, one thread (tid) per requester
// (core i, or 1000+mc for EMC-issued requests), and one async nestable
// event per request: a "b"/"e" pair spanning issue->last stage with an
// instant "n" step at every intermediate stage. Async events keep the many
// overlapping misses of one core from being forced into a nesting
// hierarchy. Cycles are written as microseconds (1 cycle = 1us).
type ChromeExport struct {
	mu   sync.Mutex
	runs []chromeRun
}

type chromeRun struct {
	label   string
	records []*Record
}

// Add appends one finished run's retained records under a process label.
// Safe for concurrent use (figure suites finish runs on many goroutines).
func (e *ChromeExport) Add(label string, t *Tracer) {
	if t == nil || len(t.Records()) == 0 {
		return
	}
	e.mu.Lock()
	e.runs = append(e.runs, chromeRun{label: label, records: t.Records()})
	e.mu.Unlock()
}

// Runs returns the number of runs added.
func (e *ChromeExport) Runs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.runs)
}

// WriteJSON streams the export as trace-event JSON.
func (e *ChromeExport) WriteJSON(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		bw.WriteByte('\n')
		_, err = bw.Write(raw)
		return err
	}
	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	type async struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args,omitempty"`
	}
	for pid, run := range e.runs {
		if err := emit(meta{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": run.label}}); err != nil {
			return err
		}
		threads := map[int]string{}
		for _, r := range run.records {
			if len(r.Events) == 0 {
				continue
			}
			tid := r.Core
			if r.Source == SrcEMC {
				tid = 1000 + r.Core
			}
			if _, ok := threads[tid]; !ok {
				name := fmt.Sprintf("core %d", r.Core)
				if r.Source == SrcEMC {
					name = fmt.Sprintf("emc (core %d chains)", r.Core)
				}
				threads[tid] = name
				if err := emit(meta{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": name}}); err != nil {
					return err
				}
			}
			id := fmt.Sprintf("%#x", r.ID)
			name := r.Source.String() + " miss"
			if r.Dependent {
				name = r.Source.String() + " dependent miss"
			}
			// Stamps arrive in stamp order, not time order: dram_issue is
			// backdated to the DRAM request's issue cycle, which precedes
			// this waiter's own arrival when it merged onto an in-flight
			// line. The span's timeline must be monotonic, so emit the
			// stages sorted by cycle (every stage becomes a step).
			evs := append([]Event(nil), r.Events...)
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
			begin := async{Name: name, Cat: "miss", Ph: "b", Ts: evs[0].At,
				Pid: pid, Tid: tid, ID: id,
				Args: map[string]any{"line": fmt.Sprintf("%#x", r.Line), "pc": fmt.Sprintf("%#x", r.PC)}}
			if err := emit(begin); err != nil {
				return err
			}
			for _, ev := range evs {
				if err := emit(async{Name: ev.Stage.String(), Cat: "miss", Ph: "n",
					Ts: ev.At, Pid: pid, Tid: tid, ID: id}); err != nil {
					return err
				}
			}
			if err := emit(async{Name: name, Cat: "miss", Ph: "e", Ts: evs[len(evs)-1].At,
				Pid: pid, Tid: tid, ID: id}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the export to path.
func (e *ChromeExport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
