// Package obs is the simulator's observability layer: request-lifecycle
// tracing, latency attribution, a live counter registry, and exporters
// (Chrome trace_event JSON, Prometheus text, expvar).
//
// The layer is zero-overhead when disabled: the simulator holds a nil
// *Tracer and every instrumentation site is a single pointer test. When
// enabled, trace records ride on the simulator's pooled request objects and
// are themselves pooled, so the hot path stays allocation-free in steady
// state. Tracing is purely observational — it reads timestamps the
// simulator already produces and must never change simulation outcomes
// (internal/sim's TestCycleSkipDeterminism pins this).
package obs

// Stage identifies one point in a memory request's lifecycle. Stages are
// stamped in wall-clock (cycle) order by the component that owns the event;
// see DESIGN.md §9 for the ownership table.
type Stage uint8

// The lifecycle stages of a memory request. Core-issued demand misses see
// the full sequence; EMC-issued requests skip the stages their shortcut
// path bypasses (that bypass is exactly the latency the paper's Figure 19
// attributes), and prefetches terminate at the slice.
const (
	StageIssue      Stage = iota // core/EMC creates the request
	StageSliceReach              // request arrives at the owning LLC slice
	StageSliceDone               // LLC tag lookup completes (hit/miss known)
	StageMCReach                 // request admitted at the memory controller
	StageDRAMIssue               // first DRAM command for the line
	StageDRAMDone                // last data beat at the controller
	StageFill                    // data delivered to the requester
	numStages
)

var stageNames = [numStages]string{
	"issue", "slice_reach", "slice_done", "mc_reach",
	"dram_issue", "dram_done", "fill",
}

// String returns the stage's snake_case name (also used by exporters).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Source classifies who created a request.
type Source uint8

// Request sources.
const (
	SrcCore     Source = iota // core demand load
	SrcEMC                    // EMC-issued load (dependent-chain execution)
	SrcPrefetch               // LLC prefetcher / runahead prefetch
	numSources
)

var sourceNames = [numSources]string{"core", "emc", "prefetch"}

// String returns the source's name.
func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return "unknown"
}

// Event is one timestamped lifecycle stage.
type Event struct {
	Stage Stage
	At    uint64 // cycle
}

// Record is the trace of one sampled memory request. Records are owned by
// the Tracer's pool: the simulator attaches one at request creation, stamps
// stages as they happen, and hands it back via Finish exactly once (when
// the request itself is recycled).
type Record struct {
	ID        uint64
	Line      uint64 // physical line address
	PC        uint64
	Core      int
	Source    Source
	Dependent bool

	Events []Event
}

// Stamp appends one stage event. Events arrive in stamp order; a stage can
// repeat when a request is delivered twice (the EMC LLC-path double fill).
func (r *Record) Stamp(s Stage, at uint64) {
	r.Events = append(r.Events, Event{Stage: s, At: at})
}

// At returns the first event with the given stage.
func (r *Record) At(s Stage) (uint64, bool) {
	for _, e := range r.Events {
		if e.Stage == s {
			return e.At, true
		}
	}
	return 0, false
}

// Config enables and scales the tracing layer.
type Config struct {
	// Enabled turns lifecycle tracing (and with it latency attribution) on.
	Enabled bool
	// SampleEvery traces one in every N requests per source-class counter
	// stream (0 and 1 both mean every request). Sampling is deterministic —
	// a modulo of the request-creation counter — so two runs of the same
	// configuration trace the same requests.
	SampleEvery uint64
	// Retain keeps finished records for export (Chrome trace). When false,
	// records are recycled after attribution and only aggregates survive.
	Retain bool
	// MaxRecords caps retention (default 1<<20); beyond it records are
	// recycled and counted as dropped.
	MaxRecords int
}

// Tracer samples request lifecycles for one System. It is not safe for
// concurrent use — each System owns its own (figure suites run Systems on
// separate goroutines, mirroring the simulator's pooling rules).
type Tracer struct {
	cfg    Config
	seq    uint64 // requests considered (sampling stream)
	nextID uint64

	started  uint64
	finished uint64
	dropped  uint64 // finished past MaxRecords (not retained)
	events   uint64 // total stage events stamped

	pool []*Record
	done []*Record

	attr Attribution
}

// NewTracer builds a tracer, or returns nil when cfg.Enabled is false so
// callers can keep the disabled path to a single nil test.
func NewTracer(cfg Config) *Tracer {
	if !cfg.Enabled {
		return nil
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 1 << 20
	}
	return &Tracer{cfg: cfg}
}

// Start considers one request for tracing and returns its record, or nil
// when the sampling counter skips it. The Issue stage is stamped here.
func (t *Tracer) Start(src Source, core int, line, pc uint64, dependent bool, at uint64) *Record {
	t.seq++
	if (t.seq-1)%t.cfg.SampleEvery != 0 {
		return nil
	}
	r := t.alloc()
	t.nextID++
	t.started++
	r.ID = t.nextID
	r.Line, r.PC, r.Core = line, pc, core
	r.Source, r.Dependent = src, dependent
	t.StampEvent(r, StageIssue, at)
	return r
}

// StampEvent records one stage on a record (no-op on nil records is the
// caller's single-branch guard; r must be non-nil here).
func (t *Tracer) StampEvent(r *Record, s Stage, at uint64) {
	r.Stamp(s, at)
	t.events++
}

// Finish returns a record to the tracer after its request's last delivery.
// Retained records become part of the Chrome export; others are pooled.
func (t *Tracer) Finish(r *Record) {
	t.finished++
	if t.cfg.Retain && len(t.done) < t.cfg.MaxRecords {
		t.done = append(t.done, r)
		return
	}
	if t.cfg.Retain {
		t.dropped++
	}
	t.free(r)
}

func (t *Tracer) alloc() *Record {
	if n := len(t.pool); n > 0 {
		r := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return r
	}
	return &Record{}
}

func (t *Tracer) free(r *Record) {
	ev := r.Events[:0]
	*r = Record{}
	r.Events = ev
	t.pool = append(t.pool, r)
}

// Attr exposes the running latency attribution.
func (t *Tracer) Attr() *Attribution { return &t.attr }

// Records returns the retained (finished) records, in finish order. Valid
// after the run; the slice is owned by the tracer.
func (t *Tracer) Records() []*Record { return t.done }

// EventCount returns the total number of stage events stamped. Two runs of
// the same configuration must agree on this regardless of cycle skipping.
func (t *Tracer) EventCount() uint64 { return t.events }

// Started returns the number of records started (sampled requests).
func (t *Tracer) Started() uint64 { return t.started }

// SampleEvery reports the effective sampling rate.
func (t *Tracer) SampleEvery() uint64 { return t.cfg.SampleEvery }

// Report snapshots the tracer's aggregates for a Result.
func (t *Tracer) Report() *Report {
	return &Report{
		SampleEvery: t.cfg.SampleEvery,
		Started:     t.started,
		Finished:    t.finished,
		Dropped:     t.dropped,
		Events:      t.events,
		Attr:        t.attr,
	}
}
