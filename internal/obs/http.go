package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// expvar names are process-global and Publish panics on duplicates, so the
// emcsim var is registered once and reads whichever registry the most
// recent debug server serves.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Server is the opt-in debug HTTP server: /metrics (Prometheus text),
// /debug/vars (expvar JSON), and /debug/pprof while a run is in flight.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (":0" picks a free port) and serves in a
// background goroutine. The returned server reports the bound address and
// must be Closed by the caller.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("emcsim", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Vars()
			}
			return nil
		}))
	})
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
