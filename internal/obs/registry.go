package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Registry is a live counter registry: running Systems publish snapshots of
// their counters into per-run Groups, and exporters (/metrics, /debug/vars,
// the interval CounterLog) read them while the simulation is in flight.
//
// Publishing and reading happen on different goroutines, so all access goes
// through the group mutex; the simulator amortizes that by publishing every
// few thousand cycles rather than per step.
type Registry struct {
	mu         sync.Mutex
	groups     []*Group
	collectors []Collector
}

// Collector is a self-rendering metric source (histograms, summaries —
// anything richer than the gauge groups). Registered collectors are
// appended to every /metrics exposition after the gauge groups.
// Implementations must be safe for concurrent use.
type Collector interface {
	WritePrometheus(w io.Writer) error
}

// AddCollector registers a collector with the exposition endpoint.
func (r *Registry) AddCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewGroup registers a metric group. Labels (e.g. run="H4/emc") tag every
// metric the group exports; names fixes the metric set up front so Publish
// is a plain value copy.
func (r *Registry) NewGroup(labels map[string]string, names []string) *Group {
	g := &Group{
		labels: renderLabels(labels),
		names:  append([]string(nil), names...),
		vals:   make([]float64, len(names)),
	}
	r.mu.Lock()
	r.groups = append(r.groups, g)
	r.mu.Unlock()
	return g
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Group is one run's slot set within a Registry.
type Group struct {
	mu     sync.Mutex
	labels string
	names  []string
	vals   []float64
}

// Names returns the group's metric names, in publish order.
func (g *Group) Names() []string { return g.names }

// Publish copies a full snapshot of values (same order as Names) into the
// group. len(vals) must equal len(Names).
func (g *Group) Publish(vals []float64) {
	g.mu.Lock()
	copy(g.vals, vals)
	g.mu.Unlock()
}

// Snapshot appends the group's current values to dst and returns it.
func (g *Group) Snapshot(dst []float64) []float64 {
	g.mu.Lock()
	dst = append(dst, g.vals...)
	g.mu.Unlock()
	return dst
}

// MetricPrefix is prepended to every exported metric name.
const MetricPrefix = "emcsim_"

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every group in the Prometheus text exposition
// format. Metric names follow the scheme emcsim_<counter>, all lowercase
// snake_case, with the group's labels attached (see DESIGN.md §9).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	groups := append([]*Group(nil), r.groups...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	seen := map[string]bool{}
	for _, g := range groups {
		g.mu.Lock()
		names := g.names
		vals := append([]float64(nil), g.vals...)
		labels := g.labels
		g.mu.Unlock()
		for i, n := range names {
			pn := promName(n)
			if !seen[pn] {
				seen[pn] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
					return err
				}
			}
			var err error
			if labels == "" {
				_, err = fmt.Fprintf(w, "%s %v\n", pn, vals[i])
			} else {
				_, err = fmt.Fprintf(w, "%s{%s} %v\n", pn, labels, vals[i])
			}
			if err != nil {
				return err
			}
		}
	}
	for _, c := range collectors {
		if err := c.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// Vars returns the registry as a nested map (group labels -> name -> value)
// for the /debug/vars expvar export.
func (r *Registry) Vars() map[string]map[string]float64 {
	r.mu.Lock()
	groups := append([]*Group(nil), r.groups...)
	r.mu.Unlock()
	out := make(map[string]map[string]float64, len(groups))
	for _, g := range groups {
		g.mu.Lock()
		m := make(map[string]float64, len(g.names))
		for i, n := range g.names {
			m[n] = g.vals[i]
		}
		label := g.labels
		g.mu.Unlock()
		if label == "" {
			label = "run"
		}
		out[label] = m
	}
	return out
}

// CounterLog is an in-memory time series of counter snapshots, sampled by
// the owning System every Interval cycles and serialized to JSON at the end
// of the run (IPC over time, queue depths, ring occupancy, EMC accept/
// reject rates, ... — everything the System publishes).
type CounterLog struct {
	Interval uint64
	Names    []string
	Samples  []CounterSample

	next uint64 // next cycle to sample at (managed by the System)
}

// CounterSample is one interval snapshot.
type CounterSample struct {
	Cycle  uint64
	Values []float64
}

// NewCounterLog builds a log sampling every interval cycles.
func NewCounterLog(interval uint64, names []string) *CounterLog {
	if interval == 0 {
		interval = 10000
	}
	return &CounterLog{Interval: interval, Names: append([]string(nil), names...)}
}

// Due reports whether a sample is due at cycle now. Under the event-horizon
// scheduler cycles are skipped wholesale, so Due fires on the first cycle
// at or after each interval boundary.
func (l *CounterLog) Due(now uint64) bool { return now >= l.next }

// Record appends one snapshot (copying vals) and advances the deadline.
func (l *CounterLog) Record(now uint64, vals []float64) {
	l.Samples = append(l.Samples, CounterSample{
		Cycle:  now,
		Values: append([]float64(nil), vals...),
	})
	l.next = now - now%l.Interval + l.Interval
}

// WriteJSON serializes the time series.
func (l *CounterLog) WriteJSON(w io.Writer) error {
	type sample struct {
		Cycle  uint64    `json:"cycle"`
		Values []float64 `json:"values"`
	}
	out := struct {
		Interval uint64   `json:"intervalCycles"`
		Names    []string `json:"names"`
		Samples  []sample `json:"samples"`
	}{Interval: l.Interval, Names: l.Names}
	for _, s := range l.Samples {
		out.Samples = append(out.Samples, sample{Cycle: s.Cycle, Values: s.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteFile writes the time series to path.
func (l *CounterLog) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
