package span

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpanPhasesReconcile pins the exact-sum invariant for every lifecycle
// shape: the phase durations partition the span's wall clock with no
// remainder, the same discipline TestAttributionReconciles enforces for
// simulated miss latency.
func TestSpanPhasesReconcile(t *testing.T) {
	cases := []struct {
		name string
		sp   Span
		want map[Phase]int64
	}{
		{
			name: "ran normally",
			sp:   Span{SubmitAt: 100, AdmitAt: 350, FinishAt: 1000},
			want: map[Phase]int64{PhaseQueued: 250, PhaseRunning: 650},
		},
		{
			name: "cache hit",
			sp:   Span{SubmitAt: 100, AdmitAt: NoAdmit, FinishAt: 140, Cached: true},
			want: map[Phase]int64{PhaseCacheHit: 40},
		},
		{
			name: "cancelled while queued",
			sp:   Span{SubmitAt: 100, AdmitAt: NoAdmit, FinishAt: 900},
			want: map[Phase]int64{PhaseQueued: 800},
		},
		{
			name: "zero-duration cache hit",
			sp:   Span{SubmitAt: 100, AdmitAt: NoAdmit, FinishAt: 100, Cached: true},
			want: map[Phase]int64{},
		},
		{
			name: "admitted instantly",
			sp:   Span{SubmitAt: 100, AdmitAt: 100, FinishAt: 500},
			want: map[Phase]int64{PhaseRunning: 400},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ph := tc.sp.Phases()
			var sum int64
			for p := Phase(0); p < NumPhases; p++ {
				sum += ph[p]
				if ph[p] != tc.want[p] {
					t.Errorf("phase %s = %d, want %d", p, ph[p], tc.want[p])
				}
			}
			if sum != tc.sp.Total() {
				t.Errorf("phases sum to %d, wall clock is %d", sum, tc.sp.Total())
			}
		})
	}
}

// TestRingWrap: the ring keeps the newest events, reports the truncation
// count, and returns events oldest-first.
func TestRingWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 20; i++ {
		r.Record(int64(i), EvProgress, uint64(i), 0)
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Truncated() != 12 {
		t.Fatalf("Truncated = %d, want 12", r.Truncated())
	}
	evs := r.Events(nil)
	for i, ev := range evs {
		if want := int64(12 + i); ev.At != want {
			t.Fatalf("event %d At = %d, want %d (oldest-first order broken)", i, ev.At, want)
		}
	}
}

// TestRecorderPoolRecycles: rings released by FinishSpan come back from the
// pool cleared.
func TestRecorderPoolRecycles(t *testing.T) {
	rec := NewRecorder(Options{RingEvents: 16, Retain: 4})
	r1 := rec.AcquireRing()
	r1.Record(1, EvSubmit, 0, 0)
	rec.FinishSpan(Span{JobID: "j1", Outcome: "done", SubmitAt: 0, AdmitAt: 1, FinishAt: 2}, r1)
	r2 := rec.AcquireRing()
	if r2 != r1 {
		t.Fatal("ring was not recycled through the pool")
	}
	if r2.Len() != 0 {
		t.Fatalf("recycled ring not reset: %d events", r2.Len())
	}
}

// TestRecorderRetentionBound: the finished-span retention stays bounded and
// counts what it drops.
func TestRecorderRetentionBound(t *testing.T) {
	rec := NewRecorder(Options{Retain: 8})
	for i := 0; i < 40; i++ {
		rec.FinishSpan(Span{JobID: "j", Outcome: "done"}, nil)
	}
	if n := len(rec.Spans()); n > 8+4 {
		t.Fatalf("retained %d spans, want <= 12", n)
	}
	if rec.Dropped() == 0 {
		t.Fatal("retention dropped nothing over 40 spans with cap 8")
	}
}

// TestDumpRoundTrip: encode → decode → verify preserves everything and the
// CRC catches corruption.
func TestDumpRoundTrip(t *testing.T) {
	d := &Dump{
		JobID: "j7", Key: "k", Client: "t", Shard: 1,
		Reason: "hung", State: "running", Attempts: 2,
		SubmitAtNS: 100, AdmitAtNS: 400, DumpAtNS: 1100, WallNS: 1000,
		PhasesNS: map[string]int64{"queued": 300, "running": 700},
		Cycles:   5000, Retired: 1200, TargetInstrs: 4000,
		Events: []DumpEvent{
			{AtNS: 100, Kind: "submit"},
			{AtNS: 400, Kind: "admit"},
			{AtNS: 900, Kind: "progress", Arg: 5000, Arg2: 1200},
		},
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	path := filepath.Join(t.TempDir(), "j7-hung"+DumpExt)
	if err := WriteDumpFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}
	a, _ := json.Marshal(d)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed the dump:\n%s\n%s", a, b)
	}

	// Flip one payload byte: the CRC must reject it.
	frame, err := EncodeDump(d)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0xff
	if _, err := DecodeDump(frame); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
}

// TestDumpVerifyRejects: the semantic gate catches broken exact-sums,
// negative durations, and non-monotonic events.
func TestDumpVerifyRejects(t *testing.T) {
	base := func() *Dump {
		return &Dump{
			JobID: "j", Reason: "failed", WallNS: 100,
			PhasesNS: map[string]int64{"queued": 40, "running": 60},
			Events:   []DumpEvent{{AtNS: 1, Kind: "submit"}, {AtNS: 2, Kind: "admit"}},
		}
	}
	cases := []struct {
		name  string
		mutat func(*Dump)
		want  string
	}{
		{"sum mismatch", func(d *Dump) { d.PhasesNS["running"] = 61 }, "exact-sum"},
		{"negative phase", func(d *Dump) { d.PhasesNS["queued"] = -1; d.PhasesNS["running"] = 101 }, "negative"},
		{"negative wall", func(d *Dump) { d.WallNS = -5 }, "negative wall"},
		{"backwards events", func(d *Dump) { d.Events[1].AtNS = 0 }, "backwards"},
		{"unknown kind", func(d *Dump) { d.Events[0].Kind = "nope" }, "unknown kind"},
		{"unknown phase", func(d *Dump) { d.PhasesNS["warp"] = 0 }, "unknown phase"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.mutat(d)
			err := d.Verify()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Verify = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestWriteChromeShape: the span export emits balanced async events with
// monotonic timestamps (the same contract cmd/tracecheck enforces).
func TestWriteChromeShape(t *testing.T) {
	spans := []Span{
		{JobID: "j1", Client: "a", Shard: 0, Outcome: "done", SubmitAt: 0, AdmitAt: 1000, FinishAt: 9000},
		{JobID: "j2", Client: "a", Shard: 1, Outcome: "failed", Attempts: 3, SubmitAt: 500, AdmitAt: 700, FinishAt: 1200},
		{JobID: "j3", Client: "b", Shard: 0, Outcome: "done", Cached: true, SubmitAt: 2000, AdmitAt: NoAdmit, FinishAt: 2001},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, "test-service", spans); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph string   `json:"ph"`
			Ts *float64 `json:"ts"`
			ID string   `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	begins, ends := 0, 0
	last := map[string]float64{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "b":
			begins++
			last[ev.ID] = *ev.Ts
		case "n", "e":
			if *ev.Ts < last[ev.ID] {
				t.Fatalf("span %s timestamp moved backwards", ev.ID)
			}
			last[ev.ID] = *ev.Ts
			if ev.Ph == "e" {
				ends++
			}
		}
	}
	if begins != 3 || ends != 3 {
		t.Fatalf("want 3 balanced spans, got %d begins / %d ends", begins, ends)
	}
}

// TestPhaseHistExposition: observations land in the right cumulative
// buckets and render as a well-formed Prometheus histogram.
func TestPhaseHistExposition(t *testing.T) {
	h := NewPhaseHist(2)
	h.Observe(PhaseQueued, 0, 0.0004) // le=0.001
	h.Observe(PhaseQueued, 0, 0.05)   // le=0.1
	h.Observe(PhaseRunning, 1, 120)   // only +Inf
	var b strings.Builder
	if err := h.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# TYPE emcsim_service_phase_seconds histogram`,
		`emcsim_service_phase_seconds_bucket{phase="queued",shard="0",le="0.001"} 1`,
		`emcsim_service_phase_seconds_bucket{phase="queued",shard="0",le="+Inf"} 2`,
		`emcsim_service_phase_seconds_count{phase="queued",shard="0"} 2`,
		`emcsim_service_phase_seconds_bucket{phase="running",shard="1",le="60"} 0`,
		`emcsim_service_phase_seconds_bucket{phase="running",shard="1",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `phase="cache_hit"`) {
		t.Error("unobserved phase/shard pairs should be omitted")
	}
}
