package span

// Ring is one job's flight recorder: a fixed-capacity circular buffer of
// recent lifecycle events. The scheduler records into it on every
// transition and progress heartbeat; when a job hangs, panics, or is
// aborted by a failpoint the ring is snapshotted into a Dump — the last N
// events explain where the job's wall clock went.
//
// Rings are pooled by the Recorder (acquire on submit, release on finish),
// so steady-state recording allocates nothing. Access is externally
// synchronized: the owning Job's mutex guards every call, matching the
// simulator's one-owner pooling rules.
type Ring struct {
	ev []Event
	n  uint64 // total events ever recorded; ev[(n-1)%cap] is the newest
}

// NewRing builds a ring holding the last capacity events (min 8).
func NewRing(capacity int) *Ring {
	if capacity < 8 {
		capacity = 8
	}
	return &Ring{ev: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest past capacity. This is
// the pipeline's hot path (every progress heartbeat of every running job
// lands here) and must stay allocation-free.
//
//simlint:noalloc bench=SpanRecord
func (r *Ring) Record(at int64, k Kind, arg, arg2 uint64) {
	r.ev[int(r.n)%len(r.ev)] = Event{At: at, Kind: k, Arg: arg, Arg2: arg2}
	r.n++
}

// Len returns the number of events currently held (≤ capacity).
func (r *Ring) Len() int {
	if r.n < uint64(len(r.ev)) {
		return int(r.n)
	}
	return len(r.ev)
}

// Truncated returns how many events were overwritten by ring wrap.
func (r *Ring) Truncated() uint64 {
	if r.n <= uint64(len(r.ev)) {
		return 0
	}
	return r.n - uint64(len(r.ev))
}

// Events appends the held events to dst, oldest first, and returns it.
func (r *Ring) Events(dst []Event) []Event {
	held := r.Len()
	start := int(r.n) - held
	for i := 0; i < held; i++ {
		dst = append(dst, r.ev[(start+i)%len(r.ev)])
	}
	return dst
}

// reset clears the ring for reuse (pool recycling).
func (r *Ring) reset() { r.n = 0 }
