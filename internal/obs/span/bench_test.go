package span

import "testing"

// BenchmarkSpanRecord measures the flight-recorder hot path: one ring event
// per call, zero allocations in steady state. The //simlint:noalloc
// annotation on Ring.Record points here; benchjson -check-noalloc audits the
// measured allocs/op against it.
func BenchmarkSpanRecord(b *testing.B) {
	r := NewRing(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(int64(i), EvProgress, uint64(i), uint64(i*2))
	}
}
