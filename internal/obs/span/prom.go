package span

import (
	"fmt"
	"io"
	"sync"
)

// phaseBuckets are the cumulative upper bounds (seconds) of the phase
// histograms — roughly log-spaced from "instant" to "minutes", matching the
// spread between cache hits (~µs) and long detailed sweeps. +Inf is
// implicit.
var phaseBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// phaseMetric is the exported histogram name (seconds spent per lifecycle
// phase, labelled by phase and shard).
const phaseMetric = "emcsim_service_phase_seconds"

// PhaseHist is the per-phase, per-shard duration histogram set exported on
// /metrics. It implements obs.Collector; the service registers it with its
// metrics Registry so the span pipeline and the gauge groups share one
// exposition endpoint.
type PhaseHist struct {
	mu     sync.Mutex
	shards int
	counts [][]uint64 // [phase*shards+shard][bucket]
	sums   []float64
	totals []uint64
}

// NewPhaseHist builds histograms for shards worker shards.
func NewPhaseHist(shards int) *PhaseHist {
	if shards < 1 {
		shards = 1
	}
	n := int(NumPhases) * shards
	h := &PhaseHist{
		shards: shards,
		counts: make([][]uint64, n),
		sums:   make([]float64, n),
		totals: make([]uint64, n),
	}
	for i := range h.counts {
		h.counts[i] = make([]uint64, len(phaseBuckets))
	}
	return h
}

// Observe records one phase duration in seconds.
func (h *PhaseHist) Observe(p Phase, shard int, seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if shard < 0 || shard >= h.shards || p >= NumPhases {
		return
	}
	i := int(p)*h.shards + shard
	for b, le := range phaseBuckets {
		if seconds <= le {
			h.counts[i][b]++
		}
	}
	h.sums[i] += seconds
	h.totals[i]++
}

// WritePrometheus renders the histograms in Prometheus text exposition
// format (cumulative _bucket series with le labels, plus _sum and _count).
// Shards with no observations for a phase are omitted to keep the scrape
// small. Implements obs.Collector.
func (h *PhaseHist) WritePrometheus(w io.Writer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", phaseMetric); err != nil {
		return err
	}
	for p := Phase(0); p < NumPhases; p++ {
		for shard := 0; shard < h.shards; shard++ {
			i := int(p)*h.shards + shard
			if h.totals[i] == 0 {
				continue
			}
			labels := fmt.Sprintf(`phase=%q,shard="%d"`, p.String(), shard)
			for b, le := range phaseBuckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n",
					phaseMetric, labels, le, h.counts[i][b]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n",
				phaseMetric, labels, h.totals[i]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n", phaseMetric, labels, h.sums[i]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", phaseMetric, labels, h.totals[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
