package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromePidBase is the process id the service timeline exports under.
// Simulator traces (internal/obs.ChromeExport) number their processes from
// 0, one per run; starting the service pid here keeps a merged file — one
// timeline showing service queueing above simulated cycles — collision-free.
const ChromePidBase = 10000

// WriteChrome exports finished job spans as Chrome trace_event JSON (the
// same "JSON Object Format" envelope as the simulator's trace export, so
// cmd/tracecheck validates both and the traceEvents arrays merge cleanly).
//
// Mapping: one process for the service (label), one thread per worker
// shard, and one async nestable event per job: "b" at submit, an instant
// "n" step at each recorded phase boundary, "e" at finish. Timestamps are
// microseconds on the recorder's monotonic base. Running jobs are not
// exported — an unterminated async span would fail validation; snapshot
// again after the sweep drains.
func WriteChrome(w io.Writer, label string, spans []Span) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		bw.WriteByte('\n')
		_, err = bw.Write(raw)
		return err
	}
	type meta struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	type async struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id"`
		Args map[string]any `json:"args,omitempty"`
	}
	pid := ChromePidBase
	if err := emit(meta{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": label}}); err != nil {
		return err
	}
	shards := map[int]bool{}
	for _, sp := range spans {
		if !shards[sp.Shard] {
			shards[sp.Shard] = true
		}
	}
	ordered := make([]int, 0, len(shards))
	for s := range shards {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)
	for _, s := range ordered {
		if err := emit(meta{Name: "thread_name", Ph: "M", Pid: pid, Tid: s,
			Args: map[string]any{"name": fmt.Sprintf("shard %d", s)}}); err != nil {
			return err
		}
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, sp := range spans {
		name := "job " + sp.Outcome
		if sp.Cached {
			name = "job cache-hit"
		}
		args := map[string]any{"client": sp.Client, "attempts": sp.Attempts}
		if sp.Hung {
			args["hung"] = true
		}
		if sp.Coalesced > 0 {
			args["coalesced"] = sp.Coalesced
		}
		if err := emit(async{Name: name, Cat: "job", Ph: "b", Ts: us(sp.SubmitAt),
			Pid: pid, Tid: sp.Shard, ID: sp.JobID, Args: args}); err != nil {
			return err
		}
		if sp.AdmitAt != NoAdmit {
			if err := emit(async{Name: "admitted", Cat: "job", Ph: "n", Ts: us(sp.AdmitAt),
				Pid: pid, Tid: sp.Shard, ID: sp.JobID}); err != nil {
				return err
			}
		}
		if err := emit(async{Name: name, Cat: "job", Ph: "e", Ts: us(sp.FinishAt),
			Pid: pid, Tid: sp.Shard, ID: sp.JobID}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
