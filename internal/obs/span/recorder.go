package span

import (
	"sync"
	"time"
)

// Options sizes a Recorder.
type Options struct {
	// RingEvents is the per-job flight-recorder capacity (default 256).
	RingEvents int
	// Retain bounds the finished spans kept for the Chrome export and the
	// /api/v1/trace endpoint (default 4096; oldest dropped beyond it).
	Retain int
}

// Recorder owns the service's span pipeline: the monotonic time base every
// event is stamped against, the pool of flight-recorder rings, the bounded
// retention of finished spans, and (optionally) the phase histograms fed on
// every finish.
type Recorder struct {
	base       time.Time
	ringEvents int
	retain     int

	mu      sync.Mutex
	pool    []*Ring
	done    []Span
	dropped uint64
	hist    *PhaseHist // nil when metrics are off
}

// NewRecorder builds a recorder; the zero Options take defaults.
func NewRecorder(opts Options) *Recorder {
	if opts.RingEvents <= 0 {
		opts.RingEvents = 256
	}
	if opts.Retain <= 0 {
		opts.Retain = 4096
	}
	return &Recorder{base: time.Now(), ringEvents: opts.RingEvents, retain: opts.Retain}
}

// SetHist attaches the phase histograms fed by FinishSpan (call before any
// job finishes; typically right after NewRecorder).
func (r *Recorder) SetHist(h *PhaseHist) { r.hist = h }

// Hist returns the attached phase histograms (nil when metrics are off).
func (r *Recorder) Hist() *PhaseHist { return r.hist }

// Now returns nanoseconds since the recorder's base. time.Since reads the
// monotonic clock, so readings never go backwards and phase arithmetic on
// them is exact.
func (r *Recorder) Now() int64 { return int64(time.Since(r.base)) }

// Base returns the wall-clock anchor of the monotonic timeline (exporters
// use it to place spans in absolute time).
func (r *Recorder) Base() time.Time { return r.base }

// AcquireRing hands out a pooled flight-recorder ring.
func (r *Recorder) AcquireRing() *Ring {
	r.mu.Lock()
	if n := len(r.pool); n > 0 {
		rg := r.pool[n-1]
		r.pool = r.pool[:n-1]
		r.mu.Unlock()
		return rg
	}
	r.mu.Unlock()
	return NewRing(r.ringEvents)
}

// FinishSpan retains a finished job's span, feeds the phase histograms, and
// recycles its ring. The span's phase boundaries must be final.
func (r *Recorder) FinishSpan(sp Span, ring *Ring) {
	phases := sp.Phases()
	if r.hist != nil {
		for p := Phase(0); p < NumPhases; p++ {
			if phases[p] > 0 || activePhase(sp, p) {
				r.hist.Observe(p, sp.Shard, Seconds(phases[p]))
			}
		}
	}
	r.mu.Lock()
	if len(r.done) >= r.retain {
		// Drop the oldest half in one move so retention is amortized O(1).
		half := len(r.done) / 2
		r.dropped += uint64(half)
		r.done = append(r.done[:0], r.done[half:]...)
	}
	r.done = append(r.done, sp)
	if ring != nil {
		ring.reset()
		r.pool = append(r.pool, ring)
	}
	r.mu.Unlock()
}

// activePhase reports whether p is a phase this span actually went through
// (so zero-duration traversals still count in the histograms: a cache hit
// is a meaningful 0-second sample, a phase the job skipped is not).
func activePhase(sp Span, p Phase) bool {
	switch p {
	case PhaseCacheHit:
		return sp.Cached
	case PhaseQueued:
		return !sp.Cached
	case PhaseRunning:
		return !sp.Cached && sp.AdmitAt != NoAdmit
	}
	return false
}

// Spans returns a copy of the retained finished spans, in finish order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.done...)
}

// Dropped returns how many finished spans were evicted by the retention cap.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
