package span

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Flight-recorder dump framing: magic + u16 version + u32 payload length +
// JSON payload + u32 CRC32(payload), little-endian — the same frame shape as
// the durable result cache's EMCR records, so one decoder discipline covers
// both on-disk formats. One file per dump.
const (
	DumpMagic   = "EMFR"
	DumpVersion = 1
	// DumpExt is the dump file extension (<job>-<reason>-<n>.emfr).
	DumpExt = ".emfr"
	// GoroutinesExt is appended to the dump path for the goroutine profile
	// captured alongside watchdog (hung-job) dumps.
	GoroutinesExt = ".goroutines.txt"
)

// ErrDumpCorrupt marks a dump file that failed structural validation.
var ErrDumpCorrupt = errors.New("span: flight dump corrupt")

// DumpEvent is one ring event in a dump, with the kind spelled out so the
// file is self-describing.
type DumpEvent struct {
	AtNS int64  `json:"atNs"`
	Kind string `json:"kind"`
	Arg  uint64 `json:"arg,omitempty"`
	Arg2 uint64 `json:"arg2,omitempty"`
}

// Dump is one flight-recorder snapshot: the job's identity, where its wall
// clock went (exact-sum phases), its latest simulation progress, and the
// ring of recent lifecycle events. Dumps are taken when the watchdog flags
// a hang, when a worker attempt panics (including injected failpoints), and
// when a job fails terminally — turning "seed 37 failed" into a timeline.
type Dump struct {
	JobID    string `json:"jobId"`
	Key      string `json:"key"`
	Client   string `json:"client"`
	Shard    int    `json:"shard"`
	Reason   string `json:"reason"` // hung | panic | failed
	State    string `json:"state"`  // job state at dump time
	Cached   bool   `json:"cached,omitempty"`
	Attempts int    `json:"attempts"`

	// Timeline, nanoseconds on the recorder's monotonic base. AdmitAt is
	// NoAdmit (-1) when the job never reached a worker. WallNS is the wall
	// clock attributed: DumpAt-SubmitAt for live jobs, FinishAt-SubmitAt for
	// terminal ones.
	SubmitAtNS int64 `json:"submitAtNs"`
	AdmitAtNS  int64 `json:"admitAtNs"`
	FinishAtNS int64 `json:"finishAtNs,omitempty"` // 0 while the job is live
	DumpAtNS   int64 `json:"dumpAtNs"`
	WallNS     int64 `json:"wallNs"`

	// PhasesNS is the exact-sum attribution: the values sum to WallNS with
	// no remainder. tracecheck -flight re-verifies this.
	PhasesNS map[string]int64 `json:"phasesNs"`

	// Latest simulation progress (zero if no attempt reported yet).
	Cycles       uint64  `json:"cycles,omitempty"`
	Retired      uint64  `json:"retired,omitempty"`
	TargetInstrs uint64  `json:"targetInstructions,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`

	// Events is the ring content, oldest first; TruncatedEvents counts
	// events lost to ring wrap before the snapshot.
	Events          []DumpEvent `json:"events"`
	TruncatedEvents uint64      `json:"truncatedEvents,omitempty"`

	Error string `json:"error,omitempty"`
}

// Verify checks the dump's internal consistency: a monotonic event
// timeline, non-negative phase durations, and the exact-sum invariant
// (phases sum to WallNS). CRC integrity is the decoder's job; Verify is the
// semantic gate tracecheck -flight applies on top.
func (d *Dump) Verify() error {
	if d.JobID == "" || d.Reason == "" {
		return fmt.Errorf("dump missing jobId/reason")
	}
	if d.WallNS < 0 {
		return fmt.Errorf("negative wall clock %dns", d.WallNS)
	}
	var sum int64
	for name, v := range d.PhasesNS {
		if _, ok := phaseFromString(name); !ok {
			return fmt.Errorf("unknown phase %q", name)
		}
		if v < 0 {
			return fmt.Errorf("phase %s has negative duration %dns", name, v)
		}
		sum += v
	}
	if sum != d.WallNS {
		return fmt.Errorf("phases sum to %dns but wall clock is %dns (exact-sum violated)", sum, d.WallNS)
	}
	last := int64(-1 << 62)
	for i, ev := range d.Events {
		if _, ok := KindFromString(ev.Kind); !ok {
			return fmt.Errorf("event %d has unknown kind %q", i, ev.Kind)
		}
		if ev.AtNS < last {
			return fmt.Errorf("event %d (%s) timestamp moved backwards (%d < %d)", i, ev.Kind, ev.AtNS, last)
		}
		last = ev.AtNS
	}
	return nil
}

func phaseFromString(s string) (Phase, bool) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), true
		}
	}
	return 0, false
}

// EncodeDump frames d for disk.
func EncodeDump(d *Dump) ([]byte, error) {
	payload, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 0, len(DumpMagic)+10+len(payload))
	frame = append(frame, DumpMagic...)
	frame = binary.LittleEndian.AppendUint16(frame, DumpVersion)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame, nil
}

// DecodeDump validates a frame end to end; every failure mode wraps
// ErrDumpCorrupt.
func DecodeDump(data []byte) (*Dump, error) {
	head := len(DumpMagic) + 6
	if len(data) < head+4 {
		return nil, fmt.Errorf("%w: truncated frame (%d bytes)", ErrDumpCorrupt, len(data))
	}
	if string(data[:len(DumpMagic)]) != DumpMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrDumpCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[len(DumpMagic):]); v != DumpVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDumpCorrupt, v)
	}
	n := binary.LittleEndian.Uint32(data[len(DumpMagic)+2:])
	if uint64(len(data)) != uint64(head)+uint64(n)+4 {
		return nil, fmt.Errorf("%w: length mismatch", ErrDumpCorrupt)
	}
	payload := data[head : head+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[head+int(n):]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrDumpCorrupt)
	}
	var d Dump
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDumpCorrupt, err)
	}
	return &d, nil
}

// WriteDumpFile atomically writes d's frame to path (temp file in the same
// directory, then rename) so a crash mid-dump never leaves a torn file
// under the real name.
func WriteDumpFile(path string, d *Dump) error {
	frame, err := EncodeDump(d)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-emfr-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadDumpFile reads and decodes one dump file (CRC-validated; call Verify
// for the semantic checks).
func ReadDumpFile(path string) (*Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeDump(data)
}
