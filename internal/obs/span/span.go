// Package span is the service-layer observability pipeline: structured
// job-lifecycle spans with exact-sum wall-clock attribution, a bounded
// per-job flight recorder, and exporters (Prometheus phase histograms,
// Chrome trace_event JSON, CRC-framed post-mortem dumps).
//
// The package mirrors the discipline of the simulator-side tracing layer
// (internal/obs): records ride on pooled rings, the hot record path is
// annotated //simlint:noalloc and benchmarked at 0 allocs/op, and the whole
// pipeline is purely observational — it reads timestamps the scheduler
// already produces and never influences scheduling decisions.
//
// The attribution invariant matches the simulator's TestAttributionReconciles:
// for every finished job, the phase durations partition the job's wall clock
// exactly —
//
//	queued + running + cache_hit == finish - submit
//
// with no rounding, gaps, or overlaps, by construction (phases are derived
// from the same monotonic readings the events carry). Flight-recorder dumps
// carry the invariant too, checked end to end by `tracecheck -flight`.
package span

import "time"

// Kind identifies one job-lifecycle event. Events are stamped by the
// scheduler component that owns the transition (see DESIGN.md §14 for the
// ownership table) and accumulate in the job's flight-recorder ring.
type Kind uint8

// Job lifecycle events. A normal run sees submit → admit → attempt →
// progress... → done; the cache-hit and coalesced fast paths collapse the
// middle, and hung/retry events annotate runs that misbehave.
const (
	EvSubmit    Kind = iota // job accepted by Submit
	EvAdmit                 // worker popped the job off its shard queue
	EvAttempt               // one simulation attempt began (arg = attempt #)
	EvProgress              // RunHandle heartbeat (arg = cycles, arg2 = retired)
	EvRetry                 // an attempt panicked and will be retried (arg = attempt #)
	EvCoalesce              // a duplicate submission coalesced onto this job (arg = follower count)
	EvCacheHit              // submission served from the result cache
	EvHung                  // watchdog flagged the job as stalled
	EvHungClear             // watchdog verdict cleared (progress resumed)
	EvDone                  // terminal: completed
	EvFailed                // terminal: failed (arg = attempts)
	EvCancelled             // terminal: cancelled
	EvDump                  // flight-recorder dump taken (in-ring marker)
	numKinds
)

var kindNames = [numKinds]string{
	"submit", "admit", "attempt", "progress", "retry", "coalesce",
	"cache_hit", "hung", "hung_clear", "done", "failed", "cancelled", "dump",
}

// String returns the event kind's snake_case name (also the dump encoding).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one timestamped lifecycle event. At is nanoseconds since the
// recorder's base (a single monotonic clock shared by every job of a
// service), so cross-job ordering and exact-sum phase arithmetic both hold.
type Event struct {
	At   int64
	Kind Kind
	Arg  uint64
	Arg2 uint64
}

// Phase is one segment of a job's wall-clock decomposition.
type Phase uint8

// The phases partition [submit, finish]:
//
//	total == queued + running + cache_hit
//
// for every finished job, by construction (phasesAt). Queued is submit →
// admit; Running is admit → terminal (it spans retries — EvRetry/EvAttempt
// events subdivide it in the flight recorder); CacheHit is the whole (tiny)
// span of a submission served from the result cache without running.
const (
	PhaseQueued Phase = iota
	PhaseRunning
	PhaseCacheHit
	NumPhases
)

var phaseNames = [NumPhases]string{"queued", "running", "cache_hit"}

// String returns the phase's snake_case name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// NoAdmit is the AdmitAt sentinel for jobs that never reached a worker
// (cache hits, cancelled-while-queued).
const NoAdmit int64 = -1

// Span is the compact per-job summary the recorder retains after a job
// finishes: identity, outcome, and the phase-boundary timestamps. It is
// value-typed — retention is a bounded slice of these, not live Job
// pointers.
type Span struct {
	JobID  string
	Client string
	Shard  int

	// Outcome is the terminal state name ("done", "failed", "cancelled").
	Outcome string
	Cached  bool
	// Hung reports whether the watchdog ever flagged the job.
	Hung      bool
	Attempts  int
	Coalesced uint64

	// Phase boundaries, nanoseconds since the recorder base. AdmitAt is
	// NoAdmit for jobs that never reached a worker.
	SubmitAt int64
	AdmitAt  int64
	FinishAt int64
}

// Total returns the span's wall clock in nanoseconds.
func (s *Span) Total() int64 { return s.FinishAt - s.SubmitAt }

// Phases decomposes the span. The durations always sum to Total exactly;
// TestSpanPhasesReconcile pins this for every lifecycle shape.
func (s *Span) Phases() [NumPhases]int64 {
	return phasesAt(s.SubmitAt, s.AdmitAt, s.FinishAt, s.Cached)
}

// phasesAt is the single exact-sum decomposition: end is the finish time for
// terminal spans or the dump instant for live ones. Every branch partitions
// [submit, end] with no remainder.
func phasesAt(submit, admit, end int64, cached bool) [NumPhases]int64 {
	var ph [NumPhases]int64
	total := end - submit
	if total < 0 {
		total = 0
	}
	switch {
	case cached:
		ph[PhaseCacheHit] = total
	case admit == NoAdmit:
		ph[PhaseQueued] = total
	default:
		queued := admit - submit
		if queued < 0 {
			queued = 0
		}
		if queued > total {
			queued = total
		}
		ph[PhaseQueued] = queued
		ph[PhaseRunning] = total - queued
	}
	return ph
}

// Seconds converts a phase duration to float seconds (histogram unit).
func Seconds(ns int64) float64 { return float64(ns) / float64(time.Second) }
