package figures

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FigObs renders the latency-attribution companion to Figs. 1/2 and 18/19:
// for the H1–H10 EMC runs, the average end-to-end miss latency split into
// on-chip (ring + LLC lookup) and memory-system (MC queue + DRAM + merged)
// cycles, for core-issued vs EMC-issued misses. The paper's thesis is the
// EMC's shorter on-chip path; this table measures it directly from sampled
// request lifecycles (SampleEvery=1, so the sums reconcile exactly with the
// CoreMissLatency/EMCMissLatency counters).
func (s *Suite) FigObs() (*Table, error) {
	specs := h10()
	for i := range specs {
		specs[i].pf = sim.PFNone
		specs[i].emc = true
		specs[i].trace = true
	}
	rs, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Obs",
		Title: "Miss-latency attribution, core vs EMC (avg cycles; on-chip vs memory)",
		Columns: []string{"core total", "core onchip", "core mem",
			"emc total", "emc onchip", "emc mem", "onchip ratio"},
	}
	cols := make([][]float64, len(t.Columns))
	for i, sp := range specs {
		r := rs[i]
		if r.Obs == nil {
			continue
		}
		core, emc := &r.Obs.Attr.Core, &r.Obs.Attr.EMC
		vals := []float64{
			core.MeanTotal(),
			stats.Ratio(core.OnChipSum(), core.Count),
			stats.Ratio(core.MemSum(), core.Count),
			emc.MeanTotal(),
			stats.Ratio(emc.OnChipSum(), emc.Count),
			stats.Ratio(emc.MemSum(), emc.Count),
			onChipRatio(emc, core),
		}
		t.Rows = append(t.Rows, Row{Label: sp.name, Values: vals})
		for j, v := range vals {
			cols[j] = append(cols[j], v)
		}
	}
	meanRow := Row{Label: "mean"}
	for _, c := range cols {
		meanRow.Values = append(meanRow.Values, mean(c))
	}
	t.Rows = append(t.Rows, meanRow)
	t.Notes = "onchip ratio = EMC on-chip cycles / core on-chip cycles per miss; " +
		"< 1 means EMC-issued misses spend less time on interconnect+LLC, the latency the EMC eliminates"
	return t, nil
}

// onChipRatio compares per-miss on-chip cycles between two sources.
func onChipRatio(a, b *obs.SourceAttr) float64 {
	num := stats.Ratio(a.OnChipSum(), a.Count)
	den := stats.Ratio(b.OnChipSum(), b.Count)
	if den == 0 {
		return 0
	}
	return num / den
}
