package figures

// ExtRunahead is an extension experiment beyond the paper's figures: the
// paper argues (§1, §2) that runahead execution and the EMC are
// complementary — runahead generates memory-level parallelism from
// *independent* misses while the EMC accelerates the *dependent* misses
// runahead must discard. This experiment runs both mechanisms, alone and
// combined, on the pointer-chasing homogeneous workload and the H4 mix.
func (s *Suite) ExtRunahead() (*Table, error) {
	workloads := []spec{
		{name: "4xmcf", bench: []string{"mcf", "mcf", "mcf", "mcf"}},
		{name: "4xmilc", bench: []string{"milc", "milc", "milc", "milc"}},
		{name: "H4", bench: []string{"mcf", "sphinx3", "soplex", "libquantum"}},
	}
	var specs []spec
	for _, w := range workloads {
		base := w
		base.pf = "none"
		ra := base
		ra.runahead = true
		emcOnly := base
		emcOnly.emc = true
		both := base
		both.emc = true
		both.runahead = true
		specs = append(specs, base, ra, emcOnly, both)
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ExtRA",
		Title:   "Extension: runahead vs EMC vs both (speedup over baseline)",
		Columns: []string{"runahead", "emc", "both"},
		Notes:   "runahead targets independent misses (milc), the EMC dependent ones (mcf); the paper positions them as complementary",
	}
	for i, w := range workloads {
		base := results[i*4]
		row := Row{Label: w.name}
		for k := 1; k < 4; k++ {
			row.Values = append(row.Values, geoSpeedup(results[i*4+k], base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
