package figures

import (
	"strings"
	"testing"
)

// tinyOpts keeps figure tests fast.
func tinyOpts() Options {
	o := DefaultOptions()
	o.InstrPerCore = 3000
	o.InstrPerCore8 = 2000
	return o
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "FigX", Title: "demo", Columns: []string{"a", "b"},
		Rows:  []Row{{Label: "w1", Values: []float64{1, 2}}},
		Notes: "n",
	}
	s := tab.String()
	if !strings.Contains(s, "FigX") || !strings.Contains(s, "w1") || !strings.Contains(s, "note:") {
		t.Errorf("ASCII rendering incomplete:\n%s", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| w1 |") || !strings.Contains(md, "### FigX") {
		t.Errorf("markdown rendering incomplete:\n%s", md)
	}
}

func TestFig6NoSimulation(t *testing.T) {
	s := NewSuite(tinyOpts())
	tab, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(tab.Rows))
	}
	// mcf and omnetpp chase; their chains must be in the paper's 4-12 band.
	for _, r := range tab.Rows {
		if r.Label == "mcf" || r.Label == "omnetpp" {
			if r.Values[0] < 4 || r.Values[0] > 12 {
				t.Errorf("%s avg chain ops %.1f outside [4,12]", r.Label, r.Values[0])
			}
		}
		if r.Label == "lbm" || r.Label == "libquantum" {
			if r.Values[0] != 0 {
				t.Errorf("%s should have no chains, got %.1f", r.Label, r.Values[0])
			}
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(tinyOpts())
	sp := spec{name: "t", bench: []string{"libquantum", "libquantum", "libquantum", "libquantum"}, pf: "none"}
	r1, err := s.run(sp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical specs must be memoized")
	}
}

func TestFig15Through22Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure test")
	}
	s := NewSuite(tinyOpts())
	f15, err := s.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(f15.Rows) != 11 { // H1-H10 + mean
		t.Errorf("Fig15 rows = %d", len(f15.Rows))
	}
	f18, err := s.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	// EMC latency saving should be positive on average (the paper's Fig 18).
	meanRow := f18.Rows[len(f18.Rows)-1]
	if meanRow.Values[2] <= 0 {
		t.Errorf("Fig18 mean saving %.1f%%, want > 0", meanRow.Values[2])
	}
	f22, err := s.Fig22()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f22.Rows {
		if r.Values[0] > 16 {
			t.Errorf("%s: chains longer than the 16-uop cap: %.1f", r.Label, r.Values[0])
		}
	}
}

func TestExtRunaheadAndWS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure test")
	}
	s := NewSuite(tinyOpts())
	ext, err := s.ExtRunahead()
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != 3 {
		t.Fatalf("ExtRA rows = %d", len(ext.Rows))
	}
	for _, r := range ext.Rows {
		if r.Label == "4xmilc" && r.Values[0] < 1.0 {
			t.Errorf("runahead should help milc, got %.3f", r.Values[0])
		}
	}
	ws, err := s.WeightedSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ws.Rows[:len(ws.Rows)-1] {
		if r.Values[0] <= 0 || r.Values[0] > 4 {
			t.Errorf("%s: baseline WS %.3f out of (0,4]", r.Label, r.Values[0])
		}
	}
}
