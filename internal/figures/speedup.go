package figures

import (
	"sort"

	"repro/internal/sim"
)

// WeightedSpeedup reports the multiprogrammed-workload metric standard in
// memory-systems evaluations: WS = Σ_i IPC_shared,i / IPC_alone,i, where the
// alone IPC comes from running each benchmark by itself on a single core
// with the full memory system. A WS of 4.0 means four cores ran as fast as
// four isolated machines; contention pushes it below that. The table shows
// WS for the no-prefetch baseline and the EMC system over H1–H10.
func (s *Suite) WeightedSpeedup() (*Table, error) {
	// Alone runs: one core, whole memory system (the conventional setup).
	aloneNames := map[string]bool{}
	for _, w := range h10() {
		for _, b := range w.bench {
			aloneNames[b] = true
		}
	}
	var aloneSpecs []spec
	order := make([]string, 0, len(aloneNames))
	for n := range aloneNames {
		order = append(order, n)
	}
	sort.Strings(order)
	for _, n := range order {
		aloneSpecs = append(aloneSpecs, spec{name: n + "-alone", bench: []string{n}, pf: "none"})
	}
	aloneRes, err := s.runMany(aloneSpecs)
	if err != nil {
		return nil, err
	}
	alone := map[string]float64{}
	for i, n := range order {
		alone[n] = aloneRes[i].AvgIPC()
	}

	base, emc, err := s.h10Pair()
	if err != nil {
		return nil, err
	}
	ws := func(r *sim.Result) float64 { return r.WeightedSpeedupVs(alone) }

	t := &Table{
		ID:      "WS",
		Title:   "Weighted speedup (sum of IPC_shared/IPC_alone), H1-H10",
		Columns: []string{"baseline", "emc", "ratio"},
		Notes:   "4.0 = no contention; the EMC's gain under this metric parallels the IPC-based Fig. 12",
	}
	var ratios []float64
	for i, w := range h10() {
		b, e := ws(base[i]), ws(emc[i])
		ratio := 0.0
		if b > 0 {
			ratio = e / b
		}
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, Row{Label: w.name, Values: []float64{b, e, ratio}})
	}
	t.Rows = append(t.Rows, Row{Label: "gmean", Values: []float64{0, 0, mean(ratios)}})
	return t, nil
}
