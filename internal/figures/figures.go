// Package figures regenerates every table and figure of the paper's
// evaluation (§6) from the simulator: the characterization figures (1, 2, 3,
// 6), the quad- and eight-core performance figures (12, 13, 14), the
// analysis figures (15–22), and the energy figures (23, 24).
//
// A Suite memoizes simulation runs so figures that share configurations
// (e.g. Fig. 12 and Figs. 15–19, which all analyze the H1–H10 runs) execute
// each configuration once. Runs execute concurrently up to Options.Parallel.
package figures

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options scales the experiment suite. The paper simulates >= 50M
// instructions per core; the defaults here are CI-sized and preserve the
// relative behaviour (see EXPERIMENTS.md).
type Options struct {
	InstrPerCore  uint64
	InstrPerCore8 uint64 // eight-core runs (heavier; usually smaller)
	Seed          uint64
	Parallel      int

	// Trace, when Enabled, turns lifecycle tracing on for every run in the
	// suite; retained records from all runs merge into TraceExport. FigObs
	// traces its own runs regardless (aggregates only, no retention).
	Trace obs.Config
	// Metrics, when non-nil, receives one labeled live-counter group per
	// distinct run (served by the -http debug endpoint).
	Metrics *obs.Registry

	// Runner, when non-nil, replaces the direct sim.New+Run path: every
	// fully-built run configuration is routed through it instead (the
	// experiments -jobs mode submits to the service scheduler, which
	// coalesces and caches duplicate configurations). Determinism makes the
	// two paths interchangeable — same config, bit-identical Result.
	// Trace retention (Trace.Retain) is not available through a Runner.
	Runner func(cfg sim.Config) (*sim.Result, error)
}

// DefaultOptions returns CI-friendly run lengths.
func DefaultOptions() Options {
	return Options{
		InstrPerCore:  24000,
		InstrPerCore8: 12000,
		Seed:          1,
		Parallel:      runtime.NumCPU(),
	}
}

// Table is a rendered figure: rows of labeled values.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   string
}

// Row is one labeled series of values.
type Row struct {
	Label  string
	Values []float64
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	w := 12
	for _, c := range t.Columns {
		if len(c)+1 > w {
			w = len(c) + 1
		}
	}
	lw := 14
	for _, r := range t.Rows {
		if len(r.Label) > lw {
			lw = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", lw+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", w, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", lw+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.3f", w, v)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| |")
	for _, c := range t.Columns {
		b.WriteString(" " + c + " |")
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %.3f |", v)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Notes)
	}
	return b.String()
}

// Suite runs and memoizes simulations for the figures.
type Suite struct {
	Opts Options

	mu    sync.Mutex
	cache map[string]*entry
	sem   chan struct{}
	texp  *obs.ChromeExport
}

type entry struct {
	once sync.Once
	res  *sim.Result
	err  error
}

// NewSuite builds a Suite.
func NewSuite(opts Options) *Suite {
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	return &Suite{
		Opts:  opts,
		cache: map[string]*entry{},
		sem:   make(chan struct{}, opts.Parallel),
		texp:  &obs.ChromeExport{},
	}
}

// TraceExport returns the merged Chrome trace of every traced run so far
// (empty unless Options.Trace.Enabled with Retain).
func (s *Suite) TraceExport() *obs.ChromeExport { return s.texp }

// spec identifies one simulation configuration.
type spec struct {
	name     string // workload label (for reports)
	bench    []string
	pf       sim.PrefetcherKind
	emc      bool
	runahead bool
	mcs      int
	ideal    bool
	chans    int // 0 = default geometry
	ranks    int
	trace    bool // force tracing for this run (FigObs attribution)
}

func (sp spec) key() string {
	return fmt.Sprintf("%v|%s|%v|%v|%d|%v|%dx%d|%v", sp.bench, sp.pf, sp.emc, sp.runahead, sp.mcs, sp.ideal, sp.chans, sp.ranks, sp.trace)
}

// label is the human-readable run identity used for metrics labels and the
// Chrome trace process name.
func (sp spec) label() string {
	l := sp.name
	if sp.pf != "" && sp.pf != sim.PFNone {
		l += " pf=" + string(sp.pf)
	}
	if sp.emc {
		l += " emc"
	}
	if sp.runahead {
		l += " ra"
	}
	if sp.ideal {
		l += " ideal"
	}
	if sp.mcs > 0 {
		l += fmt.Sprintf(" mcs=%d", sp.mcs)
	}
	if sp.chans > 0 {
		l += fmt.Sprintf(" %dch x%dr", sp.chans, sp.ranks)
	}
	return l
}

// run executes (or returns the memoized result of) a spec.
func (s *Suite) run(sp spec) (*sim.Result, error) {
	s.mu.Lock()
	e, ok := s.cache[sp.key()]
	if !ok {
		e = &entry{}
		s.cache[sp.key()] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		cfg := sim.Default(sp.bench)
		cfg.Prefetcher = sp.pf
		cfg.EMCEnabled = sp.emc
		cfg.RunaheadEnabled = sp.runahead
		if sp.mcs > 0 {
			cfg.MCs = sp.mcs
		}
		cfg.IdealDependentHits = sp.ideal
		cfg.Seed = s.Opts.Seed
		cfg.InstrPerCore = s.Opts.InstrPerCore
		if len(sp.bench) >= 8 {
			cfg.InstrPerCore = s.Opts.InstrPerCore8
		}
		if sp.chans > 0 {
			cfg.Geometry.Channels = sp.chans
			cfg.Geometry.Ranks = sp.ranks
			cfg.Geometry.QueueSize = 64 * sp.chans * sp.ranks
			if cfg.Geometry.QueueSize > 512 {
				cfg.Geometry.QueueSize = 512
			}
		}
		switch {
		case s.Opts.Trace.Enabled:
			cfg.Obs = s.Opts.Trace
		case sp.trace:
			// FigObs needs attribution aggregates only: sample everything,
			// retain nothing.
			cfg.Obs = obs.Config{Enabled: true, SampleEvery: 1}
		}
		if s.Opts.Metrics != nil {
			cfg.Metrics = s.Opts.Metrics
			cfg.MetricsLabels = map[string]string{"run": sp.label()}
		}
		if s.Opts.Runner != nil {
			e.res, e.err = s.Opts.Runner(cfg)
			return
		}
		sys, err := sim.New(cfg)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = sys.Run()
		if e.err == nil && s.Opts.Trace.Enabled && s.Opts.Trace.Retain {
			s.texp.Add(sp.label(), sys.Tracer())
		}
	})
	return e.res, e.err
}

// runMany executes specs concurrently and returns results in order.
func (s *Suite) runMany(specs []spec) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.run(specs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].name, err)
		}
	}
	return results, nil
}

// h10 returns the paper's Table-3 workloads.
func h10() []spec {
	mixes := [][]string{
		{"bwaves", "lbm", "milc", "omnetpp"},
		{"soplex", "omnetpp", "bwaves", "libquantum"},
		{"sphinx3", "mcf", "omnetpp", "milc"},
		{"mcf", "sphinx3", "soplex", "libquantum"},
		{"lbm", "mcf", "libquantum", "bwaves"},
		{"lbm", "soplex", "mcf", "milc"},
		{"bwaves", "libquantum", "sphinx3", "omnetpp"},
		{"omnetpp", "soplex", "mcf", "bwaves"},
		{"lbm", "mcf", "libquantum", "soplex"},
		{"libquantum", "bwaves", "soplex", "omnetpp"},
	}
	out := make([]spec, len(mixes))
	for i, m := range mixes {
		out[i] = spec{name: fmt.Sprintf("H%d", i+1), bench: m}
	}
	return out
}

// intensityOrder returns all benchmarks sorted ascending by memory intensity
// (the x-axis ordering of Figs. 1 and 2).
func intensityOrder() []string {
	names := trace.AllNames()
	weight := func(n string) float64 {
		p := trace.MustByName(n)
		tot := p.HotShare + p.WarmShare + p.StreamShare + p.RandomShare + p.ChaseShare
		return p.MemFrac * (p.StreamShare + p.RandomShare + p.ChaseShare) / tot
	}
	sort.Slice(names, func(i, j int) bool { return weight(names[i]) < weight(names[j]) })
	return names
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// geoSpeedup returns the ratio of average IPCs (our speedup metric).
func geoSpeedup(a, b *sim.Result) float64 {
	if b.AvgIPC() == 0 {
		return 0
	}
	return a.AvgIPC() / b.AvgIPC()
}
