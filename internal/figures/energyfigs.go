package figures

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// energyTable builds an energy-consumption comparison normalized to the
// no-EMC, no-prefetching baseline for a set of workloads.
func (s *Suite) energyTable(id, title string, workloads []spec) (*Table, error) {
	configs := []struct {
		label string
		pf    sim.PrefetcherKind
		emc   bool
	}{
		{"emc", sim.PFNone, true},
		{"ghb", sim.PFGHB, false},
		{"ghb+emc", sim.PFGHB, true},
		{"stream", sim.PFStream, false},
		{"mk+st", sim.PFMarkovStream, false},
	}
	var specs []spec
	for _, w := range workloads {
		specs = append(specs, spec{name: w.name, bench: w.bench, pf: "none"})
		for _, c := range configs {
			specs = append(specs, spec{name: w.name + "+" + c.label, bench: w.bench, pf: c.pf, emc: c.emc})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"emc", "ghb", "ghb+emc", "stream", "mk+st"},
		Notes:   "energy relative to the no-prefetch baseline (1.0); paper: EMC ~0.89-0.91, prefetchers >1 from overtraffic",
	}
	per := len(configs) + 1
	cols := make([][]float64, len(configs))
	for wi, w := range workloads {
		base := results[wi*per].Energy.Total()
		row := Row{Label: w.name}
		for ci := range configs {
			v := results[wi*per+1+ci].Energy.Total() / base
			row.Values = append(row.Values, v)
			cols[ci] = append(cols[ci], v)
		}
		t.Rows = append(t.Rows, row)
	}
	avg := Row{Label: "mean"}
	for ci := range configs {
		avg.Values = append(avg.Values, mean(cols[ci]))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig23 reproduces Figure 23: chip+DRAM energy for the H1–H10 workloads,
// normalized to the no-EMC, no-prefetching baseline.
func (s *Suite) Fig23() (*Table, error) {
	return s.energyTable("Fig23",
		"Energy, heterogeneous workloads (normalized to no-PF baseline)", h10())
}

// Fig24 reproduces Figure 24: energy for the homogeneous workloads.
func (s *Suite) Fig24() (*Table, error) {
	var ws []spec
	for _, n := range trace.HighIntensityNames() {
		ws = append(ws, spec{name: "4x" + n, bench: []string{n, n, n, n}})
	}
	return s.energyTable("Fig24",
		"Energy, homogeneous workloads (normalized to no-PF baseline)", ws)
}
