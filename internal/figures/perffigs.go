package figures

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// pfConfigs is the baseline order of the paper's performance figures.
var pfConfigs = []sim.PrefetcherKind{sim.PFNone, sim.PFGHB, sim.PFStream, sim.PFMarkovStream}

// Fig12 reproduces Figure 12: for each quad-core workload H1–H10 and each
// prefetching configuration, the speedup of adding the EMC (EMC IPC over
// baseline IPC with the same prefetcher).
func (s *Suite) Fig12() (*Table, error) {
	var specs []spec
	for _, w := range h10() {
		for _, pf := range pfConfigs {
			specs = append(specs,
				spec{name: w.name, bench: w.bench, pf: pf},
				spec{name: w.name + "+emc", bench: w.bench, pf: pf, emc: true})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig12",
		Title:   "Quad-core EMC speedup over each prefetching baseline (H1-H10)",
		Columns: []string{"vs-none", "vs-ghb", "vs-stream", "vs-mk+st"},
		Notes:   "paper: +15% / +13% / +10% / +11% on average",
	}
	idx := 0
	cols := make([][]float64, len(pfConfigs))
	for _, w := range h10() {
		row := Row{Label: w.name}
		for c := range pfConfigs {
			base, emc := results[idx], results[idx+1]
			idx += 2
			sp := geoSpeedup(emc, base)
			row.Values = append(row.Values, sp)
			cols[c] = append(cols[c], sp)
		}
		t.Rows = append(t.Rows, row)
	}
	avg := Row{Label: "gmean"}
	for c := range pfConfigs {
		avg.Values = append(avg.Values, mean(cols[c]))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig13 reproduces Figure 13: EMC speedups on homogeneous quad-core
// workloads (four copies of each memory-intensive benchmark).
func (s *Suite) Fig13() (*Table, error) {
	names := trace.HighIntensityNames()
	var specs []spec
	for _, n := range names {
		b := []string{n, n, n, n}
		for _, pf := range pfConfigs {
			specs = append(specs,
				spec{name: "4x" + n, bench: b, pf: pf},
				spec{name: "4x" + n + "+emc", bench: b, pf: pf, emc: true})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig13",
		Title:   "Homogeneous quad-core EMC speedup per prefetching baseline",
		Columns: []string{"vs-none", "vs-ghb", "vs-stream", "vs-mk+st"},
		Notes:   "paper: mcf largest (+30% vs none); lbm ~0 (no dependent misses)",
	}
	idx := 0
	for _, n := range names {
		row := Row{Label: "4x" + n}
		for range pfConfigs {
			base, emc := results[idx], results[idx+1]
			idx += 2
			row.Values = append(row.Values, geoSpeedup(emc, base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig14 reproduces Figure 14: eight-core EMC speedups with a single memory
// controller and with dual memory controllers (each compute-capable).
func (s *Suite) Fig14() (*Table, error) {
	var specs []spec
	for _, w := range h10() {
		b := append(append([]string{}, w.bench...), w.bench...)
		for _, mcs := range []int{1, 2} {
			for _, pf := range []sim.PrefetcherKind{sim.PFNone, sim.PFGHB} {
				specs = append(specs,
					spec{name: fmt.Sprintf("%s/%dMC", w.name, mcs), bench: b, pf: pf, mcs: mcs},
					spec{name: fmt.Sprintf("%s/%dMC+emc", w.name, mcs), bench: b, pf: pf, mcs: mcs, emc: true})
			}
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig14",
		Title:   "Eight-core EMC speedup: single vs dual memory controller",
		Columns: []string{"1MC-vs-none", "1MC-vs-ghb", "2MC-vs-none", "2MC-vs-ghb"},
		Notes:   "paper: 1MC +17%/+13%; 2MC +16%/+14% (slightly lower due to EMC-EMC communication)",
	}
	idx := 0
	var cols [4][]float64
	for _, w := range h10() {
		row := Row{Label: w.name}
		for c := 0; c < 4; c++ {
			base, emc := results[idx], results[idx+1]
			idx += 2
			sp := geoSpeedup(emc, base)
			row.Values = append(row.Values, sp)
			cols[c] = append(cols[c], sp)
		}
		t.Rows = append(t.Rows, row)
	}
	avg := Row{Label: "gmean"}
	for c := 0; c < 4; c++ {
		avg.Values = append(avg.Values, mean(cols[c]))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig20 reproduces Figure 20: performance sensitivity to DRAM channels and
// ranks, for the no-prefetch baseline and the EMC system, averaged over
// H1–H10 and normalized to the 1-channel/1-rank baseline.
func (s *Suite) Fig20() (*Table, error) {
	type geo struct{ c, r int }
	geos := []geo{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {4, 2}, {4, 4}}
	var specs []spec
	for _, w := range h10() {
		for _, g := range geos {
			specs = append(specs,
				spec{name: w.name, bench: w.bench, pf: "none", chans: g.c, ranks: g.r},
				spec{name: w.name + "+emc", bench: w.bench, pf: "none", chans: g.c, ranks: g.r, emc: true})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig20",
		Title:   "Sensitivity to channels x ranks (IPC normalized to 1C1R baseline)",
		Columns: []string{"baseline", "emc", "emcGain"},
		Notes:   "paper: EMC benefit largest on contended (few-channel) systems, +11% even at 4C4R",
	}
	// Average IPC per geometry across workloads.
	nW := len(h10())
	for gi, g := range geos {
		var baseIPC, emcIPC []float64
		for wi := 0; wi < nW; wi++ {
			idx := wi*len(geos)*2 + gi*2
			baseIPC = append(baseIPC, results[idx].AvgIPC())
			emcIPC = append(emcIPC, results[idx+1].AvgIPC())
		}
		label := fmt.Sprintf("%dC%dR", g.c, g.r)
		t.Rows = append(t.Rows, Row{Label: label,
			Values: []float64{mean(baseIPC), mean(emcIPC), mean(emcIPC) / mean(baseIPC)}})
	}
	// Normalize the first two columns to the 1C1R baseline.
	norm := t.Rows[0].Values[0]
	for i := range t.Rows {
		t.Rows[i].Values[0] /= norm
		t.Rows[i].Values[1] /= norm
	}
	return t, nil
}
