package figures_test

import (
	"context"
	"testing"

	"repro/internal/figures"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestServiceModeFigureBytesIdentical is the -jobs golden test: a figure
// produced with every run routed through the service scheduler must render
// byte-identically to the direct sim.Run path. Fig. 22 is the densest cheap
// figure (the H1–H10 baseline/EMC pairs, 20 runs), so it exercises sharding,
// result-cache traffic, and run memoization together.
func TestServiceModeFigureBytesIdentical(t *testing.T) {
	opts := figures.DefaultOptions()
	opts.InstrPerCore = 1500
	opts.InstrPerCore8 = 1000
	opts.Parallel = 4

	direct, err := figures.NewSuite(opts).Fig22()
	if err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Config{Workers: 4, QueueCap: 1024})
	defer svc.Close()
	sopts := opts
	sopts.Runner = func(cfg sim.Config) (*sim.Result, error) {
		return svc.Run(context.Background(), "golden", cfg)
	}
	served, err := figures.NewSuite(sopts).Fig22()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := served.String(), direct.String(); got != want {
		t.Fatalf("service-mode table differs from direct run:\n--- direct ---\n%s\n--- service ---\n%s", want, got)
	}
	st := svc.Stats()
	if st.Done == 0 || st.Failed != 0 {
		t.Fatalf("scheduler did no work or failed: %+v", st)
	}
}
