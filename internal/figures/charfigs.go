package figures

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig1 reproduces Figure 1: for each SPEC benchmark (four copies on the
// quad-core, no prefetching), the split of average LLC-miss latency into the
// DRAM access itself and all other on-chip delay, in cycles.
func (s *Suite) Fig1() (*Table, error) {
	names := intensityOrder()
	specs := make([]spec, len(names))
	for i, n := range names {
		specs[i] = spec{name: "4x" + n, bench: []string{n, n, n, n}, pf: "none"}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig1",
		Title:   "LLC-miss latency split: DRAM access vs on-chip delay (cycles)",
		Columns: []string{"dram", "onchip", "total", "onchip%"},
		Notes:   "benchmarks ascending in memory intensity; on-chip = queueing + interconnect + cache lookups + fill path",
	}
	for i, r := range results {
		n := float64(r.Sys.CoreMissSegCount)
		if n == 0 || r.Sys.CoreMissCount == 0 {
			t.Rows = append(t.Rows, Row{Label: names[i], Values: []float64{0, 0, 0, 0}})
			continue
		}
		// Both averages over the segment-tracked population so the split is
		// internally consistent (merged waiters without early stamps are
		// excluded from both numerator and denominator).
		total := float64(r.Sys.CoreMissTotal) / float64(r.Sys.CoreMissCount)
		dram := float64(r.Sys.CoreMissDRAM) / n
		if dram > total {
			dram = total
		}
		onchip := total - dram
		t.Rows = append(t.Rows, Row{Label: names[i],
			Values: []float64{dram, onchip, total, 100 * onchip / total}})
	}
	return t, nil
}

// Fig2 reproduces Figure 2: the fraction of LLC misses that depend on a
// prior LLC miss, and the speedup if those misses were served at LLC-hit
// latency (the ideal-dependent-hit mode).
func (s *Suite) Fig2() (*Table, error) {
	names := intensityOrder()
	var specs []spec
	for _, n := range names {
		b := []string{n, n, n, n}
		specs = append(specs,
			spec{name: "4x" + n, bench: b, pf: "none"},
			spec{name: "4x" + n + "-ideal", bench: b, pf: "none", ideal: true})
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig2",
		Title:   "Dependent-miss share of LLC misses and ideal-hit speedup",
		Columns: []string{"dep%", "idealSpeedup"},
		Notes:   "paper: mcf ~45% dependent, +95% ideal speedup; shape target is monotone with pointer intensity",
	}
	for i := 0; i < len(results); i += 2 {
		base, ideal := results[i], results[i+1]
		t.Rows = append(t.Rows, Row{Label: names[i/2], Values: []float64{
			100 * base.DependentMissFraction(),
			geoSpeedup(ideal, base),
		}})
	}
	return t, nil
}

// Fig3 reproduces Figure 3: the percentage of dependent cache misses covered
// (turned into hits) by the GHB, stream, and Markov+stream prefetchers, for
// the memory-intensive benchmarks.
func (s *Suite) Fig3() (*Table, error) {
	names := trace.HighIntensityNames()
	pfs := []string{"ghb", "stream", "markov+stream"}
	var specs []spec
	for _, n := range names {
		b := []string{n, n, n, n}
		for _, pf := range pfs {
			specs = append(specs, spec{name: n + "+" + pf, bench: b, pf: sim.PrefetcherKind(pf)})
		}
	}
	results, err := s.runMany(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Fig3",
		Title:   "% of dependent cache misses covered by each prefetcher",
		Columns: []string{"ghb", "stream", "markov+stream"},
		Notes:   "paper: under 20% on average for every prefetcher",
	}
	idx := 0
	for _, n := range names {
		row := Row{Label: n}
		for range pfs {
			r := results[idx]
			idx++
			dep := float64(r.Sys.DepMisses + r.Sys.DepCovered)
			cov := 0.0
			if dep > 0 {
				cov = 100 * float64(r.Sys.DepCovered) / dep
			}
			row.Values = append(row.Values, cov)
		}
		t.Rows = append(t.Rows, row)
	}
	avg := Row{Label: "mean"}
	for c := range pfs {
		var vs []float64
		for _, r := range t.Rows {
			vs = append(vs, r.Values[c])
		}
		avg.Values = append(avg.Values, mean(vs))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig6 reproduces Figure 6: the average number of operations in the
// dependence chain between a source miss and its dependent miss, measured
// from the generated uop streams (the ground truth the chains are built
// from).
func (s *Suite) Fig6() (*Table, error) {
	t := &Table{
		ID:      "Fig6",
		Title:   "Average ops between a source miss and its dependent miss",
		Columns: []string{"avgOps"},
		Notes:   "paper: roughly 6-12 across the memory-intensive benchmarks",
	}
	for _, n := range trace.HighIntensityNames() {
		g := trace.NewGenerator(trace.MustByName(n), s.Opts.Seed)
		for i := uint64(0); i < s.Opts.InstrPerCore; i++ {
			g.Next()
		}
		st := g.Stats()
		v := 0.0
		if st.DepChainLinks > 0 {
			v = float64(st.DepChainOps) / float64(st.DepChainLinks)
		}
		t.Rows = append(t.Rows, Row{Label: n, Values: []float64{v}})
	}
	return t, nil
}
