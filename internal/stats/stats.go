// Package stats provides small statistics helpers used across the
// simulator: power-of-two bucketed histograms for latency distributions
// (cheap enough to update on every memory request) and streaming
// mean/extrema accumulators.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a log2-bucketed histogram of non-negative samples. Bucket i
// holds samples in [2^i, 2^(i+1)); bucket 0 holds 0 and 1. It answers
// approximate quantiles without storing samples.
type Histogram struct {
	buckets [48]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	b := 0
	if v > 1 {
		b = 64 - bits.LeadingZeros64(v) - 1
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extrema.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the top of
// the bucket containing it, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			top := uint64(1)<<(uint(i)+1) - 1
			// The last bucket is open-ended (Add clamps overflowing samples
			// into it), so its nominal top can understate; use the max.
			if top > h.max || i == len(h.buckets)-1 {
				top = h.max
			}
			return top
		}
	}
	return h.max
}

// Merge adds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// histogramJSON is the serialized shape of a Histogram. Buckets elide the
// empty tail (most latency histograms occupy a handful of low buckets), and
// the struct round-trips losslessly: sim.Result embeds Histograms, and the
// durable result cache persists Results as JSON.
type histogramJSON struct {
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
}

// MarshalJSON implements json.Marshaler (lossless, see UnmarshalJSON).
func (h Histogram) MarshalJSON() ([]byte, error) {
	hi := len(h.buckets)
	for hi > 0 && h.buckets[hi-1] == 0 {
		hi--
	}
	return json.Marshal(histogramJSON{
		Buckets: h.buckets[:hi],
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Buckets) > len(h.buckets) {
		return fmt.Errorf("stats: histogram has %d buckets, max %d", len(j.Buckets), len(h.buckets))
	}
	*h = Histogram{count: j.Count, sum: j.Sum, min: j.Min, max: j.Max}
	copy(h.buckets[:], j.Buckets)
	return nil
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Bar renders an ASCII density sketch over the occupied buckets.
func (h *Histogram) Bar(width int) string {
	if h.count == 0 || width <= 0 {
		return ""
	}
	lo, hi := 0, len(h.buckets)-1
	for lo < len(h.buckets) && h.buckets[lo] == 0 {
		lo++
	}
	for hi >= 0 && h.buckets[hi] == 0 {
		hi--
	}
	var peak uint64
	for i := lo; i <= hi; i++ {
		if h.buckets[i] > peak {
			peak = h.buckets[i]
		}
	}
	marks := " .:-=+*#%@"
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		lvl := int(float64(h.buckets[i]) / float64(peak) * float64(len(marks)-1))
		b.WriteByte(marks[lvl])
	}
	return b.String()
}

// Mean is a streaming mean/extrema accumulator for float64 samples.
type Mean struct {
	n   uint64
	sum float64
	min float64
	max float64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	if m.n == 0 || v < m.min {
		m.min = v
	}
	if m.n == 0 || v > m.max {
		m.max = v
	}
	m.n++
	m.sum += v
}

// Value returns the mean (0 when empty).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the sample count.
func (m *Mean) N() uint64 { return m.n }

// Min returns the smallest sample.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest sample.
func (m *Mean) Max() float64 { return m.max }

// Ratio safely divides two counters.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct is Ratio in percent.
func Pct(num, den uint64) float64 { return 100 * Ratio(num, den) }
