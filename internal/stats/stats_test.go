package stats

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.String() != "empty" {
		t.Error("empty histogram should say so")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	want := float64(0+1+2+3+100+1000) / 6
	if h.Mean() != want {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Add(i)
	}
	// log2 buckets give upper bounds: p50 of 1..1000 is 500, bucket top 511.
	if q := h.Quantile(0.5); q < 500 || q > 511 {
		t.Errorf("p50 bound = %d", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want clamped max 1000", q)
	}
	if q := h.Quantile(0.0); q == 0 {
		t.Error("q=0 should return the first occupied bucket top")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, v)
		}
	}

	var one Histogram
	one.Add(37)
	for _, q := range []float64{-0.5, 0, 0.5, 0.99, 1, 1.5} {
		// A single sample is every quantile; the bucket top clamps to max.
		if v := one.Quantile(q); v != 37 {
			t.Errorf("single-sample Quantile(%v) = %d, want 37", q, v)
		}
	}

	// Samples beyond the last bucket's range land in (and clamp to) the top
	// bucket; the quantile bound must still clamp to the observed max, not
	// the bucket's nominal 2^48 top.
	var big Histogram
	huge := uint64(1) << 60
	big.Add(huge)
	big.Add(huge + 5)
	if v := big.Quantile(0.5); v != huge+5 {
		t.Errorf("max-bucket Quantile(0.5) = %d, want clamp to max %d", v, huge+5)
	}
	if big.Min() != huge || big.Max() != huge+5 {
		t.Errorf("max-bucket extrema %d/%d", big.Min(), big.Max())
	}
}

// Property: quantile bounds are monotone in q and always >= min, <= max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Add(uint64(s))
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(0); i < 10; i++ {
		a.Add(i)
		b.Add(i + 100)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 109 {
		t.Errorf("merged extrema %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 20 {
		t.Error("merging empty changed count")
	}
}

func TestHistogramBar(t *testing.T) {
	var h Histogram
	if h.Bar(10) != "" {
		t.Error("empty bar should be empty")
	}
	for i := 0; i < 100; i++ {
		h.Add(64)
	}
	h.Add(1024)
	bar := h.Bar(10)
	if len(bar) == 0 {
		t.Fatal("bar should render")
	}
	if bar[0] != '@' {
		t.Errorf("peak bucket should render densest, got %q", bar)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean should be 0")
	}
	for _, v := range []float64{1, 2, 3} {
		m.Add(v)
	}
	if m.Value() != 2 || m.N() != 3 || m.Min() != 1 || m.Max() != 3 {
		t.Errorf("mean accumulator wrong: %+v", m)
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("divide by zero should be 0")
	}
	if Ratio(1, 2) != 0.5 || Pct(1, 2) != 50 {
		t.Error("ratio math wrong")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 5000, 1 << 40, ^uint64(0)} {
		h.Add(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed histogram:\n got %+v\nwant %+v", back, h)
	}
	// Empty histograms round-trip too (most Result histograms are empty).
	var empty, emptyBack Histogram
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack != empty {
		t.Fatal("empty histogram round trip not identical")
	}
	if _, err := json.Marshal(struct{ H Histogram }{h}); err != nil {
		t.Fatalf("embedded (non-pointer) marshal failed: %v", err)
	}
}

func TestHistogramJSONRejectsOversize(t *testing.T) {
	var back Histogram
	big := make([]uint64, 49)
	data, _ := json.Marshal(map[string]any{"buckets": big})
	if err := json.Unmarshal(data, &back); err == nil {
		t.Fatal("oversized bucket list accepted")
	}
}
