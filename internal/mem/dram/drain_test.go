package dram

import "testing"

// TestWriteDrainHysteresis: once the write queue crosses the drain
// threshold, writes are serviced even while reads are pending; below it,
// reads keep priority.
func TestWriteDrainHysteresis(t *testing.T) {
	geo := QuadCoreGeometry()
	geo.WriteDrain = 8
	ti := DDR3()
	ti.TREFI = 0
	c := NewController(geo, ti, SchedFRFCFS, 4)

	// Fill the write queue past the drain threshold on channel 0.
	for i := 0; i < 12; i++ {
		if !c.Enqueue(&Request{LineAddr: uint64(i * 2), Write: true, CoreID: -1}, 0) {
			t.Fatal("write enqueue failed")
		}
	}
	// One read on the same channel.
	r := &Request{LineAddr: 0x100, CoreID: 0}
	c.Enqueue(r, 0)
	for cy := uint64(0); cy < 10000; cy++ {
		c.Tick(cy)
	}
	if c.Stats.Writes != 12 {
		t.Fatalf("writes completed = %d, want 12", c.Stats.Writes)
	}
	if c.Stats.Reads != 1 {
		t.Fatalf("reads completed = %d, want 1", c.Stats.Reads)
	}
	// With the queue above the drain mark, some writes must have issued
	// before the read finished (drain preempted read priority).
	if r.DoneAt == 0 {
		t.Fatal("read never completed")
	}
}

// TestQueueFairnessUnderBatch: with two cores hammering one bank, batch
// scheduling bounds how far one core's completions can run ahead of the
// other's.
func TestQueueFairnessUnderBatch(t *testing.T) {
	geo := QuadCoreGeometry()
	c := NewController(geo, DDR3(), SchedBatch, 2)
	linesPerRow := uint64(geo.RowBytes / geo.LineSize)
	// Interleave enqueues: core 0 row-hitting stream, core 1 conflicts.
	for i := 0; i < 24; i++ {
		c.Enqueue(&Request{LineAddr: uint64(i * 2), CoreID: 0}, 0)
		c.Enqueue(&Request{LineAddr: uint64(i) * linesPerRow * 4, CoreID: 1}, 0)
	}
	done := map[int]int{}
	firstAllZero := uint64(0)
	for cy := uint64(0); cy < 200000 && (done[0] < 24 || done[1] < 24); cy++ {
		for _, d := range c.Tick(cy) {
			done[d.CoreID]++
			if done[0] == 24 && firstAllZero == 0 {
				firstAllZero = cy
			}
		}
	}
	if done[0] != 24 || done[1] != 24 {
		t.Fatalf("completions: %v", done)
	}
}
