package dram

import (
	"testing"
	"testing/quick"
)

func newQuad(policy SchedPolicy) *Controller {
	return NewController(QuadCoreGeometry(), DDR3(), policy, 4)
}

// clocks keeps a monotone cycle counter per controller so successive run()
// calls never move time backwards.
var clocks = map[*Controller]*uint64{}

func clockOf(c *Controller) *uint64 {
	cy, ok := clocks[c]
	if !ok {
		cy = new(uint64)
		clocks[c] = cy
	}
	return cy
}

// run advances the controller until n more reads complete or maxCycles pass.
func run(t *testing.T, c *Controller, n int, maxCycles uint64) []*Request {
	t.Helper()
	cy := clockOf(c)
	var done []*Request
	for i := uint64(0); i < maxCycles && len(done) < n; i++ {
		done = append(done, c.Tick(*cy)...)
		*cy++
	}
	if len(done) < n {
		t.Fatalf("only %d of %d reads completed", len(done), n)
	}
	return done
}

// enq enqueues at the controller's current clock.
func enq(t *testing.T, c *Controller, r *Request) {
	t.Helper()
	if !c.Enqueue(r, *clockOf(c)) {
		t.Fatal("enqueue failed")
	}
}

func TestColdReadLatency(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	r := &Request{LineAddr: 0x1000, CoreID: 0}
	if !c.Enqueue(r, 0) {
		t.Fatal("enqueue failed")
	}
	done := run(t, c, 1, 1000)
	ti := DDR3()
	// Closed bank: tRCD + tCAS + tBurst.
	want := uint64(ti.TRCD + ti.TCAS + ti.TBurst)
	if done[0].DoneAt != want {
		t.Errorf("cold read done at %d, want %d", done[0].DoneAt, want)
	}
	if done[0].RowHit || done[0].RowConflict {
		t.Error("cold read should be a row-empty access")
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	ti := DDR3()
	// Same bank, same row -> hit.
	c := newQuad(SchedFRFCFS)
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	run(t, c, 1, 1000)
	enq(t, c, &Request{LineAddr: 2, CoreID: 0}) // same channel (even), same row
	d := run(t, c, 1, 2000)
	hitLat := d[0].DoneAt - d[0].EnqueuedAt
	if !d[0].RowHit {
		t.Fatalf("expected row hit, got %+v", d[0])
	}
	if hitLat != uint64(ti.TCAS+ti.TBurst) {
		t.Errorf("row-hit latency %d, want %d", hitLat, ti.TCAS+ti.TBurst)
	}

	// Same bank, different row -> conflict.
	c2 := newQuad(SchedFRFCFS)
	c2.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	run(t, c2, 1, 1000)
	// Row stride within one channel: linesPerRow*banks*channels lines.
	geo := c2.Geometry()
	rowStride := uint64(geo.RowBytes/geo.LineSize) * uint64(geo.Banks) * uint64(geo.Channels)
	enq(t, c2, &Request{LineAddr: rowStride, CoreID: 0})
	d2 := run(t, c2, 1, 3000)
	if !d2[0].RowConflict {
		t.Fatalf("expected row conflict, got %+v", d2[0])
	}
	confLat := d2[0].DoneAt - d2[0].EnqueuedAt
	if confLat <= hitLat {
		t.Errorf("conflict latency %d should exceed hit latency %d", confLat, hitLat)
	}
}

func TestChannelsDecodeInterleaved(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	r0 := &Request{LineAddr: 0}
	r1 := &Request{LineAddr: 1}
	c.Enqueue(r0, 0)
	c.Enqueue(r1, 0)
	if r0.Channel() == r1.Channel() {
		t.Error("adjacent lines should interleave across channels")
	}
}

func TestBusSerializesSameChannel(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	// Two row-hitting reads to the same channel: second waits for the bus.
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	c.Enqueue(&Request{LineAddr: 2, CoreID: 0}, 0)
	done := run(t, c, 2, 2000)
	if done[1].DoneAt-done[0].DoneAt < uint64(DDR3().TBurst) {
		t.Errorf("bursts overlap on one channel: %d then %d", done[0].DoneAt, done[1].DoneAt)
	}
}

func TestParallelChannelsOverlap(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0) // channel 0
	c.Enqueue(&Request{LineAddr: 1, CoreID: 0}, 0) // channel 1
	done := run(t, c, 2, 2000)
	if done[0].DoneAt != done[1].DoneAt {
		t.Errorf("independent channels should complete together: %d vs %d",
			done[0].DoneAt, done[1].DoneAt)
	}
}

func TestQueueBackpressure(t *testing.T) {
	geo := QuadCoreGeometry()
	c := NewController(geo, DDR3(), SchedFRFCFS, 4)
	admitted := 0
	for i := 0; i < geo.QueueSize+10; i++ {
		if c.Enqueue(&Request{LineAddr: uint64(i * 7), CoreID: 0}, 0) {
			admitted++
		}
	}
	if admitted != geo.QueueSize {
		t.Errorf("admitted %d, want %d", admitted, geo.QueueSize)
	}
	if c.Stats.QueueFull != 10 {
		t.Errorf("queueFull = %d, want 10", c.Stats.QueueFull)
	}
}

func TestWritesComplete(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	for i := 0; i < 8; i++ {
		if !c.Enqueue(&Request{LineAddr: uint64(i), Write: true, CoreID: -1}, 0) {
			t.Fatal("write enqueue failed")
		}
	}
	for cy := uint64(0); cy < 5000; cy++ {
		c.Tick(cy)
	}
	if c.Stats.Writes != 8 {
		t.Errorf("writes completed = %d, want 8", c.Stats.Writes)
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	// A few writes queued but below the drain threshold, plus one read: the
	// read must issue first.
	for i := 0; i < 4; i++ {
		c.Enqueue(&Request{LineAddr: uint64(i * 2), Write: true, CoreID: -1}, 0)
	}
	r := &Request{LineAddr: 0x400, CoreID: 1}
	c.Enqueue(r, 0)
	done := run(t, c, 1, 2000)
	if done[0] != r {
		t.Fatal("read should complete")
	}
	if r.IssuedAt != 0 {
		t.Errorf("read issued at %d, want 0 (before writes)", r.IssuedAt)
	}
}

func TestBatchSchedulingFairness(t *testing.T) {
	// Core 1 has one request buried behind many core-0 requests to the same
	// bank. Batch scheduling ranks core 1 (fewest marked) first, so its
	// request must not wait for all of core 0's.
	cBatch := newQuad(SchedBatch)
	cFCFS := newQuad(SchedFCFS)
	for _, c := range []*Controller{cBatch, cFCFS} {
		for i := 0; i < 10; i++ {
			c.Enqueue(&Request{LineAddr: uint64(i * 4), CoreID: 0}, 0)
		}
		c.Enqueue(&Request{LineAddr: 0x10000, CoreID: 1}, 0)
	}
	finish := func(c *Controller) uint64 {
		for cy := uint64(0); cy < 20000; cy++ {
			for _, d := range c.Tick(cy) {
				if d.CoreID == 1 {
					return d.DoneAt
				}
			}
		}
		t.Fatal("core 1 request never completed")
		return 0
	}
	if fb, ff := finish(cBatch), finish(cFCFS); fb >= ff {
		t.Errorf("batch scheduling should serve core 1 earlier: batch=%d fcfs=%d", fb, ff)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	// Open a row on channel 0/bank 0.
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	run(t, c, 1, 1000)
	// Now queue a conflict (older) and a hit (younger) for the same bank.
	geo := c.Geometry()
	rowStride := uint64(geo.RowBytes/geo.LineSize) * uint64(geo.Banks) * uint64(geo.Channels)
	conflict := &Request{LineAddr: rowStride, CoreID: 0}
	hit := &Request{LineAddr: 4, CoreID: 0}
	enq(t, c, conflict)
	enq(t, c, hit)
	done := run(t, c, 2, 5000)
	if done[0] != hit {
		t.Error("FR-FCFS should issue the row hit first")
	}
	if !done[0].RowHit || !done[1].RowConflict {
		t.Errorf("expected hit then conflict, got %+v then %+v", done[0], done[1])
	}
}

func TestStatsAccounting(t *testing.T) {
	c := newQuad(SchedFRFCFS)
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	c.Enqueue(&Request{LineAddr: 2, CoreID: 0}, 0)
	run(t, c, 2, 2000)
	if c.Stats.Reads != 2 {
		t.Errorf("reads = %d, want 2", c.Stats.Reads)
	}
	if c.Stats.RowHits != 1 || c.Stats.RowEmpty != 1 {
		t.Errorf("row stats wrong: %+v", c.Stats)
	}
	if c.Stats.AvgReadLatency() <= 0 {
		t.Error("avg read latency should be positive")
	}
	if c.Stats.RowConflictRate() != 0 {
		t.Error("no conflicts expected")
	}
	if c.Stats.String() == "" {
		t.Error("String should not be empty")
	}
}

// Property: every admitted read eventually completes exactly once, with
// monotone non-decreasing DoneAt >= EnqueuedAt + minimum service time.
func TestAllReadsCompleteProperty(t *testing.T) {
	ti := DDR3()
	minService := uint64(ti.TCAS + ti.TBurst)
	f := func(addrs []uint16) bool {
		if len(addrs) > 60 {
			addrs = addrs[:60]
		}
		c := newQuad(SchedBatch)
		want := 0
		for i, a := range addrs {
			if c.Enqueue(&Request{LineAddr: uint64(a), CoreID: i % 4}, 0) {
				want++
			}
		}
		got := 0
		for cy := uint64(0); cy < 100000 && got < want; cy++ {
			for _, d := range c.Tick(cy) {
				if d.DoneAt < d.EnqueuedAt+minService {
					return false
				}
				got++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGeometries(t *testing.T) {
	q := QuadCoreGeometry()
	e := EightCoreGeometry()
	if q.Channels != 2 || q.QueueSize != 128 {
		t.Errorf("quad geometry wrong: %+v", q)
	}
	if e.Channels != 4 || e.QueueSize != 256 {
		t.Errorf("eight geometry wrong: %+v", e)
	}
	for _, p := range []SchedPolicy{SchedBatch, SchedFRFCFS, SchedFCFS} {
		if p.String() == "?" {
			t.Errorf("policy %d has no name", p)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(Geometry{}, DDR3(), SchedBatch, 4)
}

func TestRefreshBlocksBanksAndClosesRows(t *testing.T) {
	ti := DDR3()
	ti.TREFI = 1000
	ti.TRFC = 200
	c := NewController(QuadCoreGeometry(), ti, SchedFRFCFS, 4)
	// Open a row well before the refresh window.
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	for cy := uint64(0); cy < 400; cy++ {
		c.Tick(cy)
	}
	// A same-row request issued right after the refresh deadline must not be
	// a row hit (refresh closed the row) and must wait out tRFC.
	r := &Request{LineAddr: 2, CoreID: 0}
	c.Enqueue(r, 1001)
	var done *Request
	for cy := uint64(1001); cy < 4000 && done == nil; cy++ {
		for _, d := range c.Tick(cy) {
			if d == r {
				done = d
			}
		}
	}
	if done == nil {
		t.Fatal("request never completed")
	}
	if done.RowHit {
		t.Error("refresh must close open rows")
	}
	if c.Stats.Refreshes == 0 {
		t.Error("no refreshes recorded")
	}
	// Staggered deadline for rank 0 of TREFI/2 = 500, then 1500...; the
	// request at 1001 waits for the 500-refresh only if tRFC overlaps; at
	// minimum its issue must be at/after enqueue.
	if done.IssuedAt < 1001 {
		t.Errorf("issued at %d, before enqueue", done.IssuedAt)
	}
}

func TestRefreshDisabled(t *testing.T) {
	ti := DDR3()
	ti.TREFI = 0
	c := NewController(QuadCoreGeometry(), ti, SchedFRFCFS, 4)
	for cy := uint64(0); cy < 100000; cy += 100 {
		c.Tick(cy)
	}
	if c.Stats.Refreshes != 0 {
		t.Errorf("refreshes = %d with TREFI=0", c.Stats.Refreshes)
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	ti := DDR3()
	ti.TREFI = 0
	// 5 conflicting activates to 5 different banks of one rank: the fifth
	// must wait for the tFAW window.
	c := NewController(Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8192,
		LineSize: 64, QueueSize: 64, WriteQCap: 16, WriteDrain: 8}, ti, SchedFCFS, 4)
	linesPerRow := uint64(8192 / 64)
	for b := uint64(0); b < 5; b++ {
		c.Enqueue(&Request{LineAddr: b * linesPerRow, CoreID: 0}, 0)
	}
	var done []*Request
	for cy := uint64(0); cy < 5000 && len(done) < 5; cy++ {
		done = append(done, c.Tick(cy)...)
	}
	if len(done) != 5 {
		t.Fatalf("only %d completed", len(done))
	}
	// IssuedAt is the scheduling decision; the activation constraints show
	// up in data completion times: the fifth activate's data is at least a
	// tFAW window after the first's.
	if done[4].DoneAt-done[0].DoneAt < uint64(ti.TFAW)-uint64(4*ti.TBurst) {
		t.Errorf("fifth completion at %d vs first %d: tFAW=%d not enforced",
			done[4].DoneAt, done[0].DoneAt, ti.TFAW)
	}
}

func TestTRRDSpacing(t *testing.T) {
	ti := DDR3()
	ti.TREFI = 0
	ti.TFAW = 0
	ti.TRRD = 40 // well above the 16-cycle bus serialization
	c := NewController(QuadCoreGeometry(), ti, SchedFCFS, 4)
	geo := c.Geometry()
	linesPerRow := uint64(geo.RowBytes / geo.LineSize)
	// Two activates to different banks, same channel/rank.
	c.Enqueue(&Request{LineAddr: 0, CoreID: 0}, 0)
	c.Enqueue(&Request{LineAddr: linesPerRow * uint64(geo.Channels), CoreID: 0}, 0)
	var done []*Request
	for cy := uint64(0); cy < 3000 && len(done) < 2; cy++ {
		done = append(done, c.Tick(cy)...)
	}
	if len(done) != 2 {
		t.Fatalf("only %d completed", len(done))
	}
	// Both cold; without tRRD the bus alone would space completions by
	// TBurst (16). With tRRD=40 the second activate waits, so completions
	// are at least tRRD apart.
	d := int64(done[1].DoneAt) - int64(done[0].DoneAt)
	if d < 0 {
		d = -d
	}
	if d < int64(ti.TRRD) {
		t.Errorf("completion spacing %d < tRRD %d", d, ti.TRRD)
	}
}
