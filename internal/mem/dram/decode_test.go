package dram

import (
	"testing"
	"testing/quick"
)

// Property: the address decode maps every line into valid geometry bounds,
// is deterministic, and distinct lines that share channel+rank+bank+row
// must differ only in column bits (i.e. lie within one row's span).
func TestDecodeSoundness(t *testing.T) {
	geo := QuadCoreGeometry()
	c := NewController(geo, DDR3(), SchedFCFS, 4)
	linesPerRow := uint64(geo.RowBytes / geo.LineSize)
	f := func(line uint64) bool {
		line &= (1 << 40) - 1
		r := &Request{LineAddr: line}
		c.decode(r)
		if r.channel < 0 || r.channel >= geo.Channels {
			return false
		}
		if r.bank < 0 || r.bank >= geo.Banks {
			return false
		}
		if r.rank < 0 || r.rank >= geo.Ranks {
			return false
		}
		// Re-decode must agree.
		r2 := &Request{LineAddr: line}
		c.decode(r2)
		return r2.channel == r.channel && r2.bank == r.bank &&
			r2.rank == r.rank && r2.row == r.row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Consecutive same-channel lines within one row decode to the same row.
	base := uint64(123456) * linesPerRow * uint64(geo.Channels)
	r0 := &Request{LineAddr: base}
	c.decode(r0)
	for i := uint64(1); i < linesPerRow; i++ {
		r := &Request{LineAddr: base + i*uint64(geo.Channels)}
		c.decode(r)
		if r.row != r0.row || r.bank != r0.bank || r.channel != r0.channel {
			t.Fatalf("line %d left the row: %+v vs %+v", i, r, r0)
		}
	}
}
