// Package dram models the DDR3 main-memory system of Table 1: channels,
// ranks, and banks with open-row state machines and realistic command
// timings, a shared memory-controller queue, and a batch scheduler in the
// style of parallelism-aware batch scheduling (PAR-BS), with FR-FCFS and
// FCFS available for ablation.
//
// All timings are expressed in core cycles at 3.2 GHz. DDR3-1600 with
// CAS = 13.75 ns (Table 1) gives tCAS = tRCD = tRP = 44 core cycles and an
// 8-beat burst on the 800 MHz bus of 16 core cycles.
package dram

import "fmt"

// Timing holds DRAM command timings in core cycles.
type Timing struct {
	TRCD   int // row activate to column command
	TCAS   int // column command to first data
	TRP    int // precharge
	TRAS   int // activate to precharge minimum
	TBurst int // data-bus occupancy of one 64-byte transfer
	TWR    int // write recovery
	// Refresh: every TREFI cycles each rank performs a refresh taking TRFC
	// cycles, during which its banks accept no commands and open rows are
	// closed. TREFI = 0 disables refresh.
	TREFI int
	TRFC  int
	// Activation constraints: TRRD separates activates to the same rank;
	// TFAW bounds any four activates to a rank within a sliding window.
	// Zero disables either constraint.
	TRRD int
	TFAW int
}

// DDR3 returns the Table-1 DDR3 timing set at a 3.2 GHz core clock
// (tREFI = 7.8 us, tRFC = 160 ns for a 2 Gb device).
func DDR3() Timing {
	return Timing{TRCD: 44, TCAS: 44, TRP: 44, TRAS: 112, TBurst: 16, TWR: 48,
		TREFI: 24960, TRFC: 512, TRRD: 20, TFAW: 96}
}

// Geometry describes the memory organization reachable from one controller.
type Geometry struct {
	Channels   int
	Ranks      int // per channel
	Banks      int // per rank
	RowBytes   int // row-buffer size (Table 1: 8 KB)
	LineSize   int
	QueueSize  int // memory-controller read-queue capacity
	WriteQCap  int // write-queue capacity
	WriteDrain int // start draining writes above this occupancy
}

// QuadCoreGeometry is the paper's 4-core configuration: 2 channels, 1 rank
// of 8 banks each, 8 KB rows, a 128-entry memory queue.
func QuadCoreGeometry() Geometry {
	return Geometry{Channels: 2, Ranks: 1, Banks: 8, RowBytes: 8192,
		LineSize: 64, QueueSize: 128, WriteQCap: 64, WriteDrain: 32}
}

// EightCoreGeometry is the 8-core configuration: 4 channels, 256-entry queue.
func EightCoreGeometry() Geometry {
	return Geometry{Channels: 4, Ranks: 1, Banks: 8, RowBytes: 8192,
		LineSize: 64, QueueSize: 256, WriteQCap: 128, WriteDrain: 64}
}

// SchedPolicy selects the memory scheduler.
type SchedPolicy uint8

const (
	// SchedBatch is parallelism-aware batch scheduling (Table 1 baseline).
	SchedBatch SchedPolicy = iota
	// SchedFRFCFS is first-ready, first-come-first-served.
	SchedFRFCFS
	// SchedFCFS is strict arrival order (ablation).
	SchedFCFS
)

func (s SchedPolicy) String() string {
	switch s {
	case SchedBatch:
		return "batch"
	case SchedFRFCFS:
		return "frfcfs"
	case SchedFCFS:
		return "fcfs"
	}
	return "?"
}

// Request is one memory transaction (a 64-byte line read or write).
type Request struct {
	ID       uint64
	LineAddr uint64 // physical line address
	Write    bool
	CoreID   int  // requesting core (fairness/batching); -1 for writebacks
	FromEMC  bool // issued by the enhanced memory controller
	Prefetch bool
	Payload  any

	EnqueuedAt uint64
	IssuedAt   uint64 // first DRAM command
	DoneAt     uint64 // last data beat on the bus

	// RowHit/RowConflict record how the request found its bank.
	RowHit      bool
	RowConflict bool

	marked bool // member of the current scheduling batch

	channel, rank, bank int
	bankIdx             int32 // rank*Banks+bank, the handle into the bank arrays
	row                 uint64
}

// Channel returns the decoded channel index (valid after enqueue).
func (r *Request) Channel() int { return r.channel }

// Per-bank state is kept struct-of-arrays (DESIGN.md §13): the scheduler's
// inner loops (issueOn, NextEvent) touch only readyAt for every queued
// request, so giving each field its own dense slice keeps those scans inside
// one or two cache lines instead of striding over 24-byte structs.
type channel struct {
	// Bank arrays, ranks*banks flattened; Request.bankIdx indexes them.
	openRow    []int64
	readyAt    []uint64
	activateAt []uint64

	busFreeAt uint64
	readQ     []*Request
	writeQ    []*Request
	draining  bool
	// issueHintAt/issueHintGen memoize a failed issueOn scan: no request on
	// this channel can issue before issueHintAt unless the controller state
	// generation has moved (enqueue, issue, refresh, drain flip).
	issueHintAt  uint64
	issueHintGen uint64
	// nextRefresh holds the per-rank next refresh deadline.
	nextRefresh []uint64
	// Activation-rate state per rank: the last activate (tRRD), a ring of
	// the last four activate times (tFAW), and the total count (validity).
	lastAct  []uint64
	actRing  [][4]uint64
	actPos   []int
	actCount []uint64
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowConflicts uint64
	RowEmpty     uint64
	Activations  uint64
	Precharges   uint64
	Refreshes    uint64
	BusBusy      uint64 // cycles of data-bus occupancy (all channels)
	QueueFull    uint64 // rejected enqueues

	// Latency accounting for reads.
	TotalReadLatency uint64 // enqueue -> data done
	TotalQueueDelay  uint64 // enqueue -> first command
}

// Controller is one memory controller: the request queues, the scheduler,
// and the DRAM devices behind it.
type Controller struct {
	geo    Geometry
	timing Timing
	policy SchedPolicy

	channels []channel
	nextID   uint64
	inFlight []*Request // issued, waiting for DoneAt

	// Batch-scheduler state.
	batchLive int   // marked requests not yet issued
	coreRank  []int // lower = higher priority within batch

	// gen counts observable state changes (enqueues, issues, refreshes,
	// completions, drain flips). It versions the NextEvent memo and the
	// per-channel issue hints: while gen stands still, a recomputed scan
	// would reproduce the cached answer.
	gen       uint64
	nextEvGen uint64
	nextEvAt  uint64
	// minDoneAt lower-bounds the earliest DoneAt in inFlight, so Tick can
	// skip the completion scan on cycles where nothing can finish.
	minDoneAt uint64

	// Free list for pooled Requests and the reused completion buffer the
	// Tick return value aliases (consumed before the next Tick).
	reqPool []*Request
	doneBuf []*Request

	Stats Stats
}

// NoEvent is the NextEvent sentinel: no future work without new requests.
const NoEvent = ^uint64(0)

// NewRequest returns a zeroed Request from the controller's free list. The
// caller fills it in and Enqueues it; reads come back from Tick and must be
// handed back with Release, writes are recycled internally on completion.
func (c *Controller) NewRequest() *Request {
	if n := len(c.reqPool); n > 0 {
		r := c.reqPool[n-1]
		c.reqPool = c.reqPool[:n-1]
		return r
	}
	return &Request{}
}

// Release returns a completed read Request to the free list.
//
//simlint:noalloc
func (c *Controller) Release(r *Request) {
	*r = Request{}
	c.reqPool = append(c.reqPool, r) //simlint:allocok pool capacity stabilizes at the in-flight high-water mark
}

// busy reports whether any request is queued or in flight. An empty
// controller has no observable work at all: refresh epochs are deferred
// (nobody can see bank state until the next enqueue) and every scan below
// would come up empty, so NextEvent short-circuits to NoEvent and Tick to a
// no-op on the same predicate.
func (c *Controller) busy() bool {
	if len(c.inFlight) > 0 {
		return true
	}
	for i := range c.channels {
		if len(c.channels[i].readQ) > 0 || len(c.channels[i].writeQ) > 0 {
			return true
		}
	}
	return false
}

// NextEvent returns a lower bound on the next cycle at which the controller
// can change state: the next refresh deadline, the earliest bank-ready time
// of a schedulable queued request, or the earliest read completion. It
// returns now+1 whenever work is possible immediately, and NoEvent for a
// fully drained controller — refresh epochs on an empty controller are
// deferred, not ticked through (refresh-aware horizons, DESIGN.md §13.3),
// and caught up lazily when the next request arrives. Skipping to (but not
// past) the returned cycle is exact: every skipped Tick would have been a
// pure no-op.
//
//simlint:noalloc
func (c *Controller) NextEvent(now uint64) uint64 {
	if !c.busy() {
		return NoEvent
	}
	// Memo: event times are absolute, so a horizon computed at an earlier
	// cycle under the same state generation is still the answer as long as
	// it lies in the future.
	if c.nextEvGen == c.gen && c.nextEvAt > now {
		return c.nextEvAt
	}
	h := uint64(NoEvent)
	// A fresh batch forms on the first Tick after the previous one drains;
	// its membership depends on queue contents at that moment, so the tick
	// must not be deferred.
	if c.policy == SchedBatch && c.batchLive == 0 {
		for i := range c.channels {
			if len(c.channels[i].readQ) > 0 {
				return now + 1
			}
		}
	}
	for i := range c.channels {
		ch := &c.channels[i]
		if c.timing.TREFI > 0 {
			for _, d := range ch.nextRefresh {
				if d <= now {
					return now + 1
				}
				if d < h {
					h = d
				}
			}
		}
		// Mirror issueOn's read/write selection: the non-selected queue
		// cannot issue regardless of bank state, and the selection itself
		// only changes on enqueues/issues (which are ticked events)...
		useWrites := len(ch.writeQ) > 0 &&
			(len(ch.readQ) == 0 || len(ch.writeQ) >= c.geo.WriteDrain || ch.draining)
		// ...with one exception: whenever write mode is selected, issueOn
		// refreshes the drain-hysteresis flag even if no write can issue. If
		// that evaluation would flip the flag (and thereby re-enable reads),
		// the next Tick is a state change and must not be skipped.
		if useWrites && ch.draining != (len(ch.writeQ) > c.geo.WriteDrain/2) {
			return now + 1
		}
		q := ch.readQ
		if useWrites {
			q = ch.writeQ
		}
		for _, r := range q {
			t := ch.readyAt[r.bankIdx]
			if t <= now {
				return now + 1
			}
			if t < h {
				h = t
			}
		}
	}
	// Read completions wake the owner; write completions only compact the
	// in-flight list, which is order-preserving whenever it happens.
	for _, r := range c.inFlight {
		if !r.Write && r.DoneAt < h {
			h = r.DoneAt
		}
	}
	if h <= now {
		return now + 1
	}
	c.nextEvGen, c.nextEvAt = c.gen, h
	return h
}

// NewController builds a controller with the given geometry, timings,
// scheduling policy, and the number of cores (for batch ranking).
func NewController(geo Geometry, t Timing, policy SchedPolicy, cores int) *Controller {
	if geo.Channels <= 0 || geo.Banks <= 0 || geo.Ranks <= 0 {
		panic("dram: bad geometry")
	}
	c := &Controller{geo: geo, timing: t, policy: policy, coreRank: make([]int, cores+1),
		minDoneAt: NoEvent}
	c.channels = make([]channel, geo.Channels)
	for i := range c.channels {
		nb := geo.Ranks * geo.Banks
		c.channels[i].openRow = make([]int64, nb)
		c.channels[i].readyAt = make([]uint64, nb)
		c.channels[i].activateAt = make([]uint64, nb)
		for b := 0; b < nb; b++ {
			c.channels[i].openRow[b] = -1
		}
		c.channels[i].lastAct = make([]uint64, geo.Ranks)
		c.channels[i].actRing = make([][4]uint64, geo.Ranks)
		c.channels[i].actPos = make([]int, geo.Ranks)
		c.channels[i].actCount = make([]uint64, geo.Ranks)
		c.channels[i].nextRefresh = make([]uint64, geo.Ranks)
		for r := range c.channels[i].nextRefresh {
			// Stagger ranks so they do not refresh simultaneously.
			c.channels[i].nextRefresh[r] = uint64(t.TREFI) * uint64(r+1) / uint64(geo.Ranks+1)
			if t.TREFI == 0 {
				c.channels[i].nextRefresh[r] = ^uint64(0)
			}
		}
	}
	return c
}

// Geometry returns the controller's geometry.
func (c *Controller) Geometry() Geometry { return c.geo }

// decode maps a physical line address onto (channel, rank, bank, row).
// Channels interleave at line granularity; within a channel, consecutive
// lines fill a row before moving to the next bank, so streams enjoy
// row-buffer locality while banks still spread across the address space.
func (c *Controller) decode(r *Request) {
	la := r.LineAddr
	r.channel = int(la % uint64(c.geo.Channels))
	la /= uint64(c.geo.Channels)
	linesPerRow := uint64(c.geo.RowBytes / c.geo.LineSize)
	la /= linesPerRow // column bits
	r.bank = int(la % uint64(c.geo.Banks))
	la /= uint64(c.geo.Banks)
	r.rank = int(la % uint64(c.geo.Ranks))
	la /= uint64(c.geo.Ranks)
	r.row = la
	r.bankIdx = int32(r.rank*c.geo.Banks + r.bank)
}

// QueueOccupancy returns the total queued (not yet issued) read requests.
func (c *Controller) QueueOccupancy() int {
	n := 0
	for i := range c.channels {
		n += len(c.channels[i].readQ)
	}
	return n
}

// WriteQueueOccupancy returns the total queued (not yet issued) writes.
func (c *Controller) WriteQueueOccupancy() int {
	n := 0
	for i := range c.channels {
		n += len(c.channels[i].writeQ)
	}
	return n
}

// InFlightReads returns issued reads still waiting for their last data beat
// (a live gauge for the observability layer).
func (c *Controller) InFlightReads() int { return len(c.inFlight) }

// Enqueue admits a request to its channel queue. It returns false when the
// queue is full; the caller must retry (this is the back-pressure that makes
// MC queueing part of on-chip latency).
func (c *Controller) Enqueue(r *Request, now uint64) bool {
	c.nextID++
	r.ID = c.nextID
	r.EnqueuedAt = now
	c.decode(r)
	ch := &c.channels[r.channel]
	if r.Write {
		if len(ch.writeQ) >= c.geo.WriteQCap {
			c.Stats.QueueFull++
			return false
		}
		ch.writeQ = append(ch.writeQ, r)
		c.gen++
		return true
	}
	if c.QueueOccupancy() >= c.geo.QueueSize {
		c.Stats.QueueFull++
		return false
	}
	ch.readQ = append(ch.readQ, r)
	c.gen++
	return true
}

// Tick advances the controller one cycle; completed reads are returned so
// the owner can route fills. BenchmarkControllerReadStream and
// BenchmarkControllerMixed pin this path at 0 allocs/op.
//
//simlint:noalloc bench=BenchmarkController(ReadStream|Mixed)
func (c *Controller) Tick(now uint64) []*Request {
	// An empty controller is a guaranteed no-op: nothing can issue or
	// complete, and due refresh epochs stay deferred (the busy/empty
	// predicate is the same one NextEvent uses, so skip-enabled and
	// every-cycle runs defer identically).
	if !c.busy() {
		return nil
	}
	// Batch formation: when the current batch is exhausted, mark a new one.
	if c.policy == SchedBatch && c.batchLive == 0 {
		c.formBatch() //simlint:allocok per-batch (not per-cycle) work: its maps amortize to ~0 allocs/op over the batch's cycles
	}
	for i := range c.channels {
		c.refresh(&c.channels[i], now)
		c.issueOn(&c.channels[i], now)
	}
	// Completion fast path: nothing in flight can be due yet.
	if now < c.minDoneAt {
		return nil
	}
	// Collect completions. The returned slice aliases a reused buffer; it is
	// valid until the next Tick.
	done := c.doneBuf[:0]
	keep := c.inFlight[:0]
	minDone := uint64(NoEvent)
	for _, r := range c.inFlight {
		if r.DoneAt <= now {
			c.gen++
			if !r.Write {
				done = append(done, r) //simlint:allocok doneBuf reaches steady-state capacity; amortized 0 allocs/op (BenchmarkController*)
			} else {
				c.Release(r)
			}
		} else {
			if r.DoneAt < minDone {
				minDone = r.DoneAt
			}
			keep = append(keep, r) //simlint:allocok compacts in place into inFlight[:0], never exceeds its capacity
		}
	}
	c.inFlight = keep
	c.minDoneAt = minDone
	c.doneBuf = done
	return done
}

// formBatch marks up to 5 oldest requests per (core, bank) across all
// channels, then ranks cores by their marked-request count (fewest first —
// shortest job first, the PAR-BS heuristic).
func (c *Controller) formBatch() {
	const perCoreBank = 5
	queued := 0
	for i := range c.channels {
		queued += len(c.channels[i].readQ)
	}
	if queued == 0 {
		return
	}
	c.gen++
	counts := make(map[int]int)
	type key struct{ core, ch, bank int }
	quota := make(map[key]int)
	any := false
	for chI := range c.channels {
		for _, r := range c.channels[chI].readQ {
			k := key{r.CoreID, chI, r.bank}
			if quota[k] < perCoreBank {
				quota[k]++
				r.marked = true
				counts[r.CoreID]++
				c.batchLive++
				any = true
			}
		}
	}
	if !any {
		return
	}
	// Rank: fewer marked requests -> higher priority (lower rank value).
	for core := range c.coreRank {
		c.coreRank[core] = 1 << 30
	}
	type cc struct{ core, n int }
	var order []cc
	// The insertion sort below imposes a total (n, core) order, erasing the
	// map iteration order; hand-rolled instead of sort.Slice to keep the
	// batch-rebuild path closure-free.
	//simlint:ordered
	for core, n := range counts {
		if core >= 0 && core < len(c.coreRank) {
			order = append(order, cc{core, n})
		}
	}
	// Insertion sort by (n, core) for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].n < order[j-1].n ||
			(order[j].n == order[j-1].n && order[j].core < order[j-1].core)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for rank, o := range order {
		c.coreRank[o.core] = rank
	}
}

// better reports whether a should issue before b under the active policy.
func (c *Controller) better(a, b *Request, ch *channel) bool {
	if c.policy == SchedFCFS {
		return a.ID < b.ID
	}
	aHit := c.isRowHit(ch, a)
	bHit := c.isRowHit(ch, b)
	if c.policy == SchedBatch {
		if a.marked != b.marked {
			return a.marked
		}
		if a.marked && b.marked {
			ra, rb := c.rankOf(a.CoreID), c.rankOf(b.CoreID)
			if ra != rb {
				return ra < rb
			}
		}
	}
	if aHit != bHit {
		return aHit
	}
	return a.ID < b.ID
}

func (c *Controller) rankOf(core int) int {
	if core < 0 || core >= len(c.coreRank) {
		return 1 << 29 // writebacks and unknown sources rank last
	}
	return c.coreRank[core]
}

func (c *Controller) isRowHit(ch *channel, r *Request) bool {
	return ch.openRow[r.bankIdx] == int64(r.row)
}

// refresh performs per-rank refreshes due at or before now: every bank of
// the rank becomes unavailable for TRFC cycles (counted from the epoch's
// deadline, not from now) and its open row is closed. Because a Tick only
// runs this while the controller is busy, epochs that elapse on an empty
// controller accumulate and are caught up here in deadline order the moment
// the next request arrives — with identical final bank state, since nothing
// could have observed the banks in between.
func (c *Controller) refresh(ch *channel, now uint64) {
	t := &c.timing
	if t.TREFI == 0 {
		return
	}
	for rank := range ch.nextRefresh {
		for now >= ch.nextRefresh[rank] {
			deadline := ch.nextRefresh[rank]
			ch.nextRefresh[rank] += uint64(t.TREFI)
			c.Stats.Refreshes++
			c.gen++
			end := deadline + uint64(t.TRFC)
			for b := rank * c.geo.Banks; b < (rank+1)*c.geo.Banks; b++ {
				ch.openRow[b] = -1
				if ch.readyAt[b] < end {
					ch.readyAt[b] = end
				}
			}
		}
	}
}

// CatchUpRefresh applies every refresh epoch due at or before now on all
// channels, regardless of queue state. Result collection calls it once at
// the end of a run so Stats.Refreshes counts exactly the epochs that
// elapsed over the run, matching an eager-refresh controller bit for bit.
func (c *Controller) CatchUpRefresh(now uint64) {
	for i := range c.channels {
		c.refresh(&c.channels[i], now)
	}
}

// issueOn starts at most one request on a channel this cycle.
//
//simlint:noalloc
func (c *Controller) issueOn(ch *channel, now uint64) {
	// Hint fast path: a previous scan under this state generation proved no
	// request on this channel can issue before issueHintAt; until then the
	// whole evaluation below (including the drain-flag refresh, which
	// depends only on queue lengths) reproduces itself unchanged.
	if ch.issueHintGen == c.gen && now < ch.issueHintAt {
		return
	}
	// Capture the generation before the drain-flag refresh below: a flip
	// changes next cycle's queue selection, so a hint computed under this
	// call's (pre-flip) selection must not survive it.
	gen := c.gen
	// Write-drain policy: serve reads unless the write queue is pressing or
	// there are no reads.
	useWrites := false
	if len(ch.writeQ) > 0 && (len(ch.readQ) == 0 || len(ch.writeQ) >= c.geo.WriteDrain || ch.draining) {
		useWrites = true
		if d := len(ch.writeQ) > c.geo.WriteDrain/2; d != ch.draining {
			ch.draining = d
			c.gen++
		}
	}
	q := ch.readQ
	if useWrites {
		q = ch.writeQ
	}
	if len(q) == 0 {
		ch.issueHintGen, ch.issueHintAt = gen, NoEvent
		return
	}
	// Pick the best issuable request.
	bestIdx := -1
	earliest := uint64(NoEvent)
	for i, r := range q {
		t := ch.readyAt[r.bankIdx]
		if t > now {
			if t < earliest {
				earliest = t
			}
			continue
		}
		if bestIdx < 0 || c.better(r, q[bestIdx], ch) {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		ch.issueHintGen, ch.issueHintAt = gen, earliest
		return
	}
	r := q[bestIdx]
	if useWrites {
		ch.writeQ = append(q[:bestIdx], q[bestIdx+1:]...) //simlint:allocok removal compaction within the queue's own backing array
	} else {
		ch.readQ = append(q[:bestIdx], q[bestIdx+1:]...) //simlint:allocok removal compaction within the queue's own backing array
	}
	c.start(ch, r, now)
}

// start runs the bank state machine for a request and computes its timing.
//
//simlint:noalloc
func (c *Controller) start(ch *channel, r *Request, now uint64) {
	t := &c.timing
	b := r.bankIdx
	r.IssuedAt = now
	var casStart uint64
	switch {
	case ch.openRow[b] == int64(r.row):
		r.RowHit = true
		c.Stats.RowHits++
		casStart = maxU(now, ch.readyAt[b])
	case ch.openRow[b] < 0:
		c.Stats.RowEmpty++
		actStart := c.activate(ch, r.rank, maxU(now, ch.readyAt[b]))
		casStart = actStart + uint64(t.TRCD)
		ch.activateAt[b] = actStart
		ch.openRow[b] = int64(r.row)
	default:
		r.RowConflict = true
		c.Stats.RowConflicts++
		preStart := maxU(maxU(now, ch.readyAt[b]), ch.activateAt[b]+uint64(t.TRAS))
		actStart := c.activate(ch, r.rank, preStart+uint64(t.TRP))
		casStart = actStart + uint64(t.TRCD)
		ch.activateAt[b] = actStart
		ch.openRow[b] = int64(r.row)
		c.Stats.Precharges++
	}
	dataAt := casStart + uint64(t.TCAS)
	if ch.busFreeAt > dataAt {
		dataAt = ch.busFreeAt
	}
	ch.busFreeAt = dataAt + uint64(t.TBurst)
	c.Stats.BusBusy += uint64(t.TBurst)
	r.DoneAt = dataAt + uint64(t.TBurst)
	ch.readyAt[b] = casStart + uint64(t.TBurst)
	if r.Write {
		ch.readyAt[b] += uint64(t.TWR)
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
		c.Stats.TotalReadLatency += r.DoneAt - r.EnqueuedAt
		c.Stats.TotalQueueDelay += r.IssuedAt - r.EnqueuedAt
	}
	if r.marked {
		c.batchLive--
	}
	c.gen++
	if r.DoneAt < c.minDoneAt {
		c.minDoneAt = r.DoneAt
	}
	c.inFlight = append(c.inFlight, r) //simlint:allocok in-flight list reaches its high-water capacity and stays there
}

// activate returns the earliest legal activate time at or after earliest,
// honoring tRRD (activate-to-activate, same rank) and tFAW (four-activate
// window), and records the activation.
func (c *Controller) activate(ch *channel, rank int, earliest uint64) uint64 {
	t := &c.timing
	at := earliest
	n := ch.actCount[rank]
	if t.TRRD > 0 && n > 0 && ch.lastAct[rank]+uint64(t.TRRD) > at {
		at = ch.lastAct[rank] + uint64(t.TRRD)
	}
	if t.TFAW > 0 && n >= 4 {
		// The activate 4 activations ago bounds this one.
		oldest := ch.actRing[rank][ch.actPos[rank]]
		if oldest+uint64(t.TFAW) > at {
			at = oldest + uint64(t.TFAW)
		}
	}
	ch.actCount[rank]++
	ch.lastAct[rank] = at
	ch.actRing[rank][ch.actPos[rank]] = at
	ch.actPos[rank] = (ch.actPos[rank] + 1) % 4
	c.Stats.Activations++
	return at
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// RowConflictRate returns conflicts / (hits+conflicts+empty) for reads+writes.
func (s *Stats) RowConflictRate() float64 {
	tot := s.RowHits + s.RowConflicts + s.RowEmpty
	if tot == 0 {
		return 0
	}
	return float64(s.RowConflicts) / float64(tot)
}

// AvgReadLatency returns the mean enqueue-to-data latency of reads.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

// String summarizes the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d rowHit=%d rowConf=%d rowEmpty=%d avgReadLat=%.1f",
		s.Reads, s.Writes, s.RowHits, s.RowConflicts, s.RowEmpty, s.AvgReadLatency())
}
