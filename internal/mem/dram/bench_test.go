package dram

import "testing"

// BenchmarkControllerReadStream keeps the PAR-BS scheduler's read queue fed
// (mixed row hits and conflicts across banks) and ticks the controller,
// releasing completions back to the request pool. Steady state allocates
// nothing per cycle. Injection is held at one request per 2xTBurst so the data
// bus keeps up (the model queues bursts behind busFreeAt, so oversubscribing
// it grows the in-flight list without bound).
func BenchmarkControllerReadStream(b *testing.B) {
	c := NewController(QuadCoreGeometry(), DDR3(), SchedBatch, 4)
	var line, now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if now%8 == 0 && c.QueueOccupancy() < 32 {
			r := c.NewRequest()
			r.LineAddr = line * 17
			r.CoreID = int(line % 4)
			line++
			if !c.Enqueue(r, now) {
				c.Release(r)
			}
		}
		for _, d := range c.Tick(now) {
			c.Release(d)
		}
	}
}

// BenchmarkControllerMixed adds a write stream (drain-mode transitions) on
// top of the read stream.
func BenchmarkControllerMixed(b *testing.B) {
	c := NewController(QuadCoreGeometry(), DDR3(), SchedFRFCFS, 4)
	var line, now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if now%4 == 0 {
			r := c.NewRequest()
			r.LineAddr = line * 29
			r.CoreID = int(line % 4)
			r.Write = line%3 == 0
			line++
			if !c.Enqueue(r, now) {
				c.Release(r)
			}
		}
		for _, d := range c.Tick(now) {
			c.Release(d)
		}
	}
}
