// Package cache provides the set-associative cache structures of the
// simulated hierarchy: L1 instruction/data caches, the distributed shared
// LLC slices with their inclusive directory (including the extra per-line
// EMC presence bit from §4.1.3 of the paper), the EMC's 4 KB data cache, and
// MSHR files for tracking outstanding misses.
//
// Caches here are structural: they answer hit/miss, maintain LRU state,
// directory bits and dirtiness. Latency and occupancy are modeled by the
// callers (core, LLC slice, EMC), which know where the cache sits.
package cache

import "fmt"

// LineShift and LineSize fix the 64-byte line geometry of Table 1.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
)

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	// Latency is the access latency in core cycles; carried here for the
	// callers' convenience (the cache itself is untimed).
	Latency int
	// WriteThrough marks the cache as write-through/no-write-allocate
	// (the paper's L1s); otherwise write-back/write-allocate (the LLC).
	WriteThrough bool
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Fills      uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64

	// Inclusive-directory state, used only by LLC slices.
	presence uint64 // bitmask of cores holding the line in an L1
	emc      bool   // the paper's extra bit: line is held by the EMC cache
	pf       bool   // line was brought in by a prefetch, not yet demanded
}

// Cache is a set-associative cache with true LRU replacement.
type Cache struct {
	cfg  Config
	sets [][]line
	mask uint64
	tick uint64

	Stats Stats
}

// New builds a cache from cfg. It panics on degenerate geometry since all
// configurations are static (Table 1).
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry", cfg.Name))
	}
	nLines := cfg.SizeBytes / LineSize
	nSets := nLines / cfg.Ways
	if nSets == 0 {
		nSets = 1
	}
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nSets))
	}
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, mask: uint64(nSets - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the configured access latency in cycles.
func (c *Cache) Latency() int { return c.cfg.Latency }

func (c *Cache) set(lineAddr uint64) []line { return c.sets[lineAddr&c.mask] }

func (c *Cache) find(lineAddr uint64) *line {
	set := c.set(lineAddr)
	tag := lineAddr >> uint(trailingZeros(c.mask+1))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 && v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Access looks up the line containing addr, updating LRU and dirty state.
// For write-through caches a write miss does not allocate (the caller
// forwards the write down); a write hit leaves the line clean because the
// write is propagated immediately.
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	c.tick++
	la := LineAddr(addr)
	if l := c.find(la); l != nil {
		l.used = c.tick
		if write && !c.cfg.WriteThrough {
			l.dirty = true
		}
		c.Stats.Hits++
		return true
	}
	c.Stats.Misses++
	return false
}

// Probe reports whether the line is present without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool { return c.find(LineAddr(addr)) != nil }

// Occupancy returns the number of valid lines (a live gauge for the
// observability layer; called at publish cadence, not per access).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// ProbeDirty reports presence and dirtiness without side effects.
func (c *Cache) ProbeDirty(addr uint64) (present, dirty bool) {
	l := c.find(LineAddr(addr))
	if l == nil {
		return false, false
	}
	return true, l.dirty
}

// Victim describes a line evicted by Insert.
type Victim struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
	Presence uint64
	EMC      bool
}

// Insert fills the line containing addr, returning the evicted victim (if
// any). dirty marks the fill as modified (write-allocate of a write miss).
func (c *Cache) Insert(addr uint64, dirty bool) Victim {
	c.tick++
	la := LineAddr(addr)
	if l := c.find(la); l != nil {
		// Already present (e.g. racing fills); just update state.
		l.used = c.tick
		if dirty {
			l.dirty = true
		}
		return Victim{}
	}
	set := c.set(la)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].used < victim.used {
			victim = &set[i]
		}
	}
	var out Victim
	if victim.valid {
		out = Victim{
			LineAddr: c.lineAddrOf(victim, la),
			Dirty:    victim.dirty,
			Valid:    true,
			Presence: victim.presence,
			EMC:      victim.emc,
		}
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.Writebacks++
		}
	}
	setIdx := la & c.mask
	*victim = line{
		tag:   la >> uint(trailingZeros(c.mask+1)),
		valid: true,
		dirty: dirty,
		used:  c.tick,
	}
	_ = setIdx
	c.Stats.Fills++
	return out
}

// lineAddrOf reconstructs the full line address of a resident way given any
// line address that maps to the same set.
func (c *Cache) lineAddrOf(l *line, sameSet uint64) uint64 {
	bits := uint(trailingZeros(c.mask + 1))
	return l.tag<<bits | (sameSet & c.mask)
}

// Invalidate removes the line containing addr, reporting whether it was
// present and dirty (so the caller can write it back).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	l := c.find(LineAddr(addr))
	if l == nil {
		return false, false
	}
	d := l.dirty
	*l = line{}
	return true, d
}

// --- Inclusive-directory operations (LLC slices only) ----------------------

// SetPresence records that core holds the line in its L1.
func (c *Cache) SetPresence(addr uint64, core int, on bool) {
	if l := c.find(LineAddr(addr)); l != nil {
		if on {
			l.presence |= 1 << uint(core)
		} else {
			l.presence &^= 1 << uint(core)
		}
	}
}

// Presence returns the core-presence bitmask for the line, or 0.
func (c *Cache) Presence(addr uint64) uint64 {
	if l := c.find(LineAddr(addr)); l != nil {
		return l.presence
	}
	return 0
}

// SetEMCBit records that the EMC's data cache holds the line (§4.1.3: one
// extra bit per directory entry).
func (c *Cache) SetEMCBit(addr uint64, on bool) {
	if l := c.find(LineAddr(addr)); l != nil {
		l.emc = on
	}
}

// EMCBit reports whether the EMC holds the line.
func (c *Cache) EMCBit(addr uint64) bool {
	if l := c.find(LineAddr(addr)); l != nil {
		return l.emc
	}
	return false
}

// SetPrefetched marks a resident line as prefetched (not yet demanded).
func (c *Cache) SetPrefetched(addr uint64, on bool) {
	if l := c.find(LineAddr(addr)); l != nil {
		l.pf = on
	}
}

// TakePrefetched reports whether the line carries the prefetched bit and
// clears it — the "first demand touch of a prefetched line" event that
// feeds FDP accuracy and the coverage figures.
func (c *Cache) TakePrefetched(addr uint64) bool {
	if l := c.find(LineAddr(addr)); l != nil && l.pf {
		l.pf = false
		return true
	}
	return false
}

// MarkDirty sets the dirty bit of a resident line (e.g. write-through
// traffic arriving at the LLC, or an EMC store draining).
func (c *Cache) MarkDirty(addr uint64) bool {
	if l := c.find(LineAddr(addr)); l != nil {
		l.dirty = true
		return true
	}
	return false
}

// Lines returns the total number of resident lines (testing/inspection).
func (c *Cache) Lines() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
