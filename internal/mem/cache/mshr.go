package cache

// MSHR tracks one outstanding miss to a cache line, merging all requests for
// the same line while it is in flight.
type MSHR struct {
	LineAddr uint64
	// Waiters are opaque tokens (e.g. ROB indices, prefetch markers) the
	// owner wakes when the fill arrives.
	Waiters []uint64
	// Issued marks that the downstream request has actually been sent.
	Issued bool
	// Prefetch marks an entry allocated by a prefetcher (no demand waiter).
	Prefetch bool
	// Born is the cycle the entry was allocated (latency accounting).
	Born uint64
}

// MSHRFile is a bounded file of MSHRs. Entries live in a dense fixed-capacity
// slot array (struct-of-slots, DESIGN.md §13.2): the file is small (16 entries
// per core), so keyed access is a short linear scan over one cache line of
// LineAddrs rather than a map lookup, and slot reuse keeps the steady state
// allocation-free (Waiters backing arrays are recycled with their slots).
//
// Pointers returned by Lookup/Allocate/Complete are valid only until the next
// Allocate or Complete call: removal compacts the live prefix by moving the
// last live entry, and Complete returns a scratch copy.
type MSHRFile struct {
	slots []MSHR // slots[:n] live; the rest free, retaining Waiters arrays
	n     int
	done  MSHR // scratch entry returned by Complete

	// AllocFails counts allocation attempts rejected because the file was
	// full — back-pressure the owner must model.
	AllocFails uint64
	Merges     uint64
}

// NewMSHRFile returns a file with capacity max.
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{slots: make([]MSHR, max)}
}

// Lookup returns the in-flight entry for a line, or nil.
func (f *MSHRFile) Lookup(lineAddr uint64) *MSHR {
	for i := 0; i < f.n; i++ {
		if f.slots[i].LineAddr == lineAddr {
			return &f.slots[i]
		}
	}
	return nil
}

// Full reports whether a new allocation would fail.
func (f *MSHRFile) Full() bool { return f.n >= len(f.slots) }

// Len returns the number of outstanding entries.
func (f *MSHRFile) Len() int { return f.n }

// Allocate returns the entry for lineAddr, creating it if needed. merged is
// true if an existing entry was reused; ok is false if the file is full and
// no entry exists (the access must retry later).
func (f *MSHRFile) Allocate(lineAddr uint64, now uint64) (m *MSHR, merged, ok bool) {
	if m := f.Lookup(lineAddr); m != nil {
		f.Merges++
		return m, true, true
	}
	if f.n >= len(f.slots) {
		f.AllocFails++
		return nil, false, false
	}
	m = &f.slots[f.n]
	f.n++
	*m = MSHR{LineAddr: lineAddr, Born: now, Waiters: m.Waiters[:0]}
	return m, false, true
}

// Complete removes and returns the entry for a filled line, or nil if none.
// The returned entry is a scratch copy owned by the file; it stays valid
// until the next Complete call.
func (f *MSHRFile) Complete(lineAddr uint64) *MSHR {
	for i := 0; i < f.n; i++ {
		if f.slots[i].LineAddr != lineAddr {
			continue
		}
		// Copy out into the scratch entry and recycle the removed slot's
		// Waiters backing array into the freed slot.
		w := f.done.Waiters[:0]
		f.done = f.slots[i]
		f.done.Waiters = append(w, f.slots[i].Waiters...)
		freed := f.slots[i].Waiters[:0]
		f.n--
		f.slots[i] = f.slots[f.n]
		f.slots[f.n] = MSHR{Waiters: freed}
		return &f.done
	}
	return nil
}
