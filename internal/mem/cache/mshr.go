package cache

// MSHR tracks one outstanding miss to a cache line, merging all requests for
// the same line while it is in flight.
type MSHR struct {
	LineAddr uint64
	// Waiters are opaque tokens (e.g. ROB indices, prefetch markers) the
	// owner wakes when the fill arrives.
	Waiters []uint64
	// Issued marks that the downstream request has actually been sent.
	Issued bool
	// Prefetch marks an entry allocated by a prefetcher (no demand waiter).
	Prefetch bool
	// Born is the cycle the entry was allocated (latency accounting).
	Born uint64
}

// MSHRFile is a bounded file of MSHRs keyed by line address.
type MSHRFile struct {
	max     int
	entries map[uint64]*MSHR

	// AllocFails counts allocation attempts rejected because the file was
	// full — back-pressure the owner must model.
	AllocFails uint64
	Merges     uint64
}

// NewMSHRFile returns a file with capacity max.
func NewMSHRFile(max int) *MSHRFile {
	return &MSHRFile{max: max, entries: make(map[uint64]*MSHR, max)}
}

// Lookup returns the in-flight entry for a line, or nil.
func (f *MSHRFile) Lookup(lineAddr uint64) *MSHR { return f.entries[lineAddr] }

// Full reports whether a new allocation would fail.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.max }

// Len returns the number of outstanding entries.
func (f *MSHRFile) Len() int { return len(f.entries) }

// Allocate returns the entry for lineAddr, creating it if needed. merged is
// true if an existing entry was reused; ok is false if the file is full and
// no entry exists (the access must retry later).
func (f *MSHRFile) Allocate(lineAddr uint64, now uint64) (m *MSHR, merged, ok bool) {
	if m := f.entries[lineAddr]; m != nil {
		f.Merges++
		return m, true, true
	}
	if len(f.entries) >= f.max {
		f.AllocFails++
		return nil, false, false
	}
	m = &MSHR{LineAddr: lineAddr, Born: now}
	f.entries[lineAddr] = m
	return m, false, true
}

// Complete removes and returns the entry for a filled line, or nil if none.
func (f *MSHRFile) Complete(lineAddr uint64) *MSHR {
	m := f.entries[lineAddr]
	if m != nil {
		delete(f.entries, lineAddr)
	}
	return m
}
