package cache

import (
	"testing"
)

// refCache is a trivially-correct reference model: a map plus an LRU list.
type refCache struct {
	ways  int
	sets  int
	lines map[uint64]uint64 // lineAddr -> lru stamp
	tick  uint64
}

func newRef(sizeBytes, ways int) *refCache {
	return &refCache{ways: ways, sets: sizeBytes / LineSize / ways,
		lines: map[uint64]uint64{}}
}

func (r *refCache) setOf(line uint64) uint64 { return line % uint64(r.sets) }

func (r *refCache) access(line uint64) bool {
	r.tick++
	if _, ok := r.lines[line]; ok {
		r.lines[line] = r.tick
		return true
	}
	return false
}

func (r *refCache) insert(line uint64) {
	r.tick++
	if _, ok := r.lines[line]; ok {
		r.lines[line] = r.tick
		return
	}
	// Evict LRU within the set if full.
	var count int
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for l, stamp := range r.lines {
		if r.setOf(l) == r.setOf(line) {
			count++
			if stamp < oldest {
				oldest = stamp
				victim = l
			}
		}
	}
	if count >= r.ways {
		delete(r.lines, victim)
	}
	r.lines[line] = r.tick
}

// TestDifferentialAgainstReference drives the production cache and the
// reference model with an identical random demand stream and requires
// hit/miss agreement on every access.
func TestDifferentialAgainstReference(t *testing.T) {
	const size, ways = 4096, 4
	c := New(Config{Name: "dut", SizeBytes: size, Ways: ways})
	r := newRef(size, ways)

	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// 32 sets * 4 ways = 64 lines; address pool of 256 lines gives a
		// realistic hit/miss mix.
		addr := (x % 256) * LineSize
		wantHit := r.access(LineAddr(addr))
		gotHit := c.Access(addr, false)
		if gotHit != wantHit {
			t.Fatalf("access %d line %#x: dut=%v ref=%v", i, LineAddr(addr), gotHit, wantHit)
		}
		if !gotHit {
			c.Insert(addr, false)
			r.insert(LineAddr(addr))
		}
	}
	if c.Stats.Hits == 0 || c.Stats.Misses == 0 {
		t.Error("degenerate stream: no hits or no misses")
	}
}
