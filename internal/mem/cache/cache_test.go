package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B = 512B
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, Latency: 3})
}

func TestHitMissBasics(t *testing.T) {
	c := small()
	if c.Access(0x1000, false) {
		t.Fatal("cold cache should miss")
	}
	c.Insert(0x1000, false)
	if !c.Access(0x1000, false) {
		t.Fatal("filled line should hit")
	}
	if !c.Access(0x103F, false) {
		t.Fatal("same line, different offset should hit")
	}
	if c.Access(0x1040, false) {
		t.Fatal("next line should miss")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 2 ways; stride of 4 lines maps to same set
	const stride = 4 * LineSize
	a0, a1, a2 := uint64(0), uint64(stride), uint64(2*stride)
	c.Insert(a0, false)
	c.Insert(a1, false)
	c.Access(a0, false) // a0 now MRU
	v := c.Insert(a2, false)
	if !v.Valid || v.LineAddr != LineAddr(a1) {
		t.Fatalf("expected eviction of a1, got %+v", v)
	}
	if !c.Probe(a0) || !c.Probe(a2) || c.Probe(a1) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	wb := New(Config{Name: "wb", SizeBytes: 512, Ways: 2})
	wb.Insert(0x0, false)
	wb.Access(0x0, true) // dirty it
	const stride = 4 * LineSize
	wb.Insert(stride, false)
	v := wb.Insert(2*stride, false)
	if !v.Valid || !v.Dirty {
		t.Errorf("dirty victim expected, got %+v", v)
	}
	if wb.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", wb.Stats.Writebacks)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	wt := New(Config{Name: "wt", SizeBytes: 512, Ways: 2, WriteThrough: true})
	wt.Insert(0x0, false)
	wt.Access(0x0, true)
	if _, dirty := wt.ProbeDirty(0x0); dirty {
		t.Error("write-through cache must not mark lines dirty on write hits")
	}
}

func TestInsertExistingMergesDirty(t *testing.T) {
	c := small()
	c.Insert(0x80, false)
	v := c.Insert(0x80, true)
	if v.Valid {
		t.Error("re-insert must not evict")
	}
	if _, dirty := c.ProbeDirty(0x80); !dirty {
		t.Error("re-insert with dirty must dirty the line")
	}
	if c.Lines() != 1 {
		t.Errorf("lines = %d, want 1", c.Lines())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "c", SizeBytes: 512, Ways: 2})
	c.Insert(0x40, false)
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Errorf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0x40) {
		t.Error("line should be gone")
	}
	if p, _ := c.Invalidate(0x40); p {
		t.Error("double invalidate should report absent")
	}
}

func TestDirectoryBits(t *testing.T) {
	c := small()
	c.Insert(0x1000, false)
	c.SetPresence(0x1000, 2, true)
	c.SetPresence(0x1000, 0, true)
	if c.Presence(0x1000) != 0b101 {
		t.Errorf("presence = %b, want 101", c.Presence(0x1000))
	}
	c.SetPresence(0x1000, 2, false)
	if c.Presence(0x1000) != 0b001 {
		t.Errorf("presence = %b, want 001", c.Presence(0x1000))
	}
	if c.EMCBit(0x1000) {
		t.Error("EMC bit should start clear")
	}
	c.SetEMCBit(0x1000, true)
	if !c.EMCBit(0x1000) {
		t.Error("EMC bit should be set")
	}
	// Victim carries directory state out for invalidation messages.
	const stride = 4 * LineSize
	base := uint64(0x1000)
	c.Insert(base+stride, false)
	v := c.Insert(base+2*stride, false)
	if !v.Valid || v.LineAddr != LineAddr(base) || !v.EMC || v.Presence != 0b001 {
		t.Errorf("victim should carry directory bits: %+v", v)
	}
}

func TestMarkDirty(t *testing.T) {
	c := small()
	if c.MarkDirty(0x40) {
		t.Error("MarkDirty on absent line should fail")
	}
	c.Insert(0x40, false)
	if !c.MarkDirty(0x40) {
		t.Error("MarkDirty on resident line should succeed")
	}
	if _, d := c.ProbeDirty(0x40); !d {
		t.Error("line should be dirty")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Fill a specific set with two far-apart addresses and check the victim
	// line address is reconstructed exactly.
	c := New(Config{Name: "c", SizeBytes: 8192, Ways: 2}) // 64 sets
	a := uint64(0x12345000)
	b := a + 64*LineSize
	d := a + 128*LineSize
	c.Insert(a, false)
	c.Insert(b, false)
	v := c.Insert(d, false)
	if !v.Valid || v.LineAddr != LineAddr(a) {
		t.Errorf("victim line %#x, want %#x", v.LineAddr, LineAddr(a))
	}
}

// Property: inserting then probing any address hits, and the cache never
// exceeds its capacity in resident lines.
func TestInsertProbeProperty(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 4096, Ways: 4})
	capLines := 4096 / LineSize
	f := func(addr uint64) bool {
		c.Insert(addr, false)
		return c.Probe(addr) && c.Lines() <= capLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 0, Ways: 1})
}

func TestMSHRFile(t *testing.T) {
	f := NewMSHRFile(2)
	m1, merged, ok := f.Allocate(10, 100)
	if !ok || merged || m1 == nil || m1.Born != 100 {
		t.Fatalf("first allocate wrong: %v %v %v", m1, merged, ok)
	}
	m1b, merged, ok := f.Allocate(10, 105)
	if !ok || !merged || m1b != m1 {
		t.Fatal("same-line allocate should merge")
	}
	if f.Merges != 1 {
		t.Errorf("merges = %d, want 1", f.Merges)
	}
	f.Allocate(20, 101)
	if !f.Full() {
		t.Error("file should be full")
	}
	if _, _, ok := f.Allocate(30, 102); ok {
		t.Error("allocate past capacity should fail")
	}
	if f.AllocFails != 1 {
		t.Errorf("allocFails = %d, want 1", f.AllocFails)
	}
	if got := f.Complete(10); got == nil || got.LineAddr != 10 || got.Born != 100 {
		t.Errorf("complete returned %+v, want the line-10 entry", got)
	}
	if f.Lookup(10) != nil {
		t.Error("completed entry should be gone")
	}
	if f.Len() != 1 {
		t.Errorf("len = %d, want 1", f.Len())
	}
	if f.Complete(99) != nil {
		t.Error("complete of unknown line should return nil")
	}
}

func TestPrefetchedBit(t *testing.T) {
	c := small()
	c.Insert(0x200, false)
	if c.TakePrefetched(0x200) {
		t.Error("fresh line should not carry the prefetched bit")
	}
	c.SetPrefetched(0x200, true)
	if !c.TakePrefetched(0x200) {
		t.Error("prefetched bit should be set")
	}
	if c.TakePrefetched(0x200) {
		t.Error("TakePrefetched must clear the bit")
	}
	c.SetPrefetched(0x7777, true) // absent line: no-op
	if c.TakePrefetched(0x7777) {
		t.Error("absent line cannot be prefetched")
	}
}
