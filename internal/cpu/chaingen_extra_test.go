package cpu

import (
	"testing"

	"repro/internal/isa"
)

// TestChainCancelledWhenStale: if the source fill arrives between the walk
// and transmission (so chain members start executing locally), the chain
// must be cancelled rather than shipped.
func TestChainCancelledWhenStale(t *testing.T) {
	uops := chaseTrace()
	// Short miss latency: the fill lands during chain assembly.
	c, fu := buildCore(t, uops, 60, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)
	var got *Chain
	for cy := uint64(1); cy < 4000; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		if ch := c.TakeReadyChain(cy); ch != nil {
			got = ch
			c.AbortRemoteChain(ch)
		}
		if c.Finished() {
			break
		}
	}
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
	// Either the chain was cancelled (preferred with a fast fill), or it was
	// taken before the fill; both must preserve forward progress and the
	// final value.
	if c.Stats.ChainCancels == 0 && got == nil && c.Stats.ChainsGenerated > 0 {
		t.Error("generated chain neither cancelled nor taken")
	}
	if c.archVal[6] != 0x99+1 {
		t.Errorf("r6 = %#x, want %#x", c.archVal[6], 0x99+1)
	}
}

// TestChainExcludesFPAndBranches: the walk admits only EMC-allowed opcodes.
func TestChainExcludesFPAndBranches(t *testing.T) {
	var uops []isa.Uop
	add := func(u isa.Uop) {
		u.Seq = uint64(len(uops))
		u.PC = 0x400000 + uint64(len(uops)%16*4)
		uops = append(uops, u)
	}
	add(movImm(1, 0x4000000))
	add(isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
		Addr: 0x4000000, Value: 0x5000000})
	// FP op consuming the miss: EMC cannot execute it.
	add(isa.Uop{Op: isa.OpFAdd, Src1: 2, Src2: 2, Dst: 3})
	// Integer op consuming the miss: eligible.
	add(isa.Uop{Op: isa.OpAdd, Src1: 2, Src2: isa.RegNone, Dst: 4, Imm: 0})
	// Dependent load off the integer path.
	add(isa.Uop{Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 5,
		Addr: 0x5000000, Value: 9})
	for i := 0; i < 300; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1})
	}
	c, fu := buildCore(t, uops, 400, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)
	var ch *Chain
	for cy := uint64(1); cy < 600 && ch == nil; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		ch = c.TakeReadyChain(cy)
	}
	if ch == nil {
		t.Fatal("no chain generated")
	}
	for _, cu := range ch.Uops {
		if !cu.U.Op.EMCAllowed() {
			t.Errorf("non-EMC opcode %v leaked into the chain", cu.U.Op)
		}
	}
	found := false
	for _, cu := range ch.Uops {
		if cu.U.Op == isa.OpLoad && cu.U.Addr == 0x5000000 {
			found = true
		}
	}
	if !found {
		t.Error("dependent load missing from the chain")
	}
}
