package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem/cache"
)

// issueLoad runs the load pipeline: memory ordering against older stores,
// store-to-load forwarding, TLB translation, L1D lookup, and on a miss an
// MSHR allocation plus an uncore request. Returns false when the load had to
// be parked (unresolved older store, MSHR pressure).
func (c *Core) issueLoad(idx int32) bool {
	e := c.slot(idx)
	e.vaddr = isa.AddrOf(&e.u, e.srcVal[0])

	// Fast retry path: if a previous attempt parked on an unresolved older
	// store and that same store (slot+seq) is still unresolved, the scan
	// below would stop at it again — park without rescanning. The skipped
	// prefix only reads resolved older stores (no side effects), and stores
	// never become unresolved again, so outcomes are identical.
	if bs := c.blockStore[idx]; bs >= 0 {
		if c.seq[bs] == c.blockSeq[idx] && c.storeUnresolved(bs) {
			c.parkLoad(idx)
			return false
		}
		c.blockStore[idx] = -1
	}

	// Memory ordering: scan older stores. An older store with an unresolved
	// address blocks the load (conservative disambiguation); a resolved
	// older store to the same dword forwards its data.
	var forwardFrom *robEntry
	for _, sIdx := range c.sq {
		if c.seq[sIdx] >= c.seq[idx] {
			break
		}
		if c.storeUnresolved(sIdx) {
			// Remote stores (executing at the EMC) resolve via the
			// address-ring message; until then they block younger loads like
			// any unresolved store.
			c.blockStore[idx] = sIdx
			c.blockSeq[idx] = c.seq[sIdx]
			c.parkLoad(idx)
			return false
		}
		if se := c.slot(sIdx); c.addrValid[sIdx] && se.vaddr == e.vaddr {
			forwardFrom = se // youngest older match wins
		}
	}
	if forwardFrom != nil {
		e.forwarded = true
		e.val = forwardFrom.val
		c.Stats.StoreForwards++
		c.schedule(idx, c.now+2)
		return true
	}

	paddr, tlbLat := c.translate(e.vaddr)
	e.paddr = paddr
	c.addrValid[idx] = true

	if c.l1d.Access(paddr, false) {
		e.val = e.u.Value
		e.taint = false // L1 hits launder miss taint
		c.schedule(idx, c.now+uint64(c.cfg.L1Latency+tlbLat))
		return true
	}
	if !e.l1Counted {
		e.l1Counted = true
		c.Stats.L1DMisses++
	}
	e.taint = false // set by NoteLLCMiss if the LLC also misses
	line := cache.LineAddr(paddr)
	m, merged, ok := c.msh.Allocate(line, c.now)
	if !ok {
		c.parkLoad(idx)
		return false
	}
	m.Waiters = append(m.Waiters, uint64(idx))
	if !merged {
		c.Stats.L1MissRequests++
		c.uncore.LoadMiss(&MissInfo{
			CoreID:    c.cfg.ID,
			LineAddr:  line,
			VAddr:     e.vaddr,
			PC:        e.u.PC,
			IssuedAt:  c.now,
			Dependent: e.srcTaint[0],
		})
	}
	return true
}

// NoteLLCMiss informs the core that an outstanding line request missed the
// LLC and is headed for DRAM. Loads waiting on the line become LLC misses:
// their results are tainted (dependents of this load are dependent misses),
// and loads whose own address was tainted are counted as dependent misses
// and train the dependence counter's producers.
func (c *Core) NoteLLCMiss(lineAddr uint64) {
	m := c.msh.Lookup(lineAddr)
	if m == nil {
		return
	}
	for _, w := range m.Waiters {
		idx := int32(w)
		e := c.slot(idx)
		if c.st[idx] != stIssued || c.ops[idx] != isa.OpLoad || cache.LineAddr(e.paddr) != lineAddr {
			continue
		}
		e.isLLCMiss = true
		e.taint = true
		e.taintSrc = idx
		e.taintSeq = c.seq[idx]
		c.Stats.LLCMissLoads++
		// Counter training (§4.2) happens here, when the LLC outcome is
		// known: a dependent miss is direct evidence that misses are having
		// dependent misses; a non-dependent miss is the counter-evidence.
		// (Retire-time training is impossible in practice: a source miss
		// retires within a cycle or two of its fill, long before its
		// dependent load can issue and be classified.)
		if e.srcTaint[0] {
			e.wasDependent = true
			c.Stats.DependentMissLoads++
			// Asymmetric update: dependent misses are the rare, decisive
			// evidence; one burst of streaming misses must not erase them.
			c.bumpDepCounter(2)
			if p := e.srcTaintSrc[0]; p >= 0 {
				if c.st[p] != stEmpty && c.seq[p] == e.srcTaintSeq[0] {
					c.slot(p).producedDepMiss = true
				}
			}
		} else {
			c.bumpDepCounter(-1)
		}
	}
}

// storeUnresolved reports whether the store queue entry in slot sIdx still
// has an unknown address (it blocks younger loads under conservative
// disambiguation).
func (c *Core) storeUnresolved(sIdx int32) bool {
	st := c.st[sIdx]
	return st == stWaiting || st == stReady ||
		(st == stIssued && !c.addrValid[sIdx])
}

// parkLoad returns a load to the blocked list; it re-enters the ready queue
// on the next retry sweep.
func (c *Core) parkLoad(idx int32) {
	c.st[idx] = stReady
	c.memBlocked[idx] = true
	c.rsCount++ // it still occupies its RS entry
	c.blockedLd = append(c.blockedLd, idx)
}

// retryBlockedLoads re-queues parked loads for issue.
func (c *Core) retryBlockedLoads() {
	if len(c.blockedLd) == 0 {
		return
	}
	list := c.blockedLd
	c.blockedLd = c.blockedLd[:0]
	for _, idx := range list {
		if c.st[idx] != stReady || !c.memBlocked[idx] {
			continue
		}
		c.memBlocked[idx] = false
		c.readyQ = append(c.readyQ, idx)
	}
}

// unblockLoadsFor is called when a store resolves its address; parked loads
// will be retried on the next cycle's sweep (no action needed beyond the
// park list, but the hook exists for clarity and symmetry).
func (c *Core) unblockLoadsFor() {}
