package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// runaheadTrace: a blocking miss, a dependent load (must NOT be prefetched —
// its address is poisoned), and several independent far loads beyond the
// window (MUST be prefetched).
func runaheadTrace() []isa.Uop {
	var uops []isa.Uop
	add := func(u isa.Uop) {
		u.Seq = uint64(len(uops))
		u.PC = 0x400000 + uint64(len(uops)%16*4)
		uops = append(uops, u)
	}
	add(movImm(1, 0x4000000))
	// Blocking source miss.
	add(isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
		Addr: 0x4000000, Value: 0x5000000})
	// Dependent load: base is the missing value -> INV at runahead.
	add(isa.Uop{Op: isa.OpLoad, Src1: 2, Src2: isa.RegNone, Dst: 3,
		Addr: 0x5000000, Value: 1})
	// Independent bases.
	add(movImm(4, 0x6000000))
	add(movImm(5, 0x7000000))
	// Window filler.
	for i := 0; i < 300; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1})
	}
	// Beyond the 256-entry window: independent loads runahead must find.
	add(isa.Uop{Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 6,
		Addr: 0x6000000, Value: 2})
	add(isa.Uop{Op: isa.OpLoad, Src1: 5, Src2: isa.RegNone, Dst: 7,
		Addr: 0x7000000, Value: 3})
	for i := 0; i < 20; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1})
	}
	return uops
}

func TestRunaheadPrefetchesIndependentLoads(t *testing.T) {
	uops := runaheadTrace()
	c, fu := buildCore(t, uops, 400, func(cfg *Config) {
		cfg.Runahead.Enabled = true
		cfg.Runahead.Depth = 400
	})
	var prefetched []uint64
	for cy := uint64(1); cy < 5000; cy++ {
		fu.tick(cy)
		// Intercept prefetches recorded by the fake uncore: a prefetch is a
		// LoadMiss with Prefetch set; the fake uncore fills it like a demand.
		c.Tick(cy)
		if c.Finished() {
			break
		}
	}
	if c.RunaheadStats.Episodes == 0 {
		t.Fatal("runahead never triggered")
	}
	if c.RunaheadStats.Prefetches == 0 {
		t.Fatal("runahead issued no prefetches")
	}
	if c.RunaheadStats.Poisoned == 0 {
		t.Error("the dependent load should have been poisoned")
	}
	_ = prefetched
}

// prefetchRecorder wraps fakeUncore to log prefetch line addresses.
type prefetchRecorder struct {
	*fakeUncore
	prefetchLines []uint64
}

func (p *prefetchRecorder) LoadMiss(m *MissInfo) {
	if m.Prefetch {
		p.prefetchLines = append(p.prefetchLines, m.LineAddr)
		return // prefetches fill the LLC; the core sees nothing
	}
	p.fakeUncore.LoadMiss(m)
}

func TestRunaheadTargetsExactlyIndependents(t *testing.T) {
	uops := runaheadTrace()
	cfg := DefaultConfig(0)
	cfg.Runahead.Enabled = true
	cfg.Runahead.Depth = 400
	fu := &fakeUncore{latency: 400}
	rec := &prefetchRecorder{fakeUncore: fu}
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	c := New(cfg, &trace.SliceReader{Uops: uops}, pt, rec)
	fu.core = c
	for cy := uint64(1); cy < 6000 && !c.Finished(); cy++ {
		fu.tick(cy)
		c.Tick(cy)
	}
	if len(rec.prefetchLines) == 0 {
		t.Fatal("no prefetches recorded")
	}
	// The independent loads' lines (0x6000000, 0x7000000 translated) must be
	// prefetched; the dependent line (0x5000000) must NOT.
	want1 := pt.Translate(0x6000000) >> 6
	want2 := pt.Translate(0x7000000) >> 6
	banned := pt.Translate(0x5000000) >> 6
	got := map[uint64]bool{}
	for _, l := range rec.prefetchLines {
		got[l] = true
	}
	if !got[want1] || !got[want2] {
		t.Errorf("independent lines not prefetched: %v", rec.prefetchLines)
	}
	if got[banned] {
		t.Error("dependent line was prefetched — INV poisoning broken")
	}
}

func TestPeekFeed(t *testing.T) {
	us := []isa.Uop{{Seq: 0}, {Seq: 1}, {Seq: 2}}
	f := newPeekFeed(&trace.SliceReader{Uops: us})
	if u, ok := f.Peek(1); !ok || u.Seq != 1 {
		t.Fatalf("Peek(1) = %v ok=%v", u, ok)
	}
	if u, ok := f.Next(); !ok || u.Seq != 0 {
		t.Fatalf("Next after Peek = %v ok=%v", u, ok)
	}
	if u, ok := f.Peek(0); !ok || u.Seq != 1 {
		t.Fatalf("Peek(0) after Next = %v ok=%v", u, ok)
	}
	if _, ok := f.Peek(5); ok {
		t.Error("Peek past end should fail")
	}
	f.Next()
	f.Next()
	if _, ok := f.Next(); ok {
		t.Error("feed should be exhausted")
	}
}
