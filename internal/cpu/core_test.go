package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

// fakeUncore serves every line request after a fixed latency and can report
// LLC misses for designated lines.
type fakeUncore struct {
	core     *Core
	latency  uint64
	llcMiss  map[uint64]bool // line -> report as LLC miss (default true)
	fills    []fill
	requests int
	stores   int
}

type fill struct {
	line uint64
	at   uint64
}

func (f *fakeUncore) LoadMiss(m *MissInfo) {
	f.requests++
	miss := true
	if f.llcMiss != nil {
		miss = f.llcMiss[m.LineAddr]
	}
	if miss {
		// Report the LLC outcome a little later, like a real slice lookup.
		f.fills = append(f.fills, fill{line: m.LineAddr, at: m.IssuedAt + f.latency})
		f.core.NoteLLCMiss(m.LineAddr)
	} else {
		f.fills = append(f.fills, fill{line: m.LineAddr, at: m.IssuedAt + 20})
	}
}

func (f *fakeUncore) StoreWrite(int, uint64, uint64) { f.stores++ }

func (f *fakeUncore) tick(now uint64) {
	for i := 0; i < len(f.fills); {
		if f.fills[i].at <= now {
			f.core.Fill(f.fills[i].line, now)
			f.fills = append(f.fills[:i], f.fills[i+1:]...)
		} else {
			i++
		}
	}
}

// buildCore wires a core to a trace slice and a fake memory.
func buildCore(t *testing.T, uops []isa.Uop, missLatency uint64, tweak func(*Config)) (*Core, *fakeUncore) {
	t.Helper()
	cfg := DefaultConfig(0)
	if tweak != nil {
		tweak(&cfg)
	}
	fu := &fakeUncore{latency: missLatency, llcMiss: nil}
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	c := New(cfg, &trace.SliceReader{Uops: uops}, pt, fu)
	fu.core = c
	return c, fu
}

// runCore ticks until the core finishes or maxCycles elapse.
func runCore(t *testing.T, c *Core, fu *fakeUncore, maxCycles uint64) {
	t.Helper()
	for cy := uint64(1); cy <= maxCycles; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		if c.Finished() {
			return
		}
	}
	t.Fatalf("core did not finish in %d cycles (retired %d)", maxCycles, c.Stats.Retired)
}

func movImm(dst isa.Reg, v uint64) isa.Uop {
	return isa.Uop{Op: isa.OpMov, Src1: isa.RegNone, Src2: isa.RegNone, Dst: dst, Imm: int64(v)}
}

func TestALUOnlyTrace(t *testing.T) {
	uops := []isa.Uop{
		movImm(1, 5),
		movImm(2, 7),
		{Op: isa.OpAdd, Src1: 1, Src2: 2, Dst: 3},
		{Op: isa.OpShl, Src1: 3, Src2: isa.RegNone, Dst: 4, Imm: 2},
		{Op: isa.OpXor, Src1: 4, Src2: 3, Dst: 5},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
		uops[i].PC = 0x400000 + uint64(i*4)
	}
	c, fu := buildCore(t, uops, 100, nil)
	runCore(t, c, fu, 1000)
	if c.Stats.Retired != 5 {
		t.Fatalf("retired %d, want 5", c.Stats.Retired)
	}
	if got := c.archVal[3]; got != 12 {
		t.Errorf("r3 = %d, want 12", got)
	}
	if got := c.archVal[4]; got != 48 {
		t.Errorf("r4 = %d, want 48", got)
	}
	if got := c.archVal[5]; got != 48^12 {
		t.Errorf("r5 = %d, want %d", got, 48^12)
	}
}

func TestLoadMissAndFill(t *testing.T) {
	uops := []isa.Uop{
		movImm(1, 0x10000),
		{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2, Imm: 8,
			Addr: 0x10008, Value: 0xBEEF},
		{Op: isa.OpAdd, Src1: 2, Src2: isa.RegNone, Dst: 3, Imm: 1},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
		uops[i].PC = 0x400000 + uint64(i*4)
	}
	c, fu := buildCore(t, uops, 150, nil)
	runCore(t, c, fu, 2000)
	if c.archVal[2] != 0xBEEF || c.archVal[3] != 0xBEF0 {
		t.Errorf("load value flow wrong: r2=%#x r3=%#x", c.archVal[2], c.archVal[3])
	}
	if fu.requests != 1 {
		t.Errorf("expected 1 miss request, got %d", fu.requests)
	}
	if c.Stats.LLCMissLoads != 1 {
		t.Errorf("LLCMissLoads = %d, want 1", c.Stats.LLCMissLoads)
	}
	// The miss should dominate runtime.
	if c.Stats.Cycles < 150 {
		t.Errorf("finished too fast (%d cycles) for a 150-cycle miss", c.Stats.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	uops := []isa.Uop{
		movImm(1, 0x20000),
		movImm(2, 0x1234),
		{Op: isa.OpStore, Src1: 1, Src2: 2, Imm: 0, Addr: 0x20000, Value: 0x1234},
		{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 3, Imm: 0,
			Addr: 0x20000, Value: 0x1234},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
		uops[i].PC = 0x400000 + uint64(i*4)
	}
	c, fu := buildCore(t, uops, 500, nil)
	runCore(t, c, fu, 2000)
	if c.Stats.StoreForwards != 1 {
		t.Errorf("store forwards = %d, want 1", c.Stats.StoreForwards)
	}
	if c.archVal[3] != 0x1234 {
		t.Errorf("forwarded value wrong: %#x", c.archVal[3])
	}
	if fu.requests != 0 {
		t.Errorf("forwarded load must not reach memory, got %d requests", fu.requests)
	}
	if fu.stores != 1 {
		t.Errorf("retired store should drain to uncore, got %d", fu.stores)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	mk := func(mispredict bool) uint64 {
		uops := []isa.Uop{movImm(1, 1)}
		uops = append(uops, isa.Uop{Op: isa.OpBranch, Src1: 1, Src2: isa.RegNone,
			Dst: isa.RegNone, Taken: true, Mispredicted: mispredict})
		for i := 0; i < 20; i++ {
			uops = append(uops, isa.Uop{Op: isa.OpAdd, Src1: 1, Src2: isa.RegNone, Dst: 2, Imm: 1})
		}
		for i := range uops {
			uops[i].Seq = uint64(i)
			uops[i].PC = 0x400000 + uint64(i*4)
		}
		c, fu := buildCore(t, uops, 100, nil)
		runCore(t, c, fu, 2000)
		return c.Stats.Cycles
	}
	good, bad := mk(false), mk(true)
	if bad <= good {
		t.Errorf("mispredicted branch should cost cycles: %d vs %d", good, bad)
	}
	if bad-good < 10 {
		t.Errorf("mispredict penalty too small: %d", bad-good)
	}
}

// chaseTrace builds a miss -> ALU chain -> dependent miss window, padded so
// the instruction window fills (the chain-generation trigger).
func chaseTrace() []isa.Uop {
	var uops []isa.Uop
	add := func(u isa.Uop) {
		u.Seq = uint64(len(uops))
		// PCs loop within one cache line, like a hot loop body, so the
		// I-cache warms immediately and the window can fill.
		u.PC = 0x400000 + uint64(len(uops)%16*4)
		uops = append(uops, u)
	}
	add(movImm(1, 0x4000000)) // head pointer
	// Source miss: load r2 = [r1]. Value = 0x5000000 - 0x18 so the chain
	// computes the dependent address 0x5000000.
	add(isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
		Addr: 0x4000000, Value: 0x5000000 - 0x18})
	// Chain: mov r3=r2; add r4=r3+0x18 (the Fig. 5 shape).
	add(isa.Uop{Op: isa.OpMov, Src1: 2, Src2: isa.RegNone, Dst: 3})
	add(isa.Uop{Op: isa.OpAdd, Src1: 3, Src2: isa.RegNone, Dst: 4, Imm: 0x18})
	// Dependent miss: load r5 = [r4].
	add(isa.Uop{Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 5,
		Addr: 0x5000000, Value: 0x99})
	// Dependent ALU consumer.
	add(isa.Uop{Op: isa.OpAdd, Src1: 5, Src2: isa.RegNone, Dst: 6, Imm: 1})
	// Padding to fill the window: long independent filler.
	for i := 0; i < 400; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 7, Src2: isa.RegNone, Dst: 7, Imm: 1})
	}
	return uops
}

// primeDepCounter raises the 3-bit counter so chain generation can trigger.
func primeDepCounter(c *Core) {
	for i := 0; i < 4; i++ {
		c.bumpDepCounter(2)
	}
}

func TestChainGeneration(t *testing.T) {
	uops := chaseTrace()
	c, fu := buildCore(t, uops, 400, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)

	var ch *Chain
	for cy := uint64(1); cy < 600 && ch == nil; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		ch = c.TakeReadyChain(cy)
	}
	if ch == nil {
		t.Fatal("no chain generated")
	}
	// Chain: source load, mov, add, dependent load (+ its ALU consumer).
	if len(ch.Uops) < 4 {
		t.Fatalf("chain too short: %d uops", len(ch.Uops))
	}
	if ch.Uops[0].U.Op != isa.OpLoad || ch.Uops[0].U.Addr != 0x4000000 {
		t.Errorf("chain must start with the source miss, got %v", ch.Uops[0].U)
	}
	// RRT renaming: EPRs are allocated in order starting at 0.
	if ch.Uops[0].DstEPR != 0 {
		t.Errorf("source dst EPR = %d, want 0", ch.Uops[0].DstEPR)
	}
	if ch.Uops[1].U.Op != isa.OpMov || ch.Uops[1].Src[0].Kind != ChainSrcEPR || ch.Uops[1].Src[0].Idx != 0 {
		t.Errorf("mov must read EPR0, got %+v", ch.Uops[1])
	}
	if ch.Uops[2].U.Op != isa.OpAdd || ch.Uops[2].Src[0].Kind != ChainSrcEPR || ch.Uops[2].Src[0].Idx != 1 {
		t.Errorf("add must read EPR1, got %+v", ch.Uops[2])
	}
	dep := ch.Uops[3]
	if dep.U.Op != isa.OpLoad || dep.U.Addr != 0x5000000 {
		t.Errorf("dependent load missing, got %v", dep.U)
	}
	// Live-in 0 is the source load's base register value.
	if len(ch.LiveIns) == 0 || ch.LiveIns[0] != 0x4000000 {
		t.Errorf("live-in 0 = %#x, want source base", ch.LiveIns)
	}
	if ch.GenCycles != len(ch.Uops) {
		t.Errorf("generation latency %d, want %d (1/uop)", ch.GenCycles, len(ch.Uops))
	}
	if ch.Bytes() != 6*len(ch.Uops)+8*len(ch.LiveIns) {
		t.Error("transfer size formula wrong")
	}
}

func TestChainCompleteRemotely(t *testing.T) {
	uops := chaseTrace()
	c, fu := buildCore(t, uops, 400, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)

	var ch *Chain
	for cy := uint64(1); cy < 3000; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		if ch == nil {
			if ch = c.TakeReadyChain(cy); ch != nil {
				// Simulate the EMC executing the chain: compute values.
				vals := make([]uint64, len(ch.Uops))
				vals[0] = ch.Uops[0].U.Value
				vals[1] = vals[0]
				vals[2] = vals[1] + 0x18
				for i := 3; i < len(vals); i++ {
					if ch.Uops[i].U.Op == isa.OpLoad {
						vals[i] = ch.Uops[i].U.Value
					} else {
						vals[i] = vals[i-1] + uint64(ch.Uops[i].U.Imm)
					}
				}
				c.CompleteRemoteChain(ch, vals, cy+50)
			}
		}
		if c.Finished() {
			break
		}
	}
	if ch == nil {
		t.Fatal("no chain generated")
	}
	if !c.Finished() {
		t.Fatal("core did not finish after remote completion")
	}
	if c.Stats.RemoteCompleted == 0 {
		t.Error("no uops completed remotely")
	}
	// The dependent load's consumer saw the remote value.
	if c.archVal[6] != 0x99+1 {
		t.Errorf("r6 = %#x, want %#x", c.archVal[6], 0x99+1)
	}
}

func TestChainAbortRevertsToLocal(t *testing.T) {
	uops := chaseTrace()
	c, fu := buildCore(t, uops, 300, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)

	aborted := false
	for cy := uint64(1); cy < 5000; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		if ch := c.TakeReadyChain(cy); ch != nil {
			c.AbortRemoteChain(ch)
			aborted = true
		}
		if c.Finished() {
			break
		}
	}
	if !aborted {
		t.Fatal("no chain was generated/aborted")
	}
	if !c.Finished() {
		t.Fatal("core did not finish after abort (local re-execution broken)")
	}
	if c.Stats.ChainAborts != 1 {
		t.Errorf("aborts = %d, want 1", c.Stats.ChainAborts)
	}
	if c.archVal[6] != 0x99+1 {
		t.Errorf("r6 = %#x after local re-execution, want %#x", c.archVal[6], 0x99+1)
	}
}

// TestFunctionalEquivalence is the core's end-to-end invariant: running a
// real benchmark trace through the full out-of-order pipeline produces
// exactly the architectural register state of the in-order ISS.
func TestFunctionalEquivalence(t *testing.T) {
	for _, bench := range []string{"mcf", "omnetpp", "gcc"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			const n = 3000
			uops := trace.Generate(trace.MustByName(bench), 77, n)
			iss := trace.NewISS()
			for i := range uops {
				if err := iss.Step(&uops[i]); err != nil {
					t.Fatal(err)
				}
			}
			c, fu := buildCore(t, uops, 120, nil)
			runCore(t, c, fu, 4_000_000)
			if c.Stats.Retired != n {
				t.Fatalf("retired %d, want %d", c.Stats.Retired, n)
			}
			for r := 0; r < isa.NumArchRegs; r++ {
				if c.archVal[r] != iss.Regs[r] {
					t.Errorf("r%d = %#x, ISS has %#x", r, c.archVal[r], iss.Regs[r])
				}
			}
		})
	}
}

func TestDependentMissTaint(t *testing.T) {
	uops := chaseTrace()
	c, fu := buildCore(t, uops, 200, nil)
	runCore(t, c, fu, 5000)
	if c.Stats.DependentMissLoads != 1 {
		t.Errorf("dependent misses = %d, want 1 (the chained load)", c.Stats.DependentMissLoads)
	}
	if c.Stats.LLCMissLoads != 2 {
		t.Errorf("LLC misses = %d, want 2", c.Stats.LLCMissLoads)
	}
}

func TestDepCounterSaturation(t *testing.T) {
	c, _ := buildCore(t, nil, 100, nil)
	for i := 0; i < 100; i++ {
		c.bumpDepCounter(1)
	}
	if c.depCounter != 7 {
		t.Errorf("counter = %d, want saturation at 7", c.depCounter)
	}
	for i := 0; i < 100; i++ {
		c.bumpDepCounter(-1)
	}
	if c.depCounter != 0 {
		t.Errorf("counter = %d, want floor at 0", c.depCounter)
	}
	if c.DepCounterHigh() {
		t.Error("counter at 0 must not be high")
	}
	c.bumpDepCounter(2)
	if !c.DepCounterHigh() {
		t.Error("counter at 2 must be high (top two bits)")
	}
}

func TestRemoteMemExecutedConflict(t *testing.T) {
	// An older RESOLVED store to the same address must flag a conflict
	// immediately; an unresolved one must not (late disambiguation catches
	// it when the store's address computes).
	uops := []isa.Uop{
		movImm(1, 0x30000),
		movImm(2, 7),
		{Op: isa.OpStore, Src1: 1, Src2: 2, Imm: 0, Addr: 0x30000, Value: 7},
		{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 3, Imm: 0, Addr: 0x30000, Value: 7},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
		uops[i].PC = 0x400000 + uint64(i%16*4)
	}
	c, fu := buildCore(t, uops, 100, nil)
	for cy := uint64(1); cy <= 100 && len(c.lq) == 0; cy++ {
		fu.tick(cy)
		c.Tick(cy)
	}
	if len(c.lq) == 0 {
		t.Fatal("load never dispatched")
	}
	loadSlot := c.lq[0]
	// Let the store resolve its address.
	for cy := uint64(101); cy <= 120; cy++ {
		fu.tick(cy)
		c.Tick(cy)
	}
	if !c.RemoteMemExecuted(loadSlot, 0x30000) {
		t.Error("conflict with a resolved older store should be detected")
	}
	if c.RemoteMemExecuted(loadSlot, 0x99999) {
		t.Error("no conflict expected for a disjoint address")
	}
}

func TestLateDisambiguationCatchesResolvingStore(t *testing.T) {
	// A store whose address resolves AFTER the EMC executed a younger load
	// to the same address must surface the chain via TakeConflictedChains.
	uops := []isa.Uop{
		movImm(1, 0x30000),
		// The store's address depends on a slow load, so it resolves late.
		{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2, Imm: 0,
			Addr: 0x30000, Value: 0x40000},
		{Op: isa.OpStore, Src1: 2, Src2: 1, Imm: 0, Addr: 0x40000, Value: 0x30000},
		{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 4, Imm: 0x10000,
			Addr: 0x40000, Value: 0x99},
	}
	for i := range uops {
		uops[i].Seq = uint64(i)
		uops[i].PC = 0x400000 + uint64(i%16*4)
	}
	c, fu := buildCore(t, uops, 200, func(cfg *Config) { cfg.EMCEnabled = true })
	for cy := uint64(1); cy <= 50 && len(c.lq) < 2; cy++ {
		fu.tick(cy)
		c.Tick(cy)
	}
	if len(c.lq) < 2 {
		t.Fatal("loads never dispatched")
	}
	// Pretend the EMC executed the younger load in a chain.
	ch := &Chain{CoreID: 0}
	le := c.slot(c.lq[1])
	le.inChain = true
	le.chainRef = ch
	if c.RemoteMemExecuted(c.lq[1], 0x40000) {
		t.Fatal("unresolved older store must not conflict yet")
	}
	// Let the slow load fill and the store resolve.
	for cy := uint64(51); cy <= 1000; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		if got := c.TakeConflictedChains(); len(got) == 1 {
			if got[0] != ch {
				t.Fatal("wrong chain flagged")
			}
			return
		}
	}
	t.Fatal("late disambiguation never fired")
}
