package cpu

import (
	"repro/internal/isa"
	"repro/internal/mem/cache"
)

// Runahead execution (Dundas & Mudge ICS'97, Mutlu et al. HPCA'03) is the
// paper's main pre-execution counterpoint: when the core stalls with a full
// window on an LLC miss, runahead pseudo-executes past the blocking miss,
// poisoning (INV) every value derived from it, and issues prefetches for the
// loads whose addresses remain computable — the *independent* misses. It
// cannot touch dependent misses (their addresses are INV), which is exactly
// the gap the Enhanced Memory Controller fills. This implementation exists
// so the two mechanisms (and their combination) can be compared on the same
// substrate.
//
// Trace-driven realization: on a full-window stall the engine walks the
// remaining window and then peeks ahead in the uop feed, evaluating uops
// functionally over a copy of the register state with an INV bit per
// register. A load whose base is valid and whose line is not already on chip
// becomes a prefetch, paced at the core's issue width; a load whose line
// would miss poisons its destination (runahead does not wait for memory).
// Architectural state is never touched, so "exiting" runahead is free, as in
// real designs where the checkpoint restore overlaps the fill.

// RunaheadConfig sizes the runahead engine.
type RunaheadConfig struct {
	Enabled bool
	// Depth bounds how many uops past the window tail one episode examines.
	Depth int
	// MaxPrefetches bounds prefetches per episode.
	MaxPrefetches int
}

// DefaultRunaheadConfig mirrors common runahead studies: run ~256 uops ahead.
func DefaultRunaheadConfig() RunaheadConfig {
	return RunaheadConfig{Enabled: false, Depth: 256, MaxPrefetches: 32}
}

// RunaheadStats counts engine activity.
type RunaheadStats struct {
	Episodes   uint64
	UopsWalked uint64
	Prefetches uint64
	Poisoned   uint64 // loads skipped because their address was INV
}

// peekFeed wraps a trace.Reader with lookahead so runahead can examine uops
// that have not been fetched yet without consuming them.
type peekFeed struct {
	r    feedReader
	buf  []isa.Uop
	done bool
}

type feedReader interface {
	Next() (isa.Uop, bool)
}

func newPeekFeed(r feedReader) *peekFeed { return &peekFeed{r: r} }

// Next consumes the next uop.
func (p *peekFeed) Next() (isa.Uop, bool) {
	if len(p.buf) > 0 {
		u := p.buf[0]
		p.buf = p.buf[1:]
		return u, true
	}
	if p.done {
		return isa.Uop{}, false
	}
	u, ok := p.r.Next()
	if !ok {
		p.done = true
	}
	return u, ok
}

// Peek returns the i-th unconsumed uop (0 = what Next would return).
func (p *peekFeed) Peek(i int) (isa.Uop, bool) {
	for len(p.buf) <= i && !p.done {
		u, ok := p.r.Next()
		if !ok {
			p.done = true
			break
		}
		p.buf = append(p.buf, u)
	}
	if i < len(p.buf) {
		return p.buf[i], true
	}
	return isa.Uop{}, false
}

// maybeRunahead enters a runahead episode when the stall trigger holds and
// this head has not been run ahead from yet.
func (c *Core) maybeRunahead() {
	if !c.ra.Enabled {
		return
	}
	if !c.FullWindowStalled() {
		return
	}
	headSeq := c.seq[c.robHead]
	if headSeq == c.lastRunahead {
		return
	}
	c.lastRunahead = headSeq
	c.runaheadEpisode(int32(c.robHead))
}

// regView is the runahead engine's speculative register state: the youngest
// known value per architectural register, with an INV bit for values derived
// from outstanding misses.
type regView struct {
	val [isa.NumArchRegs]uint64
	inv [isa.NumArchRegs]bool
}

// snapshotRegs builds the view the runahead engine starts from: committed
// architectural values overlaid with the youngest completed in-flight
// producer per register; registers whose youngest producer is incomplete
// (including the blocking miss) start INV.
func (c *Core) snapshotRegs() regView {
	var v regView
	for r := 0; r < isa.NumArchRegs; r++ {
		if prod := c.renameMap[r]; prod >= 0 {
			if c.st[prod] == stDone {
				v.val[r] = c.slot(prod).val
			} else {
				v.inv[r] = true
			}
		} else {
			v.val[r] = c.archVal[r]
		}
	}
	return v
}

// runaheadEpisode pseudo-executes ahead of the stall, issuing prefetches for
// independent loads. Prefetch issue is paced at the core's issue width:
// the i-th examined uop cannot issue its prefetch before now + i/width.
func (c *Core) runaheadEpisode(srcIdx int32) {
	c.RunaheadStats.Episodes++
	v := c.snapshotRegs()
	// The blocking miss's destination is INV by construction (not done).
	issued := 0
	walked := 0

	process := func(u *isa.Uop) bool {
		walked++
		c.RunaheadStats.UopsWalked++
		delay := uint64(walked / c.cfg.IssueWidth)
		switch u.Op.Class() {
		case isa.ClassLoad:
			base := u.Src1
			if base.Valid() && v.inv[base] {
				c.RunaheadStats.Poisoned++
				if u.HasDst() {
					v.inv[u.Dst] = true
				}
				break
			}
			addr := isa.AddrOf(u, v.val[base])
			hit, poisonDst := c.runaheadTouch(addr, delay)
			if hit {
				// On-chip data: runahead sees the real value.
				if u.HasDst() {
					v.val[u.Dst] = u.Value
					v.inv[u.Dst] = false
				}
			} else {
				issued++
				c.RunaheadStats.Prefetches++
				if u.HasDst() {
					v.inv[u.Dst] = poisonDst
				}
			}
		case isa.ClassStore, isa.ClassBranch, isa.ClassNop:
			// Runahead drops stores and follows the predicted branch stream.
		default:
			if u.HasDst() {
				inv := u.Src1.Valid() && v.inv[u.Src1] || u.Src2.Valid() && v.inv[u.Src2]
				v.inv[u.Dst] = inv
				if !inv {
					v.val[u.Dst] = isa.EvalUop(u, readReg(&v, u.Src1), readReg(&v, u.Src2))
				}
			}
		}
		return issued < c.ra.MaxPrefetches && walked < c.ra.Depth
	}

	// Phase 1: the not-yet-completed tail of the window (beyond the head).
	for off := 1; off < c.robCount; off++ {
		idx := c.robIndexAt(off)
		if st := c.st[idx]; st == stDone || st == stEmpty {
			continue
		}
		u := c.slot(idx).u
		if !process(&u) {
			return
		}
	}
	// Phase 2: uops the front end has not fetched yet.
	for i := 0; ; i++ {
		u, ok := c.peek(i)
		if !ok {
			return
		}
		if !process(&u) {
			return
		}
	}
}

func readReg(v *regView, r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return v.val[r]
}

// runaheadTouch checks whether addr's line is already on chip (L1 hit or an
// outstanding fill) and otherwise issues a prefetch toward the LLC/DRAM.
// It reports (onChip, poisonDst): a prefetched load's destination is INV
// (runahead does not wait for the data).
func (c *Core) runaheadTouch(vaddr uint64, delay uint64) (onChip, poisonDst bool) {
	paddr := c.pt.Translate(vaddr)
	if c.l1d.Probe(paddr) {
		return true, false
	}
	line := cache.LineAddr(paddr)
	if c.msh.Lookup(line) != nil {
		// Already in flight; the demand fill will cover it.
		return false, true
	}
	c.uncore.LoadMiss(&MissInfo{
		CoreID:   c.cfg.ID,
		LineAddr: line,
		VAddr:    vaddr,
		IssuedAt: c.now + delay,
		Prefetch: true,
	})
	return false, true
}

// peek looks ahead in the uop feed without consuming (pendingFetch first).
func (c *Core) peek(i int) (isa.Uop, bool) {
	if c.pendingFetch != nil {
		if i == 0 {
			return *c.pendingFetch, true
		}
		i--
	}
	return c.feed.Peek(i)
}
