package cpu

import (
	"testing"

	"repro/internal/isa"
)

// TestChainGenPaperExample walks the paper's worked example (Figs. 5 and 9):
//
//	0: load  r2 = [r1]        <- source miss (dashed box)
//	1: mov   r3 = r2          <- chain
//	2: add   r4 = r3 + 0x18   <- chain
//	3: load  r5 = [r4]        <- dependent miss (shaded)
//	4: add   r6 = r5 + 0x20   <- chain (address for the second miss)
//	5: load  r7 = [r6]        <- dependent miss (shaded)
//	6: add   r0 = r0 + 1      <- independent (executes at the core)
//
// and checks the generated chain against Fig. 9's renaming: EMC physical
// registers are allocated in dataflow order E0..E5, immediates enter the
// live-in vector, and the independent instruction stays out of the chain.
func TestChainGenPaperExample(t *testing.T) {
	const (
		nodeA = uint64(0x4000000)
		nodeB = uint64(0x5000000)
		nodeC = uint64(0x6000000)
	)
	var uops []isa.Uop
	add := func(u isa.Uop) {
		u.Seq = uint64(len(uops))
		u.PC = 0x400000 + uint64(len(uops)%16*4)
		uops = append(uops, u)
	}
	add(movImm(1, nodeA))
	add(isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
		Addr: nodeA, Value: nodeB - 0x18}) // 0: source miss
	add(isa.Uop{Op: isa.OpMov, Src1: 2, Src2: isa.RegNone, Dst: 3})            // 1
	add(isa.Uop{Op: isa.OpAdd, Src1: 3, Src2: isa.RegNone, Dst: 4, Imm: 0x18}) // 2
	add(isa.Uop{Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 5,
		Addr: nodeB, Value: nodeC - 0x20}) // 3: dependent miss
	add(isa.Uop{Op: isa.OpAdd, Src1: 5, Src2: isa.RegNone, Dst: 6, Imm: 0x20}) // 4
	add(isa.Uop{Op: isa.OpLoad, Src1: 6, Src2: isa.RegNone, Dst: 7,
		Addr: nodeC, Value: 0x42}) // 5: dependent miss
	add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1}) // 6: independent
	// Window filler so the stall trigger fires.
	for i := 0; i < 300; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1})
	}

	c, fu := buildCore(t, uops, 500, func(cfg *Config) { cfg.EMCEnabled = true })
	primeDepCounter(c)
	var ch *Chain
	for cy := uint64(1); cy < 800 && ch == nil; cy++ {
		fu.tick(cy)
		c.Tick(cy)
		ch = c.TakeReadyChain(cy)
	}
	if ch == nil {
		t.Fatal("no chain generated for the paper's example")
	}
	// Expected chain: source load, mov, add, load, add, load (6 uops).
	wantOps := []isa.Op{isa.OpLoad, isa.OpMov, isa.OpAdd, isa.OpLoad, isa.OpAdd, isa.OpLoad}
	if len(ch.Uops) != len(wantOps) {
		t.Fatalf("chain has %d uops, want %d: %+v", len(ch.Uops), len(wantOps), ch.Uops)
	}
	for i, w := range wantOps {
		if ch.Uops[i].U.Op != w {
			t.Errorf("chain[%d] = %v, want %v", i, ch.Uops[i].U.Op, w)
		}
		// Fig. 9: EPRs allocated sequentially in dataflow order.
		if int(ch.Uops[i].DstEPR) != i {
			t.Errorf("chain[%d] dst EPR = %d, want %d", i, ch.Uops[i].DstEPR, i)
		}
	}
	// Each non-source uop reads the previous uop's EPR.
	for i := 1; i < len(ch.Uops); i++ {
		src := ch.Uops[i].Src[0]
		if src.Kind != ChainSrcEPR || int(src.Idx) != i-1 {
			t.Errorf("chain[%d] src = %+v, want EPR %d", i, src, i-1)
		}
	}
	// The independent add (r0) must not be in the chain.
	for _, cu := range ch.Uops {
		if cu.U.Dst == 0 {
			t.Error("independent instruction leaked into the chain")
		}
	}
	// Functional evaluation reproduces the dependent addresses and values.
	vals := ch.Evaluate()
	if vals[2] != nodeB || vals[4] != nodeC || vals[5] != 0x42 {
		t.Errorf("chain evaluation wrong: %#x", vals)
	}
}
