package cpu

import (
	"testing"

	"repro/internal/isa"
)

// TestIssueWidthBound: a burst of independent single-cycle uops retires no
// faster than the machine width allows.
func TestIssueWidthBound(t *testing.T) {
	const n = 400
	var uops []isa.Uop
	for i := 0; i < n; i++ {
		uops = append(uops, isa.Uop{
			Op: isa.OpAdd, Src1: isa.Reg(i % 4), Src2: isa.RegNone,
			Dst: isa.Reg(i % 4), Imm: 1,
			Seq: uint64(i), PC: 0x400000 + uint64(i%16*4),
		})
	}
	c, fu := buildCore(t, uops, 100, nil)
	runCore(t, c, fu, 10000)
	// 4-wide machine: at least n/4 cycles.
	if c.Stats.Cycles < n/4 {
		t.Errorf("%d uops in %d cycles exceeds machine width", n, c.Stats.Cycles)
	}
	// And with no stalls it should be close to that bound (within ~4x for
	// pipeline fill and I-cache warmup).
	if c.Stats.Cycles > n {
		t.Errorf("independent ALU stream too slow: %d cycles for %d uops", c.Stats.Cycles, n)
	}
}

// TestSerialDependenceBound: a fully serial ALU chain takes at least one
// cycle per uop regardless of width.
func TestSerialDependenceBound(t *testing.T) {
	const n = 300
	var uops []isa.Uop
	uops = append(uops, movImm(1, 0))
	for i := 1; i <= n; i++ {
		uops = append(uops, isa.Uop{
			Op: isa.OpAdd, Src1: 1, Src2: isa.RegNone, Dst: 1, Imm: 1,
			Seq: uint64(i), PC: 0x400000 + uint64(i%16*4),
		})
	}
	uops[0].Seq = 0
	uops[0].PC = 0x400000
	c, fu := buildCore(t, uops, 100, nil)
	runCore(t, c, fu, 10000)
	if c.Stats.Cycles < n {
		t.Errorf("serial chain of %d finished in %d cycles (impossible)", n, c.Stats.Cycles)
	}
	if c.archVal[1] != n {
		t.Errorf("r1 = %d, want %d", c.archVal[1], n)
	}
}

// TestMemPortsBound: loads are limited to MemPorts per cycle.
func TestMemPortsBound(t *testing.T) {
	const n = 200
	var uops []isa.Uop
	uops = append(uops, movImm(1, 0x10000))
	for i := 1; i <= n; i++ {
		uops = append(uops, isa.Uop{
			Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: isa.Reg(2 + i%4),
			Imm: int64(i%8) * 8, Addr: 0x10000 + uint64(i%8)*8, Value: 7,
			Seq: uint64(i), PC: 0x400000 + uint64(i%16*4),
		})
	}
	uops[0].Seq = 0
	uops[0].PC = 0x400000
	c, fu := buildCore(t, uops, 30, nil)
	runCore(t, c, fu, 20000)
	// 2 memory ports: at least n/2 cycles.
	if c.Stats.Cycles < n/2 {
		t.Errorf("%d loads in %d cycles exceeds 2 mem ports", n, c.Stats.Cycles)
	}
}

// TestEventHorizonGuard: scheduling beyond the horizon must panic loudly
// rather than silently dropping a completion.
func TestEventHorizonGuard(t *testing.T) {
	c, _ := buildCore(t, nil, 10, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for beyond-horizon scheduling")
		}
	}()
	c.schedule(0, uint64(eventHorizon)+10)
}

// TestFinishedSemantics: a core with an empty trace is finished immediately
// after its first tick; a core mid-flight is not.
func TestFinishedSemantics(t *testing.T) {
	c, fu := buildCore(t, nil, 10, nil)
	c.Tick(1)
	_ = fu
	if !c.Finished() {
		t.Error("empty-trace core should finish immediately")
	}
	c2, _ := buildCore(t, []isa.Uop{movImm(1, 5)}, 10, nil)
	if c2.Finished() {
		t.Error("unstarted core must not report finished")
	}
}

// TestHybridPredictorIntegration: with the real predictor, branch
// mispredictions become emergent (biased branches ~0, random branches
// ~chance) instead of trace-drawn.
func TestHybridPredictorIntegration(t *testing.T) {
	var uops []isa.Uop
	add := func(u isa.Uop, pc uint64) {
		u.Seq = uint64(len(uops))
		u.PC = pc
		uops = append(uops, u)
	}
	x := uint64(0x12345)
	for i := 0; i < 2000; i++ {
		add(isa.Uop{Op: isa.OpAdd, Src1: 0, Src2: isa.RegNone, Dst: 0, Imm: 1},
			0x400000+uint64(i%16*4))
		// A perfectly biased branch at one PC, a random one at another. The
		// trace marks BOTH as always-mispredicted; the real predictor must
		// override that.
		add(isa.Uop{Op: isa.OpBranch, Src1: 0, Src2: isa.RegNone, Dst: isa.RegNone,
			Taken: true, Mispredicted: true}, 0x400040)
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		add(isa.Uop{Op: isa.OpBranch, Src1: 0, Src2: isa.RegNone, Dst: isa.RegNone,
			Taken: x&1 == 0, Mispredicted: true}, 0x400044)
	}
	c, fu := buildCore(t, uops, 50, func(cfg *Config) { cfg.UseBranchPredictor = true })
	runCore(t, c, fu, 2_000_000)
	bp := c.BranchPredictor()
	if bp == nil {
		t.Fatal("predictor not installed")
	}
	rate := bp.MispredictRate()
	// Half the branches are biased (learned ~perfectly), half random
	// (~50%): overall ~25%.
	if rate < 0.10 || rate > 0.40 {
		t.Errorf("emergent mispredict rate %.2f outside [0.10, 0.40]", rate)
	}
	// The core's mispredict stat must reflect the predictor, not the trace
	// flags (which claimed 100%).
	if c.Stats.Mispredicts >= c.Stats.Branches {
		t.Error("trace flags leaked through the real predictor")
	}
}
