// Package cpu implements the cycle-level out-of-order core model of Table 1:
// 4-wide fetch/rename/issue/retire, a 256-entry reorder buffer with ROB-slot
// renaming, a 92-entry reservation station with a common data bus, a
// load/store queue with store-to-load forwarding, write-through L1 caches,
// and the dependence-chain generation unit of §4.2 of the paper.
//
// The core is trace driven: it pulls value-consistent uops from a
// trace.Reader and executes them functionally, so register values (and thus
// the live-ins shipped to the Enhanced Memory Controller) are real.
package cpu

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/isa"
	"repro/internal/mem/cache"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config sizes one core (defaults mirror Table 1).
type Config struct {
	ID          int
	FetchWidth  int
	IssueWidth  int
	RetireWidth int
	ROBSize     int
	RSSize      int
	LQSize      int
	SQSize      int
	MemPorts    int // loads+stores issued per cycle

	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L1Latency        int
	MSHRs            int

	TLBEntries  int
	TLBWalkLat  int
	StoreBuffer int

	MispredictPenalty int
	ICacheMissPenalty int

	// Chain generation (§4.2).
	ChainMaxUops    int // 16
	ChainMaxRegs    int // EMC PRF size, 16
	ChainMaxLiveIns int // live-in vector, 16
	DepCounterBits  int // 3-bit saturating counter
	// MaxActiveChains bounds chains buffered/in flight per core (the core
	// buffers generated chains before transmission, §4.2).
	MaxActiveChains int

	// EMCEnabled gates chain generation entirely (baseline configs).
	EMCEnabled bool

	// Runahead configures the runahead-execution engine (the comparison
	// baseline; see runahead.go).
	Runahead RunaheadConfig

	// UseBranchPredictor replaces the trace-carried mispredict flags with
	// the hybrid predictor of Table 1 (bimodal + gshare + chooser) running
	// on the trace's actual branch outcomes.
	UseBranchPredictor bool
	BranchPredictor    bpred.Config
}

// DefaultConfig returns the Table-1 core.
func DefaultConfig(id int) Config {
	return Config{
		ID: id, FetchWidth: 4, IssueWidth: 4, RetireWidth: 4,
		ROBSize: 256, RSSize: 92, LQSize: 64, SQSize: 48, MemPorts: 2,
		L1ISize: 32 * 1024, L1IWays: 8, L1DSize: 32 * 1024, L1DWays: 8,
		L1Latency: 3, MSHRs: 16,
		TLBEntries: 64, TLBWalkLat: 30, StoreBuffer: 32,
		MispredictPenalty: 14, ICacheMissPenalty: 30,
		ChainMaxUops: 16, ChainMaxRegs: 16, ChainMaxLiveIns: 16,
		DepCounterBits: 3, MaxActiveChains: 2,
		Runahead:        DefaultRunaheadConfig(),
		BranchPredictor: bpred.DefaultConfig(),
	}
}

// MissInfo describes a demand load miss leaving the core for the uncore.
type MissInfo struct {
	CoreID   int
	LineAddr uint64 // physical line address
	VAddr    uint64
	PC       uint64
	IssuedAt uint64
	// Dependent marks a load whose address derives from a prior LLC miss
	// (the paper's dependent cache miss).
	Dependent bool

	// Prefetch marks a runahead-issued request: fill the LLC, no core
	// waiter.
	Prefetch bool
}

// Uncore is the core's window onto the rest of the chip; the system
// simulator implements it. Fills come back via Core.Fill.
type Uncore interface {
	// LoadMiss requests a cache-line fill.
	LoadMiss(m *MissInfo)
	// StoreWrite propagates a retired write-through store toward the LLC.
	StoreWrite(coreID int, lineAddr uint64, vaddr uint64)
}

type entryState uint8

const (
	stEmpty entryState = iota
	stWaiting
	stReady  // in ready queue
	stIssued // executing
	stDone
)

type srcKind uint8

const (
	srcNone srcKind = iota
	srcValue
	srcTag
)

// robEntry holds the cold per-slot state. The fields the per-cycle scan
// loops touch (issue, retry sweeps, wakeups, chain walks) live in dense
// parallel arrays on Core — see the "hot per-slot state" block there
// (struct-of-arrays, DESIGN.md §13.1) — so those loops walk a few cache
// lines instead of striding over ~250-byte entries.
type robEntry struct {
	u isa.Uop

	srcKind  [2]srcKind
	srcVal   [2]uint64
	srcTag   [2]int32
	srcTaint [2]bool
	// srcTaintSrc tracks which ROB slot's LLC miss the taint came from
	// (with its dispatch seq to detect slot reuse), so dependent misses can
	// credit their producer for counter training.
	srcTaintSrc [2]int32
	srcTaintSeq [2]uint64

	val          uint64
	taint        bool // value derived from an LLC miss
	taintSrc     int32
	taintSeq     uint64
	wasDependent bool // this load's address derived from a prior LLC miss

	consumers []int32 // rob slots waiting on this entry's result

	// Memory state.
	vaddr      uint64
	paddr      uint64
	addrValid  bool
	isLLCMiss  bool
	forwarded  bool
	memBlocked bool // parked in the LSQ retry list
	l1Counted  bool // this load already counted as an L1D miss (retries)

	// blockStore memoizes the unresolved older store (ROB slot + dispatch
	// seq) that parked this load, so retries skip the store-queue scan while
	// that same store is still unresolved. -1 when the load is not
	// store-blocked. The skipped scan prefix has no side effects, so this is
	// purely an optimization — retry outcomes are bit-identical.
	blockStore int32
	blockSeq   uint64

	// EMC state.
	remote          bool // shipped to the EMC; do not issue locally
	inChain         bool
	chainRef        *Chain // the chain this uop was shipped in (remote uops)
	producedDepMiss bool

	issuedAt uint64
}

const eventHorizon = 256

// NoEvent is the NextEvent sentinel: the core has no self-generated future
// work and will only act again on external input (a fill, a chain completion,
// an abort).
const NoEvent = ^uint64(0)

// Stats aggregates core-side counters.
type Stats struct {
	Cycles           uint64
	Retired          uint64
	Loads            uint64
	Stores           uint64
	Branches         uint64
	Mispredicts      uint64
	FetchStallCycles uint64
	ROBFullCycles    uint64
	FullWindowStalls uint64 // cycles stalled with a miss blocking retirement

	L1DMisses          uint64
	L1MissRequests     uint64 // line requests sent to the uncore
	LLCMissLoads       uint64 // loads the LLC reported as misses
	DependentMissLoads uint64
	StoreForwards      uint64
	ICacheMisses       uint64
	TLBWalks           uint64

	// Load-miss latency observed at the core (issue -> usable data).
	MissLatencySum uint64
	MissCount      uint64

	// Chain generation.
	ChainsGenerated    uint64
	ChainUops          uint64
	ChainLiveIns       uint64
	ChainLiveOuts      uint64
	ChainGenCycles     uint64
	ChainAborts        uint64
	ChainNoCandidate   uint64
	RemoteCompleted    uint64 // uops completed by EMC live-outs
	DepCounterInc      uint64
	DepCounterDec      uint64
	ChainDeliverySum   uint64 // live-out delivery time after source fill
	ChainDeliveryCount uint64
	ChainLoadsRemote   uint64 // loads completed at the EMC
	RemoteHeadStall    uint64 // retire blocked by a not-yet-completed remote uop
	ChainCancels       uint64 // chains stale before transmission
	ChainLeadSum       int64  // source-fill time minus generation start
	ChainLeadCount     uint64
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg      Config
	feed     *peekFeed
	done     bool // trace exhausted
	finished bool // Finished() latched true (monotone once done+drained)
	uncore   Uncore

	pt  *vm.PageTable
	tlb *vm.TLB
	l1i *cache.Cache
	l1d *cache.Cache
	msh *cache.MSHRFile

	rob      []robEntry
	robHead  int
	robCount int
	nextSeq  uint64

	// Hot per-slot state, struct-of-arrays (indexed by ROB slot, DESIGN.md
	// §13.1). The per-cycle scan loops read only these dense arrays; the
	// cold remainder of each entry stays in rob[].
	st         []entryState
	seq        []uint64
	ops        []isa.Op // mirror of rob[i].u.Op, set at dispatch
	remote     []bool
	memBlocked []bool
	addrValid  []bool
	blockStore []int32
	blockSeq   []uint64

	renameMap [isa.NumArchRegs]int32
	archVal   [isa.NumArchRegs]uint64
	archTaint [isa.NumArchRegs]bool

	rsCount int
	readyQ  []int32

	events    [eventHorizon][]int32
	pendingEv int // scheduled-but-not-yet-drained completion events
	// evMask mirrors events occupancy: bit b of evMask[b/64] is set iff
	// events[b] is non-empty, so NextEvent finds the earliest completion
	// with a handful of TrailingZeros64 probes instead of a 255-bucket scan.
	evMask [eventHorizon / 64]uint64
	lq, sq    []int32 // rob slots of in-flight loads/stores, program order
	blockedLd []int32 // loads waiting on LSQ conditions or MSHR space

	storeBuf  []storeWrite
	storeHead int // consumed prefix of storeBuf (head-index pop)

	fetchHold        int32 // rob slot of unresolved mispredicted branch, -1
	fetchBlockedTill uint64

	pendingFetch *isa.Uop // uop fetched but not yet dispatched (stall)

	depCounter int
	depMax     int

	chains           []*Chain // active: generated, shipped, not yet resolved
	lastChainAttempt uint64
	conflicted       []*Chain // chains caught by late memory disambiguation

	ra           RunaheadConfig
	lastRunahead uint64
	bp           *bpred.Predictor

	now           uint64
	Stats         Stats
	RunaheadStats RunaheadStats

	// Debug counters (not part of Stats).
	DbgChainBusy  uint64
	DbgCounterLow uint64
	DbgStallHeads uint64
	lastStallHead uint64

	// waitingFill maps line -> true while an I-cache fill is pending.
	icFillAt uint64
}

type storeWrite struct {
	lineAddr uint64
	vaddr    uint64
}

// New builds a core over a trace feed, a page table, and an uncore.
func New(cfg Config, feed trace.Reader, pt *vm.PageTable, uncore Uncore) *Core {
	c := &Core{
		cfg:    cfg,
		feed:   newPeekFeed(feed),
		uncore: uncore,
		pt:     pt,
		tlb:    vm.NewTLB(cfg.TLBEntries, cfg.TLBWalkLat),
		l1i: cache.New(cache.Config{Name: fmt.Sprintf("l1i%d", cfg.ID),
			SizeBytes: cfg.L1ISize, Ways: cfg.L1IWays, Latency: cfg.L1Latency, WriteThrough: true}),
		l1d: cache.New(cache.Config{Name: fmt.Sprintf("l1d%d", cfg.ID),
			SizeBytes: cfg.L1DSize, Ways: cfg.L1DWays, Latency: cfg.L1Latency, WriteThrough: true}),
		msh:        cache.NewMSHRFile(cfg.MSHRs),
		rob:        make([]robEntry, cfg.ROBSize),
		st:         make([]entryState, cfg.ROBSize),
		seq:        make([]uint64, cfg.ROBSize),
		ops:        make([]isa.Op, cfg.ROBSize),
		remote:     make([]bool, cfg.ROBSize),
		memBlocked: make([]bool, cfg.ROBSize),
		addrValid:  make([]bool, cfg.ROBSize),
		blockStore: make([]int32, cfg.ROBSize),
		blockSeq:   make([]uint64, cfg.ROBSize),
		fetchHold:  -1,
	}
	for i := range c.renameMap {
		c.renameMap[i] = -1
	}
	c.depMax = 1<<uint(cfg.DepCounterBits) - 1
	c.ra = cfg.Runahead
	if cfg.UseBranchPredictor {
		c.bp = bpred.New(cfg.BranchPredictor)
	}
	return c
}

// ID returns the core's id.
func (c *Core) ID() int { return c.cfg.ID }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// L1D exposes the data cache (directory maintenance by the uncore).
func (c *Core) L1D() *cache.Cache { return c.l1d }

// ROBOccupancy returns the number of in-flight ROB entries (a live gauge
// for the observability layer).
func (c *Core) ROBOccupancy() int { return c.robCount }

// MSHROccupancy returns the number of outstanding L1 miss entries.
func (c *Core) MSHROccupancy() int { return c.msh.Len() }

// Finished reports whether the trace is exhausted and the pipeline drained.
// The condition is monotone — once the trace is done and the window, store
// buffer, and fetch stage are empty, no new work can arrive — so the result
// latches and repeat callers (the per-step scheduler loop) take the fast path.
func (c *Core) Finished() bool {
	if c.finished {
		return true
	}
	if c.done && c.robCount == 0 && len(c.storeBuf) == c.storeHead && c.pendingFetch == nil {
		c.finished = true
	}
	return c.finished
}

func (c *Core) slot(i int32) *robEntry { return &c.rob[i] }

func (c *Core) robIndexAt(offset int) int32 {
	return int32((c.robHead + offset) % c.cfg.ROBSize)
}

// Tick advances the core one cycle. Order: retire, complete, issue,
// dispatch/fetch — standard reverse-pipeline order so results are visible
// to younger stages one cycle later.
func (c *Core) Tick(now uint64) {
	c.now = now
	c.Stats.Cycles++
	c.retire()
	c.complete()
	c.drainStoreBuffer()
	c.retryBlockedLoads()
	c.issue()
	c.dispatch()
	c.maybeStartChain()
	c.maybeRunahead()
}

// ---- Retire ----------------------------------------------------------------

func (c *Core) retire() {
	for n := 0; n < c.cfg.RetireWidth && c.robCount > 0; n++ {
		idx := int32(c.robHead)
		e := c.slot(idx)
		if c.st[idx] != stDone {
			if c.remote[idx] {
				c.Stats.RemoteHeadStall++
			}
			if c.ops[idx] == isa.OpLoad && e.isLLCMiss {
				if c.robCount == c.cfg.ROBSize {
					c.Stats.FullWindowStalls++
				}
			}
			if c.robCount == c.cfg.ROBSize {
				c.Stats.ROBFullCycles++
			}
			return
		}
		// Stores drain through the post-retirement store buffer; stall
		// retirement if it is full.
		if e.u.Op == isa.OpStore {
			if len(c.storeBuf)-c.storeHead >= c.cfg.StoreBuffer {
				return
			}
			c.storeBuf = append(c.storeBuf, storeWrite{lineAddr: cache.LineAddr(e.paddr), vaddr: e.vaddr})
		}
		// Commit the architectural register value.
		if e.u.HasDst() {
			if c.renameMap[e.u.Dst] == idx {
				c.renameMap[e.u.Dst] = -1
			}
			c.archVal[e.u.Dst] = e.val
			c.archTaint[e.u.Dst] = e.taint
		}
		// Remove from LSQ program-order lists.
		switch e.u.Op {
		case isa.OpLoad:
			c.lq = removeSlot(c.lq, idx)
		case isa.OpStore:
			c.sq = removeSlot(c.sq, idx)
		}
		c.st[idx] = stEmpty
		e.consumers = e.consumers[:0]
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
		c.Stats.Retired++
	}
}

func removeSlot(list []int32, idx int32) []int32 {
	for i, v := range list {
		if v == idx {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func (c *Core) bumpDepCounter(d int) {
	if d > 0 {
		c.Stats.DepCounterInc++
	} else {
		c.Stats.DepCounterDec++
	}
	c.depCounter += d
	if c.depCounter < 0 {
		c.depCounter = 0
	}
	if c.depCounter > c.depMax {
		c.depCounter = c.depMax
	}
}

// DepCounterHigh reports whether either of the top two bits of the
// saturating counter is set (the paper's trigger condition).
func (c *Core) DepCounterHigh() bool {
	return c.depCounter >= 1<<uint(c.cfg.DepCounterBits-2)
}

// ---- Complete / common data bus ---------------------------------------------

func (c *Core) schedule(idx int32, at uint64) {
	if at <= c.now {
		at = c.now + 1
	}
	if at-c.now >= eventHorizon {
		panic("cpu: completion scheduled beyond event horizon")
	}
	b := at % eventHorizon
	c.events[b] = append(c.events[b], idx)
	c.evMask[b>>6] |= 1 << (b & 63)
	c.pendingEv++
}

func (c *Core) complete() {
	bucket := c.now % eventHorizon
	list := c.events[bucket]
	if len(list) == 0 {
		return
	}
	// schedule() never targets the current cycle's bucket (at >= now+1 and
	// at-now < eventHorizon), so reusing the backing array here is safe.
	c.events[bucket] = list[:0]
	c.evMask[bucket>>6] &^= 1 << (bucket & 63)
	c.pendingEv -= len(list)
	for _, idx := range list {
		if c.st[idx] != stIssued {
			continue
		}
		c.finish(idx, c.slot(idx).val)
	}
}

// finish marks an entry done with its result value and wakes consumers.
func (c *Core) finish(idx int32, val uint64) {
	e := c.slot(idx)
	e.val = val
	c.st[idx] = stDone
	for _, cons := range e.consumers {
		ce := c.slot(cons)
		if c.st[cons] == stEmpty {
			continue
		}
		for s := 0; s < 2; s++ {
			if ce.srcKind[s] == srcTag && ce.srcTag[s] == idx {
				ce.srcKind[s] = srcValue
				ce.srcVal[s] = val
				ce.srcTaint[s] = e.taint
				ce.srcTaintSrc[s] = e.taintSrc
				ce.srcTaintSeq[s] = e.taintSeq
			}
		}
		c.maybeWake(cons)
	}
	e.consumers = e.consumers[:0]
}

func (c *Core) maybeWake(idx int32) {
	if c.st[idx] != stWaiting {
		return
	}
	e := c.slot(idx)
	for s := 0; s < 2; s++ {
		if e.srcKind[s] == srcTag {
			return
		}
	}
	c.st[idx] = stReady
	c.readyQ = append(c.readyQ, idx)
}

// ---- Issue -------------------------------------------------------------------

func (c *Core) issue() {
	// Single compaction pass: entries that stay (mem-port-limited) are kept
	// in order at the write cursor; issued, parked, and stale entries drop
	// out. Scan order and the surviving queue order match the remove-in-place
	// formulation exactly, without its O(n^2) element moves.
	issued, memIssued := 0, 0
	i, w := 0, 0
	for i < len(c.readyQ) && issued < c.cfg.IssueWidth {
		idx := c.readyQ[i]
		i++
		if c.st[idx] != stReady || c.remote[idx] {
			// Stale, or shipped to the EMC (completion arrives as a live-out).
			continue
		}
		op := c.ops[idx]
		isMem := op == isa.OpLoad || op == isa.OpStore
		if isMem && memIssued >= c.cfg.MemPorts {
			c.readyQ[w] = idx
			w++
			continue
		}
		if bs := c.blockStore[idx]; bs >= 0 {
			// Load still blocked on the same unresolved older store: the
			// issueOne attempt would park it again with no net state change
			// (issuedAt and recomputed taint fields are unobservable until a
			// successful issue), so re-park directly. rsCount is untouched —
			// the attempt's decrement/increment pair cancels.
			if c.seq[bs] == c.blockSeq[idx] && c.storeUnresolved(bs) {
				c.memBlocked[idx] = true
				c.blockedLd = append(c.blockedLd, idx)
				continue
			}
			c.blockStore[idx] = -1
		}
		if c.issueOne(idx) {
			issued++
			if isMem {
				memIssued++
			}
		}
	}
	for i < len(c.readyQ) {
		c.readyQ[w] = c.readyQ[i]
		w++
		i++
	}
	c.readyQ = c.readyQ[:w]
}

// issueOne executes an entry. Returns false if it could not issue (parked).
func (c *Core) issueOne(idx int32) bool {
	e := c.slot(idx)
	c.st[idx] = stIssued
	e.issuedAt = c.now
	c.rsCount--
	e.taint = e.srcTaint[0] || e.srcTaint[1]
	e.taintSrc = -1
	for s := 0; s < 2; s++ {
		if e.srcTaint[s] {
			e.taintSrc = e.srcTaintSrc[s]
			e.taintSeq = e.srcTaintSeq[s]
			break
		}
	}
	switch e.u.Op.Class() {
	case isa.ClassLoad:
		return c.issueLoad(idx)
	case isa.ClassStore:
		// Address+data resolution; visibility happens post-retirement.
		e.vaddr = isa.AddrOf(&e.u, e.srcVal[0])
		paddr, tlbLat := c.translate(e.vaddr)
		e.paddr = paddr
		c.addrValid[idx] = true
		e.val = e.srcVal[1]
		c.schedule(idx, c.now+1+uint64(tlbLat))
		c.checkLateDisambiguation(idx)
		c.unblockLoadsFor()
		return true
	case isa.ClassBranch:
		c.schedule(idx, c.now+1)
		if e.u.Mispredicted {
			// Redirect: the front end restarts after resolution + penalty.
			c.fetchBlockedTill = c.now + 1 + uint64(c.cfg.MispredictPenalty)
			if c.fetchHold == idx {
				c.fetchHold = -1
			}
		}
		return true
	default:
		e.val = isa.EvalUop(&e.u, e.srcVal[0], e.srcVal[1])
		c.schedule(idx, c.now+uint64(e.u.Op.Latency()))
		return true
	}
}

func (c *Core) translate(vaddr uint64) (paddr uint64, lat int) {
	paddr, lat = c.tlb.Access(c.pt, vaddr)
	if lat > 0 {
		c.Stats.TLBWalks++
	}
	return paddr, lat
}

// Fill delivers a cache-line fill from the uncore. It completes all loads
// waiting on the line, installs it in the L1D, and returns the evicted
// victim line (if any) so the caller can maintain the LLC directory.
func (c *Core) Fill(lineAddr uint64, now uint64) (victim uint64, hadVictim bool) {
	c.now = now
	m := c.msh.Complete(lineAddr)
	if m == nil {
		return 0, false
	}
	for _, ch := range c.chains {
		if ch.SourceFilledAt == 0 && ch.SourceLine == lineAddr {
			ch.SourceFilledAt = now
		}
	}
	for _, w := range m.Waiters {
		idx := int32(w)
		e := c.slot(idx)
		if c.st[idx] != stIssued || c.ops[idx] != isa.OpLoad || cache.LineAddr(e.paddr) != lineAddr {
			continue
		}
		e.val = e.u.Value
		c.schedule(idx, now+1)
		if e.isLLCMiss {
			c.Stats.MissLatencySum += now - e.issuedAt
			c.Stats.MissCount++
		}
	}
	v := c.l1d.Insert(lineAddr<<cache.LineShift, false)
	if v.Valid {
		return v.LineAddr, true
	}
	return 0, false
}

// ---- Dispatch / fetch --------------------------------------------------------

func (c *Core) dispatch() {
	if c.now < c.fetchBlockedTill || c.now < c.icFillAt {
		c.Stats.FetchStallCycles++
		return
	}
	if c.fetchHold >= 0 {
		// Waiting for a mispredicted branch to resolve.
		c.Stats.FetchStallCycles++
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.robCount >= c.cfg.ROBSize || c.rsCount >= c.cfg.RSSize {
			return
		}
		u := c.pendingFetch
		if u == nil {
			if c.done {
				return
			}
			uu, ok := c.feed.Next()
			if !ok {
				c.done = true
				return
			}
			u = &uu
		}
		// LSQ capacity.
		switch u.Op {
		case isa.OpLoad:
			if len(c.lq) >= c.cfg.LQSize {
				c.pendingFetch = u
				return
			}
		case isa.OpStore:
			if len(c.sq) >= c.cfg.SQSize {
				c.pendingFetch = u
				return
			}
		}
		// Instruction cache.
		if !c.l1i.Access(u.PC, false) {
			c.l1i.Insert(u.PC, false)
			c.Stats.ICacheMisses++
			c.icFillAt = c.now + uint64(c.cfg.ICacheMissPenalty)
			c.pendingFetch = u
			return
		}
		c.pendingFetch = nil
		if u.Op == isa.OpBranch && c.bp != nil {
			// The hybrid predictor overrides the trace's mispredict flag
			// with its own organic behaviour on the actual outcome.
			u.Mispredicted = c.bp.Update(u.PC, u.Taken)
		}
		c.dispatchUop(u)
		if u.Op == isa.OpBranch && u.Mispredicted {
			// Stop fetching past an unresolved mispredicted branch.
			c.fetchHold = c.robIndexAt(c.robCount - 1)
			return
		}
	}
}

func (c *Core) dispatchUop(u *isa.Uop) {
	idx := c.robIndexAt(c.robCount)
	c.robCount++
	e := c.slot(idx)
	cons := e.consumers[:0]
	*e = robEntry{u: *u}
	e.consumers = cons
	c.st[idx] = stWaiting
	c.seq[idx] = c.nextSeq
	c.ops[idx] = u.Op
	c.remote[idx] = false
	c.memBlocked[idx] = false
	c.addrValid[idx] = false
	c.blockStore[idx] = -1
	c.blockSeq[idx] = 0
	c.nextSeq++
	c.rsCount++

	srcs := [2]isa.Reg{u.Src1, u.Src2}
	for s, r := range srcs {
		if !r.Valid() {
			e.srcKind[s] = srcNone
			continue
		}
		if prod := c.renameMap[r]; prod >= 0 {
			pe := c.slot(prod)
			if c.st[prod] == stDone {
				e.srcKind[s] = srcValue
				e.srcVal[s] = pe.val
				e.srcTaint[s] = pe.taint
				e.srcTaintSrc[s] = pe.taintSrc
				e.srcTaintSeq[s] = pe.taintSeq
			} else {
				e.srcKind[s] = srcTag
				e.srcTag[s] = prod
				pe.consumers = append(pe.consumers, idx)
			}
		} else {
			e.srcKind[s] = srcValue
			e.srcVal[s] = c.archVal[r]
			e.srcTaint[s] = c.archTaint[r]
			// Architectural taint is stale past retirement; no producer
			// crediting across the commit boundary.
			e.srcTaintSrc[s] = -1
		}
	}
	if u.HasDst() {
		c.renameMap[u.Dst] = idx
	}
	switch u.Op {
	case isa.OpLoad:
		c.lq = append(c.lq, idx)
		c.Stats.Loads++
	case isa.OpStore:
		c.sq = append(c.sq, idx)
		c.Stats.Stores++
	case isa.OpBranch:
		c.Stats.Branches++
		if u.Mispredicted {
			c.Stats.Mispredicts++
		}
	}
	c.maybeWake(idx)
}

// ---- Store buffer -------------------------------------------------------------

func (c *Core) drainStoreBuffer() {
	if len(c.storeBuf) == c.storeHead {
		return
	}
	w := c.storeBuf[c.storeHead]
	c.storeHead++
	if c.storeHead == len(c.storeBuf) {
		c.storeBuf = c.storeBuf[:0]
		c.storeHead = 0
	}
	// Write-through: update L1 if present (no allocate on miss).
	if c.l1d.Probe(w.lineAddr << cache.LineShift) {
		c.l1d.Access(w.lineAddr<<cache.LineShift, true)
	}
	c.uncore.StoreWrite(c.cfg.ID, w.lineAddr, w.vaddr)
}

// checkLateDisambiguation catches the ordering violation the EMC cannot see:
// an older store resolving to the same address as a younger load the EMC
// already executed. The affected chain must be cancelled (§4.3).
func (c *Core) checkLateDisambiguation(sIdx int32) {
	if !c.cfg.EMCEnabled {
		return
	}
	st := c.slot(sIdx)
	for _, lIdx := range c.lq {
		le := c.slot(lIdx)
		if c.seq[lIdx] <= c.seq[sIdx] || !le.inChain || !c.addrValid[lIdx] || le.chainRef == nil {
			continue
		}
		if le.vaddr == st.vaddr {
			c.conflicted = append(c.conflicted, le.chainRef)
			le.chainRef = nil
		}
	}
}

// TakeConflictedChains drains chains caught by late disambiguation; the
// system aborts them at the EMC.
func (c *Core) TakeConflictedChains() []*Chain {
	if len(c.conflicted) == 0 {
		return nil
	}
	out := c.conflicted
	c.conflicted = nil
	return out
}

// BranchPredictor exposes the hybrid predictor (nil when the core uses
// trace-carried mispredict flags).
func (c *Core) BranchPredictor() *bpred.Predictor { return c.bp }

// ShootdownTLB removes a translation from the core's TLB (the OS-initiated
// TLB-shootdown path; the system propagates it to the EMC TLBs via the
// PTE's residence bit, §4.1.4).
func (c *Core) ShootdownTLB(vaddr uint64) {
	c.tlb.Invalidate(vaddr, c.pt.Shift())
}

// FullWindowStalled reports whether the core is stalled with a full window
// and a load with an outstanding LLC miss blocking retirement — the paper's
// chain-generation trigger state. "Full window" means dispatch is blocked:
// either the ROB is full or the reservation station is exhausted (on a
// dependence-heavy window the 92-entry RS fills well before the 256-entry
// ROB; both block the front end identically).
// NextEvent reports the earliest future cycle at which Tick can change
// architectural or statistical state (beyond the bulk counters SkipIdle
// credits). It is a lower bound: waking earlier is harmless because an idle
// Tick is a pure no-op, waking later would be a bug.
func (c *Core) NextEvent(now uint64) uint64 {
	if c.Finished() {
		return NoEvent
	}
	// Queues the per-cycle stages drain unconditionally.
	if len(c.storeBuf) > c.storeHead || len(c.readyQ) > 0 || len(c.conflicted) > 0 {
		return now + 1
	}
	// Parked loads churn through the retry sweep every cycle, but while each
	// one is still blocked on the same unresolved older store the sweep is a
	// fixed point: blockedLd -> readyQ -> blockedLd in identical order with no
	// counter or architectural change, so those cycles are skippable. The
	// blocking store resolves only through an event this function already
	// accounts for (a wheel completion waking it, or an external fill/ring
	// message that wakes the whole system). Loads parked for any other reason
	// (MSHR pressure) keep forcing per-cycle ticking.
	for _, idx := range c.blockedLd {
		bs := c.blockStore[idx]
		if bs < 0 || c.seq[bs] != c.blockSeq[idx] || !c.storeUnresolved(bs) {
			return now + 1
		}
	}
	if c.robCount > 0 && c.st[c.robHead] == stDone {
		return now + 1 // retirement progresses
	}
	// Chain generation or a runahead episode would fire on the next Tick.
	headSeq := c.seq[c.robHead]
	if c.cfg.EMCEnabled && len(c.chains) < c.cfg.MaxActiveChains &&
		c.FullWindowStalled() && c.DepCounterHigh() && headSeq != c.lastChainAttempt {
		return now + 1
	}
	if c.ra.Enabled && c.FullWindowStalled() && headSeq != c.lastRunahead {
		return now + 1
	}
	h := c.earliestEvent(now)
	// Generated chains become transmittable (or cancellable) at ReadyAt.
	for _, ch := range c.chains {
		if ch.GeneratedAt != 0 {
			continue
		}
		at := ch.ReadyAt
		if at <= now {
			at = now + 1
		}
		if at < h {
			h = at
		}
	}
	if d := c.dispatchHorizon(now); d < h {
		h = d
	}
	return h
}

// earliestEvent returns the earliest cycle > now holding a scheduled
// completion, or NoEvent. It walks the evMask occupancy bitmap starting at
// the bucket for now+1, wrapping around the wheel; because schedule()
// guarantees at-now < eventHorizon and complete() drains the current
// bucket, every set bit it can encounter is a genuine future completion.
func (c *Core) earliestEvent(now uint64) uint64 {
	if c.pendingEv == 0 {
		return NoEvent
	}
	start := (now + 1) % eventHorizon
	for off := uint64(0); off < eventHorizon; {
		b := (start + off) % eventHorizon
		if w := c.evMask[b>>6] >> (b & 63); w != 0 {
			return now + 1 + off + uint64(bits.TrailingZeros64(w))
		}
		off += 64 - (b & 63) // jump to the next word boundary
	}
	return NoEvent
}

// dispatchHorizon is the front end's contribution to NextEvent: the cycle
// fetch/dispatch next makes progress, or NoEvent when it is blocked on
// something that is itself an event (branch resolution, retirement freeing
// ROB/RS/LSQ space).
func (c *Core) dispatchHorizon(now uint64) uint64 {
	blockTill := c.fetchBlockedTill
	if c.icFillAt > blockTill {
		blockTill = c.icFillAt
	}
	if now < blockTill {
		return blockTill // SkipIdle credits FetchStallCycles over the gap
	}
	if c.fetchHold >= 0 {
		return NoEvent // waits for the mispredicted branch to issue
	}
	if c.robCount >= c.cfg.ROBSize || c.rsCount >= c.cfg.RSSize {
		return NoEvent // unblocked by retire/issue
	}
	if u := c.pendingFetch; u != nil {
		switch u.Op {
		case isa.OpLoad:
			if len(c.lq) >= c.cfg.LQSize {
				return NoEvent
			}
		case isa.OpStore:
			if len(c.sq) >= c.cfg.SQSize {
				return NoEvent
			}
		}
		return now + 1
	}
	if c.done {
		return NoEvent
	}
	return now + 1
}

// SkipIdle credits delta skipped cycles' worth of the per-cycle counters an
// idle Tick would have accumulated. It must only be called when
// NextEvent(now) > now+delta for every component in the system: the skipped
// Ticks are then pure no-ops apart from these counters.
func (c *Core) SkipIdle(now, delta uint64) {
	c.Stats.Cycles += delta
	if c.robCount > 0 {
		e := c.slot(int32(c.robHead))
		if c.st[c.robHead] != stDone {
			if c.remote[c.robHead] {
				c.Stats.RemoteHeadStall += delta
			}
			if c.ops[c.robHead] == isa.OpLoad && e.isLLCMiss && c.robCount == c.cfg.ROBSize {
				c.Stats.FullWindowStalls += delta
			}
			if c.robCount == c.cfg.ROBSize {
				c.Stats.ROBFullCycles += delta
			}
		}
	}
	blockTill := c.fetchBlockedTill
	if c.icFillAt > blockTill {
		blockTill = c.icFillAt
	}
	if now < blockTill || c.fetchHold >= 0 {
		c.Stats.FetchStallCycles += delta
	}
	// Debug counters (not part of Stats) follow the same per-cycle paths.
	if c.cfg.EMCEnabled {
		if len(c.chains) >= c.cfg.MaxActiveChains {
			c.DbgChainBusy += delta
		} else if c.FullWindowStalled() && !c.DepCounterHigh() {
			c.DbgCounterLow += delta
		}
	}
}

func (c *Core) FullWindowStalled() bool {
	if c.robCount == 0 {
		return false
	}
	if c.robCount < c.cfg.ROBSize && c.rsCount < c.cfg.RSSize {
		return false
	}
	return c.ops[c.robHead] == isa.OpLoad && c.st[c.robHead] == stIssued &&
		c.slot(int32(c.robHead)).isLLCMiss
}
