package bpred

import "testing"

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400100)
	for i := 0; i < 16; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("always-taken branch should predict taken")
	}
	// The last 12 updates must all have been correct.
	p2 := New(DefaultConfig())
	miss := 0
	for i := 0; i < 100; i++ {
		if p2.Update(pc, true) {
			miss++
		}
	}
	if miss > 3 {
		t.Errorf("%d mispredicts on an always-taken branch", miss)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400200)
	miss := 0
	for i := 0; i < 100; i++ {
		if p.Update(pc, false) {
			miss++
		}
	}
	if miss > 4 {
		t.Errorf("%d mispredicts on a never-taken branch", miss)
	}
}

// TestGsharePattern: a strictly alternating branch defeats bimodal but is
// learnable from global history; the chooser must migrate to gshare.
func TestGsharePattern(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400300)
	taken := false
	// Warm up.
	for i := 0; i < 200; i++ {
		p.Update(pc, taken)
		taken = !taken
	}
	miss := 0
	for i := 0; i < 200; i++ {
		if p.Update(pc, taken) {
			miss++
		}
		taken = !taken
	}
	if miss > 10 {
		t.Errorf("alternating pattern: %d/200 mispredicts after warmup", miss)
	}
	if p.Stats.UsedGshare == 0 {
		t.Error("chooser never used gshare on a history-correlated branch")
	}
}

// TestLoopPattern: taken N-1 times then not-taken once — gshare should get
// the loop exit after warmup.
func TestLoopPattern(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400400)
	const trip = 8
	run := func(iters int) int {
		miss := 0
		for i := 0; i < iters; i++ {
			taken := i%trip != trip-1
			if p.Update(pc, taken) {
				miss++
			}
		}
		return miss
	}
	run(400) // warmup
	miss := run(400)
	// A bimodal-only predictor would miss every loop exit: 400/8 = 50.
	if miss >= 50 {
		t.Errorf("loop exits not learned: %d/400 mispredicts", miss)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400500)
	x := uint64(88172645463325252)
	miss := 0
	const n = 4000
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if p.Update(pc, x&1 == 0) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branch mispredict rate %.2f far from chance", rate)
	}
}

func TestMispredictRateAccounting(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Error("empty predictor should report 0")
	}
	p.Predict(0x400000)
	p.Update(0x400000, true)
	if p.Stats.Lookups != 1 {
		t.Errorf("lookups = %d", p.Stats.Lookups)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two size")
		}
	}()
	New(Config{BimodalEntries: 1000, GshareEntries: 4096, ChooserEntries: 4096, HistoryBits: 12})
}
