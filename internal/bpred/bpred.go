// Package bpred implements the hybrid branch predictor of Table 1: a
// bimodal (PC-indexed 2-bit counter) component, a gshare (global-history ⊕
// PC) component, and a chooser table that learns per-branch which component
// to trust — the classic McFarling combining predictor.
//
// The simulator's default configuration draws mispredictions from the trace
// profiles (standard trace-driven practice, and what the workload
// calibration targets); setting cpu.Config.UseBranchPredictor replaces the
// trace flags with this predictor's organic behaviour on the trace's
// taken/not-taken outcomes.
package bpred

// Config sizes the predictor tables (entries must be powers of two).
type Config struct {
	BimodalEntries int
	GshareEntries  int
	ChooserEntries int
	HistoryBits    int
}

// DefaultConfig returns a 4K/4K/4K hybrid with 12 history bits.
func DefaultConfig() Config {
	return Config{BimodalEntries: 4096, GshareEntries: 4096, ChooserEntries: 4096, HistoryBits: 12}
}

// Stats counts predictor activity.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
	// Component attribution: which component the chooser used.
	UsedGshare  uint64
	UsedBimodal uint64
}

// Predictor is one core's hybrid branch predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating: >=2 predicts taken
	gshare  []uint8
	chooser []uint8 // >=2 prefers gshare
	history uint64

	Stats Stats
}

// New builds a predictor; it panics on non-power-of-two table sizes.
func New(cfg Config) *Predictor {
	for _, n := range []int{cfg.BimodalEntries, cfg.GshareEntries, cfg.ChooserEntries} {
		if n <= 0 || n&(n-1) != 0 {
			panic("bpred: table sizes must be powers of two")
		}
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalEntries),
		gshare:  make([]uint8, cfg.GshareEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
	}
	// Weakly-taken initialization, weakly-prefer-bimodal chooser.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	return p
}

func (p *Predictor) bIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) gIdx(pc uint64) int {
	h := p.history & (1<<uint(p.cfg.HistoryBits) - 1)
	return int(((pc >> 2) ^ h) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) cIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.ChooserEntries-1))
}

// Predict returns the predicted direction for a branch at pc without
// training (Update is predict-and-train in one step).
func (p *Predictor) Predict(pc uint64) bool {
	if p.chooser[p.cIdx(pc)] >= 2 {
		return p.gshare[p.gIdx(pc)] >= 2
	}
	return p.bimodal[p.bIdx(pc)] >= 2
}

// Update trains the predictor with the branch's actual outcome and returns
// whether the prediction (re-derived from pre-update state) was wrong.
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	p.Stats.Lookups++
	bi, gi, ci := p.bIdx(pc), p.gIdx(pc), p.cIdx(pc)
	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	used := bPred
	if p.chooser[ci] >= 2 {
		used = gPred
		p.Stats.UsedGshare++
	} else {
		p.Stats.UsedBimodal++
	}
	mispredicted = used != taken

	// Chooser trains toward the component that was right (only when they
	// disagree).
	if bPred != gPred {
		if gPred == taken {
			bump(&p.chooser[ci], true)
		} else {
			bump(&p.chooser[ci], false)
		}
	}
	bump(&p.bimodal[bi], taken)
	bump(&p.gshare[gi], taken)
	p.history = p.history<<1 | b2u(taken)
	if mispredicted {
		p.Stats.Mispredicts++
	}
	return mispredicted
}

// MispredictRate returns lifetime mispredictions per lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Stats.Lookups == 0 {
		return 0
	}
	return float64(p.Stats.Mispredicts) / float64(p.Stats.Lookups)
}

func bump(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
