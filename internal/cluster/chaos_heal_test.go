// Self-healing chaos schedules: seeded scenarios that exercise the heal
// paths specifically — a node joining mid-sweep (ring handover), a killed
// node restarting empty and backfilling (anti-entropy recovery), and a
// flapping peer (breaker trips and half-open recovery) — with the heal
// failpoints (digest skip, backfill fetch failure, handover ack loss) armed
// probabilistically on top. The invariants are the same as the base chaos
// suite: no lost, duplicated, or torn results.
//
// Failpoints are process-global, so schedules run sequentially — no
// t.Parallel anywhere in this file.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

func TestClusterHealSchedules(t *testing.T) {
	pool := clusterChaosPool()
	fault.DisableAll()
	refs := make([]uint64, len(pool))
	for i, cfg := range pool {
		refs[i] = runTiny(t, cfg).Hash()
	}
	n := clusterChaosSchedules(t)
	for seed := 1; seed <= n; seed++ {
		t.Run(fmt.Sprintf("heal-%03d", seed), func(t *testing.T) {
			runClusterHealSchedule(t, int64(seed), pool, refs)
		})
	}
}

// armHealChaos arms a random subset of the self-healing failpoints. None of
// these can fail a job — a lost handover ack reclaims, a failed backfill
// retries next round — so the schedule asserts every job ends done.
func armHealChaos(t *testing.T, rng *rand.Rand) string {
	desc := ""
	arm := func(name string, trig fault.Trigger) {
		p, ok := fault.Lookup(name)
		if !ok {
			t.Fatalf("failpoint %s not registered", name)
		}
		p.Enable(trig)
		desc += fmt.Sprintf(" %s=%+v", name, trig)
	}
	prob := func(p float64) fault.Trigger {
		return fault.Trigger{Prob: p, Seed: rng.Uint64() | 1}
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterAntiEntropyDigest, prob(0.2+0.2*rng.Float64()))
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterAntiEntropyFetch, prob(0.2+0.2*rng.Float64()))
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterHandoverAck, prob(0.3))
	}
	if rng.Float64() < 0.4 {
		arm(fault.SiteClusterReplicateSend, prob(0.2+0.3*rng.Float64()))
	}
	return desc
}

func runClusterHealSchedule(t *testing.T, seed int64, pool []sim.Config, refs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)

	scfg := func(int) service.Config {
		return service.Config{
			Workers:          1 + rng.Intn(2),
			QueueCap:         16 + rng.Intn(16),
			CacheCap:         64,
			MaxRetries:       2,
			ProgressInterval: 500,
		}
	}
	heartbeat := time.Duration(5+rng.Intn(10)) * time.Millisecond
	opts := func(i int) cluster.Options {
		return cluster.Options{
			HeartbeatInterval:   heartbeat,
			SuspectAfter:        40 * time.Millisecond,
			PollInterval:        2 * time.Millisecond,
			StealThreshold:      1 + rng.Intn(2),
			DelegationTimeout:   500 * time.Millisecond,
			AntiEntropyInterval: time.Duration(10+rng.Intn(15)) * time.Millisecond,
			Weight:              1 + i%2, // heterogeneous ring on purpose
			BreakerThreshold:    3,
			BreakerCooldown:     time.Duration(30+rng.Intn(50)) * time.Millisecond,
		}
	}
	f := newFabricOpts(t, 3, scfg, opts)
	faults := armHealChaos(t, rng)
	scenario := []string{"join", "recover", "flap"}[rng.Intn(3)]

	// Burst to node0 (never killed), like the base chaos suite.
	type tracked struct {
		j    *service.Job
		pool int
	}
	var jobs []tracked
	total := 8 + rng.Intn(8)
	for i := 0; i < total; i++ {
		ci := rng.Intn(len(pool))
		j, err := f.Nodes[0].Submit(fmt.Sprintf("client%d", rng.Intn(3)), pool[ci])
		if err != nil {
			if !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("submit (scenario=%s faults:%s): %v", scenario, faults, err)
			}
			continue
		}
		jobs = append(jobs, tracked{j: j, pool: ci})
		if rng.Float64() < 0.3 {
			time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
		}
	}

	// Scenario mischief, concurrent with the sweep (rng-driven, replayable).
	killIdx := -1
	var joined *cluster.Node
	switch scenario {
	case "join":
		time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
		var err error
		joined, err = f.AddNode(scfg(3), opts(3))
		if err != nil {
			t.Fatalf("join mid-sweep: %v", err)
		}
	case "recover":
		killIdx = 1 + rng.Intn(2)
		time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
		f.Kill(killIdx)
	case "flap":
		peer := fmt.Sprintf("node%d", 1+rng.Intn(2))
		for i := 0; i < 3+rng.Intn(3); i++ {
			f.Transport.Partition("node0", peer)
			time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
			f.Transport.Heal("node0", peer)
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		}
	}

	// Heal failpoints cannot fail a job, and node0 survives every scenario:
	// every tracked job must end done with its reference bytes.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, tr := range jobs {
		res, err := tr.j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %s: %v (scenario=%s faults:%s)", tr.j.Status().ID, err, scenario, faults)
		}
		if got, want := res.Hash(), refs[tr.pool]; got != want {
			t.Fatalf("torn result: job %s hash %#x != reference %#x (scenario=%s faults:%s)",
				tr.j.Status().ID, got, want, scenario, faults)
		}
	}

	// Disarm before the bookkeeping sweep; the fabric keeps running.
	fault.DisableAll()

	nodes := f.Nodes
	if joined != nil && len(nodes) < 4 {
		nodes = append(append([]*cluster.Node(nil), nodes...), joined)
	}
	for i, n := range nodes {
		if i == killIdx {
			continue
		}
		deadline := time.Now().Add(10 * time.Second)
		st := n.Service().Stats()
		for st.Done+st.Failed+st.Cancelled != st.Submitted && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			st = n.Service().Stats()
		}
		if st.Done+st.Failed+st.Cancelled != st.Submitted {
			t.Fatalf("node%d books do not balance: %+v (scenario=%s faults:%s)", i, st, scenario, faults)
		}
		for pi, cfg := range pool {
			key, _ := service.CacheKey(&cfg)
			if res, ok := n.Service().PeekResult(key); ok && res.Hash() != refs[pi] {
				t.Fatalf("node%d cache holds a torn result for pool[%d] (scenario=%s faults:%s)", i, pi, scenario, faults)
			}
		}
	}

	switch scenario {
	case "recover":
		// Restart the kill victim with an empty cache: anti-entropy must
		// converge it to node0's record set, byte-for-byte.
		restarted, err := f.Restart(killIdx, scfg(killIdx), opts(killIdx))
		if err != nil {
			t.Fatalf("restart node%d: %v", killIdx, err)
		}
		wantKeys := f.Nodes[0].Service().ResultKeys()
		deadline := time.Now().Add(15 * time.Second)
		for {
			missing := 0
			for _, k := range wantKeys {
				if _, ok := restarted.Service().PeekResult(k); !ok {
					missing++
				}
			}
			if missing == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("restarted node%d still missing %d/%d records (faults:%s)",
					killIdx, missing, len(wantKeys), faults)
			}
			time.Sleep(5 * time.Millisecond)
		}
		for pi, cfg := range pool {
			key, _ := service.CacheKey(&cfg)
			if res, ok := restarted.Service().PeekResult(key); ok && res.Hash() != refs[pi] {
				t.Fatalf("restarted node%d backfilled a torn result for pool[%d]", killIdx, pi)
			}
		}
	case "flap":
		// Once healed, half-open probes must close the breaker: every peer
		// row on node0 returns to alive.
		deadline := time.Now().Add(10 * time.Second)
		for {
			allAlive := true
			for _, row := range f.Nodes[0].Service().Stats().Nodes {
				if row.State != "self" && row.State != "alive" {
					allAlive = false
				}
			}
			if allAlive {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("breakers never closed after the flapping stopped: %+v (faults:%s)",
					f.Nodes[0].Service().Stats().Nodes, faults)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
