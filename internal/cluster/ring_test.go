package cluster_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// TestRingOwnerAgreesAcrossAddOrder: ownership must be a pure function of
// the member set, never of the order members were learned in — that is what
// lets every node route without a coordination round.
func TestRingOwnerAgreesAcrossAddOrder(t *testing.T) {
	a := cluster.NewRing(0)
	b := cluster.NewRing(0)
	for _, id := range []string{"node0", "node1", "node2", "node3"} {
		a.Add(id)
	}
	for _, id := range []string{"node3", "node1", "node0", "node2"} {
		b.Add(id)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("fp:%d", i)
		if got, want := b.Owner(key, nil), a.Owner(key, nil); got != want {
			t.Fatalf("owner(%q) differs by add order: %q vs %q", key, got, want)
		}
	}
}

// TestRingOwnerSkipsDead: a dead owner's keys fall to the next distinct live
// node, deterministically, and fall back when the node revives.
func TestRingOwnerSkipsDead(t *testing.T) {
	r := cluster.NewRing(0)
	r.Add("node0")
	r.Add("node1")
	r.Add("node2")
	alive := func(string) bool { return false }
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fp:%d", i)
		owner := r.Owner(key, nil)
		if owner == "" {
			t.Fatalf("no owner for %q on a populated ring", key)
		}
		dead := func(n string) bool { return n == owner }
		next := r.Owner(key, dead)
		if next == owner || next == "" {
			t.Fatalf("key %q: dead owner %q not skipped (got %q)", key, owner, next)
		}
		// Two independent evaluations agree (the re-dispatch rule is stable).
		if again := r.Owner(key, dead); again != next {
			t.Fatalf("key %q: failover owner unstable: %q vs %q", key, next, again)
		}
		if back := r.Owner(key, alive); back != owner {
			t.Fatalf("key %q: revival did not restore ownership: %q vs %q", key, back, owner)
		}
	}
	// All members rejected -> no owner.
	if got := r.Owner("fp:0", func(string) bool { return true }); got != "" {
		t.Fatalf("all-dead ring returned owner %q", got)
	}
}

// TestRingEmpty: an empty ring owns nothing.
func TestRingEmpty(t *testing.T) {
	if got := cluster.NewRing(0).Owner("anything", nil); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
}

// TestRingDistribution: with 64 virtual points per member no node should be
// starved — a sanity bound, not a uniformity claim.
func TestRingDistribution(t *testing.T) {
	r := cluster.NewRing(0)
	nodes := []string{"node0", "node1", "node2"}
	for _, id := range nodes {
		r.Add(id)
	}
	counts := map[string]int{}
	const keys = 9000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("fp:%x", i*7919), nil)]++
	}
	for _, id := range nodes {
		if counts[id] < keys/10 {
			t.Fatalf("node %s owns only %d/%d keys — ring badly skewed: %v", id, counts[id], keys, counts)
		}
	}
}

// TestRingAddIdempotent: re-adding a member must not double its points (and
// so must not shift ownership).
func TestRingAddIdempotent(t *testing.T) {
	r := cluster.NewRing(0)
	r.Add("node0")
	r.Add("node1")
	before := make(map[string]string)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("fp:%d", i)
		before[k] = r.Owner(k, nil)
	}
	r.Add("node0")
	r.Add("node1")
	for k, want := range before {
		if got := r.Owner(k, nil); got != want {
			t.Fatalf("re-adding members moved key %q: %q -> %q", k, want, got)
		}
	}
	if got := len(r.Nodes()); got != 2 {
		t.Fatalf("ring has %d members, want 2", got)
	}
}
