package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/service"
)

// LocalTransport wires N in-process nodes together by direct method calls,
// with kill and partition switches so tests and the chaos suite can model
// node failures without processes. Kills and partitions are symmetric: a
// down node neither receives nor emits, a cut pair is cut both ways.
type LocalTransport struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
	cut   map[[2]string]bool
}

// NewLocalTransport builds an empty in-process switchboard.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: map[string]*Node{}, down: map[string]bool{}, cut: map[[2]string]bool{}}
}

// Attach registers n and installs its per-node connection (the transport
// must know the caller to apply partitions).
func (lt *LocalTransport) Attach(n *Node) {
	lt.mu.Lock()
	lt.nodes[n.ID()] = n
	lt.mu.Unlock()
	n.SetTransport(&localConn{lt: lt, from: n.ID()})
}

// Kill makes id unreachable in both directions (the node-kill model: the
// process is gone; callers should also Close the node's service).
func (lt *LocalTransport) Kill(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.down[id] = true
}

// Revive undoes Kill.
func (lt *LocalTransport) Revive(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.down, id)
}

// Partition cuts the pair a↔b in both directions.
func (lt *LocalTransport) Partition(a, b string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.cut[pairKey(a, b)] = true
}

// Heal undoes Partition for the pair.
func (lt *LocalTransport) Heal(a, b string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.cut, pairKey(a, b))
}

// HealAll clears every partition (not kills).
func (lt *LocalTransport) HealAll() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.cut = map[[2]string]bool{}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// reach resolves the target node if the path from→to is up.
func (lt *LocalTransport) reach(from, to string) (*Node, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.down[from] || lt.down[to] || lt.cut[pairKey(from, to)] {
		return nil, ErrUnreachable
	}
	n, ok := lt.nodes[to]
	if !ok {
		return nil, ErrUnreachable
	}
	return n, nil
}

// localConn is one node's view of the switchboard.
type localConn struct {
	lt   *LocalTransport
	from string
}

// mapLocalErr converts receiver-side service errors into transport-level
// classifications (what an HTTP status code would have carried).
func mapLocalErr(err error) error {
	switch err {
	case nil:
		return nil
	case service.ErrQueueFull:
		return ErrBusy
	case service.ErrDraining:
		return ErrUnreachable
	default:
		return err
	}
}

func (c *localConn) Submit(ctx context.Context, node string, req SubmitRequest) (service.Status, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return service.Status{}, err
	}
	st, err := n.HandleSubmit(req)
	if err != nil {
		return service.Status{}, mapLocalErr(err)
	}
	return st, nil
}

func (c *localConn) Status(ctx context.Context, node, jobID string) (service.Status, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return service.Status{}, err
	}
	return n.HandleStatus(jobID)
}

func (c *localConn) Cancel(ctx context.Context, node, jobID string) error {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return err
	}
	return n.HandleCancel(jobID)
}

func (c *localConn) Fetch(ctx context.Context, node, key string) ([]byte, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return nil, err
	}
	return n.HandleFetch(key)
}

func (c *localConn) Replicate(ctx context.Context, node string, frame []byte) error {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return err
	}
	return n.HandleReplicate(frame)
}

func (c *localConn) Ping(ctx context.Context, node string) (Health, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return Health{}, err
	}
	return n.HandlePing(), nil
}

func (c *localConn) Steal(ctx context.Context, node string) (*StolenJob, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return nil, err
	}
	return n.HandleSteal()
}

func (c *localConn) Join(ctx context.Context, node string, mem Member) ([]Member, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return nil, err
	}
	return n.HandleJoin(mem), nil
}

// ---------------------------------------------------------------------------
// Fabric: an in-process N-node cluster.

// FabricConfig sizes a local fabric. Node ids are "node0" … "nodeN-1".
type FabricConfig struct {
	// Nodes is the member count (default 3).
	Nodes int
	// Service builds node i's scheduler config (nil = service defaults).
	Service func(i int) service.Config
	// Opts overrides node i's cluster options; ID is filled in afterwards
	// (nil = defaults).
	Opts func(i int) Options
}

// Fabric is an in-process cluster: N services, N nodes, one LocalTransport,
// full-mesh membership. Tests and local experiments drive it directly; the
// golden figure tests prove it is byte-equivalent to one process.
type Fabric struct {
	Transport *LocalTransport
	Nodes     []*Node
	svcs      []*service.Service
	killed    []bool
}

// NewFabric builds and starts an in-process fabric.
func NewFabric(fc FabricConfig) (*Fabric, error) {
	if fc.Nodes <= 0 {
		fc.Nodes = 3
	}
	f := &Fabric{Transport: NewLocalTransport(), killed: make([]bool, fc.Nodes)}
	for i := 0; i < fc.Nodes; i++ {
		var scfg service.Config
		if fc.Service != nil {
			scfg = fc.Service(i)
		}
		svc, err := service.Open(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: fabric node %d: %w", i, err)
		}
		var opts Options
		if fc.Opts != nil {
			opts = fc.Opts(i)
		}
		opts.ID = fmt.Sprintf("node%d", i)
		n := New(svc, opts)
		f.Transport.Attach(n)
		f.svcs = append(f.svcs, svc)
		f.Nodes = append(f.Nodes, n)
	}
	for _, n := range f.Nodes {
		for _, m := range f.Nodes {
			if n != m {
				n.AddMember(Member{ID: m.ID()})
			}
		}
	}
	for _, n := range f.Nodes {
		n.Start()
	}
	return f, nil
}

// Kill models a node crash: unreachable on the wire, then its service is
// closed (running jobs cancel at the next cycle boundary). Idempotent.
func (f *Fabric) Kill(i int) {
	if f.killed[i] {
		return
	}
	f.killed[i] = true
	f.Transport.Kill(f.Nodes[i].ID())
	f.Nodes[i].Close()
	_ = f.svcs[i].Close()
}

// Close shuts the surviving nodes and services down.
func (f *Fabric) Close() {
	for i := range f.Nodes {
		if !f.killed[i] {
			f.Nodes[i].Close()
		}
	}
	for i, svc := range f.svcs {
		if !f.killed[i] {
			_ = svc.Close()
		}
	}
}
