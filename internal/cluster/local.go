package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/service"
)

// LocalTransport wires N in-process nodes together by direct method calls,
// with kill and partition switches so tests and the chaos suite can model
// node failures without processes. Kills and partitions are symmetric: a
// down node neither receives nor emits, a cut pair is cut both ways.
type LocalTransport struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
	cut   map[[2]string]bool
}

// NewLocalTransport builds an empty in-process switchboard.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{nodes: map[string]*Node{}, down: map[string]bool{}, cut: map[[2]string]bool{}}
}

// Attach registers n and installs its per-node connection (the transport
// must know the caller to apply partitions).
func (lt *LocalTransport) Attach(n *Node) {
	lt.mu.Lock()
	lt.nodes[n.ID()] = n
	lt.mu.Unlock()
	n.SetTransport(&localConn{lt: lt, from: n.ID()})
}

// Kill makes id unreachable in both directions (the node-kill model: the
// process is gone; callers should also Close the node's service).
func (lt *LocalTransport) Kill(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.down[id] = true
}

// Revive undoes Kill.
func (lt *LocalTransport) Revive(id string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.down, id)
}

// Partition cuts the pair a↔b in both directions.
func (lt *LocalTransport) Partition(a, b string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.cut[pairKey(a, b)] = true
}

// Heal undoes Partition for the pair.
func (lt *LocalTransport) Heal(a, b string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	delete(lt.cut, pairKey(a, b))
}

// HealAll clears every partition (not kills).
func (lt *LocalTransport) HealAll() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.cut = map[[2]string]bool{}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// reach resolves the target node if the path from→to is up.
func (lt *LocalTransport) reach(from, to string) (*Node, error) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.down[from] || lt.down[to] || lt.cut[pairKey(from, to)] {
		return nil, ErrUnreachable
	}
	n, ok := lt.nodes[to]
	if !ok {
		return nil, ErrUnreachable
	}
	return n, nil
}

// localConn is one node's view of the switchboard.
type localConn struct {
	lt   *LocalTransport
	from string
}

// conn resolves the target node and, since a delivered RPC is proof the
// caller is up, resets the receiver's suspect timer for the caller — the
// local-transport form of "any successful RPC from a peer counts as a
// heartbeat".
func (c *localConn) conn(node string) (*Node, error) {
	n, err := c.lt.reach(c.from, node)
	if err != nil {
		return nil, err
	}
	n.MarkPeerSeen(c.from)
	return n, nil
}

// mapLocalErr converts receiver-side service errors into transport-level
// classifications (what an HTTP status code would have carried).
func mapLocalErr(err error) error {
	switch err {
	case nil:
		return nil
	case service.ErrQueueFull:
		return ErrBusy
	case service.ErrDraining:
		return ErrUnreachable
	default:
		return err
	}
}

func (c *localConn) Submit(ctx context.Context, node string, req SubmitRequest) (service.Status, error) {
	n, err := c.conn(node)
	if err != nil {
		return service.Status{}, err
	}
	st, err := n.HandleSubmit(req)
	if err != nil {
		return service.Status{}, mapLocalErr(err)
	}
	return st, nil
}

func (c *localConn) Status(ctx context.Context, node, jobID string) (service.Status, error) {
	n, err := c.conn(node)
	if err != nil {
		return service.Status{}, err
	}
	return n.HandleStatus(jobID)
}

func (c *localConn) Cancel(ctx context.Context, node, jobID string) error {
	n, err := c.conn(node)
	if err != nil {
		return err
	}
	return n.HandleCancel(jobID)
}

func (c *localConn) Fetch(ctx context.Context, node, key string) ([]byte, error) {
	n, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	return n.HandleFetch(key)
}

func (c *localConn) Replicate(ctx context.Context, node string, frame []byte) error {
	n, err := c.conn(node)
	if err != nil {
		return err
	}
	return n.HandleReplicate(frame)
}

func (c *localConn) Ping(ctx context.Context, node string) (Health, error) {
	n, err := c.conn(node)
	if err != nil {
		return Health{}, err
	}
	return n.HandlePing(), nil
}

func (c *localConn) Steal(ctx context.Context, node string) (*StolenJob, error) {
	n, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	return n.HandleSteal()
}

func (c *localConn) Join(ctx context.Context, node string, mem Member) ([]Member, error) {
	n, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	return n.HandleJoin(mem), nil
}

func (c *localConn) Digest(ctx context.Context, node string) (Digest, error) {
	n, err := c.conn(node)
	if err != nil {
		return Digest{}, err
	}
	return n.HandleDigest(), nil
}

func (c *localConn) Keys(ctx context.Context, node string, bucket int) ([]string, error) {
	n, err := c.conn(node)
	if err != nil {
		return nil, err
	}
	return n.HandleKeys(bucket), nil
}

func (c *localConn) Handover(ctx context.Context, node string, req HandoverRequest) error {
	n, err := c.conn(node)
	if err != nil {
		return err
	}
	return n.HandleHandover(req)
}

// ---------------------------------------------------------------------------
// Fabric: an in-process N-node cluster.

// FabricConfig sizes a local fabric. Node ids are "node0" … "nodeN-1".
type FabricConfig struct {
	// Nodes is the member count (default 3).
	Nodes int
	// Service builds node i's scheduler config (nil = service defaults).
	Service func(i int) service.Config
	// Opts overrides node i's cluster options; ID is filled in afterwards
	// (nil = defaults).
	Opts func(i int) Options
}

// Fabric is an in-process cluster: N services, N nodes, one LocalTransport,
// full-mesh membership. Tests and local experiments drive it directly; the
// golden figure tests prove it is byte-equivalent to one process.
type Fabric struct {
	Transport *LocalTransport
	Nodes     []*Node
	svcs      []*service.Service
	killed    []bool
}

// NewFabric builds and starts an in-process fabric.
func NewFabric(fc FabricConfig) (*Fabric, error) {
	if fc.Nodes <= 0 {
		fc.Nodes = 3
	}
	f := &Fabric{Transport: NewLocalTransport(), killed: make([]bool, fc.Nodes)}
	for i := 0; i < fc.Nodes; i++ {
		var scfg service.Config
		if fc.Service != nil {
			scfg = fc.Service(i)
		}
		svc, err := service.Open(scfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: fabric node %d: %w", i, err)
		}
		var opts Options
		if fc.Opts != nil {
			opts = fc.Opts(i)
		}
		opts.ID = fmt.Sprintf("node%d", i)
		n := New(svc, opts)
		f.Transport.Attach(n)
		f.svcs = append(f.svcs, svc)
		f.Nodes = append(f.Nodes, n)
	}
	for _, n := range f.Nodes {
		for _, m := range f.Nodes {
			if n != m {
				n.AddMember(m.selfMember())
			}
		}
	}
	for _, n := range f.Nodes {
		n.Start()
	}
	return f, nil
}

// AddNode grows a running fabric: it builds "node<len>" with the given
// service config and options, starts it, and joins it through the first
// surviving member — which triggers gossip and the join-time handover of
// queued keys the newcomer now owns.
func (f *Fabric) AddNode(scfg service.Config, opts Options) (*Node, error) {
	i := len(f.Nodes)
	svc, err := service.Open(scfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: fabric node %d: %w", i, err)
	}
	opts.ID = fmt.Sprintf("node%d", i)
	n := New(svc, opts)
	f.Transport.Attach(n)
	f.svcs = append(f.svcs, svc)
	f.Nodes = append(f.Nodes, n)
	f.killed = append(f.killed, false)
	n.Start()
	if seed := f.seedFor(i); seed != "" {
		if err := n.JoinVia(context.Background(), seed); err != nil {
			return n, fmt.Errorf("cluster: fabric node %d join: %w", i, err)
		}
	}
	return n, nil
}

// Restart revives a previously killed slot with a fresh service and node
// under the same id — the crash-recovery model. The restarted node rejoins
// through a surviving member; peers that marked it dead revive it on their
// next successful probe, and anti-entropy backfills whatever its durable
// cache missed while down (point scfg at the same cache directory to model
// a restart with surviving disk state).
func (f *Fabric) Restart(i int, scfg service.Config, opts Options) (*Node, error) {
	if !f.killed[i] {
		return f.Nodes[i], nil
	}
	svc, err := service.Open(scfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: fabric node %d restart: %w", i, err)
	}
	opts.ID = fmt.Sprintf("node%d", i)
	n := New(svc, opts)
	f.Transport.Attach(n) // replaces the dead instance under the same id
	f.svcs[i] = svc
	f.Nodes[i] = n
	f.killed[i] = false
	f.Transport.Revive(n.ID())
	n.Start()
	if seed := f.seedFor(i); seed != "" {
		if err := n.JoinVia(context.Background(), seed); err != nil {
			return n, fmt.Errorf("cluster: fabric node %d rejoin: %w", i, err)
		}
	}
	return n, nil
}

// seedFor picks the first surviving member other than slot i.
func (f *Fabric) seedFor(i int) string {
	for j, m := range f.Nodes {
		if j != i && !f.killed[j] {
			return m.ID()
		}
	}
	return ""
}

// Kill models a node crash: unreachable on the wire, then its service is
// closed (running jobs cancel at the next cycle boundary). Idempotent.
func (f *Fabric) Kill(i int) {
	if f.killed[i] {
		return
	}
	f.killed[i] = true
	f.Transport.Kill(f.Nodes[i].ID())
	f.Nodes[i].Close()
	_ = f.svcs[i].Close()
}

// Close shuts the surviving nodes and services down.
func (f *Fabric) Close() {
	for i := range f.Nodes {
		if !f.killed[i] {
			f.Nodes[i].Close()
		}
	}
	for i, svc := range f.svcs {
		if !f.killed[i] {
			_ = svc.Close()
		}
	}
}
