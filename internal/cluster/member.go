package cluster

import (
	"sort"
	"sync"
	"time"
)

// Member is one fabric node's identity as exchanged through join: a stable
// id (the ring hashes it), for HTTP fabrics the advertised base URL, and
// the node's ring weight (virtual-point multiplier; 0 means the default 1).
// Weight travels with the member through join gossip so every node builds
// the same weighted ring.
type Member struct {
	ID     string `json:"id"`
	Addr   string `json:"addr,omitempty"`
	Weight int    `json:"weight,omitempty"`
}

// memberRow is a membership snapshot row (stats and tests).
type memberRow struct {
	Member
	Alive    bool
	Self     bool
	LastBeat time.Time
}

// membership is the liveness table: every node this node has heard of, with
// the last successful heartbeat. Members are never removed — a dead node is
// skipped by the ring's liveness predicate and revived by the next
// successful heartbeat, so a healed partition converges without a
// membership epoch protocol.
type membership struct {
	mu sync.Mutex
	m  map[string]*memberRow
}

func newMembership() *membership { return &membership{m: map[string]*memberRow{}} }

// upsert adds a member if unknown (returning true), or refreshes its
// address if it re-announced with one.
func (ms *membership) upsert(mem Member, self bool, now time.Time) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if row, ok := ms.m[mem.ID]; ok {
		if mem.Addr != "" {
			row.Addr = mem.Addr
		}
		return false
	}
	ms.m[mem.ID] = &memberRow{Member: mem, Alive: true, Self: self, LastBeat: now}
	return true
}

// addr resolves a member id to its advertised address.
func (ms *membership) addr(id string) (string, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	row, ok := ms.m[id]
	if !ok {
		return "", false
	}
	return row.Addr, true
}

// markDead records a failed reach of id (the fast path: a forward that got
// ErrUnreachable does not wait for the heartbeat sweep).
func (ms *membership) markDead(id string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if row, ok := ms.m[id]; ok && !row.Self {
		row.Alive = false
	}
}

// markAlive records a successful heartbeat of id.
func (ms *membership) markAlive(id string, now time.Time) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if row, ok := ms.m[id]; ok {
		row.Alive = true
		row.LastBeat = now
	}
}

// isDead is the ring's liveness predicate.
func (ms *membership) isDead(id string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	row, ok := ms.m[id]
	return ok && !row.Alive
}

// sweep marks every non-self member whose last heartbeat is older than
// timeout as dead.
func (ms *membership) sweep(now time.Time, timeout time.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, row := range ms.m {
		if !row.Self && row.Alive && now.Sub(row.LastBeat) > timeout {
			row.Alive = false
		}
	}
}

// peers lists every member except self, sorted by id (dead included — the
// heartbeat loop probes dead peers too, which is how they revive).
func (ms *membership) peers(selfID string) []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, len(ms.m))
	for _, row := range ms.m {
		if row.ID != selfID {
			out = append(out, row.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// alivePeers lists the currently live members except self, sorted by id.
func (ms *membership) alivePeers(selfID string) []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, len(ms.m))
	for _, row := range ms.m {
		if row.ID != selfID && row.Alive {
			out = append(out, row.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// list returns every member (the join response payload), sorted by id.
func (ms *membership) list() []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, len(ms.m))
	for _, row := range ms.m {
		out = append(out, row.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// rows snapshots the peer rows (stats), sorted by id, excluding self.
func (ms *membership) rows(selfID string) []memberRow {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]memberRow, 0, len(ms.m))
	for _, row := range ms.m {
		if row.ID != selfID {
			out = append(out, *row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
