// Self-healing layer tests: anti-entropy backfill, join-time queue
// handover, circuit-breaker degradation, and the any-RPC-resets-suspicion
// liveness rule. Failpoints are process-global, so no t.Parallel.
package cluster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

// armSite arms one failpoint by registry name.
func armSite(t *testing.T, name string, trig fault.Trigger) {
	t.Helper()
	p, ok := fault.Lookup(name)
	if !ok {
		t.Fatalf("failpoint %s not registered", name)
	}
	p.Enable(trig)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// peerRow finds the row for peer id in a node's Stats.Nodes.
func peerRow(n *cluster.Node, id string) (service.NodeStat, bool) {
	for _, row := range n.Service().Stats().Nodes {
		if row.Node == id {
			return row, true
		}
	}
	return service.NodeStat{}, false
}

// cfgsOwnedBy collects `count` distinct tiny configs whose keys the wanted
// node owns on an undisturbed `nodes`-member ring.
func cfgsOwnedBy(t *testing.T, nodes, ownerIdx, count int) []sim.Config {
	t.Helper()
	want := fmt.Sprintf("node%d", ownerIdx)
	var out []sim.Config
	for seed := uint64(1); seed < 16384 && len(out) < count; seed++ {
		cfg := tinyCfg(seed)
		key, ok := service.CacheKey(&cfg)
		if !ok {
			t.Fatal("tiny config unexpectedly uncacheable")
		}
		if ownerOf(nodes, key) == want {
			out = append(out, cfg)
		}
	}
	if len(out) < count {
		t.Fatalf("found only %d/%d seeds owned by %s", len(out), count, want)
	}
	return out
}

// TestAntiEntropyBackfill: with replication fully suppressed, a peer that
// holds none of the records converges to the full set through digest
// exchange and backfill alone, byte-identical to the source.
func TestAntiEntropyBackfill(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)
	// Drop every replica broadcast: anti-entropy is the only way records
	// can reach a peer.
	armSite(t, fault.SiteClusterReplicateSend, fault.Trigger{})

	opts := func(i int) cluster.Options {
		o := fastOpts(i)
		o.AntiEntropyInterval = 20 * time.Millisecond
		return o
	}
	f := newFabricOpts(t, 2, nil, opts)

	const jobs = 4
	keys := make([]string, 0, jobs)
	refs := make(map[string]uint64, jobs)
	for seed := uint64(1); seed <= jobs; seed++ {
		cfg := tinyCfg(seed)
		key, _ := service.CacheKey(&cfg)
		keys = append(keys, key)
		refs[key] = runTiny(t, cfg).Hash()
		j, err := f.Nodes[0].Service().Submit("t", cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := j.Wait(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}

	waitFor(t, 10*time.Second, "anti-entropy convergence on node1", func() bool {
		for _, k := range keys {
			if _, ok := f.Nodes[1].Service().PeekResult(k); !ok {
				return false
			}
		}
		return true
	})
	for _, k := range keys {
		res, _ := f.Nodes[1].Service().PeekResult(k)
		if res.Hash() != refs[k] {
			t.Fatalf("backfilled record %s hash %x, want %x", k, res.Hash(), refs[k])
		}
	}
	if got := f.Nodes[1].Counters().Backfilled; got < jobs {
		t.Fatalf("node1 backfilled %d records, want >= %d", got, jobs)
	}
	if f.Nodes[1].Counters().ReplRecv != 0 {
		t.Fatal("replication leaked despite the armed drop site — test premise broken")
	}
}

// TestJoinHandover: queued jobs whose keys a freshly joined node owns are
// handed over, executed there, and completed on the original node with the
// right bytes — while a parked job keeps the donor's worker busy the whole
// time, proving the handover (not local execution) did the work.
func TestJoinHandover(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)

	scfg := func(int) service.Config { return service.Config{Workers: 1, QueueCap: 64} }
	opts := func(i int) cluster.Options {
		o := fastOpts(i)
		o.StealThreshold = 1 << 20 // isolate handover from work stealing
		return o
	}
	f := newFabricOpts(t, 2, scfg, opts)

	// Park node0's single worker on a long-running job so the handover
	// candidates stay queued behind it.
	parker := tinyCfg(99999)
	parker.InstrPerCore = 5_000_000
	pj, err := f.Nodes[0].Service().Submit("parker", parker)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "parker running", func() bool {
		return f.Nodes[0].Service().Stats().Running == 1
	})

	const jobs = 3
	cfgs := cfgsOwnedBy(t, 3, 2, jobs) // owned by node2 once it joins
	refs := make([]uint64, jobs)
	handed := make([]*service.Job, jobs)
	for i, cfg := range cfgs {
		refs[i] = runTiny(t, cfg).Hash()
		handed[i], err = f.Nodes[0].Service().Submit("t", cfg)
		if err != nil {
			t.Fatal(err)
		}
	}

	joiner, err := f.AddNode(scfg(2), opts(2))
	if err != nil {
		t.Fatal(err)
	}

	for i, j := range handed {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := j.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("handed-over job %d: %v", i, err)
		}
		if res.Hash() != refs[i] {
			t.Fatalf("handed-over job %d hash %x, want %x", i, res.Hash(), refs[i])
		}
	}
	if got := f.Nodes[0].Counters().HandedOut; got != jobs {
		t.Fatalf("node0 handed out %d jobs, want %d", got, jobs)
	}
	if got := joiner.Counters().HandedIn; got != jobs {
		t.Fatalf("joiner accepted %d jobs, want %d", got, jobs)
	}
	// The parker never finished — node0's worker was busy throughout, so
	// the candidates cannot have executed locally.
	if pj.Status().State.Terminal() {
		t.Fatal("parker finished early; queue pressure premise broken")
	}
	_ = f.Nodes[0].Service().Cancel(pj.Status().ID)
}

// TestJoinHandoverLostAck: the receiver accepts the batch but the ack is
// lost (injected). The sender reclaims and re-executes locally; determinism
// makes the double execution benign and the job still completes with the
// reference bytes.
func TestJoinHandoverLostAck(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)
	armSite(t, fault.SiteClusterHandoverAck, fault.Trigger{})

	scfg := func(int) service.Config { return service.Config{Workers: 1, QueueCap: 64} }
	opts := func(i int) cluster.Options {
		o := fastOpts(i)
		o.StealThreshold = 1 << 20
		return o
	}
	f := newFabricOpts(t, 2, scfg, opts)

	parker := tinyCfg(99998)
	parker.InstrPerCore = 5_000_000
	pj, err := f.Nodes[0].Service().Submit("parker", parker)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "parker running", func() bool {
		return f.Nodes[0].Service().Stats().Running == 1
	})

	cfg := cfgsOwnedBy(t, 3, 2, 1)[0]
	ref := runTiny(t, cfg).Hash()
	j, err := f.Nodes[0].Service().Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddNode(scfg(2), opts(2)); err != nil {
		t.Fatal(err)
	}

	// The lost ack makes the sender reclaim: ExecuteNow runs the job on
	// the reclaiming goroutine even though node0's worker is parked.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != ref {
		t.Fatalf("job hash %x, want %x", res.Hash(), ref)
	}
	if got := f.Nodes[0].Counters().HandedOut; got != 0 {
		t.Fatalf("lost ack must not count as handed out, got %d", got)
	}
	_ = f.Nodes[0].Service().Cancel(pj.Status().ID)
}

// TestBreakerDegradesFlappingPeer: an unreachable peer trips the circuit
// breaker well before the suspect sweep would fire, shows up as "degraded"
// in Stats.Nodes, gets routed around without burning MaxHops, and recovers
// to "alive" through a half-open probe once the partition heals.
func TestBreakerDegradesFlappingPeer(t *testing.T) {
	fault.DisableAll()
	f := newFabricOpts(t, 2, nil, func(i int) cluster.Options {
		o := fastOpts(i)
		o.SuspectAfter = time.Hour // isolate the breaker from the sweep
		o.BreakerThreshold = 3
		o.BreakerCooldown = 100 * time.Millisecond
		return o
	})

	f.Transport.Partition("node0", "node1")
	waitFor(t, 5*time.Second, "node1 degraded on node0", func() bool {
		row, ok := peerRow(f.Nodes[0], "node1")
		return ok && row.State == "degraded"
	})
	if f.Nodes[0].Counters().BreakerTrips == 0 {
		t.Fatal("degraded state without a recorded breaker trip")
	}

	// A key node1 owns routes straight to local execution: the degraded
	// owner is skipped by the ring predicate, no MaxHops timeout burn.
	cfg := cfgOwnedBy(t, 2, 1)
	ref := runTiny(t, cfg).Hash()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	res, err := f.Nodes[0].Run(ctx, "t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != ref {
		t.Fatalf("degraded-mode result hash %x, want %x", res.Hash(), ref)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("degraded-mode execution took %v — routed into the dead peer?", elapsed)
	}
	if lf := f.Nodes[0].Counters().LocalFallback; lf != 0 {
		t.Fatalf("local fallback used %d times — owner() should have resolved to self directly", lf)
	}

	f.Transport.Heal("node0", "node1")
	waitFor(t, 10*time.Second, "node1 alive again on node0", func() bool {
		row, ok := peerRow(f.Nodes[0], "node1")
		return ok && row.State == "alive"
	})
}

// TestSuccessfulRPCResetsSuspectTimer: with every explicit heartbeat probe
// suppressed, a steady stream of successful replication RPCs alone keeps
// both peers out of the dead state — the regression test for "any
// successful RPC from a peer resets the suspect timer".
func TestSuccessfulRPCResetsSuspectTimer(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)
	armSite(t, fault.SiteClusterHeartbeat, fault.Trigger{}) // no probes at all

	// The suspect window must outlast one submit+wait iteration (which can
	// stretch well past 100ms under -race) but stay far below the run
	// length, so the sweep WOULD fire several times over without the
	// replication traffic crediting the peers.
	f := newFabricOpts(t, 2, nil, func(i int) cluster.Options {
		o := fastOpts(i)
		o.SuspectAfter = 400 * time.Millisecond
		return o
	})

	// Each fresh local completion on node0 broadcasts a replica to node1:
	// node0 credits node1 on the successful send, node1 credits node0 on
	// the successful receive — both suspect timers keep resetting with not
	// a single heartbeat flowing.
	deadline := time.Now().Add(2 * time.Second)
	for seed := uint64(1); time.Now().Before(deadline); seed++ {
		j, err := f.Nodes[0].Service().Submit("t", tinyCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := j.Wait(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		time.Sleep(10 * time.Millisecond)
	}

	if row, ok := peerRow(f.Nodes[0], "node1"); !ok || row.State != "alive" {
		t.Fatalf("node1 on node0: %+v — active replication did not keep it alive", row)
	}
	if row, ok := peerRow(f.Nodes[1], "node0"); !ok || row.State != "alive" {
		t.Fatalf("node0 on node1: %+v — inbound RPCs did not keep it alive", row)
	}
	if f.Nodes[0].Counters().ReplSent == 0 {
		t.Fatal("no replicas flowed — the liveness evidence premise is broken")
	}
}

// TestRestartBackfillsDurableCache: a killed node restarted with an empty
// cache converges to the survivor's durable record set via anti-entropy —
// the recover-and-backfill scenario at fabric scale.
func TestRestartBackfillsDurableCache(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)
	armSite(t, fault.SiteClusterReplicateSend, fault.Trigger{}) // anti-entropy only

	scfg := func(int) service.Config { return service.Config{Workers: 2, QueueCap: 64} }
	opts := func(i int) cluster.Options {
		o := fastOpts(i)
		o.AntiEntropyInterval = 20 * time.Millisecond
		return o
	}
	f := newFabricOpts(t, 2, scfg, opts)

	const jobs = 3
	keys := make([]string, 0, jobs)
	refs := make(map[string]uint64, jobs)
	for seed := uint64(1); seed <= jobs; seed++ {
		cfg := tinyCfg(seed)
		key, _ := service.CacheKey(&cfg)
		keys = append(keys, key)
		refs[key] = runTiny(t, cfg).Hash()
		j, err := f.Nodes[0].Service().Submit("t", cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := j.Wait(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}

	f.Kill(1)
	if _, err := f.Restart(1, scfg(1), opts(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "restarted node1 to backfill all records", func() bool {
		for _, k := range keys {
			if _, ok := f.Nodes[1].Service().PeekResult(k); !ok {
				return false
			}
		}
		return true
	})
	for _, k := range keys {
		res, _ := f.Nodes[1].Service().PeekResult(k)
		if res.Hash() != refs[k] {
			t.Fatalf("restarted node record %s hash %x, want %x", k, res.Hash(), refs[k])
		}
	}
}
