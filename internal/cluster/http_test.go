// HTTP fabric end-to-end: three real HTTP servers (the same wiring
// cmd/emcserve uses), bootstrap via the join endpoint, client submissions
// through POST /api/v1/jobs on a non-owner, and byte-identical result
// bodies regardless of which node served the request.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
)

// httpNode is one emcserve-shaped process: listener, service, node, server.
type httpNode struct {
	node *cluster.Node
	url  string
}

func startHTTPNode(t *testing.T, id string) *httpNode {
	return startHTTPNodeAuth(t, id, "")
}

// startHTTPNodeAuth is startHTTPNode with a shared cluster token: the
// handler guards /api/v1/cluster/* and the node's own transport presents
// the token, exactly like emcserve -cluster-token wires it.
func startHTTPNodeAuth(t *testing.T, id, token string) *httpNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	reg := obs.NewRegistry()
	svc, err := service.Open(service.Config{Workers: 2, QueueCap: 64, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	n := cluster.New(svc, cluster.Options{
		ID:                id,
		Addr:              url,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
	})
	tr := cluster.NewHTTPTransport(n.MemberAddr)
	tr.Token = token
	tr.Self = id
	n.SetTransport(tr)
	srv := &http.Server{Handler: cluster.NewHandler(n, reg, token)}
	go srv.Serve(ln) //nolint:errcheck // closed by cleanup
	t.Cleanup(func() {
		n.Close()
		svc.Close()
		srv.Close()
	})
	return &httpNode{node: n, url: url}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestHTTPFabricEndToEnd(t *testing.T) {
	fault.DisableAll()
	a := startHTTPNode(t, "a")
	b := startHTTPNode(t, "b")
	c := startHTTPNode(t, "c")

	// Bootstrap: b and c join through a, like emcserve -join does.
	tr := cluster.NewHTTPTransport(func(string) (string, bool) { return "", false })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, n := range []*httpNode{b, c} {
		members, err := tr.JoinAddr(ctx, a.url, cluster.Member{ID: n.node.ID(), Addr: n.url})
		if err != nil {
			t.Fatalf("join %s via a: %v", n.node.ID(), err)
		}
		for _, m := range members {
			n.node.AddMember(m)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range []*httpNode{a, b, c} {
		for len(n.node.Members()) < 3 {
			if time.Now().After(deadline) {
				t.Fatalf("membership never converged on %s: %+v", n.node.ID(), n.node.Members())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Find a request whose key is owned by c, so a and b both must route.
	ring := cluster.NewRing(0)
	ring.Add("a")
	ring.Add("b")
	ring.Add("c")
	var seed uint64
	for s := uint64(1); s < 4096; s++ {
		cfg := tinyCfg(s)
		key, _ := service.CacheKey(&cfg)
		if ring.Owner(key, nil) == "c" {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no c-owned seed")
	}
	ref := runTiny(t, tinyCfg(seed)).Hash()

	submit := func(base string) string {
		body, _ := json.Marshal(map[string]any{
			"client":       "e2e",
			"benchmarks":   []string{"mcf", "sphinx3", "soplex", "libquantum"},
			"instrPerCore": 1000,
			"seed":         seed,
		})
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s/api/v1/jobs: %d %s", base, resp.StatusCode, data)
		}
		var st service.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.ID
	}

	// Same fingerprint submitted to two different nodes, neither the owner.
	idA := submit(a.url)
	idB := submit(b.url)

	waitDone := func(base, id string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			var st service.Status
			getJSON(t, fmt.Sprintf("%s/api/v1/jobs/%s", base, id), &st)
			if st.State.Terminal() {
				if st.State != service.StateDone {
					t.Fatalf("job %s on %s ended %s: %s", id, base, st.State, st.Error)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s on %s never finished", id, base)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDone(a.url, idA)
	waitDone(b.url, idB)

	// Byte-identical result bodies from both entry nodes.
	fetch := func(base, id string) []byte {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/result", base, id))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET result on %s: %d %s", base, resp.StatusCode, data)
		}
		return data
	}
	resA, resB := fetch(a.url, idA), fetch(b.url, idB)
	if !bytes.Equal(resA, resB) {
		t.Fatal("result bytes differ between entry nodes")
	}

	// Exactly one execution fabric-wide, and it happened on the owner.
	var executed uint64
	for _, n := range []*httpNode{a, b, c} {
		executed += n.node.Service().Stats().Executed
	}
	if executed != 1 {
		t.Fatalf("%d executions across the HTTP fabric, want 1", executed)
	}
	if got := c.node.Service().Stats().Executed; got != 1 {
		t.Fatalf("owner executed %d, want 1", got)
	}
	if res, ok := c.node.Service().PeekResult(func() string {
		cfg := tinyCfg(seed)
		k, _ := service.CacheKey(&cfg)
		return k
	}()); !ok || res.Hash() != ref {
		t.Fatal("owner cache missing or wrong reference result")
	}

	// The per-node stats rows crossed the HTTP boundary too.
	var st service.Stats
	getJSON(t, a.url+"/api/v1/stats", &st)
	if len(st.Nodes) != 3 || st.Nodes[0].State != "self" {
		t.Fatalf("stats rows wrong over HTTP: %+v", st.Nodes)
	}
	if st.Nodes[0].Forwarded == 0 {
		t.Fatalf("entry node self row shows no forwards: %+v", st.Nodes[0])
	}
}

// TestHTTPTransportErrorClassification: the HTTP status codes map back to
// the three transport buckets.
func TestHTTPTransportErrorClassification(t *testing.T) {
	fault.DisableAll()
	a := startHTTPNode(t, "a")
	tr := cluster.NewHTTPTransport(func(id string) (string, bool) {
		if id == "a" {
			return a.url, true
		}
		if id == "gone" {
			return "http://127.0.0.1:1", true // nothing listens here
		}
		return "", false
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := tr.Ping(ctx, "a"); err != nil {
		t.Fatalf("ping a live node: %v", err)
	}
	if _, err := tr.Ping(ctx, "gone"); err != cluster.ErrUnreachable {
		t.Fatalf("dead endpoint classified %v, want ErrUnreachable", err)
	}
	if _, err := tr.Ping(ctx, "unknown"); err != cluster.ErrUnreachable {
		t.Fatalf("unresolvable node classified %v, want ErrUnreachable", err)
	}
	if _, err := tr.Fetch(ctx, "a", "no-such-key"); err != cluster.ErrNoRecord {
		t.Fatalf("missing record classified %v, want ErrNoRecord", err)
	}
	// A steal against an idle node declines with (nil, nil) over 204.
	sj, err := tr.Steal(ctx, "a")
	if err != nil || sj != nil {
		t.Fatalf("idle steal = (%v, %v), want (nil, nil)", sj, err)
	}
	// A corrupt replica is a permanent, non-retryable error.
	cfg := tinyCfg(1)
	key, _ := service.CacheKey(&cfg)
	frame, err := service.EncodeRecord(key, runTiny(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)/2] ^= 0xFF
	err = tr.Replicate(ctx, "a", frame)
	if err == nil || err == cluster.ErrUnreachable || err == cluster.ErrBusy {
		t.Fatalf("torn replica classified %v, want permanent error", err)
	}
	if c := a.node.Counters(); c.ReplTorn != 1 {
		t.Fatalf("torn counter %d, want 1", c.ReplTorn)
	}
}

// TestHTTPClusterAuth: with -cluster-token set, every inter-node endpoint
// rejects missing and wrong tokens with 401 (counted in the Prometheus
// gauge), accepts the right bearer token, and leaves the client-facing
// API open. Two token-bearing nodes still form a working fabric.
func TestHTTPClusterAuth(t *testing.T) {
	fault.DisableAll()
	const token = "sweep-fabric-secret"
	a := startHTTPNodeAuth(t, "a", token)
	b := startHTTPNodeAuth(t, "b", token)

	get := func(path, auth string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, a.url+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
		resp.Body.Close()
		return resp.StatusCode
	}

	guarded := []string{
		"/api/v1/cluster/members",
		"/api/v1/cluster/ping",
		"/api/v1/cluster/digest",
		"/api/v1/cluster/keys?bucket=0",
		"/api/v1/cluster/record?key=x",
	}
	for _, path := range guarded {
		if code := get(path, ""); code != http.StatusUnauthorized {
			t.Errorf("GET %s without token: %d, want 401", path, code)
		}
		if code := get(path, "Bearer wrong-token"); code != http.StatusUnauthorized {
			t.Errorf("GET %s with wrong token: %d, want 401", path, code)
		}
	}
	if code := get("/api/v1/cluster/members", "Bearer "+token); code != http.StatusOK {
		t.Fatalf("GET members with the right token: %d, want 200", code)
	}
	// The client-facing API is not behind the token.
	for _, path := range []string{"/api/v1/stats", "/healthz"} {
		if code := get(path, ""); code != http.StatusOK {
			t.Errorf("GET %s (client API) without token: %d, want 200", path, code)
		}
	}

	// The rejections reached the Prometheus gauge.
	resp, err := http.Get(a.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("emcsim_cluster_auth_rejected")) {
		t.Fatal("auth_rejected gauge missing from /metrics")
	}

	// A transport without the token is shut out with a permanent error (the
	// endpoint answered, so this must NOT classify as unreachable — a
	// misconfigured token must not read as a network partition).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	bare := cluster.NewHTTPTransport(func(id string) (string, bool) {
		if id == "a" {
			return a.url, true
		}
		return "", false
	})
	if _, err := bare.Ping(ctx, "a"); err == nil || err == cluster.ErrUnreachable {
		t.Fatalf("unauthenticated ping classified %v, want permanent error", err)
	}

	// Token-bearing nodes still form a fabric: join b through a and let the
	// authenticated heartbeats converge membership.
	authed := cluster.NewHTTPTransport(func(string) (string, bool) { return "", false })
	authed.Token = token
	authed.Self = "b"
	members, err := authed.JoinAddr(ctx, a.url, cluster.Member{ID: "b", Addr: b.url})
	if err != nil {
		t.Fatalf("authenticated join: %v", err)
	}
	for _, m := range members {
		b.node.AddMember(m)
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range []*httpNode{a, b} {
		for len(n.node.Members()) < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("authed membership never converged on %s", n.node.ID())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
