// Multi-node chaos suite: seeded schedules of node kills, partitions with
// heal windows, and armed cluster failpoints, driven through a 3-node
// in-process fabric (run it under -race; `make chaos-cluster` runs 25
// schedules). Every schedule submits a burst of jobs to the surviving entry
// node and then asserts the fabric invariants that define "no lost,
// duplicated, or torn results":
//
//   - every job reaches a terminal state (kills and partitions included);
//   - every done job's Result hashes identically to an undisturbed direct
//     run of its configuration (torn-result guard);
//   - every failure is an injected fault — locally via errors.Is, remotely
//     via the RemoteError text that crossed the wire;
//   - each surviving node's books balance (done+failed+cancelled ==
//     submitted);
//   - nothing torn is ever seeded: every cached record on every surviving
//     node decodes to a reference-identical result.
//
// Failpoints are process-global, so schedules run sequentially — no
// t.Parallel anywhere in this file.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

// clusterChaosPool mirrors the service chaos pool: small enough that
// duplicates (cluster-wide coalescing, replication hits) are common.
func clusterChaosPool() []sim.Config {
	var pool []sim.Config
	for seed := uint64(1); seed <= 3; seed++ {
		pool = append(pool, tinyCfg(seed))
	}
	emc := tinyCfg(4)
	emc.EMCEnabled = true
	pool = append(pool, emc)
	return pool
}

func clusterChaosSchedules(t *testing.T) int {
	if v := os.Getenv("EMCSIM_CHAOS_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad EMCSIM_CHAOS_SCHEDULES %q", v)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 6
}

func TestClusterChaosSchedules(t *testing.T) {
	pool := clusterChaosPool()
	fault.DisableAll()
	refs := make([]uint64, len(pool))
	for i, cfg := range pool {
		refs[i] = runTiny(t, cfg).Hash()
	}
	n := clusterChaosSchedules(t)
	for seed := 1; seed <= n; seed++ {
		t.Run(fmt.Sprintf("schedule-%03d", seed), func(t *testing.T) {
			runClusterChaosSchedule(t, int64(seed), pool, refs)
		})
	}
}

// armClusterChaos arms a random subset of cluster failpoints (plus the
// worker panic sites, so remote failures cross the wire too).
func armClusterChaos(t *testing.T, rng *rand.Rand) string {
	desc := ""
	arm := func(name string, trig fault.Trigger) {
		p, ok := fault.Lookup(name)
		if !ok {
			t.Fatalf("failpoint %s not registered", name)
		}
		p.Enable(trig)
		desc += fmt.Sprintf(" %s=%+v", name, trig)
	}
	prob := func(p float64) fault.Trigger {
		return fault.Trigger{Prob: p, Seed: rng.Uint64() | 1}
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterForward, prob(0.05+0.15*rng.Float64()))
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterReplicateSend, prob(0.2+0.3*rng.Float64()))
	}
	if rng.Float64() < 0.5 {
		arm(fault.SiteClusterReplicateRecv, prob(0.2+0.3*rng.Float64()))
	}
	if rng.Float64() < 0.4 {
		arm(fault.SiteClusterFetch, prob(0.3))
	}
	if rng.Float64() < 0.4 {
		arm(fault.SiteClusterHeartbeat, prob(0.2))
	}
	if rng.Float64() < 0.4 {
		arm(fault.SiteClusterSteal, prob(0.3))
	}
	if rng.Float64() < 0.3 {
		arm("service/worker.prerun", prob(0.1+0.2*rng.Float64()))
	}
	if rng.Float64() < 0.3 {
		arm("service/worker.postrun", prob(0.1+0.2*rng.Float64()))
	}
	return desc
}

// injectedFailure reports whether err is explained by fault injection —
// locally via the error chain, remotely via the text a RemoteError carried
// across the wire.
func injectedFailure(err error) bool {
	if errors.Is(err, fault.ErrInjected) {
		return true
	}
	var re *cluster.RemoteError
	if errors.As(err, &re) {
		return strings.Contains(re.Msg, "fault: injected")
	}
	return false
}

func runClusterChaosSchedule(t *testing.T, seed int64, pool []sim.Config, refs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)

	f := newFabricOpts(t, 3,
		func(int) service.Config {
			return service.Config{
				Workers:          1 + rng.Intn(2),
				QueueCap:         16 + rng.Intn(16),
				CacheCap:         64,
				MaxRetries:       1 + rng.Intn(3),
				ProgressInterval: 500,
			}
		},
		func(int) cluster.Options {
			return cluster.Options{
				HeartbeatInterval: time.Duration(5+rng.Intn(10)) * time.Millisecond,
				SuspectAfter:      40 * time.Millisecond,
				PollInterval:      2 * time.Millisecond,
				StealThreshold:    1 + rng.Intn(2),
				DelegationTimeout: 500 * time.Millisecond,
			}
		})
	faults := armClusterChaos(t, rng)

	// Entry point is always node0 (never killed), so every caller-visible
	// job survives the schedule. Kills and partitions hit nodes 1 and 2 —
	// SIGKILL of a worker mid-sweep and split-brain windows.
	type tracked struct {
		j    *service.Job
		pool int
	}
	var jobs []tracked
	total := 8 + rng.Intn(8)
	for i := 0; i < total; i++ {
		ci := rng.Intn(len(pool))
		j, err := f.Nodes[0].Submit(fmt.Sprintf("client%d", rng.Intn(3)), pool[ci])
		if err != nil {
			if !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("submit (faults:%s): %v", faults, err)
			}
			continue
		}
		jobs = append(jobs, tracked{j: j, pool: ci})
		if rng.Float64() < 0.3 {
			time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
		}
	}

	// Mischief: a partition window, then maybe a kill, concurrent with the
	// sweep. All delays are rng-driven so schedules replay identically.
	partA := []string{"node0", "node1", "node2"}[rng.Intn(3)]
	partB := []string{"node0", "node1", "node2"}[rng.Intn(3)]
	doPartition := partA != partB && rng.Float64() < 0.7
	killIdx := 1 + rng.Intn(2) // node1 or node2, never the entry node
	doKill := rng.Float64() < 0.6
	mischiefDone := make(chan struct{})
	go func() {
		defer close(mischiefDone)
		if doPartition {
			time.Sleep(time.Duration(2+rng.Intn(10)) * time.Millisecond)
			f.Transport.Partition(partA, partB)
			time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			f.Transport.Heal(partA, partB)
		}
		if doKill {
			time.Sleep(time.Duration(rng.Intn(15)) * time.Millisecond)
			f.Kill(killIdx)
		}
	}()
	<-mischiefDone

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, tr := range jobs {
		res, err := tr.j.Wait(ctx)
		st := tr.j.Status()
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal (faults:%s kill=%v part=%v)", st.ID, faults, doKill, doPartition)
		}
		switch st.State {
		case service.StateDone:
			if res == nil {
				t.Fatalf("done job %s lost its result (faults:%s)", st.ID, faults)
			}
			if got, want := res.Hash(), refs[tr.pool]; got != want {
				t.Fatalf("torn result: job %s hash %#x != reference %#x (faults:%s)", st.ID, got, want, faults)
			}
		case service.StateFailed:
			if !injectedFailure(err) {
				t.Fatalf("job %s failed for a non-injected reason: %v (faults:%s)", st.ID, err, faults)
			}
		case service.StateCancelled:
			t.Fatalf("job %s cancelled but the schedule cancels nothing (faults:%s)", st.ID, faults)
		}
	}

	// Disarm before the bookkeeping sweep: the fabric keeps running
	// (heartbeats, steals, late replications) until Close.
	fault.DisableAll()

	for i, n := range f.Nodes {
		if i == killIdx && doKill {
			continue
		}
		st := n.Service().Stats()
		if st.Done+st.Failed+st.Cancelled != st.Submitted {
			// In-flight stolen/forwarded work may still be settling; allow a
			// short convergence window before declaring the books broken.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				st = n.Service().Stats()
				if st.Done+st.Failed+st.Cancelled == st.Submitted {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.Done+st.Failed+st.Cancelled != st.Submitted {
				t.Fatalf("node%d books do not balance: %+v (faults:%s)", i, st, faults)
			}
		}
		// Torn-seed guard: every cached record on a surviving node matches
		// its reference bit-for-bit.
		for pi, cfg := range pool {
			key, _ := service.CacheKey(&cfg)
			if res, ok := n.Service().PeekResult(key); ok {
				if res.Hash() != refs[pi] {
					t.Fatalf("node%d cache holds a torn result for pool[%d] (faults:%s)", i, pi, faults)
				}
			}
		}
	}
}
