package cluster

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// peerIDHeader carries the calling node's id on inter-node requests, so the
// receiver can credit the caller's suspect timer: any successful RPC from a
// peer is liveness evidence as good as a heartbeat.
const peerIDHeader = "X-Emc-Node"

// NewHandler wraps the service HTTP API with the fabric protocol. Client
// submissions (POST /api/v1/jobs) route through the node — so any node
// accepts any submission and forwards it to the key's owner — and the
// inter-node endpoints live under /api/v1/cluster/:
//
//	POST /api/v1/cluster/submit     forwarded job intake (SubmitRequest)
//	GET  /api/v1/cluster/record     ?key= -> durable EMCR frame bytes
//	POST /api/v1/cluster/replicate  durable EMCR frame body
//	GET  /api/v1/cluster/ping       Health JSON
//	POST /api/v1/cluster/steal      one StolenJob JSON, or 204 when declined
//	POST /api/v1/cluster/join       Member JSON -> member list JSON
//	GET  /api/v1/cluster/members    member list JSON
//	GET  /api/v1/cluster/digest     anti-entropy Digest JSON
//	GET  /api/v1/cluster/keys       ?bucket=N -> key list JSON
//	POST /api/v1/cluster/handover   HandoverRequest JSON
//
// A non-empty token shields every /api/v1/cluster/* endpoint behind a
// shared bearer token (constant-time compare, 401 on mismatch, rejections
// counted in the emcsim_cluster_auth_rejected gauge). The client-facing
// endpoints stay open — the token authenticates nodes to each other, not
// users to the service.
//
// Everything else (status, results, stats, trace, metrics) falls through to
// the wrapped service handler unchanged.
func NewHandler(n *Node, reg *obs.Registry, token string) http.Handler {
	inner := service.NewHandler(n.Service(), reg)
	var rejected atomic.Uint64
	var authGroup *obs.Group
	if reg != nil {
		authGroup = reg.NewGroup(map[string]string{"component": "cluster"}, []string{"cluster_auth_rejected"})
	}
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if token != "" {
				want := "Bearer " + token
				if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte(want)) != 1 {
					cnt := rejected.Add(1)
					if authGroup != nil {
						authGroup.Publish([]float64{float64(cnt)})
					}
					httpJSON(w, http.StatusUnauthorized, httpError{Error: "cluster: invalid or missing cluster token"})
					return
				}
			}
			if peer := r.Header.Get(peerIDHeader); peer != "" {
				n.MarkPeerSeen(peer)
			}
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("POST /api/v1/jobs", n.httpSubmit)
	mux.HandleFunc("POST /api/v1/cluster/submit", guard(n.httpClusterSubmit))
	mux.HandleFunc("GET /api/v1/cluster/record", guard(n.httpRecord))
	mux.HandleFunc("POST /api/v1/cluster/replicate", guard(n.httpReplicate))
	mux.HandleFunc("GET /api/v1/cluster/ping", guard(n.httpPing))
	mux.HandleFunc("POST /api/v1/cluster/steal", guard(n.httpSteal))
	mux.HandleFunc("POST /api/v1/cluster/join", guard(n.httpJoin))
	mux.HandleFunc("GET /api/v1/cluster/members", guard(func(w http.ResponseWriter, _ *http.Request) {
		httpJSON(w, http.StatusOK, n.Members())
	}))
	mux.HandleFunc("GET /api/v1/cluster/digest", guard(n.httpDigest))
	mux.HandleFunc("GET /api/v1/cluster/keys", guard(n.httpKeys))
	mux.HandleFunc("POST /api/v1/cluster/handover", guard(n.httpHandover))
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure here
}

// submitStatus maps a submission outcome onto the same status codes the
// single-process submit endpoint uses, so emcctl works against a fabric
// node unchanged.
func submitStatus(w http.ResponseWriter, st service.Status, err error) {
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		httpJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, service.ErrDraining):
		httpJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case err != nil:
		httpJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	case st.State.Terminal():
		httpJSON(w, http.StatusOK, st) // cache hit: already done
	default:
		httpJSON(w, http.StatusAccepted, st)
	}
}

// httpSubmit is the client-facing submit, routed cluster-wide.
func (n *Node) httpSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	cfg, err := req.Config()
	if err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	j, err := n.Submit(req.Client, cfg)
	if err != nil {
		submitStatus(w, service.Status{}, err)
		return
	}
	submitStatus(w, j.Status(), nil)
}

// httpClusterSubmit is the owner-side intake for forwarded jobs.
func (n *Node) httpClusterSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	st, err := n.HandleSubmit(req)
	if err != nil && !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, service.ErrDraining) {
		httpJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	submitStatus(w, st, err)
}

func (n *Node) httpRecord(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	frame, err := n.HandleFetch(key)
	switch {
	case errors.Is(err, ErrNoRecord):
		httpJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
	case err != nil:
		httpJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(frame) //nolint:errcheck // client gone is the only failure here
	}
}

func (n *Node) httpReplicate(w http.ResponseWriter, r *http.Request) {
	frame, err := io.ReadAll(r.Body)
	if err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	if err := n.HandleReplicate(frame); err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	httpJSON(w, http.StatusOK, struct{}{})
}

func (n *Node) httpPing(w http.ResponseWriter, _ *http.Request) {
	httpJSON(w, http.StatusOK, n.HandlePing())
}

func (n *Node) httpSteal(w http.ResponseWriter, _ *http.Request) {
	sj, err := n.HandleSteal()
	switch {
	case err != nil:
		httpJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
	case sj == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		httpJSON(w, http.StatusOK, sj)
	}
}

func (n *Node) httpJoin(w http.ResponseWriter, r *http.Request) {
	var mem Member
	if err := json.NewDecoder(r.Body).Decode(&mem); err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	httpJSON(w, http.StatusOK, n.HandleJoin(mem))
}

func (n *Node) httpDigest(w http.ResponseWriter, _ *http.Request) {
	httpJSON(w, http.StatusOK, n.HandleDigest())
}

func (n *Node) httpKeys(w http.ResponseWriter, r *http.Request) {
	bucket, err := strconv.Atoi(r.URL.Query().Get("bucket"))
	if err != nil || bucket < 0 || bucket >= digestBuckets {
		httpJSON(w, http.StatusBadRequest, httpError{Error: "bad bucket"})
		return
	}
	keys := n.HandleKeys(bucket)
	if keys == nil {
		keys = []string{}
	}
	httpJSON(w, http.StatusOK, keys)
}

func (n *Node) httpHandover(w http.ResponseWriter, r *http.Request) {
	var req HandoverRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return
	}
	if err := n.HandleHandover(req); err != nil {
		// The only handler-side failure is the injected lost ack; report it
		// as unavailability so the sender's breaker and reclaim kick in.
		httpJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		return
	}
	httpJSON(w, http.StatusOK, struct{}{})
}

// ---------------------------------------------------------------------------
// HTTP transport (the dialing side).

// HTTPTransport speaks the fabric protocol between emcserve processes. Node
// ids resolve to advertised base URLs through the membership table (the
// node's MemberAddr method).
type HTTPTransport struct {
	// Client is the underlying HTTP client; NewHTTPTransport sets a
	// 10-second timeout so a dead TCP peer fails fast enough for the
	// heartbeat sweep.
	Client *http.Client
	// Resolve maps a node id to its advertised base URL.
	Resolve func(node string) (string, bool)
	// Token, when non-empty, is sent as a bearer token on every request —
	// the counterpart of the handler's -cluster-token guard.
	Token string
	// Self is this node's id, announced in the peer-id header so receivers
	// credit our suspect timer on any successful RPC.
	Self string
}

// NewHTTPTransport builds the transport with resolve as its address book.
func NewHTTPTransport(resolve func(node string) (string, bool)) *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{Timeout: 10 * time.Second}, Resolve: resolve}
}

func (t *HTTPTransport) base(node string) (string, error) {
	addr, ok := t.Resolve(node)
	if !ok || addr == "" {
		return "", ErrUnreachable
	}
	return strings.TrimSuffix(addr, "/"), nil
}

// do performs one fabric request, classifying the response: 2xx decodes
// into out (when non-nil), 429 is ErrBusy, 503 and transport failures are
// ErrUnreachable, everything else is a permanent error carrying the body.
func (t *HTTPTransport) do(ctx context.Context, method, url, contentType string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if t.Token != "" {
		req.Header.Set("Authorization", "Bearer "+t.Token)
	}
	if t.Self != "" {
		req.Header.Set(peerIDHeader, t.Self)
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, ErrUnreachable
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, ErrUnreachable
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return resp.StatusCode, ErrBusy
	case resp.StatusCode == http.StatusServiceUnavailable:
		return resp.StatusCode, ErrUnreachable
	case resp.StatusCode >= 400:
		var apiErr httpError
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return resp.StatusCode, fmt.Errorf("cluster: %s: %s", url, apiErr.Error)
		}
		return resp.StatusCode, fmt.Errorf("cluster: %s: HTTP %d", url, resp.StatusCode)
	}
	if out != nil {
		if b, ok := out.(*[]byte); ok {
			*b = data
			return resp.StatusCode, nil
		}
		if len(data) == 0 {
			return resp.StatusCode, nil // 204 and friends
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: %s: bad response: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

func (t *HTTPTransport) Submit(ctx context.Context, node string, req SubmitRequest) (service.Status, error) {
	base, err := t.base(node)
	if err != nil {
		return service.Status{}, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return service.Status{}, err
	}
	var st service.Status
	if _, err := t.do(ctx, http.MethodPost, base+"/api/v1/cluster/submit", "application/json", body, &st); err != nil {
		return service.Status{}, err
	}
	return st, nil
}

func (t *HTTPTransport) Status(ctx context.Context, node, jobID string) (service.Status, error) {
	base, err := t.base(node)
	if err != nil {
		return service.Status{}, err
	}
	var st service.Status
	if _, err := t.do(ctx, http.MethodGet, base+"/api/v1/jobs/"+url.PathEscape(jobID), "", nil, &st); err != nil {
		return service.Status{}, err
	}
	return st, nil
}

func (t *HTTPTransport) Cancel(ctx context.Context, node, jobID string) error {
	base, err := t.base(node)
	if err != nil {
		return err
	}
	_, err = t.do(ctx, http.MethodPost, base+"/api/v1/jobs/"+url.PathEscape(jobID)+"/cancel", "", nil, nil)
	return err
}

func (t *HTTPTransport) Fetch(ctx context.Context, node, key string) ([]byte, error) {
	base, err := t.base(node)
	if err != nil {
		return nil, err
	}
	var frame []byte
	code, err := t.do(ctx, http.MethodGet, base+"/api/v1/cluster/record?key="+url.QueryEscape(key), "", nil, &frame)
	if code == http.StatusNotFound {
		return nil, ErrNoRecord
	}
	if err != nil {
		return nil, err
	}
	return frame, nil
}

func (t *HTTPTransport) Replicate(ctx context.Context, node string, frame []byte) error {
	base, err := t.base(node)
	if err != nil {
		return err
	}
	_, err = t.do(ctx, http.MethodPost, base+"/api/v1/cluster/replicate", "application/octet-stream", frame, nil)
	return err
}

func (t *HTTPTransport) Ping(ctx context.Context, node string) (Health, error) {
	base, err := t.base(node)
	if err != nil {
		return Health{}, err
	}
	var h Health
	if _, err := t.do(ctx, http.MethodGet, base+"/api/v1/cluster/ping", "", nil, &h); err != nil {
		return Health{}, err
	}
	return h, nil
}

func (t *HTTPTransport) Steal(ctx context.Context, node string) (*StolenJob, error) {
	base, err := t.base(node)
	if err != nil {
		return nil, err
	}
	var sj StolenJob
	code, err := t.do(ctx, http.MethodPost, base+"/api/v1/cluster/steal", "", nil, &sj)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent || sj.Key == "" {
		return nil, nil
	}
	return &sj, nil
}

func (t *HTTPTransport) Join(ctx context.Context, node string, mem Member) ([]Member, error) {
	base, err := t.base(node)
	if err != nil {
		return nil, err
	}
	return t.JoinAddr(ctx, base, mem)
}

func (t *HTTPTransport) Digest(ctx context.Context, node string) (Digest, error) {
	base, err := t.base(node)
	if err != nil {
		return Digest{}, err
	}
	var d Digest
	if _, err := t.do(ctx, http.MethodGet, base+"/api/v1/cluster/digest", "", nil, &d); err != nil {
		return Digest{}, err
	}
	return d, nil
}

func (t *HTTPTransport) Keys(ctx context.Context, node string, bucket int) ([]string, error) {
	base, err := t.base(node)
	if err != nil {
		return nil, err
	}
	var keys []string
	if _, err := t.do(ctx, http.MethodGet, base+"/api/v1/cluster/keys?bucket="+strconv.Itoa(bucket), "", nil, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

func (t *HTTPTransport) Handover(ctx context.Context, node string, req HandoverRequest) error {
	base, err := t.base(node)
	if err != nil {
		return err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	_, err = t.do(ctx, http.MethodPost, base+"/api/v1/cluster/handover", "application/json", body, nil)
	return err
}

// JoinAddr announces mem to the fabric member at baseURL directly — the
// bootstrap path, used before the target's node id is known (-join flag).
func (t *HTTPTransport) JoinAddr(ctx context.Context, baseURL string, mem Member) ([]Member, error) {
	body, err := json.Marshal(mem)
	if err != nil {
		return nil, err
	}
	var members []Member
	if _, err := t.do(ctx, http.MethodPost, strings.TrimSuffix(baseURL, "/")+"/api/v1/cluster/join", "application/json", body, &members); err != nil {
		return nil, err
	}
	return members, nil
}
