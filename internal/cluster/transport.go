package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/service"
	"repro/internal/sim"
)

// Transport errors. Everything the fabric does is retry- or
// failover-driven, so errors classify into exactly three buckets: the node
// cannot be reached right now (failover), the node is up but refusing work
// (back off, then fall back), or the request itself is bad (permanent).
var (
	// ErrUnreachable means the node did not answer: connection failure, a
	// partition, a kill, or a draining service. The caller fails over.
	ErrUnreachable = errors.New("cluster: node unreachable")
	// ErrBusy means the node answered but its queue is full (the remote
	// service returned ErrQueueFull). The caller backs off and retries.
	ErrBusy = errors.New("cluster: node busy")
	// ErrNoRecord means a fetch found no cached record under the key.
	ErrNoRecord = errors.New("cluster: no such record")
	// ErrNodeClosed means the local node began shutting down while a routed
	// job was still in flight; the waiter is failed rather than left to
	// block Close forever.
	ErrNodeClosed = errors.New("cluster: node closed")
	// ErrPeerDegraded means the per-peer circuit breaker is open: recent
	// consecutive failures tripped it, and the cooldown has not elapsed. The
	// caller treats the peer as unreachable without touching the wire.
	ErrPeerDegraded = errors.New("cluster: peer degraded (breaker open)")
)

// RemoteError is a terminal failure reported by the owning node. The
// original error crossed the wire as text, so callers that classify
// failures (the chaos suite) match on Msg rather than errors.Is.
type RemoteError struct {
	Node string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: job failed on node %s: %s", e.Node, e.Msg)
}

// SubmitRequest forwards one job to its ring owner. Key is the sender's
// computed cache key; the receiver recomputes it from Cfg and rejects a
// mismatch, so a lossy config encoding can never alias two configurations.
type SubmitRequest struct {
	Client string     `json:"client"`
	Key    string     `json:"key"`
	Cfg    sim.Config `json:"config"`
}

// Health is one node's heartbeat payload.
type Health struct {
	ID      string `json:"id"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Hung    int    `json:"hung"`
	// Syncing reports an anti-entropy backfill in progress on the node.
	Syncing bool `json:"syncing,omitempty"`
}

// StolenJob is one queued unit of work a victim handed to a thief.
type StolenJob struct {
	Key    string     `json:"key"`
	Client string     `json:"client"`
	Cfg    sim.Config `json:"config"`
}

// digestBuckets is the anti-entropy digest width: the content-addressed
// keyspace folds into this many buckets by ringHash(key). 64 keeps the
// digest a few hundred bytes while a single differing record still isolates
// to one bucket's key list, so backfill traffic is proportional to the
// delta, not the cache size.
const digestBuckets = 64

// BucketSum summarizes one digest bucket: the record count and the XOR of
// ringHash(key) over the bucket's keys. XOR is order-independent and
// incremental, and Count catches the pathological XOR collision of two
// differing sets with equal parity sums.
type BucketSum struct {
	Count uint32 `json:"count"`
	Sum   uint64 `json:"sum"`
}

// Digest is one node's anti-entropy summary of its durable record set.
// Two nodes with identical digests hold identical key sets with
// overwhelming probability; a differing bucket triggers a Keys exchange
// for just that bucket.
type Digest struct {
	Node    string                   `json:"node"`
	Buckets [digestBuckets]BucketSum `json:"buckets"`
}

// HandoverRequest transfers queued (never running) jobs from a previous
// ring owner to a freshly joined node that now owns their keys. The jobs
// remain delegated on the sender until replication confirms completion, so
// a lost ack degrades to a benign (deterministic) double execution.
type HandoverRequest struct {
	From string      `json:"from"`
	Jobs []StolenJob `json:"jobs"`
}

// Transport is the inter-node RPC surface. Two implementations exist: the
// in-process LocalTransport (tests, chaos schedules, same-process fabrics)
// and the HTTPTransport speaking the /api/v1/cluster endpoints between
// emcserve processes. Node ids, not addresses, name the target — the
// transport resolves them through the membership table.
type Transport interface {
	// Submit hands a forwarded job to its owner and returns the owner's
	// job status (which may already be terminal on a cache hit).
	Submit(ctx context.Context, node string, req SubmitRequest) (service.Status, error)
	// Status polls a forwarded job on its owner.
	Status(ctx context.Context, node, jobID string) (service.Status, error)
	// Cancel propagates a cancellation to the owner. Best effort.
	Cancel(ctx context.Context, node, jobID string) error
	// Fetch retrieves the durable EMCR frame for key from a peer's cache.
	Fetch(ctx context.Context, node, key string) ([]byte, error)
	// Replicate delivers a durable EMCR frame to a peer (write-through
	// replication; the receiver CRC-verifies before seeding).
	Replicate(ctx context.Context, node string, frame []byte) error
	// Ping probes a peer's liveness and load.
	Ping(ctx context.Context, node string) (Health, error)
	// Steal asks a peer for one queued job; (nil, nil) means it declined.
	Steal(ctx context.Context, node string) (*StolenJob, error)
	// Join announces mem to a peer and returns the peer's member list.
	Join(ctx context.Context, node string, mem Member) ([]Member, error)
	// Digest fetches a peer's anti-entropy summary of its durable records.
	Digest(ctx context.Context, node string) (Digest, error)
	// Keys lists a peer's durable record keys in one digest bucket.
	Keys(ctx context.Context, node string, bucket int) ([]string, error)
	// Handover delivers queued jobs to their new ring owner after a join.
	Handover(ctx context.Context, node string, req HandoverRequest) error
}
