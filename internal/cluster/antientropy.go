package cluster

import (
	"context"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

// Anti-entropy failpoints (see internal/fault): antientropy.digest fails a
// round's digest RPC as unreachable (the node skips that peer this round);
// antientropy.fetch drops one missing record's backfill (a later round, or
// ordinary replication, must cover it).
var (
	fpAEDigest = fault.Register(fault.SiteClusterAntiEntropyDigest)
	fpAEFetch  = fault.Register(fault.SiteClusterAntiEntropyFetch)
)

// bucketOf folds a cache key into its anti-entropy digest bucket. It reuses
// the ring hash, so a key's bucket is the same on every node — the property
// the digest comparison depends on.
func bucketOf(key string) int {
	return int(ringHash(key) % digestBuckets)
}

// localDigest summarizes this node's durable record set: per bucket, the
// record count and the XOR of the keys' ring hashes. Incremental disagreement
// localizes to the buckets that differ, so the follow-up Keys exchange is
// proportional to the delta.
func (n *Node) localDigest() Digest {
	d := Digest{Node: n.id}
	for _, k := range n.svc.ResultKeys() {
		b := bucketOf(k)
		d.Buckets[b].Count++
		d.Buckets[b].Sum ^= ringHash(k)
	}
	return d
}

// HandleDigest serves this node's anti-entropy summary to a peer.
func (n *Node) HandleDigest() Digest { return n.localDigest() }

// HandleKeys lists this node's durable record keys in one digest bucket
// (sorted — ResultKeys is sorted and the filter preserves order).
func (n *Node) HandleKeys(bucket int) []string {
	if bucket < 0 || bucket >= digestBuckets {
		return nil
	}
	var out []string
	for _, k := range n.svc.ResultKeys() {
		if bucketOf(k) == bucket {
			out = append(out, k)
		}
	}
	return out
}

// antiEntropy is the convergence loop: every AntiEntropyInterval, exchange
// digests with one live peer (round-robin over the sorted peer list) and
// backfill whatever records the peer has that this node lacks. Pull-based
// and pairwise, so a freshly restarted node with an empty or stale cache
// converges to the cluster's full replica set in a few rounds without any
// node tracking who missed which replica.
func (n *Node) antiEntropy() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.AntiEntropyInterval)
	defer t.Stop()
	var rr int
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			peers := n.members.alivePeers(n.id)
			if len(peers) == 0 {
				continue
			}
			n.antiEntropyRound(peers[rr%len(peers)].ID)
			rr++
		}
	}
}

// antiEntropyRound reconciles against one peer: fetch its digest, diff
// bucket sums, list keys for differing buckets, and backfill every record
// the peer holds that this node does not. The records are CRC-framed EMCR
// frames — the same bytes the durable store writes — so a backfilled record
// is byte-identical to one computed locally, and the syncing flag is up
// only while actual backfill work is in flight.
func (n *Node) antiEntropyRound(peer string) {
	if fpAEDigest.Fire() {
		return
	}
	var remote Digest
	err := n.viaBreaker(peer, func() error {
		var err error
		remote, err = n.tr.Digest(context.Background(), peer)
		return err
	})
	if err != nil {
		return
	}
	local := n.localDigest()
	var missing []string
	for b := range remote.Buckets {
		if remote.Buckets[b] == local.Buckets[b] || remote.Buckets[b].Count == 0 {
			continue
		}
		var keys []string
		kerr := n.viaBreaker(peer, func() error {
			var err error
			keys, err = n.tr.Keys(context.Background(), peer, b)
			return err
		})
		if kerr != nil {
			continue
		}
		for _, k := range keys {
			if _, ok := n.svc.PeekResult(k); !ok {
				missing = append(missing, k)
			}
		}
	}
	if len(missing) == 0 {
		return
	}
	n.syncing.Store(true)
	defer n.syncing.Store(false)
	for _, k := range missing {
		if fpAEFetch.Fire() {
			continue
		}
		if n.aeBackfill(peer, k) {
			n.backfilled.Add(1)
		}
	}
}

// aeBackfill fetches one missing durable record from peer, validates the
// frame end to end, and seeds it into the local cache (write-through to
// disk when configured).
func (n *Node) aeBackfill(peer, key string) bool {
	var frame []byte
	err := n.viaBreaker(peer, func() error {
		var err error
		frame, err = n.tr.Fetch(context.Background(), peer, key)
		return err
	})
	if err != nil {
		return false
	}
	k, res, err := service.DecodeRecord(frame)
	if err != nil || k != key {
		return false
	}
	n.svc.SeedResult(key, res)
	return true
}
