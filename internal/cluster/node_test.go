// Fabric unit tests: routing, cluster-wide coalescing, failover, stealing,
// replication, and membership — all over the in-process LocalTransport.
// Failpoints are process-global, so no t.Parallel anywhere in this package.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

func tinyCfg(seed uint64) sim.Config {
	cfg := sim.Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
	cfg.InstrPerCore = 1000
	cfg.Seed = seed
	return cfg
}

// runTiny runs cfg directly — the ground truth every fabric path is
// compared against.
func runTiny(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fastOpts shrinks every fabric interval so tests converge in milliseconds.
func fastOpts(int) cluster.Options {
	return cluster.Options{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      60 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
		DelegationTimeout: 2 * time.Second,
	}
}

func newFabric(t *testing.T, nodes int, scfg func(i int) service.Config) *cluster.Fabric {
	return newFabricOpts(t, nodes, scfg, fastOpts)
}

func newFabricOpts(t *testing.T, nodes int, scfg func(i int) service.Config, opts func(i int) cluster.Options) *cluster.Fabric {
	t.Helper()
	if scfg == nil {
		scfg = func(int) service.Config { return service.Config{Workers: 2, QueueCap: 64} }
	}
	f, err := cluster.NewFabric(cluster.FabricConfig{Nodes: nodes, Service: scfg, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// ownerOf mirrors the fabric's ownership function for an undisturbed N-node
// ring (default replicas, ids node0..nodeN-1).
func ownerOf(nodes int, key string) string {
	r := cluster.NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node%d", i))
	}
	return r.Owner(key, nil)
}

// cfgOwnedBy searches seeds until a tiny config's cache key lands on the
// wanted node — how tests pin down which node executes.
func cfgOwnedBy(t *testing.T, nodes, ownerIdx int) sim.Config {
	t.Helper()
	want := fmt.Sprintf("node%d", ownerIdx)
	for seed := uint64(1); seed < 4096; seed++ {
		cfg := tinyCfg(seed)
		key, ok := service.CacheKey(&cfg)
		if !ok {
			t.Fatal("tiny config unexpectedly uncacheable")
		}
		if ownerOf(nodes, key) == want {
			return cfg
		}
	}
	t.Fatalf("no seed in [1,4096) hashes to %s", want)
	return sim.Config{}
}

// sumExecuted totals actual simulation executions across the fabric — the
// dedup invariant's ground truth.
func sumExecuted(f *cluster.Fabric) uint64 {
	var total uint64
	for _, n := range f.Nodes {
		total += n.Service().Stats().Executed
	}
	return total
}

// TestRoutedSubmitForwardsToOwner: a submission received by a non-owner is
// driven to completion on the ring owner, and exactly one node executes.
func TestRoutedSubmitForwardsToOwner(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 3, nil)
	cfg := cfgOwnedBy(t, 3, 1)
	ref := runTiny(t, cfg).Hash()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := f.Nodes[0].Run(ctx, "t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != ref {
		t.Fatalf("routed result hash %#x != direct %#x", res.Hash(), ref)
	}
	if c := f.Nodes[0].Counters(); c.Forwarded != 1 {
		t.Fatalf("entry node forwarded %d jobs, want 1 (%+v)", c.Forwarded, c)
	}
	if c := f.Nodes[1].Counters(); c.Received != 1 {
		t.Fatalf("owner received %d forwards, want 1 (%+v)", c.Received, c)
	}
	if m := f.Nodes[1].Service().Stats().Executed; m != 1 {
		t.Fatalf("owner executed %d runs, want 1", m)
	}
	if m := f.Nodes[0].Service().Stats().Executed; m != 0 {
		t.Fatalf("entry node executed %d runs, want 0", m)
	}
	// The fetched result seeds the entry node's cache: resubmitting locally
	// is now a cache hit, no forward.
	j, err := f.Nodes[0].Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if c := f.Nodes[0].Counters(); c.Forwarded != 1 {
		t.Fatalf("resubmit after fetch forwarded again (%d)", c.Forwarded)
	}
}

// TestDuplicateSubmissionsCoalesceClusterWide is the cross-node dedup
// contract: identical fingerprints submitted concurrently to two different
// nodes coalesce into one actual run, and every caller gets byte-identical
// result records.
func TestDuplicateSubmissionsCoalesceClusterWide(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 3, nil)
	// Owner is node2, so both entry nodes (0 and 1) must forward and the
	// owner's scheduler is the cluster-wide serialization point.
	cfg := cfgOwnedBy(t, 3, 2)
	key, _ := service.CacheKey(&cfg)
	ref := runTiny(t, cfg).Hash()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const perNode = 3
	results := make([]*sim.Result, 2*perNode)
	errs := make([]error, 2*perNode)
	var wg sync.WaitGroup
	for i := 0; i < 2*perNode; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f.Nodes[i%2].Run(ctx, fmt.Sprintf("client%d", i), cfg)
		}(i)
	}
	wg.Wait()

	var first []byte
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if res.Hash() != ref {
			t.Fatalf("caller %d: hash %#x != reference %#x", i, res.Hash(), ref)
		}
		frame, err := service.EncodeRecord(key, res)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = frame
		} else if !bytes.Equal(frame, first) {
			t.Fatalf("caller %d: result record bytes differ from caller 0", i)
		}
	}
	if got := sumExecuted(f); got != 1 {
		t.Fatalf("%d actual executions across the fabric, want exactly 1", got)
	}
	if c := f.Nodes[2].Counters(); c.Received == 0 {
		t.Fatalf("owner never received a forward (%+v)", c)
	}
}

// TestOwnerDeathRedispatch: when a key's owner is dead, the forward fails
// over to the next ring owner deterministically and the job still completes
// with the reference result.
func TestOwnerDeathRedispatch(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 3, nil)
	cfg := cfgOwnedBy(t, 3, 1)
	ref := runTiny(t, cfg).Hash()

	f.Kill(1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := f.Nodes[0].Run(ctx, "t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != ref {
		t.Fatalf("failover result hash %#x != direct %#x", res.Hash(), ref)
	}
	c := f.Nodes[0].Counters()
	if c.Redispatched == 0 && c.LocalFallback == 0 {
		t.Fatalf("no failover recorded after owner death (%+v)", c)
	}
	// Exactly one surviving node executed.
	if got := f.Nodes[0].Service().Stats().Executed + f.Nodes[2].Service().Stats().Executed; got != 1 {
		t.Fatalf("%d executions on survivors, want 1", got)
	}
}

// TestWorkStealing: an idle node pulls queued jobs off a saturated peer,
// runs them, and delivers the results back; the victim's jobs complete
// without its blocked worker ever touching them.
func TestWorkStealing(t *testing.T) {
	fault.DisableAll()
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	f := newFabricOpts(t, 2, func(i int) service.Config {
		if i == 0 {
			return service.Config{Workers: 1, QueueCap: 64}
		}
		return service.Config{Workers: 2, QueueCap: 64}
	}, func(i int) cluster.Options {
		o := fastOpts(i)
		o.StealThreshold = 1 // steal even a single queued job
		return o
	})

	// Park node0's only worker on an uncacheable blocker (CoreTweak makes it
	// non-routable, so it runs locally).
	blocker := tinyCfg(99)
	blocker.CoreTweak = func(*cpu.Config) { <-release }
	bj, err := f.Nodes[0].Submit("blocker", blocker)
	if err != nil {
		t.Fatal(err)
	}

	// Queue three cacheable jobs that node0 owns; with the worker parked they
	// can only finish if node1 steals them.
	var cfgs []sim.Config
	for seed := uint64(1); len(cfgs) < 3 && seed < 4096; seed++ {
		cfg := tinyCfg(seed)
		key, _ := service.CacheKey(&cfg)
		if ownerOf(2, key) == "node0" {
			cfgs = append(cfgs, cfg)
		}
	}
	if len(cfgs) < 3 {
		t.Fatal("not enough node0-owned seeds")
	}
	var jobs []*service.Job
	for i, cfg := range cfgs {
		j, err := f.Nodes[0].Submit(fmt.Sprintf("c%d", i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if got, want := res.Hash(), runTiny(t, cfgs[i]).Hash(); got != want {
			t.Fatalf("job %d: stolen result hash %#x != direct %#x", i, got, want)
		}
	}
	if c := f.Nodes[0].Counters(); c.StolenOut == 0 {
		t.Fatalf("victim handed out no jobs (%+v)", c)
	}
	if c := f.Nodes[1].Counters(); c.StolenIn == 0 {
		t.Fatalf("thief ran no stolen jobs (%+v)", c)
	}

	close(release)
	if _, err := bj.Wait(ctx); err != nil {
		t.Fatalf("blocker: %v", err)
	}
}

// TestTornReplicaRejected: a replica corrupted in flight must be rejected by
// the CRC check, counted, and kept out of the cache; the retransmit seeds
// cleanly.
func TestTornReplicaRejected(t *testing.T) {
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)
	f := newFabric(t, 2, nil)
	cfg := tinyCfg(1)
	key, _ := service.CacheKey(&cfg)
	res := runTiny(t, cfg)
	frame, err := service.EncodeRecord(key, res)
	if err != nil {
		t.Fatal(err)
	}

	fp, ok := fault.Lookup(fault.SiteClusterReplicateRecv)
	if !ok {
		t.Fatal("replicate.recv failpoint not registered")
	}
	fp.Enable(fault.Trigger{Once: true})
	if err := f.Nodes[1].HandleReplicate(frame); err == nil {
		t.Fatal("torn replica accepted")
	} else if !errors.Is(err, service.ErrRecordCorrupt) {
		t.Fatalf("torn replica rejected with the wrong error: %v", err)
	}
	if c := f.Nodes[1].Counters(); c.ReplTorn != 1 || c.ReplRecv != 0 {
		t.Fatalf("torn counters wrong: %+v", c)
	}
	if _, ok := f.Nodes[1].Service().PeekResult(key); ok {
		t.Fatal("torn replica reached the cache")
	}

	// The retransmit (failpoint disarmed by Once) seeds bit-identically.
	if err := f.Nodes[1].HandleReplicate(frame); err != nil {
		t.Fatalf("clean replica rejected: %v", err)
	}
	got, ok := f.Nodes[1].Service().PeekResult(key)
	if !ok {
		t.Fatal("clean replica not seeded")
	}
	reframe, err := service.EncodeRecord(key, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reframe, frame) {
		t.Fatal("seeded replica re-encodes to different bytes")
	}
}

// TestReplicationSeedsPeers: a fresh local result broadcasts to every peer,
// so later duplicate submissions anywhere are cache hits with no forward.
func TestReplicationSeedsPeers(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 3, nil)
	cfg := cfgOwnedBy(t, 3, 0)
	key, _ := service.CacheKey(&cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := f.Nodes[0].Run(ctx, "t", cfg)
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for _, i := range []int{1, 2} {
		for {
			if peer, ok := f.Nodes[i].Service().PeekResult(key); ok {
				if peer.Hash() != res.Hash() {
					t.Fatalf("node%d replica hash %#x != original %#x", i, peer.Hash(), res.Hash())
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica never reached node%d", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Duplicate submission at a non-owner is now a pure local cache hit.
	j, err := f.Nodes[1].Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if c := f.Nodes[1].Counters(); c.Forwarded != 0 {
		t.Fatalf("replicated key still forwarded (%+v)", c)
	}
	if got := sumExecuted(f); got != 1 {
		t.Fatalf("%d executions, want 1", got)
	}
}

// TestRoutedCancelPropagates: cancelling a routed job on the entry node
// reaches the owner and both sides settle cancelled.
func TestRoutedCancelPropagates(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 2, nil)
	// A long run gives the cancel time to land; owned by node1 so node0
	// routes it.
	var cfg sim.Config
	found := false
	for seed := uint64(1); seed < 4096; seed++ {
		cfg = tinyCfg(seed)
		cfg.InstrPerCore = 30_000_000
		if key, _ := service.CacheKey(&cfg); ownerOf(2, key) == "node1" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no node1-owned seed")
	}
	j, err := f.Nodes[0].Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the remote run to visibly start (mirrored progress), then
	// cancel through the entry node's service.
	deadline := time.Now().Add(20 * time.Second)
	for j.Status().Retired == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := f.Nodes[0].Service().Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("routed job ended %v, want cancellation", err)
	}
	if st := j.Status(); st.State != service.StateCancelled {
		t.Fatalf("routed job state %s, want cancelled", st.State)
	}
}

// TestJoinGossip: a node joining through one member propagates to the rest
// of the fabric without the newcomer contacting them.
func TestJoinGossip(t *testing.T) {
	fault.DisableAll()
	lt := cluster.NewLocalTransport()
	mk := func(id string) *cluster.Node {
		svc, err := service.Open(service.Config{Workers: 1, QueueCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { svc.Close() })
		n := cluster.New(svc, cluster.Options{
			ID:                id,
			HeartbeatInterval: 5 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
		})
		lt.Attach(n)
		t.Cleanup(n.Close)
		return n
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	a.AddMember(cluster.Member{ID: "b"})
	b.AddMember(cluster.Member{ID: "a"})
	a.Start()
	b.Start()
	c.Start()

	members := a.HandleJoin(cluster.Member{ID: "c"})
	if len(members) != 3 {
		t.Fatalf("join returned %d members, want 3: %+v", len(members), members)
	}
	for _, m := range members {
		c.AddMember(m)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(b.Members()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip never reached b: %+v", b.Members())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNodeStatsRows: Stats.Nodes carries one self row with counters plus one
// row per peer with heartbeat-fed load.
func TestNodeStatsRows(t *testing.T) {
	fault.DisableAll()
	f := newFabric(t, 3, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Nodes[0].Service().Stats()
		if len(st.Nodes) == 3 && st.Nodes[0].State == "self" {
			alive := 0
			for _, row := range st.Nodes[1:] {
				if row.State == "alive" && row.HeartbeatAgeMS >= 0 {
					alive++
				}
			}
			if alive == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node rows never converged: %+v", st.Nodes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A dead peer flips its row.
	f.Kill(2)
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := f.Nodes[0].Service().Stats()
		dead := false
		for _, row := range st.Nodes {
			if row.Node == "node2" && row.State == "dead" {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed peer never marked dead: %+v", st.Nodes)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
