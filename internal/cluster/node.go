package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

// Cluster failpoints (see internal/fault): forward makes one routing RPC
// fail as unreachable (the partition model, driving re-dispatch);
// replicate.send drops one peer's replica; replicate.recv tears one byte of
// a received frame (the CRC check must reject it); fetch fails a peer-fetch
// attempt; heartbeat skips one probe; steal refuses to hand out a job.
var (
	fpForward   = fault.Register(fault.SiteClusterForward)
	fpReplSend  = fault.Register(fault.SiteClusterReplicateSend)
	fpReplRecv  = fault.Register(fault.SiteClusterReplicateRecv)
	fpFetch     = fault.Register(fault.SiteClusterFetch)
	fpHeartbeat = fault.Register(fault.SiteClusterHeartbeat)
	fpSteal     = fault.Register(fault.SiteClusterSteal)
)

// Options tunes one fabric node. The zero value of every field selects a
// production-shaped default; tests shrink the intervals.
type Options struct {
	// ID is the node's stable identity on the ring. Required.
	ID string
	// Addr is the advertised base URL for HTTP fabrics (empty in-process).
	Addr string
	// Replicas is the ring's virtual-node count per member (default 64).
	Replicas int
	// HeartbeatInterval is the peer probe cadence (default 1s).
	HeartbeatInterval time.Duration
	// SuspectAfter is how stale a peer's heartbeat may be before it is
	// marked dead (default 4 × HeartbeatInterval).
	SuspectAfter time.Duration
	// PollInterval is the forwarded-job status poll cadence, also the busy
	// backoff unit (default 100ms).
	PollInterval time.Duration
	// StealThreshold is the minimum queue depth at which a peer becomes a
	// steal victim (default 2).
	StealThreshold int
	// DelegationTimeout bounds how long a victim waits for a thief to
	// deliver before reclaiming the job (default 30s).
	DelegationTimeout time.Duration
	// ForwardRetries is how many ErrBusy responses a forward absorbs before
	// executing locally instead (default 3).
	ForwardRetries int
	// MaxHops bounds re-dispatch hops across dying owners before the job
	// falls back to local execution (default 4).
	MaxHops int
	// ReplQueue sizes the asynchronous replication queue (default 256;
	// overflow drops the broadcast — peer fetch covers the gap).
	ReplQueue int
	// AntiEntropyInterval is the cadence of the anti-entropy loop: each tick
	// exchanges digests with one live peer round-robin and backfills missing
	// durable records (default 30s; negative disables the loop).
	AntiEntropyInterval time.Duration
	// Weight is this node's ring weight — the virtual-point multiplier for
	// heterogeneous fabrics (default 1).
	Weight int
	// BreakerThreshold is the consecutive unreachable-failure count that
	// trips a peer's circuit breaker open (default 5).
	BreakerThreshold int
	// BreakerCooldown is the base open-circuit duration before a half-open
	// probe; the actual reopen delay is jittered ±25% (default 5s).
	BreakerCooldown time.Duration
}

func (o *Options) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 64
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4 * o.HeartbeatInterval
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.StealThreshold <= 0 {
		o.StealThreshold = 2
	}
	if o.DelegationTimeout <= 0 {
		o.DelegationTimeout = 30 * time.Second
	}
	if o.ForwardRetries <= 0 {
		o.ForwardRetries = 3
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 4
	}
	if o.ReplQueue <= 0 {
		o.ReplQueue = 256
	}
	if o.AntiEntropyInterval == 0 {
		o.AntiEntropyInterval = 30 * time.Second
	}
	if o.Weight <= 0 {
		o.Weight = 1
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
}

// delegation is one queued job handed to a thief, with its reclaim timer.
type delegation struct {
	j     *service.Job
	timer *time.Timer
}

// Counters is a node's cluster-counter snapshot (tests, smoke checks).
type Counters struct {
	Forwarded     uint64 // fresh jobs this node routed to a remote owner
	Received      uint64 // forwarded jobs accepted as owner
	Redispatched  uint64 // forwards re-routed after an owner died
	LocalFallback uint64 // routed jobs that ended up executing here
	ReplSent      uint64 // replicas delivered to peers
	ReplRecv      uint64 // replicas accepted (CRC-verified) from peers
	ReplTorn      uint64 // replicas rejected by CRC verification
	ReplDropped   uint64 // broadcasts dropped on replication-queue overflow
	Fetched       uint64 // records fetched from peers
	FetchServed   uint64 // records served to fetching peers
	StolenIn      uint64 // jobs stolen from victims and run here
	StolenOut     uint64 // queued jobs handed out to thieves
	Reclaimed     uint64 // delegations reclaimed after thief silence
	Backfilled    uint64 // records backfilled via anti-entropy sync
	HandedOut     uint64 // queued jobs handed to a joining owner
	HandedIn      uint64 // queued jobs accepted from previous owners
	BreakerTrips  uint64 // circuit-breaker opens, summed over peers
}

// Node is one fabric member: a service.Service plus the routing, steal,
// replication, and health machinery that makes N of them act as one
// scheduler. The service never learns about the cluster — the node attaches
// itself through the service's hook surface (service/cluster.go).
type Node struct {
	id   string
	opts Options
	svc  *service.Service
	tr   Transport

	ring    *Ring
	members *membership

	mu        sync.Mutex
	delegated map[string][]delegation
	health    map[string]Health // last heartbeat payload per peer

	brMu     sync.Mutex
	breakers map[string]*breaker // per-peer circuit breakers

	syncing atomic.Bool // anti-entropy backfill in progress

	replCh   chan []byte
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  bool

	forwarded     atomic.Uint64
	received      atomic.Uint64
	redispatched  atomic.Uint64
	localFallback atomic.Uint64
	replSent      atomic.Uint64
	replRecv      atomic.Uint64
	replTorn      atomic.Uint64
	replDropped   atomic.Uint64
	fetched       atomic.Uint64
	fetchServed   atomic.Uint64
	stolenIn      atomic.Uint64
	stolenOut     atomic.Uint64
	reclaimed     atomic.Uint64
	backfilled    atomic.Uint64
	handedOut     atomic.Uint64
	handedIn      atomic.Uint64
}

// New builds a node around svc. The node installs itself into the service's
// stats and completion hooks; call SetTransport, AddMember for the known
// peers, then Start.
func New(svc *service.Service, opts Options) *Node {
	opts.defaults()
	n := &Node{
		id:        opts.ID,
		opts:      opts,
		svc:       svc,
		ring:      NewRing(opts.Replicas),
		members:   newMembership(),
		delegated: map[string][]delegation{},
		health:    map[string]Health{},
		breakers:  map[string]*breaker{},
		replCh:    make(chan []byte, opts.ReplQueue),
		stop:      make(chan struct{}),
	}
	n.ring.AddWeighted(n.id, opts.Weight)
	n.members.upsert(n.selfMember(), true, time.Now())
	svc.SetClusterStats(n.nodeStats)
	svc.SetOnDone(n.onLocalDone)
	return n
}

// ID returns the node's ring identity.
func (n *Node) ID() string { return n.id }

// Service returns the wrapped scheduler.
func (n *Node) Service() *service.Service { return n.svc }

// SetTransport wires the inter-node RPC implementation. Must be called
// before Start.
func (n *Node) SetTransport(tr Transport) { n.tr = tr }

// selfMember is this node's identity as announced through joins: id,
// advertised address, and ring weight (gossip carries the weight so every
// node builds the same weighted ring).
func (n *Node) selfMember() Member {
	return Member{ID: n.id, Addr: n.opts.Addr, Weight: n.opts.Weight}
}

// AddMember registers a peer on the ring and in the membership table.
// Idempotent; safe while running (joins arrive concurrently).
func (n *Node) AddMember(mem Member) { n.admitMember(mem) }

// admitMember is the single funnel every membership source goes through
// (static config, self-join, gossip). A genuinely new member extends the
// ring at its announced weight and triggers the join-time handover of
// queued jobs whose keys the newcomer now owns. Returns true only for new
// members — the gossip-convergence signal.
func (n *Node) admitMember(mem Member) bool {
	if mem.ID == "" || mem.ID == n.id {
		return false
	}
	if !n.members.upsert(mem, false, time.Now()) {
		return false
	}
	n.ring.AddWeighted(mem.ID, mem.Weight)
	n.maybeHandover(mem.ID)
	return true
}

// JoinVia announces this node to seed (a member id the transport can reach)
// and adopts every member the seed reports — the programmatic join used by
// fabric tests and by nodes entering a running cluster.
func (n *Node) JoinVia(ctx context.Context, seed string) error {
	mems, err := n.tr.Join(ctx, seed, n.selfMember())
	if err != nil {
		return err
	}
	for _, m := range mems {
		n.AddMember(m)
	}
	return nil
}

// MarkPeerSeen records inbound evidence of a peer's liveness: any
// successful RPC *from* id (a replica delivered, a forward, a steal) resets
// its suspect timer, so a busy-but-healthy peer whose heartbeats are
// delayed is not marked dead while it is demonstrably doing work. Unknown
// ids are ignored (membership is join-driven).
func (n *Node) MarkPeerSeen(id string) {
	if id == "" || id == n.id {
		return
	}
	n.members.markAlive(id, time.Now())
}

// MemberAddr resolves a member id to its advertised address (the HTTP
// transport's resolver).
func (n *Node) MemberAddr(id string) (string, bool) { return n.members.addr(id) }

// Members lists the current membership, sorted by id.
func (n *Node) Members() []Member { return n.members.list() }

// Counters snapshots the node's cluster counters.
func (n *Node) Counters() Counters {
	return Counters{
		Forwarded:     n.forwarded.Load(),
		Received:      n.received.Load(),
		Redispatched:  n.redispatched.Load(),
		LocalFallback: n.localFallback.Load(),
		ReplSent:      n.replSent.Load(),
		ReplRecv:      n.replRecv.Load(),
		ReplTorn:      n.replTorn.Load(),
		ReplDropped:   n.replDropped.Load(),
		Fetched:       n.fetched.Load(),
		FetchServed:   n.fetchServed.Load(),
		StolenIn:      n.stolenIn.Load(),
		StolenOut:     n.stolenOut.Load(),
		Reclaimed:     n.reclaimed.Load(),
		Backfilled:    n.backfilled.Load(),
		HandedOut:     n.handedOut.Load(),
		HandedIn:      n.handedIn.Load(),
		BreakerTrips:  n.breakerTrips(),
	}
}

// Start launches the heartbeat, replication, and anti-entropy loops.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.wg.Add(2)
	go n.heartbeats()
	go n.replicator()
	if n.opts.AntiEntropyInterval > 0 {
		n.wg.Add(1)
		go n.antiEntropy()
	}
}

// Close stops the loops and synchronously reclaims every outstanding
// delegation so no caller is left waiting on a thief that will never
// report. It does not close the wrapped service — the owner does that.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.mu.Lock()
	var all []delegation
	for k, dels := range n.delegated {
		all = append(all, dels...)
		delete(n.delegated, k)
	}
	n.mu.Unlock()
	for _, d := range all {
		d.timer.Stop()
		n.svc.ExecuteNow(d.j)
	}
}

// sleepInterval blocks for one PollInterval or until the node starts
// closing. It returns false when the node is stopping, so forward-retry and
// status-poll loops observe Close instead of sleeping through it — a
// never-terminal remote job must not hold Close's wg.Wait hostage.
func (n *Node) sleepInterval() bool {
	select {
	case <-n.stop:
		return false
	case <-time.After(n.opts.PollInterval):
		return true
	}
}

// ---------------------------------------------------------------------------
// Dispatch: the submission path.

// Submit schedules cfg cluster-wide: uncacheable configs (no canonical
// identity) run locally; keys this node owns go through the local scheduler
// unchanged; everything else becomes a routed job driven to completion on
// the ring owner, with deterministic re-dispatch if the owner dies.
func (n *Node) Submit(client string, cfg sim.Config) (*service.Job, error) {
	key, cacheable := service.CacheKey(&cfg)
	if !cacheable {
		return n.svc.Submit(client, cfg)
	}
	owner := n.owner(key)
	if owner == n.id {
		return n.svc.Submit(client, cfg)
	}
	j, fresh, err := n.svc.NewRoutedJob(client, key, cfg)
	if err != nil {
		return nil, err
	}
	if fresh {
		n.forwarded.Add(1)
		n.wg.Add(1)
		go n.routeJob(j, owner)
	}
	return j, nil
}

// Run submits cfg and blocks until the job is terminal.
func (n *Node) Run(ctx context.Context, client string, cfg sim.Config) (*sim.Result, error) {
	j, err := n.Submit(client, cfg)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// owner is the ring owner of key among members that are neither marked dead
// nor currently degraded (circuit breaker open); self is never rejected, so
// it always resolves. Skipping degraded peers is the graceful-degradation
// rule: a flapping owner's keys fall to the next live node immediately
// instead of burning MaxHops timeouts per routed job.
func (n *Node) owner(key string) string {
	if o := n.ring.Owner(key, n.peerUnavailable); o != "" {
		return o
	}
	return n.id
}

// peerUnavailable is the routing liveness predicate: dead or degraded.
func (n *Node) peerUnavailable(id string) bool {
	if id == n.id {
		return false
	}
	return n.members.isDead(id) || n.breakerStalled(id)
}

// breakerFor returns (creating on first use) the circuit breaker for peer.
func (n *Node) breakerFor(peer string) *breaker {
	n.brMu.Lock()
	defer n.brMu.Unlock()
	b, ok := n.breakers[peer]
	if !ok {
		b = newBreaker(n.opts.BreakerThreshold, n.opts.BreakerCooldown, ringHash(n.id+"/"+peer))
		n.breakers[peer] = b
	}
	return b
}

// breakerStalled reports whether peer's circuit currently rejects traffic.
func (n *Node) breakerStalled(peer string) bool {
	n.brMu.Lock()
	b, ok := n.breakers[peer]
	n.brMu.Unlock()
	return ok && b.stalled(time.Now())
}

// breakerTrips sums circuit opens over all peers.
func (n *Node) breakerTrips() uint64 {
	n.brMu.Lock()
	defer n.brMu.Unlock()
	var total uint64
	for _, b := range n.breakers {
		total += b.tripCount()
	}
	return total
}

// viaBreaker routes one outbound RPC to peer through its circuit breaker:
// an open circuit short-circuits to ErrPeerDegraded without touching the
// wire; unreachable-classified failures feed the breaker; any answer —
// including ErrBusy and permanent errors — closes it and, because an
// answered RPC is liveness evidence as good as a heartbeat, resets the
// peer's suspect timer.
func (n *Node) viaBreaker(peer string, fn func() error) error {
	b := n.breakerFor(peer)
	if !b.allow(time.Now()) {
		return ErrPeerDegraded
	}
	err := fn()
	if isUnreachable(err) {
		b.onFailure(time.Now())
		return err
	}
	b.onSuccess()
	n.members.markAlive(peer, time.Now())
	return err
}

// routeJob drives a routed job to a terminal state: forward to the owner,
// mirror progress and cancellation, fetch the result bytes; when an owner
// dies, fail over to the next ring owner; as the last resort run locally
// (after trying a peer fetch — the previous owner may have completed and
// replicated before dying).
func (n *Node) routeJob(j *service.Job, owner string) {
	defer n.wg.Done()
	if !n.svc.StartRouted(j) {
		n.svc.FinishRouted(j, nil, sim.ErrCancelled)
		return
	}
	for hop := 0; hop < n.opts.MaxHops && owner != n.id; hop++ {
		done, next := n.runRemote(j, owner)
		if done {
			return
		}
		n.redispatched.Add(1)
		owner = next
	}
	n.localFallback.Add(1)
	if res, ok := n.fetchFromPeers(j.Key()); ok {
		n.svc.FinishRouted(j, res, nil)
		return
	}
	n.svc.ExecuteNow(j)
}

// runRemote forwards j to owner and follows it to a terminal state.
// done=false means the owner became unreachable mid-flight; next is the new
// ring owner to try (possibly this node).
func (n *Node) runRemote(j *service.Job, owner string) (done bool, next string) {
	ctx := context.Background()
	req := SubmitRequest{Client: n.id + "/" + j.Client(), Key: j.Key(), Cfg: j.Config()}
	var st service.Status
	for attempt := 0; ; attempt++ {
		var err error
		st, err = n.rpcSubmit(ctx, owner, req)
		if err == nil {
			break
		}
		switch {
		case isUnreachable(err):
			return false, n.failOver(owner, j.Key())
		case err == ErrBusy && attempt < n.opts.ForwardRetries:
			if !n.sleepInterval() {
				n.svc.FinishRouted(j, nil, ErrNodeClosed)
				return true, ""
			}
		case err == ErrBusy:
			// Owner is saturated: steal the job back and run it here —
			// determinism makes the potential duplicate execution benign.
			return false, n.id
		default:
			n.svc.FinishRouted(j, nil, fmt.Errorf("cluster: forward to %s: %w", owner, err))
			return true, ""
		}
	}
	sentCancel := false
	for {
		if st.State.Terminal() {
			return n.finishRemote(ctx, j, owner, st), ""
		}
		if !n.sleepInterval() {
			// Node is closing: fail the waiter rather than hold wg.Wait
			// hostage to a remote job that may never reach a terminal state.
			// If the owner does finish later, replication delivers the
			// record anyway and the duplicate execution is benign.
			n.svc.FinishRouted(j, nil, ErrNodeClosed)
			return true, ""
		}
		if !sentCancel && j.CancelRequested() {
			_ = n.rpcCancel(ctx, owner, st.ID) // best effort; polls confirm
			sentCancel = true
		}
		st2, err := n.rpcStatus(ctx, owner, st.ID)
		if err != nil {
			// Unreachable or the owner restarted and forgot the job: either
			// way the run is gone there — fail over.
			return false, n.failOver(owner, j.Key())
		}
		st = st2
		j.ReportProgress(sim.Progress{
			Cycles: st.Cycles, Retired: st.Retired,
			TargetInstrs: st.TargetInstrs, IPC: st.IPC,
		})
	}
}

// finishRemote resolves a routed job whose remote run reached a terminal
// state. Returns false (not done) only when the result bytes could not be
// retrieved from anywhere — the caller then re-dispatches.
func (n *Node) finishRemote(ctx context.Context, j *service.Job, owner string, st service.Status) bool {
	switch st.State {
	case service.StateDone:
		if res, ok := n.fetchRecord(ctx, owner, j.Key()); ok {
			n.svc.FinishRouted(j, res, nil)
			return true
		}
		if res, ok := n.fetchFromPeers(j.Key()); ok {
			n.svc.FinishRouted(j, res, nil)
			return true
		}
		n.members.markDead(owner)
		return false
	case service.StateCancelled:
		n.svc.FinishRouted(j, nil, sim.ErrCancelled)
		return true
	default:
		n.svc.FinishRouted(j, nil, &RemoteError{Node: owner, Msg: st.Error})
		return true
	}
}

// failOver marks owner dead and returns the key's next ring owner.
func (n *Node) failOver(owner, key string) string {
	n.members.markDead(owner)
	return n.owner(key)
}

// rpcSubmit/rpcStatus/rpcCancel wrap the routing RPCs with the forward
// failpoint and the per-peer circuit breaker: a failpoint firing is
// indistinguishable from a partition, and — because it fires inside the
// breaker — consecutive firings trip the circuit exactly like real
// unreachability would.
func (n *Node) rpcSubmit(ctx context.Context, node string, req SubmitRequest) (service.Status, error) {
	var st service.Status
	err := n.viaBreaker(node, func() error {
		if fpForward.Fire() {
			return ErrUnreachable
		}
		var err error
		st, err = n.tr.Submit(ctx, node, req)
		return err
	})
	return st, err
}

func (n *Node) rpcStatus(ctx context.Context, node, jobID string) (service.Status, error) {
	var st service.Status
	err := n.viaBreaker(node, func() error {
		if fpForward.Fire() {
			return ErrUnreachable
		}
		var err error
		st, err = n.tr.Status(ctx, node, jobID)
		return err
	})
	return st, err
}

func (n *Node) rpcCancel(ctx context.Context, node, jobID string) error {
	return n.viaBreaker(node, func() error {
		if fpForward.Fire() {
			return ErrUnreachable
		}
		return n.tr.Cancel(ctx, node, jobID)
	})
}

func isUnreachable(err error) bool {
	return err == ErrUnreachable || err == ErrPeerDegraded || err == service.ErrDraining
}

// ---------------------------------------------------------------------------
// Replication and peer fetch.

// onLocalDone is the service completion hook: a fresh result was computed
// here; broadcast its durable frame to peers asynchronously. Runs on the
// worker goroutine, so it only enqueues.
func (n *Node) onLocalDone(key string, res *sim.Result) {
	frame, err := service.EncodeRecord(key, res)
	if err != nil {
		return
	}
	select {
	case n.replCh <- frame:
	default:
		n.replDropped.Add(1) // peer fetch covers the gap
	}
}

// replicator drains the broadcast queue.
func (n *Node) replicator() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case frame := <-n.replCh:
			n.broadcast(frame)
		}
	}
}

// broadcast delivers one durable frame to every live peer.
func (n *Node) broadcast(frame []byte) {
	for _, p := range n.members.alivePeers(n.id) {
		if fpReplSend.Fire() {
			continue
		}
		peer := p.ID
		err := n.viaBreaker(peer, func() error {
			return n.tr.Replicate(context.Background(), peer, frame)
		})
		if err == nil {
			n.replSent.Add(1)
		}
	}
}

// fetchRecord pulls the durable frame for key from one peer, CRC-verifies
// it, and seeds the local cache on success.
func (n *Node) fetchRecord(ctx context.Context, node, key string) (*sim.Result, bool) {
	var frame []byte
	err := n.viaBreaker(node, func() error {
		if fpFetch.Fire() {
			return ErrUnreachable
		}
		var err error
		frame, err = n.tr.Fetch(ctx, node, key)
		return err
	})
	if err != nil {
		return nil, false
	}
	k, res, err := service.DecodeRecord(frame)
	if err != nil || k != key {
		return nil, false
	}
	n.fetched.Add(1)
	n.svc.SeedResult(key, res)
	return res, true
}

// fetchFromPeers tries every live peer in id order.
func (n *Node) fetchFromPeers(key string) (*sim.Result, bool) {
	for _, p := range n.members.alivePeers(n.id) {
		if res, ok := n.fetchRecord(context.Background(), p.ID, key); ok {
			return res, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Receiver-side handlers (the transport calls these on the target node).

// HandleSubmit is the owner-side intake for a forwarded job. The key is
// recomputed from the config and must match the sender's — a mismatch means
// the config did not survive its encoding and the job must not run under
// the forwarded identity.
func (n *Node) HandleSubmit(req SubmitRequest) (service.Status, error) {
	key, ok := service.CacheKey(&req.Cfg)
	if !ok || key != req.Key {
		return service.Status{}, fmt.Errorf("cluster: forwarded key %q does not match config (computed %q)", req.Key, key)
	}
	j, err := n.svc.Submit(req.Client, req.Cfg)
	if err != nil {
		return service.Status{}, err
	}
	n.received.Add(1)
	return j.Status(), nil
}

// HandleStatus polls a job by id.
func (n *Node) HandleStatus(jobID string) (service.Status, error) {
	j, ok := n.svc.Job(jobID)
	if !ok {
		return service.Status{}, service.ErrNotFound
	}
	return j.Status(), nil
}

// HandleCancel propagates a cancellation.
func (n *Node) HandleCancel(jobID string) error { return n.svc.Cancel(jobID) }

// HandleFetch serves the durable frame for key from the local cache.
func (n *Node) HandleFetch(key string) ([]byte, error) {
	res, ok := n.svc.PeekResult(key)
	if !ok {
		return nil, ErrNoRecord
	}
	frame, err := service.EncodeRecord(key, res)
	if err != nil {
		return nil, err
	}
	n.fetchServed.Add(1)
	return frame, nil
}

// HandleReplicate applies a replicated durable frame: CRC-verify, seed the
// local cache (write-through to disk when configured), and complete any
// delegated jobs waiting on the key. Torn frames are rejected and counted —
// a corrupt byte can never reach the cache.
func (n *Node) HandleReplicate(frame []byte) error {
	if len(frame) > 0 && fpReplRecv.Fire() {
		// Tear the copy mid-frame; the verification below must reject it.
		torn := append([]byte(nil), frame...)
		torn[len(torn)/2] ^= 0xFF
		frame = torn
	}
	key, res, err := service.DecodeRecord(frame)
	if err != nil {
		n.replTorn.Add(1)
		return fmt.Errorf("cluster: replica rejected: %w", err)
	}
	n.replRecv.Add(1)
	n.svc.SeedResult(key, res)
	n.completeDelegated(key, res)
	return nil
}

// HandlePing answers a heartbeat with this node's load and sync state.
func (n *Node) HandlePing() Health {
	st := n.svc.Stats()
	return Health{
		ID: n.id, Queued: st.QueueDepth, Running: st.Running, Hung: st.Hung,
		Syncing: n.syncing.Load(),
	}
}

// HandleSteal hands one queued job to a thief, arming the reclaim timer: if
// neither a replica nor a reclaim completes the job within
// DelegationTimeout, the victim re-executes it locally (determinism makes a
// thief that finished late a benign duplicate).
func (n *Node) HandleSteal() (*StolenJob, error) {
	if fpSteal.Fire() {
		return nil, nil
	}
	j, ok := n.svc.TakeQueued()
	if !ok {
		return nil, nil
	}
	n.mu.Lock()
	n.delegated[j.Key()] = append(n.delegated[j.Key()], delegation{
		j:     j,
		timer: time.AfterFunc(n.opts.DelegationTimeout, func() { n.reclaim(j) }),
	})
	n.mu.Unlock()
	n.stolenOut.Add(1)
	return &StolenJob{Key: j.Key(), Client: j.Client(), Cfg: j.Config()}, nil
}

// HandleJoin admits a member announced by a peer (or by the member itself),
// returns the full member list, and gossips genuinely new members onward so
// every existing node learns of the newcomer. Idempotent upserts make the
// gossip converge.
func (n *Node) HandleJoin(mem Member) []Member {
	// A join announcement is first-hand liveness: a restarted member that
	// re-announces itself comes back from the dead here, not only when its
	// next heartbeat lands.
	n.MarkPeerSeen(mem.ID)
	if n.admitMember(mem) {
		peers := n.members.alivePeers(n.id)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for _, p := range peers {
				if p.ID == mem.ID {
					continue
				}
				peer := p.ID
				_ = n.viaBreaker(peer, func() error {
					_, err := n.tr.Join(context.Background(), peer, mem)
					return err
				})
			}
		}()
	}
	return n.members.list()
}

// completeDelegated resolves delegated jobs whose result just arrived.
func (n *Node) completeDelegated(key string, res *sim.Result) {
	n.mu.Lock()
	dels := n.delegated[key]
	delete(n.delegated, key)
	n.mu.Unlock()
	for _, d := range dels {
		d.timer.Stop()
		n.svc.FinishStolen(d.j, res)
	}
}

// reclaim re-executes a delegated job whose thief never reported back.
func (n *Node) reclaim(j *service.Job) {
	n.mu.Lock()
	dels := n.delegated[j.Key()]
	rest := dels[:0]
	found := false
	for _, d := range dels {
		if d.j == j {
			found = true
			continue
		}
		rest = append(rest, d)
	}
	if len(rest) == 0 {
		delete(n.delegated, j.Key())
	} else {
		n.delegated[j.Key()] = rest
	}
	n.mu.Unlock()
	if !found {
		return
	}
	n.reclaimed.Add(1)
	n.svc.ExecuteNow(j)
}

// ---------------------------------------------------------------------------
// Health and stealing.

// heartbeats is the node-granularity watchdog loop: probe every peer (dead
// ones too — that is how they revive after a healed partition), sweep for
// stale heartbeats, then consider stealing work if idle.
func (n *Node) heartbeats() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.heartbeatRound()
		}
	}
}

func (n *Node) heartbeatRound() {
	for _, p := range n.members.peers(n.id) {
		if fpHeartbeat.Fire() {
			continue
		}
		peer := p.ID
		var h Health
		err := n.viaBreaker(peer, func() error {
			var err error
			h, err = n.tr.Ping(context.Background(), peer)
			return err
		})
		if err != nil {
			// An open breaker suppresses the probe entirely; once the
			// cooldown elapses this same loop becomes the half-open probe.
			continue
		}
		n.mu.Lock()
		n.health[peer] = h
		n.mu.Unlock()
	}
	n.members.sweep(time.Now(), n.opts.SuspectAfter)
	n.maybeSteal()
}

// maybeSteal pulls one job from the most loaded live peer when this node's
// own queue is empty — skew smoothing, not load balancing: the ring already
// spreads keys, stealing only absorbs hot-spot bursts.
func (n *Node) maybeSteal() {
	if n.svc.QueueDepth() > 0 {
		return
	}
	victim, best := "", n.opts.StealThreshold-1
	n.mu.Lock()
	for id, h := range n.health {
		if h.Queued > best && !n.peerUnavailable(id) {
			victim, best = id, h.Queued
		}
	}
	n.mu.Unlock()
	if victim == "" {
		return
	}
	var sj *StolenJob
	err := n.viaBreaker(victim, func() error {
		var err error
		sj, err = n.tr.Steal(context.Background(), victim)
		return err
	})
	if err != nil || sj == nil {
		return
	}
	n.wg.Add(1)
	go n.runStolen(victim, sj)
}

// runStolen executes one stolen job and delivers the result straight back
// to the victim (the broadcast replication would also get there, but the
// direct send beats the victim's delegation timeout deterministically).
func (n *Node) runStolen(victim string, sj *StolenJob) {
	defer n.wg.Done()
	n.stolenIn.Add(1)
	res, err := n.svc.Run(context.Background(), "steal/"+victim, sj.Cfg)
	if err != nil {
		return // victim reclaims on the delegation timeout
	}
	//simlint:dettaintok res is the simulator's deterministic Result; the taint is Job.submitted scheduling metadata, which EncodeRecord never frames
	frame, err := service.EncodeRecord(sj.Key, res)
	if err != nil {
		return
	}
	err = n.viaBreaker(victim, func() error {
		return n.tr.Replicate(context.Background(), victim, frame)
	})
	if err == nil {
		n.replSent.Add(1)
	}
}

// nodeStats is the service stats hook: the per-node rows for
// /api/v1/stats/stream and the NODE table in emcctl top.
func (n *Node) nodeStats(local *service.Stats) []service.NodeStat {
	rows := []service.NodeStat{{
		Node: n.id, Addr: n.opts.Addr, State: "self",
		Queued: local.QueueDepth, Running: local.Running, Hung: local.Hung,
		Syncing:      n.syncing.Load(),
		Forwarded:    n.forwarded.Load(),
		Redispatched: n.redispatched.Load(),
		StolenIn:     n.stolenIn.Load(),
		StolenOut:    n.stolenOut.Load(),
		Replicated:   n.replRecv.Load(),
		ReplTorn:     n.replTorn.Load(),
		Fetched:      n.fetched.Load(),
		Backfilled:   n.backfilled.Load(),
		HandedOut:    n.handedOut.Load(),
		HandedIn:     n.handedIn.Load(),
		BreakerTrips: n.breakerTrips(),
	}}
	now := time.Now()
	for _, m := range n.members.rows(n.id) {
		row := service.NodeStat{Node: m.ID, Addr: m.Addr, State: "alive", HeartbeatAgeMS: -1}
		switch {
		case !m.Alive:
			row.State = "dead"
		case n.breakerStalled(m.ID):
			// Alive (heartbeats still land or the suspect window has not
			// elapsed) but the circuit is open: degraded, routed around.
			row.State = "degraded"
		}
		if !m.LastBeat.IsZero() {
			row.HeartbeatAgeMS = now.Sub(m.LastBeat).Milliseconds()
		}
		n.mu.Lock()
		if h, ok := n.health[m.ID]; ok {
			row.Queued, row.Running, row.Hung = h.Queued, h.Running, h.Hung
			row.Syncing = h.Syncing
		}
		n.mu.Unlock()
		rows = append(rows, row)
	}
	return rows
}
