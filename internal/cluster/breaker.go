package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows,
// failures counted), open (traffic rejected until the reopen deadline),
// half-open (exactly one probe in flight decides between closed and open).
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one peer's circuit: `threshold` consecutive unreachable
// failures trip it open, rejecting further RPCs to that peer for a jittered
// cooldown instead of burning a timeout per call — the graceful-degradation
// half of DESIGN.md §16. After the cooldown one probe is let through
// (half-open); success closes the circuit, failure reopens it with fresh
// jitter. Only unreachable-classified failures count: a peer that answers
// (even with ErrBusy or a permanent error) is up.
//
// The jitter source is seeded from the (self, peer) pair, so a chaos
// schedule replays the same reopen deadlines — deterministic per seed like
// everything else in the suite — while distinct nodes still desynchronize
// their probes against a flapping peer.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	state    breakerState
	fails    int  // consecutive unreachable failures while closed
	probing  bool // half-open: the single probe slot is taken
	reopenAt time.Time
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration, seed uint64) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		rng:       rand.New(rand.NewSource(int64(seed | 1))),
	}
}

// allow reports whether an RPC may go out now, claiming the half-open probe
// slot when the cooldown has elapsed. A false return must be treated as the
// peer being unreachable (ErrPeerDegraded) without touching the wire.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.reopenAt) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// stalled reports whether the circuit currently rejects traffic, without
// mutating it — the routing predicate's read-only view. A half-open circuit
// counts as stalled while its probe is outstanding, so ownership does not
// flap on the probe's coattails.
func (b *breaker) stalled(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return now.Before(b.reopenAt) || b.probing
	case breakerHalfOpen:
		return b.probing
	default:
		return false
	}
}

// onSuccess closes the circuit (any state) and clears the failure streak.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records one unreachable failure: a closed circuit trips once
// the streak reaches threshold, a half-open probe failure reopens
// immediately. The reopen deadline is cooldown × [0.75, 1.25) from the
// breaker's own deterministic jitter stream.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails < b.threshold {
			return
		}
	case breakerOpen:
		return // already open; a straggler RPC finished late
	}
	b.state = breakerOpen
	b.fails = 0
	b.trips++
	jitter := 0.75 + 0.5*b.rng.Float64()
	b.reopenAt = now.Add(time.Duration(float64(b.cooldown) * jitter))
}

// tripCount returns how many times the circuit has opened.
func (b *breaker) tripCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
