// Package cluster turns N emcserve processes (or N in-process services)
// into one sweep fabric: a consistent-hash ring assigns every cache key a
// single owning node, so duplicate submissions serialize behind their first
// run cluster-wide regardless of which node receives them; completed
// results replicate to peers as the same CRC-framed EMCR records the
// durable cache writes to disk; idle nodes steal queued work from skewed
// ones; and heartbeats promote the hung-job watchdog to node granularity,
// with deterministic re-dispatch of jobs owned by a dead node.
//
// Determinism is the load-bearing wall throughout (DESIGN.md §15): a key's
// result is a pure function of the key, so a split-brain double execution
// or a re-dispatch race produces bit-identical bytes and the
// content-addressed caches converge instead of conflicting.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is the consistent-hash ring: each node contributes `replicas`
// virtual points per unit of weight (FNV-64a of "id#i"), a key belongs to
// the first point at or clockwise after its own hash. Ownership is a pure
// function of the member set (ids and weights) and the liveness predicate,
// so every node that agrees on those agrees on the owner — no coordination
// round needed.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint
	nodes    map[string]int // id -> weight
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per member
// (<= 0 selects the default of 64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, nodes: map[string]int{}}
}

// Add inserts a node's virtual points at weight 1. Idempotent.
func (r *Ring) Add(node string) { r.AddWeighted(node, 1) }

// AddWeighted inserts a node with `weight × replicas` virtual points, so a
// weight-3 node owns ~3× the keyspace of a weight-1 node (heterogeneous
// fabrics: weight by core count). Weight <= 0 selects 1. Idempotent per id;
// the first weight a node is learned with wins — a re-announce with a
// different weight is ignored, because silently resizing a live member's
// share would shift ownership mid-flight on some nodes before others.
func (r *Ring) AddWeighted(node string, weight int) {
	if weight <= 0 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] != 0 {
		return
	}
	r.nodes[node] = weight
	for i := 0; i < r.replicas*weight; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Equal hashes (vanishingly rare): break the tie by id so the sort,
		// and therefore ownership, is deterministic across nodes.
		return r.points[i].node < r.points[j].node
	})
}

// Owner returns the node owning key: the first clockwise point whose node
// the dead predicate (nil = none) does not reject. A dead owner's keys thus
// fall to the next distinct live node — the deterministic re-dispatch rule.
// Returns "" only when every member is rejected or the ring is empty.
func (r *Ring) Owner(key string, dead func(node string) bool) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if dead == nil || !dead(p.node) {
			return p.node
		}
	}
	return ""
}

// Nodes lists the member ids, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
