// Weighted-ring determinism tests: identical member sets and weights must
// produce identical ownership on every node (golden table pinned against
// FNV-64a, which is platform-stable), a join must move only the keys that
// change owner, and weights must actually skew the keyspace share.
package cluster_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

func weightedRing(order [][2]any) *cluster.Ring {
	r := cluster.NewRing(0)
	for _, e := range order {
		r.AddWeighted(e[0].(string), e[1].(int))
	}
	return r
}

// TestRingWeightedOwnershipGolden pins the weighted ownership function: any
// change to the hash, the point layout, or the weight expansion shows up as
// a diff against this table — the cross-node agreement contract, frozen.
func TestRingWeightedOwnershipGolden(t *testing.T) {
	r := weightedRing([][2]any{{"alpha", 1}, {"beta", 2}, {"gamma", 3}})
	golden := []struct{ key, owner string }{
		{"emcr/mcf/seed1", "beta"},
		{"emcr/mcf/seed42", "alpha"},
		{"emcr/sphinx3/seed1", "gamma"},
		{"emcr/sphinx3/seed42", "beta"},
		{"emcr/soplex/seed1", "beta"},
		{"emcr/soplex/seed42", "beta"},
		{"emcr/libquantum/seed1", "gamma"},
		{"emcr/libquantum/seed42", "gamma"},
		{"emcr/omnetpp/seed1", "alpha"},
		{"emcr/omnetpp/seed42", "beta"},
		{"emcr/milc/seed1", "gamma"},
		{"emcr/milc/seed42", "gamma"},
		{"emcr/gcc/seed1", "beta"},
		{"emcr/gcc/seed42", "beta"},
		{"emcr/lbm/seed1", "beta"},
		{"emcr/lbm/seed42", "beta"},
	}
	for _, g := range golden {
		if got := r.Owner(g.key, nil); got != g.owner {
			t.Errorf("Owner(%q) = %q, want %q", g.key, got, g.owner)
		}
	}
}

// TestRingWeightedAddOrderIndependence: ownership is a pure function of the
// (id, weight) set — the order members were learned in (which differs per
// node under gossip) must not matter.
func TestRingWeightedAddOrderIndependence(t *testing.T) {
	orders := [][][2]any{
		{{"alpha", 1}, {"beta", 2}, {"gamma", 3}},
		{{"gamma", 3}, {"alpha", 1}, {"beta", 2}},
		{{"beta", 2}, {"gamma", 3}, {"alpha", 1}},
	}
	ref := weightedRing(orders[0])
	for oi, order := range orders[1:] {
		r := weightedRing(order)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("wkey/%d/%d", i, i*7919)
			if got, want := r.Owner(key, nil), ref.Owner(key, nil); got != want {
				t.Fatalf("order %d: Owner(%q) = %q, want %q", oi+1, key, got, want)
			}
		}
	}
}

// TestRingWeightedFirstWeightWins: a re-announce with a different weight is
// ignored — silently resizing a live member's share would shift ownership
// mid-flight on some nodes before others.
func TestRingWeightedFirstWeightWins(t *testing.T) {
	a := weightedRing([][2]any{{"alpha", 1}, {"beta", 2}})
	b := weightedRing([][2]any{{"alpha", 1}, {"beta", 2}})
	b.AddWeighted("beta", 5)
	b.Add("alpha")
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("wkey/%d/%d", i, i*104729)
		if got, want := b.Owner(key, nil), a.Owner(key, nil); got != want {
			t.Fatalf("re-announce changed Owner(%q): %q != %q", key, got, want)
		}
	}
}

// TestRingWeightedDistribution: weight skews the keyspace share in the
// right direction (loose bounds — 64 points per weight unit is lumpy, and
// the probe keys come from a seeded PRNG because FNV clusters structured
// keys that differ only in a short suffix).
func TestRingWeightedDistribution(t *testing.T) {
	r := weightedRing([][2]any{{"alpha", 1}, {"beta", 2}, {"gamma", 3}})
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("%016x", rng.Uint64()), nil)]++
	}
	if counts["gamma"] <= counts["alpha"] || counts["beta"] <= counts["alpha"] {
		t.Fatalf("weight did not skew ownership: %v", counts)
	}
}

// TestRingJoinMinimalChurn: adding a member moves a key only when the new
// member becomes its owner — consistent hashing's no-gratuitous-churn
// property, which join-time handover relies on (previous owners hand over
// exactly the joiner's keys, nothing reshuffles between survivors).
func TestRingJoinMinimalChurn(t *testing.T) {
	before := weightedRing([][2]any{{"node0", 1}, {"node1", 2}})
	after := weightedRing([][2]any{{"node0", 1}, {"node1", 2}, {"node2", 2}})
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("jkey/%d/%d", i, i*31337)
		ob, oa := before.Owner(key, nil), after.Owner(key, nil)
		if oa != ob {
			if oa != "node2" {
				t.Fatalf("key %q churned %q -> %q without involving the joiner", key, ob, oa)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("joiner took no keys — weighted insert is broken")
	}
}
