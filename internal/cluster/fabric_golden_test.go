package cluster_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestFabricFigureBytesIdentical is the cluster golden test (the issue's
// acceptance bar): the Fig. 12 sweep — 80 quad-core runs — with every run
// round-robined across a 3-node fabric must render byte-identically to the
// direct single-process path. Routing, cross-node coalescing, result
// fetch, and replication all sit between the submission and the table; the
// bytes must not care.
func TestFabricFigureBytesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("80-run sweep ×2 paths; skipped in -short")
	}
	fault.DisableAll()
	opts := figures.DefaultOptions()
	opts.InstrPerCore = 1200
	opts.Parallel = 4

	direct, err := figures.NewSuite(opts).Fig12()
	if err != nil {
		t.Fatal(err)
	}

	f := newFabric(t, 3, func(int) service.Config {
		return service.Config{Workers: 4, QueueCap: 1024}
	})
	var rr atomic.Uint64
	sopts := opts
	sopts.Runner = func(cfg sim.Config) (*sim.Result, error) {
		n := f.Nodes[int(rr.Add(1))%len(f.Nodes)]
		return n.Run(context.Background(), "golden", cfg)
	}
	served, err := figures.NewSuite(sopts).Fig12()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := served.String(), direct.String(); got != want {
		t.Fatalf("fabric table differs from direct run:\n--- direct ---\n%s\n--- fabric ---\n%s", want, got)
	}

	// The fabric must actually have fabric'd: round-robin entry means ~2/3
	// of submissions hit a non-owner and were forwarded.
	var forwarded, received cluster.Counters
	for _, n := range f.Nodes {
		c := n.Counters()
		forwarded.Forwarded += c.Forwarded
		received.Received += c.Received
	}
	if forwarded.Forwarded == 0 || received.Received == 0 {
		t.Fatalf("sweep never exercised routing (forwarded=%d received=%d)", forwarded.Forwarded, received.Received)
	}
	for i, n := range f.Nodes {
		st := n.Service().Stats()
		if st.Failed != 0 {
			t.Fatalf("node%d failed %d jobs during the sweep", i, st.Failed)
		}
	}
	// Dedup held cluster-wide: executions ≤ distinct configs (80).
	if got := sumExecuted(f); got == 0 || got > 80 {
		t.Fatalf("fabric executed %d runs for an 80-config sweep", got)
	}
}
