package cluster

import (
	"context"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

// Handover failpoint (see internal/fault): handover.ack fires on the
// receiver after the jobs were accepted, modelling a lost ack — the
// previous owner reclaims and re-executes locally, and determinism makes
// the double execution benign.
var fpHandoverAck = fault.Register(fault.SiteClusterHandoverAck)

// maybeHandover is the join-time rebalancing donor path, called from
// admitMember when joiner enters the ring: every queued (never running)
// cacheable job whose key the joiner now owns is handed over, so ownership
// and placement re-align immediately instead of only for future
// submissions.
//
// The handover state machine mirrors work stealing — the only protocol in
// the fabric already proven to preserve exactly-one-completion:
//
//  1. take the jobs off the local queues (they stay in the job table and
//     inflight map, so status polls and cluster-wide coalescing still work);
//  2. register each as a delegation with a reclaim timer BEFORE the RPC, so
//     a crash of the joiner mid-transfer can never strand a job;
//  3. send the batch; on any error (including a lost ack) reclaim and
//     execute locally — the worst case is a benign duplicate execution,
//     because the result is a pure function of the key.
//
// Completion flows back exactly as for stolen jobs: the joiner's replica
// broadcast resolves the delegation (completeDelegated → FinishStolen), or
// the reclaim timer fires.
func (n *Node) maybeHandover(joiner string) {
	jobs := n.svc.TakeQueuedFor(func(key string) bool {
		return n.owner(key) == joiner
	})
	if len(jobs) == 0 {
		return
	}
	sjs := make([]StolenJob, 0, len(jobs))
	n.mu.Lock()
	for _, j := range jobs {
		j := j
		n.delegated[j.Key()] = append(n.delegated[j.Key()], delegation{
			j:     j,
			timer: time.AfterFunc(n.opts.DelegationTimeout, func() { n.reclaim(j) }),
		})
		sjs = append(sjs, StolenJob{Key: j.Key(), Client: j.Client(), Cfg: j.Config()})
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		err := n.viaBreaker(joiner, func() error {
			return n.tr.Handover(context.Background(), joiner, HandoverRequest{From: n.id, Jobs: sjs})
		})
		if err != nil {
			// Transfer failed or the ack was lost after acceptance: reclaim
			// every job now instead of waiting out the delegation timeout.
			// If the joiner did accept, both sides execute — benign.
			for _, j := range jobs {
				n.reclaim(j)
			}
			return
		}
		n.handedOut.Add(uint64(len(jobs)))
	}()
}

// HandleHandover is the receiver side: each handed-over job is re-submitted
// through the local scheduler, where the usual fast paths apply (a cached
// result completes it instantly, an identical in-flight job coalesces).
// Keys are recomputed from the configs and mismatches skipped — the
// sender's reclaim timer covers anything not accepted. The ack failpoint
// fires after acceptance so the chaos suite can exercise the
// both-sides-execute path.
func (n *Node) HandleHandover(req HandoverRequest) error {
	for _, sj := range req.Jobs {
		key, ok := service.CacheKey(&sj.Cfg)
		if !ok || key != sj.Key {
			continue
		}
		if _, err := n.svc.Submit(req.From+"/"+sj.Client, sj.Cfg); err != nil {
			continue
		}
		n.handedIn.Add(1)
	}
	if fpHandoverAck.Fire() {
		return ErrUnreachable
	}
	return nil
}
