package vm

import (
	"testing"
	"testing/quick"
)

func TestPageTableFirstTouch(t *testing.T) {
	fa := NewFrameAllocator()
	pt0 := NewPageTable(0, fa)
	pt1 := NewPageTable(1, fa)

	a := pt0.Translate(0x1000)
	b := pt0.Translate(0x1008)
	if a>>PageShift != b>>PageShift {
		t.Error("same page should map to same frame")
	}
	if a&PageMask != 0 || b&PageMask != 8 {
		t.Error("page offset must be preserved")
	}
	c := pt1.Translate(0x1000)
	if c>>PageShift == a>>PageShift {
		t.Error("different address spaces must get different frames")
	}
	if pt0.Pages() != 1 || pt1.Pages() != 1 {
		t.Errorf("page counts wrong: %d, %d", pt0.Pages(), pt1.Pages())
	}
	if fa.Allocated() != 2 {
		t.Errorf("allocated %d frames, want 2", fa.Allocated())
	}
}

func TestPageTableDeterminism(t *testing.T) {
	build := func() []uint64 {
		fa := NewFrameAllocator()
		pt := NewPageTable(0, fa)
		var out []uint64
		for _, v := range []uint64{0x5000, 0x1000, 0x9000, 0x1000, 0x5008} {
			out = append(out, pt.Translate(v))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("translation %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	tlb := NewTLB(2, 50)

	_, lat := tlb.Access(pt, 0x1000)
	if lat != 50 {
		t.Errorf("first access latency %d, want walk latency 50", lat)
	}
	_, lat = tlb.Access(pt, 0x1800)
	if lat != 0 {
		t.Errorf("same-page access latency %d, want 0", lat)
	}
	tlb.Access(pt, 0x2000)
	// 2-entry TLB now holds pages 1 and 2; page 3 evicts LRU (page 1).
	tlb.Access(pt, 0x3000)
	if _, lat = tlb.Access(pt, 0x1000); lat != 50 {
		t.Error("LRU entry should have been evicted")
	}
	if tlb.Hits != 1 || tlb.Misses != 4 {
		t.Errorf("hits=%d misses=%d, want 1/4", tlb.Hits, tlb.Misses)
	}
}

func TestTLBInvalidate(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	tlb := NewTLB(4, 10)
	tlb.Access(pt, 0x1000)
	tlb.Invalidate(0x1234, PageShift) // same page
	if _, lat := tlb.Access(pt, 0x1000); lat != 10 {
		t.Error("invalidated entry should miss")
	}
}

func TestTLBTranslationCorrect(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	tlb := NewTLB(8, 10)
	f := func(v uint64) bool {
		v &= (1 << 40) - 1
		p1, _ := tlb.Access(pt, v)
		p2 := pt.Translate(v)
		return p1 == p2 && p1&PageMask == v&PageMask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEMCTLBBasics(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	e := NewEMCTLB(2)

	if _, ok := e.Lookup(0x1000); ok {
		t.Fatal("empty EMC TLB should miss")
	}
	pte := pt.Lookup(0x1000)
	e.Insert(0x1000, pte)
	if !pte.EMCResident {
		t.Error("Insert must set the PTE's EMCResident bit")
	}
	p, ok := e.Lookup(0x1040)
	if !ok || p != pt.Translate(0x1040) {
		t.Errorf("EMC TLB lookup wrong: %#x ok=%v", p, ok)
	}
	// Duplicate insert must not consume a slot.
	e.Insert(0x1000, pte)
	pte2 := pt.Lookup(0x2000)
	e.Insert(0x2000, pte2)
	if !e.Resident(0x1000) || !e.Resident(0x2000) {
		t.Error("both translations should be resident")
	}
	// Circular eviction: third page evicts the oldest (page 1) and clears
	// its residence bit.
	pte3 := pt.Lookup(0x3000)
	e.Insert(0x3000, pte3)
	if e.Resident(0x1000) {
		t.Error("oldest entry should have been evicted")
	}
	if pte.EMCResident {
		t.Error("evicted PTE must have EMCResident cleared")
	}
	if !pte2.EMCResident || !pte3.EMCResident {
		t.Error("live PTEs must keep EMCResident set")
	}
}

func TestEMCTLBShootdown(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	e := NewEMCTLB(4)
	pte := pt.Lookup(0x5000)
	e.Insert(0x5000, pte)
	e.Invalidate(0x5FFF)
	if e.Resident(0x5000) {
		t.Error("shootdown should remove the translation")
	}
	if pte.EMCResident {
		t.Error("shootdown should clear the residence bit")
	}
	if _, ok := e.Lookup(0x5000); ok {
		t.Error("lookup after shootdown should miss")
	}
}

func TestEMCTLBCounters(t *testing.T) {
	fa := NewFrameAllocator()
	pt := NewPageTable(0, fa)
	e := NewEMCTLB(4)
	e.Lookup(0x1000)
	e.Insert(0x1000, pt.Lookup(0x1000))
	e.Lookup(0x1000)
	if e.Hits != 1 || e.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", e.Hits, e.Misses)
	}
}
