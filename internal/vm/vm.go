// Package vm models virtual memory for the simulator: per-core address
// spaces, first-touch physical frame allocation, core TLBs, and the EMC's
// small per-core circular TLBs with the residence-tracking bit the paper
// adds to each core page-table entry (§4.1.4).
package vm

// PageShift selects the default 4 KiB pages. Page size is configurable per
// page table: the system simulator uses 2 MiB pages (LargePageShift) for
// workload heaps, modeling the large-page mappings that pointer-chasing
// working sets need for the EMC's 32-entry TLB to be effective (a 4 KiB-page
// heap of tens of MB would miss the EMC TLB on nearly every dependent load
// and abort every chain, which clearly is not the regime the paper reports).
const PageShift = 12

// LargePageShift selects 2 MiB pages.
const LargePageShift = 21

// PageSize is the default page size in bytes.
const PageSize = 1 << PageShift

// PageMask extracts the offset within a default-size page.
const PageMask = PageSize - 1

// PTE is a page-table entry: the physical frame number plus the bit the
// paper adds to track whether the translation is resident in the EMC TLB
// (used for shootdowns and to decide whether a chain must carry its PTE).
type PTE struct {
	Frame       uint64
	EMCResident bool
}

// PageTable is one core's (process's) page table with first-touch physical
// allocation from a shared frame allocator.
type PageTable struct {
	asid   int
	frames *FrameAllocator
	pages  map[uint64]*PTE
	shift  uint
}

// FrameAllocator hands out physical frames sequentially across all address
// spaces, mimicking an OS that interleaves processes through physical
// memory. Deterministic: allocation order is first-touch order.
type FrameAllocator struct {
	next uint64
}

// NewFrameAllocator returns an allocator starting at frame 0.
func NewFrameAllocator() *FrameAllocator { return &FrameAllocator{} }

// Alloc returns the next free physical frame number.
func (f *FrameAllocator) Alloc() uint64 {
	n := f.next
	f.next++
	return n
}

// Allocated returns how many frames have been handed out.
func (f *FrameAllocator) Allocated() uint64 { return f.next }

// NewPageTable returns an empty page table with default 4 KiB pages.
func NewPageTable(asid int, frames *FrameAllocator) *PageTable {
	return NewPageTableShift(asid, frames, PageShift)
}

// NewPageTableShift returns an empty page table with 2^shift-byte pages.
func NewPageTableShift(asid int, frames *FrameAllocator, shift uint) *PageTable {
	return &PageTable{asid: asid, frames: frames, pages: make(map[uint64]*PTE), shift: shift}
}

// Shift returns the page-size shift of the table.
func (p *PageTable) Shift() uint { return p.shift }

// ASID returns the table's address-space id.
func (p *PageTable) ASID() int { return p.asid }

// Lookup returns the PTE for a virtual address, allocating a frame on first
// touch (the simulator has no page faults to the OS; every page is backed).
func (p *PageTable) Lookup(vaddr uint64) *PTE {
	vpn := vaddr >> p.shift
	pte, ok := p.pages[vpn]
	if !ok {
		pte = &PTE{Frame: p.frames.Alloc()}
		p.pages[vpn] = pte
	}
	return pte
}

// Translate maps a virtual address to a physical address.
func (p *PageTable) Translate(vaddr uint64) uint64 {
	return p.Lookup(vaddr).Frame<<p.shift | (vaddr & (1<<p.shift - 1))
}

// Pages returns the number of mapped pages.
func (p *PageTable) Pages() int { return len(p.pages) }

// TLB is a fully-associative translation lookaside buffer with true-LRU
// replacement, used for the cores' L1 TLBs.
type TLB struct {
	entries int
	walkLat int // page-walk latency in cycles on a miss
	slots   []tlbSlot
	tick    uint64
	Hits    uint64
	Misses  uint64
}

type tlbSlot struct {
	vpn   uint64
	frame uint64
	valid bool
	used  uint64
}

// NewTLB returns a TLB with the given entry count and miss (walk) latency.
func NewTLB(entries, walkLatency int) *TLB {
	return &TLB{entries: entries, walkLat: walkLatency, slots: make([]tlbSlot, entries)}
}

// Access translates vaddr through the TLB backed by pt. It returns the
// physical address and the translation latency in cycles (0 on a hit).
func (t *TLB) Access(pt *PageTable, vaddr uint64) (paddr uint64, lat int) {
	t.tick++
	sh := pt.shift
	mask := uint64(1)<<sh - 1
	vpn := vaddr >> sh
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpn == vpn {
			s.used = t.tick
			t.Hits++
			return s.frame<<sh | (vaddr & mask), 0
		}
	}
	t.Misses++
	pte := pt.Lookup(vaddr)
	victim := 0
	for i := range t.slots {
		if !t.slots[i].valid {
			victim = i
			break
		}
		if t.slots[i].used < t.slots[victim].used {
			victim = i
		}
	}
	t.slots[victim] = tlbSlot{vpn: vpn, frame: pte.Frame, valid: true, used: t.tick}
	return pte.Frame<<sh | (vaddr & mask), t.walkLat
}

// Invalidate drops a translation (TLB shootdown). shift must match the page
// table the TLB fronts.
func (t *TLB) Invalidate(vaddr uint64, shift uint) {
	vpn := vaddr >> shift
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].vpn == vpn {
			t.slots[i].valid = false
		}
	}
}

// EMCTLB is the EMC's per-core translation buffer (§4.1.4): a small circular
// buffer caching the PTEs of the last pages the EMC accessed for that core.
// Each insertion sets the EMCResident bit in the core's PTE so the core can
// (a) invalidate the entry on shootdown and (b) know, before shipping a
// chain, whether the source miss's translation is already at the EMC.
type EMCTLB struct {
	slots []emcSlot
	next  int // circular insertion cursor
	shift uint

	Hits   uint64
	Misses uint64
}

type emcSlot struct {
	vpn   uint64
	frame uint64
	valid bool
	pte   *PTE
}

// NewEMCTLB returns an EMC TLB with n entries (Table 1: 32 per core) and
// default 4 KiB pages.
func NewEMCTLB(n int) *EMCTLB {
	return NewEMCTLBShift(n, PageShift)
}

// NewEMCTLBShift returns an EMC TLB with 2^shift-byte pages.
func NewEMCTLBShift(n int, shift uint) *EMCTLB {
	return &EMCTLB{slots: make([]emcSlot, n), shift: shift}
}

// Lookup translates vaddr if the translation is resident. The EMC does not
// walk page tables: on a miss the caller must halt the chain and bounce it
// back to the core (§4.1.4).
func (t *EMCTLB) Lookup(vaddr uint64) (paddr uint64, ok bool) {
	vpn := vaddr >> t.shift
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpn == vpn {
			t.Hits++
			return s.frame<<t.shift | (vaddr & (1<<t.shift - 1)), true
		}
	}
	t.Misses++
	return 0, false
}

// Resident reports whether a translation for vaddr is present.
func (t *EMCTLB) Resident(vaddr uint64) bool {
	vpn := vaddr >> t.shift
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].vpn == vpn {
			return true
		}
	}
	return false
}

// Insert installs the PTE for vaddr, evicting the oldest entry (circular
// order), and maintains the EMCResident bits on both the evicted and the
// inserted core PTEs.
func (t *EMCTLB) Insert(vaddr uint64, pte *PTE) {
	if t.Resident(vaddr) {
		return
	}
	old := &t.slots[t.next]
	if old.valid && old.pte != nil {
		old.pte.EMCResident = false
	}
	*old = emcSlot{vpn: vaddr >> t.shift, frame: pte.Frame, valid: true, pte: pte}
	pte.EMCResident = true
	t.next = (t.next + 1) % len(t.slots)
}

// Invalidate implements the EMC side of a TLB shootdown.
func (t *EMCTLB) Invalidate(vaddr uint64) {
	vpn := vaddr >> t.shift
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpn == vpn {
			if s.pte != nil {
				s.pte.EMCResident = false
			}
			s.valid = false
		}
	}
}
