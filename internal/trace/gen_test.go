package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range AllNames() {
		p := MustByName(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
}

func TestTable2Classification(t *testing.T) {
	high := map[string]bool{}
	for _, n := range HighIntensityNames() {
		high[n] = true
	}
	if len(high) != 8 {
		t.Fatalf("expected 8 high-intensity benchmarks, got %d", len(high))
	}
	for _, name := range AllNames() {
		p := MustByName(name)
		if p.MemIntensive != high[name] {
			t.Errorf("%s: MemIntensive=%v, want %v", name, p.MemIntensive, high[name])
		}
	}
	// The paper's Table 2 lists 8 high + 21 low = 29 benchmarks.
	if got := len(AllNames()); got != 29 {
		t.Errorf("expected 29 profiles, got %d", got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("notabenchmark"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(MustByName("mcf"), 42, 5000)
	b := Generate(MustByName("mcf"), 42, 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("uop %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Generate(MustByName("mcf"), 43, 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

// TestValueConsistencyAll is the central trace invariant: every benchmark's
// trace passes the ISS check (addresses recomputable from dataflow, stack
// load/store aliasing consistent).
func TestValueConsistencyAll(t *testing.T) {
	for _, name := range AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g := NewGenerator(MustByName(name), 7)
			if err := Check(&LimitReader{R: g, N: 20000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: value consistency holds for arbitrary seeds.
func TestValueConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(MustByName("mcf"), seed)
		return Check(&LimitReader{R: g, N: 4000}) == nil
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInstructionMix(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "libquantum", "omnetpp", "gcc"} {
		p := MustByName(name)
		g := NewGenerator(p, 11)
		const n = 60000
		for i := 0; i < n; i++ {
			g.Next()
		}
		st := g.Stats()
		memFrac := float64(st.Loads+st.Stores) / float64(st.Uops)
		brFrac := float64(st.Branches) / float64(st.Uops)
		if memFrac < p.MemFrac*0.85 || memFrac > p.MemFrac*1.25 {
			t.Errorf("%s: mem frac %.3f, want near %.3f", name, memFrac, p.MemFrac)
		}
		if p.BranchFrac > 0.02 && (brFrac < p.BranchFrac*0.7 || brFrac > p.BranchFrac*1.3) {
			t.Errorf("%s: branch frac %.3f, want near %.3f", name, brFrac, p.BranchFrac)
		}
	}
}

func TestChaseStructure(t *testing.T) {
	p := MustByName("mcf")
	g := NewGenerator(p, 3)
	for i := 0; i < 50000; i++ {
		g.Next()
	}
	st := g.Stats()
	if st.ChaseEpisodes == 0 {
		t.Fatal("mcf generated no chase episodes")
	}
	if st.DepChainLinks == 0 {
		t.Fatal("mcf generated no dependent chain links")
	}
	avgOps := float64(st.DepChainOps) / float64(st.DepChainLinks)
	lo, hi := float64(p.ChainALUOps[0]), float64(p.ChainALUOps[1])
	if avgOps < lo || avgOps > hi {
		t.Errorf("avg chain ops %.2f outside profile range [%v,%v]", avgOps, lo, hi)
	}
	// lbm must have zero chase activity (paper: "lbm contains no dependent
	// cache misses").
	gl := NewGenerator(MustByName("lbm"), 3)
	for i := 0; i < 50000; i++ {
		gl.Next()
	}
	if gl.Stats().ChaseLoads != 0 {
		t.Errorf("lbm generated %d chase loads, want 0", gl.Stats().ChaseLoads)
	}
}

// TestChaseAddressDataflow verifies end-to-end that executing the chain ops
// functionally reproduces every dependent load's recorded address — the
// property the EMC relies on.
func TestChaseAddressDataflow(t *testing.T) {
	uops := Generate(MustByName("mcf"), 9, 30000)
	iss := NewISS()
	for i := range uops {
		u := &uops[i]
		if u.Op == isa.OpLoad && u.Addr >= ChaseBase && u.Addr < StoreBase {
			if got := iss.Regs[u.Src1] + uint64(u.Imm); got != u.Addr {
				t.Fatalf("chase load %v: dataflow address %#x != %#x", u, got, u.Addr)
			}
		}
		if err := iss.Step(u); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLimitReader(t *testing.T) {
	g := NewGenerator(MustByName("gcc"), 1)
	lr := &LimitReader{R: g, N: 10}
	n := 0
	for {
		_, ok := lr.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("LimitReader yielded %d uops, want 10", n)
	}
}

func TestSliceReader(t *testing.T) {
	us := []isa.Uop{{Seq: 0}, {Seq: 1}}
	sr := &SliceReader{Uops: us}
	for i := 0; i < 2; i++ {
		u, ok := sr.Next()
		if !ok || u.Seq != uint64(i) {
			t.Fatalf("unexpected uop at %d: %v ok=%v", i, u, ok)
		}
	}
	if _, ok := sr.Next(); ok {
		t.Error("SliceReader should be exhausted")
	}
}

func TestPRNG(t *testing.T) {
	p := NewPRNG(0) // zero seed remaps
	if p.Uint64() == 0 {
		t.Error("first output should not be zero")
	}
	q := NewPRNG(5)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[q.Uint64()] = true
	}
	if len(seen) != 1000 {
		t.Errorf("PRNG produced duplicates in 1000 draws: %d unique", len(seen))
	}
	// Range bounds.
	for i := 0; i < 100; i++ {
		v := q.Range(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
	if q.Range(5, 5) != 5 || q.Range(9, 2) != 9 {
		t.Error("degenerate Range behaviour wrong")
	}
	fork := q.Fork()
	if fork.Uint64() == q.Uint64() {
		t.Error("forked stream should diverge")
	}
}

func TestPRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewPRNG(1).Intn(0)
}

func TestFloat64Bounds(t *testing.T) {
	p := NewPRNG(123)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestStreamsWrap(t *testing.T) {
	// libquantum has one big stream; generating a lot must wrap without
	// violating consistency.
	g := NewGenerator(MustByName("libquantum"), 2)
	if err := Check(&LimitReader{R: g, N: 100000}); err != nil {
		t.Fatal(err)
	}
}

func TestMemIntensityOrdering(t *testing.T) {
	// High-intensity profiles must direct a larger share of loads at
	// LLC-missing regions than low-intensity ones.
	missShare := func(p Profile) float64 {
		tot := p.loadShareTotal()
		return (p.StreamShare + p.RandomShare + p.ChaseShare) / tot
	}
	for _, hi := range HighIntensityNames() {
		for _, lo := range []string{"calculix", "povray", "namd", "gamess"} {
			if missShare(MustByName(hi)) <= missShare(MustByName(lo)) {
				t.Errorf("%s should have higher miss share than %s", hi, lo)
			}
		}
	}
}

// TestPersistentTraversalSerialization verifies the property the EMC's
// benefit depends on: within a chase stream, every pointer load's address
// register is (transitively) produced by the previous pointer load — the
// walk is one long dependence chain, not overlappable episodes.
func TestPersistentTraversalSerialization(t *testing.T) {
	p := MustByName("mcf")
	uops := Generate(p, 21, 30000)
	// producer[r] = index of the uop that last wrote register r.
	producer := make(map[isa.Reg]int)
	// chaseDepends counts chase loads whose base register traces back to an
	// earlier chase load through register dataflow.
	var chaseLoads, chaseDepends int
	dependsOnLoad := make([]bool, len(uops)) // uop's dst derives from a chase load
	for i := range uops {
		u := &uops[i]
		derived := false
		for _, src := range []isa.Reg{u.Src1, u.Src2} {
			if !src.Valid() {
				continue
			}
			if j, ok := producer[src]; ok && dependsOnLoad[j] {
				derived = true
			}
		}
		isChase := u.Op == isa.OpLoad && u.Addr >= ChaseBase && u.Addr < StoreBase
		if isChase {
			chaseLoads++
			if derived {
				chaseDepends++
			}
		}
		if u.HasDst() {
			producer[u.Dst] = i
			dependsOnLoad[i] = isChase || derived && u.Op.EMCAllowed()
		}
	}
	if chaseLoads == 0 {
		t.Fatal("no chase loads")
	}
	frac := float64(chaseDepends) / float64(chaseLoads)
	if frac < 0.80 {
		t.Errorf("only %.0f%% of chase loads depend on a prior chase load; traversals not persistent", 100*frac)
	}
}
