package trace

import (
	"fmt"

	"repro/internal/isa"
)

// ISS is a simple in-order instruction-set simulator used to validate that a
// trace is value-consistent: every memory uop's recorded address matches the
// address recomputed from register dataflow, every ALU uop's implied result
// is well-defined, and every load that reads a previously stored stack
// location observes the stored value.
//
// The core and the EMC both execute uops functionally during timing
// simulation; the ISS is the program-order ground truth they must agree with.
type ISS struct {
	Regs [isa.NumArchRegs]uint64
	// mem tracks stores to the stack (spill) region only — the one region
	// where load/store aliasing is part of the trace contract. Tracking
	// everything would grow without bound on streaming-store workloads.
	mem map[uint64]uint64

	Executed uint64
}

// NewISS returns an ISS with zeroed architectural state.
func NewISS() *ISS {
	return &ISS{mem: make(map[uint64]uint64)}
}

// inStack reports whether addr falls in the spill-slot region.
func inStack(addr uint64) bool { return addr >= StackBase }

// Step executes one uop, returning an error on any consistency violation.
func (s *ISS) Step(u *isa.Uop) error {
	src1, src2 := s.read(u.Src1), s.read(u.Src2)
	switch u.Op.Class() {
	case isa.ClassLoad:
		if got := isa.AddrOf(u, src1); got != u.Addr {
			return fmt.Errorf("uop %v: computed address %#x != recorded %#x", u, got, u.Addr)
		}
		if inStack(u.Addr) {
			if v, ok := s.mem[u.Addr]; ok && v != u.Value {
				return fmt.Errorf("uop %v: stack load value %#x != stored %#x", u, u.Value, v)
			}
		}
		s.write(u.Dst, u.Value)
	case isa.ClassStore:
		if got := isa.AddrOf(u, src1); got != u.Addr {
			return fmt.Errorf("uop %v: computed address %#x != recorded %#x", u, got, u.Addr)
		}
		if src2 != u.Value {
			return fmt.Errorf("uop %v: store value %#x != source register %#x", u, u.Value, src2)
		}
		if inStack(u.Addr) {
			s.mem[u.Addr] = u.Value
		}
	case isa.ClassBranch, isa.ClassNop:
		// No architectural effect in the model.
	default:
		s.write(u.Dst, isa.EvalUop(u, src1, src2))
	}
	s.Executed++
	return nil
}

func (s *ISS) read(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return s.Regs[r]
}

func (s *ISS) write(r isa.Reg, v uint64) {
	if r.Valid() {
		s.Regs[r] = v
	}
}

// Check runs the ISS over an entire reader, returning the first violation.
func Check(r Reader) error {
	s := NewISS()
	for {
		u, ok := r.Next()
		if !ok {
			return nil
		}
		if err := s.Step(&u); err != nil {
			return err
		}
	}
}
