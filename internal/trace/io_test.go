package trace

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	uops := Generate(MustByName("mcf"), 5, 2000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, uops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(uops) {
		t.Fatalf("round trip lost uops: %d vs %d", len(got), len(uops))
	}
	for i := range uops {
		if got[i] != uops[i] {
			t.Fatalf("uop %d differs:\n  in:  %+v\n  out: %+v", i, uops[i], got[i])
		}
	}
	// A round-tripped trace is still value-consistent.
	if err := Check(&SliceReader{Uops: got}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("bad magic should fail")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Generate(MustByName("gcc"), 1, 10)); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record.
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should fail")
	}
}
