package trace

import (
	"fmt"
	"sort"
)

// Profile parameterizes the synthetic workload generator for one benchmark.
// The numbers are calibrated so the generated uop streams reproduce the
// characterization figures of the paper (Figs. 1, 2, 6): relative memory
// intensity, the fraction of LLC misses that depend on a prior LLC miss, and
// the length of the dependence chains between a source miss and its
// dependent miss. They are deliberately behavioural, not a claim about the
// real binaries.
type Profile struct {
	Name string

	// MemIntensive mirrors the paper's Table 2 split (MPKI >= 10).
	MemIntensive bool

	// Instruction mix. MemFrac is the fraction of uops that are loads or
	// stores; of those, StoreFrac are stores. Of the non-memory compute uops,
	// FPFrac are floating-point/vector (not EMC-eligible) and the rest are
	// integer ALU/multiply. BranchFrac is the fraction of all uops that are
	// branches.
	MemFrac    float64
	StoreFrac  float64
	FPFrac     float64
	BranchFrac float64

	// MispredictRate is the probability that a branch is marked mispredicted.
	MispredictRate float64

	// BranchOnLoad is the probability that a branch's condition register is
	// a recently loaded value (a mispredicted load-dependent branch holds
	// the front end until the load returns) rather than an ALU result.
	BranchOnLoad float64

	// Load target mix: where a (non-chase) load's address points. Shares are
	// over all load episodes and need not be normalized; the generator
	// normalizes them together with ChaseShare.
	//   Hot    — small region that stays L1-resident (hits).
	//   Warm   — region sized to live in the LLC (L1 misses, LLC hits).
	//   Stream — sequential walk over a large region (LLC misses, high
	//            row-buffer locality, easy prefetch).
	//   Random — uniform over a large region (LLC misses, hard prefetch).
	//   Chase  — pointer-chasing episodes (dependent LLC misses).
	HotShare    float64
	WarmShare   float64
	StreamShare float64
	RandomShare float64
	ChaseShare  float64

	// ChaseDepth is the [min,max] number of linked loads per chase episode;
	// loads after the first are dependent misses. ChainALUOps is the [min,max]
	// number of simple integer ops between one pointer load and the next
	// (Fig. 6 of the paper measures 6–12 across benchmarks).
	ChaseDepth  [2]int
	ChainALUOps [2]int

	// ChaseStreams is the number of CONCURRENT persistent traversals. Within
	// a traversal every pointer load depends on the previous one — across the
	// whole run, like a real linked-structure walk — so dependent misses in
	// one stream cannot overlap each other; different streams provide the
	// workload's residual memory-level parallelism. Few streams = the
	// serialized regime the EMC attacks (mcf); 0 disables persistence
	// (episodes start from fresh pointers).
	ChaseStreams int

	// SiblingLoadProb is the probability that a chase node also loads a
	// second field from the same cache line (an EMC data-cache hit when the
	// chain runs at the memory controller).
	SiblingLoadProb float64

	// ChaseHotProb is the probability that a chase step revisits a recently
	// visited node instead of a fresh random one — the temporal locality
	// that gives the EMC data cache its hit rate (paper Fig. 17) and chase
	// loads their occasional on-chip hits.
	ChaseHotProb float64

	// ChaseRowLocalProb is the probability that the next chase node lives
	// near the current one (same DRAM row neighbourhood) — the allocation
	// locality of linked structures. It enables the paper's §6.3 effect: a
	// dependent request issued promptly (by the EMC) hits the row its
	// parent opened, while the same request issued ~100 cycles later from
	// the core finds the row closed by competing traffic.
	ChaseRowLocalProb float64

	// Working-set sizes in bytes. These are scaled down relative to the real
	// benchmarks, with cache sizes kept at Table-1 values, so the miss
	// behaviour is preserved at tractable simulation lengths.
	WarmWS   uint64
	StreamWS uint64
	RandomWS uint64
	ChaseWS  uint64

	// Streams is the number of concurrent sequential streams.
	Streams int

	// SpillRate is the expected number of register spill/fill pairs per 100
	// uops. Spill stores are the only stores eligible for EMC chains.
	SpillRate float64

	// CodeFootprint approximates the active instruction bytes, used to drive
	// the I-cache model.
	CodeFootprint uint64
}

// common geometry defaults, used by the profile table below.
const (
	kib = 1024
	mib = 1024 * 1024
)

// profiles is the SPEC CPU2006 suite, split per Table 2 of the paper.
// High intensity (MPKI >= 10): omnetpp, milc, soplex, sphinx3, bwaves,
// libquantum, lbm, mcf. The rest are low intensity.
var profiles = map[string]Profile{
	// ---- High memory intensity --------------------------------------------
	"mcf": {
		Name: "mcf", MemIntensive: true,
		MemFrac: 0.21, StoreFrac: 0.18, FPFrac: 0.00, BranchFrac: 0.19, MispredictRate: 0.08, BranchOnLoad: 0.25,
		HotShare: 0.30, WarmShare: 0.12, StreamShare: 0.04, RandomShare: 0.16, ChaseShare: 0.38,
		ChaseDepth: [2]int{3, 6}, ChainALUOps: [2]int{4, 9}, SiblingLoadProb: 0.45, ChaseHotProb: 0.30, ChaseRowLocalProb: 0.45, ChaseStreams: 2,
		WarmWS: 2 * mib, StreamWS: 8 * mib, RandomWS: 48 * mib, ChaseWS: 48 * mib,
		Streams: 2, SpillRate: 1.2, CodeFootprint: 16 * kib,
	},
	"omnetpp": {
		Name: "omnetpp", MemIntensive: true,
		MemFrac: 0.27, StoreFrac: 0.30, FPFrac: 0.02, BranchFrac: 0.21, MispredictRate: 0.05, BranchOnLoad: 0.20,
		HotShare: 0.44, WarmShare: 0.16, StreamShare: 0.06, RandomShare: 0.12, ChaseShare: 0.22,
		ChaseDepth: [2]int{2, 4}, ChainALUOps: [2]int{6, 12}, SiblingLoadProb: 0.35, ChaseHotProb: 0.25, ChaseRowLocalProb: 0.40, ChaseStreams: 2,
		WarmWS: 2 * mib, StreamWS: 8 * mib, RandomWS: 32 * mib, ChaseWS: 32 * mib,
		Streams: 2, SpillRate: 1.6, CodeFootprint: 64 * kib,
	},
	"milc": {
		Name: "milc", MemIntensive: true,
		MemFrac: 0.37, StoreFrac: 0.22, FPFrac: 0.42, BranchFrac: 0.03, MispredictRate: 0.01, BranchOnLoad: 0.05,
		HotShare: 0.38, WarmShare: 0.08, StreamShare: 0.34, RandomShare: 0.17, ChaseShare: 0.03,
		ChaseDepth: [2]int{2, 2}, ChainALUOps: [2]int{5, 10}, SiblingLoadProb: 0.20, ChaseHotProb: 0.15, ChaseRowLocalProb: 0.25, ChaseStreams: 3,
		WarmWS: 2 * mib, StreamWS: 32 * mib, RandomWS: 24 * mib, ChaseWS: 16 * mib,
		Streams: 6, SpillRate: 0.5, CodeFootprint: 24 * kib,
	},
	"soplex": {
		Name: "soplex", MemIntensive: true,
		MemFrac: 0.34, StoreFrac: 0.15, FPFrac: 0.28, BranchFrac: 0.14, MispredictRate: 0.04, BranchOnLoad: 0.10,
		HotShare: 0.40, WarmShare: 0.14, StreamShare: 0.22, RandomShare: 0.14, ChaseShare: 0.10,
		ChaseDepth: [2]int{2, 3}, ChainALUOps: [2]int{5, 10}, SiblingLoadProb: 0.30, ChaseHotProb: 0.20, ChaseRowLocalProb: 0.35, ChaseStreams: 3,
		WarmWS: 2 * mib, StreamWS: 24 * mib, RandomWS: 24 * mib, ChaseWS: 24 * mib,
		Streams: 4, SpillRate: 1.0, CodeFootprint: 48 * kib,
	},
	"sphinx3": {
		Name: "sphinx3", MemIntensive: true,
		MemFrac: 0.32, StoreFrac: 0.08, FPFrac: 0.30, BranchFrac: 0.12, MispredictRate: 0.04, BranchOnLoad: 0.10,
		HotShare: 0.46, WarmShare: 0.16, StreamShare: 0.20, RandomShare: 0.10, ChaseShare: 0.08,
		ChaseDepth: [2]int{2, 3}, ChainALUOps: [2]int{6, 11}, SiblingLoadProb: 0.25, ChaseHotProb: 0.20, ChaseRowLocalProb: 0.35, ChaseStreams: 3,
		WarmWS: 2 * mib, StreamWS: 24 * mib, RandomWS: 16 * mib, ChaseWS: 16 * mib,
		Streams: 4, SpillRate: 0.8, CodeFootprint: 32 * kib,
	},
	"bwaves": {
		Name: "bwaves", MemIntensive: true,
		MemFrac: 0.40, StoreFrac: 0.12, FPFrac: 0.50, BranchFrac: 0.02, MispredictRate: 0.01, BranchOnLoad: 0.05,
		HotShare: 0.34, WarmShare: 0.08, StreamShare: 0.48, RandomShare: 0.09, ChaseShare: 0.01,
		ChaseDepth: [2]int{2, 2}, ChainALUOps: [2]int{6, 12}, SiblingLoadProb: 0.20, ChaseHotProb: 0.10, ChaseStreams: 2,
		WarmWS: 2 * mib, StreamWS: 48 * mib, RandomWS: 16 * mib, ChaseWS: 8 * mib,
		Streams: 8, SpillRate: 0.3, CodeFootprint: 16 * kib,
	},
	"libquantum": {
		Name: "libquantum", MemIntensive: true,
		MemFrac: 0.33, StoreFrac: 0.24, FPFrac: 0.02, BranchFrac: 0.26, MispredictRate: 0.01, BranchOnLoad: 0.05,
		HotShare: 0.28, WarmShare: 0.02, StreamShare: 0.68, RandomShare: 0.02, ChaseShare: 0.00,
		ChaseDepth: [2]int{2, 2}, ChainALUOps: [2]int{4, 8}, SiblingLoadProb: 0.0,
		WarmWS: 1 * mib, StreamWS: 64 * mib, RandomWS: 8 * mib, ChaseWS: 8 * mib,
		Streams: 1, SpillRate: 0.2, CodeFootprint: 8 * kib,
	},
	"lbm": {
		Name: "lbm", MemIntensive: true,
		MemFrac: 0.42, StoreFrac: 0.38, FPFrac: 0.46, BranchFrac: 0.01, MispredictRate: 0.01, BranchOnLoad: 0.05,
		HotShare: 0.26, WarmShare: 0.04, StreamShare: 0.66, RandomShare: 0.04, ChaseShare: 0.00,
		ChaseDepth: [2]int{2, 2}, ChainALUOps: [2]int{4, 8}, SiblingLoadProb: 0.0,
		WarmWS: 1 * mib, StreamWS: 64 * mib, RandomWS: 8 * mib, ChaseWS: 8 * mib,
		Streams: 8, SpillRate: 0.2, CodeFootprint: 8 * kib,
	},

	// ---- Low memory intensity ---------------------------------------------
	"calculix":  lowIntensity("calculix", 0.24, 0.35, 0.05, 0.002),
	"povray":    lowIntensity("povray", 0.28, 0.30, 0.13, 0.004),
	"namd":      lowIntensity("namd", 0.30, 0.40, 0.04, 0.006),
	"gamess":    lowIntensity("gamess", 0.30, 0.38, 0.08, 0.008),
	"perlbench": lowIntensity("perlbench", 0.32, 0.04, 0.20, 0.02),
	"tonto":     lowIntensity("tonto", 0.30, 0.36, 0.10, 0.02),
	"gromacs":   lowIntensity("gromacs", 0.30, 0.34, 0.06, 0.03),
	"gobmk":     lowIntensity("gobmk", 0.28, 0.02, 0.21, 0.04),
	"dealII":    lowIntensity("dealII", 0.32, 0.28, 0.14, 0.05),
	"sjeng":     lowIntensity("sjeng", 0.26, 0.01, 0.22, 0.06),
	"gcc":       lowIntensity("gcc", 0.33, 0.03, 0.20, 0.09),
	"hmmer":     lowIntensity("hmmer", 0.36, 0.06, 0.08, 0.10),
	"h264ref":   lowIntensity("h264ref", 0.36, 0.10, 0.08, 0.12),
	"bzip2":     lowIntensity("bzip2", 0.32, 0.02, 0.14, 0.16),
	"astar":     lowIntensity("astar", 0.34, 0.04, 0.16, 0.22),
	"xalancbmk": lowIntensity("xalancbmk", 0.34, 0.06, 0.20, 0.26),
	"zeusmp":    lowIntensity("zeusmp", 0.34, 0.40, 0.04, 0.30),
	"cactusADM": lowIntensity("cactusADM", 0.36, 0.42, 0.02, 0.34),
	"wrf":       lowIntensity("wrf", 0.34, 0.40, 0.06, 0.36),
	"GemsFDTD":  lowIntensity("GemsFDTD", 0.38, 0.44, 0.02, 0.48),
	"leslie3d":  lowIntensity("leslie3d", 0.36, 0.44, 0.03, 0.56),
}

// lowIntensity builds a low-MPKI profile. missShare scales how much of the
// load mix touches LLC-missing regions; the remainder stays cache-resident.
func lowIntensity(name string, memFrac, fpFrac, branchFrac, missShare float64) Profile {
	chase := missShare * 0.15
	return Profile{
		Name: name, MemIntensive: false,
		MemFrac: memFrac, StoreFrac: 0.30, FPFrac: fpFrac,
		BranchFrac: branchFrac, MispredictRate: 0.03, BranchOnLoad: 0.12,
		HotShare:    0.80 - missShare,
		WarmShare:   0.20,
		StreamShare: missShare * 0.55,
		RandomShare: missShare * 0.30,
		ChaseShare:  chase,
		ChaseDepth:  [2]int{2, 3}, ChainALUOps: [2]int{5, 10}, SiblingLoadProb: 0.25, ChaseHotProb: 0.20, ChaseRowLocalProb: 0.30, ChaseStreams: 2,
		WarmWS: 1 * mib, StreamWS: 16 * mib, RandomWS: 16 * mib, ChaseWS: 16 * mib,
		Streams: 2, SpillRate: 1.0, CodeFootprint: 32 * kib,
	}
}

// HighIntensityNames lists the paper's high-MPKI benchmarks (Table 2) in the
// order used by its figures.
func HighIntensityNames() []string {
	return []string{"omnetpp", "milc", "soplex", "sphinx3", "bwaves", "libquantum", "lbm", "mcf"}
}

// AllNames returns every profiled benchmark, sorted for determinism.
func AllNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the profile for a SPEC benchmark name.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static names; it panics on unknown benchmarks.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// loadShareTotal returns the sum of the load-mix shares, used by the
// generator to normalize.
func (p *Profile) loadShareTotal() float64 {
	return p.HotShare + p.WarmShare + p.StreamShare + p.RandomShare + p.ChaseShare
}

// Validate reports configuration errors in a profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile missing name")
	}
	if p.MemFrac <= 0 || p.MemFrac >= 1 {
		return fmt.Errorf("trace: %s: MemFrac %v out of (0,1)", p.Name, p.MemFrac)
	}
	if p.loadShareTotal() <= 0 {
		return fmt.Errorf("trace: %s: load shares sum to zero", p.Name)
	}
	for _, f := range []float64{p.StoreFrac, p.FPFrac, p.BranchFrac, p.MispredictRate, p.SiblingLoadProb} {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace: %s: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if p.ChaseDepth[0] < 2 || p.ChaseDepth[1] < p.ChaseDepth[0] {
		return fmt.Errorf("trace: %s: bad ChaseDepth %v", p.Name, p.ChaseDepth)
	}
	if p.ChainALUOps[0] < 1 || p.ChainALUOps[1] < p.ChainALUOps[0] {
		return fmt.Errorf("trace: %s: bad ChainALUOps %v", p.Name, p.ChainALUOps)
	}
	if p.Streams < 1 && p.StreamShare > 0 {
		return fmt.Errorf("trace: %s: StreamShare with no streams", p.Name)
	}
	return nil
}
