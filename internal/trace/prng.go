package trace

// PRNG is a deterministic xorshift64* pseudo-random number generator.
// All randomness in the simulator flows from trace generation, and trace
// generation flows from one of these, so a (profile, seed) pair always
// produces the identical uop stream — the property that lets the experiment
// harness compare configurations on exactly the same work.
type PRNG struct {
	state uint64
}

// NewPRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant because xorshift has an all-zeros fixed point.
func NewPRNG(seed uint64) *PRNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &PRNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (p *PRNG) Uint64() uint64 {
	x := p.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi] inclusive.
func (p *PRNG) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + p.Intn(hi-lo+1)
}

// Float64 returns a value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PRNG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Fork derives an independent generator; the parent and child streams do not
// overlap for practical lengths.
func (p *PRNG) Fork() *PRNG {
	return NewPRNG(p.Uint64() ^ 0xD1B54A32D192ED03)
}
