// Package trace synthesizes deterministic, value-consistent micro-op streams
// that reproduce the memory behaviour of the SPEC CPU2006 benchmarks as
// characterized by the paper (memory intensity, dependent-miss fraction,
// dependence-chain length, streaming vs. pointer-chasing mix).
//
// Value consistency is the load-bearing property: for every load and store,
// the effective address recorded in the uop equals the value of its base
// register plus the immediate at that point in program order, and every load
// that reads a location written by an earlier store observes the stored
// value. This allows the core and the Enhanced Memory Controller to execute
// uops functionally, and lets tests assert that addresses computed by the
// EMC match the trace exactly.
package trace

import (
	"repro/internal/isa"
)

// Virtual-address layout of a generated workload. Each core runs in its own
// address space (the vm package maps (core, page) to distinct frames), so
// all traces may share these constants.
const (
	CodeBase   = 0x0000_0000_0040_0000
	HotBase    = 0x0000_0000_1000_0000
	HotSize    = 32 * kib
	WarmBase   = 0x0000_0000_2000_0000
	StreamBase = 0x0000_0000_4000_0000
	RandBase   = 0x0000_0001_0000_0000
	ChaseBase  = 0x0000_0002_0000_0000
	StoreBase  = 0x0000_0003_0000_0000 // store-only region, never loaded
	StackBase  = 0x0000_7FFF_FF00_0000 // spill slots

	// CacheLine is the line size shared by the whole hierarchy (Table 1).
	CacheLine = 64
)

// Architectural register allocation used by the generator. Keeping roles
// static makes the emitted dataflow easy to reason about in tests.
const (
	// r0..r3 are load destinations (the "data sink"); r4..r7 are the filler
	// ALU pool. Keeping them apart makes the load->branch coupling an
	// explicit profile knob (BranchOnLoad, DataMixProb) instead of an
	// accident of register reuse.
	sinkR0    = isa.Reg(0)
	sinkRegs  = 4
	aluR0     = isa.Reg(4)
	aluRegs   = 4
	poolR0    = isa.Reg(0) // r0..r7: full pool (initialization)
	poolRegs  = 8
	chaseR0   = isa.Reg(8) // r8..r11: chase pointer registers (rotated)
	chaseRegs = 4
	// r12..r15 hold region base addresses, set once at trace start, so
	// ordinary loads and stores are a single uop with a large immediate.
	hotBaseReg   = isa.Reg(12)
	warmBaseReg  = isa.Reg(13)
	randBaseReg  = isa.Reg(14)
	storeBaseReg = isa.Reg(15)
	streamR0     = isa.Reg(16) // r16..r23: stream pointers
	maxStreams   = 8
	stackBaseReg = isa.Reg(24) // stack (spill) region base
	spillR0      = isa.Reg(25) // r25..r27: spill fill destinations (rotated)
	spillRegs    = 3
	chainR0      = isa.Reg(28) // r28..r31: chain scratch (rotated)
	chainRegs    = 4

	// chainSpillSlot is the stack slot reserved for in-chain pointer spills;
	// ordinary spills rotate over the slots below it.
	chainSpillSlot = 63
)

// Reader is a source of micro-ops. ok is false when the stream is exhausted.
type Reader interface {
	Next() (u isa.Uop, ok bool)
}

// Generator produces an unbounded value-consistent uop stream for one
// benchmark profile. It implements Reader and never exhausts; wrap it in a
// LimitReader to bound a run.
type Generator struct {
	prof Profile
	rng  *PRNG

	buf  []isa.Uop
	head int

	seq     uint64
	pcOff   uint64 // rolling offset within the code footprint
	regs    [isa.NumArchRegs]uint64
	started bool

	// Feedback counters steering the instruction mix.
	nTotal, nMem, nBranch uint64
	nLoads, nStores       uint64

	// Load-mix cumulative weights (normalized shares).
	wHot, wWarm, wStream, wRandom float64 // cumulative; chase is the rest

	streams     []streamState
	lastALUPool isa.Reg // most recent filler-ALU destination
	nextChase   int     // rotating chase register index
	nextChain   int     // rotating chain scratch index
	nextSpill   int     // rotating spill data register index
	spillSlot   int     // rotating spill stack slot
	fills       []pendingFill
	spillVals   [64]uint64
	spillAddrs  [64]uint64

	// recentNodes is a ring of recently visited chase nodes for revisit
	// locality (ChaseHotProb).
	recentNodes [256]uint64
	recentN     int
	recentPos   int

	// chaseCur holds each persistent traversal's current node; 0 = not
	// started. Stream k owns register chaseR0+k.
	chaseCur [chaseRegs]uint64
	nextStrm int

	// succ records the stable next-pointer of visited chase nodes, so a
	// revisited node leads to the same successor — the repeated-traversal
	// behaviour that lets correlation prefetchers (Markov, GHB) capture a
	// fraction of dependent misses (paper Fig. 3). Bounded FIFO.
	succ      map[uint64]uint64
	succOrder []uint64

	// Fixed "instruction sites" so recurring loads share PCs (drives the
	// I-cache and the EMC's PC-hashed miss predictor realistically).
	chasePCs  [8]uint64
	siblingPC uint64
	streamPCs [maxStreams]uint64
	hotPCs    [4]uint64
	warmPCs   [2]uint64
	randPC    uint64
	fillPC    uint64

	stats GenStats
}

type streamState struct {
	base uint64
	pos  uint64
	size uint64
}

type pendingFill struct {
	due  uint64 // emit when nTotal reaches this
	slot int
}

// GenStats exposes generation-side ground truth used by tests and by the
// characterization figures.
type GenStats struct {
	Uops          uint64
	Loads         uint64
	Stores        uint64
	Branches      uint64
	ChaseEpisodes uint64
	ChaseLoads    uint64 // pointer loads emitted in chase episodes
	DepChainOps   uint64 // ALU ops on source→dependent dataflow paths
	DepChainLinks uint64 // number of source→dependent load pairs
	SiblingLoads  uint64
	ChainSpills   uint64
}

// NewGenerator returns a generator for profile p seeded with seed.
func NewGenerator(p Profile, seed uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{prof: p, rng: NewPRNG(seed)}
	total := p.loadShareTotal()
	g.wHot = p.HotShare / total
	g.wWarm = g.wHot + p.WarmShare/total
	g.wStream = g.wWarm + p.StreamShare/total
	g.wRandom = g.wStream + p.RandomShare/total

	ns := p.Streams
	if ns > maxStreams {
		ns = maxStreams
	}
	if ns < 1 {
		ns = 1
	}
	g.streams = make([]streamState, ns)
	per := p.StreamWS / uint64(ns)
	per &^= CacheLine - 1
	if per < 4*kib {
		per = 4 * kib
	}
	for i := range g.streams {
		g.streams[i] = streamState{base: StreamBase + uint64(i)*per, size: per}
	}
	for i := 0; i < 64; i++ {
		g.spillAddrs[i] = StackBase + uint64(i)*8
	}
	// Lay out fixed PC sites inside the code footprint.
	fp := p.CodeFootprint
	if fp < 4*kib {
		fp = 4 * kib
	}
	site := func(i int) uint64 { return CodeBase + uint64(i)*68%fp }
	n := 0
	next := func() uint64 { n++; return site(n) }
	for i := range g.chasePCs {
		g.chasePCs[i] = next()
	}
	g.siblingPC = next()
	for i := range g.streamPCs {
		g.streamPCs[i] = next()
	}
	for i := range g.hotPCs {
		g.hotPCs[i] = next()
	}
	for i := range g.warmPCs {
		g.warmPCs[i] = next()
	}
	g.randPC = next()
	g.fillPC = next()
	return g
}

// Stats returns generation counters accumulated so far.
func (g *Generator) Stats() GenStats { return g.stats }

// Profile returns the profile the generator was built with.
func (g *Generator) Profile() Profile { return g.prof }

// Next returns the next uop. The stream is unbounded; ok is always true.
func (g *Generator) Next() (isa.Uop, bool) {
	for g.head >= len(g.buf) {
		g.buf = g.buf[:0]
		g.head = 0
		g.emitBlock()
	}
	u := g.buf[g.head]
	g.head++
	return u, true
}

// rollPC advances the rolling program counter by one 4-byte uop slot within
// the code footprint.
func (g *Generator) rollPC() uint64 {
	fp := g.prof.CodeFootprint
	if fp < 4*kib {
		fp = 4 * kib
	}
	pc := CodeBase + g.pcOff
	g.pcOff = (g.pcOff + 4) % fp
	return pc
}

// push appends a uop, assigning its sequence number and accounting for the
// mix-feedback counters, and updates the architectural register state.
func (g *Generator) push(u isa.Uop) {
	u.Seq = g.seq
	g.seq++
	if u.PC == 0 {
		u.PC = g.rollPC()
	}
	g.nTotal++
	g.stats.Uops++
	switch u.Op.Class() {
	case isa.ClassLoad:
		g.nMem++
		g.nLoads++
		g.stats.Loads++
	case isa.ClassStore:
		g.nMem++
		g.nStores++
		g.stats.Stores++
	case isa.ClassBranch:
		g.nBranch++
		g.stats.Branches++
	}
	if u.HasDst() {
		s1, s2 := g.readSrc(u.Src1), g.readSrc(u.Src2)
		g.regs[u.Dst] = isa.EvalUop(&u, s1, s2)
	}
	g.buf = append(g.buf, u)
}

func (g *Generator) readSrc(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return g.regs[r]
}

// emitBlock appends the next small batch of uops, steering toward the
// profile's instruction mix with a deficit controller.
func (g *Generator) emitBlock() {
	if !g.started {
		g.started = true
		g.emitInit()
		return
	}
	// Emit any spill fills that have come due.
	for i := 0; i < len(g.fills); {
		if g.fills[i].due <= g.nTotal {
			g.emitFill(g.fills[i].slot)
			g.fills = append(g.fills[:i], g.fills[i+1:]...)
		} else {
			i++
		}
	}
	p := &g.prof
	total := float64(g.nTotal) + 1
	switch {
	case float64(g.nBranch)/total < p.BranchFrac:
		g.emitBranch()
	case float64(g.nMem)/total < p.MemFrac:
		if g.rng.Bool(p.StoreFrac) {
			g.emitStore()
		} else {
			g.emitLoadEpisode()
		}
		// Register spills ride along with memory activity.
		if g.rng.Bool(p.SpillRate / 100 * 10) {
			g.emitSpill()
		}
	default:
		g.emitFiller()
	}
}

// emitInit materializes initial values for the compute pool and stream
// pointers so every later uop reads defined registers.
func (g *Generator) emitInit() {
	for i := 0; i < poolRegs; i++ {
		g.push(isa.Uop{Op: isa.OpMov, Src1: isa.RegNone, Src2: isa.RegNone,
			Dst: poolR0 + isa.Reg(i), Imm: int64(g.rng.Uint64() >> 8)})
	}
	for _, b := range []struct {
		r isa.Reg
		v uint64
	}{
		{hotBaseReg, HotBase}, {warmBaseReg, WarmBase},
		{randBaseReg, RandBase}, {storeBaseReg, StoreBase},
		{stackBaseReg, StackBase},
	} {
		g.push(isa.Uop{Op: isa.OpMov, Src1: isa.RegNone, Src2: isa.RegNone, Dst: b.r, Imm: int64(b.v)})
	}
	for i := range g.streams {
		g.resetStream(i)
	}
}

func (g *Generator) resetStream(i int) {
	s := &g.streams[i]
	s.pos = 0
	g.push(isa.Uop{Op: isa.OpMov, Src1: isa.RegNone, Src2: isa.RegNone,
		Dst: streamR0 + isa.Reg(i), Imm: int64(s.base)})
}

// emitFiller emits one compute uop: destination in the ALU pool, sources
// mostly ALU results with an occasional loaded value mixed in.
func (g *Generator) emitFiller() {
	p := &g.prof
	dst := aluR0 + isa.Reg(g.rng.Intn(aluRegs))
	s1 := aluR0 + isa.Reg(g.rng.Intn(aluRegs))
	s2 := aluR0 + isa.Reg(g.rng.Intn(aluRegs))
	if g.rng.Bool(0.15) {
		s2 = sinkR0 + isa.Reg(g.rng.Intn(sinkRegs))
	}
	var op isa.Op
	switch {
	case g.rng.Bool(p.FPFrac):
		op = []isa.Op{isa.OpFAdd, isa.OpFMul, isa.OpFDiv, isa.OpVec}[g.rng.Intn(4)]
	case g.rng.Bool(0.06):
		op = isa.OpIMul
	default:
		op = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpMov}[g.rng.Intn(8)]
	}
	u := isa.Uop{Op: op, Src1: s1, Src2: s2, Dst: dst}
	if op == isa.OpShl || op == isa.OpShr {
		// Bounded shift counts keep pool values well distributed.
		u.Src2 = isa.RegNone
		u.Imm = int64(g.rng.Intn(16))
	}
	if op == isa.OpMov {
		u.Src2 = isa.RegNone
	}
	g.lastALUPool = dst
	g.push(u)
}

func (g *Generator) emitBranch() {
	// Branch conditions are mostly ALU results (loop counters, compares);
	// with probability BranchOnLoad they test a loaded value, in which case
	// a mispredict on an outstanding miss holds the front end until the
	// data returns.
	src := g.lastALUPool
	if !src.Valid() {
		src = aluR0 + isa.Reg(g.rng.Intn(aluRegs))
	}
	if g.rng.Bool(g.prof.BranchOnLoad) {
		src = sinkR0 + isa.Reg(g.rng.Intn(sinkRegs))
	}
	// Outcomes are biased like real branches (loop back-edges mostly taken,
	// data-dependent branches weakly biased) so an organic branch predictor
	// sees realistic predictability. The Mispredicted flag drawn from the
	// profile is the default trace-driven model; a core configured with the
	// hybrid predictor ignores it and predicts these outcomes itself.
	taken := g.rng.Bool(0.6)
	if g.rng.Bool(0.7) {
		taken = g.rng.Bool(0.95)
	}
	g.push(isa.Uop{Op: isa.OpBranch, Src1: src,
		Src2: isa.RegNone, Dst: isa.RegNone,
		Taken:        taken,
		Mispredicted: g.rng.Bool(g.prof.MispredictRate)})
}

// emitBaseLoad emits a single-uop load off a region base register.
func (g *Generator) emitBaseLoad(base isa.Reg, off int64, pc uint64, value uint64, dst isa.Reg) {
	g.push(isa.Uop{Op: isa.OpLoad, Src1: base, Src2: isa.RegNone, Dst: dst,
		Imm: off, Addr: g.regs[base] + uint64(off), Value: value, PC: pc})
}

// emitLoadEpisode picks a load target by the profile's mix and emits it.
func (g *Generator) emitLoadEpisode() {
	p := &g.prof
	x := g.rng.Float64()
	dst := sinkR0 + isa.Reg(g.rng.Intn(sinkRegs))
	switch {
	case x < g.wHot:
		off := int64(g.rng.Intn(HotSize/8)) * 8
		g.emitBaseLoad(hotBaseReg, off, g.hotPCs[g.rng.Intn(len(g.hotPCs))], g.rng.Uint64(), dst)
	case x < g.wWarm:
		off := int64(g.rng.Intn(int(p.WarmWS/8))) * 8
		g.emitBaseLoad(warmBaseReg, off, g.warmPCs[g.rng.Intn(len(g.warmPCs))], g.rng.Uint64(), dst)
	case x < g.wStream:
		g.emitStreamLoad(dst)
	case x < g.wRandom:
		off := int64(g.rng.Intn(int(p.RandomWS/8))) * 8
		g.emitBaseLoad(randBaseReg, off, g.randPC, g.rng.Uint64(), dst)
	default:
		g.emitChase()
	}
}

// emitStreamLoad advances one sequential stream by one 8-byte element:
// "load dst=[rS+0]; add rS = rS + 8".
func (g *Generator) emitStreamLoad(dst isa.Reg) {
	i := g.rng.Intn(len(g.streams))
	s := &g.streams[i]
	if s.pos+8 > s.size {
		g.resetStream(i)
	}
	rs := streamR0 + isa.Reg(i)
	addr := s.base + s.pos
	g.push(isa.Uop{Op: isa.OpLoad, Src1: rs, Src2: isa.RegNone, Dst: dst,
		Imm: 0, Addr: addr, Value: g.rng.Uint64(), PC: g.streamPCs[i]})
	g.push(isa.Uop{Op: isa.OpAdd, Src1: rs, Src2: isa.RegNone, Dst: rs, Imm: 8})
	s.pos += 8
}

// emitStore writes to the store-only region mirroring the load mix, so store
// traffic has the same locality character as the loads.
func (g *Generator) emitStore() {
	p := &g.prof
	x := g.rng.Float64()
	var off int64
	switch {
	case x < g.wHot:
		off = int64(g.rng.Intn(HotSize/8)) * 8
	case x < g.wWarm:
		off = 1*mib + int64(g.rng.Intn(int(p.WarmWS/8)))*8
	case x < g.wStream:
		// Sequential store stream (e.g. lbm's result grids).
		off = 8*mib + int64((g.nStores*8)%(p.StreamWS/2))
	default:
		off = 64*mib + int64(g.rng.Intn(int(p.RandomWS/8)))*8
	}
	val := poolR0 + isa.Reg(g.rng.Intn(poolRegs))
	g.push(isa.Uop{Op: isa.OpStore, Src1: storeBaseReg, Src2: val, Dst: isa.RegNone,
		Imm: off, Addr: StoreBase + uint64(off), Value: g.regs[val]})
}

// emitSpill emits a register spill (store to a stack slot) and schedules the
// matching fill a short distance later.
func (g *Generator) emitSpill() {
	slot := g.spillSlot % chainSpillSlot // slots 0..62; 63 is chain-reserved
	g.spillSlot++
	// Drop any still-pending fill for this slot: the new spill supersedes it.
	for i := 0; i < len(g.fills); {
		if g.fills[i].slot == slot {
			g.fills = append(g.fills[:i], g.fills[i+1:]...)
		} else {
			i++
		}
	}
	val := poolR0 + isa.Reg(g.rng.Intn(poolRegs))
	addr := g.spillAddrs[slot]
	g.spillVals[slot] = g.regs[val]
	g.push(isa.Uop{Op: isa.OpStore, Src1: stackBaseReg, Src2: val, Dst: isa.RegNone,
		Imm: int64(slot) * 8, Addr: addr, Value: g.regs[val]})
	g.fills = append(g.fills, pendingFill{due: g.nTotal + uint64(g.rng.Range(5, 30)), slot: slot})
}

func (g *Generator) emitFill(slot int) {
	dst := spillR0 + isa.Reg(g.nextSpill%spillRegs)
	g.nextSpill++
	g.push(isa.Uop{Op: isa.OpLoad, Src1: stackBaseReg, Src2: isa.RegNone, Dst: dst,
		Imm: int64(slot) * 8, Addr: g.spillAddrs[slot], Value: g.spillVals[slot], PC: g.fillPC})
}

// nodeAddr picks the next chase node relative to cur: with ChaseRowLocalProb
// a neighbour of the current node (allocation locality, keeping the
// dependent access in its parent's DRAM row neighbourhood), otherwise a
// fresh random 64-byte-aligned node in the chase working set. Mid-walk
// revisits are deliberately absent: a traversal makes forward progress, so
// it cannot collapse into a tight cache-resident loop. Temporal locality
// enters at traversal restarts (emitChase).
func (g *Generator) nodeAddr(cur uint64) uint64 {
	if cur != 0 && g.rng.Bool(g.prof.ChaseRowLocalProb) {
		// Within +/- 4 KB of the current node, 64-byte aligned.
		off := int64(g.rng.Range(-64, 64)) * CacheLine
		a := int64(cur) + off
		lo, hi := int64(ChaseBase), int64(ChaseBase+g.prof.ChaseWS)
		if a >= lo && a < hi {
			return uint64(a)
		}
	}
	n := int(g.prof.ChaseWS / CacheLine)
	a := ChaseBase + uint64(g.rng.Intn(n))*CacheLine
	g.recentNodes[g.recentPos] = a
	g.recentPos = (g.recentPos + 1) % len(g.recentNodes)
	if g.recentN < len(g.recentNodes) {
		g.recentN++
	}
	return a
}

// chainStep describes one invertible ALU op of an address chain.
type chainStep struct {
	op  isa.Op
	imm int64
}

// solveChain picks k invertible ops and back-computes the value a source
// load must produce so that applying the ops forward yields target.
func (g *Generator) solveChain(k int, target uint64) ([]chainStep, uint64) {
	steps := make([]chainStep, k)
	for i := range steps {
		switch g.rng.Intn(4) {
		case 0:
			steps[i] = chainStep{isa.OpAdd, int64(g.rng.Range(1, 0x80))}
		case 1:
			steps[i] = chainStep{isa.OpSub, int64(g.rng.Range(1, 0x80))}
		case 2:
			steps[i] = chainStep{isa.OpXor, int64(g.rng.Range(1, 0x3F))}
		default:
			steps[i] = chainStep{isa.OpMov, 0}
		}
	}
	v := target
	for i := k - 1; i >= 0; i-- {
		switch steps[i].op {
		case isa.OpAdd:
			v -= uint64(steps[i].imm)
		case isa.OpSub:
			v += uint64(steps[i].imm)
		case isa.OpXor:
			v ^= uint64(steps[i].imm)
		case isa.OpMov:
			// identity
		}
	}
	return steps, v
}

// emitChase emits one pointer-chasing episode: a chain of `depth` linked
// loads, each separated by a run of simple integer ops that carry the
// dependence (the structure of Fig. 5 of the paper). The first load is the
// source miss; the following ones are dependent misses. Occasionally the
// chain spills the pointer through a stack slot (store+fill pair inside the
// chain, the case Table 1's EMC store support exists for), and with
// SiblingLoadProb a second field of the just-reached node is loaded from the
// same cache line (the EMC-data-cache temporal-locality case).
func (g *Generator) emitChase() {
	p := &g.prof
	g.stats.ChaseEpisodes++
	depth := g.rng.Range(p.ChaseDepth[0], p.ChaseDepth[1])
	ptrOff := int64(g.rng.Intn(4) * 8) // pointer field offset within the node

	// Pick a persistent traversal stream. Within a stream every pointer load
	// depends on the previous one across the entire run — the serialized
	// pointer walk of a real linked structure. The stream's register holds
	// the current node's address between episodes.
	streams := p.ChaseStreams
	if streams < 1 {
		streams = 1
	}
	if streams > chaseRegs {
		streams = chaseRegs
	}
	k := g.nextStrm % streams
	g.nextStrm++
	rp := chaseR0 + isa.Reg(k)
	node := g.chaseCur[k]
	if node == 0 || g.rng.Bool(g.prof.ChaseHotProb*0.2) {
		// First touch, or a traversal restart. Restarts model re-walking a
		// structure: with ChaseHotProb the new head is a recently visited
		// node (the stable succ edges then replay the same miss sequence —
		// temporal locality and correlation-prefetcher fodder), otherwise a
		// fresh region.
		if g.recentN > 0 && g.rng.Bool(g.prof.ChaseHotProb) {
			node = g.recentNodes[g.rng.Intn(g.recentN)]
		} else {
			node = g.nodeAddr(0)
		}
		g.push(isa.Uop{Op: isa.OpMov, Src1: isa.RegNone, Src2: isa.RegNone, Dst: rp, Imm: int64(node)})
	}

	for hop := 0; hop < depth; hop++ {
		last := hop == depth-1
		var nextNode uint64
		var steps []chainStep
		var loadVal uint64
		if last {
			loadVal = g.rng.Uint64() // terminal data value
		} else {
			nextNode = g.nextNodeOf(node)
			k := g.rng.Range(p.ChainALUOps[0], p.ChainALUOps[1])
			steps, loadVal = g.solveChain(k, nextNode)
		}

		// The pointer load: dependent on rp, which carries the node address.
		dst := chainR0 + isa.Reg(g.nextChain%chainRegs)
		g.nextChain++
		g.push(isa.Uop{Op: isa.OpLoad, Src1: rp, Src2: isa.RegNone, Dst: dst,
			Imm: ptrOff, Addr: node + uint64(ptrOff), Value: loadVal,
			PC: g.chasePCs[hop%len(g.chasePCs)]})
		g.stats.ChaseLoads++

		// Optional sibling field load from the same cache line.
		if g.rng.Bool(p.SiblingLoadProb) {
			sibOff := (ptrOff + 8) % CacheLine
			g.push(isa.Uop{Op: isa.OpLoad, Src1: rp, Src2: isa.RegNone,
				Dst: sinkR0 + isa.Reg(g.rng.Intn(sinkRegs)),
				Imm: sibOff, Addr: node + uint64(sibOff), Value: g.rng.Uint64(),
				PC: g.siblingPC})
			g.stats.SiblingLoads++
		}

		if last {
			break
		}
		g.recordEdge(node, nextNode)
		g.stats.DepChainLinks++

		// Chain ALU ops transforming the loaded value into the next node
		// address, interleaved with independent filler (like instructions 1
		// and 2 in Fig. 4 of the paper).
		cur := dst
		for i, st := range steps {
			nxt := chainR0 + isa.Reg(g.nextChain%chainRegs)
			g.nextChain++
			u := isa.Uop{Op: st.op, Src1: cur, Src2: isa.RegNone, Dst: nxt, Imm: st.imm}
			if st.op == isa.OpMov {
				u.Imm = 0
			}
			g.push(u)
			g.stats.DepChainOps++
			cur = nxt
			if i%3 == 2 && g.rng.Bool(0.4) {
				g.emitFiller()
			}
		}

		// Rarely, spill the pointer through the stack inside the chain.
		if g.rng.Bool(0.02) {
			addr := g.spillAddrs[chainSpillSlot]
			off := int64(chainSpillSlot) * 8
			g.push(isa.Uop{Op: isa.OpStore, Src1: stackBaseReg, Src2: cur, Dst: isa.RegNone,
				Imm: off, Addr: addr, Value: g.regs[cur]})
			reload := chainR0 + isa.Reg(g.nextChain%chainRegs)
			g.nextChain++
			g.push(isa.Uop{Op: isa.OpLoad, Src1: stackBaseReg, Src2: isa.RegNone, Dst: reload,
				Imm: off, Addr: addr, Value: g.regs[cur], PC: g.fillPC})
			cur = reload
			g.stats.ChainSpills++
		}

		node = nextNode
		rp = cur
	}
	// Bank the traversal's position back into its persistent register so the
	// next episode of this stream continues the same walk.
	if rp != chaseR0+isa.Reg(k) {
		g.push(isa.Uop{Op: isa.OpMov, Src1: rp, Src2: isa.RegNone, Dst: chaseR0 + isa.Reg(k)})
	}
	g.chaseCur[k] = node
}

// nextNodeOf returns the successor of a chase node: the recorded stable
// next-pointer when the node was visited before (linked structures rarely
// mutate between traversals), otherwise a fresh choice.
func (g *Generator) nextNodeOf(node uint64) uint64 {
	if n, ok := g.succ[node]; ok && g.rng.Bool(0.9) {
		return n
	}
	return g.nodeAddr(node)
}

// recordEdge remembers node -> next with bounded capacity.
func (g *Generator) recordEdge(node, next uint64) {
	const maxEdges = 1 << 18
	if g.succ == nil {
		g.succ = make(map[uint64]uint64)
	}
	if _, ok := g.succ[node]; !ok {
		if len(g.succOrder) >= maxEdges {
			delete(g.succ, g.succOrder[0])
			g.succOrder = g.succOrder[1:]
		}
		g.succOrder = append(g.succOrder, node)
	}
	g.succ[node] = next
}

// LimitReader bounds an underlying reader to n uops.
type LimitReader struct {
	R Reader
	N uint64
}

// Next returns the next uop until the limit is reached.
func (l *LimitReader) Next() (isa.Uop, bool) {
	if l.N == 0 {
		return isa.Uop{}, false
	}
	l.N--
	return l.R.Next()
}

// SliceReader replays a fixed slice of uops; useful in tests.
type SliceReader struct {
	Uops []isa.Uop
	pos  int
}

// Next returns the next uop from the slice.
func (s *SliceReader) Next() (isa.Uop, bool) {
	if s.pos >= len(s.Uops) {
		return isa.Uop{}, false
	}
	u := s.Uops[s.pos]
	s.pos++
	return u, true
}

// Generate materializes n uops of benchmark prof with the given seed.
func Generate(prof Profile, seed uint64, n int) []isa.Uop {
	g := NewGenerator(prof, seed)
	out := make([]isa.Uop, 0, n)
	for i := 0; i < n; i++ {
		u, _ := g.Next()
		out = append(out, u)
	}
	return out
}
