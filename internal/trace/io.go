package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary trace format: a 16-byte header (magic, version, uop count) followed
// by fixed-width little-endian records. Traces are deterministic re-runs of
// the generator, but serialized traces let experiments pin a workload across
// generator changes and let external tools consume the streams.
const (
	traceMagic   = 0x454D4354 // "EMCT"
	traceVersion = 1
	recordBytes  = 8 + 8 + 1 + 1 + 1 + 1 + 8 + 8 + 8 + 1 // 45
)

// WriteTrace serializes uops to w.
func WriteTrace(w io.Writer, uops []isa.Uop) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(uops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for i := range uops {
		u := &uops[i]
		binary.LittleEndian.PutUint64(rec[0:], u.Seq)
		binary.LittleEndian.PutUint64(rec[8:], u.PC)
		rec[16] = byte(u.Op)
		rec[17] = byte(u.Src1)
		rec[18] = byte(u.Src2)
		rec[19] = byte(u.Dst)
		binary.LittleEndian.PutUint64(rec[20:], uint64(u.Imm))
		binary.LittleEndian.PutUint64(rec[28:], u.Addr)
		binary.LittleEndian.PutUint64(rec[36:], u.Value)
		var flags byte
		if u.Taken {
			flags |= 1
		}
		if u.Mispredicted {
			flags |= 2
		}
		rec[44] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]isa.Uop, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	const maxTrace = 1 << 30
	if n > maxTrace {
		return nil, fmt.Errorf("trace: implausible uop count %d", n)
	}
	uops := make([]isa.Uop, 0, n)
	var rec [recordBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		u := isa.Uop{
			Seq:   binary.LittleEndian.Uint64(rec[0:]),
			PC:    binary.LittleEndian.Uint64(rec[8:]),
			Op:    isa.Op(rec[16]),
			Src1:  isa.Reg(rec[17]),
			Src2:  isa.Reg(rec[18]),
			Dst:   isa.Reg(rec[19]),
			Imm:   int64(binary.LittleEndian.Uint64(rec[20:])),
			Addr:  binary.LittleEndian.Uint64(rec[28:]),
			Value: binary.LittleEndian.Uint64(rec[36:]),
		}
		u.Taken = rec[44]&1 != 0
		u.Mispredicted = rec[44]&2 != 0
		uops = append(uops, u)
	}
	return uops, nil
}
