package emc

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/vm"
)

func testCfg() Config {
	cfg := DefaultConfig(4)
	cfg.PageShift = vm.LargePageShift
	return cfg
}

// buildChain hand-assembles the Fig. 5-shaped chain:
//
//	uop0: load  E0 = [liveIn0]        (source miss, value arrives at trigger)
//	uop1: mov   E1 = E0
//	uop2: add   E2 = E1 + 0x18
//	uop3: load  E3 = [E2]             (dependent miss)
func buildChain(core int, srcBase, depVal uint64) *cpu.Chain {
	srcVal := uint64(0x5000000 - 0x18)
	return &cpu.Chain{
		CoreID:     core,
		SourceLine: srcBase >> 6,
		SourceVA:   srcBase,
		SourcePC:   0x400100,
		LiveIns:    []uint64{srcBase},
		Uops: []cpu.ChainUop{
			{U: isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
				Addr: srcBase, Value: srcVal, PC: 0x400100},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 0}, {}},
				DstEPR: 0},
			{U: isa.Uop{Op: isa.OpMov, Src1: 2, Src2: isa.RegNone, Dst: 3},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 0}, {}},
				DstEPR: 1},
			{U: isa.Uop{Op: isa.OpAdd, Src1: 3, Src2: isa.RegNone, Dst: 4, Imm: 0x18},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 1}, {}},
				DstEPR: 2},
			{U: isa.Uop{Op: isa.OpLoad, Src1: 4, Src2: isa.RegNone, Dst: 5,
				Addr: 0x5000000, Value: depVal, PC: 0x400104},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 2}, {}},
				DstEPR: 3},
		},
	}
}

// prime installs translations for the chain's pages.
func prime(e *EMC, core int, pt *vm.PageTable, addrs ...uint64) {
	for _, a := range addrs {
		e.TLB(core).Insert(a, pt.Lookup(a))
	}
}

func collect(e *EMC, from, to uint64) []Action {
	var acts []Action
	for cy := from; cy <= to; cy++ {
		acts = append(acts, e.Tick(cy)...)
	}
	return acts
}

func kinds(acts []Action) map[ActionKind]int {
	m := map[ActionKind]int{}
	for _, a := range acts {
		m[a.Kind]++
	}
	return m
}

func TestChainExecutionEndToEnd(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	ch := buildChain(0, 0x4000000, 0xABCD)
	prime(e, 0, pt, 0x4000000, 0x5000000)

	if !e.InstallChain(ch, nil, ch.SourceVA>>vm.LargePageShift, true, 10) {
		t.Fatal("install failed")
	}
	// Not triggered: nothing happens.
	if acts := e.Tick(11); len(acts) != 0 {
		t.Fatalf("untriggered context acted: %v", acts)
	}
	// Source data arrives.
	e.OnDRAMFill(ch.SourceLine, 20)
	acts := collect(e, 21, 40)
	k := kinds(acts)
	if k[ActMemExecuted] != 1 {
		t.Errorf("expected 1 mem-executed message (the dependent load), got %d", k[ActMemExecuted])
	}
	// The dependent load missed the cold EMC cache; the cold miss predictor
	// sends it via the LLC.
	if k[ActLLCRequest]+k[ActDRAMRequest] != 1 {
		t.Fatalf("expected 1 memory request, got %v", k)
	}
	// Deliver the dependent line.
	var dep Action
	for _, a := range acts {
		if a.Kind == ActLLCRequest || a.Kind == ActDRAMRequest {
			dep = a
		}
	}
	if dep.VAddr != 0x5000000 {
		t.Errorf("dependent request vaddr = %#x, want 0x5000000", dep.VAddr)
	}
	done := e.FillMem(dep.PAddr>>6, 100)
	if len(done) != 1 || done[0].Kind != ActChainDone {
		t.Fatalf("expected chain completion, got %v", done)
	}
	vals := done[0].Values
	if vals[0] != 0x5000000-0x18 || vals[1] != 0x5000000-0x18 ||
		vals[2] != 0x5000000 || vals[3] != 0xABCD {
		t.Errorf("live-out values wrong: %#x", vals)
	}
	if e.Stats.AddrMismatches != 0 {
		t.Errorf("address mismatches: %d", e.Stats.AddrMismatches)
	}
	if e.Stats.ChainsDone != 1 {
		t.Errorf("chains done = %d", e.Stats.ChainsDone)
	}
	if e.BusyContexts() != 0 {
		t.Error("context should be free after completion")
	}
}

func TestImmediateTriggerWhenSourceNotOutstanding(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	ch := buildChain(0, 0x4000000, 1)
	prime(e, 0, pt, 0x4000000, 0x5000000)
	e.InstallChain(ch, nil, 0, false /* source already filled */, 10)
	acts := collect(e, 11, 15)
	if len(acts) == 0 {
		t.Fatal("immediately-triggered chain did nothing")
	}
}

func TestTLBMissAborts(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	ch := buildChain(0, 0x4000000, 1)
	// Only the source page is resident; the dependent page is not.
	prime(e, 0, pt, 0x4000000)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 30)
	var abort *Action
	for i := range acts {
		if acts[i].Kind == ActChainAbort {
			abort = &acts[i]
		}
	}
	if abort == nil {
		t.Fatal("expected TLB-miss abort")
	}
	if abort.Reason != AbortTLBMiss || abort.MissPage != 0x5000000 {
		t.Errorf("abort = %+v", abort)
	}
	if e.Stats.AbortTLB != 1 {
		t.Errorf("abortTLB = %d", e.Stats.AbortTLB)
	}
	if e.BusyContexts() != 0 {
		t.Error("aborted context should be free")
	}
}

func TestMispredictAborts(t *testing.T) {
	e := New(testCfg(), 0, 4)
	ch := buildChain(0, 0x4000000, 1)
	ch.HasMispredict = true
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 12)
	if len(acts) != 1 || acts[0].Kind != ActChainAbort || acts[0].Reason != AbortMispredict {
		t.Fatalf("expected mispredict abort, got %v", acts)
	}
}

func TestContextExhaustion(t *testing.T) {
	cfg := testCfg()
	cfg.Contexts = 2
	e := New(cfg, 0, 4)
	for i := 0; i < 2; i++ {
		if !e.InstallChain(buildChain(i, 0x4000000, 1), nil, 0, true, 1) {
			t.Fatalf("install %d failed", i)
		}
	}
	if e.HasFreeContext() {
		t.Error("both contexts should be busy")
	}
	if e.InstallChain(buildChain(2, 0x4000000, 1), nil, 0, true, 1) {
		t.Error("third install should be rejected")
	}
	if e.Stats.ChainsRejected != 1 {
		t.Errorf("rejected = %d", e.Stats.ChainsRejected)
	}
}

func TestExternalAbort(t *testing.T) {
	e := New(testCfg(), 0, 4)
	ch := buildChain(0, 0x4000000, 1)
	e.InstallChain(ch, nil, 0, true, 1)
	acts := e.AbortContext(ch, AbortConflict, 5)
	if len(acts) != 1 || acts[0].Kind != ActChainAbort || acts[0].Reason != AbortConflict {
		t.Fatalf("expected conflict abort, got %v", acts)
	}
	if e.BusyContexts() != 0 {
		t.Error("context should be free")
	}
}

func TestDataCacheHit(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	ch := buildChain(0, 0x4000000, 0x77)
	prime(e, 0, pt, 0x4000000, 0x5000000)
	// The dependent line is already in the EMC data cache (it recently
	// crossed the controller).
	depPA := pt.Translate(0x5000000)
	e.OnDRAMFill(depPA>>6, 5)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 20)
	k := kinds(acts)
	if k[ActChainDone] != 1 {
		t.Fatalf("chain should complete from the data cache alone: %v", k)
	}
	if e.Stats.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", e.Stats.CacheHits)
	}
	if k[ActLLCRequest]+k[ActDRAMRequest] != 0 {
		t.Error("no external request expected on a cache hit")
	}
}

func TestMissPredictorRoutesToDRAM(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	// Train the dependent load's PC to predict miss.
	for i := 0; i < 8; i++ {
		e.TrainMissPredictor(0, 0x400104, true)
	}
	if !e.PredictMiss(0, 0x400104) {
		t.Fatal("predictor should predict miss after training")
	}
	ch := buildChain(0, 0x4000000, 1)
	prime(e, 0, pt, 0x4000000, 0x5000000)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 20)
	k := kinds(acts)
	if k[ActDRAMRequest] != 1 || k[ActLLCRequest] != 0 {
		t.Errorf("trained predictor should bypass the LLC: %v", k)
	}
	// Hits train it back down.
	for i := 0; i < 16; i++ {
		e.TrainMissPredictor(0, 0x400104, false)
	}
	if e.PredictMiss(0, 0x400104) {
		t.Error("predictor should predict hit after hit training")
	}
}

func TestLSQForwarding(t *testing.T) {
	// Chain with a register spill: store [stack] = E0; load E1 = [stack].
	stack := uint64(0x7FFF00000000)
	ch := &cpu.Chain{
		CoreID: 0, SourceLine: 0x4000000 >> 6, SourceVA: 0x4000000,
		LiveIns: []uint64{0x4000000, stack},
		Uops: []cpu.ChainUop{
			{U: isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
				Addr: 0x4000000, Value: 0xCAFE},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 0}, {}},
				DstEPR: 0},
			{U: isa.Uop{Op: isa.OpStore, Src1: 3, Src2: 2, Imm: 0,
				Addr: stack, Value: 0xCAFE},
				Src: [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 1},
					{Kind: cpu.ChainSrcEPR, Idx: 0}},
				DstEPR: -1},
			{U: isa.Uop{Op: isa.OpLoad, Src1: 3, Src2: isa.RegNone, Dst: 4,
				Imm: 0, Addr: stack, Value: 0xCAFE},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 1}, {}},
				DstEPR: 1},
		},
	}
	e := New(testCfg(), 0, 4)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 20)
	k := kinds(acts)
	if k[ActChainDone] != 1 {
		t.Fatalf("spill chain should complete: %v", k)
	}
	if e.Stats.LSQForwards != 1 {
		t.Errorf("LSQ forwards = %d, want 1", e.Stats.LSQForwards)
	}
	if e.Stats.StoresExecuted != 1 {
		t.Errorf("stores executed = %d, want 1", e.Stats.StoresExecuted)
	}
	// Both memory ops announce themselves to the home core's LSQ.
	if k[ActMemExecuted] != 2 {
		t.Errorf("mem-executed messages = %d, want 2", k[ActMemExecuted])
	}
}

func TestInvalidateLine(t *testing.T) {
	e := New(testCfg(), 0, 4)
	e.OnDRAMFill(0x123, 1)
	if !e.Cache().Probe(0x123 << 6) {
		t.Fatal("line should be cached after a DRAM fill")
	}
	e.InvalidateLine(0x123)
	if e.Cache().Probe(0x123 << 6) {
		t.Error("line should be gone after invalidation")
	}
}

func TestTwoWideIssueLimit(t *testing.T) {
	// A chain of 6 independent-after-source ALU ops takes >= 3 cycles at
	// issue width 2.
	var uops []cpu.ChainUop
	uops = append(uops, cpu.ChainUop{
		U: isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
			Addr: 0x4000000, Value: 5},
		Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 0}, {}},
		DstEPR: 0,
	})
	for i := 0; i < 6; i++ {
		uops = append(uops, cpu.ChainUop{
			U:      isa.Uop{Op: isa.OpAdd, Src1: 2, Src2: isa.RegNone, Dst: 3, Imm: int64(i)},
			Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 0}, {}},
			DstEPR: int8(1 + i),
		})
	}
	ch := &cpu.Chain{CoreID: 0, SourceLine: 0x4000000 >> 6,
		LiveIns: []uint64{0x4000000}, Uops: uops}
	e := New(testCfg(), 0, 4)
	e.InstallChain(ch, nil, 0, false, 10)
	doneAt := uint64(0)
	for cy := uint64(11); cy < 30 && doneAt == 0; cy++ {
		for _, a := range e.Tick(cy) {
			if a.Kind == ActChainDone {
				doneAt = cy
			}
		}
	}
	if doneAt == 0 {
		t.Fatal("chain never completed")
	}
	if doneAt < 13 {
		t.Errorf("6 ALU ops at width 2 finished too fast (cycle %d)", doneAt)
	}
}
