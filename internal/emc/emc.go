// Package emc implements the Enhanced Memory Controller of the paper
// (§4.1, §4.3): a minimal compute engine co-located with the memory
// controller that executes dependence chains shipped from the cores the
// moment the source miss's data arrives from DRAM.
//
// The EMC has no front end. Each of its contexts holds one renamed chain
// (≤16 uops), a 16-entry physical register file, and a live-in vector; a
// shared 2-wide back end with an 8-entry reservation-station window executes
// uops out of order. Loads consult a small data cache holding the most
// recent lines that crossed the controller, an LLC-miss predictor deciding
// whether to bypass the on-chip hierarchy, and per-core 32-entry TLBs.
// Aborts (TLB miss, mispredicted branch in the chain, memory-ordering
// conflict reported by the core) bounce the chain back for local execution.
package emc

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem/cache"
	"repro/internal/vm"
)

// Config sizes an EMC (Table 1).
type Config struct {
	Contexts   int // 2 on quad-core, 4 total on eight-core
	IssueWidth int // 2 ALUs
	RSSize     int // shared reservation station window
	LSQSize    int // per context

	CacheSize, CacheWays, CacheLatency int // 4 KB, 4-way, 2-cycle

	TLBEntriesPerCore int  // 32
	PageShift         uint // page size of the system's page tables

	MissPredEntries   int // 3-bit counters, PC-hashed, per core
	MissPredThreshold int // counter >= threshold predicts LLC miss
}

// DefaultConfig mirrors Table 1 for a quad-core chip.
func DefaultConfig(cores int) Config {
	ctx := 2
	if cores >= 8 {
		ctx = 4
	}
	return Config{
		Contexts: ctx, IssueWidth: 2, RSSize: 8, LSQSize: 8,
		CacheSize: 4096, CacheWays: 4, CacheLatency: 2,
		TLBEntriesPerCore: 32, PageShift: vm.PageShift,
		MissPredEntries: 256, MissPredThreshold: 4,
	}
}

// ActionKind discriminates the effects an EMC tick produces; the system
// simulator turns them into ring messages and DRAM transactions.
type ActionKind uint8

const (
	// ActLLCRequest asks the uncore to fetch a line via the LLC (load
	// predicted to hit on chip).
	ActLLCRequest ActionKind = iota
	// ActDRAMRequest asks for a direct DRAM fetch, bypassing the LLC
	// (load predicted to miss).
	ActDRAMRequest
	// ActMemExecuted is the address-ring message to the home core's LSQ.
	ActMemExecuted
	// ActChainDone carries the live-outs back to the home core.
	ActChainDone
	// ActChainAbort bounces the chain back for local re-execution.
	ActChainAbort
)

// AbortReason says why a chain aborted.
type AbortReason uint8

const (
	// AbortNone means no abort.
	AbortNone AbortReason = iota
	// AbortTLBMiss: a chain memory op's page was not in the EMC TLB.
	AbortTLBMiss
	// AbortMispredict: the chain contained a mispredicted branch.
	AbortMispredict
	// AbortConflict: the home core detected a memory-ordering conflict.
	AbortConflict
)

// Action is one externally visible effect of EMC execution.
type Action struct {
	Kind     ActionKind
	Ctx      int
	Core     int
	Chain    *cpu.Chain
	UopIdx   int
	VAddr    uint64
	PAddr    uint64
	PC       uint64
	Values   []uint64 // ActChainDone: live-outs, indexed like Chain.Uops
	Reason   AbortReason
	MissPage uint64 // ActChainAbort/AbortTLBMiss: faulting virtual address
}

// Stats aggregates EMC activity.
type Stats struct {
	ChainsInstalled uint64
	ChainsRejected  uint64 // no free context
	ChainsDone      uint64
	ChainsAborted   uint64
	AbortTLB        uint64
	AbortMispredict uint64
	AbortConflict   uint64

	UopsExecuted   uint64
	LoadsExecuted  uint64
	StoresExecuted uint64
	LSQForwards    uint64

	CacheHits   uint64
	CacheMisses uint64

	LLCRequests  uint64
	DRAMRequests uint64

	PredMissCorrect uint64
	PredMissWrong   uint64

	// AddrMismatches counts loads whose EMC-computed address differed from
	// the trace's recorded address; value-consistent traces require 0.
	AddrMismatches uint64

	// Latency from chain trigger to completion.
	ChainLatencySum uint64

	LiveOutsSent uint64
}

type uopState uint8

const (
	uWaiting uopState = iota
	uIssued
	uDone
)

type lsqEntry struct {
	vaddr uint64
	val   uint64
}

type context struct {
	busy      bool
	chain     *cpu.Chain
	core      int
	state     []uopState
	vals      []uint64
	prf       [16]uint64
	prfReady  [16]bool
	lsq       []lsqEntry
	triggered bool
	trigAt    uint64
	memBusy   int // outstanding memory requests
	aborting  bool
}

// pendingMem is an EMC load waiting for data from the LLC or DRAM.
type pendingMem struct {
	ctx  int
	uop  int
	line uint64
}

// pendCap bounds the pending-memory list: every context can have at most
// RSSize loads in flight, so the list stays a handful of entries and a flat
// insertion-ordered slice beats a map (dense scan, no per-append allocation,
// deterministic order for free).
const pendCap = 16

// MismatchDebug, when non-nil, receives address-mismatch details (tests).
var MismatchDebug func(ch *cpu.Chain, uop int, got uint64)

// EMC is one enhanced memory controller instance.
type EMC struct {
	cfg Config
	id  int // which memory controller stop it lives at

	dcache   *cache.Cache
	tlbs     []*vm.EMCTLB
	missPred [][]uint8

	ctxs []context

	// pend holds EMC loads waiting for a line fill, in issue order (the
	// order FillMem wakes same-line waiters in).
	pend []pendingMem

	Stats Stats
}

// New builds an EMC for a chip with the given core count.
func New(cfg Config, id, cores int) *EMC {
	e := &EMC{
		cfg: cfg,
		id:  id,
		dcache: cache.New(cache.Config{Name: "emc$", SizeBytes: cfg.CacheSize,
			Ways: cfg.CacheWays, Latency: cfg.CacheLatency}),
		ctxs: make([]context, cfg.Contexts),
		pend: make([]pendingMem, 0, pendCap),
	}
	for i := 0; i < cores; i++ {
		e.tlbs = append(e.tlbs, vm.NewEMCTLBShift(cfg.TLBEntriesPerCore, cfg.PageShift))
		e.missPred = append(e.missPred, make([]uint8, cfg.MissPredEntries))
	}
	return e
}

// ID returns the memory-controller stop this EMC is attached to.
func (e *EMC) ID() int { return e.id }

// Cache exposes the EMC data cache (directory coordination).
func (e *EMC) Cache() *cache.Cache { return e.dcache }

// ActiveContexts returns the number of chain contexts currently busy (a
// live occupancy gauge for the observability layer).
func (e *EMC) ActiveContexts() int {
	n := 0
	for i := range e.ctxs {
		if e.ctxs[i].busy {
			n++
		}
	}
	return n
}

// TLB returns the per-core EMC TLB.
func (e *EMC) TLB(core int) *vm.EMCTLB { return e.tlbs[core] }

// HasFreeContext reports whether a chain can be installed.
func (e *EMC) HasFreeContext() bool {
	for i := range e.ctxs {
		if !e.ctxs[i].busy {
			return true
		}
	}
	return false
}

// BusyContexts counts occupied contexts.
func (e *EMC) BusyContexts() int {
	n := 0
	for i := range e.ctxs {
		if e.ctxs[i].busy {
			n++
		}
	}
	return n
}

// InstallChain loads a chain into a free context. sourceOutstanding says
// whether the source miss is still in flight at this controller; if not, the
// context triggers immediately. Returns false when no context is free.
func (e *EMC) InstallChain(ch *cpu.Chain, pte *vm.PTE, sourceVPage uint64, sourceOutstanding bool, now uint64) bool {
	var ctx *context
	idx := -1
	for i := range e.ctxs {
		if !e.ctxs[i].busy {
			ctx = &e.ctxs[i]
			idx = i
			break
		}
	}
	if ctx == nil {
		e.Stats.ChainsRejected++
		return false
	}
	_ = idx
	// Reset in place, recycling the slot's state/vals/lsq backing arrays
	// (chains are <=16 uops, so these stabilize after the first installs).
	st, vs, lsq := ctx.state[:0], ctx.vals[:0], ctx.lsq[:0]
	for range ch.Uops {
		st = append(st, uWaiting)
		vs = append(vs, 0)
	}
	*ctx = context{
		busy:  true,
		chain: ch,
		core:  ch.CoreID,
		state: st,
		vals:  vs,
		lsq:   lsq,
	}
	// The source-miss PTE rides along if not already resident (§4.1.4).
	if pte != nil {
		e.tlbs[ch.CoreID].Insert(sourceVPage<<e.cfg.PageShift, pte)
	}
	e.Stats.ChainsInstalled++
	if !sourceOutstanding {
		ctx.triggered = true
		ctx.trigAt = now
	}
	return true
}

// OnDRAMFill observes a DRAM read completing at this controller. Every line
// that crosses the controller is captured in the EMC data cache (§4.1.3),
// and any context waiting on it as its source miss triggers. Returns true
// if the line entered the EMC cache (the caller sets the LLC directory bit).
func (e *EMC) OnDRAMFill(lineAddr uint64, now uint64) (cached bool, evicted uint64, hadEvict bool) {
	v := e.dcache.Insert(lineAddr<<cache.LineShift, false)
	for i := range e.ctxs {
		ctx := &e.ctxs[i]
		if ctx.busy && !ctx.triggered && ctx.chain.SourceLine == lineAddr {
			ctx.triggered = true
			ctx.trigAt = now
		}
	}
	if v.Valid {
		return true, v.LineAddr, true
	}
	return true, 0, false
}

// InvalidateLine removes a line from the EMC data cache (coherence: a store
// or eviction elsewhere invalidated it).
func (e *EMC) InvalidateLine(lineAddr uint64) {
	e.dcache.Invalidate(lineAddr << cache.LineShift)
}

// TrainMissPredictor updates the PC-hashed 3-bit counters from an observed
// LLC outcome for a core's load (§4.3, after [47]).
func (e *EMC) TrainMissPredictor(core int, pc uint64, miss bool) {
	if core < 0 || core >= len(e.missPred) {
		return
	}
	t := e.missPred[core]
	h := pcHash(pc) % uint64(len(t))
	if miss {
		if t[h] < 7 {
			t[h]++
		}
	} else if t[h] > 0 {
		t[h]--
	}
}

// PredictMiss returns the predictor's verdict for a load PC.
func (e *EMC) PredictMiss(core int, pc uint64) bool {
	t := e.missPred[core]
	return int(t[pcHash(pc)%uint64(len(t))]) >= e.cfg.MissPredThreshold
}

func pcHash(pc uint64) uint64 {
	pc ^= pc >> 13
	pc *= 0x9E3779B97F4A7C15
	return pc >> 17
}

// FillMem delivers data for an EMC-issued memory request (from the LLC path
// or DRAM path). actualMiss records whether the line really missed the LLC,
// training the predictor's accuracy stats.
func (e *EMC) FillMem(lineAddr uint64, now uint64) []Action {
	var acts []Action
	// Wake this line's waiters in issue order, compacting survivors in place.
	w := 0
	for _, p := range e.pend {
		if p.line != lineAddr {
			e.pend[w] = p
			w++
			continue
		}
		ctx := &e.ctxs[p.ctx]
		if !ctx.busy || ctx.state[p.uop] != uIssued {
			continue
		}
		ctx.memBusy--
		acts = append(acts, e.completeUop(p.ctx, p.uop, now)...)
	}
	e.pend = e.pend[:w]
	e.dcache.Insert(lineAddr<<cache.LineShift, false)
	return acts
}

// AbortContext aborts the chain occupying the context that runs the given
// chain (core-detected conflicts arrive from outside).
func (e *EMC) AbortContext(ch *cpu.Chain, reason AbortReason, now uint64) []Action {
	for i := range e.ctxs {
		ctx := &e.ctxs[i]
		if ctx.busy && ctx.chain == ch {
			return e.abort(i, reason, 0, now)
		}
	}
	return nil
}

func (e *EMC) abort(ci int, reason AbortReason, missPage uint64, now uint64) []Action {
	ctx := &e.ctxs[ci]
	ch := ctx.chain
	core := ctx.core
	ctx.busy = false
	ctx.chain = nil
	e.Stats.ChainsAborted++
	switch reason {
	case AbortTLBMiss:
		e.Stats.AbortTLB++
	case AbortMispredict:
		e.Stats.AbortMispredict++
	case AbortConflict:
		e.Stats.AbortConflict++
	}
	// Drop pending memory waiters belonging to this context.
	w := 0
	for _, p := range e.pend {
		if p.ctx != ci {
			e.pend[w] = p
			w++
		}
	}
	e.pend = e.pend[:w]
	return []Action{{Kind: ActChainAbort, Ctx: ci, Core: core, Chain: ch,
		Reason: reason, MissPage: missPage}}
}

// NoEvent is the NextEvent sentinel: no context can make progress until an
// external event (chain install, trigger, or memory fill) arrives.
const NoEvent = ^uint64(0)

// NextEvent reports whether any triggered context could do work on the next
// Tick. A context whose remaining uops are all pending memory fills (or
// blocked on them) is quiescent: Tick mutates nothing until a FillMem,
// trigger, or abort arrives, so those cycles may be skipped exactly.
func (e *EMC) NextEvent(now uint64) uint64 {
	for ci := range e.ctxs {
		ctx := &e.ctxs[ci]
		if !ctx.busy || !ctx.triggered || ctx.aborting {
			continue
		}
		if ctx.chain.HasMispredict || ctx.state[0] != uDone {
			return now + 1
		}
		allDone := true
		visible := 0
		for i := 1; i < len(ctx.chain.Uops); i++ {
			if ctx.state[i] == uDone {
				continue
			}
			allDone = false
			visible++
			if visible > e.cfg.RSSize {
				break
			}
			if ctx.state[i] == uWaiting && e.ready(ctx, i) {
				return now + 1 // an issue (or LSQ-full retry) happens next Tick
			}
		}
		if allDone {
			return now + 1 // finishChain fires next Tick
		}
	}
	return NoEvent
}

// Tick advances EMC execution one cycle, returning the externally visible
// actions (memory requests, LSQ messages, completions, aborts).
func (e *EMC) Tick(now uint64) []Action {
	var acts []Action
	issued := 0
	for ci := range e.ctxs {
		ctx := &e.ctxs[ci]
		if !ctx.busy || !ctx.triggered || ctx.aborting {
			continue
		}
		// Mispredicted branch inside the chain: detected after trigger.
		if ctx.chain.HasMispredict {
			acts = append(acts, e.abort(ci, AbortMispredict, 0, now)...)
			continue
		}
		// The source uop (index 0) completes the moment the context
		// triggers: its data arrived with the DRAM fill.
		if ctx.state[0] != uDone {
			ctx.state[0] = uDone
			src := &ctx.chain.Uops[0]
			v := src.U.Value
			ctx.vals[0] = v
			if src.DstEPR >= 0 {
				ctx.prf[src.DstEPR] = v
				ctx.prfReady[src.DstEPR] = true
			}
		}
		// Issue ready uops, bounded by the shared 2-wide back end and the
		// RS window (the first RSSize not-yet-done uops are visible).
		visible := 0
		for i := 1; i < len(ctx.chain.Uops) && issued < e.cfg.IssueWidth; i++ {
			if ctx.state[i] == uDone {
				continue
			}
			visible++
			if visible > e.cfg.RSSize {
				break
			}
			if ctx.state[i] != uWaiting || !e.ready(ctx, i) {
				continue
			}
			a, aborted := e.issueUop(ci, i, now)
			acts = append(acts, a...)
			if aborted {
				break
			}
			issued++
		}
		if !e.ctxs[ci].busy {
			continue // aborted during issue
		}
		// Completion check.
		if ctx.allDone() {
			acts = append(acts, e.finishChain(ci, now)...)
		}
	}
	return acts
}

func (c *context) allDone() bool {
	for _, s := range c.state {
		if s != uDone {
			return false
		}
	}
	return true
}

func (e *EMC) ready(ctx *context, i int) bool {
	cu := &ctx.chain.Uops[i]
	for s := 0; s < 2; s++ {
		if cu.Src[s].Kind == cpu.ChainSrcEPR && !ctx.prfReady[cu.Src[s].Idx] {
			return false
		}
	}
	return true
}

// srcVal resolves a renamed operand.
func (e *EMC) srcVal(ctx *context, cu *cpu.ChainUop, s int) uint64 {
	switch cu.Src[s].Kind {
	case cpu.ChainSrcLiveIn:
		return ctx.chain.LiveIns[cu.Src[s].Idx]
	case cpu.ChainSrcEPR:
		return ctx.prf[cu.Src[s].Idx]
	}
	return 0
}

// issueUop executes chain uop i of context ci. Memory ops may leave it
// uIssued pending a fill; everything else completes combinationally for the
// purposes of this model (1-cycle ALU, result visible next ready check).
func (e *EMC) issueUop(ci, i int, now uint64) (acts []Action, aborted bool) {
	ctx := &e.ctxs[ci]
	cu := &ctx.chain.Uops[i]
	u := &cu.U
	e.Stats.UopsExecuted++
	switch u.Op.Class() {
	case isa.ClassLoad:
		return e.issueLoad(ci, i, now)
	case isa.ClassStore:
		vaddr := isa.AddrOf(u, e.srcVal(ctx, cu, 0))
		if vaddr != u.Addr {
			e.Stats.AddrMismatches++
		}
		val := e.srcVal(ctx, cu, 1)
		if len(ctx.lsq) >= e.cfg.LSQSize {
			// LSQ full: retry next cycle.
			e.Stats.UopsExecuted--
			return nil, false
		}
		ctx.lsq = append(ctx.lsq, lsqEntry{vaddr: vaddr, val: val})
		ctx.state[i] = uDone
		ctx.vals[i] = val
		e.Stats.StoresExecuted++
		return []Action{{Kind: ActMemExecuted, Ctx: ci, Core: ctx.core,
			Chain: ctx.chain, UopIdx: i, VAddr: vaddr}}, false
	default:
		v := isa.EvalUop(u, e.srcVal(ctx, cu, 0), e.srcVal(ctx, cu, 1))
		ctx.state[i] = uDone
		ctx.vals[i] = v
		if cu.DstEPR >= 0 {
			ctx.prf[cu.DstEPR] = v
			ctx.prfReady[cu.DstEPR] = true
		}
		return nil, false
	}
}

func (e *EMC) issueLoad(ci, i int, now uint64) (acts []Action, aborted bool) {
	ctx := &e.ctxs[ci]
	cu := &ctx.chain.Uops[i]
	u := &cu.U
	vaddr := isa.AddrOf(u, e.srcVal(ctx, cu, 0))
	if vaddr != u.Addr {
		e.Stats.AddrMismatches++
		if MismatchDebug != nil {
			MismatchDebug(ctx.chain, i, vaddr)
		}
	}
	e.Stats.LoadsExecuted++
	acts = append(acts, Action{Kind: ActMemExecuted, Ctx: ci, Core: ctx.core,
		Chain: ctx.chain, UopIdx: i, VAddr: vaddr})

	// EMC LSQ forwarding from an earlier in-chain store.
	for j := len(ctx.lsq) - 1; j >= 0; j-- {
		if ctx.lsq[j].vaddr == vaddr {
			e.Stats.LSQForwards++
			ctx.state[i] = uDone
			e.writeResult(ctx, i, ctx.lsq[j].val)
			return acts, false
		}
	}

	// Translation: no page walks at the EMC — miss aborts (§4.1.4).
	paddr, ok := e.tlbs[ctx.core].Lookup(vaddr)
	if !ok {
		acts = append(acts, e.abort(ci, AbortTLBMiss, vaddr, now)...)
		return acts, true
	}

	// EMC data cache.
	if e.dcache.Access(paddr, false) {
		e.Stats.CacheHits++
		ctx.state[i] = uDone
		e.writeResult(ctx, i, u.Value)
		return acts, false
	}
	e.Stats.CacheMisses++

	// Miss predictor decides LLC vs direct DRAM (§4.3).
	line := cache.LineAddr(paddr)
	ctx.state[i] = uIssued
	ctx.memBusy++
	e.pend = append(e.pend, pendingMem{ctx: ci, uop: i, line: line})
	if e.PredictMiss(ctx.core, u.PC) {
		e.Stats.DRAMRequests++
		acts = append(acts, Action{Kind: ActDRAMRequest, Ctx: ci, Core: ctx.core,
			Chain: ctx.chain, UopIdx: i, VAddr: vaddr, PAddr: paddr, PC: u.PC})
	} else {
		e.Stats.LLCRequests++
		acts = append(acts, Action{Kind: ActLLCRequest, Ctx: ci, Core: ctx.core,
			Chain: ctx.chain, UopIdx: i, VAddr: vaddr, PAddr: paddr, PC: u.PC})
	}
	return acts, false
}

func (e *EMC) writeResult(ctx *context, i int, v uint64) {
	ctx.vals[i] = v
	cu := &ctx.chain.Uops[i]
	if cu.DstEPR >= 0 {
		ctx.prf[cu.DstEPR] = v
		ctx.prfReady[cu.DstEPR] = true
	}
}

// completeUop finishes a pending memory uop after its fill arrives.
func (e *EMC) completeUop(ci, i int, now uint64) []Action {
	ctx := &e.ctxs[ci]
	ctx.state[i] = uDone
	e.writeResult(ctx, i, ctx.chain.Uops[i].U.Value)
	if ctx.allDone() {
		return e.finishChain(ci, now)
	}
	return nil
}

// finishChain emits the live-outs and frees the context.
func (e *EMC) finishChain(ci int, now uint64) []Action {
	ctx := &e.ctxs[ci]
	ch := ctx.chain
	vals := make([]uint64, len(ctx.vals))
	copy(vals, ctx.vals)
	e.Stats.ChainsDone++
	e.Stats.ChainLatencySum += now - ctx.trigAt
	e.Stats.LiveOutsSent += uint64(len(vals))
	core := ctx.core
	ctx.busy = false
	ctx.chain = nil
	return []Action{{Kind: ActChainDone, Ctx: ci, Core: core, Chain: ch, Values: vals}}
}
