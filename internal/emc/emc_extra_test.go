package emc

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/vm"
)

// TestTwoContextsInterleave: two chains from different cores make progress
// concurrently under the shared 2-wide back end.
func TestTwoContextsInterleave(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt0 := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	pt1 := vm.NewPageTableShift(1, vm.NewFrameAllocator(), vm.LargePageShift)
	ch0 := buildChain(0, 0x4000000, 0x11)
	ch1 := buildChain(1, 0x4000000, 0x22)
	prime(e, 0, pt0, 0x4000000, 0x5000000)
	prime(e, 1, pt1, 0x4000000, 0x5000000)
	if !e.InstallChain(ch0, nil, 0, false, 10) || !e.InstallChain(ch1, nil, 0, false, 10) {
		t.Fatal("install failed")
	}
	acts := collect(e, 11, 40)
	var reqs []Action
	for _, a := range acts {
		if a.Kind == ActLLCRequest || a.Kind == ActDRAMRequest {
			reqs = append(reqs, a)
		}
	}
	if len(reqs) != 2 {
		t.Fatalf("expected 2 dependent requests (one per chain), got %d", len(reqs))
	}
	// Complete both.
	var done int
	for _, r := range reqs {
		for _, a := range e.FillMem(r.PAddr>>6, 100) {
			if a.Kind == ActChainDone {
				done++
			}
		}
	}
	if done != 2 {
		t.Fatalf("chains done = %d, want 2", done)
	}
	if e.Stats.ChainsDone != 2 {
		t.Errorf("stats chains done = %d", e.Stats.ChainsDone)
	}
}

// TestSameLineWaitersBothComplete: two loads of one chain to the same line
// (pointer + sibling field) complete from a single fill.
func TestSameLineWaitersBothComplete(t *testing.T) {
	src := uint64(0x4000000)
	dep := uint64(0x5000000)
	ch := &cpu.Chain{
		CoreID: 0, SourceLine: src >> 6, SourceVA: src,
		LiveIns: []uint64{src},
		Uops: []cpu.ChainUop{
			{U: isa.Uop{Op: isa.OpLoad, Src1: 1, Src2: isa.RegNone, Dst: 2,
				Addr: src, Value: dep},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcLiveIn, Idx: 0}, {}},
				DstEPR: 0},
			// Pointer load at [dep].
			{U: isa.Uop{Op: isa.OpLoad, Src1: 2, Src2: isa.RegNone, Dst: 3,
				Imm: 0, Addr: dep, Value: 0xAA},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 0}, {}},
				DstEPR: 1},
			// Sibling field on the same line.
			{U: isa.Uop{Op: isa.OpLoad, Src1: 2, Src2: isa.RegNone, Dst: 4,
				Imm: 8, Addr: dep + 8, Value: 0xBB},
				Src:    [2]cpu.ChainSrc{{Kind: cpu.ChainSrcEPR, Idx: 0}, {}},
				DstEPR: 2},
		},
	}
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	prime(e, 0, pt, src, dep)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 20)
	var pend []Action
	for _, a := range acts {
		if a.Kind == ActLLCRequest || a.Kind == ActDRAMRequest {
			pend = append(pend, a)
		}
	}
	if len(pend) == 0 {
		t.Fatal("no memory requests")
	}
	// All requests are for the same line; one fill completes the chain.
	line := pend[0].PAddr >> 6
	done := e.FillMem(line, 50)
	if len(done) != 1 || done[0].Kind != ActChainDone {
		t.Fatalf("one fill should complete the chain, got %v", done)
	}
	vals := done[0].Values
	if vals[1] != 0xAA || vals[2] != 0xBB {
		t.Errorf("sibling values wrong: %#x", vals)
	}
}

// TestAbortReleasesPendingWaiters: aborting a context drops its in-flight
// memory waiters so later fills to those lines are harmless.
func TestAbortReleasesPendingWaiters(t *testing.T) {
	e := New(testCfg(), 0, 4)
	pt := vm.NewPageTableShift(0, vm.NewFrameAllocator(), vm.LargePageShift)
	ch := buildChain(0, 0x4000000, 1)
	prime(e, 0, pt, 0x4000000, 0x5000000)
	e.InstallChain(ch, nil, 0, false, 10)
	acts := collect(e, 11, 20)
	var dep Action
	for _, a := range acts {
		if a.Kind == ActLLCRequest || a.Kind == ActDRAMRequest {
			dep = a
		}
	}
	if dep.Kind == 0 && dep.PAddr == 0 {
		t.Fatal("no dependent request issued")
	}
	e.AbortContext(ch, AbortConflict, 30)
	// The late fill must not produce actions for the dead context.
	if acts := e.FillMem(dep.PAddr>>6, 60); len(acts) != 0 {
		t.Errorf("fill after abort produced actions: %v", acts)
	}
	if e.BusyContexts() != 0 {
		t.Error("context leaked")
	}
}
