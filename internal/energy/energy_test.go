package energy

import "testing"

func baseEvents() Events {
	return Events{
		Cycles: 1_000_000, Cores: 4, LLCMB: 4, EMCs: 0, Channels: 2,
		Uops: 200_000, FPUops: 20_000, L1Accesses: 80_000,
		LLCAccesses: 10_000, RingHopsCtrl: 20_000, RingHopsData: 15_000,
		DRAMActivates: 3_000, DRAMReads: 8_000, DRAMWrites: 2_000,
	}
}

func TestTotalPositiveAndAdditive(t *testing.T) {
	m := Default()
	b := m.Compute(baseEvents())
	if b.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
	sum := b.CoreStatic + b.CoreDynamic + b.LLCStatic + b.LLCDynamic +
		b.Ring + b.EMCStatic + b.EMCDynamic + b.DRAMStatic + b.DRAMDynamic
	if diff := b.Total() - sum; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("Total != sum of parts: %v vs %v", b.Total(), sum)
	}
	if b.Chip()+b.DRAMStatic+b.DRAMDynamic != b.Total() {
		t.Error("Chip + DRAM must equal Total")
	}
}

func TestShorterRuntimeReducesStatic(t *testing.T) {
	m := Default()
	ev := baseEvents()
	slow := m.Compute(ev)
	ev.Cycles /= 2
	fast := m.Compute(ev)
	if fast.CoreStatic >= slow.CoreStatic || fast.DRAMStatic >= slow.DRAMStatic {
		t.Error("halving runtime must halve static energy")
	}
	if fast.CoreDynamic != slow.CoreDynamic {
		t.Error("dynamic energy must not depend on runtime")
	}
}

func TestRowConflictsCostEnergy(t *testing.T) {
	m := Default()
	ev := baseEvents()
	base := m.Compute(ev)
	ev.DRAMActivates *= 2 // more row conflicts => more activates
	worse := m.Compute(ev)
	if worse.DRAMDynamic <= base.DRAMDynamic {
		t.Error("more activates must cost more DRAM energy")
	}
}

func TestEMCAddsStaticButLittle(t *testing.T) {
	m := Default()
	ev := baseEvents()
	base := m.Compute(ev)
	ev.EMCs = 1
	ev.EMCUops = 5_000
	ev.EMCCacheAccesses = 3_000
	withEMC := m.Compute(ev)
	extra := withEMC.Total() - base.Total()
	if extra <= 0 {
		t.Fatal("EMC must add some energy")
	}
	// §6.6: the EMC is ~10% of a core; its energy adder must be small
	// relative to one core's static share.
	if extra > base.CoreStatic/4/2 {
		t.Errorf("EMC energy adder too large: %v vs core static %v", extra, base.CoreStatic/4)
	}
}

func TestPrefetchTrafficCostsEnergy(t *testing.T) {
	m := Default()
	ev := baseEvents()
	base := m.Compute(ev)
	// A wasteful prefetcher: 40% more DRAM traffic and ring hops.
	ev.DRAMReads = ev.DRAMReads * 14 / 10
	ev.DRAMActivates = ev.DRAMActivates * 14 / 10
	ev.RingHopsData = ev.RingHopsData * 14 / 10
	waste := m.Compute(ev)
	if waste.Total() <= base.Total() {
		t.Error("extra traffic must increase energy")
	}
}

func TestChainGenEvents(t *testing.T) {
	m := Default()
	ev := baseEvents()
	base := m.Compute(ev)
	ev.ChainUops = 10_000
	ev.ChainSrcOps = 15_000
	ev.ChainDstOps = 9_000
	with := m.Compute(ev)
	if with.CoreDynamic <= base.CoreDynamic {
		t.Error("chain generation events must cost core dynamic energy")
	}
}
