// Package energy is an event-counter energy model in the spirit of
// McPAT/CACTI as used by the paper (§5): static power integrated over the
// workload's runtime plus per-event dynamic energies for the cores, caches,
// interconnect, DRAM, the EMC, and the chain-generation unit's extra events
// (CDB tag broadcasts, RRT reads/writes, ROB reads, ring transfers).
//
// Absolute joules are calibrated constants, not silicon measurements; the
// experiments only compare energy across configurations of the same system,
// where the relative effects (shorter runtime, fewer row conflicts, small
// EMC traffic vs. large prefetch overtraffic) dominate.
package energy

// Model holds the per-event energies (nanojoules) and static powers (watts).
type Model struct {
	// Static power.
	CoreStaticW        float64 // per core
	LLCStaticWPerMB    float64
	EMCStaticW         float64 // §6.6: EMC is ~10% of a core
	DRAMStaticWPerChan float64

	// Core dynamic, nJ per event.
	UopNJ          float64
	FPUopNJ        float64
	L1AccessNJ     float64
	ROBReadNJ      float64
	CDBBroadcastNJ float64
	RRTAccessNJ    float64

	// Uncore dynamic.
	LLCAccessNJ   float64
	RingHopCtrlNJ float64
	RingHopDataNJ float64

	// DRAM dynamic.
	ActivateNJ float64
	RdWrNJ     float64

	// EMC dynamic.
	EMCUopNJ   float64
	EMCCacheNJ float64

	ClockHz float64
}

// Default returns the calibrated model at the paper's 3.2 GHz clock.
func Default() Model {
	return Model{
		CoreStaticW: 1.8, LLCStaticWPerMB: 0.35, EMCStaticW: 0.19,
		DRAMStaticWPerChan: 0.9,
		UopNJ:              0.08, FPUopNJ: 0.22, L1AccessNJ: 0.02,
		ROBReadNJ: 0.004, CDBBroadcastNJ: 0.006, RRTAccessNJ: 0.002,
		LLCAccessNJ: 0.45, RingHopCtrlNJ: 0.03, RingHopDataNJ: 0.18,
		ActivateNJ: 17.0, RdWrNJ: 11.0,
		EMCUopNJ: 0.05, EMCCacheNJ: 0.008,
		ClockHz: 3.2e9,
	}
}

// Events are the counters a simulation run accumulates.
type Events struct {
	Cycles   uint64
	Cores    int
	LLCMB    float64
	EMCs     int // compute-capable memory controllers present
	Channels int

	Uops       uint64
	FPUops     uint64
	L1Accesses uint64

	// Chain-generation events (§5).
	ChainUops   uint64 // each costs a CDB broadcast + an ROB read
	ChainSrcOps uint64 // RRT lookups
	ChainDstOps uint64 // RRT writes

	LLCAccesses  uint64
	RingHopsCtrl uint64
	RingHopsData uint64

	DRAMActivates uint64
	DRAMReads     uint64
	DRAMWrites    uint64

	EMCUops          uint64
	EMCCacheAccesses uint64
}

// Breakdown is the resulting energy split in joules.
type Breakdown struct {
	CoreStatic  float64
	CoreDynamic float64
	LLCStatic   float64
	LLCDynamic  float64
	Ring        float64
	EMCStatic   float64
	EMCDynamic  float64
	DRAMStatic  float64
	DRAMDynamic float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.CoreStatic + b.CoreDynamic + b.LLCStatic + b.LLCDynamic +
		b.Ring + b.EMCStatic + b.EMCDynamic + b.DRAMStatic + b.DRAMDynamic
}

// Chip returns on-chip energy (everything but DRAM).
func (b Breakdown) Chip() float64 {
	return b.Total() - b.DRAMStatic - b.DRAMDynamic
}

const nj = 1e-9

// Compute evaluates the model over a run's event counters.
func (m Model) Compute(ev Events) Breakdown {
	secs := float64(ev.Cycles) / m.ClockHz
	var b Breakdown
	b.CoreStatic = m.CoreStaticW * float64(ev.Cores) * secs
	b.CoreDynamic = nj * (m.UopNJ*float64(ev.Uops) +
		m.FPUopNJ*float64(ev.FPUops) +
		m.L1AccessNJ*float64(ev.L1Accesses) +
		(m.CDBBroadcastNJ+m.ROBReadNJ)*float64(ev.ChainUops) +
		m.RRTAccessNJ*float64(ev.ChainSrcOps+ev.ChainDstOps))
	b.LLCStatic = m.LLCStaticWPerMB * ev.LLCMB * secs
	b.LLCDynamic = nj * m.LLCAccessNJ * float64(ev.LLCAccesses)
	b.Ring = nj * (m.RingHopCtrlNJ*float64(ev.RingHopsCtrl) +
		m.RingHopDataNJ*float64(ev.RingHopsData))
	b.EMCStatic = m.EMCStaticW * float64(ev.EMCs) * secs
	b.EMCDynamic = nj * (m.EMCUopNJ*float64(ev.EMCUops) +
		m.EMCCacheNJ*float64(ev.EMCCacheAccesses))
	b.DRAMStatic = m.DRAMStaticWPerChan * float64(ev.Channels) * secs
	b.DRAMDynamic = nj * (m.ActivateNJ*float64(ev.DRAMActivates) +
		m.RdWrNJ*float64(ev.DRAMReads+ev.DRAMWrites))
	return b
}
