package sim

import (
	"repro/internal/cpu"
	"repro/internal/emc"
	"repro/internal/mem/cache"
	"repro/internal/mem/dram"
	"repro/internal/obs"
)

// mcAdmit admits a read request at a memory controller, merging requests to
// the same in-flight line and retrying when the memory queue is full.
func (s *System) mcAdmit(mc *mcNode, r *memReq) {
	r.mcArrive = s.now
	if r.trace != nil {
		s.tr.StampEvent(r.trace, obs.StageMCReach, s.now)
	}
	if p, ok := mc.pending[r.line]; ok {
		s.mcAttach(p, r)
		return
	}
	p := s.allocPending(r.line)
	s.mcAttach(p, r)
	mc.pending[r.line] = p
	dr := mc.ctrl.NewRequest()
	dr.LineAddr = s.mcLine(r.line)
	dr.CoreID = r.core
	dr.FromEMC = r.fromEMC
	dr.Prefetch = r.prefetch
	dr.Payload = p
	if !mc.ctrl.Enqueue(dr, s.now) {
		mc.retryQ = append(mc.retryQ, dr)
	}
}

func (s *System) mcAttach(p *mcPending, r *memReq) {
	switch {
	case r.fromEMC && s.mcs[r.emcMC] == s.mcOf(r.line):
		// Local EMC request: fill directly at this controller.
		p.emcReqs = append(p.emcReqs, r)
	case r.fromEMC:
		// Remote EMC request (cross-channel, §4.4).
		p.cross = append(p.cross, r)
	default:
		p.reqs = append(p.reqs, r)
	}
}

// mcWrite admits a DRAM write (write-through store miss or LLC writeback).
func (s *System) mcWrite(mc *mcNode, r *memReq) {
	dr := mc.ctrl.NewRequest()
	dr.LineAddr = s.mcLine(r.line)
	dr.Write = true
	dr.CoreID = -1
	if !mc.ctrl.Enqueue(dr, s.now) {
		mc.retryQ = append(mc.retryQ, dr)
	}
}

// mcTick advances one controller: queue retries, DRAM, completions, EMC.
func (s *System) mcTick(mc *mcNode) {
	// Retry rejected enqueues in order.
	for mc.retryHead < len(mc.retryQ) {
		dr := mc.retryQ[mc.retryHead]
		if !mc.ctrl.Enqueue(dr, s.now) {
			break
		}
		mc.retryQ[mc.retryHead] = nil
		mc.retryHead++
	}
	if mc.retryHead == len(mc.retryQ) && mc.retryHead > 0 {
		mc.retryQ = mc.retryQ[:0]
		mc.retryHead = 0
	}

	for _, done := range mc.ctrl.Tick(s.now) {
		s.mcComplete(mc, done)
		mc.ctrl.Release(done)
	}

	if mc.emc != nil {
		s.emcActions(mc, mc.emc.Tick(s.now))
	}
}

// mcComplete routes a finished DRAM read to its waiters.
func (s *System) mcComplete(mc *mcNode, dr *dram.Request) {
	p, _ := dr.Payload.(*mcPending)
	if p == nil {
		return
	}
	delete(mc.pending, p.line)

	// Account traffic by class.
	switch {
	case dr.FromEMC:
		s.st.DRAMEMCReads++
		if dr.RowHit {
			s.st.EMCRowHits++
		}
	case dr.Prefetch:
		s.st.DRAMPrefetch++
	default:
		s.st.DRAMDemandReads++
		if dr.RowHit {
			s.st.DemandRowHits++
		}
	}

	// MagicChains diagnostic: trigger queued chains instantly.
	if s.cfg.MagicChains && len(mc.magicQ) > 0 {
		keep := mc.magicQ[:0]
		for _, ch := range mc.magicQ {
			if ch.SourceLine == p.line {
				s.magicComplete(ch)
			} else {
				keep = append(keep, ch)
			}
		}
		mc.magicQ = keep
	}

	// Every line crossing this controller lands in the EMC data cache and
	// may trigger a waiting chain (§4.1.3).
	if mc.emc != nil {
		_, evicted, had := mc.emc.OnDRAMFill(p.line, s.now)
		if had {
			s.sliceOf(evicted).c.SetEMCBit(evicted<<cache.LineShift, false)
		}
	}

	// Timing segments onto every waiter.
	stamp := func(r *memReq) {
		r.dramIssued = dr.IssuedAt
		r.dramDone = s.now
		if r.trace != nil {
			s.tr.StampEvent(r.trace, obs.StageDRAMIssue, dr.IssuedAt)
			s.tr.StampEvent(r.trace, obs.StageDRAMDone, s.now)
		}
	}

	// Slice-path waiters (demand, prefetch): one fill message to the slice.
	if len(p.reqs) > 0 || (dr.Prefetch && len(p.emcReqs) == 0 && len(p.cross) == 0) {
		var lead *memReq
		if len(p.reqs) > 0 {
			lead = p.reqs[0]
			for _, r := range p.reqs {
				stamp(r)
			}
		} else {
			lead = s.allocReq()
			lead.line, lead.core, lead.prefetch, lead.issuedAt = p.line, dr.CoreID, true, s.now
			stamp(lead)
		}
		s.sendData(mc.stop, s.sliceOf(p.line).stop, msg{kind: mFillToSlice, req: lead})
	} else if dr.FromEMC {
		// EMC-only fill still installs in the LLC (demand semantics).
		fill := s.allocReq()
		fill.line, fill.core, fill.fromEMC, fill.emcMC, fill.issuedAt = p.line, dr.CoreID, true, mc.id, s.now
		stamp(fill)
		s.sendData(mc.stop, s.sliceOf(p.line).stop, msg{kind: mFillToSlice, req: fill})
	}

	// Local EMC waiters.
	for _, r := range p.emcReqs {
		stamp(r)
		s.emcFill(mc, r)
		s.freeReq(r)
	}
	// Cross-MC EMC waiters: data rides the ring back to the owning EMC.
	for _, r := range p.cross {
		stamp(r)
		s.sendData(mc.stop, s.mcs[r.emcMC].stop, msg{kind: mCrossData, req: r})
	}
	s.freePending(p)
}

// emcFill completes an EMC memory request and accounts its latency (Fig. 18).
func (s *System) emcFill(mc *mcNode, r *memReq) {
	if mc.emc == nil {
		return
	}
	s.st.EMCMissCount++
	s.st.EMCMissHist.Add(s.now - r.issuedAt)
	s.st.EMCMissTotal += s.now - r.issuedAt
	if r.dramIssued >= r.mcArrive && r.mcArrive > 0 {
		s.st.EMCMissQueue += r.dramIssued - r.mcArrive
	}
	if r.trace != nil {
		// An LLC-path launcher is delivered twice (directly and via the
		// slice); each delivery stamps a fill and is attributed, matching
		// the EMCMissCount/EMCMissTotal accounting above.
		s.tr.StampEvent(r.trace, obs.StageFill, s.now)
		s.tr.Attr().AddStamps(obs.SrcEMC, obs.Stamps{
			Issued: r.issuedAt, SliceReach: r.sliceArrive, SliceDone: r.sliceDone,
			MCReach: r.mcArrive, DRAMIssued: r.dramIssued, DRAMDone: r.dramDone,
			Fill: s.now,
		})
	}
	s.emcActions(mc, mc.emc.FillMem(r.line, s.now))
}

// installChain delivers a fully received chain packet to the EMC.
func (s *System) installChain(mc *mcNode, ch *cpu.Chain) {
	if mc.emc == nil {
		s.cores[ch.CoreID].AbortRemoteChain(ch)
		return
	}
	// PTE piggyback: the source page's translation rides along if its
	// EMCResident bit says it is absent at the EMC (§4.1.4).
	pte := s.pts[ch.CoreID].Lookup(ch.SourceVA)
	var ship = pte
	if pte.EMCResident {
		ship = nil
	}
	outstanding := mc.pending[ch.SourceLine] != nil
	if s.cfg.MagicChains {
		// Diagnostic mode: execute the chain functionally and deliver the
		// live-outs the moment the source data is at the controller.
		if outstanding {
			mc.magicQ = append(mc.magicQ, ch)
		} else {
			s.magicComplete(ch)
		}
		return
	}
	if !mc.emc.InstallChain(ch, ship, ch.SourceVA>>s.cfg.PageShift, outstanding, s.now) {
		s.st.ChainRejects++
		s.cores[ch.CoreID].AbortRemoteChain(ch)
		return
	}
	s.activeChains[ch] = mc.id
}

// magicComplete functionally evaluates a chain and completes it at the core
// immediately (MagicChains diagnostic mode).
func (s *System) magicComplete(ch *cpu.Chain) {
	s.cores[ch.CoreID].CompleteRemoteChain(ch, ch.Evaluate(), s.now)
}

// emcActions converts EMC actions into ring traffic and DRAM requests.
func (s *System) emcActions(mc *mcNode, acts []emc.Action) {
	for _, a := range acts {
		switch a.Kind {
		case emc.ActLLCRequest:
			s.emcLineRequest(mc, a, false)
		case emc.ActDRAMRequest:
			s.emcLineRequest(mc, a, true)
		case emc.ActMemExecuted:
			s.sendCtrl(mc.stop, s.coreStop[a.Core],
				msg{kind: mMemExec, chain: a.Chain, uopIdx: a.UopIdx, vaddr: a.VAddr,
					core: a.Core, mc: mc.id})
		case emc.ActChainDone:
			flits := (len(a.Values)*8 + 63) / 64
			if flits < 1 {
				flits = 1
			}
			// Only the last flit carries the completion.
			for f := 0; f < flits-1; f++ {
				s.sendData(mc.stop, s.coreStop[a.Core],
					msg{kind: mChainDone, chain: a.Chain, values: nil, core: a.Core, mc: mc.id})
			}
			s.sendData(mc.stop, s.coreStop[a.Core],
				msg{kind: mChainDone, chain: a.Chain, values: a.Values, core: a.Core, mc: mc.id})
		case emc.ActChainAbort:
			s.sendCtrl(mc.stop, s.coreStop[a.Core],
				msg{kind: mChainAbort, chain: a.Chain, reason: a.Reason,
					vaddr: a.MissPage, core: a.Core, mc: mc.id})
		}
	}
}

// emcLineRequest launches an EMC load: either through the LLC (predicted
// on-chip) or directly to DRAM (predicted miss), with the directory probe
// safety net for the direct path.
func (s *System) emcLineRequest(mc *mcNode, a emc.Action, direct bool) {
	line := cache.LineAddr(a.PAddr)
	r := s.allocReq()
	r.line, r.core, r.pc, r.vaddr = line, a.Core, a.PC, a.VAddr
	r.fromEMC, r.emcMC, r.issuedAt = true, mc.id, s.now
	if s.tr != nil {
		r.trace = s.tr.Start(obs.SrcEMC, r.core, r.line, r.pc, true, s.now)
	}
	if direct {
		// Off-critical-path directory probe: a line present in the LLC must
		// be served from there (it may be dirty); counts as a mispredict.
		sl := s.sliceOf(line)
		if present, _ := sl.c.ProbeDirty(line << cache.LineShift); present {
			s.st.EMCPredWrong++
			direct = false
		}
	}
	if !direct {
		sl := s.sliceOf(line)
		s.sendCtrl(mc.stop, sl.stop, msg{kind: mEMCLLCReq, req: r})
		return
	}
	owner := s.mcOf(line)
	if owner == mc {
		s.mcAdmit(mc, r)
		return
	}
	// Cross-channel dependency: issue directly to the other controller
	// without bouncing through the core (§4.4).
	s.sendCtrl(mc.stop, owner.stop, msg{kind: mCrossReq, req: r, mc: owner.id})
}
