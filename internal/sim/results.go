package sim

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cpu"
	"repro/internal/emc"
	"repro/internal/energy"
	"repro/internal/mem/dram"
	"repro/internal/obs"
)

// CoreResult is one core's outcome.
type CoreResult struct {
	Benchmark string
	Stats     cpu.Stats
	IPC       float64
	// Cycles is the cycle at which this core retired its budget (equal to
	// the run length for the slowest core).
	Cycles uint64
}

// Result is everything a run produces; the figure harness derives the
// paper's metrics from these fields.
type Result struct {
	Config Config
	Cycles uint64

	Cores []CoreResult
	Sys   RunStats

	DRAM []dram.Stats // per controller
	EMC  []emc.Stats  // per controller (empty entries when disabled)

	CtrlRingMsgs uint64
	DataRingMsgs uint64
	CtrlRingHops uint64
	DataRingHops uint64

	PrefetchIssued uint64
	PrefetchUseful uint64

	Energy energy.Breakdown

	// Obs carries the tracing/attribution report when Config.Obs.Enabled
	// (nil otherwise). It is observational — deliberately excluded from
	// Hash, which covers simulation outcomes only.
	Obs *obs.Report
}

// Hash returns an FNV-1a digest over every simulation outcome in the Result
// (all fields except Config, which carries function values). Two runs of the
// same configuration must produce the same hash regardless of whether the
// event-horizon scheduler skipped cycles — this is the determinism guard
// cycle skipping is tested against.
func (r *Result) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%+v|%+v|%+v|%+v|%d %d %d %d|%d %d|%+v",
		r.Cycles, r.Cores, r.Sys, r.DRAM, r.EMC,
		r.CtrlRingMsgs, r.DataRingMsgs, r.CtrlRingHops, r.DataRingHops,
		r.PrefetchIssued, r.PrefetchUseful, r.Energy)
	return h.Sum64()
}

// AvgIPC returns the arithmetic mean IPC over cores.
func (r *Result) AvgIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum / float64(len(r.Cores))
}

// WeightedSpeedupVs computes the weighted speedup of this run against
// per-benchmark baseline IPCs (typically alone-run IPCs): sum(IPC_i/base_i).
func (r *Result) WeightedSpeedupVs(base map[string]float64) float64 {
	ws := 0.0
	for _, c := range r.Cores {
		if b := base[c.Benchmark]; b > 0 {
			ws += c.IPC / b
		}
	}
	return ws
}

// TotalDRAMReads sums demand+prefetch+EMC read traffic.
func (r *Result) TotalDRAMReads() uint64 {
	return r.Sys.DRAMDemandReads + r.Sys.DRAMPrefetch + r.Sys.DRAMEMCReads
}

// MemTraffic returns total DRAM transactions (reads+writes), the bandwidth
// metric the paper uses for prefetcher overhead.
func (r *Result) MemTraffic() uint64 { return r.TotalDRAMReads() + r.Sys.DRAMWrites }

// CoreMissLatency returns the average latency of core-generated LLC misses.
func (r *Result) CoreMissLatency() float64 {
	if r.Sys.CoreMissCount == 0 {
		return 0
	}
	return float64(r.Sys.CoreMissTotal) / float64(r.Sys.CoreMissCount)
}

// EMCMissLatency returns the average latency of EMC-generated misses.
func (r *Result) EMCMissLatency() float64 {
	if r.Sys.EMCMissCount == 0 {
		return 0
	}
	return float64(r.Sys.EMCMissTotal) / float64(r.Sys.EMCMissCount)
}

// EMCMissFraction is Fig. 15: EMC-generated DRAM reads over all demand-class
// DRAM reads.
func (r *Result) EMCMissFraction() float64 {
	tot := r.Sys.DRAMDemandReads + r.Sys.DRAMEMCReads
	if tot == 0 {
		return 0
	}
	return float64(r.Sys.DRAMEMCReads) / float64(tot)
}

// RowConflictRate aggregates the row-buffer conflict rate over controllers.
func (r *Result) RowConflictRate() float64 {
	var conf, tot uint64
	for _, d := range r.DRAM {
		conf += d.RowConflicts
		tot += d.RowHits + d.RowConflicts + d.RowEmpty
	}
	if tot == 0 {
		return 0
	}
	return float64(conf) / float64(tot)
}

// EMCCacheHitRate is Fig. 17.
func (r *Result) EMCCacheHitRate() float64 {
	var h, m uint64
	for _, e := range r.EMC {
		h += e.CacheHits
		m += e.CacheMisses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// DependentMissFraction is Fig. 2: the share of LLC misses whose address
// depended on a prior LLC miss.
func (r *Result) DependentMissFraction() float64 {
	demandMisses := r.Sys.DepMisses + r.Sys.IdealDepHits
	var total uint64
	total = r.Sys.LLCMisses + r.Sys.IdealDepHits
	// Exclude EMC-side misses so the metric matches the no-EMC
	// characterization runs it is measured on.
	if total == 0 {
		return 0
	}
	return float64(demandMisses) / float64(total)
}

// AvgChainLength is Fig. 22: mean uops per generated chain.
func (r *Result) AvgChainLength() float64 {
	var uops, chains uint64
	for _, c := range r.Cores {
		uops += c.Stats.ChainUops
		chains += c.Stats.ChainsGenerated
	}
	if chains == 0 {
		return 0
	}
	return float64(uops) / float64(chains)
}

// collect builds the Result after the run completes.
func (s *System) collect() *Result {
	r := &Result{Config: s.cfg, Cycles: s.now, Sys: s.st}
	for i, c := range s.cores {
		st := c.Stats
		cy := st.Cycles
		ipc := 0.0
		if cy > 0 {
			ipc = float64(st.Retired) / float64(cy)
		}
		r.Cores = append(r.Cores, CoreResult{
			Benchmark: s.cfg.Benchmarks[i],
			Stats:     st,
			IPC:       ipc,
			Cycles:    cy,
		})
	}
	for _, mc := range s.mcs {
		// Refresh epochs deferred on an empty controller are applied here so
		// Stats.Refreshes counts every epoch the run elapsed, matching an
		// eager-refresh controller exactly.
		mc.ctrl.CatchUpRefresh(s.now)
		r.DRAM = append(r.DRAM, mc.ctrl.Stats)
		r.Sys.DRAMWrites += mc.ctrl.Stats.Writes
		if mc.emc != nil {
			r.EMC = append(r.EMC, mc.emc.Stats)
		}
	}
	r.CtrlRingMsgs = s.ctrl.Stats.Messages
	r.DataRingMsgs = s.data.Stats.Messages
	r.CtrlRingHops = s.ctrl.Stats.TotalHops
	r.DataRingHops = s.data.Stats.TotalHops
	for _, f := range s.pfs {
		r.PrefetchIssued += f.Issued
		r.PrefetchUseful += f.Useful
	}
	r.Energy = s.computeEnergy(r)
	s.flushObs()
	if s.tr != nil {
		r.Obs = s.tr.Report()
	}
	return r
}

// computeEnergy evaluates the event-counter model over the run.
func (s *System) computeEnergy(r *Result) energy.Breakdown {
	var ev energy.Events
	ev.Cycles = s.now
	ev.Cores = len(s.cores)
	ev.LLCMB = float64(s.cfg.LLCSliceBytes) / (1 << 20) * float64(len(s.slices))
	ev.Channels = s.cfg.Geometry.Channels
	for _, c := range s.cores {
		st := c.Stats
		ev.Uops += st.Retired
		ev.L1Accesses += st.Loads + st.Stores
		ev.ChainUops += st.ChainUops
		ev.ChainSrcOps += st.ChainUops * 2 // up to two RRT lookups per uop
		ev.ChainDstOps += st.ChainUops
	}
	for i, g := range s.gens {
		// FP fraction from the generator profile applied to this core's
		// retired count (FP uops are costlier in the model).
		p := g.Profile()
		ev.FPUops += uint64(float64(r.Cores[i].Stats.Retired) * p.FPFrac * (1 - p.MemFrac))
	}
	for _, sl := range s.slices {
		ev.LLCAccesses += sl.c.Stats.Hits + sl.c.Stats.Misses
	}
	ev.RingHopsCtrl = s.ctrl.Stats.TotalHops
	ev.RingHopsData = s.data.Stats.TotalHops
	for _, mc := range s.mcs {
		ev.DRAMActivates += mc.ctrl.Stats.Activations
		ev.DRAMReads += mc.ctrl.Stats.Reads
		ev.DRAMWrites += mc.ctrl.Stats.Writes
		if mc.emc != nil {
			ev.EMCs++
			ev.EMCUops += mc.emc.Stats.UopsExecuted
			ev.EMCCacheAccesses += mc.emc.Stats.CacheHits + mc.emc.Stats.CacheMisses
		}
	}
	return energy.Default().Compute(ev)
}
