package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/emc"
	"repro/internal/mem/dram"
	"repro/internal/obs"
	"repro/internal/vm"
)

// PrefetcherKind selects the LLC prefetcher configuration of Table 1.
type PrefetcherKind string

// The prefetcher configurations evaluated by the paper.
const (
	PFNone         PrefetcherKind = "none"
	PFGHB          PrefetcherKind = "ghb"
	PFStream       PrefetcherKind = "stream"
	PFMarkovStream PrefetcherKind = "markov+stream"
)

// Config describes one simulated system + workload.
type Config struct {
	// Benchmarks names one SPEC profile per core; its length sets the core
	// count (4 or 8 in the paper).
	Benchmarks []string

	// InstrPerCore bounds each core's trace; the run ends when every core
	// has retired its budget (shared structures stay live until the last
	// finishes, matching the paper's methodology).
	InstrPerCore uint64

	Seed uint64

	Prefetcher PrefetcherKind
	EMCEnabled bool

	// RunaheadEnabled turns on the runahead-execution comparison baseline
	// at every core (see internal/cpu/runahead.go).
	RunaheadEnabled bool

	// UseBranchPredictor replaces trace-carried mispredict flags with the
	// Table-1 hybrid predictor running on actual branch outcomes.
	UseBranchPredictor bool

	// MCs is the number of memory controllers (1, or 2 for Fig. 11b).
	MCs int

	// DRAM geometry/timing/scheduling (Table 1 defaults by core count).
	Geometry dram.Geometry
	Timing   dram.Timing
	Sched    dram.SchedPolicy

	// LLC: one slice per core.
	LLCSliceBytes  int
	LLCLatency     int
	LLCFillLatency int

	PageShift uint

	// IdealDependentHits serves dependent misses at LLC-hit latency without
	// touching DRAM — the idealization of Fig. 2.
	IdealDependentHits bool

	// MagicChains completes installed chains instantly at trigger time with
	// functionally computed live-outs (diagnostic upper bound on the EMC
	// mechanism; not a real hardware point).
	MagicChains bool

	// MaxCycles aborts runaway simulations.
	MaxCycles uint64

	// DisableCycleSkip turns off the event-horizon scheduler, ticking every
	// cycle. Results are bit-identical either way (see
	// TestCycleSkipDeterminism); this exists for that guard and for debugging.
	DisableCycleSkip bool

	EMCCfg emc.Config

	// Obs enables request-lifecycle tracing and latency attribution (see
	// internal/obs). Tracing observes timestamps the simulator produces
	// anyway and never changes simulation outcomes; with Obs.Enabled false
	// every instrumentation site is a single nil test.
	Obs obs.Config

	// Metrics, when non-nil, receives periodic live snapshots of the
	// system's counters (for /metrics, /debug/vars). Each System registers
	// its own Group tagged with MetricsLabels.
	Metrics       *obs.Registry `json:"-"`
	MetricsLabels map[string]string

	// CounterInterval, when >0, samples every published counter into an
	// in-memory time series each N cycles (System.CounterLog), serialized
	// to JSON by the cmds.
	CounterInterval uint64

	// CoreTweak optionally adjusts each core's configuration (ablations).
	// Function-valued: such configs have no canonical identity and cannot
	// be fingerprinted (see Fingerprint).
	CoreTweak func(*cpu.Config) `json:"-"`

	// OnChain, when set, observes every chain as it is shipped to the EMC
	// (inspection/debugging; must not mutate the chain).
	OnChain func(*cpu.Chain) `json:"-"`
}

// Default returns the Table-1 configuration for the given benchmarks, with
// geometry picked by core count.
func Default(benchmarks []string) Config {
	cores := len(benchmarks)
	geo := dram.QuadCoreGeometry()
	mcs := 1
	if cores >= 8 {
		geo = dram.EightCoreGeometry()
	}
	ecfg := emc.DefaultConfig(cores)
	ecfg.PageShift = vm.LargePageShift
	return Config{
		Benchmarks:     benchmarks,
		InstrPerCore:   30000,
		Seed:           1,
		Prefetcher:     PFNone,
		MCs:            mcs,
		Geometry:       geo,
		Timing:         dram.DDR3(),
		Sched:          dram.SchedBatch,
		LLCSliceBytes:  1 << 20,
		LLCLatency:     18,
		LLCFillLatency: 4,
		PageShift:      vm.LargePageShift,
		MaxCycles:      200_000_000,
		EMCCfg:         ecfg,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if len(c.Benchmarks) == 0 {
		return fmt.Errorf("sim: no benchmarks")
	}
	if c.MCs != 1 && c.MCs != 2 {
		return fmt.Errorf("sim: MCs must be 1 or 2, got %d", c.MCs)
	}
	if c.Geometry.Channels%c.MCs != 0 {
		return fmt.Errorf("sim: %d channels not divisible across %d MCs",
			c.Geometry.Channels, c.MCs)
	}
	if c.InstrPerCore == 0 {
		return fmt.Errorf("sim: InstrPerCore is zero")
	}
	switch c.Prefetcher {
	case PFNone, PFGHB, PFStream, PFMarkovStream:
	default:
		return fmt.Errorf("sim: unknown prefetcher %q", c.Prefetcher)
	}
	return nil
}
