package sim

import (
	"errors"
	"testing"
	"time"
)

// TestRunHandleDeterminism: a handled run with progress callbacks enabled
// must produce a Result bit-identical to a plain Run of the same config.
func TestRunHandleDeterminism(t *testing.T) {
	cfg := skipCfg([]string{"mcf", "lbm", "milc", "omnetpp"}, 5)
	cfg.EMCEnabled = true
	cfg.Prefetcher = PFGHB
	want, wantCycles, _ := runHashed(t, cfg)

	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	h := sys.NewRunHandle(500, func(p Progress) { snaps = append(snaps, p) })
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != want {
		t.Fatalf("handled run hash %#x differs from plain run %#x", res.Hash(), want)
	}
	if res.Cycles != wantCycles {
		t.Fatalf("handled run cycles %d differ from plain run %d", res.Cycles, wantCycles)
	}
	if len(snaps) == 0 {
		t.Fatal("progress callback never fired")
	}
	var last Progress
	for i, p := range snaps {
		if i > 0 && p.Cycles <= last.Cycles {
			t.Fatalf("progress cycles not increasing: %d then %d", last.Cycles, p.Cycles)
		}
		if p.Retired < last.Retired {
			t.Fatalf("retired count decreased: %d then %d", last.Retired, p.Retired)
		}
		if p.TargetInstrs != cfg.InstrPerCore*4 {
			t.Fatalf("target instrs %d, want %d", p.TargetInstrs, cfg.InstrPerCore*4)
		}
		last = p
	}
}

// TestRunHandleCancelBeforeStart: cancelling before Run returns immediately
// with a partial (zero-cycle) result and ErrCancelled.
func TestRunHandleCancelBeforeStart(t *testing.T) {
	sys, err := New(skipCfg([]string{"mcf", "mcf", "mcf", "mcf"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	h.Cancel()
	res, err := h.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Cycles != 0 {
		t.Fatalf("cancelled-before-start run simulated %d cycles", res.Cycles)
	}
}

// TestRunHandleCancelMidRun cancels from another goroutine once progress
// shows the run is under way, and checks the partial result stops early.
func TestRunHandleCancelMidRun(t *testing.T) {
	cfg := skipCfg([]string{"mcf", "mcf", "mcf", "mcf"}, 2)
	cfg.InstrPerCore = 200_000 // long enough that cancellation lands mid-run
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var once bool
	h := sys.NewRunHandle(200, func(Progress) {
		if !once {
			once = true
			close(started)
		}
	})
	go func() {
		select {
		case <-started:
		case <-time.After(30 * time.Second):
		}
		h.Cancel()
	}()
	res, err := h.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !h.Cancelled() {
		t.Fatal("handle does not report cancelled")
	}
	var retired uint64
	for _, c := range res.Cores {
		retired += c.Stats.Retired
	}
	if retired >= cfg.InstrPerCore*4 {
		t.Fatalf("run retired its full budget (%d) despite cancellation", retired)
	}
	if res.Cycles == 0 {
		t.Fatal("cancellation landed before any simulation happened")
	}
}
