package sim

import "repro/internal/obs"

// obsPublishEvery is the live-metrics publish cadence in cycles. Publishing
// takes the group mutex, so it is amortized rather than per step; /metrics
// readers see counters at most this stale.
const obsPublishEvery = 2048

// gaugeNames lists every counter the System publishes, in collectGauges
// order. Exported metric names are emcsim_<name> (see obs.MetricPrefix).
var gaugeNames = []string{
	"cycles",
	"skipped_cycles",
	"retired_instructions",
	"ipc",
	"llc_hits",
	"llc_misses",
	"llc_demand_accesses",
	"llc_occupancy_lines",
	"dependent_misses",
	"dram_demand_reads",
	"dram_prefetch_reads",
	"dram_emc_reads",
	"dram_writes",
	"mc_read_queue_depth",
	"mc_write_queue_depth",
	"mc_inflight_reads",
	"mc_retry_backlog",
	"ring_ctrl_inflight",
	"ring_ctrl_queued",
	"ring_data_inflight",
	"ring_data_queued",
	"rob_occupancy",
	"l1_mshr_occupancy",
	"emc_active_contexts",
	"emc_chains_installed",
	"emc_chains_done",
	"emc_chains_rejected",
	"emc_chains_aborted",
	"core_miss_count",
	"core_miss_cycles_total",
	"emc_miss_count",
	"emc_miss_cycles_total",
	"trace_records_started",
	"trace_events",
}

// initObs wires the observability layer into a freshly built System.
func (s *System) initObs() {
	s.tr = obs.NewTracer(s.cfg.Obs)
	if s.cfg.Metrics != nil {
		s.mGroup = s.cfg.Metrics.NewGroup(s.cfg.MetricsLabels, gaugeNames)
	}
	if s.cfg.CounterInterval > 0 {
		s.clog = obs.NewCounterLog(s.cfg.CounterInterval, gaugeNames)
	}
	s.obsOn = s.mGroup != nil || s.clog != nil
	if s.obsOn {
		s.gaugeBuf = make([]float64, len(gaugeNames))
	}
}

// Tracer returns the lifecycle tracer, or nil when tracing is disabled.
func (s *System) Tracer() *obs.Tracer { return s.tr }

// CounterLog returns the interval counter time series, or nil.
func (s *System) CounterLog() *obs.CounterLog { return s.clog }

// obsTick publishes live counters and interval samples when due. It only
// reads simulator state — the simulation is bit-identical with it on or off.
func (s *System) obsTick() {
	due := s.clog != nil && s.clog.Due(s.now)
	if !due && (s.mGroup == nil || s.now < s.nextPublish) {
		return
	}
	vals := s.collectGauges()
	if due {
		s.clog.Record(s.now, vals)
	}
	if s.mGroup != nil && s.now >= s.nextPublish {
		s.mGroup.Publish(vals)
		s.nextPublish = s.now + obsPublishEvery
	}
}

// flushObs publishes one final snapshot at the end of the run so exporters
// see the finished counters.
func (s *System) flushObs() {
	if !s.obsOn {
		return
	}
	vals := s.collectGauges()
	if s.clog != nil {
		s.clog.Record(s.now, vals)
	}
	if s.mGroup != nil {
		s.mGroup.Publish(vals)
	}
}

// collectGauges snapshots every published counter into the reused buffer,
// in gaugeNames order.
func (s *System) collectGauges() []float64 {
	var retired, rob, mshr uint64
	for _, c := range s.cores {
		retired += c.Stats.Retired
		rob += uint64(c.ROBOccupancy())
		mshr += uint64(c.MSHROccupancy())
	}
	var llcOcc uint64
	for _, sl := range s.slices {
		llcOcc += uint64(sl.c.Occupancy())
	}
	var readQ, writeQ, inflight, retry, dramWrites uint64
	var emcCtx, chInst, chDone, chRej, chAb uint64
	for _, mc := range s.mcs {
		readQ += uint64(mc.ctrl.QueueOccupancy())
		writeQ += uint64(mc.ctrl.WriteQueueOccupancy())
		inflight += uint64(mc.ctrl.InFlightReads())
		retry += uint64(len(mc.retryQ) - mc.retryHead)
		dramWrites += mc.ctrl.Stats.Writes
		if mc.emc != nil {
			emcCtx += uint64(mc.emc.ActiveContexts())
			chInst += mc.emc.Stats.ChainsInstalled
			chDone += mc.emc.Stats.ChainsDone
			chRej += mc.emc.Stats.ChainsRejected
			chAb += mc.emc.Stats.ChainsAborted
		}
	}
	ipc := 0.0
	if s.now > 0 {
		ipc = float64(retired) / float64(s.now)
	}
	var trStarted, trEvents uint64
	if s.tr != nil {
		trStarted, trEvents = s.tr.Started(), s.tr.EventCount()
	}
	v := s.gaugeBuf[:0]
	v = append(v,
		float64(s.now),
		float64(s.skipped),
		float64(retired),
		ipc,
		float64(s.st.LLCHits),
		float64(s.st.LLCMisses),
		float64(s.st.LLCDemand),
		float64(llcOcc),
		float64(s.st.DepMisses),
		float64(s.st.DRAMDemandReads),
		float64(s.st.DRAMPrefetch),
		float64(s.st.DRAMEMCReads),
		float64(dramWrites),
		float64(readQ),
		float64(writeQ),
		float64(inflight),
		float64(retry),
		float64(s.ctrl.InFlight()),
		float64(s.ctrl.Queued()),
		float64(s.data.InFlight()),
		float64(s.data.Queued()),
		float64(rob),
		float64(mshr),
		float64(emcCtx),
		float64(chInst),
		float64(chDone),
		float64(chRej),
		float64(chAb),
		float64(s.st.CoreMissCount),
		float64(s.st.CoreMissTotal),
		float64(s.st.EMCMissCount),
		float64(s.st.EMCMissTotal),
		float64(trStarted),
		float64(trEvents),
	)
	s.gaugeBuf = v
	return v
}
