package sim

import (
	"testing"
)

// TestWriteThroughStoresReachDRAM: stores retire through the store buffer,
// miss the LLC (write-no-allocate), and become DRAM writes.
func TestWriteThroughStoresReachDRAM(t *testing.T) {
	// lbm is the store-heavy streaming benchmark.
	r := mustRun(t, smallCfg([]string{"lbm", "lbm", "lbm", "lbm"}))
	if r.Sys.DRAMWrites == 0 {
		t.Fatal("streaming stores should produce DRAM writes")
	}
	var stores uint64
	for _, c := range r.Cores {
		stores += c.Stats.Stores
	}
	if r.Sys.DRAMWrites > stores {
		t.Errorf("DRAM writes (%d) exceed retired stores (%d)", r.Sys.DRAMWrites, stores)
	}
}

// TestInclusiveEvictionsInvalidateL1: LLC evictions of L1-resident lines send
// back-invalidations (the inclusive-hierarchy maintenance path).
func TestInclusiveEvictionsInvalidateL1(t *testing.T) {
	// A working set much larger than the LLC churns it continuously.
	cfg := smallCfg([]string{"mcf", "mcf", "mcf", "mcf"})
	cfg.InstrPerCore = 8000
	r := mustRun(t, cfg)
	if r.Sys.L1Invals == 0 {
		t.Error("LLC churn should back-invalidate some L1 lines")
	}
}

// TestLLCHitPath: once the warm working set is resident, re-touches that
// miss the L1 hit the LLC instead of going to DRAM.
func TestLLCHitPath(t *testing.T) {
	cfg := smallCfg([]string{"calculix", "calculix", "calculix", "calculix"})
	cfg.InstrPerCore = 40000 // long enough for warm-region reuse
	cfg.MaxCycles = 100_000_000
	r := mustRun(t, cfg)
	if r.Sys.LLCHits == 0 {
		t.Fatal("no LLC hits on a cache-friendly workload")
	}
	hitRate := float64(r.Sys.LLCHits) / float64(r.Sys.LLCHits+r.Sys.LLCMisses)
	if hitRate < 0.05 {
		t.Errorf("LLC hit rate %.2f unexpectedly low for calculix", hitRate)
	}
}

// TestPrefetchUsefulAccounting: FDP usefulness never exceeds issued
// prefetches, and covered misses never exceed prefetches that landed.
func TestPrefetchUsefulAccounting(t *testing.T) {
	cfg := smallCfg([]string{"libquantum", "libquantum", "libquantum", "libquantum"})
	cfg.Prefetcher = PFStream
	cfg.InstrPerCore = 8000
	r := mustRun(t, cfg)
	if r.PrefetchUseful > r.PrefetchIssued {
		t.Errorf("useful (%d) > issued (%d)", r.PrefetchUseful, r.PrefetchIssued)
	}
	if r.Sys.TotalCovered > r.PrefetchUseful {
		t.Errorf("covered (%d) > useful (%d)", r.Sys.TotalCovered, r.PrefetchUseful)
	}
	if r.Sys.DRAMPrefetch == 0 {
		t.Error("stream prefetches should reach DRAM")
	}
}

// TestEMCDirectoryBitLifecycle: lines cached by the EMC set the directory
// bit; stores to those lines invalidate the EMC copy.
func TestEMCDirectoryBitLifecycle(t *testing.T) {
	cfg := smallCfg([]string{"mcf", "mcf", "mcf", "mcf"})
	cfg.InstrPerCore = 10000
	cfg.EMCEnabled = true
	r := mustRun(t, cfg)
	if r.Sys.EMCInvals == 0 {
		t.Skip("no EMC invalidations exercised at this scale")
	}
}

// TestConservationOfLoads: every demand load retires exactly once — L1 hits,
// forwards, LLC hits, and misses partition the load population.
func TestConservationOfLoads(t *testing.T) {
	cfg := smallCfg([]string{"sphinx3", "milc", "gcc", "astar"})
	cfg.InstrPerCore = 6000
	r := mustRun(t, cfg)
	for i, c := range r.Cores {
		if c.Stats.Retired != cfg.InstrPerCore {
			t.Errorf("core %d retired %d != %d", i, c.Stats.Retired, cfg.InstrPerCore)
		}
		if c.Stats.LLCMissLoads > c.Stats.Loads {
			t.Errorf("core %d: more LLC misses (%d) than loads (%d)",
				i, c.Stats.LLCMissLoads, c.Stats.Loads)
		}
		if c.Stats.L1DMisses > c.Stats.Loads {
			t.Errorf("core %d: more L1 misses (%d) than loads (%d)",
				i, c.Stats.L1DMisses, c.Stats.Loads)
		}
	}
}

// TestDRAMChannelBalance: line interleaving spreads traffic about evenly
// across the two channels.
func TestDRAMChannelBalance(t *testing.T) {
	r := mustRun(t, smallCfg([]string{"milc", "milc", "milc", "milc"}))
	if len(r.DRAM) != 1 {
		t.Fatalf("expected one controller, got %d", len(r.DRAM))
	}
	// With one controller the per-channel split is internal; check total
	// throughput instead and bus accounting sanity.
	d := r.DRAM[0]
	if d.Reads == 0 {
		t.Fatal("no DRAM reads")
	}
	if d.BusBusy == 0 || d.BusBusy > r.Cycles*2 {
		t.Errorf("bus busy %d implausible for %d cycles x 2 channels", d.BusBusy, r.Cycles)
	}
}

// TestEnergyAccountingConsistency: the energy model's structural guarantees
// (additivity; traffic-driven DRAM dynamic energy; EMC static adder). The
// paper's Figs. 23-24 ordering (EMC < prefetchers) depends on effects this
// reproduction compresses — see EXPERIMENTS.md — so the test pins the
// model's mechanics, not that ordering.
func TestEnergyAccountingConsistency(t *testing.T) {
	base := smallCfg([]string{"mcf", "mcf", "mcf", "mcf"})
	base.InstrPerCore = 8000
	rb := mustRun(t, base)

	mk := base
	mk.Prefetcher = PFMarkovStream
	rm := mustRun(t, mk)

	emc := base
	emc.EMCEnabled = true
	re := mustRun(t, emc)

	for _, r := range []*Result{rb, rm, re} {
		e := r.Energy
		if e.Total() <= 0 {
			t.Fatal("non-positive energy")
		}
		sum := e.Chip() + e.DRAMStatic + e.DRAMDynamic
		if d := sum - e.Total(); d > 1e-12 || d < -1e-12 {
			t.Errorf("energy not additive: %g vs %g", sum, e.Total())
		}
	}
	// More DRAM traffic must mean more DRAM dynamic energy per cycle.
	if rm.MemTraffic() > rb.MemTraffic() &&
		rm.Energy.DRAMDynamic <= rb.Energy.DRAMDynamic {
		t.Error("extra prefetch traffic did not cost DRAM dynamic energy")
	}
	// The EMC block itself must carry nonzero static+dynamic energy.
	if re.Energy.EMCStatic+re.Energy.EMCDynamic <= 0 {
		t.Error("EMC energy unaccounted")
	}
	if rb.Energy.EMCStatic != 0 {
		t.Error("baseline must not be charged for an absent EMC")
	}
}
