// Package sim assembles the full chip of Fig. 7 / Fig. 11 of the paper:
// out-of-order cores with private L1s, a distributed shared LLC on two
// bi-directional rings, one or two memory controllers with DDR3 behind them,
// LLC prefetchers with feedback throttling, and optionally the Enhanced
// Memory Controller with the cores' chain-generation units. A System runs
// one multiprogrammed workload deterministically and returns a Result with
// every statistic the paper's figures need.
//
// The remainder of this comment documents the message protocol the
// subsystems speak over the two rings; the types live in system.go.
//
// # Demand load path
//
//	core ──mReqToSlice──▶ LLC slice (lookupQ, +18cy)
//	  hit: slice ──mHitData──▶ core (Fill)
//	  miss: slice ──mReqToMC──▶ MC (queue; merging per line)
//	        DRAM read completes ──mFillToSlice──▶ slice (fillQ, +4cy, insert,
//	        directory update, evictions) ──mFillToCore──▶ core (Fill)
//
// # Write-through stores
//
//	core retire ──mStore──▶ slice
//	  hit: mark dirty (+ mEMCInval if the EMC caches the line)
//	  miss: ──mWriteback──▶ MC (DRAM write, no allocate)
//	LLC dirty evictions also travel as mWriteback.
//
// # Inclusive directory
//
//	LLC eviction with presence bits ──mL1Inval──▶ core(s)
//	LLC eviction with the EMC bit   ──mEMCInval──▶ MC(s)
//
// # Chain offload (§4.2–4.3 of the paper)
//
//	core TakeReadyChain ──mChainFlit×N──▶ MC (installChain; PTE piggyback)
//	  no context: direct core.AbortRemoteChain (counted as a reject)
//	EMC executes when the source line's DRAM read completes (OnDRAMFill):
//	  each memory uop  ──mMemExec──▶ core (LSQ population; disambiguation)
//	     conflict: core ──mConflictAbort──▶ MC ──mChainAbort──▶ core
//	  loads predicted hit  ──mEMCLLCReq──▶ slice ──mEMCLLCData──▶ MC
//	  loads predicted miss ──(direct enqueue; directory probe safety net)
//	     remote channel: ──mCrossReq──▶ other MC ──mCrossData──▶ home MC
//	  completion ──mChainDone×N──▶ core (live-outs; last flit carries values)
//	  aborts (TLB miss, mispredicted branch) ──mChainAbort──▶ core,
//	     TLB miss additionally: core ──mPTEInstall──▶ MC
//
// Control-ring messages are 8-byte requests/notices; data-ring messages are
// 64-byte flits (cache lines, chain packets, live-in/live-out data). Within
// a (src, dst) pair the rings preserve order (tested), which multi-flit
// transfers rely on.
package sim
