package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/emc"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/mem/cache"
	"repro/internal/mem/dram"
	"repro/internal/obs"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

// memReq tracks one line request end to end, with the timestamps the
// latency-breakdown figures need.
type memReq struct {
	line      uint64 // physical line address
	core      int
	pc        uint64
	vaddr     uint64
	dependent bool
	prefetch  bool
	fromEMC   bool
	emcMC     int // MC hosting the requesting EMC

	issuedAt    uint64
	sliceArrive uint64
	sliceDone   uint64
	mcArrive    uint64
	dramIssued  uint64
	dramDone    uint64
	fillCore    uint64

	llcMiss bool
	ideal   bool // served by the ideal-dependent-hit mode

	// trace is the sampled lifecycle record (nil when tracing is off or the
	// request was not sampled); it is finished when the request returns to
	// the pool. See internal/obs and DESIGN.md §9.
	trace *obs.Record

	// refs counts terminal deliveries this request still expects before it
	// can return to the pool. Almost always 1; an LLC-path EMC request that
	// launches a fill sits in both the slice's outstanding map and the MC's
	// pending entry and receives two fills (see sliceLookup).
	refs int8
}

type msgKind uint8

const (
	mReqToSlice    msgKind = iota // core -> slice: demand load (ctrl)
	mHitData                      // slice -> core: LLC hit data (data)
	mReqToMC                      // slice -> MC: read request (ctrl)
	mFillToSlice                  // MC -> slice: DRAM fill (data)
	mFillToCore                   // slice -> core: fill after LLC insert (data)
	mStore                        // core -> slice: write-through store (data)
	mWriteback                    // slice -> MC: dirty eviction (data)
	mL1Inval                      // slice -> core: inclusive eviction (ctrl)
	mEMCInval                     // slice -> MC: EMC cache invalidation (ctrl)
	mChainFlit                    // core -> MC: chain packet flit (data)
	mChainDone                    // MC -> core: live-out flit (data)
	mChainAbort                   // MC -> core: abort notice (ctrl)
	mMemExec                      // MC -> core: EMC executed a mem op (ctrl)
	mConflictAbort                // core -> MC: LSQ conflict detected (ctrl)
	mPTEInstall                   // core -> MC: PTE after TLB-miss abort (ctrl)
	mEMCLLCReq                    // MC -> slice: EMC load via LLC (ctrl)
	mEMCLLCData                   // slice -> MC: data for EMC (data)
	mCrossReq                     // MC -> MC: EMC request for remote channel (ctrl)
	mCrossData                    // MC -> MC: data back to requesting EMC (data)
)

type msg struct {
	kind   msgKind
	req    *memReq
	chain  *cpu.Chain
	values []uint64
	reason emc.AbortReason
	uopIdx int
	vaddr  uint64
	core   int
	mc     int // origin/target MC index where relevant
	line   uint64
	xfer   *chainTransfer
}

// chainTransfer tracks a multi-flit chain packet.
type chainTransfer struct {
	chain   *cpu.Chain
	pending int
}

type sliceEvent struct {
	at  uint64
	req *memReq
}

type llcSlice struct {
	id, stop int
	c        *cache.Cache
	// lookupQ/fillQ are time-sorted (constant per-kind latency, monotone
	// enqueue times); lkHead/flHead index the consumed prefix so draining
	// never reallocates.
	lookupQ []sliceEvent
	fillQ   []sliceEvent
	lkHead  int
	flHead  int
	// outstanding merges requests per line while a fill is in flight.
	outstanding map[uint64]*lineWaiters
}

type lineWaiters struct {
	reqs []*memReq // includes the request that launched the fill
}

type mcPending struct {
	line    uint64
	reqs    []*memReq // slice-path requests (fill via slice)
	emcReqs []*memReq // local-EMC direct requests
	cross   []*memReq // remote-EMC requests (fill via mCrossData)
}

type mcNode struct {
	id, stop  int
	ctrl      *dram.Controller
	emc       *emc.EMC
	pending   map[uint64]*mcPending
	retryQ    []*dram.Request
	retryHead int // consumed prefix of retryQ
	magicQ    []*cpu.Chain // MagicChains diagnostic mode
}

// RunStats aggregates system-level counters (see results.go for derived
// metrics).
type RunStats struct {
	Cycles uint64

	LLCHits      uint64
	LLCMisses    uint64
	LLCDemand    uint64
	DepMisses    uint64 // dependent misses observed at the LLC
	DepCovered   uint64 // dependent accesses that hit a prefetched line
	TotalCovered uint64 // all demand hits on prefetched lines
	IdealDepHits uint64

	DRAMDemandReads uint64
	DRAMPrefetch    uint64
	DRAMEMCReads    uint64
	DRAMWrites      uint64

	// Core-generated DRAM-read latency segments (Fig. 1, 18, 19).
	CoreMissCount    uint64
	CoreMissSegCount uint64 // misses with complete segment timelines
	CoreMissTotal    uint64 // issue -> fill at core
	CoreMissDRAM     uint64 // DRAM service (issue at bank -> data)
	CoreMissQueue    uint64 // MC queue delay
	CoreMissRingReq  uint64 // core -> slice -> MC transit
	CoreMissRingRsp  uint64 // MC -> slice -> core transit (fill path)
	CoreMissLLCLat   uint64 // slice lookup time

	// EMC-generated request latency (Fig. 18).
	EMCMissCount uint64
	EMCMissTotal uint64
	EMCMissQueue uint64

	EMCLLCHits   uint64 // EMC LLC-path requests that hit on chip
	EMCPredWrong uint64 // direct-DRAM requests the directory redirected

	EMCCoveredByPF uint64 // EMC requests served by a prefetched line

	// Latency distributions (log2-bucketed) for miss requests.
	CoreMissHist stats.Histogram
	EMCMissHist  stats.Histogram

	EMCRowHits      uint64
	DemandRowHits   uint64
	CrossMCRequests uint64
	ChainFlits      uint64
	ChainRejects    uint64
	PTEInstalls     uint64
	L1Invals        uint64
	EMCInvals       uint64
}

// System is one assembled chip + workload.
type System struct {
	cfg    Config
	cores  []*cpu.Core
	gens   []*trace.Generator
	pts    []*vm.PageTable
	frames *vm.FrameAllocator

	ctrl *interconnect.Ring
	data *interconnect.Ring

	slices []*llcSlice
	mcs    []*mcNode
	pfs    []*prefetch.FDP

	coreStop []int
	mcStop   []int

	now     uint64
	skipped uint64 // cycles fast-forwarded by the event-horizon scheduler
	st      RunStats

	activeChains map[*cpu.Chain]int // chain -> MC hosting it

	// Free lists for the hot-path objects (per System: figure suites run
	// Systems concurrently, so no shared pools).
	msgPool  []*msg
	reqPool  []*memReq
	pendPool []*mcPending
	waitPool []*lineWaiters

	// Observability (nil / false when disabled; see internal/sim/obs.go).
	tr          *obs.Tracer
	mGroup      *obs.Group
	clog        *obs.CounterLog
	gaugeBuf    []float64
	obsOn       bool
	nextPublish uint64
}

const noEvent = ^uint64(0)

// fpCycle is the simulator's cycle-boundary failpoint: armed, it crashes a
// run between two scheduler steps (the service's panic-retry and the chaos
// suite drive it). Disarmed it costs one atomic load per runLoop iteration.
var fpCycle = fault.Register(fault.SiteSimCycle)

// ---- Object pools -------------------------------------------------------------

func (s *System) allocMsg() *msg {
	if n := len(s.msgPool); n > 0 {
		m := s.msgPool[n-1]
		s.msgPool = s.msgPool[:n-1]
		return m
	}
	return &msg{}
}

// freeMsg recycles a delivered message. Pooling invariant: handle() must
// never retain a *msg past its return — only the payload pointers it carries.
//
//simlint:noalloc
func (s *System) freeMsg(m *msg) {
	*m = msg{}
	s.msgPool = append(s.msgPool, m) //simlint:allocok pool capacity stabilizes at the in-flight high-water mark
}

// sendCtrl/sendData copy proto into a pooled msg and inject it.
func (s *System) sendCtrl(src, dst int, proto msg) {
	m := s.allocMsg()
	*m = proto
	s.ctrl.Send(src, dst, m, s.now)
}

func (s *System) sendData(src, dst int, proto msg) {
	m := s.allocMsg()
	*m = proto
	s.data.Send(src, dst, m, s.now)
}

func (s *System) allocReq() *memReq {
	if n := len(s.reqPool); n > 0 {
		r := s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		r.refs = 1
		return r
	}
	return &memReq{refs: 1}
}

// freeReq drops one reference; the request returns to the pool when the last
// expected delivery has consumed it. A sampled trace record is finished
// here — the one point every request funnels through exactly once.
func (s *System) freeReq(r *memReq) {
	if r.refs > 1 {
		r.refs--
		return
	}
	if r.trace != nil {
		s.tr.Finish(r.trace)
		r.trace = nil
	}
	*r = memReq{}
	s.reqPool = append(s.reqPool, r)
}

func (s *System) allocWaiters(r *memReq) *lineWaiters {
	if n := len(s.waitPool); n > 0 {
		w := s.waitPool[n-1]
		s.waitPool = s.waitPool[:n-1]
		w.reqs = append(w.reqs, r)
		return w
	}
	return &lineWaiters{reqs: []*memReq{r}}
}

func (s *System) freeWaiters(w *lineWaiters) {
	w.reqs = w.reqs[:0]
	s.waitPool = append(s.waitPool, w)
}

func (s *System) allocPending(line uint64) *mcPending {
	if n := len(s.pendPool); n > 0 {
		p := s.pendPool[n-1]
		s.pendPool = s.pendPool[:n-1]
		p.line = line
		return p
	}
	return &mcPending{line: line}
}

func (s *System) freePending(p *mcPending) {
	p.reqs = p.reqs[:0]
	p.emcReqs = p.emcReqs[:0]
	p.cross = p.cross[:0]
	s.pendPool = append(s.pendPool, p)
}

// coreShim adapts a core id to the cpu.Uncore interface.
type coreShim struct {
	s  *System
	id int
}

// LoadMiss implements cpu.Uncore.
func (cs coreShim) LoadMiss(m *cpu.MissInfo) { cs.s.coreLoadMiss(m) }

// StoreWrite implements cpu.Uncore.
func (cs coreShim) StoreWrite(coreID int, lineAddr, vaddr uint64) {
	cs.s.coreStore(coreID, lineAddr, vaddr)
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, frames: vm.NewFrameAllocator(), activeChains: map[*cpu.Chain]int{}}
	n := len(cfg.Benchmarks)

	// Topology: one ring stop per core (shared with its LLC slice), then the
	// MC stop(s). With two MCs they sit at opposite sides of the ring
	// (Fig. 11b): cores 0..n/2-1, MC0, cores n/2..n-1, MC1.
	stops := n + cfg.MCs
	s.coreStop = make([]int, n)
	if cfg.MCs == 1 {
		for i := 0; i < n; i++ {
			s.coreStop[i] = i
		}
		s.mcStop = []int{n}
	} else {
		half := n / 2
		for i := 0; i < half; i++ {
			s.coreStop[i] = i
		}
		for i := half; i < n; i++ {
			s.coreStop[i] = i + 1
		}
		s.mcStop = []int{half, n + 1}
	}
	s.ctrl = interconnect.NewRing("ctrl", stops)
	s.data = interconnect.NewRing("data", stops)

	// Cores, page tables, traces.
	for i, bench := range cfg.Benchmarks {
		prof, err := trace.ByName(bench)
		if err != nil {
			return nil, err
		}
		g := trace.NewGenerator(prof, cfg.Seed+uint64(i)*0x9E3779B9)
		s.gens = append(s.gens, g)
		pt := vm.NewPageTableShift(i, s.frames, cfg.PageShift)
		s.pts = append(s.pts, pt)
		cc := cpu.DefaultConfig(i)
		cc.EMCEnabled = cfg.EMCEnabled
		cc.Runahead.Enabled = cfg.RunaheadEnabled
		cc.UseBranchPredictor = cfg.UseBranchPredictor
		if cfg.CoreTweak != nil {
			cfg.CoreTweak(&cc)
		}
		feed := &trace.LimitReader{R: g, N: cfg.InstrPerCore}
		s.cores = append(s.cores, cpu.New(cc, feed, pt, coreShim{s: s, id: i}))
	}

	// LLC slices co-located with cores.
	for i := 0; i < n; i++ {
		s.slices = append(s.slices, &llcSlice{
			id: i, stop: s.coreStop[i],
			c: cache.New(cache.Config{Name: fmt.Sprintf("llc%d", i),
				SizeBytes: cfg.LLCSliceBytes, Ways: 8, Latency: cfg.LLCLatency}),
			outstanding: map[uint64]*lineWaiters{},
		})
	}

	// Memory controllers (+EMC).
	chPerMC := cfg.Geometry.Channels / cfg.MCs
	for m := 0; m < cfg.MCs; m++ {
		geo := cfg.Geometry
		geo.Channels = chPerMC
		geo.QueueSize = cfg.Geometry.QueueSize / cfg.MCs
		node := &mcNode{id: m, stop: s.mcStop[m],
			ctrl:    dram.NewController(geo, cfg.Timing, cfg.Sched, n),
			pending: map[uint64]*mcPending{},
		}
		if cfg.EMCEnabled {
			ecfg := cfg.EMCCfg
			if cfg.MCs == 2 {
				ecfg.Contexts = cfg.EMCCfg.Contexts / 2
				if ecfg.Contexts < 1 {
					ecfg.Contexts = 1
				}
			}
			node.emc = emc.New(ecfg, m, n)
		}
		s.mcs = append(s.mcs, node)
	}

	// Per-core prefetchers (trained at the LLC, per Table 1, with FDP).
	for i := 0; i < n; i++ {
		var inner prefetch.Prefetcher
		switch cfg.Prefetcher {
		case PFNone:
			inner = prefetch.Null{}
		case PFGHB:
			inner = prefetch.NewGHB(prefetch.DefaultGHBConfig())
		case PFStream:
			inner = prefetch.NewStream(prefetch.DefaultStreamConfig())
		case PFMarkovStream:
			inner = prefetch.NewCombined("markov+stream",
				prefetch.NewMarkov(prefetch.DefaultMarkovConfig()),
				prefetch.NewStream(prefetch.DefaultStreamConfig()))
		}
		s.pfs = append(s.pfs, prefetch.NewFDP(prefetch.DefaultFDPConfig(), inner))
	}
	s.initObs()
	return s, nil
}

// sliceOf maps a physical line address to its LLC slice.
func (s *System) sliceOf(line uint64) *llcSlice {
	return s.slices[int(line)%len(s.slices)]
}

// mcOf maps a physical line address to the memory controller owning its
// channel (lines interleave across MCs).
func (s *System) mcOf(line uint64) *mcNode {
	return s.mcs[int(line)%len(s.mcs)]
}

// mcLine converts a global line address to the controller-local address used
// by the per-MC DRAM decoder.
func (s *System) mcLine(line uint64) uint64 { return line / uint64(len(s.mcs)) }

// ---- Core-side callbacks -----------------------------------------------------

func (s *System) coreLoadMiss(m *cpu.MissInfo) {
	r := s.allocReq()
	r.line, r.core, r.pc, r.vaddr = m.LineAddr, m.CoreID, m.PC, m.VAddr
	r.dependent, r.prefetch, r.issuedAt = m.Dependent, m.Prefetch, m.IssuedAt
	if s.tr != nil {
		src := obs.SrcCore
		if r.prefetch {
			src = obs.SrcPrefetch
		}
		r.trace = s.tr.Start(src, r.core, r.line, r.pc, r.dependent, r.issuedAt)
	}
	sl := s.sliceOf(r.line)
	s.sendCtrl(s.coreStop[m.CoreID], sl.stop, msg{kind: mReqToSlice, req: r})
}

func (s *System) coreStore(coreID int, lineAddr, vaddr uint64) {
	r := s.allocReq()
	r.line, r.core, r.vaddr, r.issuedAt = lineAddr, coreID, vaddr, s.now
	sl := s.sliceOf(lineAddr)
	s.sendData(s.coreStop[coreID], sl.stop, msg{kind: mStore, req: r})
}

// ---- Main loop -----------------------------------------------------------------

// Run simulates until every core finishes (or MaxCycles) and returns the
// collected Result.
func (s *System) Run() (*Result, error) { return s.runLoop(nil) }

// runLoop is the main loop shared by Run and RunHandle.Run. The handle, when
// present, only reads simulator state (cancellation flag, progress
// snapshots), so a handled run that is never cancelled stays bit-identical
// to a plain Run.
func (s *System) runLoop(h *RunHandle) (*Result, error) {
	for {
		done := true
		for _, c := range s.cores {
			if !c.Finished() {
				done = false
				break
			}
		}
		if done {
			break
		}
		if s.now >= s.cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded MaxCycles=%d (deadlock?)", s.cfg.MaxCycles)
		}
		if h != nil {
			if h.canceled.Load() {
				return s.collect(), ErrCancelled
			}
			if h.fn != nil && s.now >= h.next {
				h.emit(s)
			}
			if h.ckptFn != nil && s.now >= h.ckptNext {
				h.emitCheckpoint(s)
			}
		}
		// Chaos hook: a mid-run crash at a cycle boundary (disarmed: one
		// atomic load; see internal/fault and DESIGN.md §11.1).
		fpCycle.MustPanic()
		s.step()
	}
	return s.collect(), nil
}

// Step advances one cycle (exported for tests).
func (s *System) Step() { s.step() }

// Shootdown performs a TLB shootdown for one page of one core's address
// space: the core's TLB entry is invalidated, and — per the paper's §4.1.4
// residence-bit scheme — the EMC TLB entry is invalidated only if the PTE
// says a copy lives there, saving broadcast traffic otherwise.
func (s *System) Shootdown(core int, vaddr uint64) {
	s.cores[core].ShootdownTLB(vaddr)
	pte := s.pts[core].Lookup(vaddr)
	if !pte.EMCResident {
		return
	}
	for _, mc := range s.mcs {
		if mc.emc != nil {
			mc.emc.TLB(core).Invalidate(vaddr)
			s.st.EMCInvals++
		}
	}
}

// Now returns the current cycle.
func (s *System) Now() uint64 { return s.now }

// SkippedCycles reports how many cycles the event-horizon scheduler has
// fast-forwarded so far (diagnostic; not part of Result).
func (s *System) SkippedCycles() uint64 { return s.skipped }

// horizon returns the earliest future cycle at which any component can do
// work, min'd over every NextEvent. Short-circuits on now+1 (nothing to
// skip), the common case under load.
//
//simlint:noalloc
func (s *System) horizon() uint64 {
	now := s.now
	h := s.ctrl.NextEvent(now)
	if h <= now+1 {
		return h
	}
	if d := s.data.NextEvent(now); d < h {
		return d // rings report either now+1 or NoEvent
	}
	for _, sl := range s.slices {
		if d := s.sliceNext(sl, now); d < h {
			h = d
			if h <= now+1 {
				return h
			}
		}
	}
	for _, mc := range s.mcs {
		if mc.retryHead < len(mc.retryQ) {
			// A pending retry re-attempts Enqueue every Tick; even a failed
			// attempt mutates controller state (request IDs, QueueFull).
			return now + 1
		}
		if d := mc.ctrl.NextEvent(now); d < h {
			h = d
		}
		if mc.emc != nil {
			if d := mc.emc.NextEvent(now); d < h {
				h = d
			}
		}
		if h <= now+1 {
			return h
		}
	}
	for _, c := range s.cores {
		if d := c.NextEvent(now); d < h {
			h = d
			if h <= now+1 {
				return h
			}
		}
	}
	return h
}

//simlint:noalloc
func (s *System) sliceNext(sl *llcSlice, now uint64) uint64 {
	h := uint64(noEvent)
	if sl.lkHead < len(sl.lookupQ) {
		h = sl.lookupQ[sl.lkHead].at
	}
	if sl.flHead < len(sl.fillQ) && sl.fillQ[sl.flHead].at < h {
		h = sl.fillQ[sl.flHead].at
	}
	if h <= now {
		return now + 1
	}
	return h
}

// step advances one cycle. It is the per-cycle hot path: BenchmarkStepIdle
// and BenchmarkStepSaturated pin it at 0 allocs/op, and the hotalloc
// analyzer enforces the same property at build time.
//
//simlint:noalloc bench=BenchmarkStep(Idle|Saturated)
func (s *System) step() {
	// Event-horizon fast-forward: when every component agrees the next
	// state change is at cycle h > now+1, the Ticks in between are pure
	// no-ops — jump to h-1 and credit the cores' per-cycle stall counters.
	if !s.cfg.DisableCycleSkip {
		if h := s.horizon(); h > s.now+1 {
			target := h - 1
			if target > s.cfg.MaxCycles {
				target = s.cfg.MaxCycles
			}
			if target > s.now {
				delta := target - s.now
				for _, c := range s.cores {
					if !c.Finished() {
						c.SkipIdle(s.now, delta)
					}
				}
				s.skipped += delta
				s.now = target
			}
		}
	}

	s.now++
	s.st.Cycles = s.now

	// 1. Interconnect: advance and deliver. Delivered ring Messages and
	// their *msg payloads are recycled here; handle() must not retain them.
	s.ctrl.Tick(s.now)
	s.data.Tick(s.now)
	for stop := 0; stop < s.ctrl.Stops(); stop++ {
		for _, dm := range s.ctrl.Deliver(stop) {
			m := dm.Payload.(*msg)
			s.ctrl.Recycle(dm)
			s.handle(stop, m) //simlint:allocok dispatch appends into steady-state queues; per-message paths that allocate (chain install) are per-chain, not per-cycle
			s.freeMsg(m)
		}
		for _, dm := range s.data.Deliver(stop) {
			m := dm.Payload.(*msg)
			s.data.Recycle(dm)
			s.handle(stop, m) //simlint:allocok dispatch appends into steady-state queues; per-message paths that allocate (chain install) are per-chain, not per-cycle
			s.freeMsg(m)
		}
	}

	// 2. LLC slices: complete due lookups and fills.
	for _, sl := range s.slices {
		s.sliceTick(sl)
	}

	// 3. Memory controllers: DRAM, retries, EMC execution.
	for _, mc := range s.mcs {
		s.mcTick(mc)
	}

	// 4. Cores.
	for _, c := range s.cores {
		if !c.Finished() {
			c.Tick(s.now)
		}
	}

	// 5. Chain shipping and late-disambiguation conflicts.
	if s.cfg.EMCEnabled {
		for i, c := range s.cores {
			if ch := c.TakeReadyChain(s.now); ch != nil {
				s.shipChain(i, ch) //simlint:allocok one transfer record per shipped chain, off the per-cycle steady state
			}
			for _, ch := range c.TakeConflictedChains() {
				if mcID, ok := s.activeChains[ch]; ok {
					s.sendCtrl(s.coreStop[i], s.mcs[mcID].stop,
						msg{kind: mConflictAbort, chain: ch, mc: mcID})
				} else {
					c.AbortRemoteChain(ch)
				}
			}
		}
	}

	// 6. Observability: publish live counters / interval samples (read-only;
	// a single branch when disabled).
	if s.obsOn {
		s.obsTick()
	}
}

// shipChain sends a generated chain to the MC owning the source line's
// channel, as multiple data-ring flits.
func (s *System) shipChain(core int, ch *cpu.Chain) {
	if s.cfg.OnChain != nil {
		s.cfg.OnChain(ch)
	}
	mc := s.mcOf(ch.SourceLine)
	flits := (ch.Bytes() + 63) / 64
	if flits < 1 {
		flits = 1
	}
	xfer := &chainTransfer{chain: ch, pending: flits}
	s.st.ChainFlits += uint64(flits)
	for f := 0; f < flits; f++ {
		s.sendData(s.coreStop[core], mc.stop, msg{kind: mChainFlit, chain: ch, xfer: xfer, mc: mc.id})
	}
}

// handle dispatches a delivered ring message.
func (s *System) handle(stop int, m *msg) {
	switch m.kind {
	case mReqToSlice:
		m.req.sliceArrive = s.now
		if m.req.trace != nil {
			s.tr.StampEvent(m.req.trace, obs.StageSliceReach, s.now)
		}
		sl := s.sliceOf(m.req.line)
		sl.lookupQ = append(sl.lookupQ, sliceEvent{at: s.now + uint64(s.cfg.LLCLatency), req: m.req})
	case mHitData, mFillToCore:
		s.deliverFill(m.req)
		s.freeReq(m.req)
	case mReqToMC:
		s.mcAdmit(s.mcOf(m.req.line), m.req)
	case mFillToSlice:
		sl := s.sliceOf(m.req.line)
		sl.fillQ = append(sl.fillQ, sliceEvent{at: s.now + uint64(s.cfg.LLCFillLatency), req: m.req})
	case mStore:
		s.sliceStore(m.req)
	case mWriteback:
		s.mcWrite(s.mcOf(m.req.line), m.req)
		s.freeReq(m.req)
	case mL1Inval:
		s.st.L1Invals++
		core := s.cores[m.core]
		core.L1D().Invalidate(m.line << cache.LineShift)
	case mEMCInval:
		s.st.EMCInvals++
		if e := s.mcs[m.mc].emc; e != nil {
			e.InvalidateLine(m.line)
		}
	case mChainFlit:
		m.xfer.pending--
		if m.xfer.pending == 0 {
			s.installChain(s.mcs[m.mc], m.chain)
		}
	case mChainDone:
		if m.values == nil {
			return // leading flit of a multi-flit live-out transfer
		}
		s.cores[m.core].CompleteRemoteChain(m.chain, m.values, s.now)
		delete(s.activeChains, m.chain)
	case mChainAbort:
		s.cores[m.core].AbortRemoteChain(m.chain)
		delete(s.activeChains, m.chain)
		if m.reason == emc.AbortTLBMiss {
			// The core responds with the missing translation so the next
			// chain touching this page succeeds.
			pte := s.pts[m.core].Lookup(m.vaddr)
			s.sendCtrl(s.coreStop[m.core], s.mcs[m.mc].stop,
				msg{kind: mPTEInstall, core: m.core, mc: m.mc, vaddr: m.vaddr})
			_ = pte
		}
	case mMemExec:
		robIdx := m.chain.Uops[m.uopIdx].RobIdx
		conflict := s.cores[m.core].RemoteMemExecuted(robIdx, m.vaddr)
		if conflict {
			s.sendCtrl(s.coreStop[m.core], s.mcs[m.mc].stop,
				msg{kind: mConflictAbort, chain: m.chain, mc: m.mc})
		}
	case mConflictAbort:
		mc := s.mcs[m.mc]
		if mc.emc != nil {
			s.emcActions(mc, mc.emc.AbortContext(m.chain, emc.AbortConflict, s.now))
		}
	case mPTEInstall:
		s.st.PTEInstalls++
		mc := s.mcs[m.mc]
		if mc.emc != nil {
			mc.emc.TLB(m.core).Insert(m.vaddr, s.pts[m.core].Lookup(m.vaddr))
		}
	case mEMCLLCReq:
		m.req.sliceArrive = s.now
		if m.req.trace != nil {
			s.tr.StampEvent(m.req.trace, obs.StageSliceReach, s.now)
		}
		sl := s.sliceOf(m.req.line)
		sl.lookupQ = append(sl.lookupQ, sliceEvent{at: s.now + uint64(s.cfg.LLCLatency), req: m.req})
	case mEMCLLCData:
		s.emcFill(s.mcs[m.req.emcMC], m.req)
		s.freeReq(m.req)
	case mCrossReq:
		s.st.CrossMCRequests++
		s.mcAdmit(s.mcs[m.mc], m.req)
	case mCrossData:
		s.emcFill(s.mcs[m.req.emcMC], m.req)
		s.freeReq(m.req)
	}
}

// deliverFill hands a line to the requesting core's L1 and bookkeeps
// latency segments.
func (s *System) deliverFill(r *memReq) {
	r.fillCore = s.now
	core := s.cores[r.core]
	victim, had := core.Fill(r.line, s.now)
	sl := s.sliceOf(r.line)
	sl.c.SetPresence(r.line<<cache.LineShift, r.core, true)
	if had {
		s.sliceOf(victim).c.SetPresence(victim<<cache.LineShift, r.core, false)
	}
	if r.trace != nil {
		s.tr.StampEvent(r.trace, obs.StageFill, s.now)
		if r.llcMiss && !r.ideal {
			// Attribution covers exactly the requests CoreMissTotal counts,
			// so sampled component sums reconcile against it.
			s.tr.Attr().AddStamps(obs.SrcCore, obs.Stamps{
				Issued: r.issuedAt, SliceReach: r.sliceArrive, SliceDone: r.sliceDone,
				MCReach: r.mcArrive, DRAMIssued: r.dramIssued, DRAMDone: r.dramDone,
				Fill: r.fillCore,
			})
		}
	}
	if r.llcMiss && !r.ideal {
		s.st.CoreMissCount++
		s.st.CoreMissHist.Add(r.fillCore - r.issuedAt)
		s.st.CoreMissTotal += r.fillCore - r.issuedAt
		// Segment accounting only for requests with a complete, monotone
		// timeline (merged waiters picked up mid-flight lack early stamps).
		if r.issuedAt <= r.mcArrive && r.mcArrive <= r.dramIssued &&
			r.dramIssued <= r.dramDone && r.dramDone <= r.fillCore &&
			r.sliceArrive <= r.sliceDone && r.mcArrive > 0 {
			s.st.CoreMissSegCount++
			s.st.CoreMissDRAM += r.dramDone - r.dramIssued
			s.st.CoreMissQueue += r.dramIssued - r.mcArrive
			s.st.CoreMissRingReq += r.mcArrive - r.issuedAt
			s.st.CoreMissRingRsp += r.fillCore - r.dramDone
			s.st.CoreMissLLCLat += r.sliceDone - r.sliceArrive
		}
	}
}

// ---- LLC slice behaviour --------------------------------------------------------

func (s *System) sliceTick(sl *llcSlice) {
	for sl.lkHead < len(sl.lookupQ) && sl.lookupQ[sl.lkHead].at <= s.now {
		req := sl.lookupQ[sl.lkHead].req
		sl.lookupQ[sl.lkHead] = sliceEvent{}
		sl.lkHead++
		s.sliceLookup(sl, req)
	}
	if sl.lkHead == len(sl.lookupQ) && sl.lkHead > 0 {
		sl.lookupQ = sl.lookupQ[:0]
		sl.lkHead = 0
	}
	for sl.flHead < len(sl.fillQ) && sl.fillQ[sl.flHead].at <= s.now {
		req := sl.fillQ[sl.flHead].req
		sl.fillQ[sl.flHead] = sliceEvent{}
		sl.flHead++
		s.sliceFill(sl, req)
	}
	if sl.flHead == len(sl.fillQ) && sl.flHead > 0 {
		sl.fillQ = sl.fillQ[:0]
		sl.flHead = 0
	}
}

func (s *System) sliceLookup(sl *llcSlice, r *memReq) {
	r.sliceDone = s.now
	if r.trace != nil {
		s.tr.StampEvent(r.trace, obs.StageSliceDone, s.now)
	}
	addr := r.line << cache.LineShift
	hit := sl.c.Access(addr, false)
	if !r.fromEMC {
		s.st.LLCDemand++
	}

	// Train the miss predictor at every EMC from core demand outcomes.
	if !r.fromEMC && s.cfg.EMCEnabled {
		for _, mc := range s.mcs {
			if mc.emc != nil {
				mc.emc.TrainMissPredictor(r.core, r.pc, !hit)
			}
		}
	}

	if hit {
		s.st.LLCHits++
		if r.prefetch {
			s.freeReq(r) // runahead prefetch found the line already on chip
			return
		}
		if sl.c.TakePrefetched(addr) {
			s.pfs[r.core].RecordUseful()
			s.st.TotalCovered++
			if r.dependent {
				s.st.DepCovered++
			}
			if r.fromEMC {
				s.st.EMCCoveredByPF++
			}
		}
		if r.fromEMC {
			s.st.EMCLLCHits++
			s.sendData(sl.stop, s.mcs[r.emcMC].stop, msg{kind: mEMCLLCData, req: r})
		} else {
			s.sendData(sl.stop, s.coreStop[r.core], msg{kind: mHitData, req: r})
		}
		return
	}

	// Miss.
	s.st.LLCMisses++
	r.llcMiss = true
	if r.prefetch {
		// Runahead prefetch: merge/launch a fill, nothing returns to the core.
		if w, ok := sl.outstanding[r.line]; ok {
			w.reqs = append(w.reqs, r)
			return
		}
		sl.outstanding[r.line] = s.allocWaiters(r)
		s.sendCtrl(sl.stop, s.mcOf(r.line).stop, msg{kind: mReqToMC, req: r})
		return
	}
	if !r.fromEMC {
		s.cores[r.core].NoteLLCMiss(r.line)
		if r.dependent {
			s.st.DepMisses++
		}
		// Fig. 2 idealization: dependent misses served at hit latency.
		if s.cfg.IdealDependentHits && r.dependent {
			s.st.IdealDepHits++
			r.ideal = true
			s.sendData(sl.stop, s.coreStop[r.core], msg{kind: mHitData, req: r})
			return
		}
		// Train the prefetcher on the miss and issue its proposals.
		s.trainPrefetch(r, true)
	}

	if w, ok := sl.outstanding[r.line]; ok {
		w.reqs = append(w.reqs, r)
		return
	}
	sl.outstanding[r.line] = s.allocWaiters(r)
	if r.fromEMC {
		// The launcher lands in both this slice's outstanding set and the
		// MC's pending entry, and is filled through both: once directly at
		// the EMC, once via the slice's mEMCLLCData forward.
		r.refs++
	}
	s.sendCtrl(sl.stop, s.mcOf(r.line).stop, msg{kind: mReqToMC, req: r})
}

// trainPrefetch feeds the per-core prefetcher and launches its proposals
// into the owning slices.
func (s *System) trainPrefetch(r *memReq, miss bool) {
	if s.cfg.Prefetcher == PFNone {
		return
	}
	props := s.pfs[r.core].Train(prefetch.Event{LineAddr: r.line, PC: r.pc, Core: r.core, Miss: miss})
	for _, line := range props {
		s.issuePrefetch(r.core, line)
	}
}

func (s *System) issuePrefetch(core int, line uint64) {
	sl := s.sliceOf(line)
	addr := line << cache.LineShift
	if sl.c.Probe(addr) {
		return
	}
	if _, ok := sl.outstanding[line]; ok {
		return
	}
	r := s.allocReq()
	r.line, r.core, r.prefetch, r.issuedAt = line, core, true, s.now
	if s.tr != nil {
		r.trace = s.tr.Start(obs.SrcPrefetch, core, line, 0, false, s.now)
	}
	sl.outstanding[line] = s.allocWaiters(r)
	s.sendCtrl(sl.stop, s.mcOf(line).stop, msg{kind: mReqToMC, req: r})
}

// sliceFill inserts a filled line, maintains the inclusive directory, and
// forwards data to waiting cores/EMCs.
func (s *System) sliceFill(sl *llcSlice, r *memReq) {
	addr := r.line << cache.LineShift
	v := sl.c.Insert(addr, false)
	if r.prefetch {
		sl.c.SetPrefetched(addr, true)
	}
	if v.Valid {
		s.evictVictim(sl, v)
	}
	if r.fromEMC {
		// The EMC holds this line in its data cache (§4.1.3).
		sl.c.SetEMCBit(addr, true)
	}
	w := sl.outstanding[r.line]
	delete(sl.outstanding, r.line)
	if w == nil {
		s.freeReq(r) // EMC-only fill with no slice waiters
		return
	}
	fwdSelf := false
	for _, wr := range w.reqs {
		if wr.prefetch {
			if wr != r {
				s.freeReq(wr) // prefetch waiters terminate here
			}
			continue
		}
		// Copy fill timing onto merged waiters.
		if wr.dramDone == 0 {
			wr.dramDone, wr.dramIssued, wr.mcArrive = r.dramDone, r.dramIssued, r.mcArrive
			wr.llcMiss = true
		}
		if wr == r {
			fwdSelf = true
		}
		if wr.fromEMC {
			s.sendData(sl.stop, s.mcs[wr.emcMC].stop, msg{kind: mEMCLLCData, req: wr})
		} else {
			s.sendData(sl.stop, s.coreStop[wr.core], msg{kind: mFillToCore, req: wr})
		}
	}
	s.freeWaiters(w)
	if !fwdSelf {
		s.freeReq(r) // fresh or prefetch lead: not forwarded anywhere
	}
}

// evictVictim handles an LLC eviction: inclusive invalidations to L1s, EMC
// cache invalidation, and the dirty writeback.
func (s *System) evictVictim(sl *llcSlice, v cache.Victim) {
	for core := 0; core < len(s.cores); core++ {
		if v.Presence&(1<<uint(core)) != 0 {
			s.sendCtrl(sl.stop, s.coreStop[core], msg{kind: mL1Inval, core: core, line: v.LineAddr})
		}
	}
	if v.EMC {
		for _, mc := range s.mcs {
			if mc.emc != nil {
				s.sendCtrl(sl.stop, mc.stop, msg{kind: mEMCInval, mc: mc.id, line: v.LineAddr})
			}
		}
	}
	if v.Dirty {
		wb := s.allocReq()
		wb.line, wb.core, wb.issuedAt = v.LineAddr, -1, s.now
		s.sendData(sl.stop, s.mcOf(v.LineAddr).stop, msg{kind: mWriteback, req: wb})
	}
}

// sliceStore applies a write-through store at the LLC (write-no-allocate).
func (s *System) sliceStore(r *memReq) {
	sl := s.sliceOf(r.line)
	addr := r.line << cache.LineShift
	if sl.c.Probe(addr) {
		sl.c.Access(addr, true) // marks dirty (write-back LLC)
		if sl.c.EMCBit(addr) {
			sl.c.SetEMCBit(addr, false)
			for _, mc := range s.mcs {
				if mc.emc != nil {
					s.sendCtrl(sl.stop, mc.stop, msg{kind: mEMCInval, mc: mc.id, line: r.line})
				}
			}
		}
		s.freeReq(r)
		return
	}
	// Miss: no allocate; the write goes to DRAM.
	s.sendCtrl(sl.stop, s.mcOf(r.line).stop, msg{kind: mWriteback, req: r})
}
