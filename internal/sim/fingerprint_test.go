package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem/dram"
	"repro/internal/obs"
)

func testCfg(t *testing.T) Config {
	t.Helper()
	return Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
}

func fp(t *testing.T, cfg Config) string {
	t.Helper()
	s, err := cfg.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return s
}

func TestFingerprintStable(t *testing.T) {
	a := fp(t, testCfg(t))
	b := fp(t, testCfg(t))
	if a != b {
		t.Fatalf("identical configs hash differently: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "emcfp1-") {
		t.Fatalf("fingerprint %q lacks version prefix", a)
	}
}

// TestFingerprintJSONRoundTrip pins the satellite requirement: a config that
// travels through JSON (the HTTP submit path) must keep its fingerprint.
func TestFingerprintJSONRoundTrip(t *testing.T) {
	cfg := testCfg(t)
	cfg.Prefetcher = PFGHB
	cfg.EMCEnabled = true
	want := fp(t, cfg)

	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := fp(t, back); got != want {
		t.Fatalf("JSON round-trip changed fingerprint: %s -> %s", want, got)
	}
}

// TestFingerprintFieldOrderIndependent proves the canonical encoder ignores
// struct declaration order: two types with the same fields in different
// source order encode identically.
func TestFingerprintFieldOrderIndependent(t *testing.T) {
	type ab struct {
		Alpha int
		Beta  string
	}
	type ba struct {
		Beta  string
		Alpha int
	}
	var b1, b2 strings.Builder
	if err := canonValue(&b1, reflect.ValueOf(ab{Alpha: 7, Beta: "x"})); err != nil {
		t.Fatal(err)
	}
	if err := canonValue(&b2, reflect.ValueOf(ba{Beta: "x", Alpha: 7})); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("field order leaked into encoding: %q vs %q", b1.String(), b2.String())
	}
}

// TestFingerprintSemanticChanges mutates every result-affecting field and
// asserts the hash moves; a completeness check makes sure a newly added
// Config field cannot dodge the fingerprint policy unnoticed.
func TestFingerprintSemanticChanges(t *testing.T) {
	base := fp(t, testCfg(t))
	mutations := map[string]func(*Config){
		"Benchmarks":         func(c *Config) { c.Benchmarks = []string{"mcf", "mcf", "mcf", "mcf"} },
		"InstrPerCore":       func(c *Config) { c.InstrPerCore++ },
		"Seed":               func(c *Config) { c.Seed++ },
		"Prefetcher":         func(c *Config) { c.Prefetcher = PFGHB },
		"EMCEnabled":         func(c *Config) { c.EMCEnabled = true },
		"RunaheadEnabled":    func(c *Config) { c.RunaheadEnabled = true },
		"UseBranchPredictor": func(c *Config) { c.UseBranchPredictor = true },
		"MCs":                func(c *Config) { c.MCs = 2 },
		"Geometry":           func(c *Config) { c.Geometry.Channels *= 2 },
		"Timing":             func(c *Config) { c.Timing.TCAS++ },
		"Sched":              func(c *Config) { c.Sched = dram.SchedFCFS },
		"LLCSliceBytes":      func(c *Config) { c.LLCSliceBytes *= 2 },
		"LLCLatency":         func(c *Config) { c.LLCLatency++ },
		"LLCFillLatency":     func(c *Config) { c.LLCFillLatency++ },
		"PageShift":          func(c *Config) { c.PageShift-- },
		"IdealDependentHits": func(c *Config) { c.IdealDependentHits = true },
		"MagicChains":        func(c *Config) { c.MagicChains = true },
		"MaxCycles":          func(c *Config) { c.MaxCycles++ },
		"EMCCfg":             func(c *Config) { c.EMCCfg.Contexts++ },
	}
	seen := map[string]string{"": base}
	for name, mutate := range mutations {
		cfg := testCfg(t)
		mutate(&cfg)
		h := fp(t, cfg)
		if h == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutations %q and %q collide on %s", name, prev, h)
		}
		seen[h] = name
	}

	// Every Config field must be either mutated above or deliberately
	// excluded — growing Config silently would otherwise poison the cache.
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := mutations[name]; ok {
			continue
		}
		if fingerprintExcluded[name] {
			continue
		}
		t.Errorf("Config field %s is neither fingerprinted (add a mutation) nor excluded", name)
	}
}

// TestFingerprintIgnoresObservability: observability knobs never change
// simulation outcomes, so they must not change the cache identity either.
func TestFingerprintIgnoresObservability(t *testing.T) {
	base := fp(t, testCfg(t))
	cfg := testCfg(t)
	cfg.Obs = obs.Config{Enabled: true, SampleEvery: 8, Retain: true}
	cfg.CounterInterval = 5000
	cfg.DisableCycleSkip = true
	cfg.Metrics = obs.NewRegistry()
	cfg.MetricsLabels = map[string]string{"run": "x"}
	if got := fp(t, cfg); got != base {
		t.Fatalf("observability fields changed the fingerprint: %s -> %s", base, got)
	}
}

func TestFingerprintRejectsFuncFields(t *testing.T) {
	cfg := testCfg(t)
	cfg.CoreTweak = func(*cpu.Config) {}
	if _, err := cfg.Fingerprint(); err == nil {
		t.Fatal("CoreTweak config fingerprinted without error")
	}
	cfg = testCfg(t)
	cfg.OnChain = func(*cpu.Chain) {}
	if _, err := cfg.Fingerprint(); err == nil {
		t.Fatal("OnChain config fingerprinted without error")
	}
}
