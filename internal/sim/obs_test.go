package sim

import (
	"testing"

	"repro/internal/obs"
)

// TestAttributionReconciles pins the exact-sum property the attribution
// layer is built on: at SampleEvery=1 every attributed miss is also counted
// by the existing CoreMiss*/EMCMiss* accounting, at the same code points, so
// the sampled sums must equal the RunStats totals exactly — and each miss's
// components partition its end-to-end latency, so the component sums must
// too. It also checks the paper's headline effect: EMC-issued misses spend
// fewer on-chip cycles per miss than core-issued ones.
func TestAttributionReconciles(t *testing.T) {
	cfg := Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
	cfg.InstrPerCore = 5000
	cfg.EMCEnabled = true
	cfg.Obs = obs.Config{Enabled: true, SampleEvery: 1}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs == nil {
		t.Fatal("Result.Obs is nil with tracing enabled")
	}
	core, emc := &r.Obs.Attr.Core, &r.Obs.Attr.EMC

	if core.Count != r.Sys.CoreMissCount {
		t.Errorf("core attributed %d misses, RunStats has %d", core.Count, r.Sys.CoreMissCount)
	}
	if core.TotalSum != r.Sys.CoreMissTotal {
		t.Errorf("core attributed %d cycles, RunStats has %d", core.TotalSum, r.Sys.CoreMissTotal)
	}
	if emc.Count != r.Sys.EMCMissCount {
		t.Errorf("emc attributed %d misses, RunStats has %d", emc.Count, r.Sys.EMCMissCount)
	}
	if emc.TotalSum != r.Sys.EMCMissTotal {
		t.Errorf("emc attributed %d cycles, RunStats has %d", emc.TotalSum, r.Sys.EMCMissTotal)
	}

	for _, src := range []struct {
		name string
		a    *obs.SourceAttr
	}{{"core", core}, {"emc", emc}} {
		var sum uint64
		for c := obs.Component(0); c < obs.NumComponents; c++ {
			sum += src.a.CompSum[c]
		}
		if sum != src.a.TotalSum {
			t.Errorf("%s components sum to %d, total is %d", src.name, sum, src.a.TotalSum)
		}
		if src.a.OnChipSum()+src.a.MemSum() != src.a.TotalSum {
			t.Errorf("%s on-chip+memory split does not partition the total", src.name)
		}
	}

	if core.Count == 0 || emc.Count == 0 {
		t.Fatalf("workload produced no misses to attribute (core %d, emc %d)", core.Count, emc.Count)
	}
	coreOnChip := float64(core.OnChipSum()) / float64(core.Count)
	emcOnChip := float64(emc.OnChipSum()) / float64(emc.Count)
	if emcOnChip >= coreOnChip {
		t.Errorf("EMC on-chip cycles per miss (%.1f) not below core (%.1f)", emcOnChip, coreOnChip)
	}
}

// TestCounterLogInResult checks the interval counter time series: samples at
// the configured cadence, names matching the published gauge set, and a
// final flush at the end of the run.
func TestCounterLogInResult(t *testing.T) {
	cfg := Default([]string{"mcf", "mcf", "mcf", "mcf"})
	cfg.InstrPerCore = 3000
	cfg.CounterInterval = 5000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	l := sys.CounterLog()
	if l == nil {
		t.Fatal("CounterLog nil with CounterInterval set")
	}
	if len(l.Names) != len(gaugeNames) {
		t.Fatalf("log has %d names, want %d", len(l.Names), len(gaugeNames))
	}
	if len(l.Samples) < 2 {
		t.Fatalf("only %d samples over %d cycles at interval %d", len(l.Samples), res.Cycles, cfg.CounterInterval)
	}
	lastCycle := uint64(0)
	for i, s := range l.Samples {
		if len(s.Values) != len(l.Names) {
			t.Fatalf("sample %d has %d values", i, len(s.Values))
		}
		if i > 0 && s.Cycle <= lastCycle {
			t.Fatalf("sample cycles not increasing: %d then %d", lastCycle, s.Cycle)
		}
		lastCycle = s.Cycle
	}
	if lastCycle != res.Cycles {
		t.Errorf("final flush at cycle %d, run ended at %d", lastCycle, res.Cycles)
	}
}

// TestMetricsPublish checks a System publishes its gauges into a Registry
// group during the run.
func TestMetricsPublish(t *testing.T) {
	cfg := Default([]string{"mcf", "mcf", "mcf", "mcf"})
	cfg.InstrPerCore = 3000
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	cfg.MetricsLabels = map[string]string{"run": "test"}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	vars := reg.Vars()
	g, ok := vars[`run="test"`]
	if !ok {
		t.Fatalf("registry groups: %v", vars)
	}
	if g["cycles"] != float64(res.Cycles) {
		t.Errorf("published cycles %v, run ended at %d", g["cycles"], res.Cycles)
	}
	if g["retired_instructions"] == 0 {
		t.Error("retired_instructions never published")
	}
}
