package sim

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/emc"
	"repro/internal/mem/dram"
)

// TestTable1Contract pins every default parameter to the paper's Table 1.
// If a default drifts, this test names the figure of merit that changed.
func TestTable1Contract(t *testing.T) {
	core := cpu.DefaultConfig(0)
	checks := []struct {
		name      string
		got, want int
	}{
		{"core issue width", core.IssueWidth, 4},
		{"ROB entries", core.ROBSize, 256},
		{"reservation station entries", core.RSSize, 92},
		{"L1 I-cache bytes", core.L1ISize, 32 * 1024},
		{"L1 D-cache bytes", core.L1DSize, 32 * 1024},
		{"L1 ways", core.L1DWays, 8},
		{"L1 latency", core.L1Latency, 3},
		{"chain max uops", core.ChainMaxUops, 16},
		{"EMC physical registers", core.ChainMaxRegs, 16},
		{"live-in vector entries", core.ChainMaxLiveIns, 16},
		{"dependence counter bits", core.DepCounterBits, 3},
	}
	ecfg := emc.DefaultConfig(4)
	checks = append(checks, []struct {
		name      string
		got, want int
	}{
		{"EMC contexts (quad)", ecfg.Contexts, 2},
		{"EMC issue width", ecfg.IssueWidth, 2},
		{"EMC reservation station", ecfg.RSSize, 8},
		{"EMC LSQ entries", ecfg.LSQSize, 8},
		{"EMC data cache bytes", ecfg.CacheSize, 4096},
		{"EMC data cache ways", ecfg.CacheWays, 4},
		{"EMC data cache latency", ecfg.CacheLatency, 2},
		{"EMC TLB entries per core", ecfg.TLBEntriesPerCore, 32},
	}...)
	e8 := emc.DefaultConfig(8)
	checks = append(checks, struct {
		name      string
		got, want int
	}{"EMC contexts (eight)", e8.Contexts, 4})

	quad := dram.QuadCoreGeometry()
	eight := dram.EightCoreGeometry()
	checks = append(checks, []struct {
		name      string
		got, want int
	}{
		{"quad channels", quad.Channels, 2},
		{"quad memory queue", quad.QueueSize, 128},
		{"banks per rank", quad.Banks, 8},
		{"row bytes", quad.RowBytes, 8192},
		{"eight channels", eight.Channels, 4},
		{"eight memory queue", eight.QueueSize, 256},
	}...)

	sys := Default([]string{"a", "b", "c", "d"})
	checks = append(checks, []struct {
		name      string
		got, want int
	}{
		{"LLC slice bytes", sys.LLCSliceBytes, 1 << 20},
		{"LLC latency", sys.LLCLatency, 18},
	}...)

	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table 1 drift: %s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if sys.Sched != dram.SchedBatch {
		t.Error("Table 1: baseline scheduler is batch scheduling")
	}
	ti := dram.DDR3()
	// CAS 13.75 ns at 3.2 GHz = 44 cycles.
	if ti.TCAS != 44 {
		t.Errorf("DDR3 CAS = %d cycles, want 44 (13.75ns at 3.2GHz)", ti.TCAS)
	}
}
