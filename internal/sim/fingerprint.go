package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// fingerprintVersion is baked into every fingerprint so a change to the
// canonical encoding (or to what a field means) can invalidate old cache
// entries by bumping it.
const fingerprintVersion = "emcfp1"

// fingerprintExcluded lists the Config fields that never enter the
// fingerprint. They fall in two classes, both proven not to change
// simulation outcomes:
//
//   - pure observability (Obs, Metrics, MetricsLabels, CounterInterval):
//     tracing and live-counter export read timestamps the simulator produces
//     anyway (TestCycleSkipDeterminism pins this);
//   - scheduler mode (DisableCycleSkip): results are bit-identical with the
//     event-horizon scheduler on or off (same guard).
//
// CoreTweak and OnChain are also listed, but they are handled separately:
// being function-valued they have no canonical identity, so a non-nil value
// makes the whole config unfingerprintable rather than silently ignored.
var fingerprintExcluded = map[string]bool{
	"Obs":              true,
	"Metrics":          true,
	"MetricsLabels":    true,
	"CounterInterval":  true,
	"DisableCycleSkip": true,
	"CoreTweak":        true,
	"OnChain":          true,
}

// Fingerprint returns a canonical, content-addressed digest of every
// result-affecting field of the configuration. It is the cache key of the
// simulation-service result cache: two configs with equal fingerprints must
// produce bit-identical Results (up to the observability report), and any
// semantic change to a field must change the fingerprint.
//
// The encoding walks the struct reflectively with fields sorted by name, so
// it is independent of declaration order and of the route the config took
// to get here (JSON round-trips, copies, map iteration order). Configs
// carrying function values (CoreTweak, OnChain) have no canonical identity
// and return an error.
func (c *Config) Fingerprint() (string, error) {
	if c.CoreTweak != nil {
		return "", fmt.Errorf("sim: config with CoreTweak set is not fingerprintable")
	}
	if c.OnChain != nil {
		return "", fmt.Errorf("sim: config with OnChain set is not fingerprintable")
	}
	var b strings.Builder
	b.WriteString(fingerprintVersion)
	b.WriteByte('{')
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	names := make([]string, 0, t.NumField())
	idx := make(map[string]int, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		name := t.Field(i).Name
		if fingerprintExcluded[name] {
			continue
		}
		names = append(names, name)
		idx[name] = i
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte('=')
		if err := canonValue(&b, v.Field(idx[name])); err != nil {
			return "", fmt.Errorf("sim: fingerprint %s: %w", name, err)
		}
		b.WriteByte(';')
	}
	b.WriteByte('}')
	sum := sha256.Sum256([]byte(b.String()))
	return fingerprintVersion + "-" + hex.EncodeToString(sum[:16]), nil
}

// canonValue writes a canonical textual encoding of v: structs as
// name-sorted field lists, maps as key-sorted pairs, scalars in a fixed
// format. Function values are rejected (no canonical identity).
func canonValue(b *strings.Builder, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			// nil and empty slices are semantically identical configs.
			b.WriteString("[]")
			return nil
		}
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := canonValue(b, v.Index(i)); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		elems := make(map[string]reflect.Value, v.Len())
		for _, k := range v.MapKeys() {
			var kb strings.Builder
			if err := canonValue(&kb, k); err != nil {
				return err
			}
			keys = append(keys, kb.String())
			elems[kb.String()] = v.MapIndex(k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteByte(':')
			if err := canonValue(b, elems[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case reflect.Struct:
		t := v.Type()
		names := make([]string, 0, t.NumField())
		idx := make(map[string]int, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			names = append(names, t.Field(i).Name)
			idx[t.Field(i).Name] = i
		}
		sort.Strings(names)
		b.WriteByte('{')
		for i, name := range names {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(name)
			b.WriteByte('=')
			if err := canonValue(b, v.Field(idx[name])); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			b.WriteString("nil")
			return nil
		}
		return canonValue(b, v.Elem())
	default:
		return fmt.Errorf("unsupported kind %s", v.Kind())
	}
	return nil
}
