package sim

import (
	"fmt"
	"strings"
)

// Summary renders a compact human-readable report of a run — the same
// content the emcsim CLI prints, reusable by library callers.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d avgIPC=%.4f\n", r.Cycles, r.AvgIPC())
	for _, c := range r.Cores {
		fmt.Fprintf(&b, "  %-12s IPC=%.4f loads=%d llcMiss=%d dependent=%d chains=%d\n",
			c.Benchmark, c.IPC, c.Stats.Loads, c.Stats.LLCMissLoads,
			c.Stats.DependentMissLoads, c.Stats.ChainsGenerated)
	}
	fmt.Fprintf(&b, "  dram: demand=%d prefetch=%d emc=%d writes=%d rowConflict=%.1f%%\n",
		r.Sys.DRAMDemandReads, r.Sys.DRAMPrefetch, r.Sys.DRAMEMCReads,
		r.Sys.DRAMWrites, 100*r.RowConflictRate())
	fmt.Fprintf(&b, "  miss latency: core=%.1f", r.CoreMissLatency())
	if r.Sys.EMCMissCount > 0 {
		fmt.Fprintf(&b, " emc=%.1f (%.0f%% lower)", r.EMCMissLatency(),
			100*(1-r.EMCMissLatency()/r.CoreMissLatency()))
	}
	b.WriteByte('\n')
	if len(r.EMC) > 0 {
		var done, aborted uint64
		for _, e := range r.EMC {
			done += e.ChainsDone
			aborted += e.ChainsAborted
		}
		fmt.Fprintf(&b, "  emc: chainsDone=%d aborted=%d missShare=%.1f%% cacheHit=%.1f%%\n",
			done, aborted, 100*r.EMCMissFraction(), 100*r.EMCCacheHitRate())
	}
	fmt.Fprintf(&b, "  energy: %.3g J (chip %.3g, dram %.3g)\n",
		r.Energy.Total(), r.Energy.Chip(), r.Energy.DRAMStatic+r.Energy.DRAMDynamic)
	return b.String()
}
