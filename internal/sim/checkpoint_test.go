package sim

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fault"
)

// ckptCfg is a workload long enough to yield several checkpoints at a small
// interval, with the EMC and a prefetcher on so the replayed state covers
// the full machine.
func ckptCfg() Config {
	cfg := skipCfg([]string{"mcf", "lbm", "milc", "omnetpp"}, 11)
	cfg.EMCEnabled = true
	cfg.Prefetcher = PFGHB
	return cfg
}

// TestResumeFromCheckpointDeterminism is the resume guard: a run abandoned
// mid-flight and resumed from a periodic checkpoint must produce a Result
// bit-identical to an uninterrupted run — same hash, same cycle count —
// after an encode/decode round trip of the checkpoint.
//
// The refresh-heavy variant pins the interaction the checkpoint digest is
// most exposed to: replay-to-cycle crosses many deferred refresh epochs, so
// a lazy catch-up that drifted from the eager schedule (or a skip horizon
// that ignored a due refresh) would land replay on a different digest and
// fail as ErrCheckpointDiverged.
func TestResumeFromCheckpointDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Config)
	}{
		{"emc-ghb", nil},
		{"refresh-heavy", func(c *Config) {
			c.Timing.TREFI = 800
			c.Timing.TRFC = 128
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := ckptCfg()
			if tc.tweak != nil {
				tc.tweak(&cfg)
			}
			resumeRoundTrip(t, cfg)
		})
	}
}

func resumeRoundTrip(t *testing.T, cfg Config) {
	want, wantCycles, _ := runHashed(t, cfg)

	// First run: emit checkpoints, then "crash" (cancel) after a few.
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	var cps []*Checkpoint
	if err := h.EnableCheckpoints(2000, func(cp *Checkpoint) {
		cps = append(cps, cp)
		if len(cps) == 3 {
			h.Cancel()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("want simulated crash (ErrCancelled), got %v", err)
	}
	if len(cps) < 3 {
		t.Fatalf("want >=3 checkpoints before the crash, got %d", len(cps))
	}
	cp := cps[len(cps)-1]
	if cp.Cycle == 0 || cp.Retired == 0 {
		t.Fatalf("checkpoint looks empty: %+v", cp)
	}

	// Serialization round trip: what a process restart would read back.
	dec, err := DecodeCheckpoint(cp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *dec != *cp {
		t.Fatalf("decode round trip changed the checkpoint: %+v != %+v", dec, cp)
	}

	var resumedProgress int
	h2, err := ResumeFrom(cfg, dec, 500, func(Progress) { resumedProgress++ })
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.System().Now(); got != cp.Cycle {
		t.Fatalf("resumed at cycle %d, checkpoint at %d", got, cp.Cycle)
	}
	res, err := h2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != want {
		t.Fatalf("resumed run hash %#x != uninterrupted run %#x", res.Hash(), want)
	}
	if res.Cycles != wantCycles {
		t.Fatalf("resumed run cycles %d != uninterrupted %d", res.Cycles, wantCycles)
	}
	if resumedProgress == 0 {
		t.Fatal("resumed handle never fired its progress callback")
	}
}

// TestResumeRejectsWrongConfig: a checkpoint only resumes the configuration
// it was taken from.
func TestResumeRejectsWrongConfig(t *testing.T) {
	cfg := ckptCfg()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	for i := 0; i < 500; i++ {
		sys.Step()
	}
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed = 999
	if _, err := ResumeFrom(other, cp, 0, nil); err == nil {
		t.Fatal("resume accepted a checkpoint from a different config")
	}
}

// TestResumeDetectsTamperedDigest: a checkpoint whose digest does not match
// the replayed state fails with ErrCheckpointDiverged instead of silently
// resuming a wrong run.
func TestResumeDetectsTamperedDigest(t *testing.T) {
	cfg := ckptCfg()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	for i := 0; i < 500; i++ {
		sys.Step()
	}
	cp, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Digest ^= 1
	if _, err := ResumeFrom(cfg, cp, 0, nil); !errors.Is(err, ErrCheckpointDiverged) {
		t.Fatalf("want ErrCheckpointDiverged, got %v", err)
	}
}

// TestDecodeCheckpointCorruption: every corruption mode of the encoded frame
// is rejected with ErrCheckpointCorrupt.
func TestDecodeCheckpointCorruption(t *testing.T) {
	cp := &Checkpoint{Fingerprint: "emcfp1-test", Cycle: 42, Retired: 7, Digest: 0xABCD}
	good := cp.Encode()
	if _, err := DecodeCheckpoint(good); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("XXXX"), good[4:]...),
		"truncated":  good[:len(good)-6],
		"flipped":    append(append([]byte{}, good[:12]...), append([]byte{good[12] ^ 0xFF}, good[13:]...)...),
		"crc":        append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^0xFF),
		"bad version": func() []byte {
			b := append([]byte{}, good...)
			b[4] ^= 0xFF
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s: want ErrCheckpointCorrupt, got %v", name, err)
		}
	}
}

// TestUncheckpointableConfig: function-valued configs have no canonical
// identity and refuse checkpointing up front.
func TestUncheckpointableConfig(t *testing.T) {
	cfg := ckptCfg()
	cfg.CoreTweak = func(*cpu.Config) {}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	if err := h.EnableCheckpoints(1000, func(*Checkpoint) {}); err == nil {
		t.Fatal("EnableCheckpoints accepted an unfingerprintable config")
	}
	if _, err := h.Checkpoint(); err == nil {
		t.Fatal("Checkpoint accepted an unfingerprintable config")
	}
}

// TestCycleFailpointCrashesRun: arming the sim/cycle failpoint makes a run
// panic at a cycle boundary — the hook the service's retry path and the
// chaos suite inject crashes through.
func TestCycleFailpointCrashesRun(t *testing.T) {
	p, ok := fault.Lookup("sim/cycle")
	if !ok {
		t.Fatal("sim/cycle failpoint not registered")
	}
	p.Enable(fault.Trigger{After: 50, Once: true})
	defer p.Disable()

	sys, err := New(ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	h := sys.NewRunHandle(0, nil)
	panicked := func() (v any) {
		defer func() { v = recover() }()
		_, _ = h.Run()
		return nil
	}()
	ip, ok := panicked.(*fault.InjectedPanic)
	if !ok || ip.Site != "sim/cycle" {
		t.Fatalf("want injected panic at sim/cycle, got %v", panicked)
	}

	// Disarmed, the same config runs to completion (the worker-retry story).
	p.Disable()
	sys2, err := New(ckptCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(); err != nil {
		t.Fatalf("run after disarm failed: %v", err)
	}
}
