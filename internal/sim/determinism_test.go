package sim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// skipWorkloads are the configurations the event-horizon scheduler is proven
// against: the paper's homogeneous 4x mcf point, a high-memory-intensity
// heterogeneous mix, and variants exercising the EMC, prefetching, and
// runahead (each adds its own wake-up sources the horizon must respect).
var skipWorkloads = []struct {
	name       string
	benchmarks []string
	tweak      func(*Config)
}{
	{"mcf-x4", []string{"mcf", "mcf", "mcf", "mcf"}, nil},
	{"mcf-x4-emc", []string{"mcf", "mcf", "mcf", "mcf"},
		func(c *Config) { c.EMCEnabled = true }},
	{"hmix-emc-ghb", []string{"mcf", "lbm", "milc", "omnetpp"},
		func(c *Config) {
			c.EMCEnabled = true
			c.Prefetcher = PFGHB
		}},
	{"hmix-runahead-stream", []string{"omnetpp", "milc", "soplex", "libquantum"},
		func(c *Config) {
			c.RunaheadEnabled = true
			c.Prefetcher = PFStream
		}},
	{"mcf-x4-refresh-heavy", []string{"mcf", "mcf", "mcf", "mcf"},
		func(c *Config) {
			c.EMCEnabled = true
			// TREFI cut ~30x below the DDR3 default so refresh epochs land
			// inside nearly every window the scheduler wants to skip: the
			// refresh-aware horizon bound and the lazy catch-up path
			// (DESIGN.md §13.3) become load-bearing for every skip decision
			// instead of rare events.
			c.Timing.TREFI = 800
			c.Timing.TRFC = 128
		}},
}

func skipCfg(benchmarks []string, seed uint64) Config {
	cfg := Default(benchmarks)
	cfg.InstrPerCore = 3000
	cfg.MaxCycles = 5_000_000
	cfg.Seed = seed
	return cfg
}

// runHashed runs one configuration to completion and returns the Result hash
// plus the number of cycles the scheduler fast-forwarded over.
func runHashed(t *testing.T, cfg Config) (hash uint64, cycles, skipped uint64) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r.Hash(), r.Cycles, sys.SkippedCycles()
}

// runTraced runs one configuration with lifecycle tracing and returns the
// Result hash plus the number of stage events the tracer stamped.
func runTraced(t *testing.T, cfg Config, sampleEvery uint64) (hash, events uint64) {
	t.Helper()
	cfg.Obs = obs.Config{Enabled: true, SampleEvery: sampleEvery}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r.Hash(), sys.Tracer().EventCount()
}

// TestCycleSkipDeterminism is the correctness guard for cycle skipping: for
// every workload x seed, a run with the event-horizon scheduler enabled must
// produce a Result bit-identical (same FNV hash over every stat) to a run
// that ticks every cycle. It also proves the scheduler actually skips — a
// vacuous pass with zero skipped cycles is a failure.
func TestCycleSkipDeterminism(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	for _, w := range skipWorkloads {
		for _, seed := range seeds {
			w, seed := w, seed
			t.Run(fmt.Sprintf("%s/seed%d", w.name, seed), func(t *testing.T) {
				t.Parallel()
				cfg := skipCfg(w.benchmarks, seed)
				if w.tweak != nil {
					w.tweak(&cfg)
				}

				cfg.DisableCycleSkip = false
				fastHash, fastCycles, skipped := runHashed(t, cfg)

				cfg.DisableCycleSkip = true
				slowHash, slowCycles, noSkip := runHashed(t, cfg)

				if noSkip != 0 {
					t.Fatalf("DisableCycleSkip run skipped %d cycles", noSkip)
				}
				if fastCycles != slowCycles {
					t.Fatalf("cycle counts diverge: skip-on %d, skip-off %d",
						fastCycles, slowCycles)
				}
				if fastHash != slowHash {
					t.Fatalf("result hashes diverge: skip-on %#x, skip-off %#x",
						fastHash, slowHash)
				}
				if skipped == 0 {
					t.Fatalf("scheduler never skipped a cycle over %d total", fastCycles)
				}
				t.Logf("cycles=%d skipped=%d (%.1f%%)", fastCycles, skipped,
					100*float64(skipped)/float64(fastCycles))

				// Tracing is purely observational: with any sampling rate the
				// Result must stay bit-identical to the untraced run, and the
				// tracer must stamp the same events with skipping on or off.
				for _, sample := range []uint64{1, 8} {
					cfg.DisableCycleSkip = false
					onHash, onEvents := runTraced(t, cfg, sample)
					cfg.DisableCycleSkip = true
					offHash, offEvents := runTraced(t, cfg, sample)
					if onHash != fastHash || offHash != fastHash {
						t.Fatalf("sample=%d: traced hashes diverge from untraced: skip-on %#x, skip-off %#x, untraced %#x",
							sample, onHash, offHash, fastHash)
					}
					if onEvents != offEvents {
						t.Fatalf("sample=%d: trace event counts diverge: skip-on %d, skip-off %d",
							sample, onEvents, offEvents)
					}
					if onEvents == 0 {
						t.Fatalf("sample=%d: tracer stamped no events", sample)
					}
				}
			})
		}
	}
}

// TestConcurrentSystemsIndependent runs several Systems concurrently to
// verify that the per-System/per-Ring/per-Controller free lists introduce no
// shared state (this test is the main -race target for the pooling work).
func TestConcurrentSystemsIndependent(t *testing.T) {
	cfg := skipCfg([]string{"mcf", "lbm", "milc", "omnetpp"}, 3)
	cfg.EMCEnabled = true
	cfg.Prefetcher = PFGHB
	want, _, _ := runHashed(t, cfg)

	const runs = 4
	hashes := make([]uint64, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, err := New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			r, err := sys.Run()
			if err != nil {
				t.Error(err)
				return
			}
			hashes[i] = r.Hash()
		}(i)
	}
	wg.Wait()
	for i, h := range hashes {
		if h != want {
			t.Errorf("concurrent run %d hash %#x differs from serial %#x", i, h, want)
		}
	}
}
