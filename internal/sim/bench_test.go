package sim

import "testing"

// benchSystem builds a System whose cores never exhaust their trace (the
// generators stream, so a huge budget costs nothing) and warms it past the
// cold-start transient so b.N steps measure steady-state stepping.
func benchSystem(b *testing.B, benchmarks []string, tweak func(*Config)) *System {
	b.Helper()
	cfg := Default(benchmarks)
	cfg.InstrPerCore = 1 << 40
	cfg.MaxCycles = ^uint64(0) >> 1
	if tweak != nil {
		tweak(&cfg)
	}
	sys, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		sys.Step()
	}
	return sys
}

// BenchmarkStepIdle measures System.Step on the paper's homogeneous 4x mcf
// point with the EMC: long memory stalls dominate, so most calls hit the
// event-horizon fast path. This is the headline allocs/op benchmark for the
// zero-allocation work — steady-state stepping should not allocate.
func BenchmarkStepIdle(b *testing.B) {
	sys := benchSystem(b, []string{"mcf", "mcf", "mcf", "mcf"},
		func(c *Config) { c.EMCEnabled = true })
	b.ReportAllocs()
	b.ResetTimer()
	start := sys.Now()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
	// One Step call can fast-forward many cycles, so ns/op alone overstates
	// the cost as skip windows grow; cycles/op recovers ns per simulated
	// cycle (= ns/op ÷ cycles/op), the number that tracks wall-clock.
	b.ReportMetric(float64(sys.Now()-start)/float64(b.N), "cycles/op")
	b.ReportMetric(float64(sys.SkippedCycles()), "skipped")
}

// BenchmarkStepSaturated measures System.Step under a heterogeneous
// memory-intensive mix with the GHB prefetcher and the EMC: the rings, LLC
// queues, and DRAM scheduler stay busy, so nearly every cycle must tick.
func BenchmarkStepSaturated(b *testing.B) {
	sys := benchSystem(b, []string{"mcf", "lbm", "milc", "omnetpp"},
		func(c *Config) {
			c.EMCEnabled = true
			c.Prefetcher = PFGHB
		})
	b.ReportAllocs()
	b.ResetTimer()
	start := sys.Now()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
	b.ReportMetric(float64(sys.Now()-start)/float64(b.N), "cycles/op")
}
