package sim

import (
	"errors"
	"sync/atomic"
)

// ErrCancelled is returned by RunHandle.Run when Cancel stopped the run
// before every core retired its budget. The Result returned alongside it
// carries the statistics collected up to the cancellation point.
var ErrCancelled = errors.New("sim: run cancelled")

// Progress is one periodic snapshot of an in-flight run, delivered to the
// RunHandle's callback on the simulation goroutine.
type Progress struct {
	// Cycles is the current simulated cycle.
	Cycles uint64
	// Retired is the total instruction count retired across cores.
	Retired uint64
	// TargetInstrs is the run's total instruction budget
	// (InstrPerCore x cores); Retired/TargetInstrs approximates completion.
	TargetInstrs uint64
	// IPC is the aggregate instructions per cycle so far.
	IPC float64
}

// ProgressFunc receives progress snapshots. It runs on the simulation
// goroutine and must not block; hand the value off if it is consumed
// elsewhere.
type ProgressFunc func(Progress)

// RunHandle runs a System with cooperative cancellation and periodic
// progress callbacks. Cancel is safe from any goroutine; everything else
// belongs to the goroutine calling Run. The handle is purely observational:
// an uncancelled handled run produces a Result bit-identical to System.Run
// (TestRunHandleDeterminism pins this).
type RunHandle struct {
	sys      *System
	interval uint64
	fn       ProgressFunc
	next     uint64
	canceled atomic.Bool

	// Checkpoint support (see checkpoint.go): fp caches the config
	// fingerprint; ckptFn fires every ckptEvery cycles when enabled.
	fp        string
	ckptEvery uint64
	ckptNext  uint64
	ckptFn    CheckpointFunc
}

// defaultProgressInterval is the progress cadence in cycles when the caller
// passes 0. It matches the order of magnitude of the interval-counter log.
const defaultProgressInterval = 50_000

// NewRunHandle wraps the System for a cancellable run. fn (may be nil) is
// called every interval cycles (0 = a default cadence), with the same
// fire-on-first-cycle-at-or-after-boundary rule as the interval counter log
// — under the event-horizon scheduler whole stretches of cycles are skipped,
// so boundaries are not hit exactly.
func (s *System) NewRunHandle(interval uint64, fn ProgressFunc) *RunHandle {
	if interval == 0 {
		interval = defaultProgressInterval
	}
	return &RunHandle{sys: s, interval: interval, fn: fn}
}

// Cancel requests cooperative cancellation; the run stops at the next cycle
// boundary. Safe to call from any goroutine, before or during Run, and more
// than once.
func (h *RunHandle) Cancel() { h.canceled.Store(true) }

// Cancelled reports whether Cancel has been called.
func (h *RunHandle) Cancelled() bool { return h.canceled.Load() }

// System returns the wrapped simulator.
func (h *RunHandle) System() *System { return h.sys }

// Run simulates until every core finishes, MaxCycles is exceeded, or Cancel
// is called. On cancellation it returns the partial Result and ErrCancelled.
func (h *RunHandle) Run() (*Result, error) { return h.sys.runLoop(h) }

// snapshot builds the current Progress.
func (h *RunHandle) snapshot(s *System) Progress {
	var retired uint64
	for _, c := range s.cores {
		retired += c.Stats.Retired
	}
	p := Progress{
		Cycles:       s.now,
		Retired:      retired,
		TargetInstrs: s.cfg.InstrPerCore * uint64(len(s.cores)),
	}
	if s.now > 0 {
		p.IPC = float64(retired) / float64(s.now)
	}
	return p
}

// emit fires the progress callback and advances the interval deadline.
func (h *RunHandle) emit(s *System) {
	h.fn(h.snapshot(s))
	h.next = s.now - s.now%h.interval + h.interval
}
