package sim

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// Checkpoint is a crash-safe resume point for a run. The simulator is fully
// deterministic in its Config, so a checkpoint does not serialize the
// microarchitectural state — it names it: (fingerprint, cycle) identifies
// the state exactly, and ResumeFrom reconstructs it by deterministic replay.
// Digest is a divergence guard: a counter digest taken at the checkpoint
// cycle that replay must reproduce bit-exactly, so a config drift, a
// nondeterminism bug, or a corrupted checkpoint is detected instead of
// silently producing a different run (DESIGN.md §11.2).
type Checkpoint struct {
	// Fingerprint is the canonical content address of the Config
	// (Config.Fingerprint); ResumeFrom refuses a mismatched config.
	Fingerprint string `json:"fingerprint"`
	// Cycle is the simulated cycle the checkpoint was taken at (always a
	// cycle boundary: between two scheduler steps).
	Cycle uint64 `json:"cycle"`
	// Retired is the total retired-instruction count at Cycle (progress
	// reporting for resumed runs; also part of what Digest covers).
	Retired uint64 `json:"retired"`
	// Digest is the counter digest the replayed state must match.
	Digest uint64 `json:"digest"`
}

// Checkpoint encoding: magic + version + length-framed JSON payload + CRC32
// over the payload, so torn or bit-flipped checkpoint files fail loudly in
// Decode instead of resuming a wrong run.
const ckptVersion = 1

var ckptMagic = [4]byte{'E', 'M', 'C', 'K'}

// ErrCheckpointCorrupt reports an Encode frame that failed validation
// (magic, version, length, or CRC).
var ErrCheckpointCorrupt = errors.New("sim: corrupt checkpoint")

// ErrCheckpointDiverged reports a replay whose state digest did not match
// the checkpoint — the config, code, or checkpoint changed since it was
// taken.
var ErrCheckpointDiverged = errors.New("sim: checkpoint divergence")

// Encode serializes the checkpoint (versioned, CRC-guarded).
func (c *Checkpoint) Encode() []byte {
	payload, err := json.Marshal(c)
	if err != nil {
		// Checkpoint has only scalar fields; Marshal cannot fail.
		panic(err)
	}
	buf := make([]byte, 0, len(payload)+14)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf
}

// DecodeCheckpoint validates and decodes an Encode frame.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 10 || [4]byte(data[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != ckptVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCheckpointCorrupt, v, ckptVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[6:10]))
	if len(data) < 10+n+4 {
		return nil, fmt.Errorf("%w: truncated", ErrCheckpointCorrupt)
	}
	payload := data[10 : 10+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[10+n:10+n+4]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCheckpointCorrupt)
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	return &c, nil
}

// stateDigest digests every deterministic counter the run has accumulated:
// system stats, per-core stats, DRAM/EMC stats, and ring stats. Two runs of
// one config are in identical states at a given cycle iff these match —
// it is the mid-run analogue of Result.Hash.
func (s *System) stateDigest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%+v|%+v|%+v", s.now, s.skipped, s.st, s.ctrl.Stats, s.data.Stats)
	for _, c := range s.cores {
		fmt.Fprintf(h, "|%+v", c.Stats)
	}
	for _, mc := range s.mcs {
		fmt.Fprintf(h, "|%+v", mc.ctrl.Stats)
		if mc.emc != nil {
			fmt.Fprintf(h, "|%+v", mc.emc.Stats)
		}
	}
	return h.Sum64()
}

// Checkpoint captures the current cycle boundary as a resume point. It is
// legal from the progress/checkpoint callbacks (which run on the simulation
// goroutine between steps) or whenever Run is not executing. Configs without
// a canonical identity (CoreTweak/OnChain set) cannot be checkpointed.
func (h *RunHandle) Checkpoint() (*Checkpoint, error) {
	if h.fp == "" {
		fp, err := h.sys.cfg.Fingerprint()
		if err != nil {
			return nil, err
		}
		h.fp = fp
	}
	var retired uint64
	for _, c := range h.sys.cores {
		retired += c.Stats.Retired
	}
	return &Checkpoint{
		Fingerprint: h.fp,
		Cycle:       h.sys.now,
		Retired:     retired,
		Digest:      h.sys.stateDigest(),
	}, nil
}

// CheckpointFunc receives periodic checkpoints on the simulation goroutine;
// like ProgressFunc it must not block (hand the value off — typically to a
// writer that persists cp.Encode()).
type CheckpointFunc func(*Checkpoint)

// EnableCheckpoints asks the handle to emit a checkpoint every `every`
// cycles (same boundary rule as progress callbacks). Must be called before
// Run. The error reports an uncheckpointable config up front.
func (h *RunHandle) EnableCheckpoints(every uint64, fn CheckpointFunc) error {
	fp, err := h.sys.cfg.Fingerprint()
	if err != nil {
		return err
	}
	if every == 0 {
		every = defaultProgressInterval
	}
	h.fp = fp
	h.ckptEvery = every
	h.ckptNext = every
	h.ckptFn = fn
	return nil
}

// emitCheckpoint fires the checkpoint callback and advances its deadline.
func (h *RunHandle) emitCheckpoint(s *System) {
	cp, err := h.Checkpoint()
	if err == nil {
		h.ckptFn(cp)
	}
	h.ckptNext = s.now - s.now%h.ckptEvery + h.ckptEvery
}

// ResumeFrom reconstructs the run state named by cp — cfg must be the same
// configuration the checkpoint was taken from — and returns a RunHandle
// positioned at cp.Cycle; calling Run on it continues to completion and
// produces a Result bit-identical to an uninterrupted run of cfg
// (TestResumeFromCheckpointDeterminism pins this).
//
// Reconstruction is deterministic replay: the simulator re-executes to
// cp.Cycle without firing callbacks, then verifies the state digest. The
// cost is proportional to the checkpoint position; what a checkpoint buys
// is not elapsed compute but crash-safety — a killed process can pick the
// run back up unattended and is guaranteed (not assumed) to land in the
// same state, or fail loudly with ErrCheckpointDiverged.
func ResumeFrom(cfg Config, cp *Checkpoint, interval uint64, fn ProgressFunc) (*RunHandle, error) {
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != cp.Fingerprint {
		return nil, fmt.Errorf("sim: checkpoint is for config %s, not %s", cp.Fingerprint, fp)
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for s.now < cp.Cycle {
		done := true
		for _, c := range s.cores {
			if !c.Finished() {
				done = false
				break
			}
		}
		if done {
			return nil, fmt.Errorf("%w: run finished at cycle %d before checkpoint cycle %d",
				ErrCheckpointDiverged, s.now, cp.Cycle)
		}
		if s.now >= cfg.MaxCycles {
			return nil, fmt.Errorf("sim: exceeded MaxCycles=%d replaying to checkpoint", cfg.MaxCycles)
		}
		s.step()
	}
	if s.now != cp.Cycle {
		return nil, fmt.Errorf("%w: replay landed on cycle %d, checkpoint at %d",
			ErrCheckpointDiverged, s.now, cp.Cycle)
	}
	if d := s.stateDigest(); d != cp.Digest {
		return nil, fmt.Errorf("%w: state digest %#x at cycle %d, checkpoint has %#x",
			ErrCheckpointDiverged, d, s.now, cp.Digest)
	}
	h := s.NewRunHandle(interval, fn)
	h.fp = fp
	h.next = s.now - s.now%h.interval + h.interval
	return h, nil
}
