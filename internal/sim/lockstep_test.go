package sim

import (
	"fmt"
	"testing"
)

func sigOf(s *System) string {
	sig := fmt.Sprintf("st=%+v", s.st)
	for i, c := range s.cores {
		sig += fmt.Sprintf("|c%d=%+v", i, c.Stats)
	}
	for i, mc := range s.mcs {
		sig += fmt.Sprintf("|mc%d=%+v q=%d", i, mc.ctrl.Stats, mc.ctrl.QueueOccupancy())
	}
	sig += fmt.Sprintf("|ring=%+v/%+v", s.ctrl.Stats, s.data.Stats)
	return sig
}

// frozenSig is sigOf minus the per-cycle stall counters that SkipIdle credits
// in bulk (those legitimately advance every ticked cycle inside a skip
// window). Everything else must stay constant across skipped cycles.
func frozenSig(s *System) string {
	st := s.st
	st.Cycles = 0
	sig := fmt.Sprintf("st=%+v", st)
	for i, c := range s.cores {
		cs := c.Stats
		cs.Cycles = 0
		cs.FetchStallCycles = 0
		cs.ROBFullCycles = 0
		cs.FullWindowStalls = 0
		cs.RemoteHeadStall = 0
		sig += fmt.Sprintf("|c%d=%+v", i, cs)
	}
	for i, mc := range s.mcs {
		sig += fmt.Sprintf("|mc%d=%+v q=%d", i, mc.ctrl.Stats, mc.ctrl.QueueOccupancy())
	}
	sig += fmt.Sprintf("|ring=%+v/%+v", s.ctrl.Stats, s.data.Stats)
	return sig
}

// TestCycleSkipLockstep runs a skip-enabled System and an every-cycle System
// side by side and, for every skip window, single-steps the reference system
// through the window verifying that no component changed state at any skipped
// cycle (per-cycle stall counters excepted — SkipIdle credits those in bulk).
// This localizes a missed wake-up to the exact cycle and component, where
// TestCycleSkipDeterminism only detects that one exists.
//
// Two variants: the EMC+prefetcher mix (every wake-up source live), and a
// refresh-heavy timing where due refresh epochs bound nearly every window —
// if the refresh-aware horizon or the blocked-load fixed point ever skipped a
// cycle that mattered, the guilty cycle is named here.
func TestCycleSkipLockstep(t *testing.T) {
	cases := []struct {
		name  string
		tweak func(*Config)
	}{
		{"hmix-emc-ghb", func(c *Config) {
			c.EMCEnabled = true
			c.Prefetcher = PFGHB
		}},
		{"hmix-refresh-heavy", func(c *Config) {
			c.EMCEnabled = true
			c.Timing.TREFI = 800
			c.Timing.TRFC = 128
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			lockstepRun(t, tc.tweak)
		})
	}
}

func lockstepRun(t *testing.T, tweak func(*Config)) {
	cfg := skipCfg([]string{"mcf", "lbm", "milc", "omnetpp"}, 1)
	tweak(&cfg)

	cfgA := cfg
	cfgA.DisableCycleSkip = false
	cfgB := cfg
	cfgB.DisableCycleSkip = true
	a, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	finished := func(s *System) bool {
		for _, c := range s.cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	}
	for !finished(a) && a.now < 200000 {
		prev := a.now
		sig0 := frozenSig(b)
		a.Step()
		for b.now < a.now-1 {
			b.Step()
			if s := frozenSig(b); s != sig0 {
				t.Fatalf("missed event: A skipped %d -> %d, but B changed state at cycle %d\nbefore: %s\nafter:  %s",
					prev, a.now, b.now, sig0, s)
			}
		}
		for b.now < a.now {
			b.Step()
		}
		sa, sb := sigOf(a), sigOf(b)
		if sa != sb {
			t.Fatalf("diverged at cycle %d (prev %d)\nA: %s\nB: %s", a.now, prev, sa, sb)
		}
	}
	t.Logf("no divergence through cycle %d", a.now)
}
