// Package hotalloc checks functions annotated //simlint:noalloc for
// allocation-inducing constructs. The simulator's cycle loop and the
// disarmed failpoint path are benchmarked at 0 allocs/op; this analyzer
// turns that measured property into a reviewable source-level contract.
//
// Annotation grammar (a directive line inside the function's doc comment):
//
//	//simlint:noalloc
//	//simlint:noalloc bench=BenchmarkStep.*
//
// The optional bench=RE names the benchmark(s) that measure the function,
// letting `benchjson -check-noalloc` cross-check BENCH_sim.json against the
// annotations. Individual constructs that are reviewed-safe (e.g. append
// into a pooled slice that never grows past its capacity) are suppressed
// line-by-line with //simlint:allocok.
//
// The check is mostly intraprocedural, with one level of propagation: when a
// //simlint:noalloc function calls an un-annotated function declared in the
// same package, the callee's body is scanned with the same construct checks
// and any unsuppressed allocation is reported at the call site. Fix either by
// annotating the callee (making the obligation explicit and transitive to its
// own callees) or by suppressing the call with //simlint:allocok when the
// callee is reviewed-safe or genuinely cold. Propagation does not recurse
// past the first un-annotated hop — deeper hot paths must be annotated link
// by link so the contract stays visible in the source.
//
// Method-value expressions (`f := r.step` — the method bound to its
// receiver, not called) are treated like function literals: the bound pair
// allocates a closure when it escapes, so the expression itself is flagged,
// and the noalloc obligation propagates through it exactly as through a
// direct call — if the bound method is un-annotated, declared in the same
// package, and allocates, that is reported too (the value exists to be
// invoked from the hot path later).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/framework"
)

// Directive is the annotation marker this analyzer (and benchjson) keys on.
const Directive = "//simlint:noalloc"

// Analyzer is the hotalloc pass.
var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-inducing constructs in //simlint:noalloc functions\n\n" +
		"Zero-alloc hot paths (cycle loop, disarmed failpoints) must not regress silently; this pass rejects appends, closures, boxing, fmt, literals and string building inside annotated functions.",
	Run: run,
}

// allocatingPkgs always allocate (or format) on call.
var allocatingPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

func run(pass *framework.Pass) error {
	st := &state{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		annotated: map[*ast.FuncDecl]bool{},
		calleeMsg: map[*ast.FuncDecl]string{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				st.decls[obj] = fn
			}
			_, st.annotated[fn] = noallocArgs(fn.Doc)
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !st.annotated[fn] {
				continue
			}
			args, _ := noallocArgs(fn.Doc)
			if err := validateArgs(args); err != "" {
				pass.Reportf(fn.Pos(), "bad %s directive on %s: %s", Directive, fn.Name.Name, err)
			}
			st.checkFunc(fn)
		}
	}
	return nil
}

// state carries the per-package indexes the propagation step needs: every
// declared function keyed by its types object, which are annotated, and a
// memo of each un-annotated callee's first unsuppressed allocation.
type state struct {
	pass      *framework.Pass
	decls     map[*types.Func]*ast.FuncDecl
	annotated map[*ast.FuncDecl]bool
	calleeMsg map[*ast.FuncDecl]string
}

type reportFn func(token.Pos, string, ...any)

// noallocArgs extracts the directive's key=value arguments from a doc
// comment, reporting whether the directive is present at all.
func noallocArgs(doc *ast.CommentGroup) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive {
			return nil, true
		}
		if strings.HasPrefix(text, Directive+" ") {
			return strings.Fields(text[len(Directive)+1:]), true
		}
	}
	return nil, false
}

func validateArgs(args []string) string {
	for _, a := range args {
		key, val, ok := strings.Cut(a, "=")
		if !ok || key != "bench" {
			return "want bench=<regexp>, got " + a
		}
		if _, err := regexp.Compile(val); err != nil {
			return "bench regexp does not compile: " + err.Error()
		}
	}
	return ""
}

func (st *state) checkFunc(fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if st.pass.Directive(pos, "//simlint:allocok") {
			return
		}
		st.pass.Reportf(pos, format, args...)
	}
	st.inspect(fn, report, true)
}

// checkCallee applies the one-level propagation rule: a call from a noalloc
// function to an un-annotated function declared in this package is reported
// when the callee's own body contains an unsuppressed allocation construct.
// Annotated callees are skipped (they carry their own obligation), as are
// callees without source in this package (builtins, imports, interface
// methods — checkCall handles the ones that always allocate).
func (st *state) checkCallee(report reportFn, call *ast.CallExpr) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = st.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = st.pass.TypesInfo.Uses[f.Sel]
	default:
		return
	}
	fnObj, ok := obj.(*types.Func)
	if !ok {
		return
	}
	decl, ok := st.decls[fnObj]
	if !ok || st.annotated[decl] {
		return
	}
	if msg := st.calleeFirstAlloc(decl); msg != "" {
		report(call.Pos(), "call to un-annotated %s, which allocates (%s); annotate it %s or suppress this call",
			fnObj.Name(), msg, Directive)
	}
}

// calleeFirstAlloc scans an un-annotated function body with the construct
// checks (no further propagation) and returns its first unsuppressed
// allocation message, or "" if the body is allocation-free. Memoized so each
// callee is scanned once per package no matter how many hot callers it has.
func (st *state) calleeFirstAlloc(fn *ast.FuncDecl) string {
	if msg, ok := st.calleeMsg[fn]; ok {
		return msg
	}
	var first string
	report := func(pos token.Pos, format string, args ...any) {
		if first != "" || st.pass.Directive(pos, "//simlint:allocok") {
			return
		}
		first = fmt.Sprintf(format, args...)
	}
	st.inspect(fn, report, false)
	st.calleeMsg[fn] = first
	return first
}

// checkMethodValue flags a bound method-value expression (`r.step` used as
// a value): the receiver/method pair allocates a closure, same as a
// function literal. When propagate is true the noalloc obligation also
// travels through the binding — an un-annotated same-package method that
// allocates is reported here, because the only reason to bind it in a hot
// path is to invoke it there.
func (st *state) checkMethodValue(report reportFn, sel *ast.SelectorExpr, caller string, propagate bool) {
	s, ok := st.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	report(sel.Pos(), "method value %s allocates a closure in noalloc function %s", sel.Sel.Name, caller)
	if !propagate {
		return
	}
	fnObj, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	decl, ok := st.decls[fnObj]
	if !ok || st.annotated[decl] {
		return
	}
	if msg := st.calleeFirstAlloc(decl); msg != "" {
		report(sel.Pos(), "method value binds un-annotated %s, which allocates (%s); annotate it %s or suppress this binding",
			fnObj.Name(), msg, Directive)
	}
}

// inspect walks fn's body applying the construct checks through report. When
// propagate is true, same-package un-annotated callees are additionally
// scanned one level deep.
func (st *state) inspect(fn *ast.FuncDecl, report reportFn, propagate bool) {
	pass := st.pass
	results := fn.Type.Results

	// calleeFuns marks selector/ident expressions that are a call's Fun —
	// those are invocations, not method values. Parents are visited before
	// children, so the mark lands before the selector itself is inspected.
	calleeFuns := map[ast.Expr]bool{}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			calleeFuns[ast.Unparen(n.Fun)] = true
			checkCall(pass, report, n)
			if propagate {
				st.checkCallee(report, n)
			}
		case *ast.SelectorExpr:
			if !calleeFuns[n] {
				st.checkMethodValue(report, n, fn.Name.Name, propagate)
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure in noalloc function %s", fn.Name.Name)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates in noalloc function %s", fn.Name.Name)
				case *types.Slice:
					report(n.Pos(), "slice literal allocates in noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n.Pos(), "address of composite literal escapes to the heap in noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				report(n.Pos(), "string concatenation allocates in noalloc function %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates in noalloc function %s", fn.Name.Name)
			}
			checkAssignBoxing(pass, report, n)
		case *ast.ValueSpec:
			if n.Type != nil {
				if tv, ok := pass.TypesInfo.Types[n.Type]; ok {
					for _, val := range n.Values {
						reportBoxing(pass, report, val, tv.Type)
					}
				}
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, report, results, n)
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine in noalloc function %s", fn.Name.Name)
		case *ast.DeferStmt:
			report(n.Pos(), "defer may allocate its frame in noalloc function %s", fn.Name.Name)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	// Conversions: string([]byte) and friends copy and allocate, and an
	// explicit conversion to an interface type boxes like any other.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convAllocates(pass, tv.Type, call.Args[0]) {
			report(call.Pos(), "conversion between string and byte/rune slice copies and allocates")
		} else {
			reportBoxing(pass, report, call.Args[0], tv.Type)
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				report(call.Pos(), "append may grow its backing array; preallocate capacity outside the hot path")
			case "new":
				report(call.Pos(), "new allocates")
			case "make":
				report(call.Pos(), "make allocates")
			}
			return
		}
	}
	if path, name, ok := pass.ImportedPath(call.Fun); ok && allocatingPkgs[path] {
		report(call.Pos(), "%s.%s allocates/formats on every call", path, name)
		return
	}
	checkArgBoxing(pass, report, call)
}

// checkArgBoxing flags non-pointer-shaped concrete values passed where the
// callee expects an interface: the conversion boxes on the heap.
func checkArgBoxing(pass *framework.Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		default:
			continue
		}
		reportBoxing(pass, report, arg, pt)
	}
}

func checkAssignBoxing(pass *framework.Pass, report func(token.Pos, string, ...any), n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		if tv, ok := pass.TypesInfo.Types[n.Lhs[i]]; ok {
			reportBoxing(pass, report, rhs, tv.Type)
		}
	}
}

func checkReturnBoxing(pass *framework.Pass, report func(token.Pos, string, ...any), results *ast.FieldList, n *ast.ReturnStmt) {
	if results == nil || len(n.Results) == 0 {
		return
	}
	var resTypes []types.Type
	for _, f := range results.List {
		t := pass.TypesInfo.Types[f.Type].Type
		for i := 0; i < max(1, len(f.Names)); i++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(resTypes) != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		reportBoxing(pass, report, res, resTypes[i])
	}
}

// reportBoxing reports when expr (a concrete, non-pointer-shaped value) is
// converted to the interface type target.
func reportBoxing(pass *framework.Pass, report func(token.Pos, string, ...any), expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return // interface-to-interface: no box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(src) {
		return // stored directly in the interface word
	}
	report(expr.Pos(), "value of type %s boxed into %s allocates", src, target)
}

// pointerShaped reports types the runtime stores directly in an interface
// word without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func convAllocates(pass *framework.Pass, to types.Type, arg ast.Expr) bool {
	from, ok := pass.TypesInfo.Types[arg]
	if !ok {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from.Type)) ||
		(isByteOrRuneSlice(to) && isStringType(from.Type))
}

func isString(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
