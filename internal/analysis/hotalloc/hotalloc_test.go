package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/src/hot")
}

// TestScanBenchRules checks the comments-only scanner benchjson uses: it
// must surface exactly the annotations carrying bench= arguments.
func TestScanBenchRules(t *testing.T) {
	// The fixture tree lives under testdata, which ScanBenchRules skips by
	// design (fixtures must not leak into real bench gating), so scan the
	// analyzer package itself via a sibling copy rooted at the fixture dir.
	rules, err := hotalloc.ScanBenchRules("testdata/src/hot")
	if err != nil {
		t.Fatalf("ScanBenchRules: %v", err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1: %+v", len(rules), rules)
	}
	r := rules[0]
	if r.Func != "Ring.push" {
		t.Errorf("rule func = %q, want Ring.push", r.Func)
	}
	if !r.Pattern.MatchString("BenchmarkPush") || r.Pattern.MatchString("BenchmarkOther") {
		t.Errorf("rule pattern %q mismatch", r.Pattern)
	}
}
