// Package hot is the hotalloc fixture: annotated functions must have every
// allocation-inducing construct flagged; un-annotated functions and
// reviewed //simlint:allocok lines must stay quiet.
package hot

import (
	"errors"
	"fmt"
)

// Ring is a pretend pooled hot-path structure.
type Ring struct {
	buf  []uint64
	head int
	tail int
}

// push is the clean negative fixture: indexed stores into preallocated
// backing, integer arithmetic, method calls — no allocation constructs.
//
//simlint:noalloc bench=BenchmarkPush
func (r *Ring) push(v uint64) bool {
	next := (r.tail + 1) % len(r.buf)
	if next == r.head {
		return false
	}
	r.buf[r.tail] = v
	r.tail = next
	return true
}

//simlint:noalloc
func grow(r *Ring, v uint64) {
	r.buf = append(r.buf, v) // want `append may grow its backing array`
}

//simlint:noalloc
func closures(vs []uint64) func() uint64 {
	f := func() uint64 { return vs[0] } // want `function literal allocates a closure`
	return f
}

//simlint:noalloc
func literals() int {
	m := map[string]int{"a": 1} // want `map literal allocates`
	s := []int{1, 2, 3}         // want `slice literal allocates`
	p := &Ring{}                // want `address of composite literal escapes`
	q := new(Ring)              // want `new allocates`
	b := make([]byte, 16)       // want `make allocates`
	return m["a"] + s[0] + p.head + q.tail + len(b)
}

//simlint:noalloc
func formatting(err error) string {
	fmt.Println(err)              // want `fmt\.Println allocates/formats`
	e := errors.New("boom")       // want `errors\.New allocates/formats`
	return fmt.Sprintf("%v", e)   // want `fmt\.Sprintf allocates/formats`
}

//simlint:noalloc
func strcat(a, b string, bs []byte) string {
	s := a + b      // want `string concatenation allocates`
	s += "suffix"   // want `string concatenation allocates`
	t := string(bs) // want `conversion between string and byte/rune slice`
	return s + t    // want `string concatenation allocates`
}

type sink interface{ put(uint64) }

//simlint:noalloc
func boxing(s sink, v uint64, anies []any) {
	var x any = v // want `value of type uint64 boxed into any allocates`
	anies[0] = x
	consume(v) // want `value of type uint64 boxed into .* allocates`
	s.put(v)   // method on interface receiver: no box, must stay quiet
}

func consume(v any) { _ = v }

//simlint:noalloc
func pointerShapedOK(r *Ring, ch chan int, anies []any) {
	// Pointer-shaped values live directly in the interface word: no alloc.
	anies[0] = r
	anies[1] = ch
	consume(r)
}

//simlint:noalloc
func control(vs []uint64) {
	go drain(vs)         // want `go statement spawns a goroutine`
	defer release(vs)    // want `defer may allocate its frame`
}

func drain([]uint64)   {}
func release([]uint64) {}

// reviewed append into pooled storage: the line-scoped allocok directive
// must suppress the diagnostic.
//
//simlint:noalloc
func pooled(r *Ring, v uint64) {
	r.buf = append(r.buf, v) //simlint:allocok pooled slice, capacity fixed at construction
}

// unannotated allocates freely and must not be flagged.
func unannotated() []int {
	out := []int{1}
	out = append(out, 2)
	return out
}

// helperAllocs is un-annotated and allocates: calls from noalloc functions
// must be flagged at the call site (one-level propagation).
func helperAllocs(r *Ring) {
	r.buf = append(r.buf, 1)
}

// helperClean is un-annotated and allocation-free: calls stay quiet.
func helperClean(r *Ring) int { return r.head }

// helperSuppressed allocates only on internally reviewed lines, so it is
// clean from a caller's point of view.
func helperSuppressed(r *Ring, v uint64) {
	r.buf = append(r.buf, v) //simlint:allocok pooled slice, capacity fixed at construction
}

//simlint:noalloc
func propagates(r *Ring) int {
	helperAllocs(r)         // want `call to un-annotated helperAllocs, which allocates \(append may grow`
	helperSuppressed(r, 2)  // internally suppressed: no call-site diagnostic
	r.push(helperAllocs2()) // want `call to un-annotated helperAllocs2, which allocates`
	return helperClean(r)
}

func helperAllocs2() uint64 { return uint64(len(make([]byte, 8))) }

//simlint:noalloc
func propagationSuppressed(r *Ring) {
	helperAllocs(r) //simlint:allocok cold slow path, reviewed
}

// propagation is one level only: callersOfCallers is un-annotated, so even
// though it calls helperAllocs, noalloc callers of IT are not flagged — the
// chain must be annotated link by link.
func callersOfCallers(r *Ring) { helperAllocs(r) }

//simlint:noalloc
func oneLevelOnly(r *Ring) {
	callersOfCallers(r)
}

// stepAllocs is an un-annotated method that allocates: binding it as a
// method value from a noalloc function must flag both the closure and the
// propagated obligation.
func (r *Ring) stepAllocs() {
	r.buf = append(r.buf, 1)
}

// stepClean is un-annotated and allocation-free: binding it still costs the
// closure, but nothing propagates.
func (r *Ring) stepClean() int { return r.head }

//simlint:noalloc
func methodValues(r *Ring) func() {
	g := r.stepClean // want `method value stepClean allocates a closure in noalloc function methodValues`
	_ = g
	return r.stepAllocs // want `method value stepAllocs allocates a closure in noalloc function methodValues` `method value binds un-annotated stepAllocs, which allocates \(append may grow`
}

// Binding an annotated method: the closure is still flagged, but the callee
// carries its own noalloc obligation so nothing propagates.
//
//simlint:noalloc
func bindAnnotated(r *Ring) func(uint64) bool {
	return r.push // want `method value push allocates a closure in noalloc function bindAnnotated`
}

//simlint:noalloc
func methodValueSuppressed(r *Ring) func() {
	return r.stepAllocs //simlint:allocok cold callback registration, reviewed
}

// Calling through the selector is NOT a method value: r.push(...) in the
// fixtures above must keep producing only call-path diagnostics.

// badGrammar has a malformed directive argument.
//
//simlint:noalloc bucket=BenchmarkX
func badGrammar() {} // want `bad //simlint:noalloc directive on badGrammar`
