package hotalloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"strings"
)

// BenchRule links one //simlint:noalloc bench=RE annotation to the
// benchmark names it governs. benchjson -check-noalloc uses these to fail
// the build when a measured benchmark contradicts its static annotation.
type BenchRule struct {
	Func    string         // annotated function name (receiver-qualified)
	Pattern *regexp.Regexp // benchmark-name regexp from bench=
	Pos     token.Position // where the annotation lives
}

// ScanBenchRules walks the Go source tree under root (skipping testdata and
// dot-directories) and returns every noalloc annotation that carries a
// bench= argument. It is a comments-only parse: cheap enough for benchjson
// to run on every bench snapshot without type-checking the module.
func ScanBenchRules(root string) ([]BenchRule, error) {
	var rules []BenchRule
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("scan %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, annotated := noallocArgs(fn.Doc)
			if !annotated {
				continue
			}
			for _, a := range args {
				key, val, ok := strings.Cut(a, "=")
				if !ok || key != "bench" {
					continue // the analyzer reports grammar errors; the scan just skips
				}
				re, err := regexp.Compile(val)
				if err != nil {
					return fmt.Errorf("%s: bad bench regexp %q: %v", fset.Position(fn.Pos()), val, err)
				}
				rules = append(rules, BenchRule{
					Func:    funcName(fn),
					Pattern: re,
					Pos:     fset.Position(fn.Pos()),
				})
			}
		}
		return nil
	})
	return rules, err
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
