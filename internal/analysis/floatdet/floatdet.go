// Package floatdet flags floating-point re-accumulation in iteration
// contexts whose visit order is not deterministic: map ranges (Go
// randomizes map order per run) and goroutine-unordered loops (a `go`
// launched per iteration writes back in scheduler order). Float addition
// and multiplication are not associative, so `sum += v` — or its
// spelled-out forms `sum = sum + v` and `sum = v + sum`, which the
// nondeterminism analyzer's map-discipline check deliberately left to this
// pass — produces low-bit differences run to run. That silently breaks the
// exact-sum attribution invariants (obs reconciliation, span phase sums)
// and the byte-identical figure tables the whole repro is pinned on.
//
// Unlike the nondeterminism analyzer this pass runs module-wide, not just
// in simulation-state packages: a float accumulated in map order anywhere
// can reach a Result, a stats row, or a fingerprint.
//
// The sanctioned fixes are (a) accumulate over a sorted key slice, (b)
// accumulate integers and convert once, or (c) collect into a slice, sort,
// then sum. A reviewed order-insensitive site (e.g. a bound that only
// feeds a >= comparison) can carry a line-scoped escape:
//
//	//simlint:floatok <why order cannot reach an output>
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the floatdet pass.
var Analyzer = &framework.Analyzer{
	Name: "floatdet",
	Doc: "flag float re-accumulation in map-order and goroutine-order dependent loops\n\n" +
		"Float ops are not associative: accumulating in nondeterministic order breaks bit-exact sums.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				// //simlint:ordered (the nondeterminism analyzer's reviewed
				// map-iteration escape) covers the float discipline too: the
				// review already argued order cannot reach an output.
				if isMapRange(pass, n) && !pass.Directive(n.Pos(), "//simlint:ordered") {
					checkBody(pass, n.Body, n.Body, "map iteration")
				}
				checkGoAccum(pass, n.Body)
			case *ast.ForStmt:
				checkGoAccum(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkGoAccum flags float accumulation into captured variables from
// goroutines launched inside a loop: the writes land in scheduler order.
func checkGoAccum(pass *framework.Pass, loopBody *ast.BlockStmt) {
	ast.Inspect(loopBody, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			// Variables declared inside the literal are per-goroutine;
			// only captured (outer) floats accumulate across goroutines.
			checkBody(pass, lit.Body, lit.Body, "per-iteration goroutine")
		}
		return true
	})
}

// checkBody reports order-dependent float accumulation inside body.
// localScope is the node within which a target variable does not count as
// shared (declared fresh each iteration / per goroutine).
func checkBody(pass *framework.Pass, body *ast.BlockStmt, localScope ast.Node, ctx string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo && ctx == "map iteration" {
			return false // the map-range walk handles nested goroutines via checkGoAccum
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, rhs := as.Lhs[0], as.Rhs[0]
		if !isFloatExpr(pass, lhs) {
			return true
		}
		obj := lhsObject(pass, lhs)
		if obj == nil || declaredWithin(obj, localScope) {
			return true
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			accum = selfReferential(pass, lhs, rhs, obj)
		}
		if !accum {
			return true
		}
		if pass.Directive(as.Pos(), "//simlint:floatok") {
			return true
		}
		pass.Reportf(as.Pos(), "float accumulation into %s inside %s: float ops are not associative, so the result depends on visit order; accumulate over a sorted order or mark //simlint:floatok with a reason",
			obj.Name(), ctx)
		return true
	})
}

// selfReferential reports whether rhs is an arithmetic expression that
// reads obj — the spelled-out `x = x + v` / `x = v * x` accumulation forms.
func selfReferential(pass *framework.Pass, lhs, rhs ast.Expr, obj types.Object) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	reads := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && pass.TypesInfo.ObjectOf(id) == obj {
			reads = true
		}
		return !reads
	})
	return reads
}

func lhsObject(pass *framework.Pass, lhs ast.Expr) types.Object {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(l)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(l.Sel)
	case *ast.IndexExpr:
		return lhsObject(pass, l.X)
	case *ast.StarExpr:
		return lhsObject(pass, l.X)
	}
	return nil
}

func declaredWithin(obj types.Object, scope ast.Node) bool {
	return scope != nil && obj.Pos() >= scope.Pos() && obj.Pos() <= scope.End()
}

func isMapRange(pass *framework.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isFloatExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
