package floatdet_test

import (
	"testing"

	"repro/internal/analysis/floatdet"
	"repro/internal/analysis/framework/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, floatdet.Analyzer, "testdata/src/floats")
}
