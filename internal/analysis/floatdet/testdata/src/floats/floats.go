// Package floats is the floatdet fixture: float accumulation in
// order-nondeterministic contexts must be flagged — compound and
// spelled-out forms alike — while sorted, integer, local, and reviewed
// accumulation stays quiet.
package floats

import (
	"sort"
	"sync"
)

// SumMap accumulates in map order: flagged.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside map iteration`
	}
	return sum
}

// SumMapSpelled is the spelled-out form the nondeterminism analyzer
// deliberately leaves to this pass.
func SumMapSpelled(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `float accumulation into sum inside map iteration`
	}
	return sum
}

// SumMapReversed reads the accumulator on the right of the operator.
func SumMapReversed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = v + sum // want `float accumulation into sum inside map iteration`
	}
	return sum
}

// ProdMap multiplies in map order: same associativity problem.
func ProdMap(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `float accumulation into p inside map iteration`
	}
	return p
}

// SumSorted is the sanctioned fix: accumulate over a sorted key slice.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// SumInt is clean: integer addition is associative.
func SumInt(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// SumLocal accumulates into a variable declared inside the range body —
// fresh per iteration, no cross-iteration order dependence.
func SumLocal(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out = append(out, local)
	}
	sort.Float64s(out)
	return out
}

// SumOrderedRange rides the nondeterminism analyzer's reviewed map-range
// escape: the review already argued order cannot reach an output.
func SumOrderedRange(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { //simlint:ordered feeds a tolerance comparison only
		sum += v
	}
	return sum
}

// SumEscaped carries this pass's own reviewed escape.
func SumEscaped(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //simlint:floatok error bound, only compared against epsilon
	}
	return sum
}

// GoAccum accumulates into a captured float from per-iteration goroutines:
// the writes land in scheduler order.
func GoAccum(vals []float64) float64 {
	var sum float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			mu.Lock()
			sum += v // want `float accumulation into sum inside per-iteration goroutine`
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	return sum
}

// GoLocal is clean: each goroutine accumulates its own local and reports
// through an indexed slot, so no cross-goroutine float order exists.
func GoLocal(vals [][]float64) []float64 {
	out := make([]float64, len(vals))
	var wg sync.WaitGroup
	for i, vs := range vals {
		wg.Add(1)
		go func(i int, vs []float64) {
			defer wg.Done()
			local := 0.0
			for _, v := range vs {
				local += v
			}
			out[i] = local
		}(i, vs)
	}
	wg.Wait()
	return out
}
