// Package sim is the dettaint fixture's sink-type package: its path ends
// in internal/sim, so Result and Config fields are result-affecting sinks.
package sim

// Result is the published simulation outcome.
type Result struct {
	Cycles float64
	Wall   float64
}

// Config is fingerprinted: every field is a content-address input.
type Config struct {
	Seed int64
}
