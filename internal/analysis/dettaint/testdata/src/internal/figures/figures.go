// Package figures is the dettaint fixture's table package: arguments to
// its exported functions must be deterministic.
package figures

// Table is the byte-identical-table emitter stand-in.
func Table(rows []string) {
	_ = rows
}
