// Package service is the dettaint fixture's durable-record package: its
// EncodeRecord matches the analyzer's durable-frame sink pattern.
package service

import "fmt"

// EncodeRecord is the durable-frame encoder stand-in.
func EncodeRecord(keys []string) []byte {
	return []byte(fmt.Sprint(keys))
}
