// Package taintsrc holds cross-package taint origins: functions whose
// return values derive from nondeterminism sources. Consumers in other
// packages inherit the taint through the module call graph.
package taintsrc

import "time"

// Stamp returns a wall-clock-derived value: callers inherit the taint.
func Stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Fixed returns a constant: clean.
func Fixed() float64 {
	return 42
}
