// Package taintuse is the dettaint fixture's sink-site package: every way
// a nondeterministic value can reach a result-affecting sink, plus the
// clean and reviewed counterparts.
package taintuse

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis/dettaint/testdata/src/internal/figures"
	"repro/internal/analysis/dettaint/testdata/src/internal/service"
	sim "repro/internal/analysis/dettaint/testdata/src/internal/sim"
	"repro/internal/analysis/dettaint/testdata/src/taintsrc"
)

// Finish writes the wall clock straight into a Result field.
func Finish(r *sim.Result, start time.Time) {
	r.Wall = time.Since(start).Seconds() // want `sim\.Result\.Wall receives a nondeterministic value`
}

// Build taints a Result composite literal.
func Build(c float64) sim.Result {
	return sim.Result{Cycles: c, Wall: float64(time.Now().UnixNano())} // want `sim\.Result\.Wall receives a nondeterministic value`
}

// Stamp inherits taint across a package boundary through a return value.
func Stamp(r *sim.Result) {
	r.Wall = taintsrc.Stamp() // want `sim\.Result\.Wall receives a nondeterministic value`
}

// Clean uses the cross-package constant: quiet.
func Clean(r *sim.Result) {
	r.Wall = taintsrc.Fixed()
}

// FirstReply binds a value in a multi-way select: which case wins is
// scheduler-dependent, so the value is interleaving-tainted.
func FirstReply(r *sim.Result, a, b chan float64) {
	var v float64
	select {
	case v = <-a:
	case v = <-b:
	}
	r.Cycles = v // want `sim\.Result\.Cycles receives a nondeterministic value`
}

// Record encodes map keys in iteration order into the durable frame.
func Record(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return service.EncodeRecord(keys) // want `durable record \(service\.EncodeRecord\) receives a nondeterministic value`
}

// RecordSorted is the sanctioned fix: quiet.
func RecordSorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return service.EncodeRecord(keys)
}

// Plot feeds order-tainted rows to a figure table.
func Plot(m map[string]float64) {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	figures.Table(rows) // want `figure/report table .*Table.* receives a nondeterministic value`
}

// Seed forks the content address: Config fields are Fingerprint inputs.
func Seed(cfg *sim.Config) {
	cfg.Seed = time.Now().UnixNano() // want `sim\.Config\.Seed \(a Fingerprint input\) receives a nondeterministic value`
}

// SeedFixed is deterministic: quiet.
func SeedFixed(cfg *sim.Config) {
	cfg.Seed = 42
}

// SeededDraw uses an explicitly-seeded generator — the repo's sanctioned
// reproducible-randomness pattern: quiet.
func SeededDraw(r *sim.Result, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r.Cycles = rng.Float64()
}

// Reviewed carries the escape with its justification: quiet.
func Reviewed(r *sim.Result, start time.Time) {
	r.Wall = time.Since(start).Seconds() //simlint:dettaintok operator-facing duration, stripped before fingerprinting
}
