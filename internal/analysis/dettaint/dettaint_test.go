package dettaint_test

import (
	"testing"

	"repro/internal/analysis/dettaint"
	"repro/internal/analysis/framework/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, dettaint.Analyzer,
		"testdata/src/internal/sim",
		"testdata/src/internal/service",
		"testdata/src/internal/figures",
		"testdata/src/taintsrc",
		"testdata/src/taintuse",
	)
}
