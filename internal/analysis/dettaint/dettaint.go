// Package dettaint tracks nondeterminism taint across package boundaries
// into result-affecting sinks. The nondeterminism analyzer bans clocks and
// entropy *inside* simulation-state packages; dettaint closes the flank it
// leaves open: a service- or cluster-layer function may legitimately read
// the wall clock (heartbeats, timeouts), but the moment such a value flows
// into a sim.Result, an EMCR record, a figure table, or a fingerprint
// input, every byte-identity claim the repro makes (Fig12 across 1 vs 3
// nodes, bit-exact resume, content-addressed caching) is silently void.
//
// Taint sources:
//
//   - wall clock and entropy: time.Now/Since/Until, the unseeded
//     math/rand[/v2] stream, crypto/rand, os.Getpid, runtime counters;
//   - goroutine-send interleaving: a value bound inside a multi-way select
//     communication clause (which ready case wins is scheduler-dependent);
//   - map iteration order: a slice appended to inside a map range and not
//     sorted before it escapes the function.
//
// Taint propagates through local def-use chains (assignments, returns) and
// across packages through function return values on the module call graph,
// to a fixpoint. Sinks:
//
//   - writes to fields of sim.Result (or composite literals of it);
//   - writes to fields of sim.Config — every Config field is a Fingerprint
//     input, so a tainted field silently forks the content address;
//   - arguments to service.EncodeRecord (the durable EMCR frame);
//   - arguments to exported functions of the figures/report packages (the
//     byte-identical tables).
//
// A reviewed flow carries a line-scoped escape with justification:
//
//	//simlint:dettaintok <why this value cannot vary run to run>
package dettaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"repro/internal/analysis/framework"
)

// Sink type/package patterns. Matched as path suffixes so the fixture
// trees (testdata/src/internal/sim) hit the same rules as the real tree.
var (
	resultPkgPattern = regexp.MustCompile(`internal/sim$`)
	tablePkgPattern  = regexp.MustCompile(`internal/(figures|report)$`)
)

// encodeRecordPattern matches the durable-record encoder's FuncKey.
var encodeRecordPattern = regexp.MustCompile(`internal/service\.EncodeRecord$`)

// Analyzer is the dettaint pass.
var Analyzer = &framework.Analyzer{
	Name: "dettaint",
	Doc: "nondeterminism taint must not reach result-affecting sinks\n\n" +
		"Wall-clock, entropy, select-interleaving, and map-order values are tracked across packages; sim.Result/Config fields, EMCR records, and figure tables must stay clean.",
	RunModule: runModule,
}

// sourceCalls maps package path -> function name -> taint description.
// A nil inner map taints every function of the package.
var sourceCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall clock (time.Now)",
		"Since": "wall clock (time.Since)",
		"Until": "wall clock (time.Until)",
	},
	"math/rand":    nil,
	"math/rand/v2": nil,
	"crypto/rand":  nil,
	"os": {
		"Getpid": "process id",
	},
	"runtime": {
		"NumGoroutine": "scheduler state",
	},
}

// randConstructors are exempt from the math/rand package taint: seeded
// explicitly, their streams are reproducible (the repo's sanctioned
// pattern).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// funcFact is the cross-package summary of one function: does its return
// value carry taint, and from where.
type funcFact struct {
	reason string
	pos    token.Pos
}

type engine struct {
	mp *framework.ModulePass
	// tainted maps FuncKey -> why its return value is tainted.
	tainted map[string]funcFact
}

func runModule(mp *framework.ModulePass) error {
	e := &engine{mp: mp, tainted: map[string]funcFact{}}

	// Fixpoint: local dataflow per function computes "returns tainted"
	// given the current cross-package facts; iterate until no function
	// changes. Monotone (facts only get added), so it terminates; the
	// module's call-graph depth bounds the iteration count in practice.
	keys := e.sortedFuncKeys()
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			if _, done := e.tainted[key]; done {
				continue
			}
			fir := e.mp.IR.Funcs[key]
			if fact, isTainted := e.analyzeReturns(fir); isTainted {
				e.tainted[key] = fact
				changed = true
			}
		}
	}

	// Final pass: sink detection with the complete fact set.
	for _, key := range keys {
		e.checkSinks(e.mp.IR.Funcs[key])
	}
	return nil
}

func (e *engine) sortedFuncKeys() []string {
	keys := make([]string, 0, len(e.mp.IR.Funcs))
	for k := range e.mp.IR.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localTaint computes the tainted objects of one function body to a local
// fixpoint, returning the taint reason per object.
func (e *engine) localTaint(fir *framework.FuncIR) map[types.Object]funcFact {
	taintedObjs := map[types.Object]funcFact{}
	for pass := 0; pass < 8; pass++ {
		changed := false
		for _, as := range fir.Assigns {
			if _, done := taintedObjs[as.Obj]; done {
				continue
			}
			var fact funcFact
			switch {
			case as.InSelect && as.RHS != nil && isCommReceive(as.RHS):
				fact = funcFact{reason: "multi-way select interleaving", pos: as.Pos}
			case as.RHS != nil:
				var ok bool
				fact, ok = e.exprTaint(fir, as.RHS, taintedObjs)
				if !ok {
					continue
				}
			default:
				continue
			}
			taintedObjs[as.Obj] = fact
			changed = true
		}
		if !changed {
			break
		}
	}
	// Map-order taint: slices appended to inside a map range, not sorted
	// afterwards, are order-tainted.
	for obj, pos := range e.mapOrderSlices(fir) {
		if _, done := taintedObjs[obj]; !done {
			taintedObjs[obj] = funcFact{reason: "map iteration order", pos: pos}
		}
	}
	return taintedObjs
}

// analyzeReturns reports whether fir returns a tainted value under the
// current cross-package facts.
func (e *engine) analyzeReturns(fir *framework.FuncIR) (funcFact, bool) {
	if len(fir.Returns) == 0 {
		return funcFact{}, false
	}
	taintedObjs := e.localTaint(fir)
	for _, ret := range fir.Returns {
		for _, res := range ret.Results {
			if fact, ok := e.exprTaint(fir, res, taintedObjs); ok {
				return funcFact{
					reason: fmt.Sprintf("%s returned by %s", fact.reason, framework.ShortKey(fir.Key)),
					pos:    fact.pos,
				}, true
			}
		}
	}
	return funcFact{}, false
}

// exprTaint reports whether expr derives from a taint source: a source
// call, a call to a tainted function, or a read of a tainted object.
func (e *engine) exprTaint(fir *framework.FuncIR, expr ast.Expr, taintedObjs map[types.Object]funcFact) (funcFact, bool) {
	var found funcFact
	ok := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal's body is its own dataflow domain
		case *ast.CallExpr:
			if reason := e.sourceCall(fir, n); reason != "" {
				found, ok = funcFact{reason: reason, pos: n.Pos()}, true
				return false
			}
			if callee := framework.CalleeOf(fir.Pkg.TypesInfo, n); callee != nil {
				if fact, hit := e.tainted[framework.FuncKey(callee)]; hit {
					found, ok = funcFact{reason: fact.reason, pos: n.Pos()}, true
					return false
				}
			}
		case *ast.Ident:
			if obj := fir.Pkg.TypesInfo.ObjectOf(n); obj != nil {
				if fact, hit := taintedObjs[obj]; hit {
					found, ok = fact, true
					return false
				}
			}
		}
		return true
	})
	return found, ok
}

// sourceCall classifies a call as a primary taint source.
func (e *engine) sourceCall(fir *framework.FuncIR, call *ast.CallExpr) string {
	callee := framework.CalleeOf(fir.Pkg.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	path, name := callee.Pkg().Path(), callee.Name()
	reasons, banned := sourceCalls[path]
	if !banned {
		return ""
	}
	if reasons == nil {
		if path == "math/rand" || path == "math/rand/v2" {
			if randConstructors[name] {
				return ""
			}
			// Methods on an explicitly-constructed generator (rand.New with
			// a fixed seed — the repo's sanctioned pattern) are reproducible;
			// only the package-level functions draw from the global,
			// process-seeded stream.
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				return ""
			}
		}
		return "entropy (" + path + "." + name + ")"
	}
	return reasons[name]
}

// isCommReceive reports whether expr is (or contains) a channel receive —
// the shape of a select comm-clause binding.
func isCommReceive(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// mapOrderSlices finds local slices appended to inside a map range and not
// passed to a recognized sort afterwards — order-tainted values.
func (e *engine) mapOrderSlices(fir *framework.FuncIR) map[types.Object]token.Pos {
	info := fir.Pkg.TypesInfo
	out := map[types.Object]token.Pos{}
	if fir.Body == nil {
		return out
	}
	ast.Inspect(fir.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(info, rng) {
			return true
		}
		if e.mp.Directive(rng.Pos(), "//simlint:ordered") {
			return true
		}
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			as, ok := b.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fn.Name != "append" {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil || declaredWithin(obj, rng.Body) {
				return true
			}
			if !sortedAfter(info, fir.Body, obj, rng.End()) {
				if _, seen := out[obj]; !seen {
					out[obj] = as.Pos()
				}
			}
			return true
		})
		return true
	})
	return out
}

// sortCalls recognizes "this slice gets sorted" call sites (mirrors the
// nondeterminism analyzer's table).
var sortCalls = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Sort": true, "Stable": true, "Slice": true, "SliceStable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func sortedAfter(info *types.Info, scope ast.Node, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || !sortCalls[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------------
// Sinks.

// checkSinks reports tainted values reaching result-affecting sinks in fir.
func (e *engine) checkSinks(fir *framework.FuncIR) {
	info := fir.Pkg.TypesInfo
	taintedObjs := e.localTaint(fir)

	report := func(pos token.Pos, sink string, fact funcFact) {
		if e.mp.Directive(pos, "//simlint:dettaintok") {
			return
		}
		e.mp.Reportf(pos, "%s receives a nondeterministic value — %s (source at %s): run-to-run bytes diverge; derive it from deterministic state or annotate //simlint:dettaintok <why>",
			sink, fact.reason, e.mp.Fset.Position(fact.pos))
	}

	// Field writes into sim.Result / sim.Config.
	for _, as := range fir.Assigns {
		if as.LHS == nil || as.RHS == nil {
			continue
		}
		sink, isSink := sinkField(info, as.LHS)
		if !isSink {
			continue
		}
		if fact, ok := e.exprTaint(fir, as.RHS, taintedObjs); ok {
			report(as.Pos, sink, fact)
		}
	}

	if fir.Body == nil {
		return
	}
	ast.Inspect(fir.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			// sim.Result{...} / sim.Config{...} literals.
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			name, pkgPath, isNamed := namedType(tv.Type)
			if !isNamed || !resultPkgPattern.MatchString(pkgPath) || (name != "Result" && name != "Config") {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				field := ""
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = "." + id.Name
					}
				}
				if fact, ok := e.exprTaint(fir, val, taintedObjs); ok {
					report(val.Pos(), "sim."+name+field, fact)
				}
			}
		case *ast.CallExpr:
			callee := framework.CalleeOf(info, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			key := framework.FuncKey(callee)
			sink := ""
			switch {
			case encodeRecordPattern.MatchString(key):
				sink = "durable record (service.EncodeRecord)"
			case tablePkgPattern.MatchString(callee.Pkg().Path()) && ast.IsExported(callee.Name()):
				sink = "figure/report table (" + framework.ShortKey(key) + ")"
			default:
				return true
			}
			for _, arg := range n.Args {
				if fact, ok := e.exprTaint(fir, arg, taintedObjs); ok {
					report(arg.Pos(), sink, fact)
				}
			}
		}
		return true
	})
}

// sinkField classifies an assignment LHS as a sim.Result / sim.Config
// field write, walking selector chains (res.Stats.Cycles hits Result via
// its base).
func sinkField(info *types.Info, lhs ast.Expr) (string, bool) {
	e := ast.Unparen(lhs)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if t := typeOf(info, sel.X); t != nil {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			if name, pkgPath, isNamed := namedType(t); isNamed && resultPkgPattern.MatchString(pkgPath) {
				if name == "Result" {
					return "sim.Result." + sel.Sel.Name, true
				}
				if name == "Config" {
					return "sim.Config." + sel.Sel.Name + " (a Fingerprint input)", true
				}
			}
		}
		e = ast.Unparen(sel.X)
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func namedType(t types.Type) (name, pkgPath string, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Name(), named.Obj().Pkg().Path(), true
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func declaredWithin(obj types.Object, scope ast.Node) bool {
	return scope != nil && obj.Pos() >= scope.Pos() && obj.Pos() <= scope.End()
}
