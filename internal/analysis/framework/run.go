package framework

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// RunPackages executes the analyzers over the loaded packages and returns
// every diagnostic, sorted by file position. Begin/End hooks bracket the
// run, so module-wide analyzers see a clean slate each call.
func RunPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	for _, a := range analyzers {
		if a.Begin != nil {
			a.Begin()
		}
	}
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	// The module IR is built once and shared by every RunModule analyzer.
	var ir *ModuleIR
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if ir == nil {
			ir = BuildModuleIR(fset, pkgs)
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     fset,
			Packages: pkgs,
			IR:       ir,
			Report:   report,
		}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	for _, a := range analyzers {
		if a.End != nil {
			name := a.Name
			a.End(func(pos token.Pos, msg string) {
				report(Diagnostic{Pos: pos, Message: msg, Analyzer: name})
			})
		}
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// Main is the multichecker entry point shared by cmd/simlint: it parses
// flags, loads the requested packages, runs the analyzers, prints
// diagnostics in the canonical file:line:col style, and returns the process
// exit code (0 clean, 1 findings, 2 usage/load failure).
func Main(w io.Writer, args []string, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		typeErr  = fs.Bool("typeerrors", false, "also print soft type errors encountered while loading")
		jsonMode = fs.Bool("json", false, "emit findings as NDJSON ({file,line,col,analyzer,message} per line) for machine consumers")
	)
	fs.Usage = func() {
		fmt.Fprintf(w, "usage: simlint [flags] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(w, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintln(w, a.Name)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	selected := analyzers
	if *runList != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(n)] = true
		}
		selected = nil
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for n := range want {
				fmt.Fprintf(w, "simlint: unknown analyzer %q\n", n)
			}
			return 2
		}
	}

	fset := token.NewFileSet()
	pkgs, err := Load(fset, "", patterns...)
	if err != nil {
		fmt.Fprintf(w, "simlint: %v\n", err)
		return 2
	}
	if *typeErr {
		for _, pkg := range pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(w, "simlint: typecheck %s: %v\n", pkg.PkgPath, e)
			}
		}
	}

	diags, err := RunPackages(fset, pkgs, selected)
	if err != nil {
		fmt.Fprintf(w, "simlint: %v\n", err)
		return 2
	}
	if *jsonMode {
		// NDJSON: one object per finding, nothing else on the stream, so
		// CI can pipe straight into jq / GitHub annotation emitters. The
		// exit code still carries the verdict (0 clean, 1 findings).
		enc := json.NewEncoder(w)
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if err := enc.Encode(JSONFinding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				return 2
			}
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// JSONFinding is the -json wire shape of one diagnostic.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Exit is a tiny indirection over os.Exit so cmd/simlint stays testable.
var Exit = os.Exit
