// Package framework is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: named analyzers run over type-checked
// packages and report position-tagged diagnostics. The repo's go.mod is
// deliberately empty (the simulator is stdlib-only), so rather than vendor
// x/tools the lint suite re-implements the thin slice it needs: a package
// loader built on `go list -export` plus the gc export-data importer, a
// per-package Pass, and an analysistest-style fixture harness
// (framework/analysistest). Analyzer Run signatures are kept shape-compatible
// with x/tools so the suite could migrate to the real framework if the
// module ever grows dependencies.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Unlike x/tools there is no Requires
// graph or fact serialization: analyzers run independently per package, and
// module-wide invariants use either Begin/End hooks that bracket a whole
// driver run or — for the dataflow analyzers — a RunModule hook that
// receives the shared SSA-lite IR (ir.go) of every loaded package at once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description (first line = summary).
	Doc string
	// Run, if non-nil, is invoked once per loaded package.
	Run func(*Pass) error
	// RunModule, if non-nil, is invoked once per driver run with every
	// loaded package and the module IR — the cross-package dataflow entry
	// point (call-graph fact propagation, module-wide def-use).
	RunModule func(*ModulePass) error
	// Begin, if non-nil, is invoked once before any package. Analyzers
	// with module-wide state reset it here so repeated driver runs (and
	// tests) start clean.
	Begin func()
	// End, if non-nil, is invoked once after every package has been
	// analyzed; report emits module-wide diagnostics. Positions are
	// interpreted against the shared FileSet of the run.
	End func(report func(token.Pos, string))
}

// Pass carries one package's load results to an analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	lines *LineComments // lazily built per-pass comment index
}

// Diagnostic is one finding, positioned in the run's shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// ModulePass carries the whole run's load results and shared IR to an
// analyzer's RunModule.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	IR       *ModuleIR
	// Report delivers one diagnostic.
	Report func(Diagnostic)

	lines map[*Package]*LineComments // lazily built per-package indexes
}

// Reportf formats and reports a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Directive reports whether a directive comment appears on pos's line or
// the line above, searching every loaded package's comment index (the
// position alone does not say which package owns the file).
func (p *ModulePass) Directive(pos token.Pos, directive string) bool {
	at := p.Fset.Position(pos)
	if p.lines == nil {
		p.lines = map[*Package]*LineComments{}
	}
	for _, pkg := range p.Packages {
		lc, ok := p.lines[pkg]
		if !ok {
			pp := &Pass{Fset: p.Fset, Files: pkg.Syntax}
			lc = pp.Comments()
			p.lines[pkg] = lc
		}
		for _, line := range []int{at.Line, at.Line - 1} {
			for _, c := range lc.byLine[at.Filename][line] {
				text := strings.TrimSpace(c.Text)
				if text == directive || strings.HasPrefix(text, directive+" ") {
					return true
				}
			}
		}
	}
	return false
}

// DirectiveReason returns the trailing free text of a directive on pos's
// line (or the line above), and whether the directive is present at all.
// Analyzers that demand a justification comment (e.g. //simlint:leakok
// <why>) use the second return to distinguish "absent" from "bare".
func (p *ModulePass) DirectiveReason(pos token.Pos, directive string) (reason string, present bool) {
	at := p.Fset.Position(pos)
	if p.lines == nil {
		p.lines = map[*Package]*LineComments{}
	}
	for _, pkg := range p.Packages {
		lc, ok := p.lines[pkg]
		if !ok {
			pp := &Pass{Fset: p.Fset, Files: pkg.Syntax}
			lc = pp.Comments()
			p.lines[pkg] = lc
		}
		for _, line := range []int{at.Line, at.Line - 1} {
			for _, c := range lc.byLine[at.Filename][line] {
				text := strings.TrimSpace(c.Text)
				if text == directive {
					return "", true
				}
				if strings.HasPrefix(text, directive+" ") {
					return strings.TrimSpace(text[len(directive):]), true
				}
			}
		}
	}
	return "", false
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// LineComments indexes every comment in a pass by file and line so
// analyzers can resolve //simlint: suppression and annotation directives.
type LineComments struct {
	byLine map[string]map[int][]*ast.Comment
}

// Comments returns the pass's comment index, building it on first use.
func (p *Pass) Comments() *LineComments {
	if p.lines != nil {
		return p.lines
	}
	lc := &LineComments{byLine: map[string]map[int][]*ast.Comment{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := lc.byLine[pos.Filename]
				if m == nil {
					m = map[int][]*ast.Comment{}
					lc.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], c)
			}
		}
	}
	p.lines = lc
	return lc
}

// Directive reports whether the given directive comment (e.g.
// "//simlint:allocok") appears on the node's line or the line above it —
// the two placements gofmt preserves for line-scoped suppressions.
func (p *Pass) Directive(pos token.Pos, directive string) bool {
	at := p.Fset.Position(pos)
	lc := p.Comments()
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, c := range lc.byLine[at.Filename][line] {
			text := strings.TrimSpace(c.Text)
			if text == directive || strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}

// ImportedPath resolves a call like pkgname.Func(...) to the imported
// package path and function name, or ok=false when fun is not a selector on
// a package name.
func (p *Pass) ImportedPath(fun ast.Expr) (path, name string, ok bool) {
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
