package framework

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// demoAnalyzer reports every function whose name starts with "Bad" — just
// enough behavior to drive the Main exit-code and output contracts.
func demoAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "demo",
		Doc:  "report functions named Bad*",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
						pass.Reportf(fd.Pos(), "bad function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// TestMainExitCodes pins the driver's contract: 0 clean, 1 findings, 2
// usage errors — the semantics make lint and the CI canary rely on.
func TestMainExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
		out  string // required output substring ("" = don't care)
	}{
		{"findings", []string{"./testdata/src/demo"}, 1, "bad function BadThing"},
		{"findings-count", []string{"./testdata/src/demo"}, 1, "1 finding(s)"},
		{"clean", []string{"./testdata/src/clean"}, 0, ""},
		{"run-filter-hit", []string{"-run", "demo", "./testdata/src/demo"}, 1, "bad function"},
		{"no-patterns", []string{}, 2, "usage:"},
		{"unknown-analyzer", []string{"-run", "nosuch", "./testdata/src/demo"}, 2, "unknown analyzer"},
		{"bad-flag", []string{"-definitely-not-a-flag"}, 2, ""},
		{"list", []string{"-list"}, 0, "demo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			exit := Main(&buf, tc.args, []*Analyzer{demoAnalyzer()})
			if exit != tc.exit {
				t.Fatalf("exit = %d, want %d (output: %q)", exit, tc.exit, buf.String())
			}
			if tc.out != "" && !strings.Contains(buf.String(), tc.out) {
				t.Fatalf("output %q does not contain %q", buf.String(), tc.out)
			}
		})
	}
}

// TestMainJSON pins the -json NDJSON shape: one object per finding with
// file/line/col/analyzer/message, nothing else on the stream, and the same
// exit-code semantics as text mode.
func TestMainJSON(t *testing.T) {
	var buf bytes.Buffer
	exit := Main(&buf, []string{"-json", "./testdata/src/demo"}, []*Analyzer{demoAnalyzer()})
	if exit != 1 {
		t.Fatalf("exit = %d, want 1 (output: %q)", exit, buf.String())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly 1 NDJSON line, got %d: %q", len(lines), buf.String())
	}
	var f JSONFinding
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("line is not valid JSON: %v (%q)", err, lines[0])
	}
	if filepath.Base(f.File) != "demo.go" {
		t.Errorf("file = %q, want .../demo.go", f.File)
	}
	if f.Line <= 0 || f.Col <= 0 {
		t.Errorf("line/col = %d/%d, want positive", f.Line, f.Col)
	}
	if f.Analyzer != "demo" {
		t.Errorf("analyzer = %q, want demo", f.Analyzer)
	}
	if !strings.Contains(f.Message, "bad function BadThing") {
		t.Errorf("message = %q, want bad function BadThing", f.Message)
	}

	buf.Reset()
	if exit := Main(&buf, []string{"-json", "./testdata/src/clean"}, []*Analyzer{demoAnalyzer()}); exit != 0 {
		t.Fatalf("clean -json exit = %d, want 0", exit)
	}
	if buf.Len() != 0 {
		t.Fatalf("clean -json output = %q, want empty stream", buf.String())
	}
}

// TestPropagate pins the worklist fixpoint the module analyzers build on:
// facts flow callee -> caller transitively and nowhere else.
func TestPropagate(t *testing.T) {
	m := &ModuleIR{Callers: map[string][]string{
		"pkg.leaf":   {"pkg.mid"},
		"pkg.mid":    {"pkg.top", "pkg.side"},
		"pkg.other":  {"pkg.unrelated"},
		"pkg.cycleA": {"pkg.cycleB"},
		"pkg.cycleB": {"pkg.cycleA"},
	}}
	got := m.Propagate(map[string]bool{"pkg.leaf": true, "pkg.cycleA": true})
	for _, want := range []string{"pkg.leaf", "pkg.mid", "pkg.top", "pkg.side", "pkg.cycleA", "pkg.cycleB"} {
		if !got[want] {
			t.Errorf("fact missing on %s", want)
		}
	}
	for _, not := range []string{"pkg.other", "pkg.unrelated"} {
		if got[not] {
			t.Errorf("fact leaked to %s", not)
		}
	}
}

// TestFuncKeyAndPkgOf pins the stable-key grammar that cross-package facts
// are addressed by.
func TestFuncKeyAndPkgOf(t *testing.T) {
	cases := []struct{ key, pkg string }{
		{"repro/internal/cluster.(Node).Close", "repro/internal/cluster"},
		{"repro/internal/service.EncodeRecord", "repro/internal/service"},
		{"time.Now", "time"},
	}
	for _, tc := range cases {
		if got := PkgOf(tc.key); got != tc.pkg {
			t.Errorf("PkgOf(%q) = %q, want %q", tc.key, got, tc.pkg)
		}
	}
}
