package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the cross-package dataflow layer: an SSA-lite IR built once
// per driver run from every loaded package. It deliberately stops far short
// of real SSA — no phi nodes, no basic blocks — because the module's
// analyzers need exactly three things: per-function def-use chains (which
// objects a function assigns, from which expressions), a module-wide call
// graph with stable cross-package function keys, and a worklist fixpoint
// helper to push analyzer-defined facts along that graph (the modular-facts
// idea from go/analysis, minus the serialization, since the whole module is
// loaded in one process anyway).

// FuncKey is the stable, cross-package identity of a function or method:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for methods
// (pointerness of the receiver is erased — lock-order and taint facts do
// not care which method set resolved the call). Keys are strings, not
// *types.Func, because each package is type-checked against gc export data:
// the same method seen from two importing packages is two distinct objects.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := "?"
		switch t := t.(type) {
		case *types.Named:
			name = t.Obj().Name()
		case *types.Alias:
			name = t.Obj().Name()
		case interface{ Obj() *types.TypeName }: // future named-like types
			name = t.Obj().Name()
		default:
			name = t.String()
		}
		return fmt.Sprintf("%s.(%s).%s", pkg, name, fn.Name())
	}
	return pkg + "." + fn.Name()
}

// ObjKey is the cross-package identity of a variable or field. Like
// FuncKey it exists because object pointers are not comparable across
// per-package type-checks; the type string disambiguates same-named fields
// of different types within one package.
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "#" + obj.Type().String()
}

// ExprKey resolves an lvalue-ish expression to a stable cross-package
// identity usable as a map key:
//
//   - x.f where x has a named (possibly pointered) type T in package p
//     yields "p.T.f" — the same key no matter which package the selector
//     appears in, which plain object identity cannot give (each package is
//     type-checked against export data, so the field object differs);
//   - a package-level var v in package p yields "p.v";
//   - a local var yields "p.v@<offset>" (unique per declaration; locals are
//     never visible cross-package, the offset only separates shadows).
//
// ok=false for expressions with no stable identity (map/slice elements
// through computed indexes, results of calls, ...).
func ExprKey(fset *token.FileSet, info *types.Info, e ast.Expr) (key string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		v, isVar := obj.(*types.Var)
		if !isVar || v.Pkg() == nil {
			return "", false
		}
		if v.IsField() {
			// Unqualified field reference inside a method (embedded or
			// promoted): no receiver chain to name the owner; fall back to
			// the declaring position, which is stable for source-loaded
			// packages.
			pos := fset.Position(v.Pos())
			return fmt.Sprintf("%s.%s@%d", v.Pkg().Path(), v.Name(), pos.Offset), true
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		pos := fset.Position(v.Pos())
		return fmt.Sprintf("%s.%s@%d", v.Pkg().Path(), v.Name(), pos.Offset), true
	case *ast.SelectorExpr:
		obj := info.ObjectOf(x.Sel)
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", false
		}
		if !v.IsField() {
			// pkgname.Var qualified reference.
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), true
			}
			return "", false
		}
		t := exprTypeOf(info, x.X)
		if t == nil {
			return "", false
		}
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil {
			return "", false
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
	case *ast.IndexExpr:
		return ExprKey(fset, info, x.X)
	case *ast.StarExpr:
		return ExprKey(fset, info, x.X)
	}
	return "", false
}

// ShortKey trims the module-path prefix off an ExprKey or FuncKey for
// readable diagnostics: "repro/internal/cluster.Node.mu" -> "cluster.Node.mu".
func ShortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func exprTypeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Assign is one def in a function's def-use chain: the object written, the
// expression it was written from (nil for `var x T` and for positions where
// no single RHS exists, e.g. multi-value unpacking), and the position.
type Assign struct {
	Obj types.Object
	LHS ast.Expr // nil when the def comes from a ValueSpec name
	RHS ast.Expr
	Pos token.Pos
	// InSelect is true when the def sits in a select CommClause of a
	// select with more than one communication case — the value's identity
	// depends on goroutine-send interleaving.
	InSelect bool
}

// CallSite is one call in a function body, resolved where possible.
type CallSite struct {
	Call      *ast.CallExpr
	Callee    *types.Func // nil for func-valued expressions and builtins
	CalleeKey string      // "" when unresolved
}

// FuncIR is the per-function slice of the IR.
type FuncIR struct {
	Key  string
	Name string
	Pkg  *Package
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Body *ast.BlockStmt

	Assigns []Assign
	Returns []*ast.ReturnStmt
	Calls   []CallSite
	Gos     []*ast.GoStmt
}

// ModuleIR holds the whole loaded module's IR plus the call graph.
type ModuleIR struct {
	Fset     *token.FileSet
	Packages []*Package

	// Funcs maps FuncKey -> IR for every declared function/method whose
	// body was loaded from source. Function literals are not keyed (no
	// stable identity) but appear in Lits.
	Funcs map[string]*FuncIR
	// Lits holds the IR of every function literal, in source order.
	Lits []*FuncIR
	// Callers is the reverse call graph: callee FuncKey -> caller FuncKeys
	// (declared functions only; a call made inside a function literal is
	// attributed to the literal's enclosing declared function).
	Callers map[string][]string
}

// BuildModuleIR constructs the IR for every loaded package. Cost is one AST
// walk per file; analyzers share the result through the ModulePass.
func BuildModuleIR(fset *token.FileSet, pkgs []*Package) *ModuleIR {
	m := &ModuleIR{
		Fset:     fset,
		Packages: pkgs,
		Funcs:    map[string]*FuncIR{},
		Callers:  map[string][]string{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				key := FuncKey(obj)
				if key == "" {
					key = pkg.PkgPath + "." + fd.Name.Name
				}
				fir := &FuncIR{Key: key, Name: fd.Name.Name, Pkg: pkg, Decl: fd, Body: fd.Body}
				m.scanBody(fir, pkg, fd.Body, key)
				m.Funcs[key] = fir
			}
		}
	}
	// Deterministic reverse edges (map insertion order varies with the
	// Funcs map above only through pkgs/file order, which is sorted by the
	// loader; still, sort callers for stable diagnostics).
	for k := range m.Callers {
		sort.Strings(m.Callers[k])
	}
	return m
}

// scanBody fills fir's def-use, call, return, and go-statement chains, and
// recursively builds literal IRs. Nested function literals get their own
// FuncIR (appended to Lits) whose Key is the enclosing declared function's
// key plus a "$lit" suffix; their calls contribute reverse edges under the
// enclosing key so fact propagation sees through `go func(){...}()` bodies.
func (m *ModuleIR) scanBody(fir *FuncIR, pkg *Package, body *ast.BlockStmt, enclosingKey string) {
	// selectDepth tracks whether the walk is inside a multi-way select.
	var walk func(n ast.Node, inSelect bool) bool
	var inspect func(n ast.Node, inSelect bool)
	inspect = func(n ast.Node, inSelect bool) {
		ast.Inspect(n, func(n ast.Node) bool { return walk(n, inSelect) })
	}
	walk = func(n ast.Node, inSelect bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &FuncIR{
				Key:  enclosingKey + "$lit",
				Name: fir.Name + "$lit",
				Pkg:  pkg,
				Lit:  n,
				Body: n.Body,
			}
			m.scanBody(lit, pkg, n.Body, enclosingKey)
			m.Lits = append(m.Lits, lit)
			// The literal's contents also belong to the enclosing function's
			// chains: a `go func(){...}` body is still this function's code
			// as far as lock/taint/stop facts are concerned.
			fir.Assigns = append(fir.Assigns, lit.Assigns...)
			fir.Calls = append(fir.Calls, lit.Calls...)
			fir.Gos = append(fir.Gos, lit.Gos...)
			return false
		case *ast.SelectStmt:
			multi := n.Body != nil && len(n.Body.List) > 1
			for _, cl := range n.Body.List {
				inspect(cl, inSelect || multi)
			}
			return false
		case *ast.GoStmt:
			fir.Gos = append(fir.Gos, n)
			return true
		case *ast.ReturnStmt:
			fir.Returns = append(fir.Returns, n)
			return true
		case *ast.CallExpr:
			cs := CallSite{Call: n}
			if callee := CalleeOf(pkg.TypesInfo, n); callee != nil {
				cs.Callee = callee
				cs.CalleeKey = FuncKey(callee)
				m.Callers[cs.CalleeKey] = appendUnique(m.Callers[cs.CalleeKey], enclosingKey)
			}
			fir.Calls = append(fir.Calls, cs)
			return true
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				obj := assignedObject(pkg.TypesInfo, lhs)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // multi-value unpack: all LHS taint from it
				}
				fir.Assigns = append(fir.Assigns, Assign{
					Obj: obj, LHS: lhs, RHS: rhs, Pos: lhs.Pos(), InSelect: inSelect,
				})
			}
			return true
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := pkg.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(n.Values) == len(n.Names) {
					rhs = n.Values[i]
				} else if len(n.Values) == 1 {
					rhs = n.Values[0]
				}
				fir.Assigns = append(fir.Assigns, Assign{
					Obj: obj, RHS: rhs, Pos: name.Pos(), InSelect: inSelect,
				})
			}
			return true
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if obj := assignedObject(pkg.TypesInfo, e); obj != nil {
					fir.Assigns = append(fir.Assigns, Assign{
						Obj: obj, LHS: e, RHS: n.X, Pos: e.Pos(), InSelect: inSelect,
					})
				}
			}
			return true
		}
		return true
	}
	inspect(body, false)
}

// CalleeOf resolves a call expression to the *types.Func it invokes:
// package functions, methods (through selections), and same-package
// identifiers. Function values, builtins, and type conversions yield nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified call pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// assignedObject resolves the object defined or used by an assignment LHS.
func assignedObject(info *types.Info, lhs ast.Expr) types.Object {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return nil
		}
		if obj := info.Defs[l]; obj != nil {
			return obj
		}
		return info.Uses[l]
	case *ast.SelectorExpr:
		return info.Uses[l.Sel]
	case *ast.StarExpr:
		return assignedObject(info, l.X)
	case *ast.IndexExpr:
		return assignedObject(info, l.X)
	}
	return nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// ---------------------------------------------------------------------------
// Fact propagation.

// Propagate pushes boolean facts from callees to callers until fixpoint: a
// function acquires the fact as soon as any function it calls holds it.
// seed maps FuncKey -> true for the functions where the fact originates;
// the returned map is the transitive closure over the reverse call graph.
// This is the shape lockorder (transitive lock sets decompose into one
// fact per lock class) and goroutineleak (has-stop-evidence) need; dettaint
// runs its own fixpoint because its transfer function re-evaluates local
// def-use chains rather than a plain union.
func (m *ModuleIR) Propagate(seed map[string]bool) map[string]bool {
	facts := make(map[string]bool, len(seed))
	work := make([]string, 0, len(seed))
	for k, v := range seed {
		if v {
			facts[k] = true
			work = append(work, k)
		}
	}
	sort.Strings(work) // deterministic traversal order
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range m.Callers[k] {
			if !facts[caller] {
				facts[caller] = true
				work = append(work, caller)
			}
		}
	}
	return facts
}

// CalleesOf returns the resolved callee keys of fn (declared functions
// only), deduplicated, in first-call order.
func (f *FuncIR) CalleesOf() []string {
	var out []string
	seen := map[string]bool{}
	for _, cs := range f.Calls {
		if cs.CalleeKey != "" && !seen[cs.CalleeKey] {
			seen[cs.CalleeKey] = true
			out = append(out, cs.CalleeKey)
		}
	}
	return out
}

// PkgOf returns the package path component of a FuncKey ("" if malformed).
func PkgOf(key string) string {
	// pkgpath is everything before the last '.' outside parens; method keys
	// look like pkg.(T).M, function keys like pkg.F.
	if i := strings.Index(key, ".("); i >= 0 {
		return key[:i]
	}
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[:i]
	}
	return ""
}
