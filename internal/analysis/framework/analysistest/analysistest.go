// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want` expectations embedded in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	x := time.Now() // want `time\.Now`
//	y := f()        // want `first` `second`
//
// where each backquoted string is a regexp that must match the message of
// exactly one diagnostic reported on that line. Lines with no want comment
// must produce no diagnostics, which is how clean "negative fixture" code
// asserts the analyzer stays quiet.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// key addresses one fixture line's diagnostics and expectations.
type key struct {
	file string
	line int
}

// Run loads the fixture package at dir (relative to the calling test's
// package directory, e.g. "testdata/src/a") and checks the analyzer's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *framework.Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, 0, len(dirs))
	for _, d := range dirs {
		patterns = append(patterns, "./"+filepath.ToSlash(d))
	}
	fset := token.NewFileSet()
	pkgs, err := framework.Load(fset, "", patterns...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", dirs, err)
	}
	diags, err := framework.RunPackages(fset, pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	got := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	want := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
						}
						want[k] = append(want[k], re)
					}
				}
			}
		}
	}

	// Report in deterministic file:line order — expected-but-missing
	// diagnostics first, then unexpected ones — so fixture failures read
	// the same on every run and CI diffs stay stable.
	for _, k := range sortedKeys(want) {
		msgs := got[k]
		for _, re := range want[k] {
			matched := -1
			for i, m := range msgs {
				if m != "" && re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: expected diagnostic missing: no report matching %q (got %v)", rel(k.file), k.line, re, msgs)
				continue
			}
			msgs[matched] = "" // consume so duplicate wants need duplicate diags
		}
		for _, m := range msgs {
			if m != "" {
				t.Errorf("%s:%d: unexpected diagnostic %q", rel(k.file), k.line, m)
			}
		}
		delete(got, k)
	}
	for _, k := range sortedKeys(got) {
		for _, m := range got[k] {
			t.Errorf("%s:%d: unexpected diagnostic %q (no want comment)", rel(k.file), k.line, m)
		}
	}
}

// sortedKeys orders diagnostic map keys by file, then line.
func sortedKeys[V any](m map[key]V) []key {
	out := make([]key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// rel trims the test's working directory off fixture paths to keep failure
// output readable.
func rel(file string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return file
}
