// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against `// want` expectations embedded in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	x := time.Now() // want `time\.Now`
//	y := f()        // want `first` `second`
//
// where each backquoted string is a regexp that must match the message of
// exactly one diagnostic reported on that line. Lines with no want comment
// must produce no diagnostics, which is how clean "negative fixture" code
// asserts the analyzer stays quiet.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture package at dir (relative to the calling test's
// package directory, e.g. "testdata/src/a") and checks the analyzer's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *framework.Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, 0, len(dirs))
	for _, d := range dirs {
		patterns = append(patterns, "./"+filepath.ToSlash(d))
	}
	fset := token.NewFileSet()
	pkgs, err := framework.Load(fset, "", patterns...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", dirs, err)
	}
	diags, err := framework.RunPackages(fset, pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	want := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
						}
						want[k] = append(want[k], re)
					}
				}
			}
		}
	}

	for k, res := range want {
		msgs := got[k]
		for _, re := range res {
			matched := -1
			for i, m := range msgs {
				if m != "" && re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", rel(k.file), k.line, re, msgs)
				continue
			}
			msgs[matched] = "" // consume so duplicate wants need duplicate diags
		}
		for _, m := range msgs {
			if m != "" {
				t.Errorf("%s:%d: unexpected diagnostic %q", rel(k.file), k.line, m)
			}
		}
		delete(got, k)
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic %q (no want comment)", rel(k.file), k.line, m)
		}
	}
}

// rel trims the test's working directory off fixture paths to keep failure
// output readable.
func rel(file string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if r, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
	}
	return file
}
