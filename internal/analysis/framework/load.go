package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath    string
	Dir        string
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error // soft type errors (load keeps going)
}

// listPkg mirrors the fields of `go list -json` the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages matching patterns (relative to
// dir, "" = cwd) into a single shared FileSet. It shells out to
// `go list -export -deps -json`, which makes the go build cache provide gc
// export data for every dependency — the stdlib importer then resolves
// imports without any source re-typechecking and without x/tools.
//
// Type errors in a target package are collected, not fatal: a lint driver
// must still analyze code that go vet would reject, and fixtures routinely
// contain odd-but-compiling constructs.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		lp := p
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, &lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("go list %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := check(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, t *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (did go list -export fail for it?)", path)
		}
		return os.Open(e)
	}

	pkg := &Package{PkgPath: t.ImportPath, Dir: t.Dir, Syntax: files}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Check never hard-fails: conf.Error collects and the checker recovers.
	typed, _ := conf.Check(t.ImportPath, fset, files, info)
	pkg.Types = typed
	pkg.TypesInfo = info
	return pkg, nil
}
