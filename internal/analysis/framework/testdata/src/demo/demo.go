// Package demo is the framework driver-test fixture: functions whose names
// start with Bad are reported by the test's toy analyzer.
package demo

// Good stays quiet.
func Good() int { return 1 }

// BadThing is the finding.
func BadThing() int { return 2 }
