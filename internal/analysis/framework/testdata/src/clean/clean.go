// Package clean is the framework driver-test fixture with nothing to
// report: the driver must exit 0 on it.
package clean

// Fine is unremarkable by design.
func Fine() int { return 3 }
