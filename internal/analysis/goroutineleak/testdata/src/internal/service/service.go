// Package service is the goroutineleak fixture (the path embeds
// internal/service so the analyzer's scope pattern applies). Every `go`
// statement whose reachable unbounded loops lack stop evidence must be
// flagged; select/receive/ctx/cond-absolved loops, bounded loops, and
// reviewed escapes must stay quiet.
package service

import (
	"context"
	"sync"
	"time"
)

// Server is a miniature of the fabric's serving state.
type Server struct {
	stop chan struct{}
	wg   sync.WaitGroup
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// StartHeartbeat is clean: the loop selects on the stop channel.
func (s *Server) StartHeartbeat() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(time.Second):
			}
		}
	}()
}

// StartPoller leaks: the poll loop never observes any stop signal, so
// Close's wg.Wait hangs forever.
func (s *Server) StartPoller() {
	s.wg.Add(1)
	go func() { // want `goroutine can spin forever`
		defer s.wg.Done()
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// runLoop spins through step with no stop path; the audit lands on the go
// statements that spawn it.
func (s *Server) runLoop() {
	for {
		s.step()
	}
}

func (s *Server) step() {}

// StartNamed leaks through a named method: the loop lives one call away.
func (s *Server) StartNamed() {
	go s.runLoop() // want `goroutine can spin forever`
}

// pop blocks on a condition variable — the stop evidence that absolves
// callers' wait loops (close wakes the cond and pop's caller returns).
func (s *Server) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.n--
	return s.n, s.n >= 0
}

// StartWorker is clean: the loop's only blocking point is pop, whose
// cond.Wait is recognized through the call graph.
func (s *Server) StartWorker() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			if _, ok := s.pop(); !ok {
				return
			}
		}
	}()
}

// StartDrain is clean: range over a channel ends when the channel closes.
func (s *Server) StartDrain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// StartCtx is clean: the loop condition checks ctx.Err.
func (s *Server) StartCtx(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			time.Sleep(time.Millisecond)
		}
	}()
}

// StartBounded is clean: the loop has a static bound.
func (s *Server) StartBounded() {
	go func() {
		for i := 0; i < 8; i++ {
			s.step()
		}
	}()
}

// StartJoiner is clean: no loop at all, terminates structurally.
func (s *Server) StartJoiner(done chan struct{}) {
	go func() {
		s.wg.Wait()
		close(done)
	}()
}

// StartReviewed carries a justified escape: quiet.
func (s *Server) StartReviewed() {
	go s.runLoop() //simlint:leakok process-lifetime sweeper, reaped at exit
}

// StartBare carries the escape without a justification, which is itself a
// finding.
func (s *Server) StartBare() {
	//simlint:leakok
	go s.runLoop() // want `needs a justification`
}
