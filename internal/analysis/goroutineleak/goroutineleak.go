// Package goroutineleak audits every `go` statement in the service and
// cluster layers for a reachable stop path. The fabric's shutdown story
// (Service.Close/Drain, Node.Close) waits on WaitGroups; a goroutine whose
// loop can spin without ever observing a stop signal turns those joins into
// hangs — exactly the bug class the breaker loops, anti-entropy ticker, and
// delegation-reclaim timers flirt with.
//
// The rule: from a `go` statement, every statically unbounded loop
// reachable through the module call graph (the spawned function, the
// functions it calls, transitively) must contain stop evidence — a select
// or channel receive (a closed channel unblocks it), a range over a
// channel, a ctx.Done()/ctx.Err() check, or a sync.Cond/WaitGroup wait
// (whose waker is the closing side) — either directly in the loop body or
// inside a function the loop body calls. Goroutines with no unbounded
// loops terminate structurally and always pass. Bounded three-clause
// `for i := 0; i < n; i++` loops are not audited.
//
// Calls the IR cannot resolve (interface methods, func values) contribute
// no evidence: the analyzer is deliberately pessimistic there, because an
// RPC that "should eventually fail" is not a stop path. A reviewed site
// carries a line-scoped escape with a mandatory justification:
//
//	//simlint:leakok <why this goroutine terminates or may outlive Close>
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"repro/internal/analysis/framework"
)

// ScopePattern selects the packages whose goroutines are audited: the
// long-lived serving layers, where a leaked goroutine outlives the job
// that spawned it. Simulation code does not spawn goroutines; cmds are
// process-lifetime. The testdata fixture trees embed these paths so the
// same default applies.
var ScopePattern = regexp.MustCompile(`internal/(service|cluster)(/|$)`)

// Analyzer is the goroutineleak pass.
var Analyzer = &framework.Analyzer{
	Name: "goroutineleak",
	Doc: "every goroutine in service/cluster needs a reachable stop path\n\n" +
		"Unbounded loops inside spawned goroutines must observe a stop channel, context cancel, channel close, or condition-variable wait, or Close/Drain joins hang.",
	RunModule: runModule,
}

func runModule(mp *framework.ModulePass) error {
	a := &auditor{mp: mp, evidence: localEvidence(mp.IR)}
	// Propagate "contains stop evidence" from callees to callers so a loop
	// that blocks inside q.pop() (sync.Cond.Wait under the hood) is
	// recognized through the call.
	a.evidenceClosure = mp.IR.Propagate(a.evidence)

	for _, pkg := range mp.Packages {
		if !ScopePattern.MatchString(pkg.PkgPath) {
			continue
		}
		for _, key := range sortedFuncKeys(mp.IR, pkg) {
			fir := mp.IR.Funcs[key]
			for _, g := range fir.Gos {
				a.checkGo(pkg, fir, g)
			}
		}
	}
	return nil
}

type auditor struct {
	mp              *framework.ModulePass
	evidence        map[string]bool // function has local stop evidence
	evidenceClosure map[string]bool // transitive over the call graph
}

// checkGo audits one `go` statement.
func (a *auditor) checkGo(pkg *framework.Package, fir *framework.FuncIR, g *ast.GoStmt) {
	reason, present := a.mp.DirectiveReason(g.Pos(), "//simlint:leakok")
	if present && reason == "" {
		a.mp.Reportf(g.Pos(), "//simlint:leakok needs a justification: say why this goroutine terminates")
		return
	}
	if present {
		return
	}
	var body *ast.BlockStmt
	var startKey string
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := framework.CalleeOf(pkg.TypesInfo, g.Call); callee != nil {
			startKey = framework.FuncKey(callee)
		}
	}

	visited := map[string]bool{}
	var loops []loopAt
	if body != nil {
		loops = a.collectLoops(pkg, body, visited, 0)
	} else if startKey != "" {
		if target, ok := a.mp.IR.Funcs[startKey]; ok {
			visited[startKey] = true
			loops = a.collectLoops(target.Pkg, target.Body, visited, 0)
		}
	}
	for _, l := range loops {
		if a.loopHasStopPath(l.pkg, l.loop) {
			continue
		}
		if _, ok := a.mp.DirectiveReason(l.loop.Pos(), "//simlint:leakok"); ok {
			continue
		}
		a.mp.Reportf(g.Pos(), "goroutine can spin forever: unbounded loop at %s has no reachable stop path (select/receive on a stop channel, ctx.Done, channel range, or cond/WaitGroup wait); add one or annotate //simlint:leakok <why>",
			a.mp.Fset.Position(l.loop.Pos()))
	}
}

type loopAt struct {
	pkg  *framework.Package
	loop *ast.ForStmt
}

// maxDepth bounds the transitive loop hunt: the serving layers' goroutine
// bodies are shallow (loop -> round -> RPC helper); past that the sim call
// tree starts and every loop there is cycle-bounded.
const maxDepth = 3

// collectLoops gathers every statically unbounded for-loop reachable from
// body through resolvable module calls.
func (a *auditor) collectLoops(pkg *framework.Package, body ast.Node, visited map[string]bool, depth int) []loopAt {
	var out []loopAt
	if body == nil {
		return out
	}
	var callees []string
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested go statement is its own audit site
		case *ast.ForStmt:
			if unbounded(n) {
				out = append(out, loopAt{pkg, n})
			}
		case *ast.CallExpr:
			if callee := framework.CalleeOf(pkg.TypesInfo, n); callee != nil {
				callees = append(callees, framework.FuncKey(callee))
			}
		}
		return true
	})
	if depth >= maxDepth {
		return out
	}
	for _, key := range callees {
		if visited[key] {
			continue
		}
		visited[key] = true
		target, ok := a.mp.IR.Funcs[key]
		if !ok || !ScopePattern.MatchString(target.Pkg.PkgPath) {
			continue
		}
		out = append(out, a.collectLoops(target.Pkg, target.Body, visited, depth+1)...)
	}
	return out
}

// unbounded reports whether a for-loop has no static bound: `for {}`,
// `for cond {}` (condition-only loops are wait loops — the evidence rules
// absolve the legitimate ones), or `for init; ; post {}`. Three-clause
// loops with a condition are counted as bounded.
func unbounded(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	return f.Init == nil && f.Post == nil
}

// loopHasStopPath reports whether the loop body (or its condition) carries
// stop evidence, directly or through a resolvable call.
func (a *auditor) loopHasStopPath(pkg *framework.Package, loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if nodeIsEvidence(pkg.TypesInfo, n) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := framework.CalleeOf(pkg.TypesInfo, call); callee != nil {
				if a.evidenceClosure[framework.FuncKey(callee)] {
					found = true
					return false
				}
			}
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	ast.Inspect(loop.Body, check)
	return found
}

// localEvidence computes, per declared function, whether its body directly
// contains a stop-capable blocking construct.
func localEvidence(ir *framework.ModuleIR) map[string]bool {
	out := map[string]bool{}
	for key, fir := range ir.Funcs {
		has := false
		ast.Inspect(fir.Body, func(n ast.Node) bool {
			if has {
				return false
			}
			if nodeIsEvidence(fir.Pkg.TypesInfo, n) {
				has = true
				return false
			}
			return true
		})
		if has {
			out[key] = true
		}
	}
	return out
}

// nodeIsEvidence recognizes one stop-capable construct: a select, a channel
// receive, a range over a channel, ctx.Done()/ctx.Err(), or a wait on a
// sync.Cond / sync.WaitGroup.
func nodeIsEvidence(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op == token.ARROW
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
			_, isChan := tv.Type.Underlying().(*types.Chan)
			return isChan
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "sync":
			return fn.Name() == "Wait" // Cond.Wait, WaitGroup.Wait
		case "context":
			return fn.Name() == "Done" || fn.Name() == "Err"
		}
	}
	return false
}

// sortedFuncKeys lists pkg's declared-function keys in deterministic order.
func sortedFuncKeys(ir *framework.ModuleIR, pkg *framework.Package) []string {
	var keys []string
	for key, fir := range ir.Funcs {
		if fir.Pkg == pkg {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}
