package goroutineleak_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/goroutineleak"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, goroutineleak.Analyzer, "testdata/src/internal/service")
}
