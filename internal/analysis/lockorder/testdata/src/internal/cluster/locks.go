// Package cluster is the lockorder fixture (the path embeds
// internal/cluster so the analyzer's scope pattern applies). Reversed
// acquisition orders across two functions form a cycle; consistent orders,
// goroutine-reset holds, and reviewed escapes stay quiet.
package cluster

import (
	"sync"
	"time"
)

// A and B carry the direct-cycle pair.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// Both acquires A then B — one direction of the cycle. The report lands on
// the earliest participating acquisition, which is this one.
func Both(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle \(potential deadlock\)`
	b.mu.Unlock()
	a.mu.Unlock()
}

// Reversed acquires B then A — closing the cycle.
func Reversed(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D carry the transitive cycle: one direction exists only through a
// call summary.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

// Transit holds C while calling lockD: the C->D edge comes from lockD's
// transitive acquisition summary, not a literal Lock call.
func Transit(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock-order cycle \(potential deadlock\)`
	c.mu.Unlock()
}

// TransitBack closes the transitive cycle directly.
func TransitBack(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// E and F order consistently everywhere: clean.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func Ordered(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

func OrderedToo(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// SpawnClean locks F inside a spawned goroutine while the caller holds E:
// the goroutine starts with nothing held, so no F->E confusion arises and
// the consistent E->F order above stays acyclic.
func SpawnClean(e *E, f *F, done chan struct{}) {
	e.mu.Lock()
	go func() {
		f.mu.Lock()
		f.mu.Unlock()
		close(done)
	}()
	e.mu.Unlock()
}

// Nested re-acquires the same class while holding it: sync mutexes are not
// reentrant, so this is an immediate finding even without a cycle.
func Nested(a, b *A) {
	a.mu.Lock()
	b.mu.Lock() // want `acquired while already held \(class-level\)`
	b.mu.Unlock()
	a.mu.Unlock()
}

// NestedReviewed is the two-provably-distinct-instances pattern with the
// mandatory justification: quiet.
func NestedReviewed(parent, child *A) {
	parent.mu.Lock()
	child.mu.Lock() //simlint:lockorderok parent/child never alias, tree edges only
	child.mu.Unlock()
	parent.mu.Unlock()
}

// G and H form a reviewed cycle: the escape on one participating edge
// suppresses the whole cycle report.
type G struct{ mu sync.Mutex }
type H struct{ mu sync.Mutex }

func ReviewedPair(g *G, h *H) {
	g.mu.Lock()
	h.mu.Lock() //simlint:lockorderok g is always the gossip leader, h a follower
	h.mu.Unlock()
	g.mu.Unlock()
}

func ReviewedPairBack(g *G, h *H) {
	h.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	h.mu.Unlock()
}

// Branchy acquires inside an if and releases before leaving it: the held
// set must not leak past the branch, so the later F lock sees nothing held.
func Branchy(e *E, f *F, flag bool) {
	if flag {
		e.mu.Lock()
		e.mu.Unlock()
	}
	f.mu.Lock()
	f.mu.Unlock()
}

// ArmTimer arms a time.AfterFunc callback that re-locks the same class
// while the caller holds it. The callback runs later on the timer goroutine
// with nothing held, so this is clean — the delegation-reclaim pattern.
func ArmTimer(a *A) *time.Timer {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.AfterFunc(time.Second, func() {
		a.mu.Lock()
		a.mu.Unlock()
	})
}
