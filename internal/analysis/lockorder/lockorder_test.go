package lockorder_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/internal/cluster")
}
