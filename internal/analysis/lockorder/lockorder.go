// Package lockorder builds a module-wide mutex acquisition-order graph
// over the service and cluster layers and reports cycles — the static
// shadow of the deadlock the race detector can only catch when the
// interleaving cooperates. Locks are grouped into classes by owner type
// and field ("cluster.Node.mu", "service.fairQueue.mu", package-level vars
// by name); an edge A → B means some code path acquires a B-class lock
// while holding an A-class lock, either directly or through a call chain
// resolved on the module call graph. A cycle in the class graph is a
// potential deadlock: two goroutines entering it from different edges can
// block each other forever.
//
// Class-level analysis is deliberately coarser than instance-level: it
// cannot tell two breaker instances apart, so a function that locks one
// breaker while holding another's lock reports as a self-cycle even when
// the instances are provably distinct. That coarseness is the point — the
// fabric's invariants are stated per class ("never call into membership
// while holding Node.mu" is reviewable; "these two instances are never
// aliased" is not). A reviewed exception carries a line-scoped escape with
// a mandatory justification at the acquisition that closes the cycle:
//
//	//simlint:lockorderok <why these instances can never deadlock>
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// ScopePattern selects the packages whose lock graph is built: the
// concurrent serving layers. The simulator core is single-threaded per
// run; obs has two independent leaf mutexes. Fixture trees embed these
// paths so the default applies there too.
var ScopePattern = regexp.MustCompile(`internal/(service|cluster)(/|$)`)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "module-wide mutex acquisition-order cycles in service/cluster\n\n" +
		"An A->B edge means B is acquired while A is held (directly or through calls); a cycle is a potential deadlock.",
	RunModule: runModule,
}

// edge is one observed "acquire to while holding from".
type edge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) that creates the edge
	fn       string    // function where it happens
}

type builder struct {
	mp    *framework.ModulePass
	edges map[[2]string]edge // first occurrence wins (stable positions)
	// acquires maps FuncKey -> lock classes the function may acquire
	// somewhere inside (locals included), before transitive closure.
	acquires map[string]map[string]token.Pos
}

func runModule(mp *framework.ModulePass) error {
	b := &builder{
		mp:       mp,
		edges:    map[[2]string]edge{},
		acquires: map[string]map[string]token.Pos{},
	}

	// Pass 1: local acquisition summaries for every scoped function.
	scoped := b.scopedFuncs()
	for _, fir := range scoped {
		b.acquires[fir.Key] = b.localAcquires(fir)
	}

	// Transitive closure per lock class over the call graph: for each
	// class, the set of functions that may acquire it grows to callers.
	closure := b.transitiveAcquires()

	// Pass 2: walk each function with a held-set, adding direct edges at
	// nested Lock calls and summary edges at calls into acquiring
	// functions.
	for _, fir := range scoped {
		b.walkFunc(fir, closure)
	}

	b.reportCycles()
	return nil
}

// scopedFuncs returns the IR of every declared function in scoped
// packages, in deterministic key order.
func (b *builder) scopedFuncs() []*framework.FuncIR {
	var keys []string
	for key, fir := range b.mp.IR.Funcs {
		if ScopePattern.MatchString(fir.Pkg.PkgPath) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]*framework.FuncIR, 0, len(keys))
	for _, k := range keys {
		out = append(out, b.mp.IR.Funcs[k])
	}
	return out
}

// lockCall classifies a call expression as a mutex acquisition or release.
// kind: +1 acquire, -1 release, 0 neither. class is the lock's stable key.
func (b *builder) lockCall(fir *framework.FuncIR, call *ast.CallExpr) (kind int, class string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return 0, ""
	}
	callee := framework.CalleeOf(fir.Pkg.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return 0, ""
	}
	key, ok := framework.ExprKey(b.mp.Fset, fir.Pkg.TypesInfo, sel.X)
	if !ok {
		return 0, ""
	}
	return kind, key
}

// localAcquires collects every lock class fir may acquire directly
// (function literals included — the IR merges their calls).
func (b *builder) localAcquires(fir *framework.FuncIR) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, cs := range fir.Calls {
		if kind, class := b.lockCall(fir, cs.Call); kind > 0 {
			if _, seen := out[class]; !seen {
				out[class] = cs.Call.Pos()
			}
		}
	}
	return out
}

// transitiveAcquires closes the summaries over the call graph: per class,
// propagate "may acquire" from callees to callers, then invert back to a
// per-function class set.
func (b *builder) transitiveAcquires() map[string]map[string]bool {
	classes := map[string]bool{}
	for _, acq := range b.acquires {
		for c := range acq {
			classes[c] = true
		}
	}
	sortedClasses := make([]string, 0, len(classes))
	for c := range classes {
		sortedClasses = append(sortedClasses, c)
	}
	sort.Strings(sortedClasses)

	out := map[string]map[string]bool{}
	for _, c := range sortedClasses {
		seed := map[string]bool{}
		for fn, acq := range b.acquires {
			if _, ok := acq[c]; ok {
				seed[fn] = true
			}
		}
		for fn := range b.mp.IR.Propagate(seed) {
			m := out[fn]
			if m == nil {
				m = map[string]bool{}
				out[fn] = m
			}
			m[c] = true
		}
	}
	return out
}

// walkFunc interprets fir's body in source order with a held-lock stack,
// creating edges. Control-flow branches are entered with the current held
// set and restored after — acquisitions inside a branch do not leak past
// it, matching the tight lock/unlock pairing discipline of the tree.
func (b *builder) walkFunc(fir *framework.FuncIR, closure map[string]map[string]bool) {
	var body *ast.BlockStmt
	switch {
	case fir.Decl != nil:
		body = fir.Decl.Body
	case fir.Lit != nil:
		return // literal bodies are walked inline below, with the holder's held set
	}
	if body == nil {
		return
	}
	var held []string // acquisition order, innermost last

	pop := func(class string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == class {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	addEdge := func(to string, pos token.Pos) {
		for _, from := range held {
			if from == to {
				// Same-class nested acquisition: immediate report unless
				// escaped (class-level recursion is either a self-deadlock
				// or a reviewed two-instance pattern).
				if !b.mp.Directive(pos, "//simlint:lockorderok") {
					b.mp.Reportf(pos, "%s acquired while already held (class-level): sync mutexes are not reentrant; if these are provably distinct instances, annotate //simlint:lockorderok <why>",
						framework.ShortKey(to))
				}
				continue
			}
			k := [2]string{from, to}
			if _, ok := b.edges[k]; !ok {
				b.edges[k] = edge{from: from, to: to, pos: pos, fn: fir.Key}
			}
		}
	}

	var walkStmt func(n ast.Node)
	walkStmt = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			kind, class := b.lockCall(fir, n)
			switch kind {
			case 1:
				addEdge(class, n.Pos())
				held = append(held, class)
				return
			case -1:
				pop(class)
				return
			}
			// Non-lock call: walk arguments first (they evaluate before the
			// call), then apply the callee's acquisition summary.
			callee := framework.CalleeOf(fir.Pkg.TypesInfo, n)
			if isDeferredExecutor(callee) {
				// time.AfterFunc-style callbacks run later on their own
				// goroutine with nothing held — arming the timer under a
				// lock creates no edge from that lock.
				savedHeld := held
				held = nil
				for _, arg := range n.Args {
					walkStmt(arg)
				}
				held = savedHeld
				return
			}
			for _, arg := range n.Args {
				walkStmt(arg)
			}
			if callee != nil {
				key := framework.FuncKey(callee)
				for _, to := range sortedKeys(closure[key]) {
					addEdge(to, n.Pos())
				}
			}
			return
		case *ast.DeferStmt:
			if kind, _ := b.lockCall(fir, n.Call); kind == -1 {
				// defer mu.Unlock(): the lock stays held to function end,
				// so skipping the pop is exactly right — everything later
				// in this function orders after it.
				return
			}
			// Other deferred calls run at exit with an unknowable held set;
			// approximate with the current one.
			walkStmt(n.Call)
			return
		case *ast.GoStmt:
			// A spawned goroutine starts with nothing held.
			savedHeld := held
			held = nil
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				walkStmt(lit.Body)
			} else {
				walkStmt(n.Call)
			}
			held = savedHeld
			return
		case *ast.FuncLit:
			// An inline closure (passed to viaBreaker etc.) may run under
			// the caller's current held set — walk it with that set.
			walkStmt(n.Body)
			return
		case *ast.BlockStmt:
			for _, s := range n.List {
				walkStmt(s)
			}
			return
		case *ast.IfStmt:
			walkStmt(n.Init)
			walkStmt(n.Cond)
			mark := len(held)
			walkStmt(n.Body)
			held = held[:min(mark, len(held))]
			walkStmt(n.Else)
			held = held[:min(mark, len(held))]
			return
		case *ast.ForStmt:
			walkStmt(n.Init)
			walkStmt(n.Cond)
			mark := len(held)
			walkStmt(n.Body)
			held = held[:min(mark, len(held))]
			walkStmt(n.Post)
			return
		case *ast.RangeStmt:
			walkStmt(n.X)
			mark := len(held)
			walkStmt(n.Body)
			held = held[:min(mark, len(held))]
			return
		case *ast.SwitchStmt:
			walkStmt(n.Init)
			walkStmt(n.Tag)
			mark := len(held)
			for _, cl := range n.Body.List {
				walkStmt(cl)
				held = held[:min(mark, len(held))]
			}
			return
		case *ast.TypeSwitchStmt:
			walkStmt(n.Init)
			walkStmt(n.Assign)
			mark := len(held)
			for _, cl := range n.Body.List {
				walkStmt(cl)
				held = held[:min(mark, len(held))]
			}
			return
		case *ast.SelectStmt:
			mark := len(held)
			for _, cl := range n.Body.List {
				walkStmt(cl)
				held = held[:min(mark, len(held))]
			}
			return
		case *ast.CaseClause:
			for _, e := range n.List {
				walkStmt(e)
			}
			for _, s := range n.Body {
				walkStmt(s)
			}
			return
		case *ast.CommClause:
			walkStmt(n.Comm)
			for _, s := range n.Body {
				walkStmt(s)
			}
			return
		}
		// Generic statements/expressions: visit children in source order,
		// but do not descend past nested declarations.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.CallExpr, *ast.DeferStmt, *ast.GoStmt, *ast.FuncLit,
				*ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				walkStmt(c)
				return false
			}
			return true
		})
	}
	walkStmt(body)
}

// reportCycles finds cycles in the class edge graph and reports each once,
// at the edge with the smallest position, spelling out the full cycle with
// every participating acquisition site.
func (b *builder) reportCycles() {
	adj := map[string][]string{}
	for k := range b.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for from := range adj {
		sort.Strings(adj[from])
	}

	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := map[string]bool{} // canonical cycle signature -> seen
	var stack []string
	onStack := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		stack = append(stack, n)
		onStack[n] = true
		for _, next := range adj[n] {
			if onStack[next] {
				// Extract the cycle next -> ... -> n -> next.
				start := 0
				for i, s := range stack {
					if s == next {
						start = i
						break
					}
				}
				cycle := append([]string(nil), stack[start:]...)
				b.reportCycle(cycle, reported)
				continue
			}
			dfs(next)
		}
		stack = stack[:len(stack)-1]
		onStack[n] = false
	}
	for _, n := range nodes {
		dfs(n)
	}
}

func (b *builder) reportCycle(cycle []string, reported map[string]bool) {
	// Canonicalize: rotate so the smallest class leads.
	minI := 0
	for i, c := range cycle {
		if c < cycle[minI] {
			minI = i
		}
	}
	rot := append(append([]string(nil), cycle[minI:]...), cycle[:minI]...)
	sig := strings.Join(rot, "->")
	if reported[sig] {
		return
	}
	reported[sig] = true

	// Gather the constituent edges in cycle order.
	var parts []string
	var at token.Pos
	escaped := false
	for i := range rot {
		from, to := rot[i], rot[(i+1)%len(rot)]
		e := b.edges[[2]string{from, to}]
		if at == token.NoPos || e.pos < at {
			at = e.pos
		}
		if b.mp.Directive(e.pos, "//simlint:lockorderok") {
			escaped = true
		}
		parts = append(parts, fmt.Sprintf("%s->%s at %s", framework.ShortKey(from), framework.ShortKey(to), b.mp.Fset.Position(e.pos)))
	}
	if escaped {
		return
	}
	b.mp.Reportf(at, "lock-order cycle (potential deadlock): %s; break the cycle or annotate the reviewed edge //simlint:lockorderok <why>",
		strings.Join(parts, "; "))
}

// isDeferredExecutor recognizes stdlib calls whose function argument runs
// later on a different goroutine with an empty lock set: arming them under
// a lock is not the same as calling under a lock.
func isDeferredExecutor(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	return callee.Pkg().Path() == "time" && callee.Name() == "AfterFunc"
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
