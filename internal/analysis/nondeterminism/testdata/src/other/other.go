// Package other sits outside the simulation-state package set: the same
// constructs that sim.go flags must pass untouched here. This is the
// scoping negative fixture.
package other

import (
	"math/rand"
	"time"
)

// Wall clocks and global randomness are fine outside simulation state
// (operator tooling, service metrics, report timestamps).
func Timestamp() (time.Time, int) {
	return time.Now(), rand.Int()
}

// Map iteration with side effects is also out of scope here.
func Emit(m map[string]int, sink func(string)) {
	for k := range m {
		sink(k)
	}
}
