// Package sim is a nondeterminism fixture: its import path embeds
// internal/sim so the analyzer treats it as a simulation-state package.
// Lines with want comments must be flagged; everything else is the negative
// fixture and must stay quiet.
package sim

import (
	crand "crypto/rand" // want `crypto/rand imported in simulation-state package`
	"math"
	"math/rand"
	"sort"
	"time"
)

// State is pretend simulation-visible state.
type State struct {
	Cycle  uint64
	Seen   map[string]uint64
	Out    []string
	Weight float64
}

func clocks() int64 {
	t := time.Now()   // want `time\.Now \(wall clock\)`
	time.Sleep(1)     // want `time\.Sleep \(wall-clock dependence\)`
	_ = time.Since(t) // want `time\.Since \(wall clock\)`
	return t.UnixNano()
}

// progress is operator-facing, not simulation state: the directive is the
// sanctioned escape and must suppress the diagnostic.
func progress() time.Time {
	return time.Now() //simlint:wallclock
}

func entropy(b []byte) int {
	n := rand.Int()                    // want `math/rand\.Int uses the unseeded global random stream`
	rand.Shuffle(n, func(i, j int) {}) // want `math/rand\.Shuffle uses the unseeded global random stream`
	_, _ = crand.Read(b)
	return n
}

// seeded randomness through an explicit source is the sanctioned pattern.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(64)
}

// emit writes state in map order: the classic checkpoint-divergence bug.
func (s *State) emit(sink func(string)) {
	for k := range s.Seen {
		sink(k) // want `call with potential side effects inside map iteration`
	}
}

func (s *State) mutate() {
	for k, v := range s.Seen {
		s.Cycle += v             // want `write through pointer s inside map iteration`
		s.Out = append(s.Out, k) // want `write through pointer s inside map iteration`
	}
}

func (s *State) floats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration`
	}
	return sum
}

// intSum is order-independent accumulation on a local: clean.
func intSum(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedKeys is the sanctioned collect-then-sort idiom: clean.
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys collects in map order and never sorts.
func unsortedKeys(m map[string]uint64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates map keys/values in map order and is never sorted`
	}
	return keys
}

// perEntryFilter appends into a slice declared inside the loop body: it
// cannot accumulate across iterations, so no sort is demanded. Clean.
func perEntryFilter(m map[string][]uint64) int {
	total := 0
	for _, ws := range m {
		keep := ws[:0]
		for _, w := range ws {
			if w != 0 {
				keep = append(keep, w)
			}
		}
		total += len(keep)
	}
	return total
}

// keyedCopy stores through the map key: order-independent, clean.
func keyedCopy(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

// reviewed is order-insensitive by construction and carries the directive.
func reviewed(m map[string]*State) {
	//simlint:ordered
	for _, st := range m {
		st.Cycle = 0
	}
}

// firstMatch returns an element-dependent value from inside the loop.
func firstMatch(m map[string]uint64) string {
	for k := range m {
		if len(k) > 3 {
			return k // want `return of element-dependent value inside map iteration`
		}
	}
	return ""
}

// exists returns only constants from inside the loop: clean.
func exists(m map[string]uint64, want string) bool {
	for k := range m {
		if k == want {
			return true
		}
	}
	return false
}

// pureMath may call math functions on locals: clean.
func pureMath(m map[string]float64) float64 {
	worst := math.Inf(-1)
	for _, v := range m {
		worst = math.Max(worst, v)
	}
	return worst
}

// viaPointer writes through a local pointer into shared state.
func viaPointer(m map[string]uint64, st *State) {
	for _, v := range m {
		st.Cycle = v // want `write through pointer st inside map iteration`
	}
}
