// Package nondeterminism rejects constructs that would break the
// simulator's bit-exact reproducibility guarantees: checkpoint/resume
// replay, cycle-skip lockstep, and content-addressed result caching all
// assume that a (Config, trace) pair fully determines every simulation
// output. Inside simulation-state packages the analyzer forbids wall-clock
// and entropy sources and flags map iterations whose bodies let Go's
// randomized map order leak into simulation-visible state or output.
//
// Two reviewed-escape directives exist, both line-scoped (same line or the
// line above):
//
//	//simlint:ordered    this map iteration is order-insensitive
//	//simlint:wallclock  this clock read never feeds simulation state
//	                     (e.g. operator progress reporting)
package nondeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis/framework"
)

// SimStatePattern selects the packages whose import paths hold
// simulation-visible state or deterministic output: the model packages
// (checkpoint/fingerprint bit-identity) plus figures/report (byte-identical
// table emission, pinned by the service golden tests). Everything outside
// it (service, obs, tooling) is free to read clocks. The testdata fixture
// trees embed "internal/sim" in their paths on purpose so the same default
// applies.
var SimStatePattern = regexp.MustCompile(`internal/(sim|cpu|emc|mem|interconnect|bpred|prefetch|vm|figures|report)(/|$)`)

// Analyzer is the nondeterminism pass.
var Analyzer = &framework.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall-clock/entropy sources and order-leaking map iteration in simulation-state packages\n\n" +
		"Bit-exact determinism (checkpoint replay, cycle-skip lockstep, fingerprint caching) requires that no simulation state derive from time, global randomness, or Go's randomized map order.",
	Run: run,
}

// forbiddenCalls maps package path -> function name -> reason. A nil inner
// map forbids every exported function of the package.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":       "wall clock",
		"Since":     "wall clock",
		"Until":     "wall clock",
		"After":     "wall-clock timer",
		"AfterFunc": "wall-clock timer",
		"Tick":      "wall-clock timer",
		"NewTicker": "wall-clock timer",
		"NewTimer":  "wall-clock timer",
		"Sleep":     "wall-clock dependence",
	},
	"math/rand":    nil, // all but the constructors below
	"math/rand/v2": nil,
}

// randConstructors are the seedable constructors of math/rand[/v2]; calling
// them with an explicit seed is the sanctioned way to get reproducible
// randomness, so they are exempt from the package-level ban.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !SimStatePattern.MatchString(pass.Pkg.Path()) {
		return nil
	}
	seen := map[string]bool{} // dedupe: nested map-range walks can revisit a node
	reportf := func(pos token.Pos, format string, args ...any) {
		p := pass.Fset.Position(pos)
		key := p.String() + format
		if seen[key] {
			return
		}
		seen[key] = true
		pass.Reportf(pos, format, args...)
	}

	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if imp.Path.Value == `"crypto/rand"` {
				reportf(imp.Pos(), "crypto/rand imported in simulation-state package: entropy breaks bit-exact replay")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, reportf, n)
			case *ast.RangeStmt:
				if isMapRange(pass, n) && !pass.Directive(n.Pos(), "//simlint:ordered") {
					checkMapRange(pass, reportf, file, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, reportf func(token.Pos, string, ...any), call *ast.CallExpr) {
	path, name, ok := pass.ImportedPath(call.Fun)
	if !ok {
		return
	}
	reasons, banned := forbiddenCalls[path]
	if !banned {
		return
	}
	if reasons == nil { // whole package banned except constructors
		if randConstructors[name] {
			return
		}
		reportf(call.Pos(), "%s.%s uses the unseeded global random stream: seed a local rand.New(rand.NewSource(seed)) instead", path, name)
		return
	}
	reason, bad := reasons[name]
	if !bad {
		return
	}
	if path == "time" && pass.Directive(call.Pos(), "//simlint:wallclock") {
		return
	}
	reportf(call.Pos(), "%s.%s (%s) in simulation-state package: derive timing from the cycle counter", path, name, reason)
}

func isMapRange(pass *framework.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// allowedCallPkgs are packages whose functions are pure and order-safe to
// call from inside a map-iteration body.
var allowedCallPkgs = map[string]bool{"math": true, "math/bits": true}

// sortCalls recognizes "this slice gets sorted" call sites.
var sortCalls = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Sort": true, "Stable": true, "Slice": true, "SliceStable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// checkMapRange enforces the collection discipline: a map-iteration body
// may only write function-local state through order-independent stores
// (keyed writes, integer accumulation) or append into a local slice that is
// sorted after the loop. Everything else — calls with side effects,
// non-local writes, float accumulation, order-dependent returns — is
// reported.
func checkMapRange(pass *framework.Pass, reportf func(token.Pos, string, ...any), file *ast.File, rng *ast.RangeStmt) {
	fn := enclosingFunc(file, rng.Pos())
	needSort := map[types.Object]token.Pos{} // local slices appended to, in map order

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkBodyCall(pass, reportf, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				checkStore(pass, reportf, fn, rng, lhs, rhs, n.Tok, needSort)
			}
		case *ast.IncDecStmt:
			checkStore(pass, reportf, fn, rng, n.X, nil, n.Tok, needSort)
		case *ast.SendStmt:
			reportf(n.Pos(), "channel send inside map iteration publishes elements in map order")
		case *ast.GoStmt:
			reportf(n.Pos(), "goroutine launched inside map iteration: scheduling becomes map-order dependent")
		case *ast.DeferStmt:
			reportf(n.Pos(), "defer inside map iteration runs in map order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tv, ok := pass.TypesInfo.Types[res]; ok && tv.Value != nil {
					continue // constant result: which element matched doesn't show
				}
				reportf(n.Pos(), "return of element-dependent value inside map iteration: which element wins depends on map order")
				break
			}
		}
		return true
	})

	// Every slice that accumulated elements in map order must be sorted
	// somewhere after the loop in the same function.
	for obj, appendPos := range needSort {
		if !sortedAfter(pass, fn, obj, rng.End()) {
			reportf(appendPos, "%s accumulates map keys/values in map order and is never sorted; sort it after the loop or mark the loop //simlint:ordered", obj.Name())
		}
	}
}

func checkBodyCall(pass *framework.Pass, reportf func(token.Pos, string, ...any), call *ast.CallExpr) {
	// Type conversions are pure.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if path, _, ok := pass.ImportedPath(call.Fun); ok && allowedCallPkgs[path] {
		return
	}
	reportf(call.Pos(), "call with potential side effects inside map iteration: effects occur in map order")
}

// checkStore classifies one written lvalue inside a map-range body.
func checkStore(pass *framework.Pass, reportf func(token.Pos, string, ...any), fn ast.Node, rng *ast.RangeStmt, lhs ast.Expr, rhs ast.Expr, tok token.Token, needSort map[types.Object]token.Pos) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root, deref := rootIdent(pass, lhs)
	if root == nil {
		reportf(lhs.Pos(), "write through non-addressable expression inside map iteration")
		return
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return
	}
	if !localTo(fn, obj) {
		reportf(lhs.Pos(), "write to non-local %s inside map iteration: state mutates in map order", root.Name)
		return
	}
	if deref {
		reportf(lhs.Pos(), "write through pointer %s inside map iteration may mutate shared state in map order", root.Name)
		return
	}
	// Float accumulation is order-dependent even on locals: float addition
	// is not associative, so the sum's low bits vary run to run.
	if tok == token.ADD_ASSIGN || tok == token.SUB_ASSIGN || tok == token.MUL_ASSIGN || tok == token.QUO_ASSIGN {
		if tv, ok := pass.TypesInfo.Types[lhs]; ok && isFloat(tv.Type) {
			reportf(lhs.Pos(), "floating-point accumulation over map iteration: float ops are not associative, so the result depends on map order")
			return
		}
	}
	// Appends build the slice in map order: demand a later sort — unless
	// the slice is declared inside the loop body, where it cannot
	// accumulate elements across iterations and so cannot observe map
	// order.
	if _, isIdent := lhs.(*ast.Ident); isIdent && rhs != nil {
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				if localTo(rng.Body, obj) {
					return
				}
				if _, tracked := needSort[obj]; !tracked {
					needSort[obj] = lhs.Pos()
				}
			}
		}
	}
}

// rootIdent walks an lvalue to its base identifier, noting whether the path
// crosses a pointer dereference (explicit * or implicit via selector/index
// on a pointer).
func rootIdent(pass *framework.Pass, e ast.Expr) (root *ast.Ident, deref bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, deref
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			deref = true
			e = x.X
		case *ast.SelectorExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					deref = true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					deref = true
				}
			}
			e = x.X
		default:
			return nil, deref
		}
	}
}

// localTo reports whether obj is declared inside the given function node.
func localTo(fn ast.Node, obj types.Object) bool {
	if fn == nil {
		return false
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() {
		return false
	}
	return obj.Pos() >= fn.Pos() && obj.Pos() <= fn.End()
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var fn ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() < pos {
			return n.Pos() <= pos && pos <= n.End()
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = n
		}
		return true
	})
	return fn
}

// sortedAfter reports whether obj is passed to a recognized sort call after
// pos within fn.
func sortedAfter(pass *framework.Pass, fn ast.Node, obj types.Object, pos token.Pos) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		path, name, ok := pass.ImportedPath(call.Fun)
		if !ok || !sortCalls[path][name] || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
