package nondeterminism_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/nondeterminism"
)

// TestFixtures drives the analyzer over both the in-scope fixture (its
// path embeds internal/sim, so the default SimStatePattern applies) and the
// out-of-scope fixture (same constructs, zero expected diagnostics).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, nondeterminism.Analyzer,
		"testdata/src/internal/sim",
		"testdata/src/other",
	)
}
