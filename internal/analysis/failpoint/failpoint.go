// Package failpoint enforces the failpoint-site registry discipline: every
// fault.Register call must take a string constant declared in the single
// registry file (internal/fault/sites.go), each registry constant may back
// at most one site, and registry constants that no code registers are dead
// documentation. Together these make EMCSIM_FAILPOINTS docs, chaos
// schedules, and the code agree by construction — a renamed or deleted
// site fails the build instead of silently injecting nothing.
package failpoint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// FaultPkgSuffix identifies the failpoint framework package by import-path
// suffix, so the analyzer works on both the real internal/fault and the
// fixture mirror under testdata.
var FaultPkgSuffix = "internal/fault"

// RegistryFile is the single file allowed to declare site-name constants.
var RegistryFile = "sites.go"

// Analyzer is the failpoint pass.
var Analyzer = &framework.Analyzer{
	Name: "failpoint",
	Doc: "require fault.Register sites to be unique constants from the registry file\n\n" +
		"Site names flow into EMCSIM_FAILPOINTS and chaos schedules; a registry file plus this pass keeps those docs and the code in lockstep.",
	Run:   run,
	Begin: begin,
	End:   end,
}

// runState is the module-wide bookkeeping for one driver run.
type runState struct {
	// used maps "pkgpath.ConstName" of a registry constant to the position
	// of the Register call that claimed it.
	used map[string]token.Pos
	// declared maps the same key to the declaration position, for registry
	// constants seen while analyzing the fault package's source.
	declared map[string]token.Pos
	// values maps site-name string values to the first declaring constant,
	// to reject two registry constants spelling the same site.
	values       map[string]string
	faultScanned bool
	sawRegister  bool
}

var state runState

func begin() {
	state = runState{
		used:     map[string]token.Pos{},
		declared: map[string]token.Pos{},
		values:   map[string]string{},
	}
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	if isFaultPkg(pass.Pkg.Path()) {
		checkRegistry(pass)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pass.ImportedPath(call.Fun); ok && isFaultPkg(path) && name == "Register" {
				checkRegisterCall(pass, call)
			}
			return true
		})
	}
	return nil
}

func isFaultPkg(path string) bool {
	return path == FaultPkgSuffix || strings.HasSuffix(path, "/"+FaultPkgSuffix)
}

// checkRegistry validates the fault package's own registry file: constant
// string values must be unique, and nothing outside the registry file may
// declare site-looking exported Site* constants.
func checkRegistry(pass *framework.Pass) {
	state.faultScanned = true
	for _, file := range pass.Files {
		fname := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		inRegistry := fname == RegistryFile
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || obj.Val().Kind() != constant.String {
						continue
					}
					if !inRegistry {
						if strings.HasPrefix(name.Name, "Site") {
							pass.Reportf(name.Pos(), "site constant %s declared outside %s: all failpoint sites live in the registry file", name.Name, RegistryFile)
						}
						continue
					}
					val := constant.StringVal(obj.Val())
					if prev, dup := state.values[val]; dup {
						pass.Reportf(name.Pos(), "duplicate failpoint site name %q: already declared as %s", val, prev)
					} else {
						state.values[val] = name.Name
					}
					state.declared[pass.Pkg.Path()+"."+name.Name] = name.Pos()
				}
			}
		}
	}
}

// checkRegisterCall validates one fault.Register call site.
func checkRegisterCall(pass *framework.Pass, call *ast.CallExpr) {
	state.sawRegister = true
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil {
		pass.Reportf(arg.Pos(), "fault.Register argument must be a string constant from the %s registry, not a computed value", RegistryFile)
		return
	}
	obj := constObject(pass, arg)
	if obj == nil || obj.Pkg() == nil || !isFaultPkg(obj.Pkg().Path()) {
		pass.Reportf(arg.Pos(), "fault site name must be a constant declared in %s/%s, not %s", FaultPkgSuffix, RegistryFile, describeArg(tv))
		return
	}
	// When the importer gives us real positions (unified export data does),
	// pin the declaration to the registry file itself.
	if p := pass.Fset.Position(obj.Pos()); p.IsValid() && p.Filename != "" {
		if filepath.Base(p.Filename) != RegistryFile {
			pass.Reportf(arg.Pos(), "fault site constant %s is declared in %s, not the %s registry", obj.Name(), filepath.Base(p.Filename), RegistryFile)
			return
		}
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if prev, dup := state.used[key]; dup {
		pass.Reportf(arg.Pos(), "failpoint site %s already registered at %s: sites must be unique across the module", obj.Name(), pass.Fset.Position(prev))
		return
	}
	state.used[key] = arg.Pos()
}

// constObject resolves the identifier or selector the argument names to its
// constant object, if any.
func constObject(pass *framework.Pass, arg ast.Expr) *types.Const {
	var id *ast.Ident
	switch a := arg.(type) {
	case *ast.Ident:
		id = a
	case *ast.SelectorExpr:
		id = a.Sel
	default:
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

func describeArg(tv types.TypeAndValue) string {
	if tv.Value != nil && tv.Value.Kind() == constant.String {
		return "the literal " + tv.Value.String()
	}
	return "this expression"
}

// end reports registry constants that no Register call consumed. It only
// fires when the run analyzed both the fault package and at least one
// registering package, so partial-module runs don't produce false drift.
func end(report func(token.Pos, string)) {
	if !state.faultScanned || !state.sawRegister {
		return
	}
	var unused []string
	for key := range state.declared {
		if _, ok := state.used[key]; !ok {
			unused = append(unused, key)
		}
	}
	sort.Strings(unused)
	for _, key := range unused {
		name := key[strings.LastIndex(key, ".")+1:]
		report(state.declared[key], "registry constant "+name+" is never passed to fault.Register: the site registry has drifted from the code")
	}
}
