package failpoint_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/failpoint"
)

// TestFixtures loads the fixture fault package and a consumer package in
// one run, so the module-wide checks (cross-package uniqueness, registry
// drift) see both sides.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, failpoint.Analyzer,
		"testdata/src/internal/fault",
		"testdata/src/use",
	)
}
