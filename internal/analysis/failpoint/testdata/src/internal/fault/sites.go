package fault

// The registry file: one constant per failpoint site.
const (
	SiteGood   = "good/site"
	SiteOther  = "other/site"
	SiteDupA   = "dup/site"
	SiteDupB   = "dup/site"     // want `duplicate failpoint site name "dup/site": already declared as SiteDupA`
	SiteUnused = "unused/site"  // want `registry constant SiteUnused is never passed to fault\.Register`
)
