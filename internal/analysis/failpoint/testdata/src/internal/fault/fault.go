// Package fault is a fixture mirror of the real failpoint framework: just
// enough surface for the analyzer to recognize Register call sites.
package fault

// Point mimics the real failpoint site handle.
type Point struct{ name string }

// Register mimics the real registration entry point.
func Register(name string) *Point { return &Point{name: name} }

// SiteRogue is a site-looking constant declared outside the registry file.
const SiteRogue = "rogue/site" // want `site constant SiteRogue declared outside sites\.go`
