// Package use exercises every shape of fault.Register call site.
package use

import (
	fault "repro/internal/analysis/failpoint/testdata/src/internal/fault"
)

// Clean: distinct registry constants, one site each.
var (
	fpGood  = fault.Register(fault.SiteGood)
	fpOther = fault.Register(fault.SiteOther)
	fpDupA  = fault.Register(fault.SiteDupA)
	fpDupB  = fault.Register(fault.SiteDupB)
)

// Violations.
var (
	fpLiteral = fault.Register("raw/site")        // want `must be a constant declared in internal/fault/sites\.go`
	fpRogue   = fault.Register(fault.SiteRogue)   // want `declared in fault\.go, not the sites\.go registry`
	fpAgain   = fault.Register(fault.SiteGood)    // want `failpoint site SiteGood already registered`
	fpLocal   = fault.Register(localSite)         // want `must be a constant declared in internal/fault/sites\.go`
	fpDynamic = fault.Register(dynamicName())     // want `must be a string constant from the sites\.go registry`
)

const localSite = "local/site"

func dynamicName() string { return "dyn/site" }
