// Package a is the defining side of the cross-package atomichygiene
// fixture: every access to its words is atomic, so this package is clean;
// the races live in sibling package b.
package a

import "sync/atomic"

// Hits is an exported package-level counter, accessed atomically here.
var Hits int64

// Counter carries an exported word accessed atomically by its methods.
type Counter struct {
	Inflight int64
}

// Bump increments the package counter atomically.
func Bump() {
	atomic.AddInt64(&Hits, 1)
}

// Start increments the field atomically.
func (c *Counter) Start() {
	atomic.AddInt64(&c.Inflight, 1)
}

// Done decrements the field atomically.
func (c *Counter) Done() {
	atomic.AddInt64(&c.Inflight, -1)
}
