// Package b is the racing side of the cross-package atomichygiene fixture:
// it accesses package a's atomically-maintained words plainly. A
// per-package analysis cannot see these — the atomic accesses are all in a.
package b

import (
	"sync/atomic"

	a "repro/internal/analysis/atomichygiene/testdata/src/xpkg/a"
)

// Peek reads the package counter without atomics.
func Peek() int64 {
	return a.Hits // want `plain access to Hits, which is accessed with sync/atomic`
}

// Reset writes the field without atomics.
func Reset(c *a.Counter) {
	c.Inflight = 0 // want `plain access to Inflight, which is accessed with sync/atomic`
}

// PeekAtomic reads cross-package through sync/atomic: clean.
func PeekAtomic() int64 {
	return atomic.LoadInt64(&a.Hits)
}

// Load reads the field atomically: clean.
func Load(c *a.Counter) int64 {
	return atomic.LoadInt64(&c.Inflight)
}

// ResetReviewed carries the reviewed escape: clean.
func ResetReviewed(c *a.Counter) {
	c.Inflight = 0 //simlint:atomicok single-owner reset during handover barrier
}
