// Package atomics is the atomichygiene fixture: mixed plain/atomic word
// access and by-value copies of atomic types must be flagged; disciplined
// access and pointer plumbing must stay quiet.
package atomics

import "sync/atomic"

// Stats mixes a sync/atomic-function word (hits) with a method-based
// atomic (count) and an unrelated plain field (name).
type Stats struct {
	hits  int64
	count atomic.Int64
	name  string
}

// record accesses hits atomically everywhere: clean.
func (s *Stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

// snapshot reads hits atomically and name plainly: clean.
func (s *Stats) snapshot() (int64, string) {
	return atomic.LoadInt64(&s.hits), s.name
}

// raceyRead reads a word that record() accesses atomically.
func (s *Stats) raceyRead() int64 {
	return s.hits // want `plain access to hits, which is accessed with sync/atomic`
}

// raceyWrite increments the same word without atomics.
func (s *Stats) raceyWrite() {
	s.hits++ // want `plain access to hits, which is accessed with sync/atomic`
}

// construct initializes before publication; the reviewed directive
// suppresses the finding.
func construct() *Stats {
	s := &Stats{}
	s.hits = 0 //simlint:atomicok single-threaded construction
	return s
}

// byValueParam copies an atomic counter into the callee.
func byValueParam(c atomic.Int64) int64 { // want `parameter copies sync/atomic\.Int64 by value`
	return c.Load()
}

// byPointerParam is the fix: clean.
func byPointerParam(c *atomic.Int64) int64 {
	return c.Load()
}

// byValueResult returns a copy of the live counter.
func (s *Stats) byValueResult() atomic.Int64 { // want `result copies sync/atomic\.Int64 by value`
	return s.count
}

// valueReceiver copies the whole atomic-bearing struct per call.
func (s Stats) valueReceiver() int64 { // want `value receiver of valueReceiver copies .*Stats by value`
	return s.count.Load()
}

// copyAssign forks the counter.
func copyAssign(s *Stats) {
	c := s.count // want `assignment copies sync/atomic\.Int64 by value`
	_ = c
}

// pointerAssign is the fix: clean.
func pointerAssign(s *Stats) {
	c := &s.count
	_ = c
}

// rangeCopy copies each atomic-bearing element.
func rangeCopy(ss []Stats) int64 {
	var total int64
	for _, s := range ss { // want `range clause copies .*Stats by value`
		total += s.count.Load()
	}
	return total
}

// rangePointers iterates by index: clean.
func rangePointers(ss []Stats) int64 {
	var total int64
	for i := range ss {
		total += ss[i].count.Load()
	}
	return total
}
