package atomichygiene_test

import (
	"testing"

	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/framework/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, atomichygiene.Analyzer, "testdata/src/atomics")
}
