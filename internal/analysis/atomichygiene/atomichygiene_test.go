package atomichygiene_test

import (
	"testing"

	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/framework/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, atomichygiene.Analyzer, "testdata/src/atomics")
}

// TestCrossPackage proves the module-wide half: package b races on words
// whose atomic accesses all live in package a, which per-package analysis
// structurally cannot see.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, atomichygiene.Analyzer, "testdata/src/xpkg/a", "testdata/src/xpkg/b")
}
