// Package atomichygiene enforces the concurrency discipline around
// sync/atomic: a word that is ever accessed through sync/atomic functions
// must be accessed that way everywhere (a single plain load/store next to
// atomic ones is a data race the race detector only catches when the
// interleaving cooperates), and the method-based atomic types
// (atomic.Int64, atomic.Pointer[T], ...) must never be copied by value —
// a copy silently forks the counter. go vet's copylocks pass does not
// cover the atomic value types because they are not Lockers; this pass
// closes that gap. Line-scoped //simlint:atomicok suppresses a reviewed
// finding (e.g. single-threaded construction before publication).
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomichygiene pass.
var Analyzer = &framework.Analyzer{
	Name: "atomichygiene",
	Doc: "flag mixed plain/atomic access and by-value copies of sync/atomic types\n\n" +
		"Counters read by /metrics while workers add to them must be atomic on every path, and atomic.Int64-style values must move by pointer.",
	Run: run,
}

// atomicPtrFuncs are the sync/atomic functions whose first argument is the
// address of the word they operate on.
var atomicPtrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

type posRange struct{ from, to token.Pos }

func run(pass *framework.Pass) error {
	atomicWords := map[types.Object]token.Pos{} // object -> first atomic access
	var sanctioned []posRange                   // &word expressions inside atomic calls

	// Pass A: find every word accessed through sync/atomic in this package.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pass.ImportedPath(call.Fun)
			if !ok || path != "sync/atomic" || !atomicPtrFuncs[name] || len(call.Args) == 0 {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObject(pass, un.X); obj != nil {
					if _, seen := atomicWords[obj]; !seen {
						atomicWords[obj] = call.Pos()
					}
					sanctioned = append(sanctioned, posRange{un.Pos(), un.End()})
				}
			}
			return true
		})
	}

	// Pass B: any other appearance of those words is a mixed plain access.
	// Selector fields are caught via their Sel identifier, which ast.Inspect
	// visits as a plain *ast.Ident.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			first, isAtomic := atomicWords[obj]
			if !isAtomic || within(sanctioned, id.Pos()) || pass.Directive(id.Pos(), "//simlint:atomicok") {
				return true
			}
			pass.Reportf(id.Pos(), "plain access to %s, which is accessed with sync/atomic at %s: mixed access is a data race",
				obj.Name(), pass.Fset.Position(first))
			return true
		})
	}

	// Pass C: by-value copies of method-based atomic types.
	for _, file := range pass.Files {
		checkCopies(pass, file)
	}
	return nil
}

// addressedObject resolves &expr's operand to the field or variable object
// whose address is taken.
func addressedObject(pass *framework.Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[x.Sel]
	case *ast.IndexExpr:
		return addressedObject(pass, x.X)
	}
	return nil
}

func within(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r.from && pos <= r.to {
			return true
		}
	}
	return false
}

// checkCopies flags signatures, receivers, assignments and range clauses
// that move an atomic-bearing value by value.
func checkCopies(pass *framework.Pass, file *ast.File) {
	report := func(pos token.Pos, t types.Type, what string) {
		if pass.Directive(pos, "//simlint:atomicok") {
			return
		}
		pass.Reportf(pos, "%s copies %s by value: sync/atomic values must move by pointer, or the copy forks the counter", what, t)
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 {
				recv := n.Recv.List[0]
				t := declaredType(pass, recv.Type)
				if t == nil && len(recv.Names) == 1 {
					t = exprType(pass, recv.Names[0])
				}
				if t != nil && atomicBearing(t, 0) {
					report(recv.Pos(), t, "value receiver of "+n.Name.Name)
				}
			}
			checkFieldList(pass, report, n.Type.Params, "parameter")
			checkFieldList(pass, report, n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(pass, report, n.Type.Params, "parameter")
			checkFieldList(pass, report, n.Type.Results, "result")
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // discard, not a live copy
				}
				if !isExistingValue(rhs) {
					continue
				}
				if t := exprType(pass, rhs); t != nil && atomicBearing(t, 0) {
					report(rhs.Pos(), t, "assignment")
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := exprType(pass, n.Value); t != nil && atomicBearing(t, 0) {
					report(n.Value.Pos(), t, "range clause")
				}
			}
		}
		return true
	})
}

func checkFieldList(pass *framework.Pass, report func(token.Pos, types.Type, string), fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if t := declaredType(pass, f.Type); t != nil && atomicBearing(t, 0) {
			report(f.Pos(), t, what)
		}
	}
}

func declaredType(pass *framework.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// exprType resolves an expression's type, falling back to the defined or
// used object for identifiers (range-clause vars live in Defs, not Types).
func exprType(pass *framework.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isExistingValue reports whether rhs denotes an already-live value (whose
// assignment therefore copies it), as opposed to a fresh composite literal
// or call result.
func isExistingValue(rhs ast.Expr) bool {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// atomicBearing reports whether t is (or transitively embeds by value) one
// of sync/atomic's struct types. Pointers, slices and maps break the
// containment: indirection is exactly the fix.
func atomicBearing(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if atomicBearing(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return atomicBearing(u.Elem(), depth+1)
	}
	return false
}
