// Package atomichygiene enforces the concurrency discipline around
// sync/atomic: a word that is ever accessed through sync/atomic functions
// must be accessed that way everywhere (a single plain load/store next to
// atomic ones is a data race the race detector only catches when the
// interleaving cooperates), and the method-based atomic types
// (atomic.Int64, atomic.Pointer[T], ...) must never be copied by value —
// a copy silently forks the counter. go vet's copylocks pass does not
// cover the atomic value types because they are not Lockers; this pass
// closes that gap. Line-scoped //simlint:atomicok suppresses a reviewed
// finding (e.g. single-threaded construction before publication).
//
// Mixed-access detection runs module-wide on the cross-package IR: a word
// accessed atomically in one package and plainly in another (an exported
// counter incremented by a sibling package, a field reached through a
// returned pointer) is the race the per-package view structurally cannot
// see. Words are identified by their stable framework keys ("pkg.Type.field"
// for fields, "pkg.v" for package vars), because object pointers are not
// comparable across per-package type-checks. The by-value-copy pass stays
// per-package — a copy is visible where it happens.
package atomichygiene

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the atomichygiene pass.
var Analyzer = &framework.Analyzer{
	Name: "atomichygiene",
	Doc: "flag mixed plain/atomic access (module-wide) and by-value copies of sync/atomic types\n\n" +
		"Counters read by /metrics while workers add to them must be atomic on every path — even across packages — and atomic.Int64-style values must move by pointer.",
	Run:       run,
	RunModule: runModule,
}

// atomicPtrFuncs are the sync/atomic functions whose first argument is the
// address of the word they operate on.
var atomicPtrFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

type posRange struct{ from, to token.Pos }

// run is the per-package half: by-value copies of method-based atomic
// types. Mixed plain/atomic access lives in runModule.
func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		checkCopies(pass, file)
	}
	return nil
}

// runModule is the cross-package half: collect every word accessed through
// sync/atomic anywhere in the module, then flag plain accesses to those
// words in every package.
func runModule(mp *framework.ModulePass) error {
	words := map[string]token.Pos{} // stable word key -> first atomic access
	var sanctioned []posRange       // &word expressions inside atomic calls

	// Pass A: module-wide atomic-access inventory.
	for _, pkg := range mp.Packages {
		for _, file := range pkg.Syntax {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := framework.CalleeOf(pkg.TypesInfo, call)
				if callee == nil || callee.Pkg() == nil ||
					callee.Pkg().Path() != "sync/atomic" || !atomicPtrFuncs[callee.Name()] {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					keys := wordKeys(mp, pkg, un.X)
					if len(keys) == 0 {
						continue
					}
					for _, key := range keys {
						if _, seen := words[key]; !seen {
							words[key] = call.Pos()
						}
					}
					sanctioned = append(sanctioned, posRange{un.Pos(), un.End()})
				}
				return true
			})
		}
	}
	if len(words) == 0 {
		return nil
	}

	// Pass B: any other appearance of a tracked word, in any package, is a
	// mixed plain access. Selectors are matched as a unit (and only their
	// base is descended into) so one access reports once.
	for _, pkg := range mp.Packages {
		for _, file := range pkg.Syntax {
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkAccess(mp, pkg, n, n.Sel.Name, words, sanctioned)
					ast.Inspect(n.X, walk)
					return false
				case *ast.Ident:
					// A declaration is not an access.
					if pkg.TypesInfo.Defs[n] == nil {
						checkAccess(mp, pkg, n, n.Name, words, sanctioned)
					}
				}
				return true
			}
			ast.Inspect(file, walk)
		}
	}
	return nil
}

// wordKeys resolves the operand of &expr in an atomic call to its stable
// identities: the structural ExprKey ("pkg.Type.field" / "pkg.v"), which
// matches accesses from any package, plus the declaration-position key,
// which matches unqualified field references inside the owning package's
// methods.
func wordKeys(mp *framework.ModulePass, pkg *framework.Package, e ast.Expr) []string {
	var keys []string
	if key, ok := framework.ExprKey(mp.Fset, pkg.TypesInfo, e); ok {
		keys = append(keys, key)
	}
	if obj := addressedObject(pkg, e); obj != nil {
		if dk := declKey(mp, obj); dk != "" && (len(keys) == 0 || keys[0] != dk) {
			keys = append(keys, dk)
		}
	}
	return keys
}

// checkAccess reports e if it resolves to a tracked atomic word outside a
// sanctioned &word range.
func checkAccess(mp *framework.ModulePass, pkg *framework.Package, e ast.Expr, name string, words map[string]token.Pos, sanctioned []posRange) {
	for _, key := range wordKeys(mp, pkg, e) {
		first, isAtomic := words[key]
		if !isAtomic {
			continue
		}
		if within(sanctioned, e.Pos()) || mp.Directive(e.Pos(), "//simlint:atomicok") {
			return
		}
		mp.Reportf(e.Pos(), "plain access to %s, which is accessed with sync/atomic at %s: mixed access is a data race",
			name, mp.Fset.Position(first))
		return
	}
}

// declKey is the declaration-position identity of a word: stable within the
// module (all packages are loaded from source) but never derivable from
// export data, so it only links same-package unqualified references.
func declKey(mp *framework.ModulePass, obj types.Object) string {
	if obj == nil || obj.Pkg() == nil || !obj.Pos().IsValid() {
		return ""
	}
	return fmt.Sprintf("%s.%s@%d", obj.Pkg().Path(), obj.Name(), mp.Fset.Position(obj.Pos()).Offset)
}

// addressedObject resolves &expr's operand to the field or variable object
// whose address is taken.
func addressedObject(pkg *framework.Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return pkg.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return pkg.TypesInfo.Uses[x.Sel]
	case *ast.IndexExpr:
		return addressedObject(pkg, x.X)
	}
	return nil
}

func within(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r.from && pos <= r.to {
			return true
		}
	}
	return false
}

// checkCopies flags signatures, receivers, assignments and range clauses
// that move an atomic-bearing value by value.
func checkCopies(pass *framework.Pass, file *ast.File) {
	report := func(pos token.Pos, t types.Type, what string) {
		if pass.Directive(pos, "//simlint:atomicok") {
			return
		}
		pass.Reportf(pos, "%s copies %s by value: sync/atomic values must move by pointer, or the copy forks the counter", what, t)
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 {
				recv := n.Recv.List[0]
				t := declaredType(pass, recv.Type)
				if t == nil && len(recv.Names) == 1 {
					t = exprType(pass, recv.Names[0])
				}
				if t != nil && atomicBearing(t, 0) {
					report(recv.Pos(), t, "value receiver of "+n.Name.Name)
				}
			}
			checkFieldList(pass, report, n.Type.Params, "parameter")
			checkFieldList(pass, report, n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(pass, report, n.Type.Params, "parameter")
			checkFieldList(pass, report, n.Type.Results, "result")
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // discard, not a live copy
				}
				if !isExistingValue(rhs) {
					continue
				}
				if t := exprType(pass, rhs); t != nil && atomicBearing(t, 0) {
					report(rhs.Pos(), t, "assignment")
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := exprType(pass, n.Value); t != nil && atomicBearing(t, 0) {
					report(n.Value.Pos(), t, "range clause")
				}
			}
		}
		return true
	})
}

func checkFieldList(pass *framework.Pass, report func(token.Pos, types.Type, string), fl *ast.FieldList, what string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if t := declaredType(pass, f.Type); t != nil && atomicBearing(t, 0) {
			report(f.Pos(), t, what)
		}
	}
}

func declaredType(pass *framework.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// exprType resolves an expression's type, falling back to the defined or
// used object for identifiers (range-clause vars live in Defs, not Types).
func exprType(pass *framework.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isExistingValue reports whether rhs denotes an already-live value (whose
// assignment therefore copies it), as opposed to a fresh composite literal
// or call result.
func isExistingValue(rhs ast.Expr) bool {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// atomicBearing reports whether t is (or transitively embeds by value) one
// of sync/atomic's struct types. Pointers, slices and maps break the
// containment: indirection is exactly the fix.
func atomicBearing(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if atomicBearing(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return atomicBearing(u.Elem(), depth+1)
	}
	return false
}
