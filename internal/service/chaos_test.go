// Chaos suite: seeded, randomized fault schedules driven through the public
// Service API with failpoints armed underneath (run it under -race; `make
// chaos` runs 50 schedules). Each schedule arms a random subset of sites
// with seeded policies, submits a burst of jobs over a small config pool
// (so coalescing and cache hits are in play), randomly cancels some, drains,
// and then asserts the invariants that define "no lost, duplicated, or torn
// results":
//
//   - every job reaches a terminal state;
//   - every done job's Result hashes identically to an undisturbed
//     reference run of its configuration (torn-result guard);
//   - the books balance: done + failed + cancelled == submitted;
//   - every failure is an injected fault (retry budget exhaustion over
//     injected panics), never an unexplained error;
//   - with a durable cache: after a simulated process restart (new Service
//     over the same directory, plus random on-disk corruption), completed
//     configs are served from the cache bit-identically, and corrupt
//     records are quarantined, not served.
//
// Failpoints are process-global, so schedules run sequentially — no
// t.Parallel anywhere in this file.
package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
)

// chaosPool is the configuration pool schedules draw from: small enough
// that duplicates (coalescing, cache hits) are common, varied enough to
// cover the EMC path.
func chaosPool() []sim.Config {
	var pool []sim.Config
	for seed := uint64(1); seed <= 3; seed++ {
		pool = append(pool, tinyCfg(seed))
	}
	emc := tinyCfg(4)
	emc.EMCEnabled = true
	pool = append(pool, emc)
	return pool
}

// chaosSchedules reads the schedule count: EMCSIM_CHAOS_SCHEDULES (make
// chaos sets 50), defaulting low enough to keep plain `go test` fast.
func chaosSchedules(t *testing.T) int {
	if v := os.Getenv("EMCSIM_CHAOS_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad EMCSIM_CHAOS_SCHEDULES %q", v)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 10
}

func TestChaosSchedules(t *testing.T) {
	pool := chaosPool()
	// Reference hashes come from undisturbed direct runs, before any
	// failpoint is armed.
	fault.DisableAll()
	refs := make([]uint64, len(pool))
	for i, cfg := range pool {
		refs[i] = runTiny(t, cfg).Hash()
	}
	n := chaosSchedules(t)
	for seed := 1; seed <= n; seed++ {
		t.Run(fmt.Sprintf("schedule-%03d", seed), func(t *testing.T) {
			runChaosSchedule(t, int64(seed), pool, refs)
		})
	}
}

// armRandom arms a random subset of failpoints with policies derived from
// rng, returning a description for failure messages.
func armRandom(t *testing.T, rng *rand.Rand, durable bool) string {
	desc := ""
	arm := func(name string, trig fault.Trigger) {
		p, ok := fault.Lookup(name)
		if !ok {
			t.Fatalf("failpoint %s not registered", name)
		}
		p.Enable(trig)
		desc += fmt.Sprintf(" %s=%+v", name, trig)
	}
	prob := func(p float64) fault.Trigger {
		return fault.Trigger{Prob: p, Seed: rng.Uint64() | 1}
	}
	if rng.Float64() < 0.5 {
		arm("service/worker.prerun", prob(0.2+0.3*rng.Float64()))
	}
	if rng.Float64() < 0.5 {
		arm("service/worker.postrun", prob(0.2+0.3*rng.Float64()))
	}
	if rng.Float64() < 0.4 {
		arm("sim/cycle", fault.Trigger{
			After: uint64(100 + rng.Intn(3000)),
			Prob:  0.5,
			Seed:  rng.Uint64() | 1,
			Once:  rng.Intn(2) == 0,
		})
	}
	if rng.Float64() < 0.4 {
		arm("service/cache.get", prob(0.3))
	}
	if rng.Float64() < 0.4 {
		arm("service/cache.put", prob(0.3))
	}
	if durable && rng.Float64() < 0.5 {
		arm("service/durable.put", prob(0.3))
	}
	if rng.Float64() < 0.2 {
		arm("service/queue.admit", prob(0.2))
	}
	return desc
}

func runChaosSchedule(t *testing.T, seed int64, pool []sim.Config, refs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	fault.DisableAll()
	t.Cleanup(fault.DisableAll)

	durable := rng.Intn(2) == 0
	svcCfg := Config{
		Workers:          1 + rng.Intn(3),
		QueueCap:         16 + rng.Intn(16),
		CacheCap:         64, // roomy: durable reopen asserts on resident entries
		MaxRetries:       1 + rng.Intn(3),
		ProgressInterval: 500,
	}
	if durable {
		svcCfg.CacheDir = t.TempDir()
	}
	if rng.Intn(2) == 0 {
		svcCfg.HungTimeout = 50 * time.Millisecond
	}
	faults := armRandom(t, rng, durable)

	s, err := Open(svcCfg)
	if err != nil {
		t.Fatalf("open (faults:%s): %v", faults, err)
	}

	type tracked struct {
		j    *Job
		pool int
	}
	var jobs []tracked
	byID := map[string]int{} // job id -> pool index (coalesced dups collapse)
	total := 6 + rng.Intn(8)
	for i := 0; i < total; i++ {
		ci := rng.Intn(len(pool))
		j, err := s.Submit(fmt.Sprintf("client%d", rng.Intn(3)), pool[ci])
		if err != nil {
			// Backpressure and injected admission failures are legitimate
			// rejections; anything else is a bug.
			if !errors.Is(err, ErrQueueFull) && !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("submit (faults:%s): %v", faults, err)
			}
			continue
		}
		if prev, dup := byID[j.ID()]; dup && prev != ci {
			t.Fatalf("job %s coalesced across different configs (%d vs %d)", j.ID(), prev, ci)
		}
		byID[j.ID()] = ci
		jobs = append(jobs, tracked{j: j, pool: ci})
		if rng.Float64() < 0.2 {
			go func(id string, delay time.Duration) {
				time.Sleep(delay)
				s.Cancel(id) //nolint:errcheck // job may already be gone
			}(j.ID(), time.Duration(rng.Intn(20))*time.Millisecond)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil && !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("drain (faults:%s): %v", faults, err)
	}
	s.Close() //nolint:errcheck // idempotent after drain

	// Invariants.
	doneConfigs := map[int]bool{}
	for _, tr := range jobs {
		st := tr.j.Status()
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s (faults:%s)", st.ID, st.State, faults)
		}
		res, jerr, _ := tr.j.Result()
		switch st.State {
		case StateDone:
			if res == nil {
				t.Fatalf("done job %s lost its result (faults:%s)", st.ID, faults)
			}
			if got, want := res.Hash(), refs[tr.pool]; got != want {
				t.Fatalf("torn result: job %s hash %#x != reference %#x (faults:%s)",
					st.ID, got, want, faults)
			}
			doneConfigs[tr.pool] = true
		case StateFailed:
			if !errors.Is(jerr, fault.ErrInjected) {
				t.Fatalf("job %s failed for a non-injected reason: %v (faults:%s)", st.ID, jerr, faults)
			}
			if !errors.Is(jerr, ErrRetriesExhausted) {
				t.Fatalf("job %s failed without exhausting retries: %v (faults:%s)", st.ID, jerr, faults)
			}
		case StateCancelled:
			// Requested by the schedule (or shutdown); nothing to assert.
		}
	}
	st := s.Stats()
	if st.Done+st.Failed+st.Cancelled != st.Submitted {
		t.Fatalf("books do not balance: %+v (faults:%s)", st, faults)
	}

	if durable {
		chaosRestart(t, rng, svcCfg, pool, refs, doneConfigs, faults)
	}
}

// chaosRestart simulates the process dying and coming back: all faults
// disarmed (a fresh, healthy process), random corruption sprinkled into the
// cache directory, then a new Service over it. Every configuration that
// completed before the "crash" must be served bit-identically — from the
// durable cache when its record survived, recomputed otherwise — and
// corrupt records must be quarantined, never served.
func chaosRestart(t *testing.T, rng *rand.Rand, svcCfg Config, pool []sim.Config,
	refs []uint64, doneConfigs map[int]bool, faults string) {
	fault.DisableAll()
	corrupted := 0
	if rng.Float64() < 0.5 {
		names, _ := filepath.Glob(filepath.Join(svcCfg.CacheDir, "*"+durableExt))
		for _, name := range names {
			if rng.Float64() > 0.3 {
				continue
			}
			data, err := os.ReadFile(name)
			if err != nil || len(data) == 0 {
				continue
			}
			data[rng.Intn(len(data))] ^= 0xFF
			if err := os.WriteFile(name, data, 0o644); err == nil {
				corrupted++
			}
		}
	}

	s, err := Open(svcCfg)
	if err != nil {
		t.Fatalf("restart (faults:%s): %v", faults, err)
	}
	defer s.Close()
	st := s.Stats()
	if int(st.CacheQuarantined) != corrupted {
		t.Fatalf("restart quarantined %d records, corrupted %d (faults:%s)",
			st.CacheQuarantined, corrupted, faults)
	}
	for ci := range doneConfigs {
		j, err := s.Submit("restart", pool[ci])
		if err != nil {
			t.Fatalf("restart submit: %v", err)
		}
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("restart job for config %d: %v (faults:%s)", ci, err, faults)
		}
		if res.Hash() != refs[ci] {
			t.Fatalf("restart served a wrong result for config %d: %#x != %#x (cached=%v faults:%s)",
				ci, res.Hash(), refs[ci], j.Status().Cached, faults)
		}
	}
}
