package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestConcurrentSubmitCancelStress hammers the scheduler from many
// goroutines — duplicate submissions (coalescing + cache hits), eviction
// pressure from a tiny cache, racing cancels, and status reads — and then
// checks the books balance. Run under -race this is the queue/cache data-race
// suite required by the race target in the Makefile.
func TestConcurrentSubmitCancelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	s := New(Config{Workers: 4, QueueCap: 256, CacheCap: 2})
	defer s.Close()

	const (
		clients   = 4
		perClient = 8
		seeds     = 3 // few distinct configs => plenty of coalescing/cache traffic
	)
	mk := func(seed uint64) sim.Config {
		cfg := sim.Default([]string{"mcf", "sphinx3", "soplex", "libquantum"})
		cfg.InstrPerCore = 300
		cfg.Seed = seed
		return cfg
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted []*Job
	)
	for c := 0; c < clients; c++ {
		client := string(rune('a' + c))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				j, err := s.Submit(client, mk(uint64(1+i%seeds)))
				switch {
				case errors.Is(err, ErrQueueFull):
					continue
				case err != nil:
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				submitted = append(submitted, j)
				mu.Unlock()
				// Poke the read and cancel paths concurrently.
				_ = j.Status()
				if i%5 == 4 {
					_ = s.Cancel(j.ID())
				}
				_ = s.Stats()
				_ = s.Jobs()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	jobs := append([]*Job(nil), submitted...)
	mu.Unlock()
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil && !errors.Is(err, sim.ErrCancelled) {
			t.Fatalf("job %s: %v", j.ID(), err)
		}
		if st := j.Status(); !st.State.Terminal() {
			t.Fatalf("job %s not terminal: %s", st.ID, st.State)
		}
	}

	st := s.Stats()
	if st.Done+st.Failed+st.Cancelled == 0 {
		t.Fatal("nothing reached a terminal state")
	}
	if st.Failed != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
	if got := st.Done + st.Cancelled; got != st.Submitted {
		t.Fatalf("terminal jobs (%d) != submitted (%d): %+v", got, st.Submitted, st)
	}
	if st.CacheEntries > 2 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
}
