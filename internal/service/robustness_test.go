package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// mustPoint arms the named failpoint and disarms it when the test ends.
func mustPoint(t *testing.T, name string, trig fault.Trigger) *fault.Point {
	t.Helper()
	p, ok := fault.Lookup(name)
	if !ok {
		t.Fatalf("failpoint %s not registered", name)
	}
	p.Enable(trig)
	t.Cleanup(p.Disable)
	return p
}

// TestRetryBudgetExhausted is the structured-failure contract: a job that
// panics on every attempt fails with ErrRetriesExhausted (still carrying the
// panic text) and bumps the dedicated counter.
func TestRetryBudgetExhausted(t *testing.T) {
	mustPoint(t, "service/worker.prerun", fault.Trigger{})

	s := New(Config{Workers: 1, QueueCap: 8, MaxRetries: 1})
	defer s.Close()
	j, err := s.Submit("t", tinyCfg(31))
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("final attempt's injected panic not reachable through the error: %v", err)
	}
	if !strings.Contains(err.Error(), "simulation panic") {
		t.Fatalf("panic text lost from the structured error: %v", err)
	}
	st := s.Stats()
	if st.RetryExhausted != 1 || st.Failed != 1 || st.Retries != 1 {
		t.Fatalf("counter mismatch: %+v", st)
	}
	if got := j.Status().Attempts; got != 2 {
		t.Fatalf("want 2 attempts (1 + MaxRetries), got %d", got)
	}
}

// TestPostrunPanicRecomputes: a crash after the simulation finished but
// before its result was recorded is retried, and the recomputed result is
// bit-identical to an undisturbed run.
func TestPostrunPanicRecomputes(t *testing.T) {
	cfg := tinyCfg(32)
	want := runTiny(t, cfg).Hash()

	mustPoint(t, "service/worker.postrun", fault.Trigger{Once: true})
	s := New(Config{Workers: 1, QueueCap: 8, MaxRetries: 2})
	defer s.Close()
	res, err := s.Run(context.Background(), "t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash() != want {
		t.Fatalf("recomputed result %#x != undisturbed %#x", res.Hash(), want)
	}
	st := s.Stats()
	if st.Retries != 1 || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("want exactly one absorbed retry: %+v", st)
	}
}

// TestQueueAdmitFailpoint: an injected admission failure surfaces to the
// submitter as a fault-wrapped error without touching the books.
func TestQueueAdmitFailpoint(t *testing.T) {
	mustPoint(t, "service/queue.admit", fault.Trigger{Once: true})
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()
	if _, err := s.Submit("t", tinyCfg(33)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected admission error, got %v", err)
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected submission must not count as submitted: %+v", st)
	}
	// The one-shot spent itself; the retried submission goes through.
	if _, err := s.Submit("t", tinyCfg(33)); err != nil {
		t.Fatalf("resubmit after one-shot fault failed: %v", err)
	}
}

// TestDrainFailpoint: an injected drain failure aborts the drain without
// wedging the service; a clean retry then succeeds.
func TestDrainFailpoint(t *testing.T) {
	mustPoint(t, "service/drain", fault.Trigger{Once: true})
	s := New(Config{Workers: 1, QueueCap: 8})
	if err := s.Drain(context.Background()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected drain error, got %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain retry failed: %v", err)
	}
}

// TestCacheGetFailpoint: a forced cache miss re-runs the simulation and the
// recomputed result matches the cached truth — the cache is an optimization,
// never a correctness dependency.
func TestCacheGetFailpoint(t *testing.T) {
	cfg := tinyCfg(34)
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Close()
	first, err := s.Run(context.Background(), "t", cfg)
	if err != nil {
		t.Fatal(err)
	}

	mustPoint(t, "service/cache.get", fault.Trigger{Once: true})
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if j.Status().Cached {
		t.Fatal("forced miss still reported a cache hit")
	}
	if second.Hash() != first.Hash() {
		t.Fatalf("recompute diverged from cached result: %#x != %#x", second.Hash(), first.Hash())
	}
}

// TestWatchdogFlagsStalledJob: a job making no progress is marked hung in
// its status and the gauge; once it completes the verdict clears. Detection
// only — the job itself must still finish normally.
func TestWatchdogFlagsStalledJob(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 8, HungTimeout: 20 * time.Millisecond})
	defer s.Close()
	j, err := s.Submit("t", blockerCfg(release))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Hung == 1 })
	if !j.Status().Hung {
		t.Fatal("stalled job's status not marked hung")
	}
	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("hung-marked job failed to complete: %v", err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Hung == 0 })
	if j.Status().Hung {
		t.Fatal("hung verdict must clear on completion")
	}
}

// TestWatchdogQuietOnHealthyJobs: frequent progress keeps the gauge at zero.
func TestWatchdogQuietOnHealthyJobs(t *testing.T) {
	s := New(Config{
		Workers: 2, QueueCap: 8,
		ProgressInterval: 500, // heartbeats every 500 cycles
		HungTimeout:      5 * time.Second,
	})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Run(context.Background(), "t", tinyCfg(uint64(40+i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Hung != 0 {
		t.Fatalf("healthy jobs flagged hung: %+v", st)
	}
}
