package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/sim"
)

// Submission errors.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining rejects submissions after Drain/Close began.
	ErrDraining = errors.New("service: draining")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("service: no such job")
	// ErrRetriesExhausted marks a job that kept panicking until its retry
	// budget ran out; it wraps the final attempt's panic error.
	ErrRetriesExhausted = errors.New("service: retry budget exhausted")
)

// Scheduler failpoints (see internal/fault): queue.admit fails a submission
// at admission; worker.prerun panics an attempt before the simulator is
// built (a crash that the retry budget absorbs); worker.postrun panics after
// the simulation completed but before its result is recorded (the retry
// recomputes — determinism makes the recompute bit-identical); drain injects
// a failure into the drain path.
var (
	fpQueueAdmit = fault.Register(fault.SiteQueueAdmit)
	fpWorkerPre  = fault.Register(fault.SiteWorkerPre)
	fpWorkerPost = fault.Register(fault.SiteWorkerPost)
	fpDrain      = fault.Register(fault.SiteDrain)
)

// panicError wraps a recovered worker panic so it can be distinguished from
// ordinary simulation errors (panics are retried, errors are not).
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("simulation panic: %v\n%s", e.val, e.stack)
}

// Unwrap exposes error-typed panic values (notably *fault.InjectedPanic) to
// errors.Is/As through the wrapper.
func (e *panicError) Unwrap() error {
	if err, ok := e.val.(error); ok {
		return err
	}
	return nil
}

// Config sizes a Service.
type Config struct {
	// Workers is the number of worker goroutines; each owns one queue
	// shard. Defaults to GOMAXPROCS.
	Workers int
	// QueueCap bounds the total number of queued (not yet running) jobs
	// across all shards; Submit returns ErrQueueFull beyond it. Default 64.
	QueueCap int
	// CacheCap bounds the result cache entry count (LRU). Default 256.
	CacheCap int
	// MaxRetries is how many times a job is retried after a worker panic
	// before it is failed. Default 2.
	MaxRetries int
	// ProgressInterval is the per-job progress callback cadence in cycles
	// (0 = the simulator default).
	ProgressInterval uint64
	// CacheDir, when non-empty, backs the result cache with a durable
	// write-through store in that directory: completed results survive a
	// process restart and are reloaded on boot (corrupt records are
	// quarantined, not served). Empty = in-memory only.
	CacheDir string
	// HungTimeout, when non-zero, arms the shard watchdog: a running job
	// whose progress heartbeat is older than this is marked hung in its
	// Status and counted in Stats.Hung / emcsim_service_hung_jobs.
	// Detection only — the job is not killed.
	HungTimeout time.Duration
	// Metrics, when non-nil, receives the service gauge group (queue depth,
	// workers, cache hits, ...) and the per-phase latency histograms for
	// /metrics export.
	Metrics *obs.Registry
	// FlightDir, when non-empty, enables flight-recorder dumps: when the
	// watchdog flags a job, a worker attempt panics (including injected
	// failpoints), or a job fails terminally, the job's recent span events
	// and exact-sum phase attribution are written to
	// <FlightDir>/<job>-<reason>-<n>.emfr (see internal/obs/span.Dump).
	// Hung-job dumps additionally capture a goroutine profile alongside.
	FlightDir string
	// FlightEvents sizes each job's flight-recorder ring (default 256).
	FlightEvents int
	// SpanRetain bounds the finished spans retained for the Chrome trace
	// export (default 4096, oldest dropped beyond it).
	SpanRetain int
}

// serviceGauges lists every gauge the service publishes, in publish order.
// Exported Prometheus names are emcsim_<name>.
var serviceGauges = []string{
	"service_workers",
	"service_queue_depth",
	"service_running_jobs",
	"service_jobs_submitted",
	"service_jobs_done",
	"service_jobs_failed",
	"service_jobs_cancelled",
	"service_jobs_coalesced",
	"service_job_retries",
	"service_jobs_retry_exhausted",
	"service_hung_jobs",
	"service_cache_hits",
	"service_cache_misses",
	"service_cache_entries",
	"service_cache_evictions",
	"service_cache_loaded",
	"service_cache_quarantined",
	"service_cache_persisted",
	"service_cache_persist_errors",
	"service_flight_dumps",
	"service_flight_dump_errors",
	"service_spans_dropped",
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queueDepth"`
	Running    int    `json:"running"`
	Submitted  uint64 `json:"submitted"`
	Done       uint64 `json:"done"`
	Failed     uint64 `json:"failed"`
	Cancelled  uint64 `json:"cancelled"`
	Coalesced  uint64 `json:"coalesced"`
	// Executed counts simulations actually run to completion on this node —
	// cache hits, coalesced followers, and replica seeds excluded. Summed
	// across a fabric it is the dedup ground truth: N identical submissions
	// must leave exactly one execution behind.
	Executed uint64 `json:"executed"`
	Retries  uint64 `json:"retries"`
	// RetryExhausted counts jobs failed because their panic-retry budget
	// ran out (see ErrRetriesExhausted).
	RetryExhausted uint64 `json:"retryExhausted"`
	// Hung is the number of running jobs the watchdog currently considers
	// stalled (no progress within Config.HungTimeout).
	Hung int `json:"hungJobs"`

	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEntries   int    `json:"cacheEntries"`
	CacheEvictions uint64 `json:"cacheEvictions"`

	// Durable-cache counters; all zero when Config.CacheDir is unset.
	CacheLoaded      uint64 `json:"cacheLoaded"`
	CacheQuarantined uint64 `json:"cacheQuarantined"`
	CachePersisted   uint64 `json:"cachePersisted"`
	CachePersistErrs uint64 `json:"cachePersistErrors"`

	// Flight-recorder counters; zero when Config.FlightDir is unset.
	FlightDumps    uint64 `json:"flightDumps"`
	FlightDumpErrs uint64 `json:"flightDumpErrors"`
	// SpansDropped counts finished spans evicted by the retention cap.
	SpansDropped uint64 `json:"spansDropped"`

	// Shards is the per-shard breakdown (queue depth, running, hung) behind
	// the aggregate numbers above — the emcctl top dashboard's row source.
	Shards []ShardStat `json:"shards,omitempty"`

	// Nodes is the fabric view when this service runs inside a cluster node
	// (see SetClusterStats and internal/cluster); empty in single-process
	// deployments.
	Nodes []NodeStat `json:"nodes,omitempty"`
}

// ShardStat is one worker shard's live state.
type ShardStat struct {
	Shard   int `json:"shard"`
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Hung    int `json:"hung"`
}

// Service is the simulation-job scheduler: a sharded worker pool over
// per-shard fair queues, fronted by the content-addressed result cache.
//
// Sharding is by cache key, so identical configurations always land on the
// same worker: a sweep matrix partitions deterministically across the pool
// and duplicate submissions serialize behind their first run instead of
// racing it.
type Service struct {
	cfg    Config
	queues []*fairQueue
	cache  *resultCache
	store  *durableStore // nil without Config.CacheDir

	queued         atomic.Int64
	running        atomic.Int64
	submitted      atomic.Uint64
	completed      atomic.Uint64
	failed         atomic.Uint64
	cancelled      atomic.Uint64
	coalesced      atomic.Uint64
	executed       atomic.Uint64
	retries        atomic.Uint64
	retryExhausted atomic.Uint64
	hung           atomic.Int64

	// Span pipeline: always-on recorder; per-shard gauges sized at Open so
	// Stats never scans the job table; flight-dump counters.
	rec            *span.Recorder
	shardRunning   []atomic.Int64
	shardHung      []atomic.Int64
	dumpSeq        atomic.Uint64
	flightDumps    atomic.Uint64
	flightDumpErrs atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for listing
	inflight map[string]*Job
	seq      uint64
	draining bool

	wg        sync.WaitGroup
	watchStop chan struct{}
	stopOnce  sync.Once
	group     *obs.Group

	// Cluster hooks (see cluster.go); nil outside a fabric node.
	onDone       atomic.Pointer[func(key string, res *sim.Result)]
	clusterStats atomic.Pointer[func(local *Stats) []NodeStat]
}

// New builds a Service and starts its workers. It panics if Config.CacheDir
// is set and the durable store cannot be initialized; servers should use
// Open for the explicit error. Without CacheDir, New cannot fail.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Service, initializing (and reloading) the durable result
// cache when Config.CacheDir is set, and starts the workers and watchdog.
func Open(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 256
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	var store *durableStore
	if cfg.CacheDir != "" {
		var err error
		if store, err = openDurableStore(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	s := &Service{
		cfg:          cfg,
		cache:        newResultCache(cfg.CacheCap, store),
		store:        store,
		jobs:         map[string]*Job{},
		inflight:     map[string]*Job{},
		watchStop:    make(chan struct{}),
		rec:          span.NewRecorder(span.Options{RingEvents: cfg.FlightEvents, Retain: cfg.SpanRetain}),
		shardRunning: make([]atomic.Int64, cfg.Workers),
		shardHung:    make([]atomic.Int64, cfg.Workers),
	}
	if store != nil {
		if err := store.load(s.cache.seed); err != nil {
			store.close()
			return nil, err
		}
	}
	if cfg.FlightDir != "" {
		if err := os.MkdirAll(cfg.FlightDir, 0o755); err != nil {
			if store != nil {
				store.close()
			}
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		s.group = cfg.Metrics.NewGroup(map[string]string{"component": "service"}, serviceGauges)
		hist := span.NewPhaseHist(cfg.Workers)
		s.rec.SetHist(hist)
		cfg.Metrics.AddCollector(hist)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.queues = append(s.queues, newFairQueue())
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	if cfg.HungTimeout > 0 {
		go s.watchdog()
	}
	s.publish()
	return s, nil
}

// cacheKey derives the content address of a config: the semantic
// fingerprint, extended by the observability settings that change what the
// Result carries (the Obs report, the counter log) without changing
// simulation outcomes. Configs holding function values (CoreTweak, OnChain)
// are not fingerprintable and report cacheable=false.
func cacheKey(cfg *sim.Config) (key string, cacheable bool) {
	fp, err := cfg.Fingerprint()
	if err != nil {
		return "", false
	}
	if cfg.Obs.Enabled {
		fp += fmt.Sprintf("+obs:%d,%t", cfg.Obs.SampleEvery, cfg.Obs.Retain)
	}
	if cfg.CounterInterval > 0 {
		fp += fmt.Sprintf("+ci:%d", cfg.CounterInterval)
	}
	return fp, true
}

// shardOf maps a cache key onto a worker shard.
func shardOf(key string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// Submit schedules cfg for client. Terminal fast paths: a cached result
// returns an already-done job; an identical in-flight submission returns
// the existing job (coalescing — note a cancel then cancels it for every
// submitter). Otherwise the job is queued, subject to backpressure
// (ErrQueueFull) and drain state (ErrDraining).
func (s *Service) Submit(client string, cfg sim.Config) (*Job, error) {
	if client == "" {
		client = "default"
	}
	key, cacheable := cacheKey(&cfg)

	if err := fpQueueAdmit.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	id := fmt.Sprintf("j%d", s.seq)
	if !cacheable {
		// No canonical identity: never cached, never coalesced, but still
		// deterministically sharded by its unique id.
		key = "uncacheable:" + id
	}
	if cacheable {
		if res, ok := s.cache.get(key); ok {
			j := newJob(id, key, client, shardOf(key, len(s.queues)), true, cfg, s.rec)
			j.cached = true
			s.jobs[id] = j
			s.order = append(s.order, j)
			s.submitted.Add(1)
			s.mu.Unlock()
			j.finalize(StateDone, res, nil)
			s.completed.Add(1)
			s.publish()
			return j, nil
		}
		if prev, ok := s.inflight[key]; ok {
			s.coalesced.Add(1)
			s.mu.Unlock()
			prev.recordCoalesce()
			s.publish()
			return prev, nil
		}
	}
	// Reserve a queue slot (global backpressure across shards).
	//simlint:leakok CAS retry loop; an iteration repeats only when another goroutine made progress
	for {
		n := s.queued.Load()
		if n >= int64(s.cfg.QueueCap) {
			s.mu.Unlock()
			return nil, ErrQueueFull
		}
		if s.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	shard := shardOf(key, len(s.queues))
	j := newJob(id, key, client, shard, cacheable, cfg, s.rec)
	s.jobs[id] = j
	s.order = append(s.order, j)
	if cacheable {
		s.inflight[key] = j
	}
	s.submitted.Add(1)
	s.mu.Unlock()

	if !s.queues[shard].push(j) {
		// Raced with Close: undo the reservation and reject.
		s.queued.Add(-1)
		s.finishJob(j, StateCancelled, nil, ErrDraining)
		return nil, ErrDraining
	}
	s.publish()
	return j, nil
}

// Run submits cfg and blocks until the job is terminal (a convenience for
// in-process callers like the figure suite's -jobs mode).
func (s *Service) Run(ctx context.Context, client string, cfg sim.Config) (*sim.Result, error) {
	j, err := s.Submit(client, cfg)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Job looks a job up by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists job statuses in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a job: queued jobs finalize as cancelled
// when a worker reaches them, running jobs stop at the next cycle boundary.
func (s *Service) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return ErrNotFound
	}
	j.requestCancel()
	return nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	h, m, ev, entries := s.cache.stats()
	st := Stats{
		Workers:    len(s.queues),
		QueueDepth: int(s.queued.Load()),
		Running:    int(s.running.Load()),
		Submitted:  s.submitted.Load(),
		Done:       s.completed.Load(),
		Failed:     s.failed.Load(),
		Cancelled:  s.cancelled.Load(),
		Coalesced:  s.coalesced.Load(),
		Executed:   s.executed.Load(),
		Retries:    s.retries.Load(),

		RetryExhausted: s.retryExhausted.Load(),
		Hung:           int(s.hung.Load()),

		CacheHits:      h,
		CacheMisses:    m,
		CacheEntries:   entries,
		CacheEvictions: ev,
	}
	if s.store != nil {
		st.CacheLoaded = s.store.loaded.Load()
		st.CacheQuarantined = s.store.quarantined.Load()
		st.CachePersisted = s.store.persisted.Load()
		st.CachePersistErrs = s.store.persistErrs.Load()
	}
	st.FlightDumps = s.flightDumps.Load()
	st.FlightDumpErrs = s.flightDumpErrs.Load()
	st.SpansDropped = s.rec.Dropped()
	st.Shards = make([]ShardStat, len(s.queues))
	for i := range s.queues {
		st.Shards[i] = ShardStat{
			Shard:   i,
			Queued:  s.queues[i].len(),
			Running: int(s.shardRunning[i].Load()),
			Hung:    int(s.shardHung[i].Load()),
		}
	}
	if fn := s.clusterStats.Load(); fn != nil {
		st.Nodes = (*fn)(&st)
	}
	return st
}

// Recorder exposes the span pipeline (the HTTP trace export reads it).
func (s *Service) Recorder() *span.Recorder { return s.rec }

// publish pushes the current counters into the metrics group.
func (s *Service) publish() {
	if s.group == nil {
		return
	}
	st := s.Stats()
	s.group.Publish([]float64{
		float64(st.Workers),
		float64(st.QueueDepth),
		float64(st.Running),
		float64(st.Submitted),
		float64(st.Done),
		float64(st.Failed),
		float64(st.Cancelled),
		float64(st.Coalesced),
		float64(st.Retries),
		float64(st.RetryExhausted),
		float64(st.Hung),
		float64(st.CacheHits),
		float64(st.CacheMisses),
		float64(st.CacheEntries),
		float64(st.CacheEvictions),
		float64(st.CacheLoaded),
		float64(st.CacheQuarantined),
		float64(st.CachePersisted),
		float64(st.CachePersistErrs),
		float64(st.FlightDumps),
		float64(st.FlightDumpErrs),
		float64(st.SpansDropped),
	})
}

// Drain stops intake (Submit returns ErrDraining) and waits for every
// queued and running job to finish, or for ctx.
func (s *Service) Drain(ctx context.Context) error {
	if err := fpDrain.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for _, q := range s.queues {
		q.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.shutdownAux()
		s.publish()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every non-terminal job and waits for the workers to exit.
func (s *Service) Close() error {
	s.mu.Lock()
	s.draining = true
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
	for _, q := range s.queues {
		q.close()
	}
	s.wg.Wait()
	s.shutdownAux()
	s.publish()
	return nil
}

// shutdownAux stops the watchdog and flushes + closes the durable store.
// Runs after the workers exit, so no further cache writes can race it.
func (s *Service) shutdownAux() {
	s.stopOnce.Do(func() { close(s.watchStop) })
	if s.store != nil {
		s.store.close()
	}
}

// FlushDurable blocks until every completed result so far has been written
// through to the durable store (no-op without one). emcserve calls it on
// shutdown before reporting the cache flushed.
func (s *Service) FlushDurable() {
	if s.store != nil {
		s.store.flush()
	}
}

// watchdog periodically sweeps jobs for stalled progress (detection only).
func (s *Service) watchdog() {
	tick := s.cfg.HungTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case now := <-t.C:
			s.scanHung(now)
		}
	}
}

// scanHung applies the hung verdict to every job and republishes the gauges
// when any verdict flipped.
func (s *Service) scanHung(now time.Time) {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	var hung int64
	perShard := make([]int64, len(s.queues))
	changed := false
	for _, j := range jobs {
		h, ch := j.hungCheck(now, s.cfg.HungTimeout)
		if h {
			hung++
			perShard[j.shard]++
		}
		changed = changed || ch
		if h && ch {
			// Verdict just flipped to hung: dump the flight recorder with a
			// goroutine profile, so the stalled stack is captured the moment
			// the watchdog fires rather than when someone attaches later.
			s.dumpFlight(j, "hung", nil)
		}
	}
	s.hung.Store(hung)
	for i := range perShard {
		s.shardHung[i].Store(perShard[i])
	}
	if changed {
		s.publish()
	}
}

// dumpFlight writes one flight-recorder dump for j (best effort: failures
// are counted, never fatal, and nothing is written without Config.FlightDir).
// Hung dumps get a goroutine profile sibling file (<dump>.goroutines.txt).
func (s *Service) dumpFlight(j *Job, reason string, cause error) {
	if s.cfg.FlightDir == "" {
		return
	}
	d := j.buildDump(reason)
	if d == nil {
		return
	}
	if d.Error == "" && cause != nil {
		d.Error = cause.Error()
	}
	name := fmt.Sprintf("%s-%s-%d%s", j.id, reason, s.dumpSeq.Add(1), span.DumpExt)
	path := filepath.Join(s.cfg.FlightDir, name)
	if err := span.WriteDumpFile(path, d); err != nil {
		s.flightDumpErrs.Add(1)
		return
	}
	s.flightDumps.Add(1)
	if reason == "hung" {
		if f, err := os.Create(path + span.GoroutinesExt); err == nil {
			if p := pprof.Lookup("goroutine"); p != nil {
				_ = p.WriteTo(f, 2)
			}
			f.Close()
		}
	}
}

// worker owns shard i: it pops jobs until the shard closes and empties.
func (s *Service) worker(i int) {
	defer s.wg.Done()
	for {
		j, ok := s.queues[i].pop()
		if !ok {
			return
		}
		s.queued.Add(-1)
		s.execute(j)
		s.publish()
	}
}

// execute runs one job to a terminal state, retrying bounded times after
// worker panics. The recover boundary is runOnce, so a panicking simulation
// never takes the worker goroutine down.
func (s *Service) execute(j *Job) {
	if !j.beginRunning() {
		s.finishJob(j, StateCancelled, nil, sim.ErrCancelled)
		return
	}
	s.running.Add(1)
	s.shardRunning[j.shard].Add(1)
	defer func() {
		s.running.Add(-1)
		s.shardRunning[j.shard].Add(-1)
	}()
	//simlint:leakok every arm returns; the only continue is bounded by MaxRetries
	for attempt := 1; ; attempt++ {
		res, err := s.runOnce(j)
		switch {
		case err == nil:
			s.executed.Add(1)
			if j.cacheable {
				s.cache.put(j.key, res)
				if fn := s.onDone.Load(); fn != nil {
					// Cluster replication hook: a fresh result was actually
					// computed here (not a cache hit, not a replica seed).
					(*fn)(j.key, res)
				}
			}
			s.finishJob(j, StateDone, res, nil)
			return
		case errors.Is(err, sim.ErrCancelled):
			s.finishJob(j, StateCancelled, res, err)
			return
		default:
			var pe *panicError
			if errors.As(err, &pe) {
				// Snapshot the flight recorder before the retry decision: the
				// ring still holds the attempt's final heartbeats either way.
				s.dumpFlight(j, "panic", err)
				if attempt <= s.cfg.MaxRetries && !j.cancelRequested() {
					s.retries.Add(1)
					j.recordRetry()
					continue
				}
				// Budget spent: fail with a structured error that keeps the
				// final panic's text reachable via errors.Is/As and %v.
				s.retryExhausted.Add(1)
				err = fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempt, err)
			}
			if pe == nil {
				// Ordinary failures get a dump too (panics were dumped above);
				// must happen before finalize recycles the ring.
				s.dumpFlight(j, "failed", err)
			}
			s.finishJob(j, StateFailed, nil, err)
			return
		}
	}
}

// runOnce performs one simulation attempt, converting panics into errors.
func (s *Service) runOnce(j *Job) (res *sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{val: v, stack: debug.Stack()}
		}
	}()
	j.beginAttempt()
	fpWorkerPre.MustPanic()
	sys, err := sim.New(j.cfg)
	if err != nil {
		return nil, err
	}
	h := sys.NewRunHandle(s.cfg.ProgressInterval, j.setProgress)
	if !j.attachHandle(h) {
		h.Cancel() // cancellation raced in between beginRunning and here
	}
	res, err = h.Run()
	if err == nil {
		// Chaos hook: crash after the run finished but before its result is
		// recorded anywhere — the retry recomputes, and determinism makes
		// the recomputed Result bit-identical.
		fpWorkerPost.MustPanic()
	}
	return res, err
}

// finishJob finalizes the job, maintains the in-flight index, and bumps the
// terminal counters.
func (s *Service) finishJob(j *Job, state State, res *sim.Result, err error) {
	if j.cacheable {
		s.mu.Lock()
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		s.mu.Unlock()
	}
	j.finalize(state, res, err)
	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateCancelled:
		s.cancelled.Add(1)
	}
}
