package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/report"
)

func testServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	s := New(cfg)
	ts := httptest.NewServer(NewHandler(s, reg))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func submitReq(t *testing.T, ts *httptest.Server, req JobRequest) (Status, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func tinyReq(seed uint64) JobRequest {
	return JobRequest{
		Client:       "test",
		Benchmarks:   []string{"mcf", "sphinx3", "soplex", "libquantum"},
		InstrPerCore: 1000,
		Seed:         seed,
	}
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestHTTPSubmitLifecycle drives a job through submit -> status -> result
// and then checks the cached resubmit path returns 200 instead of 202.
func TestHTTPSubmitLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, QueueCap: 8})

	st, resp := submitReq(t, ts, tinyReq(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d", resp.StatusCode)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("unexpected submit status: %+v", st)
	}

	// Poll status until terminal.
	var cur Status
	for !cur.State.Terminal() {
		if resp := getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID, &cur); resp.StatusCode != http.StatusOK {
			t.Fatalf("status: got %d", resp.StatusCode)
		}
	}
	if cur.State != StateDone {
		t.Fatalf("job did not finish: %+v", cur)
	}

	var res report.Result
	if resp := getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: got %d", resp.StatusCode)
	}
	if res.Cycles == 0 || len(res.Cores) != 4 {
		t.Fatalf("implausible result: %+v", res)
	}

	// Identical resubmission: cache hit, already done, 200.
	st2, resp2 := submitReq(t, ts, tinyReq(1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit: want 200, got %d", resp2.StatusCode)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("cached resubmit: %+v", st2)
	}

	// The jobs listing shows both submissions.
	var all []Status
	getJSON(t, ts.URL+"/api/v1/jobs", &all)
	if len(all) != 2 {
		t.Fatalf("want 2 jobs listed, got %d", len(all))
	}

	// Metrics export the cache hit.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(mresp.Body) //nolint:errcheck
	if !strings.Contains(b.String(), `emcsim_service_cache_hits{component="service"} 1`) {
		t.Fatalf("metrics missing cache hit:\n%s", b.String())
	}
}

// TestHTTPValidation: malformed bodies and unknown jobs produce 4xx JSON
// errors.
func TestHTTPValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 2})

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: want 400, got %d", resp.StatusCode)
	}

	_, resp = submitReq(t, ts, JobRequest{Client: "t"}) // no benchmarks
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty benchmarks: want 400, got %d", resp.StatusCode)
	}

	bad := tinyReq(1)
	bad.Prefetcher = "nonsense"
	_, resp = submitReq(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad prefetcher: want 400, got %d", resp.StatusCode)
	}

	if resp := getJSON(t, ts.URL+"/api/v1/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/api/v1/jobs/nope/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result: want 404, got %d", resp.StatusCode)
	}
}

// TestHTTPResultConflictWhileRunning: asking for the result of an unfinished
// job is a 409, not a hang.
func TestHTTPResultConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 8})

	j, err := s.Submit("t", blockerCfg(release))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })
	if resp := getJSON(t, ts.URL+"/api/v1/jobs/"+j.ID()+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("want 409 for running job, got %d", resp.StatusCode)
	}
}

// TestHTTPCancel: POST cancel on a queued job finalizes it as cancelled.
func TestHTTPCancel(t *testing.T) {
	release := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 8})

	if _, err := s.Submit("t", blockerCfg(release)); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 })
	j, err := s.Submit("t", tinyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+j.ID()+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: want 202, got %d", resp.StatusCode)
	}
	close(release)
	var st Status
	for !st.State.Terminal() {
		getJSON(t, ts.URL+"/api/v1/jobs/"+j.ID(), &st)
	}
	if st.State != StateCancelled {
		t.Fatalf("want cancelled, got %+v", st)
	}
}

// TestHTTPBackpressure: a full queue surfaces as 429 with Retry-After.
func TestHTTPBackpressure(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 1})

	if _, err := s.Submit("t", blockerCfg(release)); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Running == 1 && st.QueueDepth == 0 })
	if _, resp := submitReq(t, ts, tinyReq(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first queued submit: want 202, got %d", resp.StatusCode)
	}
	_, resp := submitReq(t, ts, tinyReq(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
}

// TestHTTPProgressStream: the NDJSON stream ends with a terminal status and
// every line parses.
func TestHTTPProgressStream(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 8, ProgressInterval: 500})

	cfg := tinyCfg(1)
	cfg.InstrPerCore = 50_000
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/progress?poll=10", ts.URL, j.ID()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last Status
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v: %s", lines, err, sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no progress lines")
	}
	if last.State != StateDone {
		t.Fatalf("stream should end terminal, got %+v", last)
	}
	if last.Retired == 0 || last.TargetInstrs != 4*cfg.InstrPerCore {
		t.Fatalf("final snapshot incomplete: %+v", last)
	}
}

// TestHTTPStatsAndHealth: the stats and health endpoints respond.
func TestHTTPStatsAndHealth(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueCap: 2})
	var st Stats
	if resp := getJSON(t, ts.URL+"/api/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: got %d", resp.StatusCode)
	}
	if st.Workers != 1 {
		t.Fatalf("stats: %+v", st)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: got %d", resp.StatusCode)
	}
}
