package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// TestServiceSpansReconcile: every job the scheduler finishes leaves a span
// whose phase durations exact-sum to its wall clock, with the right outcome
// and cached flag — the service-layer mirror of TestAttributionReconciles.
func TestServiceSpansReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 2, QueueCap: 8, Metrics: reg})
	defer s.Close()

	cfg := tinyCfg(1)
	if _, err := s.Run(context.Background(), "t", cfg); err != nil {
		t.Fatal(err)
	}
	// Resubmit: the cache hit must produce its own span, marked Cached.
	j2, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()

	spans := s.Recorder().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorder retained %d spans, want 2", len(spans))
	}
	var sawCached bool
	for _, sp := range spans {
		ph := sp.Phases()
		var sum int64
		for p := span.Phase(0); p < span.NumPhases; p++ {
			if ph[p] < 0 {
				t.Fatalf("span %s phase %s negative: %d", sp.JobID, p, ph[p])
			}
			sum += ph[p]
		}
		if sum != sp.Total() {
			t.Fatalf("span %s phases sum to %d, wall clock %d (exact-sum violated)", sp.JobID, sum, sp.Total())
		}
		if sp.Outcome != string(StateDone) {
			t.Fatalf("span %s outcome %q, want done", sp.JobID, sp.Outcome)
		}
		if sp.Cached {
			sawCached = true
			if sp.AdmitAt != span.NoAdmit {
				t.Fatalf("cached span has AdmitAt %d, want NoAdmit", sp.AdmitAt)
			}
		}
	}
	if !sawCached {
		t.Fatal("no cached span recorded for the resubmission")
	}

	// The phase histograms must have landed on /metrics.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE emcsim_service_phase_seconds histogram",
		`emcsim_service_phase_seconds_count{phase="running"`,
		`emcsim_service_phase_seconds_count{phase="cache_hit"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHungJobFlightDump is the induced-hang acceptance path: a job that
// stalls under the watchdog produces a flight-recorder dump whose phases
// exact-sum to the job's wall clock at dump time, plus a goroutine profile
// capturing the stalled stack.
func TestHungJobFlightDump(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 4, HungTimeout: 50 * time.Millisecond, FlightDir: dir})
	defer s.Close()
	defer close(release)

	j, err := s.Submit("t", blockerCfg(release))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, func(st Stats) bool { return st.Hung == 1 && st.FlightDumps >= 1 })

	matches, err := filepath.Glob(filepath.Join(dir, j.ID()+"-hung-*"+span.DumpExt))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no hung dump for %s in %s (err=%v)", j.ID(), dir, err)
	}
	d, err := span.ReadDumpFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("dump fails verification: %v", err)
	}
	if d.Reason != "hung" || d.JobID != j.ID() {
		t.Fatalf("dump identity: reason %q job %q", d.Reason, d.JobID)
	}
	var sum int64
	for _, v := range d.PhasesNS {
		sum += v
	}
	if sum != d.WallNS || d.WallNS != d.DumpAtNS-d.SubmitAtNS {
		t.Fatalf("phases sum %d, wall %d, dump-submit %d: exact-sum broken",
			sum, d.WallNS, d.DumpAtNS-d.SubmitAtNS)
	}
	var sawHung bool
	for _, ev := range d.Events {
		if ev.Kind == "hung" {
			sawHung = true
		}
	}
	if !sawHung {
		t.Fatalf("dump events missing the hung verdict: %+v", d.Events)
	}

	prof, err := os.ReadFile(matches[0] + span.GoroutinesExt)
	if err != nil {
		t.Fatalf("no goroutine profile alongside the dump: %v", err)
	}
	if !strings.Contains(string(prof), "goroutine") {
		t.Fatal("goroutine profile is empty or malformed")
	}

	// Per-shard stats must attribute the hang to the blocked shard.
	st := s.Stats()
	if len(st.Shards) != 1 || st.Shards[0].Hung != 1 || st.Shards[0].Running != 1 {
		t.Fatalf("shard stats = %+v, want 1 running+hung on shard 0", st.Shards)
	}
}

// TestPanicFlightDump: a panicking attempt writes a "panic" dump for every
// attempt, carrying the panic text, before the retry budget verdict.
func TestPanicFlightDump(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueCap: 4, MaxRetries: 1, FlightDir: dir})
	defer s.Close()

	cfg := tinyCfg(7)
	cfg.CoreTweak = func(*cpu.Config) { panic("induced test panic") }
	j, err := s.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("panicking job reported success")
	}

	matches, _ := filepath.Glob(filepath.Join(dir, j.ID()+"-panic-*"+span.DumpExt))
	if len(matches) != 2 { // first attempt + the retry
		t.Fatalf("%d panic dumps, want 2: %v", len(matches), matches)
	}
	for _, m := range matches {
		d, err := span.ReadDumpFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Verify(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(d.Error, "induced test panic") {
			t.Fatalf("%s: dump error %q does not carry the panic text", m, d.Error)
		}
	}
}

// TestProgressStreamChunkedFraming: the NDJSON progress stream stays
// line-framed no matter how the client's reads chunk it — every
// newline-delimited record parses on its own, ending with a terminal one.
func TestProgressStreamChunkedFraming(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, nil))
	defer srv.Close()

	j, err := s.Submit("t", tinyCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/api/v1/jobs/" + j.ID() + "/progress?poll=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}

	// Read the stream 7 bytes at a time: records must reassemble across
	// chunk boundaries purely via the newline framing.
	var acc []byte
	var lines []string
	buf := make([]byte, 7)
	for {
		n, err := resp.Body.Read(buf)
		acc = append(acc, buf[:n]...)
		for {
			i := strings.IndexByte(string(acc), '\n')
			if i < 0 {
				break
			}
			lines = append(lines, string(acc[:i]))
			acc = acc[i+1:]
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(acc) != 0 {
		t.Fatalf("stream ended mid-record: %q", acc)
	}
	if len(lines) == 0 {
		t.Fatal("no records on the progress stream")
	}
	var last Status
	for i, line := range lines {
		var st Status
		if err := json.Unmarshal([]byte(line), &st); err != nil {
			t.Fatalf("record %d is not standalone JSON: %v\n%q", i, err, line)
		}
		if st.ID != j.ID() {
			t.Fatalf("record %d for job %q, want %q", i, st.ID, j.ID())
		}
		last = st
	}
	if !last.State.Terminal() {
		t.Fatalf("final record state %q, want terminal", last.State)
	}
}

// TestStatsStreamAndTraceEndpoints: the dashboard stream frames parse and
// carry per-shard stats; /api/v1/trace 409s when empty, then exports
// balanced Chrome spans at service pids.
func TestStatsStreamAndTraceEndpoints(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 8})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s, nil))
	defer srv.Close()

	if resp, err := srv.Client().Get(srv.URL + "/api/v1/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 409 {
			t.Fatalf("empty trace status %d, want 409", resp.StatusCode)
		}
	}

	if _, err := s.Run(context.Background(), "t", tinyCfg(5)); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/api/v1/stats/stream?poll=10&frames=2")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("stats stream sent %d frames, want 2", len(lines))
	}
	for i, line := range lines {
		var f StatsFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(f.Stats.Shards) != 2 {
			t.Fatalf("frame %d has %d shards, want 2", i, len(f.Stats.Shards))
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/api/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("trace status %d err %v", resp.StatusCode, err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid *int   `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tf); err != nil {
		t.Fatalf("trace export not JSON: %v", err)
	}
	begins, ends := 0, 0
	for _, ev := range tf.TraceEvents {
		if ev.Pid != nil && *ev.Pid < span.ChromePidBase {
			t.Fatalf("service span at pid %d, below ChromePidBase %d", *ev.Pid, span.ChromePidBase)
		}
		switch ev.Ph {
		case "b":
			begins++
		case "e":
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Fatalf("trace has %d begins / %d ends", begins, ends)
	}
}
