package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Durability failpoints (see internal/fault): durable.put drops one persist
// write on the floor (the in-memory cache stays correct, the disk copy is
// lost — what a full disk or a crash between completion and persist looks
// like); durable.load panics mid-boot-load, modelling a crash while
// replaying the on-disk cache.
var (
	fpDurablePut  = fault.Register(fault.SiteDurablePut)
	fpDurableLoad = fault.Register(fault.SiteDurableLoad)
)

// Durable record framing: magic + version + length-prefixed JSON payload +
// CRC32 trailer, one file per cache entry. The payload carries the cache key
// alongside the Result so a load can verify the file holds what its name
// promises (names are sanitized and may collide in principle).
const (
	durableMagic   = "EMCR"
	durableVersion = 1
	durableExt     = ".res"
	corruptExt     = ".corrupt"
)

// errDurableCorrupt marks a record that failed structural validation; the
// loader quarantines the file instead of serving a torn result.
var errDurableCorrupt = errors.New("service: durable record corrupt")

// durableRecord is the JSON payload inside a durable frame.
type durableRecord struct {
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

// durableOp is one unit of work for the persister goroutine.
type durableOp struct {
	rec   *durableRecord // write rec to disk when non-nil
	del   string         // delete the record for this key when non-empty
	flush chan struct{}  // closed once every prior op has been applied
}

// durableStore is the write-through disk backing of the result cache: every
// put is persisted asynchronously (a single persister goroutine serializes
// writes; completion latency is never on the submit/worker path), every LRU
// eviction deletes its file, and boot replays the directory back into the
// cache, quarantining corrupt records as <name>.corrupt instead of failing.
type durableStore struct {
	dir string

	mu     sync.Mutex
	closed bool
	ch     chan durableOp
	wg     sync.WaitGroup

	persisted   atomic.Uint64
	persistErrs atomic.Uint64
	loaded      atomic.Uint64
	quarantined atomic.Uint64
}

// openDurableStore creates dir if needed and starts the persister.
func openDurableStore(dir string) (*durableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: durable cache dir: %w", err)
	}
	d := &durableStore{dir: dir, ch: make(chan durableOp, 256)}
	d.wg.Add(1)
	go d.persister()
	return d, nil
}

// load replays every durable record in the directory through fn (which seeds
// the in-memory cache). Corrupt or unreadable records are renamed to
// <name>.corrupt and counted; they never abort the boot.
func (d *durableStore) load(fn func(key string, res *sim.Result)) error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("service: durable cache scan: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), durableExt) {
			continue
		}
		fpDurableLoad.MustPanic()
		path := filepath.Join(d.dir, e.Name())
		rec, err := readDurableRecord(path)
		if err != nil {
			d.quarantined.Add(1)
			// Move aside so the next boot does not re-parse the same junk;
			// the operator can inspect or delete *.corrupt at leisure.
			_ = os.Rename(path, path+corruptExt)
			continue
		}
		fn(rec.Key, rec.Result)
		d.loaded.Add(1)
	}
	return nil
}

// persist enqueues a write-through of res; drops (and counts) it only if the
// store has been closed underneath the caller.
func (d *durableStore) persist(key string, res *sim.Result) {
	d.enqueue(durableOp{rec: &durableRecord{Key: key, Result: res}})
}

// remove enqueues deletion of key's record (LRU eviction made it stale).
func (d *durableStore) remove(key string) {
	d.enqueue(durableOp{del: key})
}

func (d *durableStore) enqueue(op durableOp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		if op.rec != nil {
			d.persistErrs.Add(1)
		}
		if op.flush != nil {
			close(op.flush)
		}
		return
	}
	d.ch <- op
}

// flush blocks until every previously enqueued write and delete has been
// applied to disk. This is the shutdown barrier: emcserve calls it before
// reporting the durable cache flushed.
func (d *durableStore) flush() {
	done := make(chan struct{})
	d.enqueue(durableOp{flush: done})
	<-done
}

// close flushes and stops the persister. Idempotent.
func (d *durableStore) close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	close(d.ch)
	d.mu.Unlock()
	d.wg.Wait()
}

// persister applies ops in order; ordering per key is what makes
// write-then-evict and evict-then-rewrite both land in the right final
// state.
func (d *durableStore) persister() {
	defer d.wg.Done()
	for op := range d.ch {
		switch {
		case op.rec != nil:
			if fpDurablePut.Fire() {
				d.persistErrs.Add(1)
				continue
			}
			if err := writeDurableRecord(d.dir, op.rec); err != nil {
				d.persistErrs.Add(1)
			} else {
				d.persisted.Add(1)
			}
		case op.del != "":
			_ = os.Remove(filepath.Join(d.dir, durableFileName(op.del)))
		case op.flush != nil:
			close(op.flush)
		}
	}
}

// durableFileName maps a cache key to a filesystem-safe name. Keys are
// fingerprint strings ("emcfp1-<hex>+obs:8,true"); punctuation outside
// [A-Za-z0-9._-] is folded to '_' and an FNV tag of the raw key keeps folded
// names collision-free.
func durableFileName(key string) string {
	h := fnv.New32a()
	h.Write([]byte(key))
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return fmt.Sprintf("%s-%08x%s", b.String(), h.Sum32(), durableExt)
}

// writeDurableRecord atomically writes rec's frame: encode to a temp file in
// the same directory, fsync, rename over the final name. A crash at any
// point leaves either the old record or the new one, never a torn file with
// the real name (torn temp files are ignored by load and overwritten later).
func writeDurableRecord(dir string, rec *durableRecord) error {
	frame, err := encodeDurableRecord(rec)
	if err != nil {
		return err
	}
	final := filepath.Join(dir, durableFileName(rec.Key))
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// readDurableRecord reads and validates one record file.
func readDurableRecord(path string) (*durableRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeDurableRecord(data)
}

// encodeDurableRecord frames rec: "EMCR" + u16 version + u32 payload length
// + JSON payload + u32 CRC32(payload), all little-endian.
func encodeDurableRecord(rec *durableRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 0, len(durableMagic)+10+len(payload))
	frame = append(frame, durableMagic...)
	frame = binary.LittleEndian.AppendUint16(frame, durableVersion)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame, nil
}

// decodeDurableRecord validates a frame end to end; every failure mode maps
// to errDurableCorrupt so the loader's quarantine decision is one check.
func decodeDurableRecord(data []byte) (*durableRecord, error) {
	head := len(durableMagic) + 6
	if len(data) < head+4 {
		return nil, fmt.Errorf("%w: truncated frame (%d bytes)", errDurableCorrupt, len(data))
	}
	if string(data[:len(durableMagic)]) != durableMagic {
		return nil, fmt.Errorf("%w: bad magic", errDurableCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[len(durableMagic):]); v != durableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errDurableCorrupt, v)
	}
	n := binary.LittleEndian.Uint32(data[len(durableMagic)+2:])
	if uint64(len(data)) != uint64(head)+uint64(n)+4 {
		return nil, fmt.Errorf("%w: length mismatch", errDurableCorrupt)
	}
	payload := data[head : head+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[head+int(n):]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errDurableCorrupt)
	}
	var rec durableRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("%w: %v", errDurableCorrupt, err)
	}
	if rec.Key == "" || rec.Result == nil {
		return nil, fmt.Errorf("%w: incomplete record", errDurableCorrupt)
	}
	return &rec, nil
}
