package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// runTiny runs cfg directly and returns its Result (the ground truth the
// durable round trips are compared against).
func runTiny(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	sys, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDurableRecordRoundTrip: a real Result frames, decodes, and hashes
// bit-identically — the lossless-persistence guarantee the durable cache
// rests on (including histogram-bearing stats).
func TestDurableRecordRoundTrip(t *testing.T) {
	res := runTiny(t, tinyCfg(7))
	rec := &durableRecord{Key: "emcfp1-test+obs:8,true", Result: res}
	frame, err := encodeDurableRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeDurableRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != rec.Key {
		t.Fatalf("key changed: %q -> %q", rec.Key, back.Key)
	}
	if back.Result.Hash() != res.Hash() {
		t.Fatalf("round trip changed the result: %#x != %#x", back.Result.Hash(), res.Hash())
	}
}

// TestDecodeDurableCorruption: every corruption mode maps to
// errDurableCorrupt (which is what load keys quarantine on).
func TestDecodeDurableCorruption(t *testing.T) {
	good, err := encodeDurableRecord(&durableRecord{Key: "k", Result: &sim.Result{Cycles: 9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a record at all"),
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-5],
		"payload flip": append(append([]byte{}, good[:12]...),
			append([]byte{good[12] ^ 0xFF}, good[13:]...)...),
		"crc flip": append(append([]byte{}, good[:len(good)-1]...), good[len(good)-1]^0xFF),
		"bad version": func() []byte {
			b := append([]byte{}, good...)
			b[4] ^= 0xFF
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := decodeDurableRecord(data); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
	if _, err := decodeDurableRecord(good); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
}

// TestDurableFileNameSafety: names stay inside the directory and distinct
// keys get distinct files even when sanitization folds their punctuation.
func TestDurableFileNameSafety(t *testing.T) {
	keys := []string{
		"emcfp1-abc123+obs:8,true+ci:1000",
		"emcfp1-abc123+obs:8;true+ci:1000", // folds to the same sanitized form
		"../../../etc/passwd",
		"uncacheable:j1",
	}
	seen := map[string]bool{}
	for _, k := range keys {
		name := durableFileName(k)
		// '/' must never survive (".." inside one component is harmless).
		if strings.ContainsAny(name, "/:") {
			t.Errorf("unsafe file name %q for key %q", name, k)
		}
		if seen[name] {
			t.Errorf("file name collision for key %q: %q", k, name)
		}
		seen[name] = true
	}
}

// TestDurableRestartReload is the crash-recovery contract: results computed
// before a restart are served from the durable cache after it, bit-identical
// and without re-simulation.
func TestDurableRestartReload(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyCfg(21)
	want := runTiny(t, cfg).Hash()

	s1, err := Open(Config{Workers: 1, QueueCap: 8, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background(), "t", cfg); err != nil {
		t.Fatal(err)
	}
	s1.FlushDurable()
	if st := s1.Stats(); st.CachePersisted != 1 {
		t.Fatalf("want 1 persisted record, stats: %+v", st)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh service over the same directory.
	s2, err := Open(Config{Workers: 1, QueueCap: 8, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.CacheLoaded != 1 || st.CacheEntries != 1 {
		t.Fatalf("reload failed, stats: %+v", st)
	}
	j, err := s2.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !j.Status().Cached {
		t.Fatal("resubmit after restart should be a cache hit")
	}
	if res.Hash() != want {
		t.Fatalf("reloaded result hash %#x != original %#x", res.Hash(), want)
	}
}

// TestDurableQuarantine: corrupt records on disk are moved aside, counted,
// and never served; intact records in the same directory still load.
func TestDurableQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyCfg(22)

	s1, err := Open(Config{Workers: 1, QueueCap: 8, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background(), "t", cfg); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Corrupt the directory three ways: garbage, a truncated copy of the
	// real record, and a bit flip inside a real frame.
	names, err := filepath.Glob(filepath.Join(dir, "*"+durableExt))
	if err != nil || len(names) != 1 {
		t.Fatalf("want exactly one record, got %v (%v)", names, err)
	}
	frame, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	writeFile := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("garbage"+durableExt, []byte("zzzz"))
	writeFile("truncated"+durableExt, frame[:len(frame)/2])
	flipped := append([]byte{}, frame...)
	flipped[len(flipped)/2] ^= 0xFF
	writeFile("flipped"+durableExt, flipped)

	s2, err := Open(Config{Workers: 1, QueueCap: 8, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.CacheLoaded != 1 || st.CacheQuarantined != 3 {
		t.Fatalf("want 1 loaded + 3 quarantined, stats: %+v", st)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*"+corruptExt))
	if len(quarantined) != 3 {
		t.Fatalf("want 3 *.corrupt files, got %v", quarantined)
	}
	// The intact record still serves.
	j, err := s2.Submit("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil || !j.Status().Cached {
		t.Fatalf("intact record not served from cache (err=%v cached=%v)", err, j.Status().Cached)
	}
}

// TestDurableEvictionDeletes: an entry evicted from the LRU loses its disk
// record too, so the directory tracks the cache instead of growing forever.
func TestDurableEvictionDeletes(t *testing.T) {
	dir := t.TempDir()
	store, err := openDurableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := newResultCache(1, store)
	c.put("a", &sim.Result{Cycles: 1})
	c.put("b", &sim.Result{Cycles: 2}) // evicts a
	store.flush()
	store.close()
	if _, err := os.Stat(filepath.Join(dir, durableFileName("a"))); !os.IsNotExist(err) {
		t.Fatalf("evicted record still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, durableFileName("b"))); err != nil {
		t.Fatalf("resident record missing: %v", err)
	}
}

// TestDurablePutFailpoint: an injected persist failure is counted, leaves no
// file behind, and does not disturb the in-memory cache.
func TestDurablePutFailpoint(t *testing.T) {
	p, ok := fault.Lookup("service/durable.put")
	if !ok {
		t.Fatal("service/durable.put not registered")
	}
	p.Enable(fault.Trigger{})
	defer p.Disable()

	dir := t.TempDir()
	store, err := openDurableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := newResultCache(4, store)
	c.put("k", &sim.Result{Cycles: 3})
	store.flush()
	store.close()
	if got := store.persistErrs.Load(); got != 1 {
		t.Fatalf("want 1 persist error, got %d", got)
	}
	if _, err := os.Stat(filepath.Join(dir, durableFileName("k"))); !os.IsNotExist(err) {
		t.Fatalf("dropped write still produced a file (err=%v)", err)
	}
	if _, ok := c.get("k"); !ok {
		t.Fatal("in-memory entry must survive a persist failure")
	}
}
