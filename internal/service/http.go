package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/report"
	"repro/internal/sim"
)

// JobRequest is the JSON submit body: the sweep-relevant subset of
// sim.Config. Omitted fields take the paper's Table-1 defaults.
type JobRequest struct {
	// Client groups submissions for queue fairness (defaults to "default").
	Client string `json:"client"`

	Benchmarks   []string `json:"benchmarks"`
	InstrPerCore uint64   `json:"instrPerCore"`
	Seed         uint64   `json:"seed"`

	Prefetcher         string `json:"prefetcher"`
	EMC                bool   `json:"emc"`
	Runahead           bool   `json:"runahead"`
	UseBranchPredictor bool   `json:"useBranchPredictor"`
	MCs                int    `json:"mcs"`
	IdealDependentHits bool   `json:"idealDependentHits"`
}

// Config materializes the request as a sim.Config (validated by sim.New at
// run time; the cheap shape checks happen here so submit can 400 early).
func (r *JobRequest) Config() (sim.Config, error) {
	if len(r.Benchmarks) == 0 {
		return sim.Config{}, fmt.Errorf("benchmarks required")
	}
	cfg := sim.Default(r.Benchmarks)
	if r.InstrPerCore > 0 {
		cfg.InstrPerCore = r.InstrPerCore
	}
	if r.Seed > 0 {
		cfg.Seed = r.Seed
	}
	if r.Prefetcher != "" {
		cfg.Prefetcher = sim.PrefetcherKind(r.Prefetcher)
	}
	cfg.EMCEnabled = r.EMC
	cfg.RunaheadEnabled = r.Runahead
	cfg.UseBranchPredictor = r.UseBranchPredictor
	if r.MCs > 0 {
		cfg.MCs = r.MCs
	}
	cfg.IdealDependentHits = r.IdealDependentHits
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// NewHandler returns the service's HTTP API:
//
//	POST /api/v1/jobs                submit (JobRequest JSON) -> Status
//	GET  /api/v1/jobs                list job statuses
//	GET  /api/v1/jobs/{id}           one job's Status
//	GET  /api/v1/jobs/{id}/result    finished job's report JSON
//	GET  /api/v1/jobs/{id}/progress  NDJSON Status stream until terminal
//	POST /api/v1/jobs/{id}/cancel    request cancellation
//	GET  /api/v1/stats               service counters (incl. per-shard)
//	GET  /api/v1/stats/stream        NDJSON StatsFrame stream (emcctl top)
//	GET  /api/v1/trace               Chrome trace_event JSON of finished spans
//	GET  /metrics                    Prometheus text (reg, when non-nil)
//	GET  /healthz                    liveness
func NewHandler(s *Service, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /api/v1/stats/stream", s.handleStatsStream)
	mux.HandleFunc("GET /api/v1/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if reg != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure here
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	j, err := s.Submit(req.Client, cfg)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK // cache hit: the job is already done
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: ErrNotFound.Error()})
		return nil, false
	}
	return j, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	res, err, terminal := j.Result()
	switch {
	case !terminal:
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + string(j.Status().State)})
	case errors.Is(err, sim.ErrCancelled):
		if res == nil {
			writeJSON(w, http.StatusGone, apiError{Error: "job cancelled before producing results"})
			return
		}
		out := report.New(res)
		out.Cancelled = true
		writeJSON(w, http.StatusOK, out)
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, report.New(res))
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.Status())
}

// StatsFrame is one sample of the live-dashboard NDJSON stream: the service
// counters (with per-shard breakdown) plus every non-terminal job's Status.
// emcctl top renders these.
type StatsFrame struct {
	Time   time.Time `json:"time"`
	Stats  Stats     `json:"stats"`
	Active []Status  `json:"active,omitempty"`
}

// activeStatuses snapshots every non-terminal job's Status.
func (s *Service) activeStatuses() []Status {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	var out []Status
	for _, j := range jobs {
		if st := j.Status(); !st.State.Terminal() {
			out = append(out, st)
		}
	}
	return out
}

// handleStatsStream streams StatsFrame NDJSON until the client disconnects.
// ?poll=MS sets the sampling period (default 1000 ms); ?frames=N stops after
// N frames (smoke tests, emcctl top -frames).
func (s *Service) handleStatsStream(w http.ResponseWriter, r *http.Request) {
	poll := time.Second
	if v := r.URL.Query().Get("poll"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			poll = time.Duration(ms) * time.Millisecond
		}
	}
	frames := 0 // 0 = unbounded
	if v := r.URL.Query().Get("frames"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			frames = n
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	t := time.NewTicker(poll)
	defer t.Stop()
	for sent := 0; ; {
		frame := StatsFrame{Time: time.Now(), Stats: s.Stats(), Active: s.activeStatuses()}
		if enc.Encode(frame) != nil {
			return // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		sent++
		if frames > 0 && sent >= frames {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
	}
}

// handleTrace exports the retained finished spans as Chrome trace_event
// JSON (load in chrome://tracing or Perfetto; merge with a sim trace —
// service spans sit at pids ≥ span.ChromePidBase). 409 until a job finishes:
// an empty traceEvents array fails tracecheck, so we refuse to emit one.
func (s *Service) handleTrace(w http.ResponseWriter, _ *http.Request) {
	spans := s.rec.Spans()
	if len(spans) == 0 {
		writeJSON(w, http.StatusConflict, apiError{Error: "no finished spans yet"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="service-trace.json"`)
	if err := span.WriteChrome(w, "emcserve", spans); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleProgress streams the job's Status as NDJSON (one object per line,
// flushed) until the job is terminal or the client disconnects. ?poll=MS
// overrides the sampling period (default 500 ms). The per-job progress
// values ride on the simulator's interval-counter machinery via RunHandle.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	poll := 500 * time.Millisecond
	if v := r.URL.Query().Get("poll"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			poll = time.Duration(ms) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st := j.Status()
		if enc.Encode(st) != nil {
			return // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Loop once more to emit the terminal snapshot.
		case <-t.C:
		}
	}
}
