// Package service is the simulation-job subsystem: a bounded, per-client
// fair job queue feeding a sharded worker pool, a content-addressed result
// cache keyed by sim.Config.Fingerprint, and (in http.go) the HTTP API the
// emcserve command exposes.
//
// Jobs are content-addressed: two submissions of the same fingerprint
// coalesce while the first is in flight and hit the result cache after it
// completes, so sweep workloads (the figure suite, parameter matrices)
// never re-simulate a configuration. Determinism makes this sound — equal
// fingerprints imply bit-identical Results (see DESIGN.md §10).
package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs/span"
	"repro/internal/sim"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued -> running -> done | failed | cancelled.
// Cache hits and coalesced submissions skip straight to the terminal state
// of the run that did (or will do) the work.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one scheduled simulation. All mutable state is guarded by mu; the
// done channel closes exactly once when the job reaches a terminal state.
type Job struct {
	id        string
	key       string // cache key (fingerprint + observability variant)
	client    string
	shard     int
	cacheable bool
	cfg       sim.Config

	mu        sync.Mutex
	state     State
	cached    bool // result served from the cache, no simulation ran
	attempts  int  // simulation attempts (>1 only after panic retries)
	err       error
	res       *sim.Result
	progress  sim.Progress
	handle    *sim.RunHandle
	cancelReq bool
	hung      bool      // watchdog verdict: running but no recent progress
	lastBeat  time.Time // last progress callback (or attempt start)
	submitted time.Time
	started   time.Time
	finished  time.Time

	// Span pipeline (see internal/obs/span and DESIGN.md §14): every
	// lifecycle transition and progress heartbeat is recorded into the
	// pooled flight-recorder ring; the phase boundaries below feed the
	// exact-sum wall-clock attribution when the job finishes.
	rec       *span.Recorder
	ring      *span.Ring
	submitAt  int64 // ns on the recorder's monotonic base
	admitAt   int64 // span.NoAdmit until a worker pops the job
	finishAt  int64 // recorder ns at finalize (0 while live)
	hungEver  bool  // watchdog flagged the job at least once
	coalesced uint64

	done chan struct{}
}

// Status is a JSON-friendly snapshot of a job.
type Status struct {
	ID       string `json:"id"`
	Client   string `json:"client"`
	Key      string `json:"key"`
	Shard    int    `json:"shard"`
	State    State  `json:"state"`
	Cached   bool   `json:"cached"`
	Attempts int    `json:"attempts"`
	Hung     bool   `json:"hung,omitempty"`
	Error    string `json:"error,omitempty"`

	Cycles       uint64  `json:"cycles"`
	Retired      uint64  `json:"retiredInstructions"`
	TargetInstrs uint64  `json:"targetInstructions"`
	IPC          float64 `json:"ipc"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
}

func newJob(id, key, client string, shard int, cacheable bool, cfg sim.Config, rec *span.Recorder) *Job {
	j := &Job{
		id: id, key: key, client: client, shard: shard, cacheable: cacheable,
		cfg: cfg, state: StateQueued, submitted: time.Now(),
		admitAt: span.NoAdmit,
		done:    make(chan struct{}),
	}
	if rec != nil {
		j.rec = rec
		j.ring = rec.AcquireRing()
		j.submitAt = rec.Now()
		j.ring.Record(j.submitAt, span.EvSubmit, uint64(shard), 0)
	}
	return j
}

// record stamps one lifecycle event into the job's flight ring. Callers hold
// j.mu; the ring is nil before the recorder attaches and after finalize
// recycled it, so late callbacks (a racing setProgress) are safe no-ops.
func (j *Job) record(k span.Kind, arg, arg2 uint64) {
	if j.ring != nil {
		j.ring.Record(j.rec.Now(), k, arg, arg2)
	}
}

// recordCoalesce notes a duplicate submission riding on this job.
func (j *Job) recordCoalesce() {
	j.mu.Lock()
	j.coalesced++
	j.record(span.EvCoalesce, j.coalesced, 0)
	j.mu.Unlock()
}

// recordRetry notes a panicked attempt that will be retried.
func (j *Job) recordRetry() {
	j.mu.Lock()
	j.record(span.EvRetry, uint64(j.attempts), 0)
	j.mu.Unlock()
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's cache key.
func (j *Job) Key() string { return j.key }

// Client returns the submitting client's name.
func (j *Job) Client() string { return j.client }

// Config returns the job's simulation configuration (a copy; the cluster
// layer forwards it to the owning node).
func (j *Job) Config() sim.Config { return j.cfg }

// ReportProgress records a progress snapshot observed remotely (the cluster
// layer polls the owning node and mirrors progress into the local job, which
// also feeds the hung watchdog's heartbeat).
func (j *Job) ReportProgress(p sim.Progress) { j.setProgress(p) }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Client: j.client, Key: j.key, Shard: j.shard,
		State: j.state, Cached: j.cached, Attempts: j.attempts, Hung: j.hung,
		Cycles: j.progress.Cycles, Retired: j.progress.Retired,
		TargetInstrs: j.progress.TargetInstrs, IPC: j.progress.IPC,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Wait blocks until the job is terminal or ctx is done, and returns the
// job's result. Cancelled jobs return the partial result (possibly nil)
// together with sim.ErrCancelled; failed jobs return their error.
func (j *Job) Wait(ctx context.Context) (*sim.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Result returns the job's result if it is terminal (nil otherwise).
func (j *Job) Result() (*sim.Result, error, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, false
	}
	return j.res, j.err, true
}

// setProgress records a progress snapshot (called from the simulation
// goroutine via the RunHandle callback).
func (j *Job) setProgress(p sim.Progress) {
	j.mu.Lock()
	j.progress = p
	j.lastBeat = time.Now()
	j.record(span.EvProgress, p.Cycles, p.Retired)
	j.mu.Unlock()
}

// hungCheck is the watchdog probe: for a running job it compares the time
// since the last heartbeat against timeout and updates the hung flag.
// Detection only — the run is left alone (see DESIGN.md §11). It returns the
// current verdict and whether it changed.
func (j *Job) hungCheck(now time.Time, timeout time.Duration) (hung, changed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	was := j.hung
	if j.state != StateRunning {
		j.hung = false
	} else {
		j.hung = now.Sub(j.lastBeat) > timeout
	}
	if j.hung != was {
		if j.hung {
			j.hungEver = true
			j.record(span.EvHung, uint64(j.attempts), 0)
		} else {
			j.record(span.EvHungClear, 0, 0)
		}
	}
	return j.hung, j.hung != was
}

// requestCancel marks the job for cancellation and, when a run is in
// flight, cancels its handle. Queued jobs are finalized by the worker that
// eventually pops them; terminal jobs ignore the request.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.cancelReq = true
	if j.handle != nil {
		j.handle.Cancel()
	}
}

// CancelRequested reports whether cancellation has been requested — the
// cluster layer polls it to propagate cancels to the owning node.
func (j *Job) CancelRequested() bool { return j.cancelRequested() }

// cancelRequested reports whether cancellation has been requested.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// beginRunning transitions queued -> running unless cancellation already
// arrived; it returns false in that case and the caller finalizes.
func (j *Job) beginRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelReq {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	if j.rec != nil {
		j.admitAt = j.rec.Now()
		if j.ring != nil {
			j.ring.Record(j.admitAt, span.EvAdmit, uint64(j.shard), 0)
		}
	}
	return true
}

// beginAttempt counts one simulation attempt (including ones that panic
// before a handle exists).
func (j *Job) beginAttempt() {
	j.mu.Lock()
	j.attempts++
	j.lastBeat = time.Now()
	j.record(span.EvAttempt, uint64(j.attempts), 0)
	j.mu.Unlock()
}

// attachHandle publishes the run's handle so Cancel can reach it. If a
// cancellation raced in between beginRunning and here, it returns false and
// the caller cancels the handle before running.
func (j *Job) attachHandle(h *sim.RunHandle) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.handle = h
	return !j.cancelReq
}

// finalize moves the job to a terminal state exactly once.
func (j *Job) finalize(state State, res *sim.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.res = res
	j.err = err
	j.handle = nil
	j.hung = false
	j.finished = time.Now()
	if res != nil {
		// Final progress reflects the completed (or partially completed) run.
		j.progress = sim.Progress{
			Cycles:       res.Cycles,
			TargetInstrs: j.cfg.InstrPerCore * uint64(len(j.cfg.Benchmarks)),
		}
		for _, c := range res.Cores {
			j.progress.Retired += c.Stats.Retired
		}
		if res.Cycles > 0 {
			j.progress.IPC = float64(j.progress.Retired) / float64(res.Cycles)
		}
	}
	if j.rec != nil {
		// Close out the span: stamp the terminal event, hand the span to the
		// recorder (retention + phase histograms), recycle the ring. The
		// finish timestamp taken here is the span's exact-sum upper bound.
		if j.cached {
			j.record(span.EvCacheHit, 0, 0)
		}
		j.finishAt = j.rec.Now()
		term := span.EvCancelled
		switch state {
		case StateDone:
			term = span.EvDone
		case StateFailed:
			term = span.EvFailed
		}
		if j.ring != nil {
			j.ring.Record(j.finishAt, term, uint64(j.attempts), 0)
		}
		ring := j.ring
		j.ring = nil
		j.rec.FinishSpan(span.Span{
			JobID: j.id, Client: j.client, Shard: j.shard,
			Outcome: string(state), Cached: j.cached, Hung: j.hungEver,
			Attempts: j.attempts, Coalesced: j.coalesced,
			SubmitAt: j.submitAt, AdmitAt: j.admitAt, FinishAt: j.finishAt,
		}, ring)
	}
	close(j.done)
}

// buildDump snapshots the job for a flight-recorder dump (reason is one of
// "hung", "panic", "failed"). The phase decomposition uses the dump instant
// as the end bound for live jobs, so the dump's PhasesNS exact-sums to its
// WallNS the same way a finished span's phases sum to its total.
func (j *Job) buildDump(reason string) *span.Dump {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec == nil {
		return nil
	}
	now := j.rec.Now()
	end := now
	if j.state.Terminal() {
		end = j.finishAt
	}
	j.record(span.EvDump, 0, 0)
	sp := span.Span{SubmitAt: j.submitAt, AdmitAt: j.admitAt, FinishAt: end, Cached: j.cached}
	d := &span.Dump{
		JobID: j.id, Key: j.key, Client: j.client, Shard: j.shard,
		Reason: reason, State: string(j.state), Cached: j.cached,
		Attempts:   j.attempts,
		SubmitAtNS: j.submitAt, AdmitAtNS: j.admitAt, DumpAtNS: now,
		WallNS:   sp.Total(),
		PhasesNS: map[string]int64{},
		Cycles:   j.progress.Cycles, Retired: j.progress.Retired,
		TargetInstrs: j.progress.TargetInstrs, IPC: j.progress.IPC,
	}
	if j.state.Terminal() {
		d.FinishAtNS = end
	}
	phases := sp.Phases()
	for p := span.Phase(0); p < span.NumPhases; p++ {
		if phases[p] != 0 {
			d.PhasesNS[p.String()] = phases[p]
		}
	}
	if j.ring != nil {
		evs := j.ring.Events(nil)
		d.Events = make([]span.DumpEvent, len(evs))
		for i, ev := range evs {
			d.Events[i] = span.DumpEvent{AtNS: ev.At, Kind: ev.Kind.String(), Arg: ev.Arg, Arg2: ev.Arg2}
		}
		d.TruncatedEvents = j.ring.Truncated()
	}
	if j.err != nil {
		d.Error = j.err.Error()
	}
	return d
}
