// Package service is the simulation-job subsystem: a bounded, per-client
// fair job queue feeding a sharded worker pool, a content-addressed result
// cache keyed by sim.Config.Fingerprint, and (in http.go) the HTTP API the
// emcserve command exposes.
//
// Jobs are content-addressed: two submissions of the same fingerprint
// coalesce while the first is in flight and hit the result cache after it
// completes, so sweep workloads (the figure suite, parameter matrices)
// never re-simulate a configuration. Determinism makes this sound — equal
// fingerprints imply bit-identical Results (see DESIGN.md §10).
package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/sim"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued -> running -> done | failed | cancelled.
// Cache hits and coalesced submissions skip straight to the terminal state
// of the run that did (or will do) the work.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one scheduled simulation. All mutable state is guarded by mu; the
// done channel closes exactly once when the job reaches a terminal state.
type Job struct {
	id        string
	key       string // cache key (fingerprint + observability variant)
	client    string
	shard     int
	cacheable bool
	cfg       sim.Config

	mu        sync.Mutex
	state     State
	cached    bool // result served from the cache, no simulation ran
	attempts  int  // simulation attempts (>1 only after panic retries)
	err       error
	res       *sim.Result
	progress  sim.Progress
	handle    *sim.RunHandle
	cancelReq bool
	hung      bool      // watchdog verdict: running but no recent progress
	lastBeat  time.Time // last progress callback (or attempt start)
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// Status is a JSON-friendly snapshot of a job.
type Status struct {
	ID       string `json:"id"`
	Client   string `json:"client"`
	Key      string `json:"key"`
	Shard    int    `json:"shard"`
	State    State  `json:"state"`
	Cached   bool   `json:"cached"`
	Attempts int    `json:"attempts"`
	Hung     bool   `json:"hung,omitempty"`
	Error    string `json:"error,omitempty"`

	Cycles       uint64  `json:"cycles"`
	Retired      uint64  `json:"retiredInstructions"`
	TargetInstrs uint64  `json:"targetInstructions"`
	IPC          float64 `json:"ipc"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
}

func newJob(id, key, client string, shard int, cacheable bool, cfg sim.Config) *Job {
	return &Job{
		id: id, key: key, client: client, shard: shard, cacheable: cacheable,
		cfg: cfg, state: StateQueued, submitted: time.Now(),
		done: make(chan struct{}),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's cache key.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, Client: j.client, Key: j.key, Shard: j.shard,
		State: j.state, Cached: j.cached, Attempts: j.attempts, Hung: j.hung,
		Cycles: j.progress.Cycles, Retired: j.progress.Retired,
		TargetInstrs: j.progress.TargetInstrs, IPC: j.progress.IPC,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Wait blocks until the job is terminal or ctx is done, and returns the
// job's result. Cancelled jobs return the partial result (possibly nil)
// together with sim.ErrCancelled; failed jobs return their error.
func (j *Job) Wait(ctx context.Context) (*sim.Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Result returns the job's result if it is terminal (nil otherwise).
func (j *Job) Result() (*sim.Result, error, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, false
	}
	return j.res, j.err, true
}

// setProgress records a progress snapshot (called from the simulation
// goroutine via the RunHandle callback).
func (j *Job) setProgress(p sim.Progress) {
	j.mu.Lock()
	j.progress = p
	j.lastBeat = time.Now()
	j.mu.Unlock()
}

// hungCheck is the watchdog probe: for a running job it compares the time
// since the last heartbeat against timeout and updates the hung flag.
// Detection only — the run is left alone (see DESIGN.md §11). It returns the
// current verdict and whether it changed.
func (j *Job) hungCheck(now time.Time, timeout time.Duration) (hung, changed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	was := j.hung
	if j.state != StateRunning {
		j.hung = false
	} else {
		j.hung = now.Sub(j.lastBeat) > timeout
	}
	return j.hung, j.hung != was
}

// requestCancel marks the job for cancellation and, when a run is in
// flight, cancels its handle. Queued jobs are finalized by the worker that
// eventually pops them; terminal jobs ignore the request.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.cancelReq = true
	if j.handle != nil {
		j.handle.Cancel()
	}
}

// cancelRequested reports whether cancellation has been requested.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelReq
}

// beginRunning transitions queued -> running unless cancellation already
// arrived; it returns false in that case and the caller finalizes.
func (j *Job) beginRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelReq {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// beginAttempt counts one simulation attempt (including ones that panic
// before a handle exists).
func (j *Job) beginAttempt() {
	j.mu.Lock()
	j.attempts++
	j.lastBeat = time.Now()
	j.mu.Unlock()
}

// attachHandle publishes the run's handle so Cancel can reach it. If a
// cancellation raced in between beginRunning and here, it returns false and
// the caller cancels the handle before running.
func (j *Job) attachHandle(h *sim.RunHandle) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.handle = h
	return !j.cancelReq
}

// finalize moves the job to a terminal state exactly once.
func (j *Job) finalize(state State, res *sim.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.res = res
	j.err = err
	j.handle = nil
	j.hung = false
	j.finished = time.Now()
	if res != nil {
		// Final progress reflects the completed (or partially completed) run.
		j.progress = sim.Progress{
			Cycles:       res.Cycles,
			TargetInstrs: j.cfg.InstrPerCore * uint64(len(j.cfg.Benchmarks)),
		}
		for _, c := range res.Cores {
			j.progress.Retired += c.Stats.Retired
		}
		if res.Cycles > 0 {
			j.progress.IPC = float64(j.progress.Retired) / float64(res.Cycles)
		}
	}
	close(j.done)
}
